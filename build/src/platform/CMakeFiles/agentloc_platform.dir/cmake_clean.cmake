file(REMOVE_RECURSE
  "CMakeFiles/agentloc_platform.dir/agent_system.cpp.o"
  "CMakeFiles/agentloc_platform.dir/agent_system.cpp.o.d"
  "libagentloc_platform.a"
  "libagentloc_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agentloc_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
