file(REMOVE_RECURSE
  "libagentloc_platform.a"
)
