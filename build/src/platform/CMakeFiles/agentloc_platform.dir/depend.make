# Empty dependencies file for agentloc_platform.
# This may be replaced when dependencies are built.
