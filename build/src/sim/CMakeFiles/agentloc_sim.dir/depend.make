# Empty dependencies file for agentloc_sim.
# This may be replaced when dependencies are built.
