file(REMOVE_RECURSE
  "CMakeFiles/agentloc_sim.dir/simulator.cpp.o"
  "CMakeFiles/agentloc_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/agentloc_sim.dir/time.cpp.o"
  "CMakeFiles/agentloc_sim.dir/time.cpp.o.d"
  "CMakeFiles/agentloc_sim.dir/timer.cpp.o"
  "CMakeFiles/agentloc_sim.dir/timer.cpp.o.d"
  "libagentloc_sim.a"
  "libagentloc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agentloc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
