file(REMOVE_RECURSE
  "libagentloc_sim.a"
)
