# Empty dependencies file for agentloc_net.
# This may be replaced when dependencies are built.
