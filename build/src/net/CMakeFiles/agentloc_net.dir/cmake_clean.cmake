file(REMOVE_RECURSE
  "CMakeFiles/agentloc_net.dir/latency.cpp.o"
  "CMakeFiles/agentloc_net.dir/latency.cpp.o.d"
  "CMakeFiles/agentloc_net.dir/network.cpp.o"
  "CMakeFiles/agentloc_net.dir/network.cpp.o.d"
  "libagentloc_net.a"
  "libagentloc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agentloc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
