file(REMOVE_RECURSE
  "libagentloc_net.a"
)
