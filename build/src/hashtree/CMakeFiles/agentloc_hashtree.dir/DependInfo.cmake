
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hashtree/delta.cpp" "src/hashtree/CMakeFiles/agentloc_hashtree.dir/delta.cpp.o" "gcc" "src/hashtree/CMakeFiles/agentloc_hashtree.dir/delta.cpp.o.d"
  "/root/repo/src/hashtree/paper_figures.cpp" "src/hashtree/CMakeFiles/agentloc_hashtree.dir/paper_figures.cpp.o" "gcc" "src/hashtree/CMakeFiles/agentloc_hashtree.dir/paper_figures.cpp.o.d"
  "/root/repo/src/hashtree/rehash.cpp" "src/hashtree/CMakeFiles/agentloc_hashtree.dir/rehash.cpp.o" "gcc" "src/hashtree/CMakeFiles/agentloc_hashtree.dir/rehash.cpp.o.d"
  "/root/repo/src/hashtree/render.cpp" "src/hashtree/CMakeFiles/agentloc_hashtree.dir/render.cpp.o" "gcc" "src/hashtree/CMakeFiles/agentloc_hashtree.dir/render.cpp.o.d"
  "/root/repo/src/hashtree/serialize.cpp" "src/hashtree/CMakeFiles/agentloc_hashtree.dir/serialize.cpp.o" "gcc" "src/hashtree/CMakeFiles/agentloc_hashtree.dir/serialize.cpp.o.d"
  "/root/repo/src/hashtree/tree.cpp" "src/hashtree/CMakeFiles/agentloc_hashtree.dir/tree.cpp.o" "gcc" "src/hashtree/CMakeFiles/agentloc_hashtree.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/agentloc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
