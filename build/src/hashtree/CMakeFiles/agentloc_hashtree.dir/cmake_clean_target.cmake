file(REMOVE_RECURSE
  "libagentloc_hashtree.a"
)
