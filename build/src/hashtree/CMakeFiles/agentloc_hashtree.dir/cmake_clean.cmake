file(REMOVE_RECURSE
  "CMakeFiles/agentloc_hashtree.dir/delta.cpp.o"
  "CMakeFiles/agentloc_hashtree.dir/delta.cpp.o.d"
  "CMakeFiles/agentloc_hashtree.dir/paper_figures.cpp.o"
  "CMakeFiles/agentloc_hashtree.dir/paper_figures.cpp.o.d"
  "CMakeFiles/agentloc_hashtree.dir/rehash.cpp.o"
  "CMakeFiles/agentloc_hashtree.dir/rehash.cpp.o.d"
  "CMakeFiles/agentloc_hashtree.dir/render.cpp.o"
  "CMakeFiles/agentloc_hashtree.dir/render.cpp.o.d"
  "CMakeFiles/agentloc_hashtree.dir/serialize.cpp.o"
  "CMakeFiles/agentloc_hashtree.dir/serialize.cpp.o.d"
  "CMakeFiles/agentloc_hashtree.dir/tree.cpp.o"
  "CMakeFiles/agentloc_hashtree.dir/tree.cpp.o.d"
  "libagentloc_hashtree.a"
  "libagentloc_hashtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agentloc_hashtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
