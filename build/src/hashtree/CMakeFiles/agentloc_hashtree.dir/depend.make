# Empty dependencies file for agentloc_hashtree.
# This may be replaced when dependencies are built.
