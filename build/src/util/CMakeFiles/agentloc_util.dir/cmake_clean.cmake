file(REMOVE_RECURSE
  "CMakeFiles/agentloc_util.dir/bitstring.cpp.o"
  "CMakeFiles/agentloc_util.dir/bitstring.cpp.o.d"
  "CMakeFiles/agentloc_util.dir/bytebuffer.cpp.o"
  "CMakeFiles/agentloc_util.dir/bytebuffer.cpp.o.d"
  "CMakeFiles/agentloc_util.dir/flags.cpp.o"
  "CMakeFiles/agentloc_util.dir/flags.cpp.o.d"
  "CMakeFiles/agentloc_util.dir/logging.cpp.o"
  "CMakeFiles/agentloc_util.dir/logging.cpp.o.d"
  "CMakeFiles/agentloc_util.dir/rng.cpp.o"
  "CMakeFiles/agentloc_util.dir/rng.cpp.o.d"
  "CMakeFiles/agentloc_util.dir/summary.cpp.o"
  "CMakeFiles/agentloc_util.dir/summary.cpp.o.d"
  "libagentloc_util.a"
  "libagentloc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agentloc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
