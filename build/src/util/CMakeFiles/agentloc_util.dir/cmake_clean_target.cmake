file(REMOVE_RECURSE
  "libagentloc_util.a"
)
