# Empty compiler generated dependencies file for agentloc_util.
# This may be replaced when dependencies are built.
