# Empty dependencies file for agentloc_core.
# This may be replaced when dependencies are built.
