file(REMOVE_RECURSE
  "CMakeFiles/agentloc_core.dir/centralized_scheme.cpp.o"
  "CMakeFiles/agentloc_core.dir/centralized_scheme.cpp.o.d"
  "CMakeFiles/agentloc_core.dir/forwarding_scheme.cpp.o"
  "CMakeFiles/agentloc_core.dir/forwarding_scheme.cpp.o.d"
  "CMakeFiles/agentloc_core.dir/hagent.cpp.o"
  "CMakeFiles/agentloc_core.dir/hagent.cpp.o.d"
  "CMakeFiles/agentloc_core.dir/hash_scheme.cpp.o"
  "CMakeFiles/agentloc_core.dir/hash_scheme.cpp.o.d"
  "CMakeFiles/agentloc_core.dir/home_scheme.cpp.o"
  "CMakeFiles/agentloc_core.dir/home_scheme.cpp.o.d"
  "CMakeFiles/agentloc_core.dir/iagent.cpp.o"
  "CMakeFiles/agentloc_core.dir/iagent.cpp.o.d"
  "CMakeFiles/agentloc_core.dir/lhagent.cpp.o"
  "CMakeFiles/agentloc_core.dir/lhagent.cpp.o.d"
  "CMakeFiles/agentloc_core.dir/tracker_table.cpp.o"
  "CMakeFiles/agentloc_core.dir/tracker_table.cpp.o.d"
  "libagentloc_core.a"
  "libagentloc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agentloc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
