
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/centralized_scheme.cpp" "src/core/CMakeFiles/agentloc_core.dir/centralized_scheme.cpp.o" "gcc" "src/core/CMakeFiles/agentloc_core.dir/centralized_scheme.cpp.o.d"
  "/root/repo/src/core/forwarding_scheme.cpp" "src/core/CMakeFiles/agentloc_core.dir/forwarding_scheme.cpp.o" "gcc" "src/core/CMakeFiles/agentloc_core.dir/forwarding_scheme.cpp.o.d"
  "/root/repo/src/core/hagent.cpp" "src/core/CMakeFiles/agentloc_core.dir/hagent.cpp.o" "gcc" "src/core/CMakeFiles/agentloc_core.dir/hagent.cpp.o.d"
  "/root/repo/src/core/hash_scheme.cpp" "src/core/CMakeFiles/agentloc_core.dir/hash_scheme.cpp.o" "gcc" "src/core/CMakeFiles/agentloc_core.dir/hash_scheme.cpp.o.d"
  "/root/repo/src/core/home_scheme.cpp" "src/core/CMakeFiles/agentloc_core.dir/home_scheme.cpp.o" "gcc" "src/core/CMakeFiles/agentloc_core.dir/home_scheme.cpp.o.d"
  "/root/repo/src/core/iagent.cpp" "src/core/CMakeFiles/agentloc_core.dir/iagent.cpp.o" "gcc" "src/core/CMakeFiles/agentloc_core.dir/iagent.cpp.o.d"
  "/root/repo/src/core/lhagent.cpp" "src/core/CMakeFiles/agentloc_core.dir/lhagent.cpp.o" "gcc" "src/core/CMakeFiles/agentloc_core.dir/lhagent.cpp.o.d"
  "/root/repo/src/core/tracker_table.cpp" "src/core/CMakeFiles/agentloc_core.dir/tracker_table.cpp.o" "gcc" "src/core/CMakeFiles/agentloc_core.dir/tracker_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hashtree/CMakeFiles/agentloc_hashtree.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/agentloc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/agentloc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/agentloc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/agentloc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
