file(REMOVE_RECURSE
  "libagentloc_core.a"
)
