file(REMOVE_RECURSE
  "CMakeFiles/agentloc_workload.dir/experiment.cpp.o"
  "CMakeFiles/agentloc_workload.dir/experiment.cpp.o.d"
  "CMakeFiles/agentloc_workload.dir/querier.cpp.o"
  "CMakeFiles/agentloc_workload.dir/querier.cpp.o.d"
  "CMakeFiles/agentloc_workload.dir/report.cpp.o"
  "CMakeFiles/agentloc_workload.dir/report.cpp.o.d"
  "CMakeFiles/agentloc_workload.dir/tagent.cpp.o"
  "CMakeFiles/agentloc_workload.dir/tagent.cpp.o.d"
  "CMakeFiles/agentloc_workload.dir/trace.cpp.o"
  "CMakeFiles/agentloc_workload.dir/trace.cpp.o.d"
  "libagentloc_workload.a"
  "libagentloc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agentloc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
