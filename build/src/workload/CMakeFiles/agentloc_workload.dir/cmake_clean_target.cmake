file(REMOVE_RECURSE
  "libagentloc_workload.a"
)
