# Empty dependencies file for agentloc_workload.
# This may be replaced when dependencies are built.
