# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/tracker_table_test[1]_include.cmake")
include("/root/repo/build/tests/core/iagent_test[1]_include.cmake")
include("/root/repo/build/tests/core/hagent_test[1]_include.cmake")
include("/root/repo/build/tests/core/lhagent_test[1]_include.cmake")
include("/root/repo/build/tests/core/scheme_test[1]_include.cmake")
include("/root/repo/build/tests/core/failover_test[1]_include.cmake")
include("/root/repo/build/tests/core/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/core/forwarding_test[1]_include.cmake")
