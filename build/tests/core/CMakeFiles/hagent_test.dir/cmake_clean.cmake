file(REMOVE_RECURSE
  "CMakeFiles/hagent_test.dir/hagent_test.cpp.o"
  "CMakeFiles/hagent_test.dir/hagent_test.cpp.o.d"
  "hagent_test"
  "hagent_test.pdb"
  "hagent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hagent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
