# Empty dependencies file for hagent_test.
# This may be replaced when dependencies are built.
