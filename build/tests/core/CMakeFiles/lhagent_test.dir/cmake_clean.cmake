file(REMOVE_RECURSE
  "CMakeFiles/lhagent_test.dir/lhagent_test.cpp.o"
  "CMakeFiles/lhagent_test.dir/lhagent_test.cpp.o.d"
  "lhagent_test"
  "lhagent_test.pdb"
  "lhagent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhagent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
