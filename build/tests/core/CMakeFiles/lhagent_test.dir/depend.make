# Empty dependencies file for lhagent_test.
# This may be replaced when dependencies are built.
