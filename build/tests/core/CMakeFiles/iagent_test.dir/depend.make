# Empty dependencies file for iagent_test.
# This may be replaced when dependencies are built.
