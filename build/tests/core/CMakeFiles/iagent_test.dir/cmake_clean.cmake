file(REMOVE_RECURSE
  "CMakeFiles/iagent_test.dir/iagent_test.cpp.o"
  "CMakeFiles/iagent_test.dir/iagent_test.cpp.o.d"
  "iagent_test"
  "iagent_test.pdb"
  "iagent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iagent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
