# Empty dependencies file for tracker_table_test.
# This may be replaced when dependencies are built.
