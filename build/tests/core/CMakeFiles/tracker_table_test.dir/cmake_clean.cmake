file(REMOVE_RECURSE
  "CMakeFiles/tracker_table_test.dir/tracker_table_test.cpp.o"
  "CMakeFiles/tracker_table_test.dir/tracker_table_test.cpp.o.d"
  "tracker_table_test"
  "tracker_table_test.pdb"
  "tracker_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracker_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
