# Empty compiler generated dependencies file for tagent_test.
# This may be replaced when dependencies are built.
