file(REMOVE_RECURSE
  "CMakeFiles/tagent_test.dir/tagent_test.cpp.o"
  "CMakeFiles/tagent_test.dir/tagent_test.cpp.o.d"
  "tagent_test"
  "tagent_test.pdb"
  "tagent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
