file(REMOVE_RECURSE
  "CMakeFiles/querier_test.dir/querier_test.cpp.o"
  "CMakeFiles/querier_test.dir/querier_test.cpp.o.d"
  "querier_test"
  "querier_test.pdb"
  "querier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/querier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
