# Empty compiler generated dependencies file for querier_test.
# This may be replaced when dependencies are built.
