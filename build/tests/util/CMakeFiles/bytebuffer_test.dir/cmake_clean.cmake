file(REMOVE_RECURSE
  "CMakeFiles/bytebuffer_test.dir/bytebuffer_test.cpp.o"
  "CMakeFiles/bytebuffer_test.dir/bytebuffer_test.cpp.o.d"
  "bytebuffer_test"
  "bytebuffer_test.pdb"
  "bytebuffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bytebuffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
