# Empty dependencies file for bytebuffer_test.
# This may be replaced when dependencies are built.
