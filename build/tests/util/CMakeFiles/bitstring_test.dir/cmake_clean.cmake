file(REMOVE_RECURSE
  "CMakeFiles/bitstring_test.dir/bitstring_test.cpp.o"
  "CMakeFiles/bitstring_test.dir/bitstring_test.cpp.o.d"
  "bitstring_test"
  "bitstring_test.pdb"
  "bitstring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitstring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
