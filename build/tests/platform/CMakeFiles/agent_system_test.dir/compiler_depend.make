# Empty compiler generated dependencies file for agent_system_test.
# This may be replaced when dependencies are built.
