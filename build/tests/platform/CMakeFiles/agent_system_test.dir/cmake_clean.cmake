file(REMOVE_RECURSE
  "CMakeFiles/agent_system_test.dir/agent_system_test.cpp.o"
  "CMakeFiles/agent_system_test.dir/agent_system_test.cpp.o.d"
  "agent_system_test"
  "agent_system_test.pdb"
  "agent_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
