file(REMOVE_RECURSE
  "CMakeFiles/platform_property_test.dir/platform_property_test.cpp.o"
  "CMakeFiles/platform_property_test.dir/platform_property_test.cpp.o.d"
  "platform_property_test"
  "platform_property_test.pdb"
  "platform_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
