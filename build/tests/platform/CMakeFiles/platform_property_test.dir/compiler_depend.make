# Empty compiler generated dependencies file for platform_property_test.
# This may be replaced when dependencies are built.
