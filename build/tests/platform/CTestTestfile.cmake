# CMake generated Testfile for 
# Source directory: /root/repo/tests/platform
# Build directory: /root/repo/build/tests/platform
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/platform/agent_system_test[1]_include.cmake")
include("/root/repo/build/tests/platform/platform_property_test[1]_include.cmake")
