# Empty dependencies file for rehash_test.
# This may be replaced when dependencies are built.
