file(REMOVE_RECURSE
  "CMakeFiles/rehash_test.dir/rehash_test.cpp.o"
  "CMakeFiles/rehash_test.dir/rehash_test.cpp.o.d"
  "rehash_test"
  "rehash_test.pdb"
  "rehash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rehash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
