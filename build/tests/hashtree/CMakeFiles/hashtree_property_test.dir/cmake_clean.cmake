file(REMOVE_RECURSE
  "CMakeFiles/hashtree_property_test.dir/property_test.cpp.o"
  "CMakeFiles/hashtree_property_test.dir/property_test.cpp.o.d"
  "hashtree_property_test"
  "hashtree_property_test.pdb"
  "hashtree_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashtree_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
