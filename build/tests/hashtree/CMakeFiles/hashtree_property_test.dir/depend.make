# Empty dependencies file for hashtree_property_test.
# This may be replaced when dependencies are built.
