# CMake generated Testfile for 
# Source directory: /root/repo/tests/hashtree
# Build directory: /root/repo/build/tests/hashtree
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hashtree/tree_test[1]_include.cmake")
include("/root/repo/build/tests/hashtree/rehash_test[1]_include.cmake")
include("/root/repo/build/tests/hashtree/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/hashtree/hashtree_property_test[1]_include.cmake")
include("/root/repo/build/tests/hashtree/delta_test[1]_include.cmake")
include("/root/repo/build/tests/hashtree/stats_property_test[1]_include.cmake")
