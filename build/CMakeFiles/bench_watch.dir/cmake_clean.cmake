file(REMOVE_RECURSE
  "CMakeFiles/bench_watch.dir/bench/bench_watch.cpp.o"
  "CMakeFiles/bench_watch.dir/bench/bench_watch.cpp.o.d"
  "bench/bench_watch"
  "bench/bench_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
