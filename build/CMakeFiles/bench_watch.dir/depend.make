# Empty dependencies file for bench_watch.
# This may be replaced when dependencies are built.
