# Empty compiler generated dependencies file for bench_figures_1_to_6.
# This may be replaced when dependencies are built.
