file(REMOVE_RECURSE
  "CMakeFiles/bench_figures_1_to_6.dir/bench/bench_figures_1_to_6.cpp.o"
  "CMakeFiles/bench_figures_1_to_6.dir/bench/bench_figures_1_to_6.cpp.o.d"
  "bench/bench_figures_1_to_6"
  "bench/bench_figures_1_to_6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figures_1_to_6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
