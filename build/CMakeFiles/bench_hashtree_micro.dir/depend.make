# Empty dependencies file for bench_hashtree_micro.
# This may be replaced when dependencies are built.
