file(REMOVE_RECURSE
  "CMakeFiles/bench_hashtree_micro.dir/bench/bench_hashtree_micro.cpp.o"
  "CMakeFiles/bench_hashtree_micro.dir/bench/bench_hashtree_micro.cpp.o.d"
  "bench/bench_hashtree_micro"
  "bench/bench_hashtree_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hashtree_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
