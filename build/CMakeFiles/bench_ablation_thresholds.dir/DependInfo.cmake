
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_thresholds.cpp" "CMakeFiles/bench_ablation_thresholds.dir/bench/bench_ablation_thresholds.cpp.o" "gcc" "CMakeFiles/bench_ablation_thresholds.dir/bench/bench_ablation_thresholds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/agentloc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/agentloc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hashtree/CMakeFiles/agentloc_hashtree.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/agentloc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/agentloc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/agentloc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/agentloc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
