file(REMOVE_RECURSE
  "CMakeFiles/bench_experiment1.dir/bench/bench_experiment1.cpp.o"
  "CMakeFiles/bench_experiment1.dir/bench/bench_experiment1.cpp.o.d"
  "bench/bench_experiment1"
  "bench/bench_experiment1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_experiment1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
