# Empty dependencies file for bench_experiment2.
# This may be replaced when dependencies are built.
