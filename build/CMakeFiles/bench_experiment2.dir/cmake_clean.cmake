file(REMOVE_RECURSE
  "CMakeFiles/bench_experiment2.dir/bench/bench_experiment2.cpp.o"
  "CMakeFiles/bench_experiment2.dir/bench/bench_experiment2.cpp.o.d"
  "bench/bench_experiment2"
  "bench/bench_experiment2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_experiment2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
