// Ablation A6: IAgent locality placement (the paper's §7 extension: "the
// IAgents could move closer to the majority of the agents that they serve").
//
// Workload: the tracked population roams inside a small cluster of nodes far
// from where IAgents are initially placed. With locality migration enabled,
// IAgents relocate into the cluster, shortening the update path (updates are
// the dominant traffic). The bench compares location/update behaviour with
// the extension off and on.
//
// Flags: --tagents=60 --cluster=4 --queries=1200 --nodes=16
//        --json-out=BENCH_ablation_locality.json

#include <cstdio>
#include <string>
#include <vector>

#include "core/hash_scheme.hpp"
#include "platform/agent_system.hpp"
#include "util/bench_report.hpp"
#include "util/flags.hpp"
#include "workload/querier.hpp"
#include "workload/report.hpp"
#include "workload/tagent.hpp"

using namespace agentloc;

namespace {

struct Outcome {
  double location_ms = 0;
  std::size_t iagents = 0;
  std::uint64_t locality_moves = 0;
  std::size_t iagents_in_cluster = 0;
  std::uint64_t found = 0;
};

Outcome run(bool locality, std::size_t tagents, std::size_t cluster_size,
            std::size_t queries, std::size_t nodes, std::uint64_t seed) {
  // (cluster topology configured below)
  util::Rng master(seed);
  sim::Simulator simulator;
  // Two-tier topology: the roaming cluster is several WAN hops away from the
  // nodes where the HAgent and initial IAgent start — placement matters.
  net::ClusterLatencyModel::Config topology;
  topology.cluster_size = cluster_size;
  net::Network network(simulator, nodes,
                       std::make_unique<net::ClusterLatencyModel>(topology),
                       master.fork());
  platform::AgentSystem::Config platform_config;
  platform_config.service_time = sim::SimTime::micros(4000);
  platform::AgentSystem system(simulator, network, platform_config);

  core::MechanismConfig mechanism;
  mechanism.locality_migration = locality;
  core::HashLocationScheme scheme(system, mechanism);

  // The population roams the last topology cluster; the HAgent and initial
  // IAgent live in the first.
  std::vector<net::NodeId> pool;
  for (std::size_t i = 0; i < cluster_size; ++i) {
    pool.push_back(static_cast<net::NodeId>(nodes - 1 - i));
  }

  std::vector<platform::AgentId> targets;
  for (std::size_t i = 0; i < tagents; ++i) {
    workload::TAgent::Config config;
    config.residence = sim::SimTime::millis(300);
    config.seed = master.next();
    config.node_pool = pool;
    auto& agent = system.create<workload::TAgent>(
        pool[i % pool.size()], scheme, config);
    targets.push_back(agent.id());
  }

  simulator.run_until(sim::SimTime::seconds(60));

  std::size_t done = 0;
  workload::QuerierAgent::Config querier_config;
  querier_config.quota = queries;
  querier_config.think = sim::SimTime::millis(100);
  querier_config.seed = master.next();
  auto& querier = system.create<workload::QuerierAgent>(
      pool.front(), scheme, querier_config, targets,
      [&] { ++done; simulator.request_stop(); });
  simulator.run_until(sim::SimTime::seconds(600));

  Outcome outcome;
  outcome.location_ms = querier.latencies_ms().mean();
  outcome.found = querier.found();
  outcome.iagents = scheme.hagent().iagent_count();
  scheme.hagent().tree().for_each_leaf(
      [&](hashtree::IAgentId, hashtree::NodeLocation location) {
        for (const net::NodeId member : pool) {
          if (location == member) {
            ++outcome.iagents_in_cluster;
            break;
          }
        }
      });
  outcome.locality_moves = scheme.hagent().stats().iagent_moves;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto tagents = static_cast<std::size_t>(flags.get_int("tagents", 60));
  const auto cluster = static_cast<std::size_t>(flags.get_int("cluster", 4));
  const auto queries =
      static_cast<std::size_t>(flags.get_int("queries", 1200));
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 16));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string json_out =
      flags.get_string("json-out", "BENCH_ablation_locality.json");

  std::printf(
      "Ablation A6: locality placement of IAgents (paper §7 extension)\n"
      "%zu TAgents roaming a %zu-node cluster in a %zu-node network\n\n",
      tagents, cluster, nodes);

  workload::Table table({"locality", "location ms", "IAgents",
                         "IAgents in cluster", "IAgent moves", "found"});
  util::BenchReport report("ablation_locality");
  for (const bool locality : {false, true}) {
    const Outcome outcome =
        run(locality, tagents, cluster, queries, nodes, seed);
    table.add_row({locality ? "on" : "off",
                   workload::fmt(outcome.location_ms),
                   std::to_string(outcome.iagents),
                   std::to_string(outcome.iagents_in_cluster),
                   workload::fmt_count(outcome.locality_moves),
                   workload::fmt_count(outcome.found)});
    report.add_row()
        .set("locality", locality ? "on" : "off")
        .set("location_ms_mean", outcome.location_ms)
        .set("iagents", static_cast<std::uint64_t>(outcome.iagents))
        .set("iagents_in_cluster",
             static_cast<std::uint64_t>(outcome.iagents_in_cluster))
        .set("iagent_moves", outcome.locality_moves)
        .set("found", outcome.found);
    std::fflush(stdout);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: with the extension on, IAgents migrate into the cluster "
      "their agents\nroam, which shortens the (dominant) update path; "
      "queries issued from inside\nthe cluster also save a wide-area hop.\n");

  report.meta()
      .set("tagents", static_cast<std::uint64_t>(tagents))
      .set("cluster", static_cast<std::uint64_t>(cluster))
      .set("queries", static_cast<std::uint64_t>(queries))
      .set("nodes", static_cast<std::uint64_t>(nodes))
      .set("seed", seed);
  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return 0;
}
