// Microbenchmarks (google-benchmark) of the discrete-event engine itself:
// the schedule/execute/cancel costs underneath every simulated message.
// The headline `events_per_sec` meta field replays the exact mixed-churn
// workload used to judge engine PRs (self-rescheduling delivery chains with
// delivery-closure-sized captures plus armed-then-cancelled timeouts), so
// BENCH_sim_micro.json is directly comparable across engine generations.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>

#include "bench_json.hpp"
#include "sim/simulator.hpp"
#include "util/bench_report.hpp"
#include "util/rng.hpp"

using namespace agentloc;
using sim::SimTime;

namespace {

/// Self-rescheduling event the size of the network's delivery closure
/// (~40 bytes) — the hot handler shape of a real experiment run.
struct DeliveryChain {
  sim::Simulator* simulator;
  util::Rng* rng;
  std::uint64_t* executed;
  std::uint64_t total;
  std::uint64_t payload;

  void operator()() const {
    if (++*executed >= total) {
      simulator->request_stop();
      return;
    }
    simulator->schedule_after(
        SimTime::nanos(static_cast<std::int64_t>(rng->next_below(1000))),
        *this);
    // Every 4th event arms a 10ms timeout and cancels it — the RPC
    // timeout pattern that floods the heap with dead entries.
    if ((*executed & 3) == 0) {
      const sim::EventId id =
          simulator->schedule_after(SimTime::millis(10), *this);
      simulator->cancel(id);
    }
  }
};
static_assert(sizeof(DeliveryChain) <= 48,
              "chain must fit the simulator's inline handler buffer");

/// One full mixed-churn run; returns events/second.
double mixed_churn_run(std::uint64_t total_events) {
  sim::Simulator simulator;
  simulator.reserve(1024);
  util::Rng rng(7);
  std::uint64_t executed = 0;
  const DeliveryChain chain{&simulator, &rng, &executed, total_events, 0};
  for (int i = 0; i < 64; ++i) {
    simulator.schedule_after(SimTime::nanos(i), chain);
  }
  const auto start = std::chrono::steady_clock::now();
  simulator.run();
  const auto stop = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(stop - start).count();
  return static_cast<double>(simulator.executed()) / seconds;
}

void BM_ScheduleExecute(benchmark::State& state) {
  // Warm pool: schedule a batch of near-future events and drain it.
  const auto batch = static_cast<std::size_t>(state.range(0));
  sim::Simulator simulator;
  simulator.reserve(batch);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      simulator.schedule_after(SimTime::nanos(static_cast<std::int64_t>(i)),
                               [&sink] { ++sink; });
    }
    simulator.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ScheduleExecute)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ScheduleCancel(benchmark::State& state) {
  // Arm-then-cancel, the timeout pattern: cancel must be O(1) and the heap
  // must compact away the corpses instead of sifting through them.
  const auto batch = static_cast<std::size_t>(state.range(0));
  sim::Simulator simulator;
  simulator.reserve(batch);
  std::vector<sim::EventId> ids(batch);
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      ids[i] = simulator.schedule_after(SimTime::seconds(60), [] {});
    }
    for (const sim::EventId id : ids) simulator.cancel(id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ScheduleCancel)->Arg(64)->Arg(4096);

void BM_MixedChurn(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    constexpr std::uint64_t kEvents = 200'000;
    benchmark::DoNotOptimize(mixed_churn_run(kEvents));
    events += kEvents;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_MixedChurn)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  util::BenchReport report("sim_micro");

  // Headline number first (before google-benchmark may filter/abort): the
  // canonical 4M-event mixed-churn run, best of 3.
  constexpr std::uint64_t kHeadlineEvents = 4'000'000;
  double best = 0.0;
  for (int round = 0; round < 3; ++round) {
    const double rate = mixed_churn_run(kHeadlineEvents);
    if (rate > best) best = rate;
    std::printf("mixed churn round %d: %.2fM events/s\n", round, rate / 1e6);
  }
  report.meta()
      .set("events_per_sec", best)
      .set("headline_events", kHeadlineEvents)
      .set("workload",
           "64 delivery chains, 1us mean spacing, 25% cancelled timeouts");

  return benchjson::run_and_write(argc, argv, report);
}
