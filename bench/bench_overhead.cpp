// Ablation A8: message and byte overhead per scheme.
//
// Location time is only half the comparison — the paper's related-work
// section argues about *costs* too. This bench accounts for the network
// traffic each scheme generates for the identical workload: messages and
// bytes per completed query, and (for the hash scheme) how much of it is
// control traffic (hash refreshes, rehash coordination, handoffs).
//
// Flags: --tagents=50 --queries=1500 --residence-ms=300
//        --json-out=BENCH_overhead.json

#include <cstdio>
#include <string>
#include <vector>

#include "util/bench_report.hpp"
#include "util/flags.hpp"
#include "workload/experiment.hpp"
#include "workload/report.hpp"

using namespace agentloc;
using workload::ExperimentConfig;
using workload::ExperimentResult;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto tagents = static_cast<std::size_t>(flags.get_int("tagents", 50));
  const auto queries =
      static_cast<std::size_t>(flags.get_int("queries", 1500));
  const double residence_ms = flags.get_double("residence-ms", 300.0);
  const std::string json_out =
      flags.get_string("json-out", "BENCH_overhead.json");

  std::printf(
      "Ablation A8: network overhead per scheme "
      "(%zu TAgents, residence %.0fms, %zu queries)\n\n",
      tagents, residence_ms, queries);

  workload::Table table({"scheme", "location ms", "msgs/query", "KB/s",
                         "msgs/update", "refresh pulls", "trackers"});
  util::BenchReport report("overhead");

  for (const std::string scheme :
       {"centralized", "home", "forwarding", "hash"}) {
    ExperimentConfig config;
    config.scheme = scheme;
    config.tagents = tagents;
    config.residence = sim::SimTime::millis(residence_ms);
    config.total_queries = queries;
    const ExperimentResult result = workload::run_experiment(config);

    const double messages =
        static_cast<double>(result.network_stats.messages_sent);
    const double updates =
        static_cast<double>(result.scheme_stats.updates);
    const double per_query =
        result.queries_found > 0
            ? messages / static_cast<double>(result.queries_found)
            : 0.0;
    const double kb_per_s =
        result.sim_seconds > 0
            ? static_cast<double>(result.network_stats.bytes_sent) / 1024.0 /
                  result.sim_seconds
            : 0.0;

    table.add_row({scheme, workload::fmt(result.location_ms.mean()),
                   workload::fmt(per_query, 1), workload::fmt(kb_per_s, 1),
                   workload::fmt(updates > 0 ? messages / updates : 0.0, 1),
                   workload::fmt_count(result.scheme_stats.refreshes_triggered),
                   std::to_string(result.trackers_at_end)});
    report.add_row()
        .set("scheme", scheme)
        .set("msgs_per_query", per_query)
        .set("kb_per_sec", kb_per_s)
        .set("msgs_per_update", updates > 0 ? messages / updates : 0.0)
        .set("messages", result.network_stats.messages_sent)
        .set("bytes", result.network_stats.bytes_sent)
        .set("refreshes", result.scheme_stats.refreshes_triggered)
        .set("trackers", static_cast<std::uint64_t>(result.trackers_at_end))
        .add_summary("location_ms", result.location_ms);
    std::fflush(stdout);
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Note: msgs/query divides *all* traffic (updates included) by "
      "completed queries,\nso it reflects each scheme's total footprint for "
      "the same workload, not the\ncost of one isolated query.\n");

  report.meta()
      .set("tagents", static_cast<std::uint64_t>(tagents))
      .set("queries", static_cast<std::uint64_t>(queries))
      .set("residence_ms", residence_ms);
  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return 0;
}
