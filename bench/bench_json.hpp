// Shared glue between google-benchmark binaries and the repo's JSON bench
// trajectory (BENCH_<name>.json, written via util::BenchReport). The
// experiment-style benches build their reports by hand; microbenches built
// on google-benchmark funnel every run through this reporter instead.

#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "util/bench_report.hpp"

namespace agentloc::benchjson {

/// ConsoleReporter that additionally captures each benchmark run as a row
/// in a BenchReport, so the human-readable table and the machine-readable
/// trajectory come from the same numbers.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CollectingReporter(util::BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;  // skip aggregates
      util::BenchReport::Row& row = report_.add_row();
      row.set("name", run.benchmark_name());
      row.set("iterations", static_cast<std::int64_t>(run.iterations));
      row.set("real_ns_per_iter", run.GetAdjustedRealTime());
      row.set("cpu_ns_per_iter", run.GetAdjustedCPUTime());
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        row.set("items_per_second", static_cast<double>(items->second));
      }
      const auto bytes = run.counters.find("bytes_per_second");
      if (bytes != run.counters.end()) {
        row.set("bytes_per_second", static_cast<double>(bytes->second));
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  util::BenchReport& report_;
};

/// Standard main() body for a JSON-reporting microbench: run the registered
/// benchmarks, print the usual console table, then write `BENCH_<name>.json`
/// into the current working directory. The caller may pre-populate
/// `report.meta()` with bench-specific headline numbers.
inline int run_and_write(int argc, char** argv, util::BenchReport& report) {
  // Peel off the repo's own flags before google-benchmark sees the argv —
  // it rejects flags it does not know. --json-out=<path> picks the output
  // file (empty means the report's default path); --threads=<n> records the
  // worker count the run was taken under, so JSON trajectories from
  // different machines/configurations are comparable.
  std::string json_out;
  long threads = 1;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string json_prefix = "--json-out=";
    const std::string threads_prefix = "--threads=";
    if (arg.rfind(json_prefix, 0) == 0) {
      json_out = arg.substr(json_prefix.size());
    } else if (arg.rfind(threads_prefix, 0) == 0) {
      threads = std::strtol(arg.c_str() + threads_prefix.size(), nullptr, 10);
      if (threads < 1) threads = 1;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  report.meta()
      .set("threads", static_cast<std::uint64_t>(threads))
      .set("hardware_threads",
           static_cast<std::uint64_t>(
               std::max(1u, std::thread::hardware_concurrency())));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const std::string path = report.write(json_out);
  if (path.empty()) {
    std::fprintf(stderr, "failed to write %s\n",
                 json_out.empty() ? report.default_path().c_str()
                                  : json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace agentloc::benchjson
