// Ablation A1: sensitivity to the Tmax/Tmin thresholds.
//
// The paper fixes Tmax/Tmin ("we found that these values work well in our
// setting") and defers threshold heuristics to future work. This bench maps
// the trade-off: a low Tmax deploys many IAgents (flat latency, more rehash
// churn and hash-copy refreshes); a high Tmax approaches the centralized
// scheme's queueing behaviour.
//
// Flags: --tmax=10,25,50,100,400 --tagents=100 --queries=1500 --repeats=1
//        --json-out=BENCH_ablation_thresholds.json

#include <cstdio>
#include <string>

#include "util/bench_report.hpp"
#include "util/flags.hpp"
#include "workload/experiment.hpp"
#include "workload/report.hpp"

using namespace agentloc;
using workload::ExperimentConfig;
using workload::ExperimentResult;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto tmax_values = flags.get_int_list("tmax", {10, 25, 50, 100, 400});
  const auto tagents = static_cast<std::size_t>(flags.get_int("tagents", 100));
  const auto queries =
      static_cast<std::size_t>(flags.get_int("queries", 1500));
  const auto repeats = static_cast<std::size_t>(flags.get_int("repeats", 1));
  const std::string json_out =
      flags.get_string("json-out", "BENCH_ablation_thresholds.json");

  std::printf(
      "Ablation A1: Tmax/Tmin sensitivity (tagents=%zu, residence=500ms, "
      "Tmin=Tmax/10)\n\n",
      tagents);

  workload::Table table({"Tmax", "Tmin", "location ms", "p95 ms", "IAgents",
                         "splits+merges", "stale retries", "refresh pulls"});
  util::BenchReport report("ablation_thresholds");

  for (const std::int64_t tmax : tmax_values) {
    ExperimentConfig config;
    config.scheme = "hash";
    config.tagents = tagents;
    config.total_queries = queries;
    config.mechanism.t_max = static_cast<double>(tmax);
    config.mechanism.t_min = static_cast<double>(tmax) / 10.0;
    const ExperimentResult result = workload::run_repeated(config, repeats);

    table.add_row(
        {std::to_string(tmax), workload::fmt(config.mechanism.t_min, 1),
         workload::fmt(result.location_ms.mean()),
         workload::fmt(result.location_ms.percentile(95)),
         std::to_string(result.trackers_at_end),
         workload::fmt_count(result.scheme_stats.stale_retries +
                             result.scheme_stats.delivery_retries),
         workload::fmt_count(result.scheme_stats.stale_retries),
         workload::fmt_count(result.scheme_stats.refreshes_triggered)});
    report.add_row()
        .set("tmax", tmax)
        .set("tmin", config.mechanism.t_min)
        .set("trackers", static_cast<std::uint64_t>(result.trackers_at_end))
        .set("stale_retries", result.scheme_stats.stale_retries)
        .set("delivery_retries", result.scheme_stats.delivery_retries)
        .set("refreshes", result.scheme_stats.refreshes_triggered)
        .add_summary("location_ms", result.location_ms);
    std::fflush(stdout);
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: lower Tmax => more IAgents and more rehash-driven staleness "
      "traffic;\nhigher Tmax => fewer IAgents and growing queueing delay. "
      "The paper's 50/5\nsits where location time is flat at modest "
      "IAgent count.\n");

  report.meta()
      .set("tagents", static_cast<std::uint64_t>(tagents))
      .set("queries", static_cast<std::uint64_t>(queries))
      .set("repeats", static_cast<std::uint64_t>(repeats));
  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return 0;
}
