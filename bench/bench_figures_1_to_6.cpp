// Figures 1-6 (paper §3-§4): the hash tree of the running example and each
// worked split/merge transformation, regenerated from the library and
// printed as ASCII art next to the paper's hyper-label notation.
//
// Flags: --json-out=BENCH_figures_1_to_6.json

#include <cstdio>
#include <string>

#include "hashtree/paper_figures.hpp"
#include "util/bench_report.hpp"
#include "util/bitstring.hpp"
#include "util/flags.hpp"

using namespace agentloc;
using namespace agentloc::hashtree;

namespace {

void print_tree(const char* title, const HashTree& tree) {
  std::printf("%s\n%s", title, tree.render_ascii(paper_name).c_str());
  std::printf("hyper-labels:");
  for (const IAgentId leaf : tree.leaves()) {
    std::printf("  %s=%s", paper_name(leaf).c_str(),
                tree.hyper_label(leaf).c_str());
  }
  std::printf("\n\n");
}

util::BenchReport::Row& add_figure_row(util::BenchReport& report,
                                       const char* figure,
                                       const HashTree& tree) {
  return report.add_row()
      .set("figure", figure)
      .set("leaves", static_cast<std::uint64_t>(tree.leaf_count()))
      .set("version", tree.version());
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string json_out =
      flags.get_string("json-out", "BENCH_figures_1_to_6.json");
  util::BenchReport report("figures_1_to_6");

  std::printf("=== Figure 1: the hash tree of the running example ===\n\n");
  const HashTree figure1 = figure1_tree();
  print_tree("Figure 1 (leaves IA0..IA6):", figure1);
  add_figure_row(report, "1", figure1);

  std::printf("=== Figure 2: prefix/hyper-label compatibility ===\n\n");
  const util::BitString prefix = util::BitString::parse("00110");
  std::printf("id prefix          : %s\n", prefix.to_string().c_str());
  std::printf("IA2's hyper-label  : %s (valid bits at positions 0, 1, 4)\n",
              figure1.hyper_label(kIA2).c_str());
  std::printf("compatible(IA2)    : %s\n",
              figure1.compatible(prefix, kIA2) ? "yes" : "no");
  std::printf("lookup(%s)      -> %s\n\n", prefix.to_string().c_str(),
              paper_name(figure1.lookup(prefix).iagent).c_str());
  add_figure_row(report, "2", figure1)
      .set("compatible_ia2", figure1.compatible(prefix, kIA2) ? "yes" : "no")
      .set("lookup", paper_name(figure1.lookup(prefix).iagent));

  std::printf("=== Figure 3: simple split of IA3 (hyper-label 1.0) ===\n\n");
  HashTree fig3 = figure1_tree();
  fig3.simple_split(kIA3, 1, kIA7, 7);
  fig3.validate();
  print_tree("After simple split (IA3 keeps 1.0.0, IA7 takes 1.0.1):", fig3);
  add_figure_row(report, "3", fig3);

  std::printf(
      "=== Figure 4: complex split of IA1 (hyper-label 0.10) ===\n\n");
  HashTree fig4 = figure1_tree();
  const auto candidates = fig4.complex_split_candidates(kIA1);
  std::printf("padding bits available on IA1's path: %zu\n",
              candidates.size());
  fig4.complex_split(kIA1, candidates.front(), kIA7, 7);
  fig4.validate();
  print_tree("After complex split (label 10 splits into 1 . 0|1):", fig4);
  add_figure_row(report, "4", fig4)
      .set("split_candidates", static_cast<std::uint64_t>(candidates.size()));

  std::printf("=== Figure 5: simple merge of IA6 into IA5 ===\n\n");
  HashTree fig5 = figure1_tree();
  const MergeResult simple = fig5.merge(kIA6);
  fig5.validate();
  std::printf("merge kind: %s, absorbed by %s\n",
              simple.kind == MergeResult::Kind::kSimple ? "simple" : "complex",
              paper_name(simple.into_iagent).c_str());
  print_tree("After simple merge (IA5 moves up to serve prefix 11):", fig5);
  add_figure_row(report, "5", fig5)
      .set("merge_kind",
           simple.kind == MergeResult::Kind::kSimple ? "simple" : "complex");

  std::printf(
      "=== Figure 6: complex merge of IA1 into its sibling subtree ===\n\n");
  HashTree fig6 = figure1_tree();
  const MergeResult complex_merge = fig6.merge(kIA1);
  fig6.validate();
  std::printf("merge kind: %s\n",
              complex_merge.kind == MergeResult::Kind::kSimple ? "simple"
                                                               : "complex");
  print_tree(
      "After complex merge (label 0 absorbs 011; IA1's agents redistribute):",
      fig6);
  add_figure_row(report, "6", fig6)
      .set("merge_kind", complex_merge.kind == MergeResult::Kind::kSimple
                             ? "simple"
                             : "complex");

  std::printf("GraphViz rendering of Figure 1 (for the paper's diagram):\n%s\n",
              figure1_tree().render_dot(paper_name).c_str());

  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return 0;
}
