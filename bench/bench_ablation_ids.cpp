// Ablation A7: sensitivity to the agent-id bit distribution.
//
// The mechanism hashes *prefixes of the binary representation of agent ids*
// (paper §3) and splits on id bits, so extendible hashing's usual assumption
// applies: id bits should be uniformly distributed. This bench makes the
// assumption visible by running the same workload with (a) well-mixed ids
// and (b) small sequential ids, whose high-order bits are all zero. With
// sequential ids, a simple split must walk m = 1, 2, … toward the first bit
// that actually discriminates — bounded by max_split_bits — so balancing is
// slow or impossible and the mechanism degenerates toward the centralized
// scheme. The practical lesson the bench prints: mix your ids (a platform
// concern the paper's "independent of any agent-naming scheme" design makes
// trivially available).
//
// Flags: --tagents=100 --queries=1500 --max-split-bits=4,16
//        --json-out=BENCH_ablation_ids.json

#include <cstdio>
#include <string>

#include "core/hash_scheme.hpp"
#include "util/bench_report.hpp"
#include "util/flags.hpp"
#include "workload/experiment.hpp"
#include "workload/report.hpp"

using namespace agentloc;
using workload::ExperimentConfig;
using workload::ExperimentResult;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto tagents = static_cast<std::size_t>(flags.get_int("tagents", 100));
  const auto queries =
      static_cast<std::size_t>(flags.get_int("queries", 1500));
  const auto split_bits = flags.get_int_list("max-split-bits", {4, 16});
  const std::string json_out =
      flags.get_string("json-out", "BENCH_ablation_ids.json");

  std::printf(
      "Ablation A7: id-distribution sensitivity (%zu TAgents, residence "
      "500ms)\n\n",
      tagents);

  workload::Table table({"ids", "max m", "location ms", "p95 ms", "IAgents",
                         "max leaf depth (bits)", "found"});
  util::BenchReport report("ablation_ids");

  const auto run_case = [&](bool mixed, std::size_t max_m) {
    ExperimentConfig config;
    config.scheme = "hash";
    config.tagents = tagents;
    config.total_queries = queries;
    config.mixed_ids = mixed;
    config.mechanism.max_split_bits = max_m;
    std::size_t max_depth = 0;
    config.on_finish = [&max_depth](core::LocationScheme& scheme) {
      auto& hash = static_cast<core::HashLocationScheme&>(scheme);
      for (const auto leaf : hash.hagent().tree().leaves()) {
        max_depth = std::max(max_depth, hash.hagent().tree().depth_bits(leaf));
      }
    };
    const ExperimentResult result = workload::run_experiment(config);
    table.add_row({mixed ? "mixed" : "sequential", std::to_string(max_m),
                   workload::fmt(result.location_ms.mean()),
                   workload::fmt(result.location_ms.percentile(95)),
                   std::to_string(result.trackers_at_end),
                   std::to_string(max_depth),
                   workload::fmt_count(result.queries_found)});
    report.add_row()
        .set("ids", mixed ? "mixed" : "sequential")
        .set("max_split_bits", static_cast<std::uint64_t>(max_m))
        .set("trackers", static_cast<std::uint64_t>(result.trackers_at_end))
        .set("max_leaf_depth_bits", static_cast<std::uint64_t>(max_depth))
        .set("queries_found", result.queries_found)
        .add_summary("location_ms", result.location_ms);
    std::fflush(stdout);
  };

  run_case(true, static_cast<std::size_t>(split_bits.front()));
  for (const auto m : split_bits) {
    run_case(false, static_cast<std::size_t>(m));
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: sequential ids leave the discriminating bits deep in the "
      "id;\nwith small max_split_bits the tree cannot reach them and load "
      "stays on few\nIAgents (location time degrades toward centralized). "
      "Raising max_split_bits\nrestores balance at the cost of deeper "
      "hyper-labels. Mixed ids avoid the\nissue entirely.\n");

  report.meta()
      .set("tagents", static_cast<std::uint64_t>(tagents))
      .set("queries", static_cast<std::uint64_t>(queries));
  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return 0;
}
