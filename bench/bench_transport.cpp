// Transport-plane benchmark (A14): the zero-copy frame codec and the real
// socket backend, measured at the three levels DESIGN.md §17 argues about:
//
//   1. frame_encode / frame_decode — codec throughput, single-threaded,
//      pooled buffers (acceptance floor: ≥ 1M frames/s each);
//   2. coalesced/uncoalesced socketpair bursts — syscalls per frame with
//      writev gather vs. one write per frame (floor: ≥ 4× reduction at
//      burst depth 8);
//   3. uds_locate_roundtrip — end-to-end locate RPCs between two real
//      processes (fork + Unix-domain socket): agentlocd's LocateService
//      answering a pipelined LocateClient;
//   4. uds_locate_workers/w{W}_c{C} — the sharded-server sweep: a forked
//      LocateServer with W worker threads serving C routing clients
//      (connect_cluster) at once. Rows record throughput, p95 window
//      latency, and the per-worker op spread (balance evidence for the
//      round-robin leaf ownership). On a 1-hardware-thread box the sweep
//      is a determinism/balance contract, not a speedup claim — meta
//      records hardware_threads so readers can judge.
//
// Sandboxes without socket support still emit the codec rows; the socket
// rows are skipped and `meta.sockets_available` records 0 (the regression
// gate skips rows missing from the fresh run).
//
// Flags: --frames=2000000 --burst=8 --bursts=50000 --agents=1000
//        --ops=200000 --window=64 --seed=1 --json-out=BENCH_transport.json

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/locate_server.hpp"
#include "net/locate_service.hpp"
#include "net/socket_transport.hpp"
#include "util/bench_report.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/summary.hpp"

using namespace agentloc;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Encode `frames` kUpdate frames into pooled 16 KiB batch buffers —
/// the exact sender path of SocketTransport::send. Returns frames/s.
double bench_frame_encode(std::uint64_t frames, util::BufferPool& pool,
                          std::vector<std::uint8_t>& sample_out) {
  constexpr std::size_t kBatchCap = 16u << 10;
  const auto start = std::chrono::steady_clock::now();
  util::ByteWriter writer(pool.acquire(kBatchCap));
  for (std::uint64_t i = 0; i < frames; ++i) {
    const net::OpenFrame open =
        net::begin_frame(writer, net::FrameType::kUpdate, i & 0xff);
    writer.write_varint(util::mix64(i));
    writer.write_varint(i % 97);
    writer.write_varint(i);
    net::end_frame(writer, open);
    if (writer.size() >= kBatchCap) {
      if (sample_out.empty()) sample_out = writer.bytes();
      pool.release(std::move(writer).take());
      writer = util::ByteWriter(pool.acquire(kBatchCap));
    }
  }
  if (sample_out.empty()) sample_out = writer.bytes();
  pool.release(std::move(writer).take());
  return static_cast<double>(frames) / seconds_since(start);
}

/// Decode `frames` frames by replaying an encoded batch through a
/// FrameDecoder — the exact receiver path. Returns frames/s.
double bench_frame_decode(std::uint64_t frames,
                          const std::vector<std::uint8_t>& stream,
                          util::BufferPool& pool) {
  net::FrameDecoder decoder(pool);
  net::FrameView view;
  std::uint64_t decoded = 0;
  std::uint64_t checksum = 0;
  const auto start = std::chrono::steady_clock::now();
  while (decoded < frames) {
    decoder.feed(stream.data(), stream.size());
    for (;;) {
      const auto status = decoder.next(view);
      if (status != net::FrameDecoder::Status::kFrame) break;
      ++decoded;
      checksum += view.payload_size;
    }
  }
  const double rate = static_cast<double>(decoded) / seconds_since(start);
  if (checksum == 0) std::fprintf(stderr, "decode checksum empty?\n");
  return rate;
}

struct BurstResult {
  double frames_per_sec = 0;
  double syscalls_per_frame = 0;
};

/// Push `bursts` bursts of `burst` frames through a socketpair, flushing
/// once per burst, and drain them on the receiving transport.
bool bench_socketpair_burst(bool coalesce, std::uint64_t bursts,
                            std::uint64_t burst, BurstResult& out) {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return false;

  net::SocketTransport::Config config;
  config.coalesce = coalesce;
  net::SocketTransport sender(config);
  net::SocketTransport receiver(config);
  const auto tx = sender.adopt(fds[0]);
  receiver.adopt(fds[1]);

  std::uint64_t received = 0;
  receiver.on_frame([&](net::SocketTransport::PeerId,
                        const net::FrameView&) { ++received; });

  const std::uint64_t total = bursts * burst;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t sent = 0;
  for (std::uint64_t b = 0; b < bursts; ++b) {
    for (std::uint64_t i = 0; i < burst; ++i) {
      sender.send(tx, net::FrameType::kUpdate, 0,
                  [&](util::ByteWriter& w) {
                    w.write_varint(util::mix64(sent));
                    w.write_varint(sent % 97);
                    w.write_varint(sent);
                  });
      ++sent;
    }
    sender.flush(tx);
    // Drain so neither side's socket buffer fills; one poll turn suffices
    // for a burst this small.
    while (received < sent) {
      if (receiver.poll_once(100) <= 0) break;
    }
  }
  while (received < total && receiver.poll_once(100) > 0) {
  }
  const double elapsed = seconds_since(start);
  if (received != total) return false;

  out.frames_per_sec = static_cast<double>(total) / elapsed;
  out.syscalls_per_frame =
      static_cast<double>(sender.stats().flush_syscalls) /
      static_cast<double>(total);
  return true;
}

struct RoundTripResult {
  double ops_per_sec = 0;
  std::uint64_t mismatches = 0;
};

/// Fork an agentlocd-equivalent server process and run pipelined locates
/// against it over a Unix-domain socket: two real processes, real RPCs.
bool bench_uds_roundtrip(std::uint64_t agents, std::uint64_t ops,
                         std::size_t window, std::uint64_t seed,
                         RoundTripResult& out) {
  const std::string path =
      "/tmp/agentloc-bench-" + std::to_string(::getpid()) + ".sock";
  net::SocketAddress address;
  address.kind = net::SocketAddress::Kind::kUnix;
  address.path = path;

  const pid_t child = ::fork();
  if (child < 0) return false;
  if (child == 0) {
    // Server process: serve until the benchmark kills us.
    net::SocketTransport transport;
    net::LocateService service(transport, 8);
    std::string error;
    if (!transport.listen(address, &error)) _exit(1);
    for (;;) transport.poll_once(200);
  }

  net::LocateClient client;
  std::string error;
  bool connected = false;
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (client.connect(address, &error)) {
      connected = true;
      break;
    }
    ::usleep(20 * 1000);
  }
  if (!connected) {
    ::kill(child, SIGKILL);
    ::waitpid(child, nullptr, 0);
    std::fprintf(stderr, "uds roundtrip: connect failed: %s\n",
                 error.c_str());
    return false;
  }

  std::vector<std::uint64_t> ids;
  std::vector<std::uint32_t> nodes;
  ids.reserve(agents);
  nodes.reserve(agents);
  for (std::uint64_t i = 1; i <= agents; ++i) {
    const std::uint64_t id = util::mix64(i);
    const auto node = static_cast<std::uint32_t>(i % 97 + 1);
    client.send_update(id, node, 1);
    ids.push_back(id);
    nodes.push_back(node);
  }
  client.flush();
  if (!client.ping()) return false;  // fences the one-way updates

  util::Rng rng(seed);
  std::vector<std::uint32_t> expect_node(ops + window + 1, 0);
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t mismatches = 0;

  const auto start = std::chrono::steady_clock::now();
  while (completed < ops) {
    const std::uint64_t batch = std::min<std::uint64_t>(window, ops - issued);
    for (std::uint64_t b = 0; b < batch; ++b) {
      const std::uint64_t pick = rng.next_below(ids.size());
      ++issued;
      expect_node[issued] = nodes[pick];
      client.send_locate(ids[pick], issued);
    }
    const auto replies = client.drain(issued - completed, 10000);
    if (replies.empty() && issued > completed) break;  // timeout/disconnect
    for (const auto& item : replies) {
      ++completed;
      if (item.reply.status != core::LocateStatus::kFound ||
          item.reply.node != expect_node[item.correlation]) {
        ++mismatches;
      }
    }
  }
  const double elapsed = seconds_since(start);

  ::kill(child, SIGKILL);
  ::waitpid(child, nullptr, 0);
  ::unlink(path.c_str());

  if (completed != ops) {
    std::fprintf(stderr, "uds roundtrip: only %llu of %llu ops completed\n",
                 static_cast<unsigned long long>(completed),
                 static_cast<unsigned long long>(ops));
    return false;
  }
  out.ops_per_sec = static_cast<double>(completed) / elapsed;
  out.mismatches = mismatches;
  return true;
}

struct SweepResult {
  double ops_per_sec = 0;
  double p95_window_us = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t worker_ops_min = 0;
  std::uint64_t worker_ops_max = 0;
  std::size_t workers_effective = 0;
};

/// One cell of the sharded sweep: fork a LocateServer with `workers` worker
/// threads, then run `clients` routing clients (each its own thread + its
/// own LocateClient) issuing `ops / clients` pipelined locates. Latency is
/// sampled per window round-trip (send `window`, drain `window`); balance
/// comes from the clients' per-connection routing counters, summed.
bool bench_worker_sweep(std::size_t workers, std::size_t clients,
                        std::uint64_t agents, std::uint64_t ops,
                        std::size_t window, std::uint64_t seed,
                        SweepResult& out) {
  const std::string path = "/tmp/agentloc-bench-" +
                           std::to_string(::getpid()) + "-w" +
                           std::to_string(workers) + ".sock";
  net::SocketAddress address;
  address.kind = net::SocketAddress::Kind::kUnix;
  address.path = path;

  const pid_t child = ::fork();
  if (child < 0) return false;
  if (child == 0) {
    net::LocateServer::Config config;
    config.workers = workers;
    config.partitions = 8;
    net::LocateServer server(config);
    std::string error;
    if (!server.start(address, &error)) _exit(1);
    for (;;) ::pause();  // workers serve on their own threads
  }

  // Wait until every worker listener answers (they all bind before start()
  // returns in the child, so one successful cluster connect proves all).
  {
    net::LocateClient probe;
    std::string error;
    bool up = false;
    for (int attempt = 0; attempt < 200; ++attempt) {
      if (probe.connect_cluster(address, &error)) {
        up = true;
        break;
      }
      ::usleep(20 * 1000);
    }
    if (!up) {
      ::kill(child, SIGKILL);
      ::waitpid(child, nullptr, 0);
      std::fprintf(stderr, "worker sweep: connect failed: %s\n",
                   error.c_str());
      return false;
    }
    out.workers_effective = probe.worker_count();
  }

  struct ClientResult {
    std::uint64_t completed = 0;
    std::uint64_t mismatches = 0;
    std::vector<std::uint64_t> per_worker_ops;
    util::Summary window_us;
    bool ok = false;
  };
  std::vector<ClientResult> results(clients);
  const std::uint64_t ops_per_client = ops / clients;

  // Connect/register/fence happen outside the timed region: every client
  // finishes setup, parks at the barrier, and the clock starts when all are
  // released — the measured window is pure concurrent query load.
  std::atomic<std::size_t> ready{0};
  std::atomic<bool> go{false};
  std::chrono::steady_clock::time_point start;

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientResult& result = results[c];
      net::LocateClient client;
      std::string error;
      if (!client.connect_cluster(address, &error)) {
        ready.fetch_add(1);
        return;
      }

      // Disjoint id namespace per client so each verifies its own truth.
      std::vector<std::uint64_t> ids;
      std::vector<std::uint32_t> nodes;
      ids.reserve(agents);
      nodes.reserve(agents);
      for (std::uint64_t i = 1; i <= agents; ++i) {
        const std::uint64_t id = util::mix64(c * agents + i);
        const auto node = static_cast<std::uint32_t>(i % 97 + 1);
        client.send_update(id, node, 1);
        ids.push_back(id);
        nodes.push_back(node);
      }
      client.flush();
      const bool fenced = client.ping();  // fences updates on every shard
      ready.fetch_add(1);
      if (!fenced) return;
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();

      util::Rng rng(seed + c);
      std::vector<std::uint32_t> expect(ops_per_client + window + 1, 0);
      std::uint64_t issued = 0;
      while (result.completed < ops_per_client) {
        const std::uint64_t batch =
            std::min<std::uint64_t>(window, ops_per_client - issued);
        const auto window_start = std::chrono::steady_clock::now();
        for (std::uint64_t b = 0; b < batch; ++b) {
          const std::uint64_t pick = rng.next_below(ids.size());
          ++issued;
          expect[issued] = nodes[pick];
          client.send_locate(ids[pick], issued);
        }
        const auto replies = client.drain(issued - result.completed, 10000);
        result.window_us.add(seconds_since(window_start) * 1e6);
        if (replies.empty() && issued > result.completed) return;
        for (const auto& item : replies) {
          ++result.completed;
          if (item.reply.status != core::LocateStatus::kFound ||
              item.reply.node != expect[item.correlation]) {
            ++result.mismatches;
          }
        }
      }
      result.per_worker_ops = client.per_worker_ops();
      result.ok = true;
    });
  }
  while (ready.load(std::memory_order_acquire) < clients) {
    std::this_thread::yield();
  }
  start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();
  const double elapsed = seconds_since(start);

  ::kill(child, SIGKILL);
  ::waitpid(child, nullptr, 0);
  ::unlink(path.c_str());
  for (std::size_t k = 1; k < workers; ++k) {
    ::unlink((path + ".w" + std::to_string(k)).c_str());
  }

  std::vector<std::uint64_t> per_worker;
  util::Summary latency;
  std::uint64_t completed = 0;
  for (const ClientResult& result : results) {
    if (!result.ok) {
      std::fprintf(stderr, "worker sweep w=%zu c=%zu: a client failed\n",
                   workers, clients);
      return false;
    }
    completed += result.completed;
    out.mismatches += result.mismatches;
    latency.merge(result.window_us);
    if (per_worker.size() < result.per_worker_ops.size()) {
      per_worker.resize(result.per_worker_ops.size(), 0);
    }
    for (std::size_t k = 0; k < result.per_worker_ops.size(); ++k) {
      per_worker[k] += result.per_worker_ops[k];
    }
  }
  out.ops_per_sec = static_cast<double>(completed) / elapsed;
  out.p95_window_us = latency.percentile(95.0);
  out.worker_ops_min = *std::min_element(per_worker.begin(), per_worker.end());
  out.worker_ops_max = *std::max_element(per_worker.begin(), per_worker.end());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto frames =
      static_cast<std::uint64_t>(flags.get_int("frames", 2000000));
  const auto burst = static_cast<std::uint64_t>(flags.get_int("burst", 8));
  const auto bursts =
      static_cast<std::uint64_t>(flags.get_int("bursts", 50000));
  const auto agents =
      static_cast<std::uint64_t>(flags.get_int("agents", 1000));
  const auto ops = static_cast<std::uint64_t>(flags.get_int("ops", 200000));
  const auto window = static_cast<std::size_t>(flags.get_int("window", 64));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string json_out =
      flags.get_string("json-out", "BENCH_transport.json");

  const bool sockets = net::SocketTransport::sockets_available();

  util::BenchReport report("transport");
  report.meta()
      .set("frames", frames)
      .set("burst", burst)
      .set("window", static_cast<std::uint64_t>(window))
      .set("sockets_available", static_cast<std::uint64_t>(sockets ? 1 : 0))
      .set("hardware_threads",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()));

  const auto wall_start = std::chrono::steady_clock::now();

  // --- codec rows (always available) ---------------------------------------
  util::BufferPool pool;
  std::vector<std::uint8_t> sample;
  const double encode_rate = bench_frame_encode(frames, pool, sample);
  std::printf("frame_encode:   %8.2fM frames/s\n", encode_rate / 1e6);
  report.add_row()
      .set("name", "frame_encode")
      .set("items_per_second", encode_rate)
      .set("workers_effective", std::uint64_t{1});

  const double decode_rate = bench_frame_decode(frames, sample, pool);
  std::printf("frame_decode:   %8.2fM frames/s\n", decode_rate / 1e6);
  report.add_row()
      .set("name", "frame_decode")
      .set("items_per_second", decode_rate)
      .set("workers_effective", std::uint64_t{1});

  // --- socket rows ----------------------------------------------------------
  if (sockets) {
    BurstResult coalesced;
    BurstResult uncoalesced;
    if (bench_socketpair_burst(true, bursts, burst, coalesced) &&
        bench_socketpair_burst(false, bursts, burst, uncoalesced)) {
      const double reduction =
          coalesced.syscalls_per_frame > 0
              ? uncoalesced.syscalls_per_frame / coalesced.syscalls_per_frame
              : 0.0;
      std::printf(
          "socketpair burst %llu: coalesced %.3f syscalls/frame "
          "(%.2fM frames/s), uncoalesced %.3f (%.2fM frames/s) — %.1fx "
          "fewer syscalls\n",
          static_cast<unsigned long long>(burst),
          coalesced.syscalls_per_frame, coalesced.frames_per_sec / 1e6,
          uncoalesced.syscalls_per_frame, uncoalesced.frames_per_sec / 1e6,
          reduction);
      report.add_row()
          .set("name", "socketpair_coalesced")
          .set("burst", burst)
          .set("items_per_second", coalesced.frames_per_sec)
          .set("syscalls_per_frame", coalesced.syscalls_per_frame)
          .set("workers_effective", std::uint64_t{1});
      report.add_row()
          .set("name", "socketpair_uncoalesced")
          .set("burst", burst)
          .set("items_per_second", uncoalesced.frames_per_sec)
          .set("syscalls_per_frame", uncoalesced.syscalls_per_frame)
          .set("workers_effective", std::uint64_t{1});
      report.meta().set("syscall_reduction", reduction);
    } else {
      std::fprintf(stderr, "socketpair burst bench failed\n");
    }

    RoundTripResult roundtrip;
    if (bench_uds_roundtrip(agents, ops, window, seed, roundtrip)) {
      std::printf("uds_locate_roundtrip: %.2fM ops/s (%llu mismatches)\n",
                  roundtrip.ops_per_sec / 1e6,
                  static_cast<unsigned long long>(roundtrip.mismatches));
      report.add_row()
          .set("name", "uds_locate_roundtrip")
          .set("agents", agents)
          .set("ops", ops)
          .set("items_per_second", roundtrip.ops_per_sec)
          .set("mismatches", roundtrip.mismatches)
          .set("workers_effective", std::uint64_t{1});
      if (roundtrip.mismatches != 0) return 1;
    } else {
      std::fprintf(stderr, "uds roundtrip bench failed\n");
      return 1;
    }

    // --- sharded sweep: workers × clients ----------------------------------
    for (const std::size_t workers : {1u, 2u, 4u}) {
      for (const std::size_t clients : {1u, 2u}) {
        SweepResult sweep;
        if (!bench_worker_sweep(workers, clients, agents, ops, window, seed,
                                sweep)) {
          std::fprintf(stderr, "worker sweep w=%zu c=%zu failed\n", workers,
                       clients);
          return 1;
        }
        const double balance =
            sweep.worker_ops_min > 0
                ? static_cast<double>(sweep.worker_ops_max) /
                      static_cast<double>(sweep.worker_ops_min)
                : 0.0;
        std::printf(
            "uds_locate_workers w=%zu c=%zu: %.2fM ops/s, p95 window "
            "%.0fus, worker ops %llu..%llu (%.2fx), %llu mismatches\n",
            workers, clients, sweep.ops_per_sec / 1e6, sweep.p95_window_us,
            static_cast<unsigned long long>(sweep.worker_ops_min),
            static_cast<unsigned long long>(sweep.worker_ops_max), balance,
            static_cast<unsigned long long>(sweep.mismatches));
        report.add_row()
            .set("name", "uds_locate_workers/w" + std::to_string(workers) +
                             "_c" + std::to_string(clients))
            .set("workers", static_cast<std::uint64_t>(workers))
            .set("clients", static_cast<std::uint64_t>(clients))
            .set("workers_effective",
                 static_cast<std::uint64_t>(sweep.workers_effective))
            .set("agents", agents)
            .set("ops", ops)
            .set("items_per_second", sweep.ops_per_sec)
            .set("p95_window_us", sweep.p95_window_us)
            .set("worker_ops_min", sweep.worker_ops_min)
            .set("worker_ops_max", sweep.worker_ops_max)
            .set("balance_ratio", balance)
            .set("mismatches", sweep.mismatches);
        if (sweep.mismatches != 0) return 1;
      }
    }
  } else {
    std::printf("sockets unavailable: codec rows only\n");
  }

  report.meta().set("wall_seconds", seconds_since(wall_start));
  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return 0;
}
