// Ablation A9: coordinator fault tolerance (the paper's §7 extension #2 —
// "we are supporting a primary copy mechanism for the hash function, thus
// making the HAgent that keeps this copy a vulnerability point").
//
// Timeline: the population churns under load; at t=kill the primary HAgent
// is destroyed. Queries must keep answering throughout (IAgents don't need
// the coordinator for lookups), the standby replica must be promoted by the
// first client that notices, and rehashing must resume — demonstrated by a
// post-failover load surge that grows the IAgent population again.
//
// Flags: --tagents=40 --kill-s=40 --seed=1
//        --lp-threads=0 (accepted for CLI parity with bench_experiment1/2
//        and bench_scale; the scripted coordinator kill and mid-run
//        residence surge need the sequential engine, so the bench always
//        runs it and records lp_threads_effective=1)
//        --json-out=BENCH_failover.json

#include <cstdio>
#include <string>
#include <vector>

#include "core/hash_scheme.hpp"
#include "platform/agent_system.hpp"
#include "sim/timer.hpp"
#include "util/bench_report.hpp"
#include "util/flags.hpp"
#include "workload/querier.hpp"
#include "workload/tagent.hpp"

using namespace agentloc;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto tagents = static_cast<std::size_t>(flags.get_int("tagents", 40));
  const double kill_s = flags.get_double("kill-s", 40.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto lp_threads =
      static_cast<std::size_t>(flags.get_int("lp-threads", 0));
  if (lp_threads > 1) {
    std::printf(
        "note: --lp-threads=%zu requested; this bench's scripted kill "
        "needs the sequential engine (lp_threads_effective=1)\n",
        lp_threads);
  }
  const std::string json_out =
      flags.get_string("json-out", "BENCH_failover.json");

  util::Rng master(seed);
  sim::Simulator simulator;
  net::Network network(simulator, 16, net::make_default_lan_model(),
                       master.fork());
  platform::AgentSystem::Config platform_config;
  platform_config.service_time = sim::SimTime::micros(4000);
  platform::AgentSystem system(simulator, network, platform_config);

  core::MechanismConfig mechanism;
  mechanism.hagent_replication = true;
  core::HashLocationScheme scheme(system, mechanism);
  core::HAgent* primary = &scheme.hagent();
  core::HAgent* backup = scheme.backup_hagent();

  std::vector<platform::AgentId> targets;
  std::vector<workload::TAgent*> population;
  for (std::size_t i = 0; i < tagents; ++i) {
    workload::TAgent::Config config;
    config.residence = sim::SimTime::millis(250);
    config.seed = master.next();
    auto& agent = system.create<workload::TAgent>(
        static_cast<net::NodeId>(i % 16), scheme, config);
    population.push_back(&agent);
    targets.push_back(agent.id());
  }

  workload::QuerierAgent::Config querier_config;
  querier_config.quota = 0;
  querier_config.think = sim::SimTime::millis(100);
  querier_config.seed = master.next();
  auto& querier =
      system.create<workload::QuerierAgent>(1, scheme, querier_config, targets);

  std::printf(
      "Ablation A9: HAgent fault tolerance (replication + promotion)\n"
      "%zu TAgents; the primary coordinator dies at t=%.0fs\n\n",
      tagents, kill_s);
  std::printf("%8s %12s %9s %9s %10s %9s\n", "t (s)", "coordinator",
              "IAgents", "queries", "failed", "mean ms");

  sim::PeriodicTimer sampler(simulator, sim::SimTime::seconds(10), [&] {
    const bool primary_alive = system.exists(primary->id());
    const char* who = primary_alive
                          ? "primary"
                          : (backup->role() == core::HAgent::Role::kPrimary
                                 ? "BACKUP*"
                                 : "backup");
    std::printf("%8.0f %12s %9zu %9zu %10llu %9.2f\n",
                simulator.now().as_seconds(), who, scheme.tracker_count(),
                querier.latencies_ms().count(),
                static_cast<unsigned long long>(querier.failed()),
                querier.latencies_ms().mean());
  });
  sampler.start();

  simulator.run_until(sim::SimTime::seconds(kill_s));
  const std::size_t trackers_at_kill = scheme.tracker_count();
  const auto failed_at_kill = querier.failed();
  system.dispose(primary->id());
  std::printf("%8.0f %12s\n", simulator.now().as_seconds(),
              "<primary killed>");

  // Post-failover surge: faster movement demands more IAgents, which only a
  // promoted coordinator can create.
  for (auto* agent : population) {
    agent->set_residence(sim::SimTime::millis(80));
  }
  simulator.run_until(sim::SimTime::seconds(2.5 * kill_s));

  std::printf("\nsummary:\n");
  std::printf("  promoted: %s (promotions=%llu, ops replayed before death="
              "%llu)\n",
              backup->role() == core::HAgent::Role::kPrimary ? "yes" : "NO",
              static_cast<unsigned long long>(backup->stats().promotions),
              static_cast<unsigned long long>(
                  backup->stats().ops_applied_as_follower));
  std::printf("  IAgents: %zu at kill -> %zu after the post-failover surge\n",
              trackers_at_kill, scheme.tracker_count());
  std::printf("  queries: %zu completed, %llu failed (%llu of them after "
              "the kill)\n",
              querier.latencies_ms().count(),
              static_cast<unsigned long long>(querier.failed()),
              static_cast<unsigned long long>(querier.failed() -
                                              failed_at_kill));
  std::printf(
      "\nExpected: zero (or near-zero) failed queries, promotion shortly "
      "after the\nkill, and a larger IAgent population afterwards — the "
      "mechanism no longer has\na single point of failure.\n");

  util::BenchReport report("failover");
  report.meta()
      .set("tagents", static_cast<std::uint64_t>(tagents))
      .set("kill_s", kill_s)
      .set("seed", seed)
      .set("lp_threads", static_cast<std::uint64_t>(lp_threads))
      .set("lp_threads_effective", static_cast<std::uint64_t>(1));
  report.add_row()
      .set("promoted",
           backup->role() == core::HAgent::Role::kPrimary ? "yes" : "no")
      .set("promotions", backup->stats().promotions)
      .set("ops_replayed", backup->stats().ops_applied_as_follower)
      .set("trackers_at_kill", static_cast<std::uint64_t>(trackers_at_kill))
      .set("trackers_after_surge",
           static_cast<std::uint64_t>(scheme.tracker_count()))
      .set("queries_failed", querier.failed())
      .set("queries_failed_after_kill", querier.failed() - failed_at_kill)
      .add_summary("location_ms", querier.latencies_ms());
  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return 0;
}
