// Ablation A3: the cost of lazy secondary-copy maintenance (paper §4.3).
//
// Secondary copies refresh only when a request bounces off the wrong IAgent,
// so the staleness cost is proportional to how often the hash function
// *changes*. This bench drives rehash churn directly: the population's
// mobility oscillates between a storm (100 ms dwell) and a calm (2 s dwell),
// forcing splits on every upswing and merges on every downswing. Faster
// oscillation = more rehashes = more wrong-IAgent bounces — the question is
// what that does to the queries flowing throughout.
//
// Flags: --cycles-s=15,30,60,120 --tagents=60 --total-s=240 --seed=1
//        --json-out=BENCH_ablation_staleness.json

#include <cstdio>
#include <string>
#include <vector>

#include "core/hash_scheme.hpp"
#include "platform/agent_system.hpp"
#include "sim/timer.hpp"
#include "util/bench_report.hpp"
#include "util/flags.hpp"
#include "workload/querier.hpp"
#include "workload/report.hpp"
#include "workload/tagent.hpp"

using namespace agentloc;

namespace {

struct Outcome {
  double location_ms = 0;
  double p95_ms = 0;
  double attempts = 0;
  std::uint64_t rehashes = 0;
  std::uint64_t stale_retries = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t queries = 0;
  std::uint64_t failed = 0;
};

Outcome run(double cycle_s, std::size_t tagents, double total_s,
            std::uint64_t seed) {
  util::Rng master(seed);
  sim::Simulator simulator;
  net::Network network(simulator, 16, net::make_default_lan_model(),
                       master.fork());
  platform::AgentSystem::Config platform_config;
  platform_config.service_time = sim::SimTime::micros(4000);
  platform::AgentSystem system(simulator, network, platform_config);

  core::MechanismConfig mechanism;
  mechanism.rehash_cooldown = sim::SimTime::seconds(2);
  core::HashLocationScheme scheme(system, mechanism);

  std::vector<workload::TAgent*> population;
  std::vector<platform::AgentId> targets;
  for (std::size_t i = 0; i < tagents; ++i) {
    workload::TAgent::Config config;
    config.residence = sim::SimTime::seconds(2);
    config.seed = master.next();
    auto& agent =
        system.create<workload::TAgent>(static_cast<net::NodeId>(i % 16),
                                        scheme, config);
    population.push_back(&agent);
    targets.push_back(agent.id());
  }

  // Mobility oscillator: half a cycle storm, half a cycle calm.
  bool storm = false;
  sim::PeriodicTimer oscillator(
      simulator, sim::SimTime::seconds(cycle_s / 2), [&] {
        storm = !storm;
        const auto dwell =
            storm ? sim::SimTime::millis(100) : sim::SimTime::seconds(2);
        for (auto* agent : population) agent->set_residence(dwell);
      });
  oscillator.start();

  workload::QuerierAgent::Config querier_config;
  querier_config.quota = 0;  // run for the whole horizon
  querier_config.think = sim::SimTime::millis(100);
  querier_config.seed = master.next();
  auto& querier =
      system.create<workload::QuerierAgent>(1, scheme, querier_config, targets);

  simulator.run_until(sim::SimTime::seconds(total_s));

  Outcome outcome;
  outcome.location_ms = querier.latencies_ms().mean();
  outcome.p95_ms = querier.latencies_ms().percentile(95);
  outcome.attempts = querier.attempts().mean();
  outcome.queries = querier.latencies_ms().count();
  outcome.failed = querier.failed();
  const auto& hstats = scheme.hagent().stats();
  outcome.rehashes = hstats.simple_splits + hstats.complex_splits +
                     hstats.simple_merges + hstats.complex_merges;
  outcome.stale_retries =
      scheme.stats().stale_retries + scheme.stats().delivery_retries;
  outcome.refreshes = scheme.stats().refreshes_triggered;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto cycles = flags.get_int_list("cycles-s", {15, 30, 60, 120});
  const auto tagents = static_cast<std::size_t>(flags.get_int("tagents", 60));
  const double total_s = flags.get_double("total-s", 240.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string json_out =
      flags.get_string("json-out", "BENCH_ablation_staleness.json");

  std::printf(
      "Ablation A3: staleness cost of lazy hash-copy refresh under churn\n"
      "(%zu TAgents; mobility oscillates storm/calm with the given period "
      "over %.0fs)\n\n",
      tagents, total_s);

  workload::Table table({"cycle s", "rehashes", "stale retries",
                         "refresh pulls", "location ms", "p95 ms",
                         "mean attempts", "queries", "failed"});
  util::BenchReport report("ablation_staleness");

  for (const std::int64_t cycle : cycles) {
    const Outcome outcome =
        run(static_cast<double>(cycle), tagents, total_s, seed);
    table.add_row({std::to_string(cycle),
                   workload::fmt_count(outcome.rehashes),
                   workload::fmt_count(outcome.stale_retries),
                   workload::fmt_count(outcome.refreshes),
                   workload::fmt(outcome.location_ms),
                   workload::fmt(outcome.p95_ms),
                   workload::fmt(outcome.attempts),
                   workload::fmt_count(outcome.queries),
                   workload::fmt_count(outcome.failed)});
    report.add_row()
        .set("cycle_s", cycle)
        .set("rehashes", outcome.rehashes)
        .set("stale_retries", outcome.stale_retries)
        .set("refreshes", outcome.refreshes)
        .set("location_ms_mean", outcome.location_ms)
        .set("location_ms_p95", outcome.p95_ms)
        .set("mean_attempts", outcome.attempts)
        .set("queries", outcome.queries)
        .set("failed", outcome.failed);
    std::fflush(stdout);
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: faster oscillation means more rehashes and therefore more "
      "wrong-IAgent\nbounces and refresh pulls — but mean attempts stay near "
      "1 and location time\nnear flat: only requests that actually hit a "
      "moved region pay (paper §4.3).\n");

  report.meta()
      .set("tagents", static_cast<std::uint64_t>(tagents))
      .set("total_s", total_s)
      .set("seed", seed);
  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return 0;
}
