// Microbenchmarks (google-benchmark) of the agent-platform message plane:
// the send/dispatch pipeline, the request/reply (RPC) round trip, and the
// per-node service registry that every fixed-size protocol payload rides
// through. The headline `messages_per_sec` meta field replays a canonical
// one-way UpdateRequest storm between two nodes (best of 3), so
// BENCH_platform_micro.json is directly comparable across platform
// generations — it is the number the CI bench-regression gate watches.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "bench_json.hpp"
#include "core/protocol.hpp"
#include "net/frame.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "util/buffer_pool.hpp"
#include "platform/agent_system.hpp"
#include "sim/simulator.hpp"
#include "util/bench_report.hpp"
#include "util/rng.hpp"

using namespace agentloc;
using sim::SimTime;

namespace {

/// Counts one-way messages; echoes an UpdateAck when asked via RPC.
class SinkAgent : public platform::Agent {
 public:
  void on_message(const platform::Message& message) override {
    ++received;
    if (message.correlation != 0 && !message.is_reply) {
      system().reply(message, id(), core::UpdateAck{},
                     core::UpdateAck::kWireBytes);
    }
  }
  std::uint64_t received = 0;
};

struct Cluster {
  explicit Cluster(std::size_t nodes = 2)
      : network(simulator, nodes,
                std::make_unique<net::FixedLatencyModel>(SimTime::micros(5)),
                util::Rng(11)),
        system(simulator, network, make_config()) {}

  static platform::AgentSystem::Config make_config() {
    platform::AgentSystem::Config config;
    config.service_time = SimTime::micros(1);
    return config;
  }

  sim::Simulator simulator;
  net::Network network;
  platform::AgentSystem system;
};

/// One-way fixed-size-payload storm: `total` UpdateRequests from node 0 to
/// a sink on node 1, sent in inbox-stressing bursts. Returns messages/s.
double one_way_run(std::uint64_t total) {
  Cluster cluster;
  auto& sender = cluster.system.create<SinkAgent>(0);
  auto& sink = cluster.system.create<SinkAgent>(1);
  cluster.simulator.run();
  const platform::AgentAddress to{1, sink.id()};
  core::UpdateRequest update;
  update.entry = core::LocationEntry{sink.id(), 1, 1};

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t sent = 0;
  while (sent < total) {
    for (int burst = 0; burst < 1024 && sent < total; ++burst, ++sent) {
      ++update.entry.seq;
      cluster.system.send(sender.id(), to, update,
                          core::UpdateRequest::kWireBytes);
    }
    cluster.simulator.run();
  }
  const auto stop = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(stop - start).count();
  return static_cast<double>(sink.received) / seconds;
}

void BM_SendDispatch(benchmark::State& state) {
  const auto batch = static_cast<std::uint64_t>(state.range(0));
  Cluster cluster;
  auto& sender = cluster.system.create<SinkAgent>(0);
  auto& sink = cluster.system.create<SinkAgent>(1);
  cluster.simulator.run();
  const platform::AgentAddress to{1, sink.id()};
  core::UpdateRequest update;
  update.entry = core::LocationEntry{sink.id(), 1, 1};
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < batch; ++i) {
      ++update.entry.seq;
      cluster.system.send(sender.id(), to, update,
                          core::UpdateRequest::kWireBytes);
    }
    cluster.simulator.run();
  }
  benchmark::DoNotOptimize(sink.received);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_SendDispatch)->Arg(64)->Arg(1024)->Arg(8192);

void BM_RequestReply(benchmark::State& state) {
  // Windows of outstanding RPCs: request + reply + timeout arm/cancel is
  // the locate-path shape. Items = completed round trips.
  const auto window = static_cast<std::uint64_t>(state.range(0));
  Cluster cluster;
  auto& sender = cluster.system.create<SinkAgent>(0);
  auto& echo = cluster.system.create<SinkAgent>(1);
  cluster.simulator.run();
  const platform::AgentAddress to{1, echo.id()};
  std::uint64_t completed = 0;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < window; ++i) {
      cluster.system.request(sender.id(), to, core::LocateRequest{echo.id()},
                             core::LocateRequest::kWireBytes,
                             [&completed](platform::RpcResult) { ++completed; });
    }
    cluster.simulator.run();
  }
  benchmark::DoNotOptimize(completed);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(window));
}
BENCHMARK(BM_RequestReply)->Arg(64)->Arg(1024);

void BM_ServiceLookup(benchmark::State& state) {
  // The registry probe performed on agent arrivals: resolve a well-known
  // name (e.g. "lhagent") against a node with a handful of registrations.
  Cluster cluster;
  auto& agent = cluster.system.create<SinkAgent>(0);
  cluster.simulator.run();
  const char* names[] = {"lhagent", "monitor", "market",  "gateway",
                         "auditor", "cache",   "spooler", "registry"};
  for (const char* name : names) {
    cluster.system.register_service(0, name, agent.id());
  }
  std::uint64_t hits = 0;
  for (auto _ : state) {
    const auto found = cluster.system.lookup_service(0, "lhagent");
    hits += found.has_value();
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServiceLookup);

void BM_FrameEncode(benchmark::State& state) {
  // The wire layer's sender path (DESIGN.md §17): header + UpdateRequest
  // payload encoded straight into pooled 16 KiB batch buffers, length slot
  // patched in place. Items = frames.
  constexpr std::size_t kBatchCap = 16u << 10;
  util::BufferPool pool;
  util::ByteWriter writer(pool.acquire(kBatchCap));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const net::OpenFrame open =
        net::begin_frame(writer, net::FrameType::kUpdate, i & 0xff);
    writer.write_varint(util::mix64(i));
    writer.write_varint(i % 97);
    writer.write_varint(i);
    net::end_frame(writer, open);
    ++i;
    if (writer.size() >= kBatchCap) {
      pool.release(std::move(writer).take());
      writer = util::ByteWriter(pool.acquire(kBatchCap));
    }
  }
  benchmark::DoNotOptimize(writer.size());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FrameEncode);

void BM_FrameDecode(benchmark::State& state) {
  // The receiver path: a pre-encoded batch replayed through a FrameDecoder
  // (views into the rolling pooled buffer, no payload copies).
  constexpr std::size_t kBatchCap = 16u << 10;
  util::BufferPool pool;
  util::ByteWriter writer(pool.acquire(kBatchCap));
  std::uint64_t encoded = 0;
  while (writer.size() < kBatchCap) {
    const net::OpenFrame open =
        net::begin_frame(writer, net::FrameType::kUpdate, encoded & 0xff);
    writer.write_varint(util::mix64(encoded));
    writer.write_varint(encoded % 97);
    writer.write_varint(encoded);
    net::end_frame(writer, open);
    ++encoded;
  }
  const std::vector<std::uint8_t> stream = std::move(writer).take();

  net::FrameDecoder decoder(pool);
  net::FrameView view;
  std::uint64_t frames = 0;
  while (state.KeepRunningBatch(static_cast<std::int64_t>(encoded))) {
    decoder.feed(stream.data(), stream.size());
    while (decoder.next(view) == net::FrameDecoder::Status::kFrame) {
      ++frames;
    }
  }
  benchmark::DoNotOptimize(frames);
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
}
BENCHMARK(BM_FrameDecode);

}  // namespace

int main(int argc, char** argv) {
  util::BenchReport report("platform_micro");

  // Headline number first (before google-benchmark may filter/abort): the
  // canonical 400k-message one-way storm, best of 3.
  constexpr std::uint64_t kHeadlineMessages = 400'000;
  double best = 0.0;
  for (int round = 0; round < 3; ++round) {
    const double rate = one_way_run(kHeadlineMessages);
    if (rate > best) best = rate;
    std::printf("one-way storm round %d: %.2fM messages/s\n", round,
                rate / 1e6);
  }
  report.meta()
      .set("messages_per_sec", best)
      .set("headline_messages", kHeadlineMessages)
      .set("workload",
           "2-node fixed-latency cluster, 1024-message bursts of 40-byte "
           "UpdateRequests, 1us service time");

  return benchjson::run_and_write(argc, argv, report);
}
