// Experiment I (paper §5, Figure 7): average location time vs. number of
// TAgents, centralized scheme vs. the hash-based mechanism.
//
// Paper setup (digits reconstructed in DESIGN.md §5): TAgent counts
// {10, 20, 30, 50, 100}, each TAgent staying 0.5 s per node, 2000 location
// queries, Tmax/Tmin = 50/5 msg/s. The paper's finding to reproduce: the
// centralized scheme's location time grows (roughly linearly) with the
// number of TAgents while the hash mechanism stays almost constant.
//
// Flags: --agents=10,20,30,50,100 --queries=2000 --repeats=2 --nodes=16
//        --residence-ms=500 --seed=1 --schemes=centralized,hash
//        --threads=0 (0 = one worker per hardware thread)
//        --lp-threads=0 (>=1 shards the platform onto the parallel LP
//        engine with that many workers; see DESIGN.md §16)
//        --json-out=BENCH_experiment1.json

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "util/bench_report.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"
#include "workload/experiment.hpp"
#include "workload/report.hpp"

using namespace agentloc;
using workload::ExperimentConfig;
using workload::ExperimentResult;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto agent_counts =
      flags.get_int_list("agents", {10, 20, 30, 50, 100});
  const auto queries = static_cast<std::size_t>(flags.get_int("queries", 2000));
  const auto repeats = static_cast<std::size_t>(flags.get_int("repeats", 2));
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 16));
  const double residence_ms = flags.get_double("residence-ms", 500.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  std::size_t threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  if (threads == 0) threads = util::ThreadPool::default_threads();
  const auto lp_threads =
      static_cast<std::size_t>(flags.get_int("lp-threads", 0));
  const std::string json_out =
      flags.get_string("json-out", "BENCH_experiment1.json");
  const std::string schemes_flag =
      flags.get_string("schemes", "centralized,hash");

  std::vector<std::string> schemes;
  for (std::size_t pos = 0; pos <= schemes_flag.size();) {
    const auto comma = schemes_flag.find(',', pos);
    const auto end = comma == std::string::npos ? schemes_flag.size() : comma;
    if (end > pos) schemes.push_back(schemes_flag.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  std::printf(
      "Experiment I (Figure 7): location time vs. number of TAgents\n"
      "residence=%.0fms queries=%zu repeats=%zu nodes=%zu\n\n",
      residence_ms, queries, repeats, nodes);

  workload::Table table({"scheme", "tagents", "location ms (mean)", "p95 ms",
                         "trackers", "found", "failed", "stale retries"});
  std::vector<std::pair<std::string, double>> series;

  util::BenchReport report("experiment1");
  std::uint64_t total_events = 0;
  double total_wall = 0.0;
  double max_bytes_per_agent = 0.0;
  std::size_t max_peak_inbox = 0;

  for (const std::string& scheme : schemes) {
    for (const std::int64_t count : agent_counts) {
      ExperimentConfig config;
      config.scheme = scheme;
      config.nodes = nodes;
      config.tagents = static_cast<std::size_t>(count);
      config.residence = sim::SimTime::millis(residence_ms);
      config.total_queries = queries;
      config.seed = seed;
      config.lp_threads = lp_threads;
      const auto start = std::chrono::steady_clock::now();
      const ExperimentResult result =
          workload::run_parallel(config, repeats, threads);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      total_events += result.events_executed;
      total_wall += wall;
      max_bytes_per_agent = std::max(max_bytes_per_agent,
                                     result.platform_stats.bytes_per_agent);
      max_peak_inbox = std::max(max_peak_inbox,
                                result.platform_stats.peak_inbox_depth);

      table.add_row({scheme, std::to_string(count),
                     workload::fmt(result.location_ms.mean()),
                     workload::fmt(result.location_ms.percentile(95)),
                     std::to_string(result.trackers_at_end),
                     workload::fmt_count(result.queries_found),
                     workload::fmt_count(result.queries_failed),
                     workload::fmt_count(result.scheme_stats.stale_retries)});
      series.emplace_back(scheme + " n=" + std::to_string(count),
                          result.location_ms.mean());
      report.add_row()
          .set("scheme", scheme)
          .set("tagents", static_cast<std::int64_t>(count))
          .set("threads", static_cast<std::uint64_t>(threads))
          .set("lp_threads", static_cast<std::uint64_t>(lp_threads))
          .set("wall_seconds", wall)
          .set("events", result.events_executed)
          .set("events_per_sec",
               wall > 0 ? static_cast<double>(result.events_executed) / wall
                        : 0.0)
          .set("queries_found", result.queries_found)
          .set("queries_failed", result.queries_failed)
          .set("trackers", static_cast<std::uint64_t>(result.trackers_at_end))
          .set("bytes_per_agent", result.platform_stats.bytes_per_agent)
          .set("peak_inbox_depth",
               static_cast<std::uint64_t>(
                   result.platform_stats.peak_inbox_depth))
          .add_summary("location_ms", result.location_ms);
      std::fflush(stdout);
    }
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("Figure 7 shape (mean location time, ms):\n%s\n",
              workload::ascii_series(series).c_str());
  std::printf(
      "Expected shape (paper): centralized grows with the number of "
      "TAgents;\nthe hash mechanism stays almost constant.\n");

  report.meta()
      .set("repeats", static_cast<std::uint64_t>(repeats))
      .set("threads", static_cast<std::uint64_t>(threads))
      .set("lp_threads", static_cast<std::uint64_t>(lp_threads))
      .set("hardware_threads",
           static_cast<std::uint64_t>(util::ThreadPool::default_threads()))
      .set("queries", static_cast<std::uint64_t>(queries))
      .set("nodes", static_cast<std::uint64_t>(nodes))
      .set("wall_seconds", total_wall)
      .set("events", total_events)
      .set("events_per_sec",
           total_wall > 0 ? static_cast<double>(total_events) / total_wall
                          : 0.0)
      .set("bytes_per_agent", max_bytes_per_agent)
      .set("peak_inbox_depth", static_cast<std::uint64_t>(max_peak_inbox));
  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return 0;
}
