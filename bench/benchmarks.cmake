# One binary per paper figure/experiment plus ablations and microbenches.
# Included from the top-level CMakeLists (not add_subdirectory) so that
# ${CMAKE_BINARY_DIR}/bench contains ONLY the bench executables:
#   for b in build/bench/*; do $b; done
function(agentloc_add_bench target source)
  add_executable(${target} ${CMAKE_SOURCE_DIR}/bench/${source})
  target_link_libraries(${target} PRIVATE ${ARGN})
  set_target_properties(${target} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

agentloc_add_bench(bench_figures_1_to_6 bench_figures_1_to_6.cpp agentloc_hashtree)
agentloc_add_bench(bench_experiment1 bench_experiment1.cpp agentloc_workload)
agentloc_add_bench(bench_experiment2 bench_experiment2.cpp agentloc_workload)

agentloc_add_bench(bench_hashtree_micro bench_hashtree_micro.cpp agentloc_hashtree)
target_link_libraries(bench_hashtree_micro PRIVATE benchmark::benchmark)

agentloc_add_bench(bench_rehash_micro bench_rehash_micro.cpp agentloc_hashtree)
target_link_libraries(bench_rehash_micro PRIVATE benchmark::benchmark)

agentloc_add_bench(bench_sim_micro bench_sim_micro.cpp agentloc_sim)
target_link_libraries(bench_sim_micro PRIVATE benchmark::benchmark)

agentloc_add_bench(bench_platform_micro bench_platform_micro.cpp agentloc_core)
target_link_libraries(bench_platform_micro PRIVATE benchmark::benchmark)

agentloc_add_bench(bench_ablation_thresholds bench_ablation_thresholds.cpp agentloc_workload)
agentloc_add_bench(bench_ablation_schemes bench_ablation_schemes.cpp agentloc_workload)
agentloc_add_bench(bench_ablation_staleness bench_ablation_staleness.cpp agentloc_workload)
agentloc_add_bench(bench_adaptation bench_adaptation.cpp agentloc_workload)
agentloc_add_bench(bench_ablation_locality bench_ablation_locality.cpp agentloc_workload)
agentloc_add_bench(bench_ablation_ids bench_ablation_ids.cpp agentloc_workload)
agentloc_add_bench(bench_ablation_batching bench_ablation_batching.cpp agentloc_workload)
agentloc_add_bench(bench_ablation_cache bench_ablation_cache.cpp agentloc_workload)
agentloc_add_bench(bench_parallel_scale bench_parallel_scale.cpp agentloc_workload)
agentloc_add_bench(bench_scale bench_scale.cpp agentloc_workload)
agentloc_add_bench(bench_overhead bench_overhead.cpp agentloc_workload)
agentloc_add_bench(bench_failover bench_failover.cpp agentloc_workload)
agentloc_add_bench(bench_watch bench_watch.cpp agentloc_workload)
agentloc_add_bench(bench_transport bench_transport.cpp agentloc_net)
