// Ablation A5: adaptation to an unpredictable load change (paper §5: "if at
// some point a large number of mobile agents is created … or their moving
// rate changes unpredictably, our mechanism will adapt nicely by changing
// appropriately the hash function").
//
// One run, three phases: calm (residence 2 s) → storm (residence 100 ms) →
// calm again. The bench samples the IAgent population every 2 s and prints
// the time series: it should rise during the storm and merge back down
// afterwards, while per-phase location times stay flat.
//
// Flags: --tagents=40 --phase-s=60 --nodes=16 --seed=1
//        --lp-threads=0 (accepted for CLI parity with bench_experiment1/2
//        and bench_scale; this bench scripts mid-run interventions —
//        set_residence at phase edges — that the sharded LP engine cannot
//        express, so it always runs the sequential engine and records
//        lp_threads_effective=1)
//        --json-out=BENCH_adaptation.json

#include <cstdio>
#include <string>
#include <vector>

#include "core/hash_scheme.hpp"
#include "platform/agent_system.hpp"
#include "sim/timer.hpp"
#include "util/bench_report.hpp"
#include "util/flags.hpp"
#include "util/summary.hpp"
#include "workload/querier.hpp"
#include "workload/report.hpp"
#include "workload/tagent.hpp"

using namespace agentloc;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto tagents = static_cast<std::size_t>(flags.get_int("tagents", 40));
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 16));
  const double phase_s = flags.get_double("phase-s", 60.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto lp_threads =
      static_cast<std::size_t>(flags.get_int("lp-threads", 0));
  if (lp_threads > 1) {
    std::printf(
        "note: --lp-threads=%zu requested; this bench's phase interventions "
        "need the sequential engine (lp_threads_effective=1)\n",
        lp_threads);
  }
  const std::string json_out =
      flags.get_string("json-out", "BENCH_adaptation.json");

  util::Rng master(seed);
  sim::Simulator simulator;
  net::Network network(simulator, nodes, net::make_default_lan_model(),
                       master.fork());
  platform::AgentSystem::Config platform_config;
  platform_config.service_time = sim::SimTime::micros(4000);
  platform::AgentSystem system(simulator, network, platform_config);

  core::MechanismConfig mechanism;
  core::HashLocationScheme scheme(system, mechanism);

  const sim::SimTime calm = sim::SimTime::seconds(2);
  const sim::SimTime storm = sim::SimTime::millis(100);

  std::vector<workload::TAgent*> population;
  std::vector<platform::AgentId> targets;
  for (std::size_t i = 0; i < tagents; ++i) {
    workload::TAgent::Config config;
    config.residence = calm;
    config.seed = master.next();
    auto& agent = system.create<workload::TAgent>(
        static_cast<net::NodeId>(i % nodes), scheme, config);
    population.push_back(&agent);
    targets.push_back(agent.id());
  }

  // A background querier keeps measuring location time across phases.
  workload::QuerierAgent::Config querier_config;
  querier_config.quota = 0;  // unlimited; we stop the run by deadline
  querier_config.think = sim::SimTime::millis(200);
  querier_config.seed = master.next();
  auto& querier =
      system.create<workload::QuerierAgent>(1, scheme, querier_config, targets);

  std::printf(
      "Ablation A5: IAgent population under a mobility step\n"
      "phases: calm (2000 ms dwell) -> storm (100 ms) -> calm; %zu TAgents\n\n",
      tagents);
  std::printf("%8s %10s %9s %14s\n", "t (s)", "phase", "IAgents",
              "splits/merges");

  const sim::SimTime t1 = sim::SimTime::seconds(phase_s);
  const sim::SimTime t2 = sim::SimTime::seconds(2 * phase_s);
  const sim::SimTime t3 = sim::SimTime::seconds(3 * phase_s);

  sim::PeriodicTimer sampler(simulator, sim::SimTime::seconds(4), [&] {
    const char* phase = simulator.now() < t1   ? "calm"
                        : simulator.now() < t2 ? "STORM"
                                               : "calm";
    const auto& stats = scheme.hagent().stats();
    std::printf("%8.0f %10s %9zu %10llu/%llu\n",
                simulator.now().as_seconds(), phase,
                scheme.hagent().iagent_count(),
                static_cast<unsigned long long>(stats.simple_splits +
                                                stats.complex_splits),
                static_cast<unsigned long long>(stats.simple_merges +
                                                stats.complex_merges));
  });
  sampler.start();

  std::size_t peak_calm = 0;
  std::size_t peak_storm = 0;

  simulator.run_until(t1);
  peak_calm = scheme.hagent().iagent_count();
  const util::Summary calm_latency = querier.latencies_ms();

  for (auto* agent : population) agent->set_residence(storm);
  simulator.run_until(t2);
  peak_storm = scheme.hagent().iagent_count();

  for (auto* agent : population) agent->set_residence(calm);
  simulator.run_until(t3);
  const std::size_t settled = scheme.hagent().iagent_count();

  util::Summary storm_latency = querier.latencies_ms();

  std::printf("\nphase summary:\n");
  std::printf("  IAgents: calm %zu -> storm %zu -> settled %zu\n", peak_calm,
              peak_storm, settled);
  std::printf("  location time: calm mean %.2f ms; overall mean %.2f ms "
              "(n=%zu)\n",
              calm_latency.mean(), storm_latency.mean(),
              storm_latency.count());
  std::printf(
      "\nExpected shape (paper §5): the IAgent population rises under the "
      "storm and\nmerges back afterwards; location time stays almost "
      "constant throughout.\n");

  util::BenchReport report("adaptation");
  report.meta()
      .set("tagents", static_cast<std::uint64_t>(tagents))
      .set("nodes", static_cast<std::uint64_t>(nodes))
      .set("phase_s", phase_s)
      .set("seed", seed)
      .set("lp_threads", static_cast<std::uint64_t>(lp_threads))
      .set("lp_threads_effective", static_cast<std::uint64_t>(1));
  const auto& stats = scheme.hagent().stats();
  report.add_row()
      .set("iagents_calm", static_cast<std::uint64_t>(peak_calm))
      .set("iagents_storm", static_cast<std::uint64_t>(peak_storm))
      .set("iagents_settled", static_cast<std::uint64_t>(settled))
      .set("splits", stats.simple_splits + stats.complex_splits)
      .set("merges", stats.simple_merges + stats.complex_merges)
      .add_summary("calm_ms", calm_latency)
      .add_summary("overall_ms", storm_latency);
  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return 0;
}
