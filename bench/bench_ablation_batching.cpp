// Ablation A6: what update batching buys — and what it costs (DESIGN.md §10).
//
// With batching on, co-located movers' location reports pool in their node's
// LHAgent and ride one BatchedUpdate per flush window instead of one
// UpdateRequest each. The saving is wire messages; the cost is staleness: an
// entry waits up to the flush interval before the IAgent learns the move, so
// a locate issued inside that window is told the previous node and pays a
// retry. This bench runs the identical workload (same seeds) with batching
// off and across flush intervals, and reports both sides of the trade.
//
// Flags: --flush-ms=10,50,100,200 --tagents=640 --nodes=8 --total-s=120
//        --residence-ms=1000 --seed=1 --json-out=BENCH_ablation_batching.json

#include <cstdio>
#include <string>
#include <vector>

#include "core/hash_scheme.hpp"
#include "platform/agent_system.hpp"
#include "util/bench_report.hpp"
#include "util/flags.hpp"
#include "workload/querier.hpp"
#include "workload/report.hpp"
#include "workload/tagent.hpp"

using namespace agentloc;

namespace {

struct Outcome {
  std::uint64_t messages_sent = 0;
  std::uint64_t batch_flushes = 0;
  std::uint64_t coalesced = 0;
  double location_ms = 0;
  double attempts = 0;
  std::uint64_t queries = 0;
  std::uint64_t wrong_location = 0;
  std::uint64_t failed = 0;
};

Outcome run(bool batching, double flush_ms, std::size_t nodes,
            std::size_t tagents, double residence_ms, double total_s,
            std::uint64_t seed) {
  util::Rng master(seed);
  sim::Simulator simulator;
  net::Network network(simulator, nodes, net::make_default_lan_model(),
                       master.fork());
  platform::AgentSystem::Config platform_config;
  platform_config.service_time = sim::SimTime::micros(500);
  platform::AgentSystem system(simulator, network, platform_config);

  core::MechanismConfig mechanism;
  mechanism.update_batching = batching;
  mechanism.batch_flush_interval =
      sim::SimTime::micros(static_cast<std::uint64_t>(flush_ms * 1000));
  core::HashLocationScheme scheme(system, mechanism);

  std::vector<platform::AgentId> targets;
  for (std::size_t i = 0; i < tagents; ++i) {
    workload::TAgent::Config config;
    config.residence =
        sim::SimTime::micros(static_cast<std::uint64_t>(residence_ms * 1000));
    config.seed = master.next();
    auto& agent = system.create<workload::TAgent>(
        static_cast<net::NodeId>(i % nodes), scheme, config);
    targets.push_back(agent.id());
  }

  std::vector<workload::QuerierAgent*> queriers;
  for (int q = 0; q < 4; ++q) {
    workload::QuerierAgent::Config config;
    config.quota = 0;  // run for the whole horizon
    config.think = sim::SimTime::millis(100);
    config.seed = master.next();
    queriers.push_back(&system.create<workload::QuerierAgent>(
        static_cast<net::NodeId>(q % nodes), scheme, config, targets));
  }

  simulator.run_until(sim::SimTime::seconds(total_s));

  Outcome outcome;
  outcome.messages_sent = system.stats().messages_sent;
  outcome.batch_flushes = system.stats().batch_flushes;
  outcome.coalesced = system.stats().messages_coalesced;
  util::Summary latencies;
  util::Summary attempts;
  for (const auto* querier : queriers) {
    latencies.merge(querier->latencies_ms());
    attempts.merge(querier->attempts());
    outcome.wrong_location += querier->wrong_location();
    outcome.failed += querier->failed();
  }
  outcome.location_ms = latencies.mean();
  outcome.attempts = attempts.mean();
  outcome.queries = latencies.count();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto flush_list = flags.get_int_list("flush-ms", {10, 50, 100, 200});
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
  const auto tagents = static_cast<std::size_t>(flags.get_int("tagents", 640));
  const double residence_ms = flags.get_double("residence-ms", 1000.0);
  const double total_s = flags.get_double("total-s", 120.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string json_out =
      flags.get_string("json-out", "BENCH_ablation_batching.json");

  std::printf(
      "Ablation A6: update batching — wire messages saved vs locate "
      "staleness\n(%zu TAgents on %zu nodes, %.0f ms dwell, %.0fs horizon; "
      "same seeds per row)\n\n",
      tagents, nodes, residence_ms, total_s);

  workload::Table table({"flush ms", "messages", "drop %", "flushes",
                         "coalesced", "location ms", "mean attempts",
                         "wrong loc", "queries", "failed"});
  util::BenchReport report("ablation_batching");

  const Outcome baseline =
      run(false, 0.0, nodes, tagents, residence_ms, total_s, seed);
  table.add_row({"off", workload::fmt_count(baseline.messages_sent), "-",
                 "-", "-", workload::fmt(baseline.location_ms),
                 workload::fmt(baseline.attempts),
                 workload::fmt_count(baseline.wrong_location),
                 workload::fmt_count(baseline.queries),
                 workload::fmt_count(baseline.failed)});
  report.add_row()
      .set("flush_ms", std::int64_t{0})
      .set("batching", std::int64_t{0})
      .set("messages_sent", baseline.messages_sent)
      .set("message_drop_pct", 0.0)
      .set("batch_flushes", baseline.batch_flushes)
      .set("messages_coalesced", baseline.coalesced)
      .set("location_ms_mean", baseline.location_ms)
      .set("mean_attempts", baseline.attempts)
      .set("attempts_delta_pct", 0.0)
      .set("wrong_location", baseline.wrong_location)
      .set("queries", baseline.queries)
      .set("failed", baseline.failed);
  std::fflush(stdout);

  for (const std::int64_t flush_ms : flush_list) {
    const Outcome outcome = run(true, static_cast<double>(flush_ms), nodes,
                                tagents, residence_ms, total_s, seed);
    const double drop_pct =
        100.0 *
        (static_cast<double>(baseline.messages_sent) -
         static_cast<double>(outcome.messages_sent)) /
        static_cast<double>(baseline.messages_sent);
    const double attempts_delta_pct =
        baseline.attempts > 0
            ? 100.0 * (outcome.attempts - baseline.attempts) /
                  baseline.attempts
            : 0.0;
    table.add_row({std::to_string(flush_ms),
                   workload::fmt_count(outcome.messages_sent),
                   workload::fmt(drop_pct),
                   workload::fmt_count(outcome.batch_flushes),
                   workload::fmt_count(outcome.coalesced),
                   workload::fmt(outcome.location_ms),
                   workload::fmt(outcome.attempts),
                   workload::fmt_count(outcome.wrong_location),
                   workload::fmt_count(outcome.queries),
                   workload::fmt_count(outcome.failed)});
    report.add_row()
        .set("flush_ms", flush_ms)
        .set("batching", std::int64_t{1})
        .set("messages_sent", outcome.messages_sent)
        .set("message_drop_pct", drop_pct)
        .set("batch_flushes", outcome.batch_flushes)
        .set("messages_coalesced", outcome.coalesced)
        .set("location_ms_mean", outcome.location_ms)
        .set("mean_attempts", outcome.attempts)
        .set("attempts_delta_pct", attempts_delta_pct)
        .set("wrong_location", outcome.wrong_location)
        .set("queries", outcome.queries)
        .set("failed", outcome.failed);
    std::fflush(stdout);
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: each flush window folds a node's pending reports into one "
      "message, so\nwire traffic falls with the interval; the price is that "
      "a locate issued while a\nreport waits is answered with the previous "
      "node and pays one retry. At the\n100 ms default the message drop "
      "clears 25%% while mean attempts stay within a\nfew percent of the "
      "unbatched run.\n");

  report.meta()
      .set("nodes", static_cast<std::uint64_t>(nodes))
      .set("tagents", static_cast<std::uint64_t>(tagents))
      .set("residence_ms", residence_ms)
      .set("total_s", total_s)
      .set("seed", seed);
  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return 0;
}
