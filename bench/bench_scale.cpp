// Million-agent capacity sweep (ROADMAP item 1, DESIGN.md §15): one
// fixed-seed experiment per {tagents} × {nodes} cell, reporting wall-clock
// events/second, locate latency, and whole-mechanism bytes-per-agent.
//
// Every cell runs the batch-first-at-scale configuration the harness now
// applies automatically (`MechanismConfig::batch_auto_threshold`): update
// batching on, platform and scheme tables pre-sized for the population, and
// the primary hash copy pre-split so registration never funnels through one
// IAgent inbox. Adaptive rehashing is parked (Tmax huge, Tmin 0) — this
// bench measures capacity of the storage and update paths, not the
// adaptation loop (bench_adaptation covers that).
//
// The per-query latencies, event counts, and byte watermarks are
// sim-deterministic for a given seed; only the wall-clock throughput
// (`items_per_second`, the value the regression gate tracks with its usual
// threshold) varies by host.
//
// Flags: --smoke              (≤50k-agent PR-gate subset)
//        --tagents-list=10000,100000,1000000 --nodes-list=64,256,1024
//        --queries=2000 --seed=1 --json-out=BENCH_scale.json
//        --lp-threads=0 (>=1 shards the platform onto the parallel LP
//        engine with that many workers; see DESIGN.md §16)

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "util/bench_report.hpp"
#include "util/flags.hpp"
#include "workload/experiment.hpp"
#include "workload/report.hpp"

using namespace agentloc;
using workload::ExperimentConfig;
using workload::ExperimentResult;

namespace {

ExperimentConfig cell_config(std::size_t tagents, std::size_t nodes,
                             std::size_t queries, std::uint64_t seed,
                             std::size_t lp_threads) {
  ExperimentConfig config;
  config.scheme = "hash";
  config.nodes = nodes;
  config.tagents = tagents;
  config.total_queries = queries;
  config.queriers = 8;
  config.think = sim::SimTime::millis(10);
  // Long dwell: mobility ticks along during measurement without the update
  // stream (rather than storage) dominating the event count.
  config.residence = sim::SimTime::seconds(120);
  config.warmup = sim::SimTime::seconds(20);
  // Spread admission across most of the warmup: the platform's RPC,
  // in-flight, and inbox tables then size for steady state instead of for
  // one synchronized all-agents-at-t0 registration spike.
  config.start_stagger = sim::SimTime::seconds(15);
  config.measure_deadline = sim::SimTime::seconds(120);
  config.seed = seed;
  // 50 µs per message: a registration burst of the whole population must
  // drain through the pre-split IAgents well inside the RPC deadline (at the
  // default Aglets-era 4 ms, a million registrations would be a saturation
  // experiment, not a capacity one).
  config.service_time = sim::SimTime::micros(50);
  // Park adaptive rehashing; start at the capacity the population needs.
  config.mechanism.t_max = 1e12;
  config.mechanism.t_min = 0.0;
  config.mechanism.initial_iagents = tagents / 4096 + 1;
  config.lp_threads = lp_threads;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const auto default_tagents =
      smoke ? std::vector<std::int64_t>{10'000, 50'000}
            : std::vector<std::int64_t>{10'000, 100'000, 1'000'000};
  const auto default_nodes = smoke ? std::vector<std::int64_t>{64, 256}
                                   : std::vector<std::int64_t>{64, 256, 1024};
  const auto tagents_list = flags.get_int_list("tagents-list", default_tagents);
  const auto nodes_list = flags.get_int_list("nodes-list", default_nodes);
  const auto queries =
      static_cast<std::size_t>(flags.get_int("queries", 2000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto lp_threads =
      static_cast<std::size_t>(flags.get_int("lp-threads", 0));
  const std::string json_out =
      flags.get_string("json-out", smoke ? "BENCH_scale_smoke.json"
                                         : "BENCH_scale.json");

  std::printf("Capacity sweep%s: queries=%zu seed=%llu\n\n",
              smoke ? " (smoke)" : "", queries,
              static_cast<unsigned long long>(seed));

  workload::Table table({"tagents", "nodes", "wall s", "events/s", "found",
                         "locate p95 ms", "B/agent", "peak MiB", "trackers",
                         "coalesced"});
  util::BenchReport report("scale");
  double worst_bytes_per_agent = 0.0;
  std::size_t worst_peak_bytes = 0;

  for (const std::int64_t tagents : tagents_list) {
    for (const std::int64_t nodes : nodes_list) {
      if (tagents < 1 || nodes < 1) continue;
      const ExperimentConfig config =
          cell_config(static_cast<std::size_t>(tagents),
                      static_cast<std::size_t>(nodes), queries, seed,
                      lp_threads);
      const auto start = std::chrono::steady_clock::now();
      const ExperimentResult result = workload::run_experiment(config);
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      const double events_per_sec =
          wall > 0 ? static_cast<double>(result.events_executed) / wall : 0.0;
      const platform::PlatformStats& platform = result.platform_stats;
      worst_bytes_per_agent =
          std::max(worst_bytes_per_agent, platform.bytes_per_agent);
      worst_peak_bytes =
          std::max(worst_peak_bytes, platform.peak_resident_bytes);

      table.add_row(
          {workload::fmt_count(static_cast<std::uint64_t>(tagents)),
           std::to_string(nodes), workload::fmt(wall, 2),
           workload::fmt_count(static_cast<std::uint64_t>(events_per_sec)),
           workload::fmt_count(result.queries_found),
           workload::fmt(result.location_ms.percentile(95.0), 2),
           workload::fmt(platform.bytes_per_agent, 1),
           workload::fmt(static_cast<double>(platform.peak_resident_bytes) /
                             (1024.0 * 1024.0),
                         1),
           std::to_string(result.trackers_at_end),
           workload::fmt_count(platform.messages_coalesced)});
      report.add_row()
          .set("name", "scale/tagents=" + std::to_string(tagents) +
                           "/nodes=" + std::to_string(nodes))
          .set("tagents", static_cast<std::uint64_t>(tagents))
          .set("nodes", static_cast<std::uint64_t>(nodes))
          .set("lp_threads", static_cast<std::uint64_t>(lp_threads))
          .set("lp_threads_effective",
               static_cast<std::uint64_t>(result.lp_threads_used))
          .set("wall_seconds", wall)
          .set("events", result.events_executed)
          .set("items_per_second", events_per_sec)
          .set("queries_found", result.queries_found)
          .set("queries_failed", result.queries_failed)
          .set("wrong_location", result.wrong_location)
          .set("tagent_moves", result.tagent_moves)
          .set("trackers", static_cast<std::uint64_t>(result.trackers_at_end))
          .set("updates_coalesced", platform.messages_coalesced)
          .set("batch_flushes", platform.batch_flushes)
          .set("bytes_per_agent", platform.bytes_per_agent)
          .set("peak_resident_bytes",
               static_cast<std::uint64_t>(platform.peak_resident_bytes))
          .add_summary("location_ms", result.location_ms);
      std::fflush(stdout);
    }
  }

  std::printf("%s\n", table.str().c_str());

  report.meta()
      .set("queries", static_cast<std::uint64_t>(queries))
      .set("seed", seed)
      .set("lp_threads", static_cast<std::uint64_t>(lp_threads))
      .set("smoke", smoke ? std::int64_t{1} : std::int64_t{0})
      // Worst cell in the sweep: the values the lower-is-better gate tracks.
      .set("bytes_per_agent", worst_bytes_per_agent)
      .set("peak_resident_bytes",
           static_cast<std::uint64_t>(worst_peak_bytes));
  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return 0;
}
