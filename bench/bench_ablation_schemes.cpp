// Ablation A2: all four location schemes side by side — the paper's hash
// mechanism and centralized baseline (§5) plus the two related-work designs
// it discusses (§6): Ajanta-style home registries and Voyager-style
// forwarding pointers.
//
// Two sweeps: population (Experiment I's axis) and mobility (Experiment
// II's axis). Expectation: centralized degrades on both axes; home spreads
// load but cannot adapt it; forwarding degrades with mobility (pointer
// chains); hash stays flat on both axes.
//
// Flags: --agents=20,50,100 --residences-ms=100,500,2000 --queries=1200
//        --json-out=BENCH_ablation_schemes.json

#include <cstdio>
#include <string>
#include <vector>

#include "util/bench_report.hpp"
#include "util/flags.hpp"
#include "workload/experiment.hpp"
#include "workload/report.hpp"

using namespace agentloc;
using workload::ExperimentConfig;
using workload::ExperimentResult;

namespace {

const std::vector<std::string> kSchemes = {"centralized", "home", "forwarding",
                                           "hash"};

void run_sweep(const char* title, const char* axis,
               const std::vector<std::int64_t>& values,
               const std::function<void(ExperimentConfig&, std::int64_t)>&
                   apply,
               std::size_t queries, std::size_t repeats, const char* sweep,
               const char* axis_key, util::BenchReport& report) {
  std::printf("%s\n\n", title);
  workload::Table table({"scheme", axis, "location ms", "p95 ms", "trackers",
                         "found", "failed"});
  for (const std::string& scheme : kSchemes) {
    for (const std::int64_t value : values) {
      ExperimentConfig config;
      config.scheme = scheme;
      config.total_queries = queries;
      apply(config, value);
      const ExperimentResult result = workload::run_repeated(config, repeats);
      table.add_row({scheme, std::to_string(value),
                     workload::fmt(result.location_ms.mean()),
                     workload::fmt(result.location_ms.percentile(95)),
                     std::to_string(result.trackers_at_end),
                     workload::fmt_count(result.queries_found),
                     workload::fmt_count(result.queries_failed)});
      report.add_row()
          .set("sweep", sweep)
          .set("scheme", scheme)
          .set(axis_key, value)
          .set("trackers", static_cast<std::uint64_t>(result.trackers_at_end))
          .set("queries_found", result.queries_found)
          .set("queries_failed", result.queries_failed)
          .add_summary("location_ms", result.location_ms);
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto agents = flags.get_int_list("agents", {20, 50, 100});
  const auto residences =
      flags.get_int_list("residences-ms", {100, 500, 2000});
  const auto queries =
      static_cast<std::size_t>(flags.get_int("queries", 1200));
  const auto repeats = static_cast<std::size_t>(flags.get_int("repeats", 1));
  const std::string json_out =
      flags.get_string("json-out", "BENCH_ablation_schemes.json");

  util::BenchReport report("ablation_schemes");

  run_sweep("Ablation A2a: schemes vs. population (residence 500 ms)",
            "tagents", agents,
            [](ExperimentConfig& config, std::int64_t value) {
              config.tagents = static_cast<std::size_t>(value);
            },
            queries, repeats, "population", "tagents", report);

  run_sweep("Ablation A2b: schemes vs. mobility (20 TAgents)",
            "residence ms", residences,
            [](ExperimentConfig& config, std::int64_t value) {
              config.tagents = 20;
              config.residence =
                  sim::SimTime::millis(static_cast<double>(value));
            },
            queries, repeats, "mobility", "residence_ms", report);

  std::printf(
      "Reading: 'home' spreads entries by id but cannot rebalance load;\n"
      "'forwarding' pays pointer-chain hops that grow with mobility between\n"
      "queries; the hash mechanism adapts tracker count to the offered "
      "load.\n");

  report.meta()
      .set("queries", static_cast<std::uint64_t>(queries))
      .set("repeats", static_cast<std::uint64_t>(repeats));
  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return 0;
}
