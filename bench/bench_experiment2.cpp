// Experiment II (paper §5, Figure 8): average location time vs. TAgent
// mobility (time spent at each node), centralized vs. hash-based mechanism.
//
// Paper setup (DESIGN.md §5): 20 TAgents ("a small number … to emphasize
// the effect of mobility"), residence times {100, 200, 500, 1000, 2000} ms,
// 2000 queries. Finding to reproduce: the faster the TAgents move, the more
// update messages the tracker absorbs — the centralized scheme degrades as
// residence time shrinks while the hash mechanism stays almost constant.
//
// Flags: --residences-ms=100,200,500,1000,2000 --tagents=20 --queries=2000
//        --repeats=2 --nodes=16 --seed=1 --schemes=centralized,hash
//        --threads=0 (0 = one worker per hardware thread)
//        --lp-threads=0 (>=1 shards the platform onto the parallel LP
//        engine with that many workers; see DESIGN.md §16)
//        --json-out=BENCH_experiment2.json

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "util/bench_report.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"
#include "workload/experiment.hpp"
#include "workload/report.hpp"

using namespace agentloc;
using workload::ExperimentConfig;
using workload::ExperimentResult;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto residences =
      flags.get_int_list("residences-ms", {100, 200, 500, 1000, 2000});
  const auto tagents = static_cast<std::size_t>(flags.get_int("tagents", 20));
  const auto queries = static_cast<std::size_t>(flags.get_int("queries", 2000));
  const auto repeats = static_cast<std::size_t>(flags.get_int("repeats", 2));
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 16));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  std::size_t threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  if (threads == 0) threads = util::ThreadPool::default_threads();
  const auto lp_threads =
      static_cast<std::size_t>(flags.get_int("lp-threads", 0));
  const std::string json_out =
      flags.get_string("json-out", "BENCH_experiment2.json");
  const std::string schemes_flag =
      flags.get_string("schemes", "centralized,hash");

  std::vector<std::string> schemes;
  for (std::size_t pos = 0; pos <= schemes_flag.size();) {
    const auto comma = schemes_flag.find(',', pos);
    const auto end = comma == std::string::npos ? schemes_flag.size() : comma;
    if (end > pos) schemes.push_back(schemes_flag.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  std::printf(
      "Experiment II (Figure 8): location time vs. mobility rate\n"
      "tagents=%zu queries=%zu repeats=%zu nodes=%zu\n\n",
      tagents, queries, repeats, nodes);

  workload::Table table({"scheme", "residence ms", "location ms (mean)",
                         "p95 ms", "trackers", "found", "failed",
                         "updates/s"});
  std::vector<std::pair<std::string, double>> series;

  util::BenchReport report("experiment2");
  std::uint64_t total_events = 0;
  double total_wall = 0.0;

  for (const std::string& scheme : schemes) {
    for (const std::int64_t residence : residences) {
      ExperimentConfig config;
      config.scheme = scheme;
      config.nodes = nodes;
      config.tagents = tagents;
      config.residence = sim::SimTime::millis(static_cast<double>(residence));
      config.total_queries = queries;
      config.seed = seed;
      config.lp_threads = lp_threads;
      const auto start = std::chrono::steady_clock::now();
      const ExperimentResult result =
          workload::run_parallel(config, repeats, threads);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      total_events += result.events_executed;
      total_wall += wall;

      const double update_rate =
          result.sim_seconds > 0
              ? static_cast<double>(result.scheme_stats.updates) /
                    result.sim_seconds
              : 0.0;
      table.add_row({scheme, std::to_string(residence),
                     workload::fmt(result.location_ms.mean()),
                     workload::fmt(result.location_ms.percentile(95)),
                     std::to_string(result.trackers_at_end),
                     workload::fmt_count(result.queries_found),
                     workload::fmt_count(result.queries_failed),
                     workload::fmt(update_rate, 1)});
      series.emplace_back(scheme + " r=" + std::to_string(residence),
                          result.location_ms.mean());
      report.add_row()
          .set("scheme", scheme)
          .set("residence_ms", static_cast<std::int64_t>(residence))
          .set("threads", static_cast<std::uint64_t>(threads))
          .set("lp_threads", static_cast<std::uint64_t>(lp_threads))
          .set("wall_seconds", wall)
          .set("events", result.events_executed)
          .set("events_per_sec",
               wall > 0 ? static_cast<double>(result.events_executed) / wall
                        : 0.0)
          .set("updates_per_sec", update_rate)
          .set("queries_found", result.queries_found)
          .set("queries_failed", result.queries_failed)
          .add_summary("location_ms", result.location_ms);
      std::fflush(stdout);
    }
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("Figure 8 shape (mean location time, ms):\n%s\n",
              workload::ascii_series(series).c_str());
  std::printf(
      "Expected shape (paper): centralized degrades as residence time "
      "shrinks\n(faster movement -> more updates); the hash mechanism stays "
      "almost constant.\n");

  report.meta()
      .set("repeats", static_cast<std::uint64_t>(repeats))
      .set("threads", static_cast<std::uint64_t>(threads))
      .set("lp_threads", static_cast<std::uint64_t>(lp_threads))
      .set("hardware_threads",
           static_cast<std::uint64_t>(util::ThreadPool::default_threads()))
      .set("tagents", static_cast<std::uint64_t>(tagents))
      .set("queries", static_cast<std::uint64_t>(queries))
      .set("nodes", static_cast<std::uint64_t>(nodes))
      .set("wall_seconds", total_wall)
      .set("events", total_events)
      .set("events_per_sec",
           total_wall > 0 ? static_cast<double>(total_events) / total_wall
                          : 0.0);
  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return 0;
}
