// Microbenchmarks (google-benchmark) of the write path: rehash churn —
// splits, merges, relocations — interleaved with routed lookups, comparing
// incremental router patching against the cold-rebuild baseline
// (`set_incremental_router(false)`, the pre-patching policy where any
// mutation invalidates the compiled router and the next lookup rebuilds it
// from the node tree). These back DESIGN.md §11's claim that a mutation
// costs O(path), not O(tree), on the read path it disturbs.

#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "hashtree/tree.hpp"
#include "util/bench_report.hpp"
#include "util/rng.hpp"

using namespace agentloc;
using hashtree::HashTree;
using hashtree::IAgentId;
using hashtree::NodeLocation;

namespace {

/// Grow a tree to `leaves` leaves with randomized even/deep splits.
HashTree make_tree(std::size_t leaves, std::uint64_t seed, bool incremental) {
  util::Rng rng(seed);
  HashTree tree(1, 0);
  tree.set_incremental_router(incremental);
  IAgentId next = 2;
  while (tree.leaf_count() < leaves) {
    const auto all = tree.leaves();
    const IAgentId victim = all[rng.next_below(all.size())];
    tree.simple_split(victim, 1 + rng.next_below(2), next++,
                      static_cast<NodeLocation>(rng.next_below(16)));
  }
  return tree;
}

constexpr int kLookupsPerMutation = 8;

/// The adaptation steady state: the tree keeps changing while clients keep
/// resolving. Each iteration applies one mutation (a split+merge cycle or a
/// relocation, leaf count invariant) followed by `kLookupsPerMutation`
/// routed lookups. Items = lookups, so items/s is lookup throughput under
/// churn — the number the ≥5x patched-vs-cold acceptance bar reads.
void churn_lookup(benchmark::State& state, bool incremental) {
  HashTree tree =
      make_tree(static_cast<std::size_t>(state.range(0)), 7, incremental);
  const auto all = tree.leaves();
  (void)tree.lookup_id(1);  // warm the router
  util::Rng rng(99);
  IAgentId next = 1'000'000;
  for (auto _ : state) {
    const IAgentId victim = all[rng.next_below(all.size())];
    if (rng.chance(0.5)) {
      const IAgentId fresh = next++;
      tree.simple_split(victim, 1, fresh, 0);
      tree.merge(fresh);
    } else {
      tree.set_location(victim, static_cast<NodeLocation>(rng.next_below(16)));
    }
    for (int i = 0; i < kLookupsPerMutation; ++i) {
      benchmark::DoNotOptimize(tree.lookup_id(rng.next()));
    }
  }
  state.SetItemsProcessed(state.iterations() * kLookupsPerMutation);
}

void BM_ChurnLookup_Patched(benchmark::State& state) {
  churn_lookup(state, true);
}
BENCHMARK(BM_ChurnLookup_Patched)->Arg(64)->Arg(256)->Arg(1024);

void BM_ChurnLookup_ColdRebuild(benchmark::State& state) {
  churn_lookup(state, false);
}
BENCHMARK(BM_ChurnLookup_ColdRebuild)->Arg(64)->Arg(256)->Arg(1024);

/// Pure mutation throughput, with a single routed lookup after every
/// mutation so the cold baseline pays the rebuild its invalidation caused.
/// Items = mutations (each iteration is split + merge = 2).
void mutation_rate(benchmark::State& state, bool incremental) {
  HashTree tree =
      make_tree(static_cast<std::size_t>(state.range(0)), 7, incremental);
  const auto all = tree.leaves();
  (void)tree.lookup_id(1);
  util::Rng rng(11);
  IAgentId next = 1'000'000;
  for (auto _ : state) {
    const IAgentId victim = all[rng.next_below(all.size())];
    const IAgentId fresh = next++;
    tree.simple_split(victim, 1, fresh, 0);
    benchmark::DoNotOptimize(tree.lookup_id(rng.next()));
    tree.merge(fresh);
    benchmark::DoNotOptimize(tree.lookup_id(rng.next()));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

void BM_MutationRate_Patched(benchmark::State& state) {
  mutation_rate(state, true);
}
BENCHMARK(BM_MutationRate_Patched)->Arg(64)->Arg(1024);

void BM_MutationRate_ColdRebuild(benchmark::State& state) {
  mutation_rate(state, false);
}
BENCHMARK(BM_MutationRate_ColdRebuild)->Arg(64)->Arg(1024);

/// Relocation-only churn (the kSetLocation fast path: an O(1) payload patch
/// on the leaf's router entry), one routed lookup per relocation.
void relocate_lookup(benchmark::State& state, bool incremental) {
  HashTree tree =
      make_tree(static_cast<std::size_t>(state.range(0)), 7, incremental);
  const auto all = tree.leaves();
  (void)tree.lookup_id(1);
  util::Rng rng(42);
  for (auto _ : state) {
    const IAgentId victim = all[rng.next_below(all.size())];
    tree.set_location(victim, static_cast<NodeLocation>(rng.next_below(16)));
    benchmark::DoNotOptimize(tree.lookup_id(rng.next()));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RelocateLookup_Patched(benchmark::State& state) {
  relocate_lookup(state, true);
}
BENCHMARK(BM_RelocateLookup_Patched)->Arg(1024);

void BM_RelocateLookup_ColdRebuild(benchmark::State& state) {
  relocate_lookup(state, false);
}
BENCHMARK(BM_RelocateLookup_ColdRebuild)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  util::BenchReport report("rehash_micro");
  return benchjson::run_and_write(argc, argv, report);
}
