// Microbenchmarks (google-benchmark) of the hash-function data structure:
// the costs behind every location operation — lookup, split, merge,
// serialization — as the tree grows. These back DESIGN.md's claim that the
// mapping step is negligible next to a single network hop.

#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "hashtree/tree.hpp"
#include "util/bench_report.hpp"
#include "util/bytebuffer.hpp"
#include "util/rng.hpp"

using namespace agentloc;
using hashtree::HashTree;
using hashtree::IAgentId;

namespace {

/// Grow a tree to `leaves` leaves with randomized even/deep splits.
HashTree make_tree(std::size_t leaves, std::uint64_t seed) {
  util::Rng rng(seed);
  HashTree tree(1, 0);
  IAgentId next = 2;
  while (tree.leaf_count() < leaves) {
    const auto all = tree.leaves();
    const IAgentId victim = all[rng.next_below(all.size())];
    tree.simple_split(victim, 1 + rng.next_below(2), next++,
                      static_cast<hashtree::NodeLocation>(rng.next_below(16)));
  }
  return tree;
}

void BM_Lookup(benchmark::State& state) {
  const HashTree tree = make_tree(static_cast<std::size_t>(state.range(0)), 7);
  util::Rng rng(99);
  for (auto _ : state) {
    const auto id = util::BitString::from_uint(rng.next(), 64);
    benchmark::DoNotOptimize(tree.lookup(id));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Lookup)->Arg(2)->Arg(16)->Arg(128)->Arg(1024);

/// The allocation-free fast path: the hashed id stays in a register end to
/// end, so this row isolates the compiled router walk itself.
void BM_LookupU64(benchmark::State& state) {
  const HashTree tree = make_tree(static_cast<std::size_t>(state.range(0)), 7);
  util::Rng rng(99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.lookup_id(rng.next()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LookupU64)->Arg(2)->Arg(16)->Arg(128)->Arg(1024);

void BM_Compatible(benchmark::State& state) {
  const HashTree tree = make_tree(64, 7);
  const auto leaves = tree.leaves();
  util::Rng rng(99);
  for (auto _ : state) {
    const auto id = util::BitString::from_uint(rng.next(), 64);
    benchmark::DoNotOptimize(
        tree.compatible(id, leaves[rng.next_below(leaves.size())]));
  }
}
BENCHMARK(BM_Compatible);

void BM_SplitMergeCycle(benchmark::State& state) {
  HashTree tree = make_tree(static_cast<std::size_t>(state.range(0)), 7);
  IAgentId next = 1'000'000;
  util::Rng rng(11);
  for (auto _ : state) {
    const auto all = tree.leaves();
    const IAgentId victim = all[rng.next_below(all.size())];
    const IAgentId fresh = next++;
    tree.simple_split(victim, 1, fresh, 0);
    tree.merge(fresh);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SplitMergeCycle)->Arg(16)->Arg(256);

void BM_Serialize(benchmark::State& state) {
  const HashTree tree = make_tree(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    util::ByteWriter writer;
    tree.serialize(writer);
    benchmark::DoNotOptimize(writer.bytes().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * tree.serialized_bytes()));
}
BENCHMARK(BM_Serialize)->Arg(16)->Arg(256)->Arg(1024);

void BM_Deserialize(benchmark::State& state) {
  const HashTree tree = make_tree(static_cast<std::size_t>(state.range(0)), 7);
  util::ByteWriter writer;
  tree.serialize(writer);
  for (auto _ : state) {
    util::ByteReader reader(writer.bytes());
    benchmark::DoNotOptimize(HashTree::deserialize(reader));
  }
}
BENCHMARK(BM_Deserialize)->Arg(16)->Arg(256);

void BM_CopyTree(benchmark::State& state) {
  const HashTree tree = make_tree(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    HashTree copy = tree;
    benchmark::DoNotOptimize(copy.leaf_count());
  }
}
BENCHMARK(BM_CopyTree)->Arg(16)->Arg(256);

void BM_PredicateMatch(benchmark::State& state) {
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::mix64(rng.next()));
  }
}
BENCHMARK(BM_PredicateMatch);

}  // namespace

int main(int argc, char** argv) {
  util::BenchReport report("hashtree_micro");
  return benchjson::run_and_write(argc, argv, report);
}
