// Ablation A10: guaranteed discovery of fast movers — the watch/notify
// extension (the paper's §6 open problem, after Moreau and Murphy/Picco).
//
// The failure mode: an agent that moves every D ms is located correctly, but
// by the time the requester *contacts* the reported node the agent has left
// again; with plain locate+contact the requester can chase forever. The
// watch primitive instead delivers the agent's next landing point the moment
// it lands, so the contact races only the (full) dwell time.
//
// The bench sweeps dwell time and compares, per attempted conversation:
// contact success rate via locate+contact vs. via watch+contact.
//
// Flags: --dwells-ms=2,3,5,10,25 --conversations=300 --seed=1
//        --json-out=BENCH_watch.json

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/hash_scheme.hpp"
#include "platform/agent_system.hpp"
#include "util/bench_report.hpp"
#include "util/flags.hpp"
#include "workload/report.hpp"
#include "workload/tagent.hpp"

using namespace agentloc;

namespace {

struct Hello {
  static constexpr std::size_t kWireBytes = 24;
};

/// A conversation initiator: find the target, then exchange one message.
class Caller : public platform::Agent {
 public:
  Caller(core::HashLocationScheme& scheme, platform::AgentId target,
         bool use_watch, std::size_t conversations)
      : scheme_(scheme),
        target_(target),
        use_watch_(use_watch),
        remaining_(conversations) {}

  void on_start() override { next(); }

  void on_message(const platform::Message& message) override {
    scheme_.handle_agent_message(*this, message);
  }

  std::size_t successes = 0;
  std::size_t failures = 0;
  bool done() const { return remaining_ == 0; }

 private:
  void next() {
    if (remaining_ == 0) return;
    --remaining_;
    if (use_watch_) {
      scheme_.watch(*this, target_,
                    [this](const core::HashLocationScheme::WatchOutcome& o) {
                      if (!o.fired) {
                        ++failures;
                        schedule_next();
                        return;
                      }
                      contact(o.entry.node);
                    });
    } else {
      scheme_.locate(*this, target_,
                     [this](const core::LocateOutcome& o) {
                       if (!o.found) {
                         ++failures;
                         schedule_next();
                         return;
                       }
                       contact(o.node);
                     });
    }
  }

  void contact(net::NodeId at) {
    system().request(id(), platform::AgentAddress{at, target_}, Hello{},
                     Hello::kWireBytes, [this](platform::RpcResult result) {
                       if (result.ok()) {
                         ++successes;
                       } else {
                         ++failures;  // the target had already moved on
                       }
                       schedule_next();
                     },
                     sim::SimTime::millis(500));
  }

  void schedule_next() {
    system().simulator().schedule_after(sim::SimTime::millis(20),
                                        [this] { next(); });
  }

  core::HashLocationScheme& scheme_;
  platform::AgentId target_;
  bool use_watch_;
  std::size_t remaining_;
};

/// The conversation target: replies to Hello; moves constantly.
class Mover : public workload::TAgent {
 public:
  using workload::TAgent::TAgent;

  void on_message(const platform::Message& message) override {
    if (message.body_as<Hello>() != nullptr) {
      system().reply(message, id(), Hello{}, Hello::kWireBytes);
      return;
    }
    workload::TAgent::on_message(message);
  }
};

double run(double dwell_ms, bool use_watch, std::size_t conversations,
           std::uint64_t seed) {
  util::Rng master(seed);
  sim::Simulator simulator;
  net::Network network(simulator, 12, net::make_default_lan_model(),
                       master.fork());
  platform::AgentSystem system(simulator, network);
  core::MechanismConfig mechanism;
  core::HashLocationScheme scheme(system, mechanism);

  workload::TAgent::Config target_config;
  target_config.residence = sim::SimTime::millis(dwell_ms);
  // Constant dwell: with exponential dwell the remaining time is memoryless
  // and the comparison would be a wash by construction.
  target_config.exponential_residence = false;
  target_config.seed = master.next();
  auto& target = system.create<Mover>(3, scheme, target_config);
  simulator.run_until(sim::SimTime::millis(100));

  auto& caller = system.create<Caller>(0, scheme, target.id(), use_watch,
                                       conversations);
  // Generous horizon; the caller self-paces.
  for (int i = 0; i < 4000 && !caller.done(); ++i) {
    simulator.run_until(simulator.now() + sim::SimTime::millis(100));
  }
  const double total =
      static_cast<double>(caller.successes + caller.failures);
  return total > 0 ? 100.0 * static_cast<double>(caller.successes) / total
                   : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto dwells = flags.get_int_list("dwells-ms", {2, 3, 5, 10, 25});
  const auto conversations =
      static_cast<std::size_t>(flags.get_int("conversations", 300));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string json_out = flags.get_string("json-out", "BENCH_watch.json");

  std::printf(
      "Ablation A10: contacting a fast mover — locate+contact vs. "
      "watch+contact\n(%zu conversation attempts per cell)\n\n",
      conversations);

  workload::Table table({"dwell ms", "locate+contact success %",
                         "watch+contact success %"});
  util::BenchReport report("watch");
  for (const std::int64_t dwell : dwells) {
    const double plain =
        run(static_cast<double>(dwell), false, conversations, seed);
    const double watched =
        run(static_cast<double>(dwell), true, conversations, seed);
    table.add_row({std::to_string(dwell), workload::fmt(plain, 1),
                   workload::fmt(watched, 1)});
    report.add_row()
        .set("dwell_ms", dwell)
        .set("locate_success_pct", plain)
        .set("watch_success_pct", watched);
    std::fflush(stdout);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: a plain locate's answer ages by one network round trip "
      "before the\ncontact lands — fatal when the dwell time is comparable. "
      "The watch answer is\nfresh at the instant the target lands, so the "
      "contact races the full dwell.\n");

  report.meta()
      .set("conversations", static_cast<std::uint64_t>(conversations))
      .set("seed", seed);
  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return 0;
}
