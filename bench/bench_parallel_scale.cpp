// Parallel engine scaling sweeps: the same fixed-seed experiment run at
// increasing worker counts, reporting wall-clock events/second per thread
// count plus the determinism cross-check (every thread count must produce a
// bit-identical ExperimentResult — see DESIGN.md §13 and §16).
//
// Two sweeps run back to back:
//   * `lp_scale/...` — the message-level LP driver (`run_experiment_lp`),
//     the toy protocol model from DESIGN.md §13;
//   * `sharded_scale/...` — the paper-faithful platform stack sharded one
//     node per LP (`run_experiment_sharded`, DESIGN.md §16): real
//     AgentSystems, schemes, TAgents, queriers, and migrations, with every
//     cross-node byte crossing shards as an ordered envelope.
//
// The headline rows carry `items_per_second` (executed simulator events per
// wall second), which is what the bench-regression gate tracks. `speedup`
// is relative to threads=1 of the same sweep in the same process; on a
// single-core host it hovers near 1.0 and the row's value is the honest
// record of that. The process exits nonzero on any determinism violation
// in either sweep, so CI can gate on bit-for-bit identity directly.
//
// Flags: --threads-list=1,2,4,8 --nodes=64 --tagents=128 --queries=4000
//        --residence-ms=500 --seed=1 --json-out=BENCH_parallel_scale.json
//        --sharded-queries=2000 (query count for the sharded sweep)

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "util/bench_report.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"
#include "workload/lp_experiment.hpp"
#include "workload/report.hpp"
#include "workload/sharded_experiment.hpp"

using namespace agentloc;
using workload::ExperimentConfig;
using workload::ExperimentResult;

namespace {

/// The fields the determinism contract promises to be identical across
/// thread counts, flattened for exact comparison.
struct Fingerprint {
  std::vector<double> samples;
  std::uint64_t found = 0;
  std::uint64_t failed = 0;
  std::uint64_t wrong = 0;
  std::uint64_t moves = 0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;

  static Fingerprint of(const ExperimentResult& result) {
    return Fingerprint{result.location_ms.samples(), result.queries_found,
                       result.queries_failed,       result.wrong_location,
                       result.tagent_moves,         result.events_executed,
                       result.lp_windows};
  }

  bool operator==(const Fingerprint&) const = default;
};

/// One determinism-checked scaling sweep over `thread_counts`, adding a
/// table row and a JSON row per count. Returns false when any thread count
/// diverged from the sweep's threads=1 reference.
bool run_sweep(const char* row_prefix, workload::Table& table,
               util::BenchReport& report, ExperimentConfig config,
               const std::vector<std::int64_t>& thread_counts,
               const std::function<ExperimentResult(const ExperimentConfig&)>&
                   run) {
  double base_wall = 0.0;
  bool deterministic = true;
  Fingerprint reference;
  bool have_reference = false;

  for (const std::int64_t threads : thread_counts) {
    if (threads < 1) continue;
    config.lp_threads = static_cast<std::size_t>(threads);
    const auto start = std::chrono::steady_clock::now();
    const ExperimentResult result = run(config);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (!have_reference) {
      reference = Fingerprint::of(result);
      have_reference = true;
      base_wall = wall;
    } else if (!(Fingerprint::of(result) == reference)) {
      deterministic = false;
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION at %s threads=%lld: results differ "
                   "from the sequential driver\n",
                   row_prefix, static_cast<long long>(threads));
    }
    const double events_per_sec =
        wall > 0 ? static_cast<double>(result.events_executed) / wall : 0.0;
    const double speedup = wall > 0 ? base_wall / wall : 0.0;

    table.add_row({row_prefix, std::to_string(threads),
                   workload::fmt(wall, 2),
                   workload::fmt_count(
                       static_cast<std::uint64_t>(events_per_sec)),
                   workload::fmt(speedup, 2),
                   workload::fmt_count(result.lp_windows),
                   workload::fmt_count(result.lp_cross_messages),
                   workload::fmt_count(result.queries_found),
                   workload::fmt(result.location_ms.mean())});
    report.add_row()
        .set("name", std::string(row_prefix) + "/threads=" +
                         std::to_string(threads))
        .set("threads", static_cast<std::uint64_t>(threads))
        .set("threads_effective",
             static_cast<std::uint64_t>(result.lp_threads_used))
        .set("wall_seconds", wall)
        .set("events", result.events_executed)
        .set("items_per_second", events_per_sec)
        .set("speedup_vs_seq", speedup)
        .set("windows", result.lp_windows)
        .set("cross_lp_messages", result.lp_cross_messages)
        .set("queries_found", result.queries_found)
        .add_summary("location_ms", result.location_ms);
    std::fflush(stdout);
  }
  return deterministic;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto thread_counts = flags.get_int_list("threads-list", {1, 2, 4, 8});
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 64));
  const auto tagents = static_cast<std::size_t>(flags.get_int("tagents", 128));
  const auto queries =
      static_cast<std::size_t>(flags.get_int("queries", 4000));
  const double residence_ms = flags.get_double("residence-ms", 500.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto sharded_queries =
      static_cast<std::size_t>(flags.get_int("sharded-queries", 2000));
  const std::string json_out =
      flags.get_string("json-out", "BENCH_parallel_scale.json");

  ExperimentConfig config;
  config.nodes = nodes;
  config.tagents = tagents;
  config.total_queries = queries;
  config.queriers = 8;
  config.residence = sim::SimTime::millis(residence_ms);
  config.warmup = sim::SimTime::seconds(10);
  config.seed = seed;

  std::printf(
      "Parallel scaling: nodes=%zu tagents=%zu queries=%zu "
      "(hardware threads: %zu)\n\n",
      nodes, tagents, queries, util::ThreadPool::default_threads());

  workload::Table table({"engine", "threads", "wall s", "events/s", "speedup",
                         "windows", "cross msgs", "found", "mean ms"});
  util::BenchReport report("parallel_scale");

  const bool lp_deterministic =
      run_sweep("lp_scale", table, report, config, thread_counts,
                workload::run_experiment_lp);

  // The paper-faithful sharded sweep: the full platform stack, one shard
  // per node. Fewer queries by default — each event is a real platform
  // message with service-time accounting, not a toy protocol step.
  ExperimentConfig sharded_config = config;
  sharded_config.total_queries = sharded_queries;
  const bool sharded_deterministic =
      run_sweep("sharded_scale", table, report, sharded_config, thread_counts,
                workload::run_experiment_sharded);

  const bool deterministic = lp_deterministic && sharded_deterministic;
  std::printf("%s\n", table.str().c_str());
  std::printf("determinism across thread counts: %s\n",
              deterministic ? "IDENTICAL (bit-for-bit)" : "VIOLATED");

  report.meta()
      .set("nodes", static_cast<std::uint64_t>(nodes))
      .set("tagents", static_cast<std::uint64_t>(tagents))
      .set("queries", static_cast<std::uint64_t>(queries))
      .set("seed", seed)
      .set("hardware_threads",
           static_cast<std::uint64_t>(util::ThreadPool::default_threads()))
      .set("deterministic", deterministic ? std::int64_t{1} : std::int64_t{0});
  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return deterministic ? 0 : 1;
}
