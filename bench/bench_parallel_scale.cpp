// Parallel LP engine scaling sweep: the same fixed-seed experiment run at
// increasing worker counts, reporting wall-clock events/second per thread
// count plus the determinism cross-check (every thread count must produce a
// bit-identical ExperimentResult — see DESIGN.md §13).
//
// The headline row per thread count carries `items_per_second` (executed
// simulator events per wall second), which is what the bench-regression
// gate tracks. `speedup` is relative to the sequential LP driver
// (threads=1) in the same process; on a single-core host it hovers near
// 1.0 and the row's value is the honest record of that.
//
// Flags: --threads-list=1,2,4,8 --nodes=64 --tagents=128 --queries=4000
//        --residence-ms=500 --seed=1 --json-out=BENCH_parallel_scale.json

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "util/bench_report.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"
#include "workload/lp_experiment.hpp"
#include "workload/report.hpp"

using namespace agentloc;
using workload::ExperimentConfig;
using workload::ExperimentResult;

namespace {

/// The fields the determinism contract promises to be identical across
/// thread counts, flattened for exact comparison.
struct Fingerprint {
  std::vector<double> samples;
  std::uint64_t found = 0;
  std::uint64_t failed = 0;
  std::uint64_t wrong = 0;
  std::uint64_t moves = 0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;

  static Fingerprint of(const ExperimentResult& result) {
    return Fingerprint{result.location_ms.samples(), result.queries_found,
                       result.queries_failed,       result.wrong_location,
                       result.tagent_moves,         result.events_executed,
                       result.lp_windows};
  }

  bool operator==(const Fingerprint&) const = default;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto thread_counts = flags.get_int_list("threads-list", {1, 2, 4, 8});
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 64));
  const auto tagents = static_cast<std::size_t>(flags.get_int("tagents", 128));
  const auto queries =
      static_cast<std::size_t>(flags.get_int("queries", 4000));
  const double residence_ms = flags.get_double("residence-ms", 500.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string json_out =
      flags.get_string("json-out", "BENCH_parallel_scale.json");

  ExperimentConfig config;
  config.nodes = nodes;
  config.tagents = tagents;
  config.total_queries = queries;
  config.queriers = 8;
  config.residence = sim::SimTime::millis(residence_ms);
  config.warmup = sim::SimTime::seconds(10);
  config.seed = seed;

  std::printf(
      "Parallel LP scaling: nodes=%zu tagents=%zu queries=%zu "
      "(hardware threads: %zu)\n\n",
      nodes, tagents, queries, util::ThreadPool::default_threads());

  workload::Table table({"threads", "wall s", "events/s", "speedup",
                         "windows", "cross msgs", "found", "mean ms"});
  util::BenchReport report("parallel_scale");
  double base_wall = 0.0;
  bool deterministic = true;
  Fingerprint reference;
  bool have_reference = false;

  for (const std::int64_t threads : thread_counts) {
    if (threads < 1) continue;
    config.lp_threads = static_cast<std::size_t>(threads);
    const auto start = std::chrono::steady_clock::now();
    const ExperimentResult result = workload::run_experiment_lp(config);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (!have_reference) {
      reference = Fingerprint::of(result);
      have_reference = true;
      base_wall = wall;
    } else if (!(Fingerprint::of(result) == reference)) {
      deterministic = false;
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION at threads=%lld: results differ "
                   "from the sequential LP driver\n",
                   static_cast<long long>(threads));
    }
    const double events_per_sec =
        wall > 0 ? static_cast<double>(result.events_executed) / wall : 0.0;
    const double speedup = wall > 0 ? base_wall / wall : 0.0;

    table.add_row({std::to_string(threads), workload::fmt(wall, 2),
                   workload::fmt_count(
                       static_cast<std::uint64_t>(events_per_sec)),
                   workload::fmt(speedup, 2),
                   workload::fmt_count(result.lp_windows),
                   workload::fmt_count(result.lp_cross_messages),
                   workload::fmt_count(result.queries_found),
                   workload::fmt(result.location_ms.mean())});
    report.add_row()
        .set("name", "lp_scale/threads=" + std::to_string(threads))
        .set("threads", static_cast<std::uint64_t>(threads))
        .set("threads_effective",
             static_cast<std::uint64_t>(result.lp_threads_used))
        .set("wall_seconds", wall)
        .set("events", result.events_executed)
        .set("items_per_second", events_per_sec)
        .set("speedup_vs_seq", speedup)
        .set("windows", result.lp_windows)
        .set("cross_lp_messages", result.lp_cross_messages)
        .set("queries_found", result.queries_found)
        .add_summary("location_ms", result.location_ms);
    std::fflush(stdout);
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("determinism across thread counts: %s\n",
              deterministic ? "IDENTICAL (bit-for-bit)" : "VIOLATED");

  report.meta()
      .set("nodes", static_cast<std::uint64_t>(nodes))
      .set("tagents", static_cast<std::uint64_t>(tagents))
      .set("queries", static_cast<std::uint64_t>(queries))
      .set("seed", seed)
      .set("hardware_threads",
           static_cast<std::uint64_t>(util::ThreadPool::default_threads()))
      .set("deterministic", deterministic ? std::int64_t{1} : std::int64_t{0});
  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return deterministic ? 0 : 1;
}
