// Ablation A11: the per-node location cache and optimistic locate
// (DESIGN.md §12).
//
// The cache exists for skewed query popularity: under a Zipf workload the
// head target's locates all funnel to one IAgent, which cannot split below a
// single id — a serial bottleneck no rehash relieves. With caching on, each
// querying node remembers the binding after its first authoritative answer
// and verifies follow-ups at the cached node directly, so the hot traffic
// spreads across the target-hosting nodes instead of queueing at the one
// responsible IAgent. This bench sweeps target_skew × cache capacity with
// identical seeds per cell (capacity 0 = cache off) and reports the two
// headline effects: IAgent locate RPCs absorbed and end-to-end locate
// throughput gained.
//
// Flags: --skew=0,0.5,0.9,0.95 --capacity=0,16,64,1024 --tagents=128
//        --nodes=16 --queriers=16 --quota=400 --think-ms=1 --residence-ms=4000
//        --ttl-ms=2000 --service-us=4000 --singleflight=0 --seed=1
//        --json-out=BENCH_ablation_cache.json

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/hash_scheme.hpp"
#include "platform/agent_system.hpp"
#include "util/bench_report.hpp"
#include "util/flags.hpp"
#include "workload/querier.hpp"
#include "workload/report.hpp"
#include "workload/tagent.hpp"

using namespace agentloc;

namespace {

struct Params {
  std::size_t nodes = 16;
  std::size_t tagents = 128;
  std::size_t queriers = 16;
  std::size_t quota = 400;
  double think_ms = 1.0;
  double residence_ms = 4000.0;
  double ttl_ms = 2000.0;
  double service_us = 4000.0;
  bool singleflight = false;
  std::uint64_t seed = 1;
};

struct Outcome {
  double elapsed_s = 0;
  double throughput = 0;  ///< completed locates per sim second
  double location_ms = 0;
  double location_p95_ms = 0;
  std::uint64_t queries = 0;
  std::uint64_t failed = 0;
  std::uint64_t wrong_location = 0;
  core::SchemeStats scheme;
};

Outcome run(double skew, std::size_t capacity, const Params& params) {
  util::Rng master(params.seed);
  sim::Simulator simulator;
  net::Network network(simulator, params.nodes, net::make_default_lan_model(),
                       master.fork());
  platform::AgentSystem::Config platform_config;
  platform_config.service_time = sim::SimTime::micros(
      static_cast<std::uint64_t>(params.service_us));
  platform::AgentSystem system(simulator, network, platform_config);

  core::MechanismConfig mechanism;
  mechanism.location_cache.enabled = capacity > 0;
  mechanism.location_cache.capacity = capacity;
  mechanism.location_cache.ttl =
      sim::SimTime::micros(static_cast<std::uint64_t>(params.ttl_ms * 1000));
  mechanism.locate_singleflight = params.singleflight;
  core::HashLocationScheme scheme(system, mechanism);

  std::vector<platform::AgentId> targets;
  for (std::size_t i = 0; i < params.tagents; ++i) {
    workload::TAgent::Config config;
    config.residence = sim::SimTime::micros(
        static_cast<std::uint64_t>(params.residence_ms * 1000));
    config.seed = master.next();
    auto& agent = system.create<workload::TAgent>(
        static_cast<net::NodeId>(i % params.nodes), scheme, config);
    targets.push_back(agent.id());
  }

  std::size_t completed = 0;
  std::vector<workload::QuerierAgent*> queriers;
  for (std::size_t q = 0; q < params.queriers; ++q) {
    workload::QuerierAgent::Config config;
    config.quota = params.quota;
    config.think = sim::SimTime::micros(
        static_cast<std::uint64_t>(params.think_ms * 1000));
    config.target_skew = skew;
    config.seed = master.next();
    queriers.push_back(&system.create<workload::QuerierAgent>(
        static_cast<net::NodeId>(q % params.nodes), scheme, config, targets,
        [&completed] { ++completed; }));
  }

  // Run until every querier drains its quota: elapsed sim time IS the
  // throughput metric (closed loop, fixed total work).
  const sim::SimTime deadline = sim::SimTime::seconds(3600);
  while (completed < queriers.size() && simulator.now() < deadline) {
    simulator.run_until(simulator.now() + sim::SimTime::millis(10));
  }

  Outcome outcome;
  outcome.elapsed_s = simulator.now().as_seconds();
  util::Summary latencies;
  for (const auto* querier : queriers) {
    latencies.merge(querier->latencies_ms());
    outcome.failed += querier->failed();
    outcome.wrong_location += querier->wrong_location();
  }
  outcome.queries = latencies.count();
  outcome.location_ms = latencies.mean();
  outcome.location_p95_ms =
      latencies.empty() ? 0.0 : latencies.percentile(95);
  outcome.throughput =
      outcome.elapsed_s > 0
          ? static_cast<double>(outcome.queries) / outcome.elapsed_s
          : 0.0;
  outcome.scheme = scheme.stats();
  return outcome;
}

std::vector<double> parse_double_list(const std::string& text,
                                      std::vector<double> fallback) {
  if (text.empty()) return fallback;
  std::vector<double> values;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!item.empty()) values.push_back(std::strtod(item.c_str(), nullptr));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values.empty() ? fallback : values;
}

std::string fmt_skew(double skew) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%g", skew);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto skews =
      parse_double_list(flags.get_string("skew", ""), {0.0, 0.5, 0.9, 0.95});
  const auto capacities = flags.get_int_list("capacity", {0, 16, 64, 1024});
  Params params;
  params.nodes = static_cast<std::size_t>(flags.get_int("nodes", 16));
  params.tagents = static_cast<std::size_t>(flags.get_int("tagents", 128));
  params.queriers = static_cast<std::size_t>(flags.get_int("queriers", 16));
  params.quota = static_cast<std::size_t>(flags.get_int("quota", 400));
  params.think_ms = flags.get_double("think-ms", 1.0);
  params.residence_ms = flags.get_double("residence-ms", 4000.0);
  params.ttl_ms = flags.get_double("ttl-ms", 2000.0);
  params.service_us = flags.get_double("service-us", 4000.0);
  params.singleflight = flags.get_bool("singleflight", false);
  params.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string json_out =
      flags.get_string("json-out", "BENCH_ablation_cache.json");

  std::printf(
      "Ablation A11: location cache & optimistic locate (capacity 0 = off)\n"
      "(%zu TAgents on %zu nodes, %zu queriers x %zu locates, %.0f ms dwell, "
      "%.0f ms TTL, %.0f us service; same seeds per cell)\n\n",
      params.tagents, params.nodes, params.queriers, params.quota,
      params.residence_ms, params.ttl_ms, params.service_us);

  workload::Table table({"skew", "capacity", "locate RPCs", "rpc drop %",
                         "optimistic", "hit %", "stale", "evicted",
                         "locates/s", "speedup", "location ms", "p95 ms",
                         "failed"});
  util::BenchReport report("ablation_cache");

  for (const double skew : skews) {
    Outcome baseline;
    bool have_baseline = false;
    for (const std::int64_t capacity : capacities) {
      const Outcome outcome =
          run(skew, static_cast<std::size_t>(capacity), params);
      if (capacity == 0) {
        baseline = outcome;
        have_baseline = true;
      }
      const double rpc_drop_pct =
          have_baseline && baseline.scheme.locate_rpcs > 0
              ? 100.0 *
                    (static_cast<double>(baseline.scheme.locate_rpcs) -
                     static_cast<double>(outcome.scheme.locate_rpcs)) /
                    static_cast<double>(baseline.scheme.locate_rpcs)
              : 0.0;
      const double speedup = have_baseline && baseline.throughput > 0
                                 ? outcome.throughput / baseline.throughput
                                 : 1.0;
      const double lookups = static_cast<double>(outcome.scheme.cache_hits +
                                                 outcome.scheme.cache_misses);
      const double hit_pct =
          lookups > 0
              ? 100.0 * static_cast<double>(outcome.scheme.cache_hits) / lookups
              : 0.0;
      table.add_row(
          {fmt_skew(skew), std::to_string(capacity),
           workload::fmt_count(outcome.scheme.locate_rpcs),
           capacity == 0 ? "-" : workload::fmt(rpc_drop_pct),
           workload::fmt_count(outcome.scheme.optimistic_locates),
           capacity == 0 ? "-" : workload::fmt(hit_pct),
           workload::fmt_count(outcome.scheme.cache_stale_hits),
           workload::fmt_count(outcome.scheme.cache_evictions),
           workload::fmt(outcome.throughput),
           capacity == 0 ? "1.00" : workload::fmt(speedup),
           workload::fmt(outcome.location_ms),
           workload::fmt(outcome.location_p95_ms),
           workload::fmt_count(outcome.failed)});
      report.add_row()
          .set("name",
               "cache_skew" + fmt_skew(skew) + "_cap" + std::to_string(capacity))
          .set("target_skew", skew)
          .set("capacity", capacity)
          .set("items_per_second", outcome.throughput)
          .set("speedup_vs_off", speedup)
          .set("locate_rpcs", outcome.scheme.locate_rpcs)
          .set("locate_rpc_drop_pct", rpc_drop_pct)
          .set("optimistic_locates", outcome.scheme.optimistic_locates)
          .set("locates_coalesced", outcome.scheme.locates_coalesced)
          .set("cache_hits", outcome.scheme.cache_hits)
          .set("cache_misses", outcome.scheme.cache_misses)
          .set("cache_hit_pct", hit_pct)
          .set("cache_stale_hits", outcome.scheme.cache_stale_hits)
          .set("cache_evictions", outcome.scheme.cache_evictions)
          .set("cache_invalidations", outcome.scheme.cache_invalidations)
          .set("location_ms_mean", outcome.location_ms)
          .set("location_ms_p95", outcome.location_p95_ms)
          .set("queries", outcome.queries)
          .set("failed", outcome.failed)
          .set("wrong_location", outcome.wrong_location)
          .set("elapsed_s", outcome.elapsed_s);
      std::fflush(stdout);
    }
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Reading: the win grows with skew — as the Zipf head sharpens, repeat "
      "locates\nverify at the cached node and skip the one IAgent every hot "
      "query would\notherwise queue at; at uniform skew the cache only saves "
      "what the TTL window\nallows. CLOCK keeps the head resident even at "
      "small capacities (capacity 16\nrecovers most of the skewed win); stale "
      "hits stay cheap because the probe\nfalls back to the authority within "
      "the same attempt budget.\n");

  report.meta()
      .set("nodes", static_cast<std::uint64_t>(params.nodes))
      .set("tagents", static_cast<std::uint64_t>(params.tagents))
      .set("queriers", static_cast<std::uint64_t>(params.queriers))
      .set("quota", static_cast<std::uint64_t>(params.quota))
      .set("think_ms", params.think_ms)
      .set("residence_ms", params.residence_ms)
      .set("ttl_ms", params.ttl_ms)
      .set("service_us", params.service_us)
      .set("singleflight", static_cast<std::uint64_t>(params.singleflight))
      .set("seed", params.seed);
  const std::string written = report.write(json_out);
  if (written.empty()) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", written.c_str());
  return 0;
}
