#!/usr/bin/env bash
# Tier-1 UDS-loopback smoke for the socket transport (DESIGN.md §17):
# start `agentlocd` on a unix socket, run `agentloc_loadgen` against it with
# reply verification on, and fail on any mismatch or nonzero exit.
#
# Exit codes:
#   0   server + loadgen round trip verified
#   77  sandbox cannot create sockets (skip; automake/ctest convention)
#   1   anything else
#
# Usage: scripts/transport_smoke.sh [BUILD_DIR]   (default: build)

set -u

BUILD_DIR="${1:-build}"
AGENTLOCD="${BUILD_DIR}/examples/agentlocd"
LOADGEN="${BUILD_DIR}/examples/agentloc_loadgen"
SOCK="/tmp/agentloc-smoke-$$.sock"

for bin in "${AGENTLOCD}" "${LOADGEN}"; do
  if [ ! -x "${bin}" ]; then
    echo "transport_smoke: missing binary ${bin} (build the examples first)" >&2
    exit 1
  fi
done

# Probe first: containers without AF_UNIX support skip, not fail.
"${AGENTLOCD}" --probe
probe_rc=$?
if [ "${probe_rc}" -eq 77 ]; then
  echo "transport_smoke: SKIP (sandbox cannot create sockets)"
  exit 77
elif [ "${probe_rc}" -ne 0 ]; then
  echo "transport_smoke: probe failed with ${probe_rc}" >&2
  exit 1
fi

cleanup() {
  if [ -n "${server_pid:-}" ]; then
    kill "${server_pid}" 2>/dev/null
    wait "${server_pid}" 2>/dev/null
  fi
  rm -f "${SOCK}"
}
trap cleanup EXIT

"${AGENTLOCD}" --listen "unix:${SOCK}" --partitions 8 --quiet &
server_pid=$!

# Wait for the socket to appear (the server binds before serving).
for _ in $(seq 1 100); do
  [ -S "${SOCK}" ] && break
  if ! kill -0 "${server_pid}" 2>/dev/null; then
    echo "transport_smoke: agentlocd exited before binding" >&2
    exit 1
  fi
  sleep 0.02
done
if [ ! -S "${SOCK}" ]; then
  echo "transport_smoke: ${SOCK} never appeared" >&2
  exit 1
fi

"${LOADGEN}" --connect "unix:${SOCK}" --agents 500 --ops 5000 --verify true
loadgen_rc=$?
if [ "${loadgen_rc}" -ne 0 ]; then
  echo "transport_smoke: loadgen FAILED (rc=${loadgen_rc})" >&2
  exit 1
fi

echo "transport_smoke: OK"
exit 0
