#!/usr/bin/env bash
# Tier-1 smoke for the socket transport (DESIGN.md §17), three rounds:
#   1. UDS loopback — agentlocd on a unix socket, verified loadgen;
#   2. TCP loopback — the same pair over tcp:127.0.0.1;
#   3. multi-worker — agentlocd --workers 4, loadgen --cluster routing via
#      the kPartitionMap advertisement.
# Fails on any mismatch or nonzero exit.
#
# Exit codes:
#   0   all rounds verified
#   77  sandbox cannot create sockets (skip; automake/ctest convention)
#   1   anything else
#
# Usage: scripts/transport_smoke.sh [BUILD_DIR]   (default: build)

set -u

BUILD_DIR="${1:-build}"
AGENTLOCD="${BUILD_DIR}/examples/agentlocd"
LOADGEN="${BUILD_DIR}/examples/agentloc_loadgen"
SOCK="/tmp/agentloc-smoke-$$.sock"
TCP_PORT=$((20000 + $$ % 20000))

for bin in "${AGENTLOCD}" "${LOADGEN}"; do
  if [ ! -x "${bin}" ]; then
    echo "transport_smoke: missing binary ${bin} (build the examples first)" >&2
    exit 1
  fi
done

# Probe first: containers without AF_UNIX support skip, not fail.
"${AGENTLOCD}" --probe
probe_rc=$?
if [ "${probe_rc}" -eq 77 ]; then
  echo "transport_smoke: SKIP (sandbox cannot create sockets)"
  exit 77
elif [ "${probe_rc}" -ne 0 ]; then
  echo "transport_smoke: probe failed with ${probe_rc}" >&2
  exit 1
fi

cleanup() {
  if [ -n "${server_pid:-}" ]; then
    kill "${server_pid}" 2>/dev/null
    wait "${server_pid}" 2>/dev/null
  fi
  rm -f "${SOCK}" "${SOCK}".w*
}
trap cleanup EXIT

stop_server() {
  if [ -n "${server_pid:-}" ]; then
    kill "${server_pid}" 2>/dev/null
    wait "${server_pid}" 2>/dev/null
    server_pid=""
  fi
  rm -f "${SOCK}" "${SOCK}".w*
}

# wait_for_uds SOCKET — block until the path exists or the server died.
wait_for_uds() {
  for _ in $(seq 1 100); do
    [ -S "$1" ] && return 0
    if ! kill -0 "${server_pid}" 2>/dev/null; then
      echo "transport_smoke: agentlocd exited before binding" >&2
      return 1
    fi
    sleep 0.02
  done
  echo "transport_smoke: $1 never appeared" >&2
  return 1
}

# run_loadgen ARGS... — fail the smoke on any nonzero loadgen exit.
run_loadgen() {
  "${LOADGEN}" "$@" --agents 500 --ops 5000 --verify true
  loadgen_rc=$?
  if [ "${loadgen_rc}" -ne 0 ]; then
    echo "transport_smoke: loadgen FAILED (rc=${loadgen_rc})" >&2
    exit 1
  fi
}

# --- round 1: UDS loopback, single worker ------------------------------------
"${AGENTLOCD}" --listen "unix:${SOCK}" --partitions 8 --quiet &
server_pid=$!
wait_for_uds "${SOCK}" || exit 1
run_loadgen --connect "unix:${SOCK}"
stop_server
echo "transport_smoke: UDS round OK"

# --- round 2: TCP loopback ---------------------------------------------------
"${AGENTLOCD}" --listen "tcp:127.0.0.1:${TCP_PORT}" --partitions 8 --quiet &
server_pid=$!
sleep 0.2  # TCP has no socket file to poll; the listener binds before serving
if ! kill -0 "${server_pid}" 2>/dev/null; then
  echo "transport_smoke: agentlocd (tcp) exited before serving" >&2
  exit 1
fi
run_loadgen --connect "tcp:127.0.0.1:${TCP_PORT}"
stop_server
echo "transport_smoke: TCP round OK"

# --- round 3: sharded workers + routing client -------------------------------
"${AGENTLOCD}" --listen "unix:${SOCK}" --partitions 8 --workers 4 --quiet &
server_pid=$!
wait_for_uds "${SOCK}.w3" || exit 1
run_loadgen --connect "unix:${SOCK}" --cluster true
stop_server
echo "transport_smoke: multi-worker round OK"

echo "transport_smoke: OK"
exit 0
