#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against the committed reference.

Matches rows by ``name`` and compares throughput (``items_per_second``;
additionally the ``messages_per_sec`` headline in ``meta`` when both files
carry it). Memory watermarks (``bytes_per_agent``, ``peak_inbox_depth``,
``peak_resident_bytes``) — whether in ``meta`` or attached to individual
rows, as ``bench_scale`` does per cell — are compared in the opposite
direction: growing past the threshold is the regression. A metric regressing by more than the
threshold is reported; with
``--fail`` the script exits non-zero so CI can gate on it. Rows present only
in the fresh run (new benchmarks) or only in the baseline (removed ones) are
skipped — the gate watches throughput, not coverage. A missing baseline file
is a warning, not an error: a newly added benchmark has no committed
reference on the first run, and the gate should not block the PR that
introduces it.

Usage:
  check_bench_regression.py BASELINE FRESH [--threshold-pct=30] [--fail]
"""

import argparse
import json
import sys


# Fields where *lower* is better: these are resource watermarks, so the
# regression direction is growth. Checked both in ``meta`` and per row.
LOWER_IS_BETTER_META = (
    "bytes_per_agent",
    "peak_inbox_depth",
    "peak_resident_bytes",
)
LOWER_IS_BETTER_ROW = ("bytes_per_agent", "peak_resident_bytes")


def load_rates(path):
    """Return (higher_is_better, lower_is_better) metric dicts."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    rates = {}
    lower = {}
    meta = doc.get("meta", doc)
    if isinstance(meta, dict):
        if "messages_per_sec" in meta:
            rates["meta:messages_per_sec"] = float(meta["messages_per_sec"])
        for key in LOWER_IS_BETTER_META:
            if key in meta and float(meta[key]) > 0:
                lower[f"meta:{key}"] = float(meta[key])
    for row in doc.get("rows", []):
        name = row.get("name")
        if name is None:
            continue
        rate = row.get("items_per_second")
        if rate is not None:
            rates[name] = float(rate)
        for key in LOWER_IS_BETTER_ROW:
            if key in row and float(row[key]) > 0:
                lower[f"{name}:{key}"] = float(row[key])
    return rates, lower


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold-pct", type=float, default=30.0)
    parser.add_argument(
        "--fail",
        action="store_true",
        help="exit 1 on regression (default: warn only)",
    )
    args = parser.parse_args()

    try:
        baseline, baseline_lower = load_rates(args.baseline)
    except FileNotFoundError:
        print(
            f"baseline {args.baseline} not found; skipping comparison "
            "(commit one from a fresh run to arm the gate)"
        )
        return 0
    fresh, fresh_lower = load_rates(args.fresh)
    if not baseline and not baseline_lower:
        print(f"no throughput entries in baseline {args.baseline}; skipping")
        return 0

    regressions = []
    for name, base_rate in sorted(baseline.items()):
        if name not in fresh or base_rate <= 0:
            continue  # removed/renamed row, or nothing to compare against
        new_rate = fresh[name]
        delta_pct = 100.0 * (new_rate - base_rate) / base_rate
        marker = ""
        if delta_pct < -args.threshold_pct:
            marker = "  << REGRESSION"
            regressions.append((name, delta_pct))
        print(
            f"{name}: {base_rate / 1e6:.2f}M -> {new_rate / 1e6:.2f}M items/s "
            f"({delta_pct:+.1f}%){marker}"
        )
    for name, base_value in sorted(baseline_lower.items()):
        if name not in fresh_lower or base_value <= 0:
            continue
        new_value = fresh_lower[name]
        delta_pct = 100.0 * (new_value - base_value) / base_value
        marker = ""
        if delta_pct > args.threshold_pct:
            marker = "  << REGRESSION (growth)"
            regressions.append((name, delta_pct))
        print(
            f"{name}: {base_value:.1f} -> {new_value:.1f} "
            f"({delta_pct:+.1f}%, lower is better){marker}"
        )

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold_pct:.0f}% vs {args.baseline}"
        )
        if args.fail:
            return 1
        print("(warn-only mode: not failing the build)")
    else:
        print(f"\nno regressions beyond {args.threshold_pct:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
