#include <gtest/gtest.h>

#include <stdexcept>

#include "hashtree/paper_figures.hpp"
#include "hashtree/tree.hpp"
#include "util/bytebuffer.hpp"

namespace agentloc::hashtree {
namespace {

TEST(Serialize, RoundTripSingleLeaf) {
  const HashTree tree(42, 3);
  util::ByteWriter writer;
  tree.serialize(writer);
  util::ByteReader reader(writer.bytes());
  const HashTree copy = HashTree::deserialize(reader);
  EXPECT_EQ(copy, tree);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serialize, RoundTripFigure1) {
  const HashTree tree = figure1_tree();
  util::ByteWriter writer;
  tree.serialize(writer);
  util::ByteReader reader(writer.bytes());
  const HashTree copy = HashTree::deserialize(reader);
  EXPECT_EQ(copy, tree);
  EXPECT_EQ(copy.version(), tree.version());
  EXPECT_EQ(copy.hyper_label(kIA0), "0.011.1.0");
  copy.validate();
}

TEST(Serialize, RoundTripPreservesVersionAndLocations) {
  HashTree tree = figure1_tree();
  tree.set_location(kIA3, 77);
  tree.simple_split(kIA5, 2, 99, 8);
  util::ByteWriter writer;
  tree.serialize(writer);
  util::ByteReader reader(writer.bytes());
  const HashTree copy = HashTree::deserialize(reader);
  EXPECT_EQ(copy, tree);
  EXPECT_EQ(copy.location_of(kIA3), 77u);
  EXPECT_EQ(copy.version(), tree.version());
}

TEST(Serialize, SerializedBytesMatchesWriterOutput) {
  const HashTree tree = figure1_tree();
  util::ByteWriter writer;
  tree.serialize(writer);
  EXPECT_EQ(tree.serialized_bytes(), writer.size());
  // Figure 1's tree is small: the snapshot an LHAgent pulls is well under a
  // kilobyte.
  EXPECT_LT(tree.serialized_bytes(), 200u);
}

TEST(Serialize, BadMagicThrows) {
  util::ByteWriter writer;
  writer.write_u32(0x12345678);
  writer.write_varint(1);
  util::ByteReader reader(writer.bytes());
  EXPECT_THROW(HashTree::deserialize(reader), std::invalid_argument);
}

TEST(Serialize, TruncatedStreamThrows) {
  const HashTree tree = figure1_tree();
  util::ByteWriter writer;
  tree.serialize(writer);
  auto bytes = writer.bytes();
  bytes.resize(bytes.size() / 2);
  util::ByteReader reader(bytes);
  EXPECT_THROW(HashTree::deserialize(reader), std::out_of_range);
}

TEST(Serialize, BadNodeFlagThrows) {
  util::ByteWriter writer;
  writer.write_u32(0x48545245);
  writer.write_varint(1);
  writer.write_u8(7);  // neither leaf nor internal
  writer.write_bits(util::BitString());
  util::ByteReader reader(writer.bytes());
  EXPECT_THROW(HashTree::deserialize(reader), std::invalid_argument);
}

TEST(Serialize, LeafWithZeroIAgentThrows) {
  util::ByteWriter writer;
  writer.write_u32(0x48545245);
  writer.write_varint(1);
  writer.write_u8(1);  // leaf
  writer.write_bits(util::BitString());
  writer.write_varint(0);  // invalid IAgent id
  writer.write_u32(0);
  util::ByteReader reader(writer.bytes());
  EXPECT_THROW(HashTree::deserialize(reader), std::invalid_argument);
}

TEST(Serialize, DuplicateLeafIdsFailValidation) {
  util::ByteWriter writer;
  writer.write_u32(0x48545245);
  writer.write_varint(1);
  writer.write_u8(0);  // internal root
  writer.write_bits(util::BitString());
  writer.write_u8(1);
  writer.write_bits(util::BitString::parse("0"));
  writer.write_varint(5);
  writer.write_u32(0);
  writer.write_u8(1);
  writer.write_bits(util::BitString::parse("1"));
  writer.write_varint(5);  // duplicate id
  writer.write_u32(0);
  util::ByteReader reader(writer.bytes());
  EXPECT_THROW(HashTree::deserialize(reader), std::logic_error);
}

TEST(Serialize, MismatchedValidBitFailsValidation) {
  util::ByteWriter writer;
  writer.write_u32(0x48545245);
  writer.write_varint(1);
  writer.write_u8(0);
  writer.write_bits(util::BitString());
  writer.write_u8(1);
  writer.write_bits(util::BitString::parse("1"));  // on the 0 side: invalid
  writer.write_varint(5);
  writer.write_u32(0);
  writer.write_u8(1);
  writer.write_bits(util::BitString::parse("1"));
  writer.write_varint(6);
  writer.write_u32(0);
  util::ByteReader reader(writer.bytes());
  EXPECT_THROW(HashTree::deserialize(reader), std::logic_error);
}

}  // namespace
}  // namespace agentloc::hashtree
