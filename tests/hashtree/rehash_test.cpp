#include <gtest/gtest.h>

#include <stdexcept>

#include "hashtree/paper_figures.hpp"
#include "hashtree/tree.hpp"

namespace agentloc::hashtree {
namespace {

using util::BitString;

constexpr IAgentId kFresh = 77;

// ---------------------------------------------------------------------------
// Simple split (paper §4.1, Figure 3)
// ---------------------------------------------------------------------------

TEST(SimpleSplit, Figure3SplitsIA3) {
  HashTree tree = figure1_tree();
  tree.simple_split(kIA3, 1, kIA7, 7);
  tree.validate();
  EXPECT_EQ(tree.leaf_count(), 8u);
  EXPECT_EQ(tree.hyper_label(kIA3), "1.0.0");
  EXPECT_EQ(tree.hyper_label(kIA7), "1.0.1");
  EXPECT_EQ(tree.location_of(kIA7), 7u);
  // Agents with bits 10 0… stay with IA3, 10 1… move to IA7; nothing else
  // changes.
  EXPECT_EQ(tree.lookup(BitString::parse("100")).iagent, kIA3);
  EXPECT_EQ(tree.lookup(BitString::parse("101")).iagent, kIA7);
  EXPECT_EQ(tree.lookup(BitString::parse("110")).iagent, kIA5);
  EXPECT_EQ(tree.lookup(BitString::parse("010")).iagent, kIA1);
}

TEST(SimpleSplit, BumpsVersion) {
  HashTree tree = figure1_tree();
  const auto before = tree.version();
  tree.simple_split(kIA3, 1, kIA7, 7);
  EXPECT_GT(tree.version(), before);
}

TEST(SimpleSplit, MGreaterThanOneRecordsPadding) {
  HashTree tree = figure1_tree();
  // Split on the 3rd unused bit: two padding bits are added to IA3's edge.
  tree.simple_split(kIA3, 3, kFresh, 9);
  tree.validate();
  EXPECT_EQ(tree.hyper_label(kIA3), "1.000.0");
  EXPECT_EQ(tree.hyper_label(kFresh), "1.000.1");
  EXPECT_EQ(tree.depth_bits(kIA3), 5u);
  // Discrimination is on bit 4 now; bits 2-3 are ignored padding.
  EXPECT_EQ(tree.lookup(BitString::parse("10011")).iagent, kFresh);
  EXPECT_EQ(tree.lookup(BitString::parse("10111")).iagent, kFresh);
  EXPECT_EQ(tree.lookup(BitString::parse("10010")).iagent, kIA3);
  EXPECT_EQ(tree.lookup(BitString::parse("10100")).iagent, kIA3);
}

TEST(SimpleSplit, SplitsSingleLeafRoot) {
  HashTree tree(5, 0);
  tree.simple_split(5, 1, 6, 1);
  tree.validate();
  EXPECT_EQ(tree.leaf_count(), 2u);
  EXPECT_EQ(tree.hyper_label(5), "0");
  EXPECT_EQ(tree.hyper_label(6), "1");
  EXPECT_EQ(tree.lookup(BitString::parse("0")).iagent, 5u);
  EXPECT_EQ(tree.lookup(BitString::parse("1")).iagent, 6u);
}

TEST(SimpleSplit, RootWithLargeMUsesRootPadding) {
  HashTree tree(5, 0);
  tree.simple_split(5, 3, 6, 1);
  tree.validate();
  // Bits 0-1 become root padding; bit 2 discriminates.
  EXPECT_EQ(tree.lookup(BitString::parse("110")).iagent, 5u);
  EXPECT_EQ(tree.lookup(BitString::parse("001")).iagent, 6u);
  EXPECT_EQ(tree.depth_bits(5), 3u);
  EXPECT_NE(tree.hyper_label(5).find("pad 00"), std::string::npos);
}

TEST(SimpleSplit, RejectsBadArguments) {
  HashTree tree = figure1_tree();
  EXPECT_THROW(tree.simple_split(kIA3, 0, kFresh, 0), std::invalid_argument);
  EXPECT_THROW(tree.simple_split(kIA3, 1, kIA5, 0), std::invalid_argument);
  EXPECT_THROW(tree.simple_split(kIA3, 1, kNoIAgent, 0),
               std::invalid_argument);
  EXPECT_THROW(tree.simple_split(999, 1, kFresh, 0), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Complex split (paper §4.1, Figure 4)
// ---------------------------------------------------------------------------

TEST(ComplexSplit, CandidatesInPaperOrder) {
  const HashTree tree = figure1_tree();
  // IA1's hyper-label is 0.10: the only padding bit is bit 1 of segment 2.
  const auto ia1 = tree.complex_split_candidates(kIA1);
  ASSERT_EQ(ia1.size(), 1u);
  EXPECT_EQ(ia1[0], (SplitPoint{2, 1}));

  // IA0 = 0.011.1.0: label "011" has padding bits 1 and 2, in that order.
  const auto ia0 = tree.complex_split_candidates(kIA0);
  ASSERT_EQ(ia0.size(), 2u);
  EXPECT_EQ(ia0[0], (SplitPoint{2, 1}));
  EXPECT_EQ(ia0[1], (SplitPoint{2, 2}));

  // IA3 = 1.0: all labels one bit — no candidates, simple split territory.
  EXPECT_TRUE(tree.complex_split_candidates(kIA3).empty());
}

TEST(ComplexSplit, BitPositions) {
  const HashTree tree = figure1_tree();
  // IA1 = (root pad ε).0.10 → the padding bit sits at global position 2.
  EXPECT_EQ(tree.split_point_bit_position(kIA1, SplitPoint{2, 1}), 2u);
  // IA0 = 0.011.1.0 → padding bits of "011" sit at positions 2 and 3.
  EXPECT_EQ(tree.split_point_bit_position(kIA0, SplitPoint{2, 1}), 2u);
  EXPECT_EQ(tree.split_point_bit_position(kIA0, SplitPoint{2, 2}), 3u);
  EXPECT_THROW(tree.split_point_bit_position(kIA0, SplitPoint{9, 0}),
               std::out_of_range);
  EXPECT_THROW(tree.split_point_bit_position(kIA0, SplitPoint{2, 5}),
               std::out_of_range);
}

TEST(ComplexSplit, Figure4SplitsIA1OnItsPaddingBit) {
  HashTree tree = figure1_tree();
  tree.complex_split(kIA1, SplitPoint{2, 1}, kIA7, 7);
  tree.validate();
  EXPECT_EQ(tree.leaf_count(), 8u);
  // Label 10 splits into 1 · 0; the new IAgent takes the 1 side.
  EXPECT_EQ(tree.hyper_label(kIA1), "0.1.0");
  EXPECT_EQ(tree.hyper_label(kIA7), "0.1.1");
  // Bit 2 now discriminates: 010… stays, 011… moves.
  EXPECT_EQ(tree.lookup(BitString::parse("010")).iagent, kIA1);
  EXPECT_EQ(tree.lookup(BitString::parse("011")).iagent, kIA7);
  // Unrelated leaves untouched.
  EXPECT_EQ(tree.hyper_label(kIA2), "0.011.0");
  EXPECT_EQ(tree.lookup(BitString::parse("00110")).iagent, kIA2);
}

TEST(ComplexSplit, InteriorEdgeReclaimAffectsSubtreeOnly) {
  HashTree tree = figure1_tree();
  // Reclaim the first padding bit of label "011" (global position 2) from
  // IA2's path. The recorded bit is 1, so the subtree keeps the 1 side and
  // the new leaf takes ids with bit 2 = 0.
  tree.complex_split(kIA2, SplitPoint{2, 1}, kFresh, 9);
  tree.validate();
  EXPECT_EQ(tree.hyper_label(kFresh), "0.0.01");
  EXPECT_EQ(tree.hyper_label(kIA2), "0.0.11.0");
  EXPECT_EQ(tree.hyper_label(kIA0), "0.0.11.1.0");
  // id 00 0 10…: bit2=0 → new leaf (was IA2's: 00…10 had bit4=1? no, bit4=0
  // → was IA2). Padding bit 3 remains ignored on both sides.
  EXPECT_EQ(tree.lookup(BitString::parse("00010")).iagent, kFresh);
  EXPECT_EQ(tree.lookup(BitString::parse("00000")).iagent, kFresh);
  // bit2=1 keeps routing into the old subtree.
  EXPECT_EQ(tree.lookup(BitString::parse("00100")).iagent, kIA2);
  EXPECT_EQ(tree.lookup(BitString::parse("00111")).iagent, kIA0);
  // IA1 (sibling branch, bit1=1) is untouched.
  EXPECT_EQ(tree.lookup(BitString::parse("010")).iagent, kIA1);
}

TEST(ComplexSplit, RootPaddingReclaim) {
  HashTree tree(5, 0);
  tree.simple_split(5, 3, 6, 1);  // creates root padding "00"
  tree.complex_split(5, SplitPoint{0, 0}, 7, 2);
  tree.validate();
  // Bit 0 now discriminates: recorded padding bit was 0, so the old subtree
  // keeps the 0 side.
  EXPECT_EQ(tree.lookup(BitString::parse("000")).iagent, 5u);
  EXPECT_EQ(tree.lookup(BitString::parse("001")).iagent, 6u);
  EXPECT_EQ(tree.lookup(BitString::parse("100")).iagent, 7u);
  EXPECT_EQ(tree.lookup(BitString::parse("111")).iagent, 7u);
}

TEST(ComplexSplit, RejectsNonPaddingBit) {
  HashTree tree = figure1_tree();
  EXPECT_THROW(tree.complex_split(kIA1, SplitPoint{2, 0}, kFresh, 0),
               std::out_of_range);
  EXPECT_THROW(tree.complex_split(kIA1, SplitPoint{2, 7}, kFresh, 0),
               std::out_of_range);
  EXPECT_THROW(tree.complex_split(kIA1, SplitPoint{9, 1}, kFresh, 0),
               std::out_of_range);
  EXPECT_THROW(tree.complex_split(kIA1, SplitPoint{2, 1}, kIA5, 0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Merge (paper §4.2, Figures 5 and 6)
// ---------------------------------------------------------------------------

TEST(Merge, Figure5SimpleMergeIA6IntoIA5) {
  HashTree tree = figure1_tree();
  const MergeResult result = tree.merge(kIA6);
  tree.validate();
  EXPECT_EQ(result.kind, MergeResult::Kind::kSimple);
  EXPECT_EQ(result.into_iagent, kIA5);
  EXPECT_EQ(tree.leaf_count(), 6u);
  EXPECT_FALSE(tree.contains(kIA6));
  // IA5 moves up: now serves everything under prefix 11.
  EXPECT_EQ(tree.hyper_label(kIA5), "1.1");
  EXPECT_EQ(tree.lookup(BitString::parse("110")).iagent, kIA5);
  EXPECT_EQ(tree.lookup(BitString::parse("111")).iagent, kIA5);
  EXPECT_EQ(tree.lookup(BitString::parse("10")).iagent, kIA3);
}

TEST(Merge, SimpleMergeKeepsSiblingLocation) {
  HashTree tree = figure1_tree();
  tree.set_location(kIA5, 42);
  tree.merge(kIA6);
  EXPECT_EQ(tree.location_of(kIA5), 42u);
}

TEST(Merge, Figure6ComplexMergeIA1IntoSiblingSubtree) {
  HashTree tree = figure1_tree();
  const MergeResult result = tree.merge(kIA1);
  tree.validate();
  EXPECT_EQ(result.kind, MergeResult::Kind::kComplex);
  EXPECT_EQ(tree.leaf_count(), 6u);
  EXPECT_FALSE(tree.contains(kIA1));
  // X's label absorbs the sibling's: 0 · 011 → 0011. Surviving leaves keep
  // their exact bit positions.
  EXPECT_EQ(tree.hyper_label(kIA2), "0011.0");
  EXPECT_EQ(tree.hyper_label(kIA0), "0011.1.0");
  EXPECT_EQ(tree.hyper_label(kIA4), "0011.1.1");
  EXPECT_EQ(tree.lookup(BitString::parse("00110")).iagent, kIA2);
  EXPECT_EQ(tree.lookup(BitString::parse("001110")).iagent, kIA0);
  // IA1's former agents (bit1 = 1) now fall through into the subtree: bit 1
  // became padding, so routing is by bits 4 (IA2 vs V) and 5 (IA0 vs IA4).
  EXPECT_EQ(tree.lookup(BitString::parse("01000")).iagent, kIA2);
  EXPECT_EQ(tree.lookup(BitString::parse("01001")).iagent, kIA0);
  EXPECT_EQ(tree.lookup(BitString::parse("010010")).iagent, kIA0);
  EXPECT_EQ(tree.lookup(BitString::parse("010011")).iagent, kIA4);
  EXPECT_EQ(tree.lookup(BitString::parse("0100111")).iagent, kIA4);
}

TEST(Merge, ComplexMergeAtRootCreatesRootPadding) {
  HashTree tree(5, 0);
  tree.simple_split(5, 1, 6, 1);   // 5 at "0", 6 at "1"
  tree.simple_split(6, 1, 7, 2);   // 6 at "1.0", 7 at "1.1"
  const MergeResult result = tree.merge(5);
  tree.validate();
  EXPECT_EQ(result.kind, MergeResult::Kind::kComplex);
  // Bit 0 becomes root padding; bit 1 discriminates 6 vs 7.
  EXPECT_EQ(tree.lookup(BitString::parse("00")).iagent, 6u);
  EXPECT_EQ(tree.lookup(BitString::parse("10")).iagent, 6u);
  EXPECT_EQ(tree.lookup(BitString::parse("01")).iagent, 7u);
  EXPECT_EQ(tree.lookup(BitString::parse("11")).iagent, 7u);
  EXPECT_NE(tree.hyper_label(6).find("pad 1"), std::string::npos);
}

TEST(Merge, SimpleMergeAtRootShrinksToSingleLeaf) {
  HashTree tree(5, 0);
  tree.simple_split(5, 1, 6, 1);
  const MergeResult result = tree.merge(6);
  tree.validate();
  EXPECT_EQ(result.kind, MergeResult::Kind::kSimple);
  EXPECT_EQ(result.into_iagent, 5u);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_EQ(tree.lookup(BitString::parse("1")).iagent, 5u);
}

TEST(Merge, LastLeafCannotMerge) {
  HashTree tree(5, 0);
  EXPECT_THROW(tree.merge(5), std::logic_error);
  EXPECT_THROW(tree.merge(999), std::out_of_range);
}

TEST(Merge, SplitThenMergeRestoresMapping) {
  HashTree tree = figure1_tree();
  HashTree reference = tree;
  tree.simple_split(kIA3, 1, kIA7, 7);
  tree.merge(kIA7);
  tree.validate();
  // Structure-wise the mapping is equivalent even if versions differ.
  for (std::uint64_t v = 0; v < 256; ++v) {
    const BitString id = BitString::from_uint(v, 8);
    EXPECT_EQ(tree.lookup(id).iagent, reference.lookup(id).iagent);
  }
}

TEST(Merge, MergeMayLeaveMultiBitLabelsForLaterComplexSplit) {
  // The full §4 life cycle: merge creates padding, complex split reclaims it.
  HashTree tree(5, 0);
  tree.simple_split(5, 1, 6, 1);
  tree.simple_split(6, 1, 7, 2);
  tree.merge(5);  // complex: root padding "0", labels of 6/7 keep positions
  const auto candidates = tree.complex_split_candidates(6);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0], (SplitPoint{0, 0}));
  tree.complex_split(6, candidates[0], 9, 3);
  tree.validate();
  // Bit 0 discriminates again: recorded padding was "1" (the old "1" side).
  EXPECT_EQ(tree.lookup(BitString::parse("10")).iagent, 6u);
  EXPECT_EQ(tree.lookup(BitString::parse("11")).iagent, 7u);
  EXPECT_EQ(tree.lookup(BitString::parse("00")).iagent, 9u);
}

}  // namespace
}  // namespace agentloc::hashtree
