// The compiled read path must be indistinguishable from walking the node
// tree. Unit tests pin the rebuild policy (version-keyed staleness, cold
// copies, carried moves); the property tests drive randomized split / merge /
// set_location sequences — 40 seeds x 260 mutations > 10k mutations total —
// asserting after every mutation that the compiled router, the node-walking
// lookup, and the paper's `compatible` predicate agree bit for bit.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "hashtree/router.hpp"
#include "hashtree/tree.hpp"
#include "util/bytebuffer.hpp"
#include "util/rng.hpp"

namespace agentloc::hashtree {
namespace {

using util::BitString;
using util::Rng;

TEST(CompiledRouter, SingleLeafRoutesEverywhere) {
  HashTree tree(7, 3);
  const auto target = tree.lookup_id(0xdeadbeef);
  EXPECT_EQ(target.iagent, 7u);
  EXPECT_EQ(target.location, 3u);
  EXPECT_EQ(tree.router().entry_count(), 1u);
}

TEST(CompiledRouter, MutationPatchesWarmRouterInLockstep) {
  HashTree tree(1, 0);
  (void)tree.lookup_id(42);  // compile
  const auto& router = tree.router();
  EXPECT_EQ(router.compiled_version(), tree.version());

  tree.simple_split(1, 1, 2, 5);
  // A warm router is patched inside the mutation — no staleness window, no
  // rebuild on the next read.
  EXPECT_EQ(router.compiled_version(), tree.version());
  const std::uint64_t rebuilds_before = router.rebuilds();
  for (const std::uint64_t id : {0ull, ~0ull, 0x1234567890abcdefull}) {
    const auto via_router = tree.lookup_id(id);
    const auto via_walk = tree.lookup_walk(BitString::from_uint(id, 64));
    EXPECT_EQ(via_router.iagent, via_walk.iagent);
    EXPECT_EQ(via_router.location, via_walk.location);
  }
  EXPECT_EQ(router.rebuilds(), rebuilds_before);
  EXPECT_EQ(router.patches(), 1u);
  EXPECT_EQ(router.entry_count(), 3u);  // two leaves + one internal
}

TEST(CompiledRouter, ColdRebuildModeLeavesRouterStaleUntilNextRead) {
  HashTree tree(1, 0);
  tree.set_incremental_router(false);
  (void)tree.lookup_id(42);  // compile
  const auto& router = tree.router();
  EXPECT_EQ(router.compiled_version(), tree.version());

  tree.simple_split(1, 1, 2, 5);
  // The pre-patching policy: stale until the next read-path call...
  EXPECT_NE(router.compiled_version(), tree.version());
  // ...which recompiles before routing.
  for (const std::uint64_t id : {0ull, ~0ull, 0x1234567890abcdefull}) {
    const auto via_router = tree.lookup_id(id);
    const auto via_walk = tree.lookup_walk(BitString::from_uint(id, 64));
    EXPECT_EQ(via_router.iagent, via_walk.iagent);
    EXPECT_EQ(via_router.location, via_walk.location);
  }
  EXPECT_EQ(tree.router().compiled_version(), tree.version());
  EXPECT_EQ(tree.router().patches(), 0u);
  EXPECT_EQ(tree.router().entry_count(), 3u);
}

TEST(CompiledRouter, ColdRouterIsNotPatchedAndCompilesOnFirstRead) {
  HashTree tree(1, 0);
  // No read yet: mutations must not touch (or build) a router.
  tree.simple_split(1, 1, 2, 5);
  tree.set_location(2, 7);
  const auto hit = tree.lookup_id(~0ull);
  EXPECT_EQ(hit.iagent, 2u);
  EXPECT_EQ(hit.location, 7u);
  EXPECT_EQ(tree.router().patches(), 0u);
  EXPECT_EQ(tree.router().rebuilds(), 1u);
}

TEST(CompiledRouter, SetLocationInvalidatesCompiledLocations) {
  HashTree tree(1, 0);
  tree.simple_split(1, 1, 2, 5);
  const auto before = tree.lookup_id(0);  // compile with old locations
  tree.set_location(before.iagent, 99);
  EXPECT_EQ(tree.lookup_id(0).location, 99u);
}

TEST(CompiledRouter, CopiesStartColdButAgree) {
  HashTree tree(1, 0);
  tree.simple_split(1, 2, 2, 5);
  (void)tree.lookup_id(7);  // compile the source

  const HashTree copy = tree;
  for (std::uint64_t id = 0; id < 64; ++id) {
    const std::uint64_t probe = id * 0x9e3779b97f4a7c15ull;
    EXPECT_EQ(copy.lookup_id(probe).iagent, tree.lookup_id(probe).iagent);
  }
}

TEST(CompiledRouter, MoveCarriesCompiledRouter) {
  HashTree tree(1, 0);
  tree.simple_split(1, 1, 2, 5);
  (void)tree.lookup_id(7);
  const std::uint64_t compiled_at = tree.router().compiled_version();

  HashTree moved = std::move(tree);
  EXPECT_EQ(moved.router().compiled_version(), compiled_at);
}

TEST(CompiledRouter, CopyAssignmentDropsStaleRouter) {
  HashTree a(1, 0);
  a.simple_split(1, 1, 2, 5);
  (void)a.lookup_id(7);

  // `b` evolves to the same version number as `a` but different structure.
  HashTree b(9, 1);
  b.simple_split(9, 2, 10, 2);
  (void)b.lookup_id(7);

  b = a;
  for (std::uint64_t id = 0; id < 64; ++id) {
    const std::uint64_t probe = id * 0x9e3779b97f4a7c15ull;
    EXPECT_EQ(b.lookup_id(probe).iagent, a.lookup_id(probe).iagent);
    EXPECT_EQ(b.lookup_id(probe).location, a.lookup_id(probe).location);
  }
}

TEST(CompiledRouter, MergeChurnTriggersOneCompactingRebuild) {
  HashTree tree(1, 0);
  IAgentId next_id = 2;
  NodeLocation next_node = 1;
  while (tree.leaf_count() < 80) {
    const auto leaves = tree.leaves();
    tree.simple_split(leaves[tree.leaf_count() / 2], 1, next_id++,
                      next_node++);
  }
  (void)tree.lookup_id(0);  // warm the router: merges below patch in place

  // Each patched merge frees two slots; once frees outnumber live entries
  // the router flags itself for compaction and stops patching.
  while (tree.leaf_count() > 8) {
    tree.merge(tree.leaves().front());
  }
  const auto& router = tree.router();  // compacting rebuild happens here
  EXPECT_EQ(router.compactions(), 1u);
  EXPECT_FALSE(router.wants_compaction());
  EXPECT_EQ(router.free_slots(), 0u);
  EXPECT_EQ(router.live_entries(), 2 * tree.leaf_count() - 1);
  EXPECT_EQ(router.entry_count(), router.live_entries());
  EXPECT_GT(router.patches(), 0u);

  for (std::uint64_t id = 0; id < 64; ++id) {
    const std::uint64_t probe = id * 0x9e3779b97f4a7c15ull;
    const auto via_router = tree.lookup_id(probe);
    const auto via_walk =
        tree.lookup_walk(BitString::from_uint(probe, 64));
    ASSERT_EQ(via_router.iagent, via_walk.iagent);
    ASSERT_EQ(via_router.location, via_walk.location);
  }
  tree.validate();
}

/// The unique leaf whose hyper-label is compatible with `id` (paper §3) —
/// the slowest, most literal implementation, used as the ground truth.
IAgentId compatible_leaf(const HashTree& tree, const BitString& id) {
  IAgentId found = kNoIAgent;
  std::size_t matches = 0;
  for (const IAgentId leaf : tree.leaves()) {
    if (tree.compatible(id, leaf)) {
      ++matches;
      found = leaf;
    }
  }
  EXPECT_EQ(matches, 1u) << "id must match exactly one hyper-label";
  return found;
}

class RouterEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterEquivalence, RandomMutationsKeepAllThreeLookupsInAgreement) {
  Rng rng(GetParam() * 0x9e3779b97f4a7c15ull + 1);

  std::vector<std::uint64_t> probes;
  for (int i = 0; i < 48; ++i) probes.push_back(rng.next());

  HashTree tree(1, 0);
  IAgentId next_id = 2;
  NodeLocation next_node = 1;

  for (int step = 0; step < 260; ++step) {
    // Mutate: split (simple or complex), merge, or relocate a leaf.
    const auto leaves = tree.leaves();
    const IAgentId victim = leaves[rng.next_below(leaves.size())];
    const auto roll = rng.next_below(10);
    if (roll < 4) {
      tree.simple_split(victim, 1 + rng.next_below(3), next_id++,
                        next_node++);
    } else if (roll < 6) {
      const auto candidates = tree.complex_split_candidates(victim);
      if (candidates.empty()) continue;
      tree.complex_split(victim, candidates[rng.next_below(candidates.size())],
                         next_id++, next_node++);
    } else if (roll < 9) {
      if (tree.leaf_count() > 1) tree.merge(victim);
    } else {
      tree.set_location(victim, next_node++);
    }

    // Equivalence after every mutation: compiled router (both entry points)
    // vs. the node walk.
    for (const std::uint64_t id : probes) {
      const auto bits = BitString::from_uint(id, 64);
      const auto via_u64 = tree.lookup_id(id);
      const auto via_bits = tree.lookup(bits);
      const auto via_walk = tree.lookup_walk(bits);
      ASSERT_EQ(via_u64.iagent, via_walk.iagent);
      ASSERT_EQ(via_u64.location, via_walk.location);
      ASSERT_EQ(via_bits.iagent, via_walk.iagent);
      ASSERT_EQ(via_bits.location, via_walk.location);
    }

    // The patched router must stay structurally exact after every op: a
    // binary tree over L leaves compiles to exactly 2L-1 live entries.
    ASSERT_EQ(tree.router().live_entries(), 2 * tree.leaf_count() - 1);

    // Patched ≡ cold rebuild: a copied tree starts with no router and
    // compiles from its node tree, so its answers are by construction those
    // of a cold rebuild of the same version.
    if (step % 10 == 9) {
      const HashTree cold = tree;
      for (const std::uint64_t id : probes) {
        const auto expect = tree.lookup_id(id);
        ASSERT_EQ(cold.lookup_id(id).iagent, expect.iagent);
        ASSERT_EQ(cold.lookup_id(id).location, expect.location);
      }
    }

    // The compatibility predicate is the third independent implementation;
    // it is quadratic in the leaf count, so sample it.
    if (step % 5 == 0) {
      for (int i = 0; i < 4; ++i) {
        const std::uint64_t id = probes[rng.next_below(probes.size())];
        const auto bits = BitString::from_uint(id, 64);
        ASSERT_EQ(tree.lookup(bits).iagent, compatible_leaf(tree, bits));
      }
    }

    // Serialization and copying must preserve the routing function too.
    if (step % 40 == 39) {
      util::ByteWriter writer;
      tree.serialize(writer);
      util::ByteReader reader(writer.bytes());
      const HashTree decoded = HashTree::deserialize(reader);
      const HashTree copied = tree;
      for (const std::uint64_t id : probes) {
        const auto expect = tree.lookup_id(id);
        ASSERT_EQ(decoded.lookup_id(id).iagent, expect.iagent);
        ASSERT_EQ(decoded.lookup_id(id).location, expect.location);
        ASSERT_EQ(copied.lookup_id(id).iagent, expect.iagent);
        ASSERT_EQ(copied.lookup_id(id).location, expect.location);
      }
    }
  }
  tree.validate();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterEquivalence,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace agentloc::hashtree
