// Structural identities of HashTree::Stats, checked over random op
// sequences. These are consequences of the binary-tree shape and the
// valid-bit rule, so they double as a second, independent validator:
//
//   leaves == internal_nodes + 1           (full binary tree)
//   non-root nodes == 2 * internal_nodes   (each internal has 2 children)
//   valid bits == non-root nodes           (one per edge)
//   padding == total_label_bits - valid bits
//   min_depth_bits <= mean <= max_depth_bits
//   height <= max_depth_bits               (every edge carries >= 1 bit)

#include <gtest/gtest.h>

#include "hashtree/tree.hpp"
#include "util/rng.hpp"

namespace agentloc::hashtree {
namespace {

class StatsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsProperty, IdentitiesHoldUnderRandomOps) {
  util::Rng rng(GetParam());
  HashTree tree(1, 0);
  IAgentId next = 2;

  for (int step = 0; step < 150; ++step) {
    const auto leaves = tree.leaves();
    const IAgentId victim = leaves[rng.next_below(leaves.size())];
    const auto roll = rng.next_below(10);
    if (roll < 5 || tree.leaf_count() == 1) {
      tree.simple_split(victim, 1 + rng.next_below(3), next++,
                        static_cast<NodeLocation>(rng.next_below(8)));
    } else if (roll < 7) {
      const auto candidates = tree.complex_split_candidates(victim);
      if (!candidates.empty()) {
        tree.complex_split(victim,
                           candidates[rng.next_below(candidates.size())],
                           next++, 0);
      }
    } else {
      tree.merge(victim);
    }

    const auto stats = tree.stats();
    ASSERT_EQ(stats.leaves, tree.leaf_count());
    ASSERT_EQ(stats.leaves, stats.internal_nodes + 1);
    const std::size_t non_root = stats.leaves + stats.internal_nodes - 1;
    ASSERT_EQ(non_root, 2 * stats.internal_nodes);
    ASSERT_EQ(stats.padding_bits, stats.total_label_bits - non_root);
    if (stats.leaves > 0) {
      ASSERT_LE(stats.min_depth_bits, stats.mean_depth_bits + 1e-9);
      ASSERT_LE(stats.mean_depth_bits, stats.max_depth_bits + 1e-9);
    }
    ASSERT_LE(stats.height, stats.max_depth_bits);
    ASSERT_EQ(stats.height, tree.height());
  }
}

TEST_P(StatsProperty, DepthAgreesWithPerLeafQueries) {
  util::Rng rng(GetParam() ^ 0xd00d);
  HashTree tree(1, 0);
  IAgentId next = 2;
  for (int step = 0; step < 60; ++step) {
    const auto leaves = tree.leaves();
    tree.simple_split(leaves[rng.next_below(leaves.size())],
                      1 + rng.next_below(2), next++, 0);
  }
  const auto stats = tree.stats();
  std::size_t min_depth = SIZE_MAX, max_depth = 0, sum = 0;
  for (const auto leaf : tree.leaves()) {
    const auto depth = tree.depth_bits(leaf);
    min_depth = std::min(min_depth, depth);
    max_depth = std::max(max_depth, depth);
    sum += depth;
  }
  EXPECT_EQ(stats.min_depth_bits, min_depth);
  EXPECT_EQ(stats.max_depth_bits, max_depth);
  EXPECT_NEAR(stats.mean_depth_bits,
              static_cast<double>(sum) / static_cast<double>(tree.leaf_count()),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace agentloc::hashtree
