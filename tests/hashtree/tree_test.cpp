#include "hashtree/tree.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "hashtree/paper_figures.hpp"

namespace agentloc::hashtree {
namespace {

using util::BitString;

TEST(HashTree, SingleLeafServesEverything) {
  HashTree tree(42, 9);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_EQ(tree.lookup(BitString::parse("0")).iagent, 42u);
  EXPECT_EQ(tree.lookup(BitString::parse("1")).iagent, 42u);
  EXPECT_EQ(tree.lookup(BitString()).iagent, 42u);
  EXPECT_EQ(tree.lookup_id(0xdeadbeef).location, 9u);
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_EQ(tree.depth_bits(42), 0u);
  tree.validate();
}

TEST(HashTree, RejectsZeroInitialId) {
  EXPECT_THROW(HashTree(kNoIAgent, 0), std::invalid_argument);
}

TEST(HashTree, Figure1Structure) {
  const HashTree tree = figure1_tree();
  tree.validate();
  EXPECT_EQ(tree.leaf_count(), 7u);
  EXPECT_EQ(tree.hyper_label(kIA0), "0.011.1.0");
  EXPECT_EQ(tree.hyper_label(kIA1), "0.10");
  EXPECT_EQ(tree.hyper_label(kIA2), "0.011.0");
  EXPECT_EQ(tree.hyper_label(kIA3), "1.0");
  EXPECT_EQ(tree.hyper_label(kIA4), "0.011.1.1");
  EXPECT_EQ(tree.hyper_label(kIA5), "1.1.0");
  EXPECT_EQ(tree.hyper_label(kIA6), "1.1.1");
  EXPECT_EQ(tree.height(), 4u);  // root→X→Y→V→IA0
}

TEST(HashTree, Figure1DepthBits) {
  const HashTree tree = figure1_tree();
  EXPECT_EQ(tree.depth_bits(kIA2), 5u);  // 0 + 011 + 0
  EXPECT_EQ(tree.depth_bits(kIA1), 3u);  // 0 + 10
  EXPECT_EQ(tree.depth_bits(kIA3), 2u);
  EXPECT_EQ(tree.depth_bits(kIA0), 6u);
}

TEST(HashTree, Figure2CompatibilityExample) {
  // Paper Figure 2: prefix 00110… is compatible with IA2's hyper-label
  // 0.011.0 — the valid bits (positions 0, 1, 4) all match.
  const HashTree tree = figure1_tree();
  const BitString prefix = BitString::parse("00110");
  EXPECT_TRUE(tree.compatible(prefix, kIA2));
  EXPECT_EQ(tree.lookup(prefix).iagent, kIA2);
  // Flipping a *valid* bit breaks compatibility…
  EXPECT_FALSE(tree.compatible(BitString::parse("10110"), kIA2));
  EXPECT_FALSE(tree.compatible(BitString::parse("00111"), kIA2));
  // …but flipping a padding bit (positions 2 and 3) does not.
  EXPECT_TRUE(tree.compatible(BitString::parse("00010"), kIA2));
  EXPECT_TRUE(tree.compatible(BitString::parse("00100"), kIA2));
}

TEST(HashTree, Figure1LookupRouting) {
  const HashTree tree = figure1_tree();
  // IA3 serves every id whose bits 0..1 are "10" (the paper's "IA3 serves
  // all agents with prefix 10").
  EXPECT_EQ(tree.lookup(BitString::parse("10")).iagent, kIA3);
  EXPECT_EQ(tree.lookup(BitString::parse("1011111")).iagent, kIA3);
  EXPECT_EQ(tree.lookup(BitString::parse("110")).iagent, kIA5);
  EXPECT_EQ(tree.lookup(BitString::parse("111")).iagent, kIA6);
  // IA1: bit0 = 0, bit1 = 1; bit2 is padding of label "10".
  EXPECT_EQ(tree.lookup(BitString::parse("010")).iagent, kIA1);
  EXPECT_EQ(tree.lookup(BitString::parse("011")).iagent, kIA1);
  // IA0/IA4: bit0 = 0, bit1 = 0, bits 2-3 padding, bit4 = 1, bit5 selects.
  EXPECT_EQ(tree.lookup(BitString::parse("001110")).iagent, kIA0);
  EXPECT_EQ(tree.lookup(BitString::parse("000011")).iagent, kIA4);
}

TEST(HashTree, LookupTreatsMissingBitsAsZero) {
  const HashTree tree = figure1_tree();
  EXPECT_EQ(tree.lookup(BitString()).iagent, kIA2);
  EXPECT_EQ(tree.lookup(BitString::parse("1")).iagent, kIA3);
}

TEST(HashTree, LookupAgreesWithCompatibilityForAllLeaves) {
  const HashTree tree = figure1_tree();
  // Every 6-bit id maps to exactly one leaf, and that leaf is the only
  // compatible one (compatibility partitions the id space).
  for (std::uint64_t value = 0; value < 64; ++value) {
    const BitString id = BitString::from_uint(value, 6);
    const IAgentId mapped = tree.lookup(id).iagent;
    int compatible_count = 0;
    for (IAgentId leaf : tree.leaves()) {
      if (tree.compatible(id, leaf)) {
        ++compatible_count;
        EXPECT_EQ(leaf, mapped) << "id " << id.to_string();
      }
    }
    EXPECT_EQ(compatible_count, 1) << "id " << id.to_string();
  }
}

TEST(HashTree, LeavesAreLeftToRight) {
  const HashTree tree = figure1_tree();
  const auto leaves = tree.leaves();
  ASSERT_EQ(leaves.size(), 7u);
  EXPECT_EQ(leaves[0], kIA2);
  EXPECT_EQ(leaves[1], kIA0);
  EXPECT_EQ(leaves[2], kIA4);
  EXPECT_EQ(leaves[3], kIA1);
  EXPECT_EQ(leaves[4], kIA3);
  EXPECT_EQ(leaves[5], kIA5);
  EXPECT_EQ(leaves[6], kIA6);
}

TEST(HashTree, LocationsTrackIAgents) {
  HashTree tree = figure1_tree();
  EXPECT_EQ(tree.location_of(kIA3), 3u);
  EXPECT_EQ(tree.lookup(BitString::parse("10")).location, 3u);
  const auto before = tree.version();
  tree.set_location(kIA3, 12);
  EXPECT_EQ(tree.location_of(kIA3), 12u);
  EXPECT_EQ(tree.lookup(BitString::parse("10")).location, 12u);
  EXPECT_GT(tree.version(), before);
  EXPECT_THROW(tree.location_of(999), std::out_of_range);
  EXPECT_THROW(tree.set_location(999, 1), std::out_of_range);
}

TEST(HashTree, ForEachLeafVisitsAll) {
  const HashTree tree = figure1_tree();
  std::size_t visits = 0;
  tree.for_each_leaf([&](IAgentId id, NodeLocation location) {
    ++visits;
    EXPECT_EQ(location, id - 1);  // IAk placed at node k
  });
  EXPECT_EQ(visits, 7u);
}

TEST(HashTree, CopyIsDeepAndIndependent) {
  HashTree original = figure1_tree();
  HashTree copy = original;
  EXPECT_EQ(copy, original);
  copy.set_location(kIA3, 99);
  EXPECT_EQ(original.location_of(kIA3), 3u);
  EXPECT_FALSE(copy == original);
  copy.validate();
  original.validate();

  HashTree assigned(1, 0);
  assigned = original;
  EXPECT_EQ(assigned, original);
  assigned.validate();
}

TEST(HashTree, MoveTransfersStructure) {
  HashTree original = figure1_tree();
  const HashTree reference = original;
  HashTree moved = std::move(original);
  EXPECT_EQ(moved, reference);
  moved.validate();
}

TEST(HashTree, SelfAssignment) {
  HashTree tree = figure1_tree();
  const HashTree reference = tree;
  tree = *&tree;
  EXPECT_EQ(tree, reference);
}

TEST(HashTree, UnknownLeafThrows) {
  const HashTree tree = figure1_tree();
  EXPECT_THROW(tree.hyper_label_segments(12345), std::out_of_range);
  EXPECT_THROW(tree.hyper_label(12345), std::out_of_range);
  EXPECT_THROW(tree.depth_bits(12345), std::out_of_range);
}

TEST(HashTree, ContainsReflectsLeaves) {
  const HashTree tree = figure1_tree();
  EXPECT_TRUE(tree.contains(kIA5));
  EXPECT_FALSE(tree.contains(999));
}

TEST(HashTree, RenderAsciiMentionsEveryLeaf) {
  const HashTree tree = figure1_tree();
  const std::string art = tree.render_ascii();
  for (IAgentId id : tree.leaves()) {
    EXPECT_NE(art.find("IA" + std::to_string(id)), std::string::npos);
  }
  EXPECT_NE(art.find("011"), std::string::npos);
}

TEST(HashTree, RenderDotIsWellFormed) {
  const HashTree tree = figure1_tree();
  const std::string dot = tree.render_dot();
  EXPECT_EQ(dot.find("digraph"), 0u);
  EXPECT_NE(dot.find("label=\"011\""), std::string::npos);
  EXPECT_NE(dot.rfind("}\n"), std::string::npos);
}

TEST(HashTree, StatsOnSingleLeaf) {
  const HashTree tree(5, 0);
  const auto stats = tree.stats();
  EXPECT_EQ(stats.leaves, 1u);
  EXPECT_EQ(stats.internal_nodes, 0u);
  EXPECT_EQ(stats.height, 0u);
  EXPECT_EQ(stats.min_depth_bits, 0u);
  EXPECT_EQ(stats.max_depth_bits, 0u);
  EXPECT_EQ(stats.padding_bits, 0u);
  EXPECT_EQ(stats.total_label_bits, 0u);
}

TEST(HashTree, StatsOnFigure1) {
  const HashTree tree = figure1_tree();
  const auto stats = tree.stats();
  EXPECT_EQ(stats.leaves, 7u);
  EXPECT_EQ(stats.internal_nodes, 6u);
  EXPECT_EQ(stats.height, 4u);
  EXPECT_EQ(stats.min_depth_bits, 2u);   // IA3 = 1.0
  EXPECT_EQ(stats.max_depth_bits, 6u);   // IA0/IA4 = 0.011.1.x
  // 13 edges: 0,011,0,1,0,1,10,1,0,1,0,1 → 15 label bits, of which "011"
  // carries 2 padding bits and "10" carries 1.
  EXPECT_EQ(stats.total_label_bits, 15u);
  EXPECT_EQ(stats.padding_bits, 3u);
  EXPECT_NEAR(stats.mean_depth_bits, (5 + 6 + 6 + 3 + 2 + 3 + 3) / 7.0, 1e-9);
}

TEST(HashTree, StatsCountRootPadding) {
  HashTree tree(5, 0);
  tree.simple_split(5, 3, 6, 1);  // root padding "00" + children 0/1
  const auto stats = tree.stats();
  EXPECT_EQ(stats.leaves, 2u);
  EXPECT_EQ(stats.padding_bits, 2u);  // the two root padding bits
  EXPECT_EQ(stats.total_label_bits, 4u);
  EXPECT_EQ(stats.min_depth_bits, 3u);
  EXPECT_EQ(stats.max_depth_bits, 3u);
}

TEST(HashTree, PaperNames) {
  EXPECT_EQ(paper_name(kIA0), "IA0");
  EXPECT_EQ(paper_name(kIA6), "IA6");
}

}  // namespace
}  // namespace agentloc::hashtree
