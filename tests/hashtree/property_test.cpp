// Randomized property tests for the hash tree: arbitrary interleavings of
// splits and merges must preserve (a) structural invariants, (b) the
// partition property — every id maps to exactly one compatible leaf — and
// (c) the paper's locality requirement: an operation only remaps agents of
// the IAgents involved in it.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "hashtree/tree.hpp"
#include "util/bytebuffer.hpp"
#include "util/rng.hpp"

namespace agentloc::hashtree {
namespace {

using util::BitString;
using util::Rng;

constexpr std::size_t kProbeIds = 300;

std::vector<std::uint64_t> make_probe_ids(Rng& rng) {
  std::vector<std::uint64_t> ids;
  ids.reserve(kProbeIds);
  for (std::size_t i = 0; i < kProbeIds; ++i) ids.push_back(rng.next());
  return ids;
}

std::map<std::uint64_t, IAgentId> snapshot_mapping(
    const HashTree& tree, const std::vector<std::uint64_t>& ids) {
  std::map<std::uint64_t, IAgentId> mapping;
  for (auto id : ids) mapping[id] = tree.lookup_id(id).iagent;
  return mapping;
}

class HashTreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HashTreeProperty, RandomOpsPreserveInvariantsAndLocality) {
  Rng rng(GetParam());
  const auto probes = make_probe_ids(rng);

  HashTree tree(1, 0);
  IAgentId next_id = 2;
  NodeLocation next_node = 1;

  auto before = snapshot_mapping(tree, probes);

  for (int step = 0; step < 120; ++step) {
    const auto leaves = tree.leaves();
    const IAgentId victim =
        leaves[rng.next_below(leaves.size())];

    enum { kSimpleSplit, kComplexSplit, kMerge } op;
    const auto roll = rng.next_below(10);
    if (roll < 4) {
      op = kSimpleSplit;
    } else if (roll < 7) {
      op = kComplexSplit;
    } else {
      op = kMerge;
    }

    // Which probe ids may legally change owner?
    std::vector<std::uint64_t> may_change;
    IAgentId created = kNoIAgent;

    if (op == kSimpleSplit) {
      const auto m = 1 + rng.next_below(3);
      created = next_id++;
      for (auto id : probes) {
        if (before[id] == victim) may_change.push_back(id);
      }
      tree.simple_split(victim, m, created, next_node++);
    } else if (op == kComplexSplit) {
      const auto candidates = tree.complex_split_candidates(victim);
      if (candidates.empty()) continue;
      const auto point = candidates[rng.next_below(candidates.size())];
      created = next_id++;
      const std::size_t pos = tree.split_point_bit_position(victim, point);
      const bool recorded =
          tree.hyper_label_segments(victim)[point.segment][point.bit];
      tree.complex_split(victim, point, created, next_node++);
      tree.validate();
      // The only legal movement is *to* the new leaf, and only for ids whose
      // bit at the reclaimed position is the complement of the recorded
      // padding bit. Everything else keeps its owner.
      const auto after_split = snapshot_mapping(tree, probes);
      for (auto id : probes) {
        if (after_split.at(id) == created) {
          EXPECT_EQ(BitString::from_uint(id, 64)[pos], !recorded)
              << "id moved to the new leaf without the complement bit";
        } else {
          EXPECT_EQ(after_split.at(id), before.at(id))
              << "complex split moved an id to an unrelated leaf";
        }
      }
      before = after_split;
      continue;
    } else {
      if (tree.leaf_count() < 2) continue;
      for (auto id : probes) {
        if (before[id] == victim) may_change.push_back(id);
      }
      tree.merge(victim);
    }

    tree.validate();
    const auto after = snapshot_mapping(tree, probes);
    for (auto id : probes) {
      const bool allowed =
          std::find(may_change.begin(), may_change.end(), id) !=
          may_change.end();
      if (!allowed) {
        EXPECT_EQ(after.at(id), before.at(id))
            << "op remapped an uninvolved id";
      } else if (op == kSimpleSplit) {
        // Victim's ids stay with the victim or move to the new leaf.
        EXPECT_TRUE(after.at(id) == victim || after.at(id) == created);
      }
    }
    before = after;
  }
}

TEST_P(HashTreeProperty, EveryIdHasExactlyOneCompatibleLeaf) {
  Rng rng(GetParam() ^ 0x700d);
  HashTree tree(1, 0);
  IAgentId next_id = 2;

  for (int step = 0; step < 40; ++step) {
    const auto leaves = tree.leaves();
    const IAgentId victim = leaves[rng.next_below(leaves.size())];
    if (rng.chance(0.6)) {
      const auto candidates = tree.complex_split_candidates(victim);
      if (!candidates.empty() && rng.chance(0.5)) {
        tree.complex_split(victim, candidates[rng.next_below(candidates.size())],
                           next_id++, 0);
      } else {
        tree.simple_split(victim, 1 + rng.next_below(2), next_id++, 0);
      }
    } else if (tree.leaf_count() > 1) {
      tree.merge(victim);
    }
  }

  for (int i = 0; i < 200; ++i) {
    const std::uint64_t value = rng.next();
    const BitString id = BitString::from_uint(value, 64);
    const IAgentId owner = tree.lookup(id).iagent;
    std::size_t compatible = 0;
    for (IAgentId leaf : tree.leaves()) {
      if (tree.compatible(id, leaf)) {
        ++compatible;
        EXPECT_EQ(leaf, owner);
      }
    }
    EXPECT_EQ(compatible, 1u);
  }
}

TEST_P(HashTreeProperty, SerializationRoundTripsAfterRandomOps) {
  Rng rng(GetParam() ^ 0xbeef);
  HashTree tree(1, 0);
  IAgentId next_id = 2;
  for (int step = 0; step < 60; ++step) {
    const auto leaves = tree.leaves();
    const IAgentId victim = leaves[rng.next_below(leaves.size())];
    if (rng.chance(0.65)) {
      tree.simple_split(victim, 1 + rng.next_below(3), next_id++,
                        static_cast<NodeLocation>(rng.next_below(16)));
    } else if (tree.leaf_count() > 1) {
      tree.merge(victim);
    }
  }
  util::ByteWriter writer;
  tree.serialize(writer);
  util::ByteReader reader(writer.bytes());
  const HashTree copy = HashTree::deserialize(reader);
  EXPECT_EQ(copy, tree);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id = rng.next();
    EXPECT_EQ(copy.lookup_id(id).iagent, tree.lookup_id(id).iagent);
  }
}

TEST_P(HashTreeProperty, CopiesDivergeIndependently) {
  Rng rng(GetParam() ^ 0xc0ffee);
  HashTree primary(1, 0);
  IAgentId next_id = 2;
  for (int i = 0; i < 10; ++i) {
    primary.simple_split(primary.leaves()[0], 1, next_id++, 0);
  }
  HashTree secondary = primary;  // the LHAgent's stale copy
  const auto frozen = snapshot_mapping(secondary, {1, 2, 3, 99, 12345});

  for (int i = 0; i < 10; ++i) {
    const auto leaves = primary.leaves();
    primary.merge(leaves[rng.next_below(leaves.size())]);
  }
  EXPECT_EQ(snapshot_mapping(secondary, {1, 2, 3, 99, 12345}), frozen);
  secondary.validate();
  primary.validate();
  EXPECT_NE(primary.leaf_count(), secondary.leaf_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashTreeProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace agentloc::hashtree
