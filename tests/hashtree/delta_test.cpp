#include "hashtree/delta.hpp"

#include <gtest/gtest.h>

#include "hashtree/paper_figures.hpp"
#include "hashtree/router.hpp"
#include "util/rng.hpp"

namespace agentloc::hashtree {
namespace {

TreeOp simple_split_op(IAgentId victim, std::uint32_t m, IAgentId fresh,
                       NodeLocation node) {
  TreeOp op;
  op.kind = TreeOp::Kind::kSimpleSplit;
  op.victim = victim;
  op.m = m;
  op.new_iagent = fresh;
  op.location = node;
  return op;
}

TEST(TreeOp, ApplyMatchesDirectMutations) {
  HashTree direct = figure1_tree();
  HashTree replayed = figure1_tree();

  direct.simple_split(kIA3, 2, 100, 9);
  apply_op(replayed, simple_split_op(kIA3, 2, 100, 9));
  EXPECT_EQ(direct, replayed);

  direct.merge(kIA6);
  TreeOp merge_op;
  merge_op.kind = TreeOp::Kind::kMerge;
  merge_op.victim = kIA6;
  apply_op(replayed, merge_op);
  EXPECT_EQ(direct, replayed);

  const auto point = direct.complex_split_candidates(kIA1).front();
  direct.complex_split(kIA1, point, 101, 3);
  TreeOp complex_op;
  complex_op.kind = TreeOp::Kind::kComplexSplit;
  complex_op.victim = kIA1;
  complex_op.point = point;
  complex_op.new_iagent = 101;
  complex_op.location = 3;
  apply_op(replayed, complex_op);
  EXPECT_EQ(direct, replayed);

  direct.set_location(kIA5, 12);
  TreeOp move_op;
  move_op.kind = TreeOp::Kind::kSetLocation;
  move_op.victim = kIA5;
  move_op.location = 12;
  apply_op(replayed, move_op);
  EXPECT_EQ(direct, replayed);
}

TEST(TreeOp, SerializationRoundTrip) {
  TreeOp op;
  op.kind = TreeOp::Kind::kComplexSplit;
  op.victim = 0xdeadbeefcafef00dull;
  op.m = 3;
  op.point = SplitPoint{2, 1};
  op.new_iagent = 42;
  op.location = 7;

  util::ByteWriter writer;
  serialize_op(writer, op);
  util::ByteReader reader(writer.bytes());
  EXPECT_EQ(deserialize_op(reader), op);
  EXPECT_TRUE(reader.exhausted());
}

TEST(TreeOp, BadKindThrows) {
  util::ByteWriter writer;
  writer.write_u8(9);
  util::ByteReader reader(writer.bytes());
  EXPECT_THROW(deserialize_op(reader), std::invalid_argument);
}

TEST(TreeDelta, ApplyAdvancesStaleCopy) {
  HashTree primary(1, 0);
  HashTree secondary = primary;

  TreeJournal journal(16);
  const auto mutate = [&](const TreeOp& op) {
    apply_op(primary, op);
    journal.record(primary.version(), op);
  };
  mutate(simple_split_op(1, 1, 2, 1));
  mutate(simple_split_op(2, 1, 3, 2));
  mutate(simple_split_op(1, 2, 4, 3));

  const auto delta = journal.since(secondary.version());
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->ops.size(), 3u);
  delta->apply_to(secondary);
  EXPECT_EQ(secondary, primary);
}

TEST(TreeDelta, SerializationRoundTrip) {
  TreeDelta delta;
  delta.base_version = 5;
  delta.target_version = 7;
  delta.ops.push_back(simple_split_op(1, 1, 2, 1));
  delta.ops.push_back(simple_split_op(2, 2, 3, 4));

  util::ByteWriter writer;
  delta.serialize(writer);
  util::ByteReader reader(writer.bytes());
  const TreeDelta copy = TreeDelta::deserialize(reader);
  EXPECT_EQ(copy.base_version, 5u);
  EXPECT_EQ(copy.target_version, 7u);
  EXPECT_EQ(copy.ops, delta.ops);
}

TEST(TreeDelta, RejectsWrongBaseVersion) {
  HashTree tree(1, 0);
  TreeDelta delta;
  delta.base_version = 99;
  delta.target_version = 100;
  EXPECT_THROW(delta.apply_to(tree), std::logic_error);
}

TEST(TreeDelta, DeltaIsSmallerThanSnapshotForLargeTrees) {
  util::Rng rng(5);
  HashTree tree(1, 0);
  TreeJournal journal(64);
  IAgentId next = 2;
  for (int i = 0; i < 200; ++i) {
    const auto leaves = tree.leaves();
    const TreeOp op = simple_split_op(
        leaves[rng.next_below(leaves.size())], 1, next++, 0);
    apply_op(tree, op);
    journal.record(tree.version(), op);
  }
  const auto delta = journal.since(tree.version() - 3);
  ASSERT_TRUE(delta.has_value());
  EXPECT_LT(delta->serialized_bytes(), tree.serialized_bytes() / 10);
}

TEST(TreeJournal, ForgetsBeyondCapacity) {
  TreeJournal journal(2);
  HashTree tree(1, 0);
  for (IAgentId fresh = 2; fresh <= 5; ++fresh) {
    const TreeOp op = simple_split_op(1, 1, fresh, 0);
    apply_op(tree, op);
    journal.record(tree.version(), op);
  }
  EXPECT_EQ(journal.size(), 2u);
  EXPECT_FALSE(journal.since(1).has_value());          // too old
  EXPECT_TRUE(journal.since(tree.version() - 2).has_value());
  EXPECT_TRUE(journal.since(tree.version()).has_value());  // empty delta
  EXPECT_EQ(journal.since(tree.version())->ops.size(), 0u);
  EXPECT_FALSE(journal.since(tree.version() + 1).has_value());  // future
}

TEST(TreeJournal, TracksEncodedBytes) {
  TreeJournal journal(16);
  HashTree tree(1, 0);
  const std::uint64_t base = tree.version();
  std::size_t expected = 0;
  for (IAgentId fresh = 2; fresh <= 6; ++fresh) {
    const TreeOp op = simple_split_op(1, 1, fresh, 0);
    apply_op(tree, op);
    journal.record(tree.version(), op);
    expected += serialized_op_bytes(op);
  }
  EXPECT_EQ(journal.bytes(), expected);
  EXPECT_EQ(journal.truncations(), 0u);

  // The analytic per-op width must match the real encoder.
  const auto delta = journal.since(base);
  ASSERT_TRUE(delta.has_value());
  util::ByteWriter writer;
  for (const TreeOp& op : delta->ops) serialize_op(writer, op);
  EXPECT_EQ(writer.size(), expected);
}

TEST(TreeJournal, ByteBoundTruncatesOldestInOneBatch) {
  const TreeOp probe = simple_split_op(1, 1, 2, 0);
  const std::size_t op_bytes = serialized_op_bytes(probe);

  // Capacity is generous; the byte bound (room for 4 ops) is what binds.
  TreeJournal journal(1024, 4 * op_bytes);
  HashTree tree(1, 0);
  for (IAgentId fresh = 2; fresh <= 11; ++fresh) {
    const TreeOp op = simple_split_op(1, 1, fresh, 0);
    apply_op(tree, op);
    journal.record(tree.version(), op);
    EXPECT_LE(journal.bytes(), 4 * op_bytes);
  }
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.truncations(), 6u);  // one event per overflowing record
  EXPECT_FALSE(journal.since(tree.version() - 5).has_value());
  const auto delta = journal.since(tree.version() - 4);
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->ops.size(), 4u);
}

TEST(TreeJournal, ByteBoundAlwaysKeepsNewestOp) {
  const TreeOp probe = simple_split_op(1, 1, 2, 0);
  // Bound smaller than a single op: each record immediately truncates down
  // to just the newest op instead of emptying the journal.
  TreeJournal journal(8, serialized_op_bytes(probe) / 2);
  HashTree tree(1, 0);
  for (IAgentId fresh = 2; fresh <= 4; ++fresh) {
    const TreeOp op = simple_split_op(1, 1, fresh, 0);
    apply_op(tree, op);
    journal.record(tree.version(), op);
    EXPECT_EQ(journal.size(), 1u);
  }
  EXPECT_TRUE(journal.since(tree.version() - 1).has_value());
  EXPECT_FALSE(journal.since(tree.version() - 2).has_value());
}

TEST(TreeDelta, ReplayPatchesWarmRouterWithoutRebuild) {
  HashTree primary(1, 0);
  HashTree secondary = primary;
  (void)secondary.lookup_id(1);  // warm the secondary's router
  const std::uint64_t rebuilds = secondary.router().rebuilds();

  TreeJournal journal(64);
  util::Rng rng(3);
  IAgentId next = 2;
  for (int i = 0; i < 40; ++i) {
    const auto leaves = primary.leaves();
    const IAgentId fresh = next++;
    const TreeOp op = simple_split_op(leaves[rng.next_below(leaves.size())],
                                      1, fresh, fresh % 5);
    apply_op(primary, op);
    journal.record(primary.version(), op);
  }

  const auto delta = journal.since(secondary.version());
  ASSERT_TRUE(delta.has_value());
  delta->apply_to(secondary);
  EXPECT_EQ(secondary, primary);
  // The whole replay rode the patch path: same router object, zero rebuilds.
  EXPECT_EQ(secondary.router().rebuilds(), rebuilds);
  EXPECT_EQ(secondary.router().patches(), 40u);
  EXPECT_EQ(secondary.router().compiled_version(), secondary.version());
  for (std::uint64_t id = 0; id < 64; ++id) {
    const std::uint64_t probe = id * 0x9e3779b97f4a7c15ull;
    EXPECT_EQ(secondary.lookup_id(probe).iagent,
              primary.lookup_id(probe).iagent);
  }
}

TEST(TreeJournal, GapClearsHistory) {
  TreeJournal journal(8);
  journal.record(2, simple_split_op(1, 1, 2, 0));
  journal.record(5, simple_split_op(1, 1, 3, 0));  // gap: versions 3-4 lost
  EXPECT_FALSE(journal.since(2).has_value());
  EXPECT_TRUE(journal.since(4).has_value());
  EXPECT_EQ(journal.since(4)->ops.size(), 1u);
}

TEST(TreeJournal, RandomizedReplayEquivalence) {
  util::Rng rng(11);
  HashTree primary(1, 0);
  HashTree checkpoint = primary;
  TreeJournal journal(512);
  IAgentId next = 2;

  for (int i = 0; i < 150; ++i) {
    const auto leaves = primary.leaves();
    const IAgentId victim = leaves[rng.next_below(leaves.size())];
    TreeOp op;
    if (rng.chance(0.6) || primary.leaf_count() == 1) {
      op = simple_split_op(victim, 1 + static_cast<std::uint32_t>(
                                            rng.next_below(2)),
                           next++, static_cast<NodeLocation>(
                                       rng.next_below(8)));
    } else if (rng.chance(0.5)) {
      op.kind = TreeOp::Kind::kMerge;
      op.victim = victim;
    } else {
      op.kind = TreeOp::Kind::kSetLocation;
      op.victim = victim;
      op.location = static_cast<NodeLocation>(rng.next_below(8));
    }
    apply_op(primary, op);
    journal.record(primary.version(), op);
  }

  const auto delta = journal.since(checkpoint.version());
  ASSERT_TRUE(delta.has_value());
  delta->apply_to(checkpoint);
  EXPECT_EQ(checkpoint, primary);
  checkpoint.validate();
}

}  // namespace
}  // namespace agentloc::hashtree
