#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/buffer_pool.hpp"
#include "util/bytebuffer.hpp"
#include "util/rng.hpp"

namespace agentloc::net {
namespace {

std::vector<std::uint8_t> encode_one(FrameType type, std::uint64_t correlation,
                                     const std::vector<std::uint8_t>& payload,
                                     std::uint8_t flags = 0) {
  util::ByteWriter writer;
  const OpenFrame open = begin_frame(writer, type, correlation, flags);
  writer.write_bytes(payload.data(), payload.size());
  end_frame(writer, open);
  return std::move(writer).take();
}

TEST(PaddedVarint, AlwaysFourBytesAndDecodesCanonically) {
  for (std::uint32_t value :
       {0u, 1u, 127u, 128u, 16383u, 16384u, (1u << 21), (1u << 28) - 1}) {
    util::ByteWriter writer;
    writer.write_varint4(value);
    ASSERT_EQ(writer.size(), 4u);
    util::ByteReader reader(writer.bytes());
    EXPECT_EQ(reader.read_varint(), value) << "value " << value;
    EXPECT_TRUE(reader.exhausted());
  }
}

TEST(PaddedVarint, RejectsValuesAbove28Bits) {
  util::ByteWriter writer;
  EXPECT_THROW(writer.write_varint4(1u << 28), std::length_error);
}

TEST(PaddedVarint, PatchRewritesInPlace) {
  util::ByteWriter writer;
  writer.write_u8(0xaa);
  const std::size_t slot = writer.size();
  writer.write_varint4(0);
  writer.write_u8(0xbb);
  writer.patch_varint4(slot, 1234567);
  util::ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_u8(), 0xaa);
  EXPECT_EQ(reader.read_varint(), 1234567u);
  EXPECT_EQ(reader.read_u8(), 0xbb);
}

TEST(Frame, SingleFrameRoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto bytes =
      encode_one(FrameType::kLocate, 42, payload, /*flags=*/0x01);

  util::BufferPool pool;
  FrameDecoder decoder(pool);
  decoder.feed(bytes.data(), bytes.size());

  FrameView view;
  ASSERT_EQ(decoder.next(view), FrameDecoder::Status::kFrame);
  EXPECT_EQ(view.type, FrameType::kLocate);
  EXPECT_EQ(view.correlation, 42u);
  EXPECT_EQ(view.flags, 0x01);
  ASSERT_EQ(view.payload_size, payload.size());
  EXPECT_EQ(std::memcmp(view.payload, payload.data(), payload.size()), 0);
  EXPECT_EQ(decoder.next(view), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Frame, EmptyPayloadFrame) {
  const auto bytes = encode_one(FrameType::kPing, 7, {});
  util::BufferPool pool;
  FrameDecoder decoder(pool);
  decoder.feed(bytes.data(), bytes.size());
  FrameView view;
  ASSERT_EQ(decoder.next(view), FrameDecoder::Status::kFrame);
  EXPECT_EQ(view.type, FrameType::kPing);
  EXPECT_EQ(view.payload_size, 0u);
}

TEST(Frame, EndFrameReturnsTotalFrameSize) {
  util::ByteWriter writer;
  writer.write_u8(0xff);  // preceding content in the same batch buffer
  const OpenFrame open = begin_frame(writer, FrameType::kUpdate, 1);
  writer.write_varint(99);
  const std::size_t total = end_frame(writer, open);
  EXPECT_EQ(total, writer.size() - 1);
}

TEST(Frame, RandomizedStreamRoundTripIdentity) {
  // Satellite check: randomized payload round-trip through encode + chunked
  // decode is the identity, whatever the chunking.
  util::Rng rng(20260808);
  struct Expected {
    FrameType type;
    std::uint8_t flags;
    std::uint64_t correlation;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Expected> expected;
  util::ByteWriter writer;
  for (int i = 0; i < 400; ++i) {
    Expected e;
    e.type = static_cast<FrameType>(1 + rng.next_below(10));
    e.flags = static_cast<std::uint8_t>(rng.next_below(256));
    e.correlation = rng.next();  // full 64-bit range
    e.payload.resize(rng.next_below(600));
    for (auto& byte : e.payload) {
      byte = static_cast<std::uint8_t>(rng.next_below(256));
    }
    const OpenFrame open =
        begin_frame(writer, e.type, e.correlation, e.flags);
    writer.write_bytes(e.payload.data(), e.payload.size());
    end_frame(writer, open);
    expected.push_back(std::move(e));
  }
  const std::vector<std::uint8_t> stream = std::move(writer).take();

  util::BufferPool pool;
  FrameDecoder decoder(pool);
  std::size_t fed = 0;
  std::size_t seen = 0;
  FrameView view;
  while (seen < expected.size()) {
    if (fed < stream.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.next_below(97), stream.size() - fed);
      decoder.feed(stream.data() + fed, chunk);
      fed += chunk;
    }
    for (;;) {
      const auto status = decoder.next(view);
      if (status == FrameDecoder::Status::kNeedMore) break;
      ASSERT_EQ(status, FrameDecoder::Status::kFrame);
      const Expected& e = expected[seen];
      EXPECT_EQ(view.type, e.type);
      EXPECT_EQ(view.flags, e.flags);
      EXPECT_EQ(view.correlation, e.correlation);
      ASSERT_EQ(view.payload_size, e.payload.size());
      if (!e.payload.empty()) {
        EXPECT_EQ(
            std::memcmp(view.payload, e.payload.data(), e.payload.size()), 0);
      }
      ++seen;
    }
  }
  EXPECT_EQ(seen, expected.size());
  EXPECT_EQ(fed, stream.size());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Frame, TruncatedFrameReportsNeedMoreNotError) {
  const auto bytes =
      encode_one(FrameType::kUpdate, 9, std::vector<std::uint8_t>(64, 0x5a));
  util::BufferPool pool;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder decoder(pool);
    decoder.feed(bytes.data(), cut);
    FrameView view;
    ASSERT_EQ(decoder.next(view), FrameDecoder::Status::kNeedMore)
        << "cut at " << cut;
    EXPECT_FALSE(decoder.failed());
    // Completing the stream yields the frame.
    decoder.feed(bytes.data() + cut, bytes.size() - cut);
    ASSERT_EQ(decoder.next(view), FrameDecoder::Status::kFrame);
  }
}

TEST(Frame, BadMagicIsCleanError) {
  auto bytes = encode_one(FrameType::kUpdate, 1, {1, 2, 3});
  bytes[0] = 0x00;
  util::BufferPool pool;
  FrameDecoder decoder(pool);
  decoder.feed(bytes.data(), bytes.size());
  FrameView view;
  EXPECT_EQ(decoder.next(view), FrameDecoder::Status::kError);
  EXPECT_TRUE(decoder.failed());
  EXPECT_NE(decoder.error().find("magic"), std::string::npos);
  // Sticky: further input cannot resurrect a poisoned stream.
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_EQ(decoder.next(view), FrameDecoder::Status::kError);
}

TEST(Frame, OversizedLengthIsCleanError) {
  util::ByteWriter writer;
  writer.write_u8(kFrameMagic);
  writer.write_u8(static_cast<std::uint8_t>(FrameType::kUpdate));
  writer.write_u8(0);
  writer.write_varint(1);            // correlation
  writer.write_varint4(2u << 20);   // double the default cap
  const auto bytes = std::move(writer).take();

  util::BufferPool pool;
  FrameDecoder decoder(pool);
  decoder.feed(bytes.data(), bytes.size());
  FrameView view;
  EXPECT_EQ(decoder.next(view), FrameDecoder::Status::kError);
  EXPECT_NE(decoder.error().find("cap"), std::string::npos);
}

TEST(Frame, CustomCapIsEnforced) {
  const auto bytes =
      encode_one(FrameType::kUpdate, 1, std::vector<std::uint8_t>(100, 1));
  util::BufferPool pool;
  FrameDecoder decoder(pool, FrameDecoder::Config{/*max_payload=*/64});
  decoder.feed(bytes.data(), bytes.size());
  FrameView view;
  EXPECT_EQ(decoder.next(view), FrameDecoder::Status::kError);
}

TEST(Frame, CorruptCorrelationVarintIsCleanError) {
  std::vector<std::uint8_t> bytes = {kFrameMagic,
                                     static_cast<std::uint8_t>(FrameType::kPing),
                                     0};
  // 10 continuation bytes: a 64-bit varint cannot be this long.
  for (int i = 0; i < 10; ++i) bytes.push_back(0xff);
  util::BufferPool pool;
  FrameDecoder decoder(pool);
  decoder.feed(bytes.data(), bytes.size());
  FrameView view;
  EXPECT_EQ(decoder.next(view), FrameDecoder::Status::kError);
  EXPECT_NE(decoder.error().find("correlation"), std::string::npos);
}

TEST(Frame, CorruptLengthVarintIsCleanError) {
  std::vector<std::uint8_t> bytes = {kFrameMagic,
                                     static_cast<std::uint8_t>(FrameType::kPing),
                                     0, /*correlation=*/1};
  for (int i = 0; i < 6; ++i) bytes.push_back(0xff);  // length varint > 32 bits
  util::BufferPool pool;
  FrameDecoder decoder(pool);
  decoder.feed(bytes.data(), bytes.size());
  FrameView view;
  EXPECT_EQ(decoder.next(view), FrameDecoder::Status::kError);
  EXPECT_NE(decoder.error().find("length"), std::string::npos);
}

TEST(Frame, GarbageAfterValidFrameFailsAtTheBoundary) {
  auto bytes = encode_one(FrameType::kPong, 3, {9, 9});
  bytes.push_back(0x17);  // not kFrameMagic
  util::BufferPool pool;
  FrameDecoder decoder(pool);
  decoder.feed(bytes.data(), bytes.size());
  FrameView view;
  ASSERT_EQ(decoder.next(view), FrameDecoder::Status::kFrame);
  EXPECT_EQ(view.type, FrameType::kPong);
  EXPECT_EQ(decoder.next(view), FrameDecoder::Status::kError);
}

TEST(Frame, WritableCommitPathMatchesFeed) {
  const auto bytes = encode_one(FrameType::kHello, 5, {42});
  util::BufferPool pool;
  FrameDecoder decoder(pool);
  // The zero-copy recv path: write straight into the decoder's buffer.
  std::uint8_t* dst = decoder.writable(bytes.size());
  std::memcpy(dst, bytes.data(), bytes.size());
  decoder.commit(bytes.size());
  FrameView view;
  ASSERT_EQ(decoder.next(view), FrameDecoder::Status::kFrame);
  EXPECT_EQ(view.type, FrameType::kHello);
  ASSERT_EQ(view.payload_size, 1u);
  EXPECT_EQ(view.payload[0], 42);
}

TEST(Frame, DecoderReturnsBufferToPoolOnDestruction) {
  util::BufferPool pool;
  {
    FrameDecoder decoder(pool);
    const auto bytes = encode_one(FrameType::kPing, 1, {});
    decoder.feed(bytes.data(), bytes.size());
  }
  EXPECT_EQ(pool.pooled_count(), 1u);
}

}  // namespace
}  // namespace agentloc::net
