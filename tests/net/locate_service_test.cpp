#include "net/locate_service.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace agentloc::net {
namespace {

TEST(LocateDirectory, NewestSeqWins) {
  LocateDirectory directory(4);
  EXPECT_TRUE(directory.apply_update(77, /*node=*/3, /*seq=*/5));
  EXPECT_FALSE(directory.apply_update(77, /*node=*/9, /*seq=*/4))
      << "stale update must not overwrite";
  EXPECT_FALSE(directory.apply_update(77, /*node=*/9, /*seq=*/5))
      << "equal seq is stale too";
  core::LocateReply reply = directory.locate(77);
  EXPECT_EQ(reply.status, core::LocateStatus::kFound);
  EXPECT_EQ(reply.node, 3u);
  EXPECT_EQ(reply.seq, 5u);

  EXPECT_TRUE(directory.apply_update(77, /*node=*/9, /*seq=*/6));
  reply = directory.locate(77);
  EXPECT_EQ(reply.node, 9u);
  EXPECT_EQ(reply.seq, 6u);
}

TEST(LocateDirectory, DeregisterLeavesSeqTombstone) {
  LocateDirectory directory(4);
  ASSERT_TRUE(directory.apply_update(42, 1, 10));
  EXPECT_TRUE(directory.deregister_agent(42, 11));
  EXPECT_EQ(directory.locate(42).status, core::LocateStatus::kUnknown);
  // A stale in-flight update cannot resurrect the binding...
  EXPECT_FALSE(directory.apply_update(42, 2, 10));
  EXPECT_EQ(directory.locate(42).status, core::LocateStatus::kUnknown);
  // ...but a genuinely newer one can.
  EXPECT_TRUE(directory.apply_update(42, 2, 12));
  EXPECT_EQ(directory.locate(42).status, core::LocateStatus::kFound);
}

TEST(LocateDirectory, UnknownAgentNotFound) {
  LocateDirectory directory(4);
  EXPECT_EQ(directory.locate(12345).status, core::LocateStatus::kUnknown);
  EXPECT_FALSE(directory.deregister_agent(12345, 1));
}

TEST(LocateDirectory, PartitionRoutingMatchesHashTree) {
  // partition_of must agree with the pre-split HashTree for any id, and the
  // pre-split must produce exactly the requested number of leaves.
  for (std::size_t partitions : {1u, 2u, 4u, 7u, 16u}) {
    LocateDirectory directory(partitions);
    EXPECT_EQ(directory.tree().leaf_count(), partitions);
    EXPECT_EQ(directory.partition_count(), partitions);
    util::Rng rng(17);
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t id = rng.next();
      const std::size_t partition = directory.partition_of(id);
      EXPECT_LT(partition, partitions);
      EXPECT_EQ(partition, directory.tree().lookup_id(id).iagent - 1);
    }
  }
}

TEST(LocateDirectory, BindingsLandInTheirHashPartition) {
  LocateDirectory directory(8);
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t id = rng.next();
    ASSERT_TRUE(directory.apply_update(id, i % 50, 1));
    EXPECT_EQ(directory.locate(id).status, core::LocateStatus::kFound);
  }
  EXPECT_EQ(directory.size(), 500u);
}

/// Client/server over a real UDS in one process: the server transport turns
/// on a pump thread (the client's sync waits only poll the client side).
/// Server-side state is only inspected after the pump has been stopped.
class LocateServiceLoop : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!SocketTransport::sockets_available()) {
      GTEST_SKIP() << "sandbox cannot create sockets";
    }
    path_ = "/tmp/agentloc-ls-" + std::to_string(::getpid()) + ".sock";
    address_.kind = SocketAddress::Kind::kUnix;
    address_.path = path_;
    std::string error;
    ASSERT_TRUE(server_transport_.listen(address_, &error)) << error;
    service_ =
        std::make_unique<LocateService>(server_transport_, /*partitions=*/4);
    start_pump();
    ASSERT_TRUE(client_.connect(address_, &error)) << error;
  }

  void TearDown() override {
    stop_pump();
    if (!path_.empty()) ::unlink(path_.c_str());
  }

  void start_pump() {
    stop_.store(false);
    pump_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        server_transport_.poll_once(5);
      }
    });
  }

  void stop_pump() {
    if (pump_.joinable()) {
      stop_.store(true);
      pump_.join();
    }
  }

  std::string path_;
  SocketAddress address_;
  SocketTransport server_transport_;
  std::unique_ptr<LocateService> service_;
  LocateClient client_;
  std::atomic<bool> stop_{false};
  std::thread pump_;
};

TEST_F(LocateServiceLoop, HandshakeReportsPartitions) {
  EXPECT_TRUE(client_.connected());
  EXPECT_EQ(client_.server_partitions(), 4u);
}

TEST_F(LocateServiceLoop, UpdateThenLocateRoundTrip) {
  const auto applied = client_.update(1001, /*node=*/7, /*seq=*/1);
  ASSERT_TRUE(applied.has_value());
  EXPECT_TRUE(*applied);
  const auto reply = client_.locate(1001);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, core::LocateStatus::kFound);
  EXPECT_EQ(reply->node, 7u);
  EXPECT_EQ(reply->seq, 1u);
  stop_pump();
  EXPECT_EQ(service_->counters().updates_applied, 1u);
  EXPECT_EQ(service_->counters().locates_found, 1u);
}

TEST_F(LocateServiceLoop, LocateMissReportsUnknown) {
  const auto reply = client_.locate(999999);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, core::LocateStatus::kUnknown);
  stop_pump();
  EXPECT_EQ(service_->counters().locates, 1u);
  EXPECT_EQ(service_->counters().locates_found, 0u);
}

TEST_F(LocateServiceLoop, StaleUpdateIsAckedUnapplied) {
  const auto first = client_.update(55, 1, 5);
  ASSERT_TRUE(first.has_value() && *first);
  const auto stale = client_.update(55, 2, 4);
  ASSERT_TRUE(stale.has_value());
  EXPECT_FALSE(*stale) << "stale seq must report unapplied";
  const auto reply = client_.locate(55);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->node, 1u);
  stop_pump();
  EXPECT_EQ(service_->counters().updates, 2u);
  EXPECT_EQ(service_->counters().updates_applied, 1u);
}

TEST_F(LocateServiceLoop, DeregisterThenLocateMisses) {
  const auto applied = client_.update(88, 3, 1);
  ASSERT_TRUE(applied.has_value() && *applied);
  ASSERT_TRUE(client_.send_deregister(88, 2));
  ASSERT_TRUE(client_.ping());  // fence: deregister precedes ping in order
  const auto reply = client_.locate(88);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, core::LocateStatus::kUnknown);
  stop_pump();
  EXPECT_EQ(service_->counters().deregisters, 1u);
}

TEST_F(LocateServiceLoop, OneWayUpdatesWithPingFence) {
  std::unordered_map<std::uint64_t, NodeId> truth;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const std::uint64_t id = util::mix64(i);
    const NodeId node = static_cast<NodeId>(i % 31 + 1);
    ASSERT_TRUE(client_.send_update(id, node, 1));
    truth[id] = node;
  }
  ASSERT_TRUE(client_.ping());
  for (const auto& [id, node] : truth) {
    const auto reply = client_.locate(id);
    ASSERT_TRUE(reply.has_value()) << id;
    ASSERT_EQ(reply->status, core::LocateStatus::kFound) << id;
    EXPECT_EQ(reply->node, node);
  }
  stop_pump();
  EXPECT_EQ(service_->counters().updates_applied, 200u);
  EXPECT_EQ(service_->directory().size(), 200u);
}

TEST_F(LocateServiceLoop, PipelinedLocatesMatchGroundTruth) {
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint64_t id = util::mix64(1000 + i);
    ASSERT_TRUE(client_.send_update(id, static_cast<NodeId>(i + 1), 1));
    ids.push_back(id);
  }
  ASSERT_TRUE(client_.ping());
  for (std::uint64_t i = 0; i < ids.size(); ++i) {
    client_.send_locate(ids[i], /*correlation=*/i + 1);
  }
  std::unordered_map<std::uint64_t, core::LocateReply> replies;
  const auto batch = client_.drain(ids.size(), /*timeout_ms=*/5000);
  for (const auto& entry : batch) replies[entry.correlation] = entry.reply;
  ASSERT_EQ(replies.size(), ids.size());
  for (std::uint64_t i = 0; i < ids.size(); ++i) {
    const auto& reply = replies.at(i + 1);
    EXPECT_EQ(reply.status, core::LocateStatus::kFound);
    EXPECT_EQ(reply.node, i + 1);
  }
}

TEST_F(LocateServiceLoop, MalformedPayloadGetsErrorNotCrash) {
  // A kLocate frame with an empty payload is invalid: the service must
  // answer kError and keep serving the well-behaved client.
  bool got_error = false;
  SocketTransport probe;
  std::string error;
  const auto peer = probe.connect(address_, &error);
  ASSERT_NE(peer, SocketTransport::kInvalidPeer) << error;
  probe.on_frame([&](SocketTransport::PeerId, const FrameView& frame) {
    if (frame.type == FrameType::kError) got_error = true;
  });
  probe.send(peer, FrameType::kLocate, 1, nullptr);
  probe.flush(peer);
  for (int i = 0; i < 500 && !got_error; ++i) {
    probe.poll_once(10);
  }
  EXPECT_TRUE(got_error);
  // The original client still works.
  EXPECT_TRUE(client_.ping());
  stop_pump();
  EXPECT_EQ(service_->counters().protocol_errors, 1u);
}

}  // namespace
}  // namespace agentloc::net
