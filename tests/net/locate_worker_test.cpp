#include "net/locate_server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace agentloc::net {
namespace {

#define SKIP_WITHOUT_SOCKETS()                       \
  if (!SocketTransport::sockets_available()) {       \
    GTEST_SKIP() << "sandbox cannot create sockets"; \
  }

std::string unique_socket_path(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/agentloc_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

SocketAddress unix_address(const std::string& path) {
  SocketAddress address;
  std::string error;
  EXPECT_TRUE(SocketAddress::parse("unix:" + path, address, &error)) << error;
  return address;
}

/// A fresh TCP base port per test, spaced so worker k (port + k) never
/// collides with another test's base.
std::uint16_t next_tcp_port() {
  static std::atomic<int> counter{0};
  const int base = 21000 + (::getpid() % 997) * 16;
  return static_cast<std::uint16_t>(base + counter.fetch_add(1) * 16);
}

TEST(WorkerAddress, DerivesPerWorkerListenAddresses) {
  const SocketAddress uds = unix_address("/tmp/agl.sock");
  EXPECT_EQ(LocateServer::worker_address(uds, 0).to_string(),
            "unix:/tmp/agl.sock");
  EXPECT_EQ(LocateServer::worker_address(uds, 2).to_string(),
            "unix:/tmp/agl.sock.w2");

  SocketAddress tcp;
  std::string error;
  ASSERT_TRUE(SocketAddress::parse("tcp:127.0.0.1:7421", tcp, &error));
  EXPECT_EQ(LocateServer::worker_address(tcp, 0).port, 7421);
  EXPECT_EQ(LocateServer::worker_address(tcp, 3).port, 7424);
}

TEST(WorkerConfig, ClampsWorkersToPartitions) {
  LocateServer::Config config;
  config.workers = 16;
  config.partitions = 4;
  LocateServer server(config);
  EXPECT_EQ(server.worker_count(), 4u);
}

TEST(WorkerPartitionMap, EncodeDecodeRoundTrips) {
  PartitionMap map;
  map.workers = 3;
  map.partitions = 5;
  map.tree_version = 42;
  map.addresses = {"unix:/tmp/a.sock", "unix:/tmp/a.sock.w1",
                   "unix:/tmp/a.sock.w2"};
  map.owner = {0, 1, 2, 0, 1};

  util::ByteWriter writer;
  map.encode(writer);
  const std::vector<std::uint8_t> bytes = std::move(writer).take();
  util::ByteReader reader(bytes.data(), bytes.size());
  const PartitionMap decoded = PartitionMap::decode(reader);
  EXPECT_EQ(decoded.workers, 3u);
  EXPECT_EQ(decoded.partitions, 5u);
  EXPECT_EQ(decoded.tree_version, 42u);
  EXPECT_EQ(decoded.addresses, map.addresses);
  EXPECT_EQ(decoded.owner, map.owner);
}

TEST(WorkerPartitionMap, DecodeRejectsOutOfRangeOwner) {
  PartitionMap map;
  map.workers = 2;
  map.partitions = 2;
  map.addresses = {"", "unix:/tmp/x.w1"};
  map.owner = {0, 1};
  util::ByteWriter writer;
  map.encode(writer);
  std::vector<std::uint8_t> bytes = std::move(writer).take();
  bytes.back() = 7;  // owner of the last leaf: worker 7 of 2
  util::ByteReader reader(bytes.data(), bytes.size());
  EXPECT_THROW(PartitionMap::decode(reader), std::runtime_error);
}

/// Spin up an in-process LocateServer and speak to it from the test thread.
struct WorkerCluster {
  LocateServer server;
  SocketAddress base;

  explicit WorkerCluster(std::size_t workers, std::size_t partitions,
                         bool tcp = false,
                         EventLoop::Backend backend = EventLoop::Backend::kAuto)
      : server([&] {
          LocateServer::Config config;
          config.workers = workers;
          config.partitions = partitions;
          config.backend = backend;
          config.poll_timeout_ms = 5;
          return config;
        }()) {
    std::string error;
    if (tcp) {
      SocketAddress::parse(
          "tcp:127.0.0.1:" + std::to_string(next_tcp_port()), base, &error);
    } else {
      base = unix_address(unique_socket_path("wk"));
    }
    started = server.start(base, &error);
    EXPECT_TRUE(started) << error;
  }

  bool started = false;
};

/// Register `agents` agents, locate each `rounds` times pipelined, verify
/// every reply. Returns false on any mismatch.
bool run_verified_load(LocateClient& client, std::uint64_t agents,
                       std::uint64_t rounds) {
  std::unordered_map<std::uint64_t, std::uint32_t> truth;
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 1; i <= agents; ++i) {
    const std::uint64_t id = util::mix64(i);
    const auto node = static_cast<std::uint32_t>(i % 97 + 1);
    if (!client.send_update(id, node, 1)) return false;
    truth[id] = node;
    ids.push_back(id);
  }
  client.flush();
  if (!client.ping()) return false;  // fence: updates applied on all shards

  util::Rng rng(7);
  std::unordered_map<std::uint64_t, std::uint64_t> in_flight;
  std::uint64_t correlation = 1000;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    in_flight.clear();
    for (std::uint64_t i = 0; i < agents; ++i) {
      const std::uint64_t id = ids[rng.next_below(ids.size())];
      in_flight[++correlation] = id;
      client.send_locate(id, correlation);
    }
    const auto replies = client.drain(in_flight.size(), 10000);
    if (replies.size() != in_flight.size()) return false;
    for (const auto& item : replies) {
      const auto expect = in_flight.find(item.correlation);
      if (expect == in_flight.end()) return false;
      if (item.reply.status != core::LocateStatus::kFound) return false;
      if (item.reply.node != truth[expect->second]) return false;
    }
  }
  return true;
}

TEST(WorkerCluster_, RoutedClientBalancesAcrossWorkers) {
  SKIP_WITHOUT_SOCKETS();
  WorkerCluster cluster(4, 8);
  ASSERT_TRUE(cluster.started);

  LocateClient client;
  std::string error;
  ASSERT_TRUE(client.connect_cluster(cluster.base, &error)) << error;
  EXPECT_EQ(client.worker_count(), 4u);
  ASSERT_NE(client.partition_map(), nullptr);
  EXPECT_EQ(client.partition_map()->workers, 4u);
  EXPECT_EQ(client.partition_map()->partitions, 8u);

  EXPECT_TRUE(run_verified_load(client, 500, 4));

  // Uniform ids must spread within 2× min..max across workers — the
  // acceptance bound for round-robin leaf ownership under mix64 ids.
  const auto& ops = client.per_worker_ops();
  ASSERT_EQ(ops.size(), 4u);
  std::uint64_t lo = ops[0], hi = ops[0];
  for (const std::uint64_t count : ops) {
    lo = std::min(lo, count);
    hi = std::max(hi, count);
  }
  EXPECT_GT(lo, 0u);
  EXPECT_LE(hi, 2 * lo) << "per-worker ops unbalanced";

  cluster.server.stop();
  // Every worker saw real traffic on its own transport.
  std::uint64_t workers_with_traffic = 0;
  for (const auto& stats : cluster.server.stats()) {
    if (stats.counters.locates > 0) ++workers_with_traffic;
  }
  EXPECT_EQ(workers_with_traffic, 4u);
}

TEST(WorkerCluster_, LegacySingleConnectionClientStaysConsistent) {
  SKIP_WITHOUT_SOCKETS();
  WorkerCluster cluster(4, 8);
  ASSERT_TRUE(cluster.started);

  // A plain connect() talks only to worker 0 and never learns the map —
  // correctness must not depend on routing because each worker holds a
  // full directory.
  LocateClient client;
  std::string error;
  ASSERT_TRUE(client.connect(cluster.base, &error)) << error;
  EXPECT_EQ(client.worker_count(), 1u);
  EXPECT_EQ(client.partition_map(), nullptr);

  ASSERT_TRUE(client.update(42, 7, 1).value_or(false));
  const auto reply = client.locate(42);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, core::LocateStatus::kFound);
  EXPECT_EQ(reply->node, 7u);
}

TEST(WorkerCluster_, SingleWorkerClusterDegradesToOneConnection) {
  SKIP_WITHOUT_SOCKETS();
  WorkerCluster cluster(1, 8);
  ASSERT_TRUE(cluster.started);

  LocateClient client;
  std::string error;
  ASSERT_TRUE(client.connect_cluster(cluster.base, &error)) << error;
  EXPECT_EQ(client.worker_count(), 1u);
  ASSERT_NE(client.partition_map(), nullptr);
  EXPECT_EQ(client.partition_map()->workers, 1u);
  EXPECT_TRUE(run_verified_load(client, 200, 2));
}

TEST(WorkerCluster_, TcpClusterRoundTrips) {
  SKIP_WITHOUT_SOCKETS();
  WorkerCluster cluster(2, 4, /*tcp=*/true);
  if (!cluster.started) GTEST_SKIP() << "tcp bind unavailable";

  LocateClient client;
  std::string error;
  ASSERT_TRUE(client.connect_cluster(cluster.base, &error)) << error;
  EXPECT_EQ(client.worker_count(), 2u);
  EXPECT_TRUE(run_verified_load(client, 300, 2));
}

TEST(WorkerCluster_, PollAndEpollBackendsAgree) {
  SKIP_WITHOUT_SOCKETS();
  for (const EventLoop::Backend backend :
       {EventLoop::Backend::kPoll, EventLoop::Backend::kEpoll}) {
    if (backend == EventLoop::Backend::kEpoll &&
        !EventLoop::epoll_supported()) {
      continue;
    }
    WorkerCluster cluster(2, 4, /*tcp=*/false, backend);
    ASSERT_TRUE(cluster.started);
    LocateClient client;
    std::string error;
    ASSERT_TRUE(client.connect_cluster(cluster.base, &error)) << error;
    EXPECT_TRUE(run_verified_load(client, 200, 2));
  }
}

TEST(WorkerCluster_, DisconnectMidBatchFailsFastAndReturnsBuffers) {
  SKIP_WITHOUT_SOCKETS();
  auto cluster = std::make_unique<WorkerCluster>(2, 4);
  ASSERT_TRUE(cluster->started);

  LocateClient client;
  std::string error;
  ASSERT_TRUE(client.connect_cluster(cluster->base, &error)) << error;
  const std::size_t connections = client.worker_count();
  ASSERT_TRUE(run_verified_load(client, 100, 1));

  // Pipeline a batch, then kill the server before draining: drain must
  // return promptly (the disconnect breaks its wait), the client must go
  // sticky-unusable, and every pooled buffer must come back.
  for (std::uint64_t i = 0; i < 256; ++i) {
    client.send_locate(util::mix64(i + 1), 50000 + i);
  }
  cluster->server.stop();
  cluster.reset();  // listeners closed, connections dead

  const auto replies = client.drain(256 + 16, /*timeout_ms=*/10000);
  EXPECT_LE(replies.size(), 256u);  // never more than was sent
  EXPECT_FALSE(client.connected());
  EXPECT_FALSE(client.last_error().empty());

  // Sticky: every further op fails fast instead of hanging.
  EXPECT_FALSE(client.ping(100));
  EXPECT_EQ(client.locate(1, 100), std::nullopt);
  EXPECT_EQ(client.update(1, 2, 3, 100), std::nullopt);

  // Pool accounting: each connection slot's decoder holds exactly one
  // pooled buffer (drop_peer released the send queue, the open batch, and
  // the dead decoder's buffer). Anything above that is a leak.
  const util::BufferPool::Stats& pool = client.transport().pool().stats();
  EXPECT_EQ(pool.acquires - pool.releases, connections);
}

}  // namespace
}  // namespace agentloc::net
