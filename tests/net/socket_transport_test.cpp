#include "net/socket_transport.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

namespace agentloc::net {
namespace {

#define SKIP_WITHOUT_SOCKETS()                                  \
  if (!SocketTransport::sockets_available()) {                  \
    GTEST_SKIP() << "sandbox cannot create sockets";            \
  }

TEST(SocketAddress, ParsesUnixAndTcp) {
  SocketAddress address;
  std::string error;
  ASSERT_TRUE(SocketAddress::parse("unix:/tmp/x.sock", address, &error));
  EXPECT_EQ(address.kind, SocketAddress::Kind::kUnix);
  EXPECT_EQ(address.path, "/tmp/x.sock");
  EXPECT_EQ(address.to_string(), "unix:/tmp/x.sock");

  ASSERT_TRUE(SocketAddress::parse("tcp:127.0.0.1:7421", address, &error));
  EXPECT_EQ(address.kind, SocketAddress::Kind::kTcp);
  EXPECT_EQ(address.host, "127.0.0.1");
  EXPECT_EQ(address.port, 7421);
  EXPECT_EQ(address.to_string(), "tcp:127.0.0.1:7421");
}

TEST(SocketAddress, RejectsMalformedInput) {
  SocketAddress address;
  std::string error;
  for (const char* bad :
       {"", "udp:1.2.3.4:5", "unix:", "tcp:127.0.0.1", "tcp::99",
        "tcp:127.0.0.1:", "tcp:127.0.0.1:0", "tcp:127.0.0.1:70000",
        "tcp:127.0.0.1:12ab", "tcp:nothost:80"}) {
    error.clear();
    EXPECT_FALSE(SocketAddress::parse(bad, address, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

struct Pair {
  SocketTransport a;
  SocketTransport b;
  SocketTransport::PeerId a_peer = SocketTransport::kInvalidPeer;
  SocketTransport::PeerId b_peer = SocketTransport::kInvalidPeer;

  explicit Pair(SocketTransport::Config config = SocketTransport::Config{})
      : a(config), b(config) {
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0) {
      a_peer = a.adopt(fds[0]);
      b_peer = b.adopt(fds[1]);
    }
  }
};

TEST(SocketTransport, FramesRoundTripOverSocketpair) {
  SKIP_WITHOUT_SOCKETS();
  Pair pair;
  std::vector<std::uint64_t> got;
  pair.b.on_frame([&](SocketTransport::PeerId, const FrameView& frame) {
    EXPECT_EQ(frame.type, FrameType::kUpdate);
    auto reader = frame.payload_reader();
    got.push_back(reader.read_varint());
  });
  for (std::uint64_t i = 0; i < 10; ++i) {
    pair.a.send(pair.a_peer, FrameType::kUpdate, i,
                [&](util::ByteWriter& w) { w.write_varint(100 + i); });
  }
  pair.a.flush(pair.a_peer);
  while (got.size() < 10 && pair.b.poll_once(1000) > 0) {
  }
  ASSERT_EQ(got.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(got[i], 100 + i);
  EXPECT_EQ(pair.a.stats().frames_sent, 10u);
  EXPECT_EQ(pair.b.stats().frames_received, 10u);
}

TEST(SocketTransport, CoalescingPacksBurstIntoOneSyscall) {
  SKIP_WITHOUT_SOCKETS();
  Pair pair;  // default config: coalesce = true
  std::size_t received = 0;
  pair.b.on_frame(
      [&](SocketTransport::PeerId, const FrameView&) { ++received; });
  for (int i = 0; i < 8; ++i) {
    pair.a.send(pair.a_peer, FrameType::kPing, 0, nullptr);
  }
  pair.a.flush(pair.a_peer);
  EXPECT_EQ(pair.a.stats().flush_syscalls, 1u)
      << "8 frames coalesced into one buffer must leave in one writev";
  EXPECT_EQ(pair.a.stats().batches_sealed, 1u);
  while (received < 8 && pair.b.poll_once(1000) > 0) {
  }
  EXPECT_EQ(received, 8u);
}

TEST(SocketTransport, UncoalescedModeWritesOneSyscallPerFrame) {
  SKIP_WITHOUT_SOCKETS();
  SocketTransport::Config config;
  config.coalesce = false;
  Pair pair(config);
  std::size_t received = 0;
  pair.b.on_frame(
      [&](SocketTransport::PeerId, const FrameView&) { ++received; });
  for (int i = 0; i < 8; ++i) {
    pair.a.send(pair.a_peer, FrameType::kPing, 0, nullptr);
  }
  pair.a.flush(pair.a_peer);
  EXPECT_EQ(pair.a.stats().flush_syscalls, 8u);
  while (received < 8 && pair.b.poll_once(1000) > 0) {
  }
  EXPECT_EQ(received, 8u);
}

TEST(SocketTransport, LargeBatchSurvivesPartialWrites) {
  SKIP_WITHOUT_SOCKETS();
  // Push far more than the kernel socket buffer in one flush: the transport
  // must queue the remainder and drain it via POLLOUT turns, byte-perfect.
  Pair pair;
  constexpr std::size_t kFrames = 2000;
  constexpr std::size_t kPayload = 4096;
  std::size_t received = 0;
  std::size_t bad = 0;
  pair.b.on_frame([&](SocketTransport::PeerId, const FrameView& frame) {
    if (frame.payload_size != kPayload ||
        frame.payload[0] != static_cast<std::uint8_t>(frame.correlation)) {
      ++bad;
    }
    ++received;
  });
  std::vector<std::uint8_t> payload(kPayload);
  for (std::size_t i = 0; i < kFrames; ++i) {
    payload.assign(kPayload, static_cast<std::uint8_t>(i));
    pair.a.send(pair.a_peer, FrameType::kUpdate, i,
                [&](util::ByteWriter& w) {
                  w.write_bytes(payload.data(), payload.size());
                });
  }
  pair.a.flush(pair.a_peer);
  // Interleave sender drain and receiver reads until everything lands.
  int idle = 0;
  while (received < kFrames && idle < 100) {
    const bool sender_pending = pair.a.pending_bytes(pair.a_peer) > 0;
    if (sender_pending) pair.a.poll_once(10);
    const int got = pair.b.poll_once(10);
    idle = (got > 0 || sender_pending) ? 0 : idle + 1;
  }
  EXPECT_EQ(received, kFrames);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(pair.a.pending_bytes(pair.a_peer), 0u);
  EXPECT_GT(pair.a.stats().flush_syscalls, 1u);
}

TEST(SocketTransport, GarbageInputDropsPeerWithDecodeError) {
  SKIP_WITHOUT_SOCKETS();
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  SocketTransport receiver;
  const auto peer = receiver.adopt(fds[1]);
  bool disconnected = false;
  receiver.on_disconnect(
      [&](SocketTransport::PeerId id) { disconnected = (id == peer); });

  const char garbage[] = "this is not a frame stream";
  ASSERT_GT(::write(fds[0], garbage, sizeof(garbage)), 0);
  while (receiver.peer_open(peer) && receiver.poll_once(1000) > 0) {
  }
  EXPECT_FALSE(receiver.peer_open(peer));
  EXPECT_TRUE(disconnected);
  EXPECT_EQ(receiver.stats().decode_errors, 1u);
  ::close(fds[0]);
}

TEST(SocketTransport, PeerEofCountsAsDisconnect) {
  SKIP_WITHOUT_SOCKETS();
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  SocketTransport receiver;
  const auto peer = receiver.adopt(fds[1]);
  ::close(fds[0]);
  while (receiver.peer_open(peer) && receiver.poll_once(1000) > 0) {
  }
  EXPECT_FALSE(receiver.peer_open(peer));
  EXPECT_EQ(receiver.stats().disconnects, 1u);
  EXPECT_EQ(receiver.peer_count(), 0u);
}

TEST(SocketTransport, SendToClosedPeerFailsCleanly) {
  SKIP_WITHOUT_SOCKETS();
  Pair pair;
  pair.a.close_peer(pair.a_peer);
  EXPECT_FALSE(pair.a.peer_open(pair.a_peer));
  EXPECT_FALSE(pair.a.send(pair.a_peer, FrameType::kPing, 0, nullptr));
  EXPECT_FALSE(pair.a.send(SocketTransport::kInvalidPeer, FrameType::kPing, 0,
                           nullptr));
}

TEST(SocketTransport, ListenConnectOverUnixSocket) {
  SKIP_WITHOUT_SOCKETS();
  const std::string path =
      "/tmp/agentloc-test-" + std::to_string(::getpid()) + ".sock";
  SocketAddress address;
  address.kind = SocketAddress::Kind::kUnix;
  address.path = path;

  SocketTransport server;
  std::string error;
  ASSERT_TRUE(server.listen(address, &error)) << error;

  bool accepted = false;
  std::uint64_t echoed = 0;
  server.on_accept([&](SocketTransport::PeerId) { accepted = true; });
  server.on_frame([&](SocketTransport::PeerId peer, const FrameView& frame) {
    auto reader = frame.payload_reader();
    echoed = reader.read_varint();
    server.send(peer, FrameType::kPong, frame.correlation,
                [&](util::ByteWriter& w) { w.write_varint(echoed + 1); });
  });

  SocketTransport client;
  const auto peer = client.connect(address, &error);
  ASSERT_NE(peer, SocketTransport::kInvalidPeer) << error;
  std::uint64_t answer = 0;
  client.on_frame([&](SocketTransport::PeerId, const FrameView& frame) {
    auto reader = frame.payload_reader();
    answer = reader.read_varint();
  });
  client.send(peer, FrameType::kPing, 1,
              [](util::ByteWriter& w) { w.write_varint(41); });
  client.flush(peer);
  for (int i = 0; i < 100 && answer == 0; ++i) {
    server.poll_once(50);
    client.poll_once(50);
  }
  EXPECT_TRUE(accepted);
  EXPECT_EQ(echoed, 41u);
  EXPECT_EQ(answer, 42u);
  ::unlink(path.c_str());
}

TEST(SocketTransport, PeerSlotReuseAfterDisconnect) {
  SKIP_WITHOUT_SOCKETS();
  SocketTransport transport;
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const auto first = transport.adopt(fds[1]);
  ::close(fds[0]);
  while (transport.peer_open(first) && transport.poll_once(1000) > 0) {
  }
  ASSERT_FALSE(transport.peer_open(first));

  int fds2[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds2), 0);
  const auto second = transport.adopt(fds2[1]);
  EXPECT_EQ(second, first) << "closed slots are recycled";
  EXPECT_EQ(transport.peer_count(), 1u);
  ::close(fds2[0]);
}

}  // namespace
}  // namespace agentloc::net
