#include "net/event_loop.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <vector>

namespace agentloc::net {
namespace {

/// Both backends must satisfy the same contract (level-triggered readiness
/// over an interest set), so every test here runs against each one. Pipes
/// are used instead of sockets so the suite runs even in sandboxes without
/// socket support.
class EventLoopBackends
    : public ::testing::TestWithParam<EventLoop::Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == EventLoop::Backend::kEpoll &&
        !EventLoop::epoll_supported()) {
      GTEST_SKIP() << "kernel has no epoll";
    }
    loop_ = EventLoop::create(GetParam());
    ASSERT_NE(loop_, nullptr);
    ASSERT_EQ(::pipe(fds_), 0);
  }

  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }

  /// The events `wait` reported for `fd` (empty if it was not ready).
  std::vector<EventLoop::Event> wait_events(int timeout_ms) {
    std::vector<EventLoop::Event> out;
    loop_->wait(timeout_ms, out);
    return out;
  }

  std::unique_ptr<EventLoop> loop_;
  int fds_[2] = {-1, -1};  ///< pipe: [0] read end, [1] write end
};

TEST_P(EventLoopBackends, NameMatchesRequestedBackend) {
  const char* expected =
      GetParam() == EventLoop::Backend::kEpoll ? "epoll" : "poll";
  EXPECT_STREQ(loop_->name(), expected);
}

TEST_P(EventLoopBackends, TimeoutWithNothingReadyReturnsZero) {
  ASSERT_TRUE(loop_->add(fds_[0], /*want_read=*/true, /*want_write=*/false));
  EXPECT_EQ(loop_->watched(), 1u);
  std::vector<EventLoop::Event> events;
  EXPECT_EQ(loop_->wait(0, events), 0);
  EXPECT_TRUE(events.empty());
}

TEST_P(EventLoopBackends, ReportsReadableWhenDataArrives) {
  ASSERT_TRUE(loop_->add(fds_[0], true, false));
  ASSERT_EQ(::write(fds_[1], "x", 1), 1);
  const auto events = wait_events(1000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, fds_[0]);
  EXPECT_TRUE(events[0].readable);
  EXPECT_FALSE(events[0].writable);
}

TEST_P(EventLoopBackends, LevelTriggeredReadinessReReports) {
  ASSERT_TRUE(loop_->add(fds_[0], true, false));
  ASSERT_EQ(::write(fds_[1], "xy", 2), 2);
  // Not draining the pipe must re-report readable on every wait — the
  // transport's read_ready relies on this to resume partial drains.
  for (int turn = 0; turn < 3; ++turn) {
    const auto events = wait_events(1000);
    ASSERT_EQ(events.size(), 1u) << "turn " << turn;
    EXPECT_TRUE(events[0].readable);
  }
  char buffer[4];
  ASSERT_EQ(::read(fds_[0], buffer, sizeof buffer), 2);
  std::vector<EventLoop::Event> events;
  EXPECT_EQ(loop_->wait(0, events), 0);  // drained: no longer ready
}

TEST_P(EventLoopBackends, WriteInterestTogglesViaModify) {
  ASSERT_TRUE(loop_->add(fds_[1], false, true));
  auto events = wait_events(1000);
  ASSERT_EQ(events.size(), 1u);  // empty pipe: write end is writable
  EXPECT_TRUE(events[0].writable);

  ASSERT_TRUE(loop_->modify(fds_[1], false, false));
  EXPECT_EQ(loop_->wait(0, events), 0);

  ASSERT_TRUE(loop_->modify(fds_[1], false, true));
  events = wait_events(1000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].writable);
}

TEST_P(EventLoopBackends, RemoveStopsReporting) {
  ASSERT_TRUE(loop_->add(fds_[0], true, false));
  ASSERT_EQ(::write(fds_[1], "x", 1), 1);
  ASSERT_EQ(wait_events(1000).size(), 1u);
  loop_->remove(fds_[0]);
  EXPECT_EQ(loop_->watched(), 0u);
  std::vector<EventLoop::Event> events;
  EXPECT_EQ(loop_->wait(0, events), 0);
  loop_->remove(fds_[0]);  // double-remove is a no-op
}

TEST_P(EventLoopBackends, ClosedWriterReportsHangupOrReadable) {
  ASSERT_TRUE(loop_->add(fds_[0], true, false));
  ::close(fds_[1]);
  fds_[1] = -1;
  const auto events = wait_events(1000);
  ASSERT_EQ(events.size(), 1u);
  // Backends may flag POLLHUP, readability (EOF), or both; the transport
  // treats either as "read now and observe EOF".
  EXPECT_TRUE(events[0].hangup || events[0].readable);
}

TEST_P(EventLoopBackends, WatchesManyFdsIndependently) {
  int second[2] = {-1, -1};
  ASSERT_EQ(::pipe(second), 0);
  ASSERT_TRUE(loop_->add(fds_[0], true, false));
  ASSERT_TRUE(loop_->add(second[0], true, false));
  EXPECT_EQ(loop_->watched(), 2u);
  ASSERT_EQ(::write(second[1], "x", 1), 1);
  const auto events = wait_events(1000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, second[0]);
  ::close(second[0]);
  ::close(second[1]);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, EventLoopBackends,
    ::testing::Values(EventLoop::Backend::kPoll, EventLoop::Backend::kEpoll),
    [](const ::testing::TestParamInfo<EventLoop::Backend>& info) {
      return info.param == EventLoop::Backend::kEpoll ? "epoll" : "poll";
    });

TEST(EventLoopCreate, AutoPicksASupportedBackend) {
  auto loop = EventLoop::create(EventLoop::Backend::kAuto);
  ASSERT_NE(loop, nullptr);
  if (EventLoop::epoll_supported()) {
    EXPECT_STREQ(loop->name(), "epoll");
  } else {
    EXPECT_STREQ(loop->name(), "poll");
  }
}

TEST(EventLoopCreate, EnvironmentForcesBackend) {
  ASSERT_EQ(::setenv("AGENTLOC_EVENT_BACKEND", "poll", 1), 0);
  EXPECT_EQ(EventLoop::env_backend(), EventLoop::Backend::kPoll);
  auto loop = EventLoop::create(EventLoop::Backend::kAuto);
  EXPECT_STREQ(loop->name(), "poll");
  ASSERT_EQ(::setenv("AGENTLOC_EVENT_BACKEND", "nonsense", 1), 0);
  EXPECT_EQ(EventLoop::env_backend(), EventLoop::Backend::kAuto);
  ASSERT_EQ(::unsetenv("AGENTLOC_EVENT_BACKEND"), 0);
  EXPECT_EQ(EventLoop::env_backend(), EventLoop::Backend::kAuto);
}

TEST(EventLoopCreate, EpollRequestFallsBackWhereUnsupported) {
  auto loop = EventLoop::create(EventLoop::Backend::kEpoll);
  ASSERT_NE(loop, nullptr);
  if (!EventLoop::epoll_supported()) EXPECT_STREQ(loop->name(), "poll");
}

}  // namespace
}  // namespace agentloc::net
