// The net::Transport seam: the platform's message plane runs behind an
// interface whose default backend (SimTransport) must be bit-identical to
// calling the Network directly, and whose FaultPlan surface must keep its
// semantics when reached through the seam — including with a decorator
// interposed (the hook socket-backend instrumentation binds to).

#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/hash_scheme.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "platform/agent_system.hpp"
#include "sim/simulator.hpp"
#include "workload/querier.hpp"
#include "workload/tagent.hpp"

namespace agentloc::net {
namespace {

/// Decorator that counts every call crossing the seam.
class CountingTransport final : public ForwardingTransport {
 public:
  using ForwardingTransport::ForwardingTransport;

  TransmitPlan plan_transmission(NodeId from, NodeId to,
                                 std::size_t bytes) override {
    ++plans;
    return ForwardingTransport::plan_transmission(from, to, bytes);
  }

  bool send(NodeId from, NodeId to, std::size_t bytes,
            std::function<void()> deliver) override {
    ++sends;
    return ForwardingTransport::send(from, to, bytes, std::move(deliver));
  }

  void note_delivered(NodeId to) noexcept override {
    ++delivered;
    ForwardingTransport::note_delivered(to);
  }

  std::uint64_t plans = 0;
  std::uint64_t sends = 0;
  std::uint64_t delivered = 0;
};

TEST(TransportSeam, SimTransportForwardsEverything) {
  sim::Simulator simulator;
  Network network(simulator, 4, make_default_lan_model(), util::Rng(1));
  SimTransport transport(network);

  EXPECT_EQ(transport.node_count(), 4u);
  // faults() and stats() are the Network's own objects — the seam adds no
  // second copy that could drift.
  EXPECT_EQ(&transport.faults(), &network.faults());
  EXPECT_EQ(&transport.stats(), &network.stats());

  bool delivered = false;
  ASSERT_TRUE(transport.send(0, 1, 64, [&] { delivered = true; }));
  simulator.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(network.stats().messages_sent, 1u);
  EXPECT_EQ(network.stats().messages_delivered, 1u);
}

TEST(TransportSeam, AgentSystemDefaultsToSimBackend) {
  sim::Simulator simulator;
  Network network(simulator, 2, make_default_lan_model(), util::Rng(1));
  platform::AgentSystem system(simulator, network);
  // The default transport is a pure view over the same Network.
  EXPECT_EQ(&system.transport().faults(), &network.faults());
  EXPECT_EQ(&system.transport().stats(), &network.stats());
  EXPECT_EQ(system.transport().node_count(), network.node_count());
}

struct RunOutcome {
  std::uint64_t found = 0;
  std::uint64_t failed = 0;
  std::uint64_t events = 0;
  NetworkStats net;
  std::uint64_t decorator_plans = 0;
  std::uint64_t decorator_sends = 0;
};

/// A fixed-seed lossy workload (drop + duplicate faults configured through
/// the *seam*), optionally with a counting decorator interposed.
RunOutcome run_fixed_seed(bool with_decorator) {
  sim::Simulator simulator;
  Network network(simulator, 8, make_default_lan_model(), util::Rng(5));
  platform::AgentSystem::Config platform_config;
  platform_config.service_time = sim::SimTime::micros(500);
  platform::AgentSystem system(simulator, network, platform_config);

  CountingTransport decorator(system.transport());
  if (with_decorator) system.set_transport(decorator);

  // Faults configured through whatever the system's transport is: this is
  // the regression net for FaultPlan semantics across the seam.
  system.transport().faults().drop_probability = 0.05;
  system.transport().faults().duplicate_probability = 0.05;

  core::MechanismConfig mechanism;
  core::HashLocationScheme scheme(system, mechanism);

  util::Rng seeds(9);
  std::vector<platform::AgentId> targets;
  for (int i = 0; i < 12; ++i) {
    workload::TAgent::Config config;
    config.residence = sim::SimTime::millis(300);
    config.seed = seeds.next();
    auto& agent = system.create<workload::TAgent>(
        static_cast<NodeId>(i % 8), scheme, config);
    targets.push_back(agent.id());
  }
  simulator.run_until(sim::SimTime::seconds(8));

  workload::QuerierAgent::Config qconfig;
  qconfig.quota = 80;
  qconfig.seed = seeds.next();
  auto& querier = system.create<workload::QuerierAgent>(
      2, scheme, qconfig, targets, [&] { simulator.request_stop(); });
  simulator.run_until(sim::SimTime::seconds(120));

  RunOutcome outcome;
  outcome.found = querier.found();
  outcome.failed = querier.failed();
  outcome.events = simulator.executed();
  outcome.net = network.stats();
  outcome.decorator_plans = decorator.plans;
  outcome.decorator_sends = decorator.sends;
  return outcome;
}

TEST(TransportSeam, ForwardingDecoratorIsBitIdentical) {
  // The tentpole's bit-identity requirement, test-enforced: interposing a
  // pass-through backend between platform and simulated network changes
  // NOTHING — same events, same deliveries, same drops/duplicates, same
  // query outcomes, byte for byte — because SimTransport adds no RNG draws
  // and preserves call order exactly.
  const RunOutcome direct = run_fixed_seed(false);
  const RunOutcome decorated = run_fixed_seed(true);

  EXPECT_EQ(direct.events, decorated.events);
  EXPECT_EQ(direct.found, decorated.found);
  EXPECT_EQ(direct.failed, decorated.failed);
  EXPECT_EQ(direct.net.messages_sent, decorated.net.messages_sent);
  EXPECT_EQ(direct.net.messages_delivered, decorated.net.messages_delivered);
  EXPECT_EQ(direct.net.messages_dropped, decorated.net.messages_dropped);
  EXPECT_EQ(direct.net.messages_duplicated,
            decorated.net.messages_duplicated);
  EXPECT_EQ(direct.net.bytes_sent, decorated.net.bytes_sent);

  // The faults actually fired (this was a lossy run), and the decorated run
  // really went through the decorator.
  EXPECT_GT(direct.net.messages_dropped, 0u);
  EXPECT_GT(direct.net.messages_duplicated, 0u);
  EXPECT_EQ(direct.decorator_sends, 0u);
  EXPECT_GT(decorated.decorator_sends, 0u);
  EXPECT_GT(decorated.decorator_plans, 0u);
}

TEST(TransportSeam, PartitionSemanticsSurviveTheSeam) {
  // set_partitioned through the transport blocks sends exactly as it does
  // through the Network, and heals the same way.
  sim::Simulator simulator;
  Network network(simulator, 4, make_default_lan_model(), util::Rng(2));
  platform::AgentSystem system(simulator, network);

  system.transport().faults().set_partitioned(0, 1, true);
  bool delivered = false;
  EXPECT_FALSE(system.transport().send(0, 1, 32, [&] { delivered = true; }));
  simulator.run();
  EXPECT_FALSE(delivered);

  system.transport().faults().set_partitioned(0, 1, false);
  EXPECT_TRUE(system.transport().send(0, 1, 32, [&] { delivered = true; }));
  simulator.run();
  EXPECT_TRUE(delivered);
}

}  // namespace
}  // namespace agentloc::net
