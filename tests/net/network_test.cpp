#include "net/network.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace agentloc::net {
namespace {

Network make_fixed_network(sim::Simulator& sim, std::size_t nodes,
                           sim::SimTime latency = sim::SimTime::millis(1)) {
  return Network(sim, nodes, std::make_unique<FixedLatencyModel>(latency),
                 util::Rng(42));
}

TEST(Network, RejectsZeroNodes) {
  sim::Simulator sim;
  EXPECT_THROW(Network(sim, 0, std::make_unique<LanLatencyModel>(),
                       util::Rng(1)),
               std::invalid_argument);
}

TEST(Network, RejectsMissingModel) {
  sim::Simulator sim;
  EXPECT_THROW(Network(sim, 2, nullptr, util::Rng(1)), std::invalid_argument);
}

TEST(Network, DeliversAfterModelLatency) {
  sim::Simulator sim;
  Network network = make_fixed_network(sim, 3);
  sim::SimTime delivered_at = sim::SimTime::zero();
  network.send(0, 1, 100, [&] { delivered_at = sim.now(); });
  sim.run();
  EXPECT_EQ(delivered_at, sim::SimTime::millis(1));
}

TEST(Network, ValidatesNodeIds) {
  sim::Simulator sim;
  Network network = make_fixed_network(sim, 2);
  EXPECT_THROW(network.send(0, 5, 10, [] {}), std::out_of_range);
  EXPECT_THROW(network.send(5, 0, 10, [] {}), std::out_of_range);
}

TEST(Network, CountsStats) {
  sim::Simulator sim;
  Network network = make_fixed_network(sim, 2);
  network.send(0, 1, 100, [] {});
  network.send(1, 0, 50, [] {});
  sim.run();
  EXPECT_EQ(network.stats().messages_sent, 2u);
  EXPECT_EQ(network.stats().messages_delivered, 2u);
  EXPECT_EQ(network.stats().bytes_sent, 150u);
  EXPECT_EQ(network.per_node_delivered()[0], 1u);
  EXPECT_EQ(network.per_node_delivered()[1], 1u);
  network.reset_stats();
  EXPECT_EQ(network.stats().messages_sent, 0u);
}

TEST(Network, DropProbabilityOneKillsRemoteTraffic) {
  sim::Simulator sim;
  Network network = make_fixed_network(sim, 2);
  network.faults().drop_probability = 1.0;
  int delivered = 0;
  EXPECT_FALSE(network.send(0, 1, 10, [&] { ++delivered; }));
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(network.stats().messages_dropped, 1u);
}

TEST(Network, LoopbackNeverDropped) {
  sim::Simulator sim;
  Network network = make_fixed_network(sim, 2);
  network.faults().drop_probability = 1.0;
  int delivered = 0;
  EXPECT_TRUE(network.send(0, 0, 10, [&] { ++delivered; }));
  sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Network, DuplicationDeliversTwice) {
  sim::Simulator sim;
  Network network = make_fixed_network(sim, 2);
  network.faults().duplicate_probability = 1.0;
  int delivered = 0;
  network.send(0, 1, 10, [&] { ++delivered; });
  sim.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(network.stats().messages_duplicated, 1u);
}

TEST(Network, PartitionBlocksBothDirections) {
  sim::Simulator sim;
  Network network = make_fixed_network(sim, 3);
  network.faults().set_partitioned(0, 1, true);
  int delivered = 0;
  EXPECT_FALSE(network.send(0, 1, 10, [&] { ++delivered; }));
  EXPECT_FALSE(network.send(1, 0, 10, [&] { ++delivered; }));
  EXPECT_TRUE(network.send(0, 2, 10, [&] { ++delivered; }));
  sim.run();
  EXPECT_EQ(delivered, 1);

  network.faults().set_partitioned(1, 0, false);
  EXPECT_TRUE(network.send(0, 1, 10, [&] { ++delivered; }));
  sim.run();
  EXPECT_EQ(delivered, 2);
}

TEST(LanLatencyModel, ChargesPerByte) {
  util::Rng rng(1);
  LanLatencyModel::Config config;
  config.base = sim::SimTime::micros(100);
  config.per_byte_ns = 10.0;
  config.jitter = sim::SimTime::zero();
  LanLatencyModel model(config);
  EXPECT_EQ(model.latency(0, 1, 0, rng), sim::SimTime::micros(100));
  EXPECT_EQ(model.latency(0, 1, 1000, rng), sim::SimTime::micros(110));
}

TEST(LanLatencyModel, LoopbackIsCheap) {
  util::Rng rng(1);
  LanLatencyModel model;
  const auto local = model.latency(2, 2, 1 << 20, rng);
  const auto remote = model.latency(0, 1, 64, rng);
  EXPECT_LT(local, remote);
}

TEST(LanLatencyModel, JitterIsBounded) {
  util::Rng rng(7);
  LanLatencyModel::Config config;
  config.base = sim::SimTime::micros(100);
  config.per_byte_ns = 0.0;
  config.jitter = sim::SimTime::micros(50);
  LanLatencyModel model(config);
  for (int i = 0; i < 1000; ++i) {
    const auto value = model.latency(0, 1, 0, rng);
    EXPECT_GE(value, sim::SimTime::micros(100));
    EXPECT_LT(value, sim::SimTime::micros(150));
  }
}

TEST(UniformLatencyModel, StaysInRange) {
  util::Rng rng(9);
  UniformLatencyModel model(sim::SimTime::millis(1), sim::SimTime::millis(3));
  for (int i = 0; i < 1000; ++i) {
    const auto value = model.latency(0, 1, 0, rng);
    EXPECT_GE(value, sim::SimTime::millis(1));
    EXPECT_LE(value, sim::SimTime::millis(3));
  }
}

TEST(ClusterLatencyModel, WanHopOnlyBetweenClusters) {
  util::Rng rng(1);
  ClusterLatencyModel::Config config;
  config.cluster_size = 4;
  config.lan.jitter = sim::SimTime::zero();
  config.wan_jitter = sim::SimTime::zero();
  config.wan_hop = sim::SimTime::millis(8);
  ClusterLatencyModel model(config);

  EXPECT_TRUE(model.same_cluster(0, 3));
  EXPECT_FALSE(model.same_cluster(3, 4));

  const auto intra = model.latency(0, 3, 64, rng);
  const auto inter = model.latency(3, 4, 64, rng);
  EXPECT_EQ(inter - intra, sim::SimTime::millis(8));
  // Loopback stays cheap.
  EXPECT_LT(model.latency(5, 5, 64, rng), intra);
}

TEST(ClusterLatencyModel, WanJitterBounded) {
  util::Rng rng(2);
  ClusterLatencyModel::Config config;
  config.cluster_size = 2;
  config.lan.jitter = sim::SimTime::zero();
  config.wan_hop = sim::SimTime::millis(8);
  config.wan_jitter = sim::SimTime::millis(1);
  ClusterLatencyModel model(config);
  const auto base = model.latency(0, 1, 0, rng);  // intra, deterministic
  for (int i = 0; i < 200; ++i) {
    const auto value = model.latency(0, 2, 0, rng);
    EXPECT_GE(value, base + sim::SimTime::millis(8));
    EXPECT_LT(value, base + sim::SimTime::millis(9));
  }
}

TEST(Network, JitterCanReorderMessages) {
  sim::Simulator sim;
  Network network(sim, 2,
                  std::make_unique<UniformLatencyModel>(
                      sim::SimTime::millis(1), sim::SimTime::millis(10)),
                  util::Rng(3));
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    network.send(0, 1, 10, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 20u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

}  // namespace
}  // namespace agentloc::net
