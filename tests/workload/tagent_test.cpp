#include "workload/tagent.hpp"

#include <gtest/gtest.h>

#include "core/centralized_scheme.hpp"
#include "net/network.hpp"
#include "platform/agent_system.hpp"
#include "sim/simulator.hpp"

namespace agentloc::workload {
namespace {

class TAgentTest : public ::testing::Test {
 protected:
  TAgentTest()
      : network_(simulator_, 8,
                 std::make_unique<net::FixedLatencyModel>(
                     sim::SimTime::millis(1)),
                 util::Rng(3)),
        system_(simulator_, network_),
        scheme_(system_, core::MechanismConfig{}) {}

  TAgent& spawn(TAgent::Config config, net::NodeId node = 0) {
    return system_.create<TAgent>(node, scheme_, config);
  }

  sim::Simulator simulator_;
  net::Network network_;
  platform::AgentSystem system_;
  core::CentralizedLocationScheme scheme_;
};

TEST_F(TAgentTest, RegistersOnStart) {
  TAgent::Config config;
  config.mobile = false;
  TAgent& agent = spawn(config);
  simulator_.run_until(sim::SimTime::millis(100));
  EXPECT_TRUE(agent.registered());
  EXPECT_EQ(scheme_.tracker().entry_count(), 1u);
  EXPECT_EQ(agent.moves_completed(), 0u);
}

TEST_F(TAgentTest, ConstantResidenceMovesOnSchedule) {
  TAgent::Config config;
  config.residence = sim::SimTime::millis(100);
  config.exponential_residence = false;
  TAgent& agent = spawn(config);
  simulator_.run_until(sim::SimTime::millis(1050));
  // Moves at ~100, 200+, ... minus migration transfer time per hop.
  EXPECT_GE(agent.moves_completed(), 8u);
  EXPECT_LE(agent.moves_completed(), 10u);
}

TEST_F(TAgentTest, ExponentialResidenceIsSeedDeterministic) {
  TAgent::Config config;
  config.residence = sim::SimTime::millis(100);
  config.seed = 42;
  TAgent& a = spawn(config, 0);
  TAgent& b = spawn(config, 0);
  simulator_.run_until(sim::SimTime::seconds(5));
  // Same seed, same node sequence: identical move counts and positions.
  EXPECT_EQ(a.moves_completed(), b.moves_completed());
  EXPECT_EQ(a.node(), b.node());
}

TEST_F(TAgentTest, EachMoveReportsLocation) {
  TAgent::Config config;
  config.residence = sim::SimTime::millis(100);
  config.exponential_residence = false;
  TAgent& agent = spawn(config);
  simulator_.run_until(sim::SimTime::seconds(2));
  ASSERT_GT(agent.moves_completed(), 0u);
  EXPECT_EQ(scheme_.stats().updates, agent.moves_completed());
  // The tracker's view matches ground truth once the last update landed.
  simulator_.run_until(simulator_.now() + sim::SimTime::millis(20));
}

TEST_F(TAgentTest, ImmobileAgentStaysPut) {
  TAgent::Config config;
  config.mobile = false;
  TAgent& agent = spawn(config, 5);
  simulator_.run_until(sim::SimTime::seconds(3));
  EXPECT_EQ(agent.node(), 5u);
  EXPECT_EQ(agent.moves_completed(), 0u);
}

TEST_F(TAgentTest, SetMobileTogglesRoaming) {
  TAgent::Config config;
  config.mobile = false;
  config.residence = sim::SimTime::millis(100);
  config.exponential_residence = false;
  TAgent& agent = spawn(config);
  simulator_.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(agent.moves_completed(), 0u);
  agent.set_mobile(true);
  simulator_.run_until(sim::SimTime::seconds(2));
  const auto moved = agent.moves_completed();
  EXPECT_GT(moved, 0u);
  agent.set_mobile(false);
  simulator_.run_until(sim::SimTime::seconds(3));
  EXPECT_EQ(agent.moves_completed(), moved);
}

TEST_F(TAgentTest, SetResidenceChangesPace) {
  TAgent::Config config;
  config.residence = sim::SimTime::seconds(5);
  config.exponential_residence = false;
  TAgent& agent = spawn(config);
  simulator_.run_until(sim::SimTime::seconds(1));
  agent.set_residence(sim::SimTime::millis(100));
  // The already-armed 5s timer fires first; after that, the fast pace kicks
  // in.
  simulator_.run_until(sim::SimTime::seconds(8));
  EXPECT_GT(agent.moves_completed(), 10u);
}

TEST_F(TAgentTest, NodePoolRestrictsRoaming) {
  TAgent::Config config;
  config.residence = sim::SimTime::millis(50);
  config.node_pool = {2, 3, 4};
  config.seed = 9;
  TAgent& agent = spawn(config, 2);
  for (int i = 0; i < 100; ++i) {
    simulator_.run_until(simulator_.now() + sim::SimTime::millis(100));
    if (const auto node = system_.node_of(agent.id())) {
      EXPECT_TRUE(*node == 2 || *node == 3 || *node == 4) << *node;
    }
  }
  EXPECT_GT(agent.moves_completed(), 20u);
}

TEST_F(TAgentTest, DisposeDeregisters) {
  TAgent::Config config;
  config.mobile = false;
  TAgent& agent = spawn(config);
  simulator_.run_until(sim::SimTime::millis(100));
  ASSERT_EQ(scheme_.tracker().entry_count(), 1u);
  system_.dispose(agent.id());
  simulator_.run_until(simulator_.now() + sim::SimTime::millis(100));
  EXPECT_EQ(scheme_.tracker().entry_count(), 0u);
}

}  // namespace
}  // namespace agentloc::workload
