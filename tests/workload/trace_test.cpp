#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workload/experiment.hpp"

namespace agentloc::workload {
namespace {

QueryTrace make_trace(double issued_ms, double latency_ms, bool found) {
  QueryTrace trace;
  trace.issued_at = sim::SimTime::millis(issued_ms);
  trace.completed_at = sim::SimTime::millis(issued_ms + latency_ms);
  trace.target = 42;
  trace.found = found;
  trace.reported_node = found ? 3 : net::kNoNode;
  trace.attempts = 1;
  return trace;
}

TEST(TraceLog, LatencyComputedFromTimestamps) {
  const QueryTrace trace = make_trace(100.0, 7.5, true);
  EXPECT_DOUBLE_EQ(trace.latency_ms(), 7.5);
}

TEST(TraceLog, CsvHasHeaderAndRows) {
  TraceLog log;
  log.add(make_trace(10.0, 5.0, true));
  log.add(make_trace(20.0, 6.0, false));
  const std::string csv = log.to_csv();
  EXPECT_EQ(csv.find("t_issued_ms,"), 0u);
  EXPECT_NE(csv.find("10,15,5,42,1,3,1"), std::string::npos);
  EXPECT_NE(csv.find("20,26,6,42,0,-,1"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(TraceLog, WriteCsvCreatesFile) {
  TraceLog log;
  log.add(make_trace(1.0, 2.0, true));
  const std::string path = ::testing::TempDir() + "agentloc_trace_test.csv";
  log.write_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "t_issued_ms,t_completed_ms,latency_ms,target,found,node,attempts");
  std::remove(path.c_str());
}

TEST(TraceLog, WriteCsvFailsLoudly) {
  TraceLog log;
  EXPECT_THROW(log.write_csv("/nonexistent-dir/trace.csv"),
               std::runtime_error);
}

TEST(TraceLog, ExperimentRunnerWritesTraces) {
  ExperimentConfig config;
  config.scheme = "centralized";
  config.nodes = 6;
  config.tagents = 5;
  config.total_queries = 40;
  config.queriers = 2;
  config.warmup = sim::SimTime::seconds(5);
  config.trace_csv_path = ::testing::TempDir() + "agentloc_exp_trace.csv";
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.queries_found, 40u);

  std::ifstream in(config.trace_csv_path);
  ASSERT_TRUE(in.good());
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 41u);  // header + one row per query
  std::remove(config.trace_csv_path.c_str());
}

}  // namespace
}  // namespace agentloc::workload
