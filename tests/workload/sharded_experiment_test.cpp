// run_experiment_sharded: the paper-faithful platform stack sharded across
// the parallel LP engine (DESIGN.md §16). The headline property is the
// determinism contract: for a fixed config and seed, every thread count in
// {1, 2, 4, 8} must produce a bit-for-bit identical ExperimentResult —
// including the scheme, network, and platform counters, and the summed
// per-shard memory watermarks. Suite names carry "Parallel" so the tsan CI
// preset runs them under ThreadSanitizer.

#include "workload/sharded_experiment.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "workload/experiment.hpp"

namespace agentloc::workload {
namespace {

/// Exact equality over everything the determinism contract covers —
/// including the raw per-query latency samples, which makes the comparison
/// bitwise rather than statistical.
void expect_identical(const ExperimentResult& a, const ExperimentResult& b,
                      std::size_t threads) {
  EXPECT_EQ(a.location_ms.samples(), b.location_ms.samples())
      << "latency samples diverge at threads=" << threads;
  EXPECT_EQ(a.attempts.samples(), b.attempts.samples()) << threads;
  EXPECT_EQ(a.queries_found, b.queries_found) << threads;
  EXPECT_EQ(a.queries_failed, b.queries_failed) << threads;
  EXPECT_EQ(a.wrong_location, b.wrong_location) << threads;
  EXPECT_EQ(a.tagent_moves, b.tagent_moves) << threads;
  EXPECT_EQ(a.trackers_at_end, b.trackers_at_end) << threads;
  EXPECT_EQ(a.events_executed, b.events_executed) << threads;
  EXPECT_EQ(a.lp_windows, b.lp_windows) << threads;
  EXPECT_EQ(a.lp_cross_messages, b.lp_cross_messages) << threads;
  EXPECT_EQ(a.sim_seconds, b.sim_seconds) << threads;

  EXPECT_EQ(a.scheme_stats.registers, b.scheme_stats.registers) << threads;
  EXPECT_EQ(a.scheme_stats.updates, b.scheme_stats.updates) << threads;
  EXPECT_EQ(a.scheme_stats.locates, b.scheme_stats.locates) << threads;
  EXPECT_EQ(a.scheme_stats.locates_found, b.scheme_stats.locates_found)
      << threads;
  EXPECT_EQ(a.scheme_stats.stale_retries, b.scheme_stats.stale_retries)
      << threads;
  EXPECT_EQ(a.scheme_stats.cache_hits, b.scheme_stats.cache_hits) << threads;
  EXPECT_EQ(a.scheme_stats.cache_stale_hits, b.scheme_stats.cache_stale_hits)
      << threads;
  EXPECT_EQ(a.scheme_stats.optimistic_locates,
            b.scheme_stats.optimistic_locates)
      << threads;

  EXPECT_EQ(a.network_stats.messages_sent, b.network_stats.messages_sent)
      << threads;
  EXPECT_EQ(a.network_stats.bytes_sent, b.network_stats.bytes_sent) << threads;

  EXPECT_EQ(a.platform_stats.migrations_started,
            b.platform_stats.migrations_started)
      << threads;
  EXPECT_EQ(a.platform_stats.migrations_completed,
            b.platform_stats.migrations_completed)
      << threads;
  EXPECT_EQ(a.platform_stats.messages_sent, b.platform_stats.messages_sent)
      << threads;
  EXPECT_EQ(a.platform_stats.messages_bounced,
            b.platform_stats.messages_bounced)
      << threads;
  EXPECT_EQ(a.platform_stats.rpc_delivery_failures,
            b.platform_stats.rpc_delivery_failures)
      << threads;
  EXPECT_EQ(a.platform_stats.peak_inbox_depth,
            b.platform_stats.peak_inbox_depth)
      << threads;
  EXPECT_EQ(a.platform_stats.peak_resident_bytes,
            b.platform_stats.peak_resident_bytes)
      << threads;
  EXPECT_EQ(a.platform_stats.bytes_per_agent,
            b.platform_stats.bytes_per_agent)
      << threads;
}

ExperimentConfig small_config() {
  ExperimentConfig config;
  config.nodes = 16;
  config.tagents = 20;
  config.total_queries = 200;
  config.queriers = 4;
  config.warmup = sim::SimTime::seconds(2);
  config.measure_deadline = sim::SimTime::seconds(120);
  config.seed = 7;
  return config;
}

TEST(ParallelShardedExperimentTest, ProducesPlausibleExperiment1Shape) {
  ExperimentConfig config = small_config();
  config.lp_threads = 2;
  const ExperimentResult result = run_experiment_sharded(config);

  EXPECT_EQ(result.queries_found + result.queries_failed, 200u);
  EXPECT_GT(result.queries_found, 190u) << "most queries should locate";
  EXPECT_GT(result.tagent_moves, 0u);
  EXPECT_GT(result.lp_cross_messages, 0u);
  EXPECT_GT(result.lp_windows, 0u);
  EXPECT_EQ(result.lp_threads_used, 2u);
  // All cross-node traffic goes through the real platform: migrations ran
  // and completed, and the hash mechanism deployed trackers.
  EXPECT_EQ(result.platform_stats.migrations_started,
            result.platform_stats.migrations_completed);
  EXPECT_GE(result.trackers_at_end, 1u);
  // A query is at minimum two RPC round trips over a ~350us LAN plus
  // service time; at most a handful of retries worth.
  EXPECT_GT(result.location_ms.mean(), 1.0);
  EXPECT_LT(result.location_ms.mean(), 100.0);
}

TEST(ParallelShardedExperimentTest, BitIdenticalAcrossThreadCounts) {
  ExperimentConfig config = small_config();
  config.lp_threads = 1;
  const ExperimentResult reference = run_experiment_sharded(config);
  ASSERT_GT(reference.queries_found, 0u);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    config.lp_threads = threads;
    const ExperimentResult result = run_experiment_sharded(config);
    expect_identical(reference, result, threads);
    EXPECT_EQ(result.lp_threads_used, threads);
  }
}

TEST(ParallelShardedExperimentTest, BitIdenticalOnExperiment2StyleSweep) {
  // Experiment II varies residence time (movement rate); cover a fast-
  // moving and a slow-moving point, both with skewed query popularity.
  for (const double residence_ms : {100.0, 1000.0}) {
    ExperimentConfig config = small_config();
    config.residence = sim::SimTime::millis(residence_ms);
    config.target_skew = 0.8;
    config.total_queries = 120;
    config.lp_threads = 1;
    const ExperimentResult reference = run_experiment_sharded(config);

    for (const std::size_t threads : {2u, 8u}) {
      config.lp_threads = threads;
      expect_identical(reference, run_experiment_sharded(config), threads);
    }
  }
}

TEST(ParallelShardedExperimentTest, BitIdenticalWithLocationCacheEnabled) {
  // The cache extension adds cross-shard probe RPCs (optimistic jumps to
  // remote LHAgents) on top of the base protocol; the contract must hold
  // with it on, and the cache must actually engage.
  ExperimentConfig config = small_config();
  config.tagents = 40;
  config.total_queries = 300;
  config.target_skew = 0.8;
  config.mechanism.location_cache.enabled = true;
  config.lp_threads = 1;
  const ExperimentResult reference = run_experiment_sharded(config);
  EXPECT_GT(reference.scheme_stats.cache_hits +
                reference.scheme_stats.cache_misses,
            0u)
      << "the cache should see traffic in this config";

  config.lp_threads = 4;
  expect_identical(reference, run_experiment_sharded(config), 4);
}

TEST(ParallelShardedExperimentTest, HagentReplicationOrderedAcrossShards) {
  // With replication on, the primary (one shard) streams every tree op to
  // the standby (another shard) over the envelope channel; envelope
  // ordering must keep the copies converging — observable as a run where
  // rehashes still happen, queries still resolve, and the whole trajectory
  // stays thread-count-invariant.
  ExperimentConfig config = small_config();
  config.tagents = 60;
  config.total_queries = 300;
  config.queriers = 6;
  config.mechanism.hagent_replication = true;
  config.lp_threads = 1;
  const ExperimentResult reference = run_experiment_sharded(config);
  EXPECT_EQ(reference.queries_found + reference.queries_failed, 300u);
  EXPECT_GT(reference.queries_found, 290u);

  for (const std::size_t threads : {2u, 4u}) {
    config.lp_threads = threads;
    expect_identical(reference, run_experiment_sharded(config), threads);
  }
}

TEST(ParallelShardedExperimentTest, BaselineSchemesRunShardedAndDeterministic) {
  for (const std::string scheme : {"centralized", "home", "forwarding"}) {
    ExperimentConfig config = small_config();
    config.scheme = scheme;
    config.total_queries = 120;
    config.lp_threads = 1;
    const ExperimentResult reference = run_experiment_sharded(config);
    EXPECT_GT(reference.queries_found, 110u) << scheme;

    config.lp_threads = 4;
    expect_identical(reference, run_experiment_sharded(config), 4);
  }
}

TEST(ParallelShardedExperimentTest, SumsPerShardMemoryWatermarks) {
  // Satellite contract: peak_resident_bytes aggregates the per-shard
  // watermarks as a SUM (disjoint footprints), not a max, and the
  // bytes-per-agent figure covers platform plus scheme state.
  ExperimentConfig config = small_config();
  config.lp_threads = 2;
  const ExperimentResult result = run_experiment_sharded(config);

  EXPECT_GT(result.platform_stats.peak_resident_bytes, 0u);
  EXPECT_GT(result.platform_stats.bytes_per_agent, 0.0);
  EXPECT_GE(result.platform_stats.peak_inbox_depth, 1u);
  // 16 shards each hold at least an agent-record slab and an inbox pool;
  // the sum must dominate any plausible single-shard footprint for this
  // population (each shard's own slab alone is >1 KiB).
  EXPECT_GT(result.platform_stats.peak_resident_bytes, 16u * 1024u);
  EXPECT_GT(result.platform_stats.memory.total(), 0u);
}

TEST(ParallelShardedExperimentTest, DispatchesFromRunExperiment) {
  ExperimentConfig config = small_config();
  config.total_queries = 80;
  config.lp_threads = 2;
  const ExperimentResult direct = run_experiment_sharded(config);
  const ExperimentResult dispatched = run_experiment(config);
  expect_identical(direct, dispatched, 2);
  EXPECT_EQ(dispatched.lp_threads_used, 2u);
}

TEST(ParallelShardedExperimentTest, ComparableToLegacyEngineSemantics) {
  // Not bitwise (per-shard RNG streams necessarily differ from the global
  // stream — the documented contract), but the physics must agree: same
  // query count, near-total success, same latency regime.
  ExperimentConfig config = small_config();
  const ExperimentResult legacy = run_experiment(config);
  config.lp_threads = 1;
  const ExperimentResult sharded = run_experiment_sharded(config);

  EXPECT_EQ(legacy.queries_found + legacy.queries_failed,
            sharded.queries_found + sharded.queries_failed);
  EXPECT_GT(sharded.queries_found, 190u);
  EXPECT_GT(legacy.queries_found, 190u);
  const double ratio =
      sharded.location_ms.mean() / (legacy.location_ms.mean() + 1e-9);
  EXPECT_GT(ratio, 0.5) << "sharded latency regime diverged from legacy";
  EXPECT_LT(ratio, 2.0) << "sharded latency regime diverged from legacy";
}

TEST(ParallelShardedExperimentTest, RejectsUnsupportedHostHooks) {
  ExperimentConfig config = small_config();
  config.lp_threads = 2;
  config.drop_probability = 0.1;
  EXPECT_THROW(run_experiment_sharded(config), std::invalid_argument);

  config = small_config();
  config.lp_threads = 2;
  config.trace_csv_path = "/tmp/never-written.csv";
  EXPECT_THROW(run_experiment_sharded(config), std::invalid_argument);

  config = small_config();
  config.lp_threads = 2;
  config.on_finish = [](core::LocationScheme&) {};
  EXPECT_THROW(run_experiment_sharded(config), std::invalid_argument);

  config = small_config();
  config.lp_threads = 2;
  config.sampler = [](sim::SimTime, core::LocationScheme&) {};
  EXPECT_THROW(run_experiment_sharded(config), std::invalid_argument);
}

}  // namespace
}  // namespace agentloc::workload
