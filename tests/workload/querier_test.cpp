#include "workload/querier.hpp"

#include <gtest/gtest.h>

#include "core/centralized_scheme.hpp"
#include "net/network.hpp"
#include "platform/agent_system.hpp"
#include "sim/simulator.hpp"
#include "workload/tagent.hpp"

namespace agentloc::workload {
namespace {

class QuerierTest : public ::testing::Test {
 protected:
  QuerierTest()
      : network_(simulator_, 8,
                 std::make_unique<net::FixedLatencyModel>(
                     sim::SimTime::millis(1)),
                 util::Rng(3)),
        system_(simulator_, network_),
        scheme_(system_, core::MechanismConfig{}) {}

  std::vector<platform::AgentId> spawn_targets(int count,
                                               bool mobile = false) {
    std::vector<platform::AgentId> ids;
    for (int i = 0; i < count; ++i) {
      TAgent::Config config;
      config.mobile = mobile;
      config.residence = sim::SimTime::millis(200);
      config.seed = 50 + static_cast<std::uint64_t>(i);
      ids.push_back(system_
                        .create<TAgent>(static_cast<net::NodeId>(i % 8),
                                        scheme_, config)
                        .id());
    }
    simulator_.run_until(simulator_.now() + sim::SimTime::millis(50));
    return ids;
  }

  sim::Simulator simulator_;
  net::Network network_;
  platform::AgentSystem system_;
  core::CentralizedLocationScheme scheme_;
};

TEST_F(QuerierTest, CompletesQuotaAndSignals) {
  const auto targets = spawn_targets(5);
  QuerierAgent::Config config;
  config.quota = 20;
  config.think = sim::SimTime::millis(10);
  config.seed = 1;
  bool completed = false;
  auto& querier = system_.create<QuerierAgent>(0, scheme_, config, targets,
                                               [&] { completed = true; });
  simulator_.run_until(sim::SimTime::seconds(60));
  EXPECT_TRUE(completed);
  EXPECT_TRUE(querier.done());
  EXPECT_EQ(querier.latencies_ms().count(), 20u);
  EXPECT_EQ(querier.found(), 20u);
  EXPECT_EQ(querier.failed(), 0u);
}

TEST_F(QuerierTest, LatenciesArePositiveAndPlausible) {
  const auto targets = spawn_targets(5);
  QuerierAgent::Config config;
  config.quota = 10;
  config.seed = 2;
  auto& querier = system_.create<QuerierAgent>(0, scheme_, config, targets,
                                               nullptr);
  simulator_.run_until(sim::SimTime::seconds(30));
  ASSERT_EQ(querier.latencies_ms().count(), 10u);
  // Fixed 1 ms links + default 400 us service each way: ~3 ms round trip.
  EXPECT_GT(querier.latencies_ms().min(), 2.0);
  EXPECT_LT(querier.latencies_ms().max(), 10.0);
  EXPECT_DOUBLE_EQ(querier.attempts().mean(), 1.0);
}

TEST_F(QuerierTest, EmptyTargetListCompletesImmediately) {
  QuerierAgent::Config config;
  config.quota = 10;
  bool completed = false;
  system_.create<QuerierAgent>(0, scheme_, config,
                               std::vector<platform::AgentId>{},
                               [&] { completed = true; });
  simulator_.run_until(sim::SimTime::seconds(1));
  EXPECT_TRUE(completed);
}

TEST_F(QuerierTest, UnlimitedQuotaRunsUntilStopped) {
  const auto targets = spawn_targets(3);
  QuerierAgent::Config config;
  config.quota = 0;  // unlimited
  config.think = sim::SimTime::millis(5);
  config.seed = 3;
  auto& querier =
      system_.create<QuerierAgent>(0, scheme_, config, targets, nullptr);
  simulator_.run_until(sim::SimTime::seconds(5));
  EXPECT_FALSE(querier.done());
  EXPECT_GT(querier.latencies_ms().count(), 100u);
}

TEST_F(QuerierTest, WrongLocationCountedAgainstGroundTruth) {
  // Highly mobile targets: some answers are outdated by arrival. This is a
  // staleness *measurement*, not a failure.
  const auto targets = spawn_targets(5, /*mobile=*/true);
  QuerierAgent::Config config;
  config.quota = 200;
  config.think = sim::SimTime::millis(5);
  config.seed = 4;
  auto& querier =
      system_.create<QuerierAgent>(0, scheme_, config, targets, nullptr);
  simulator_.run_until(sim::SimTime::seconds(120));
  EXPECT_EQ(querier.found() + querier.failed(), 200u);
  EXPECT_LT(querier.wrong_location(), querier.found());
}

TEST_F(QuerierTest, ZipfSkewConcentratesTargets) {
  const auto targets = spawn_targets(8);
  QuerierAgent::Config config;
  config.quota = 300;
  config.think = sim::SimTime::millis(1);
  config.target_skew = 2.0;
  config.seed = 5;
  auto& querier =
      system_.create<QuerierAgent>(0, scheme_, config, targets, nullptr);
  simulator_.run_until(sim::SimTime::seconds(60));
  // All queries found; skew itself is exercised through the zipf path.
  EXPECT_EQ(querier.found(), 300u);
}

}  // namespace
}  // namespace agentloc::workload
