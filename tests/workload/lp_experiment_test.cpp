// run_experiment_lp: the node-partitioned parallel LP experiment engine.
// The headline property under test is the determinism contract: for a fixed
// config and seed, every thread count in {1, 2, 4, 8} must produce a
// bit-for-bit identical ExperimentResult. Suite names carry "Parallel" so
// the tsan CI preset runs them under ThreadSanitizer.

#include "workload/lp_experiment.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "workload/experiment.hpp"
#include "workload/sharded_experiment.hpp"

namespace agentloc::workload {
namespace {

/// Exact equality over everything the determinism contract covers —
/// including the raw per-query latency samples, which makes the comparison
/// bitwise rather than statistical.
void expect_identical(const ExperimentResult& a, const ExperimentResult& b,
                      std::size_t threads) {
  EXPECT_EQ(a.location_ms.samples(), b.location_ms.samples())
      << "latency samples diverge at threads=" << threads;
  EXPECT_EQ(a.attempts.samples(), b.attempts.samples()) << threads;
  EXPECT_EQ(a.queries_found, b.queries_found) << threads;
  EXPECT_EQ(a.queries_failed, b.queries_failed) << threads;
  EXPECT_EQ(a.wrong_location, b.wrong_location) << threads;
  EXPECT_EQ(a.tagent_moves, b.tagent_moves) << threads;
  EXPECT_EQ(a.events_executed, b.events_executed) << threads;
  EXPECT_EQ(a.lp_windows, b.lp_windows) << threads;
  EXPECT_EQ(a.lp_cross_messages, b.lp_cross_messages) << threads;
  EXPECT_EQ(a.sim_seconds, b.sim_seconds) << threads;
  EXPECT_EQ(a.network_stats.messages_sent, b.network_stats.messages_sent)
      << threads;
  EXPECT_EQ(a.scheme_stats.updates, b.scheme_stats.updates) << threads;
}

ExperimentConfig small_config() {
  ExperimentConfig config;
  config.nodes = 16;
  config.tagents = 20;
  config.total_queries = 200;
  config.queriers = 4;
  config.warmup = sim::SimTime::seconds(2);
  config.measure_deadline = sim::SimTime::seconds(120);
  config.seed = 7;
  return config;
}

TEST(ParallelLpExperimentTest, ProducesPlausibleExperiment1Shape) {
  ExperimentConfig config = small_config();
  config.lp_threads = 2;
  const ExperimentResult result = run_experiment_lp(config);

  EXPECT_EQ(result.queries_found + result.queries_failed, 200u);
  EXPECT_GT(result.queries_found, 190u) << "most queries should locate";
  EXPECT_GT(result.tagent_moves, 0u);
  EXPECT_GT(result.lp_cross_messages, 0u);
  EXPECT_GT(result.lp_windows, 0u);
  EXPECT_EQ(result.lp_threads_used, 2u);
  // A query is at minimum two RPC round trips over a ~350us LAN plus
  // service time; at most a handful of retries worth.
  EXPECT_GT(result.location_ms.mean(), 1.0);
  EXPECT_LT(result.location_ms.mean(), 100.0);
}

TEST(ParallelLpExperimentTest, BitIdenticalAcrossThreadCounts) {
  ExperimentConfig config = small_config();
  config.lp_threads = 1;
  const ExperimentResult reference = run_experiment_lp(config);
  ASSERT_GT(reference.queries_found, 0u);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    config.lp_threads = threads;
    const ExperimentResult result = run_experiment_lp(config);
    expect_identical(reference, result, threads);
  }
}

TEST(ParallelLpExperimentTest, BitIdenticalOnExperiment2StyleSweep) {
  // Experiment II varies residence time (movement rate); cover a fast-
  // moving and a slow-moving point, both with skewed query popularity.
  for (const double residence_ms : {100.0, 1000.0}) {
    ExperimentConfig config = small_config();
    config.residence = sim::SimTime::millis(residence_ms);
    config.target_skew = 0.8;
    config.total_queries = 120;
    config.lp_threads = 1;
    const ExperimentResult reference = run_experiment_lp(config);

    for (const std::size_t threads : {2u, 8u}) {
      config.lp_threads = threads;
      expect_identical(reference, run_experiment_lp(config), threads);
    }
  }
}

TEST(ParallelLpExperimentTest, RunExperimentDispatchesOnLpThreads) {
  // lp_threads >= 1 routes run_experiment onto the sharded platform engine;
  // the result must match a direct run_experiment_sharded call exactly.
  ExperimentConfig config = small_config();
  config.total_queries = 80;
  config.lp_threads = 2;
  const ExperimentResult direct = run_experiment_sharded(config);
  const ExperimentResult dispatched = run_experiment(config);
  expect_identical(direct, dispatched, 2);
  EXPECT_EQ(dispatched.lp_threads_used, 2u);
}

TEST(ParallelLpExperimentTest, LegacyEngineUntouchedByDefault) {
  // lp_threads == 0 (the default) must keep using the single-simulator
  // engine: no LP diagnostics appear.
  ExperimentConfig config = small_config();
  config.total_queries = 40;
  config.measure_deadline = sim::SimTime::seconds(60);
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.lp_windows, 0u);
  EXPECT_EQ(result.lp_threads_used, 0u);
  EXPECT_GT(result.queries_found, 0u);
  // The platform memory counters ride along on the legacy engine.
  EXPECT_GT(result.platform_stats.bytes_per_agent, 0.0);
  EXPECT_GE(result.platform_stats.peak_inbox_depth, 1u);
}

TEST(ParallelLpExperimentTest, MoreThreadsThanNodesStillIdentical) {
  ExperimentConfig config = small_config();
  config.nodes = 4;
  config.total_queries = 80;
  config.lp_threads = 1;
  const ExperimentResult reference = run_experiment_lp(config);
  config.lp_threads = 16;  // clamped to 4 LPs internally
  const ExperimentResult result = run_experiment_lp(config);
  expect_identical(reference, result, 16);
  EXPECT_EQ(result.lp_threads_used, 4u);
}

TEST(ParallelLpExperimentTest, RejectsUnsupportedHostHooks) {
  ExperimentConfig config = small_config();
  config.lp_threads = 2;
  config.drop_probability = 0.1;
  EXPECT_THROW(run_experiment_lp(config), std::invalid_argument);

  config = small_config();
  config.lp_threads = 2;
  config.trace_csv_path = "/tmp/never-written.csv";
  EXPECT_THROW(run_experiment_lp(config), std::invalid_argument);

  config = small_config();
  config.lp_threads = 2;
  config.on_finish = [](core::LocationScheme&) {};
  EXPECT_THROW(run_experiment_lp(config), std::invalid_argument);
}

TEST(ParallelLpExperimentTest, SingleNodeRunsWithoutMovement) {
  ExperimentConfig config = small_config();
  config.nodes = 1;
  config.total_queries = 40;
  config.lp_threads = 4;  // clamps to 1 LP
  const ExperimentResult result = run_experiment_lp(config);
  EXPECT_EQ(result.tagent_moves, 0u);
  EXPECT_EQ(result.queries_found, 40u) << "co-located lookups always hit";
  EXPECT_EQ(result.lp_threads_used, 1u);
}

}  // namespace
}  // namespace agentloc::workload
