#include "workload/report.hpp"

#include <gtest/gtest.h>

namespace agentloc::workload {
namespace {

TEST(Table, AlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"long-name", "22"});
  const std::string text = table.str();
  EXPECT_NE(text.find("| name      | value |"), std::string::npos);
  EXPECT_NE(text.find("| long-name | 22    |"), std::string::npos);
  EXPECT_NE(text.find("|-"), std::string::npos);
}

TEST(Table, PadsMissingCells) {
  Table table({"a", "b", "c"});
  table.add_row({"only"});
  const std::string text = table.str();
  EXPECT_NE(text.find("only"), std::string::npos);
  // Three columns rendered even though one cell was provided.
  const auto last_line = text.substr(text.rfind("| only"));
  EXPECT_EQ(std::count(last_line.begin(), last_line.end(), '|'), 4);
}

TEST(Fmt, FormatsPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(2.0), "2.00");
  EXPECT_EQ(fmt_count(42), "42");
}

TEST(AsciiSeries, ScalesToPeak) {
  const std::string text = ascii_series(
      {{"small", 1.0}, {"big", 10.0}}, 10);
  // The peak gets the full width, the small value a proportional bar.
  EXPECT_NE(text.find("big   |########## 10.00"), std::string::npos);
  EXPECT_NE(text.find("small |# 1.00"), std::string::npos);
}

TEST(AsciiSeries, HandlesZeros) {
  const std::string text = ascii_series({{"zero", 0.0}}, 10);
  EXPECT_NE(text.find("zero |"), std::string::npos);
}

}  // namespace
}  // namespace agentloc::workload
