#include "workload/experiment.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/hash_scheme.hpp"

namespace agentloc::workload {
namespace {

ExperimentConfig tiny(const std::string& scheme) {
  ExperimentConfig config;
  config.scheme = scheme;
  config.nodes = 6;
  config.tagents = 8;
  config.total_queries = 60;
  config.queriers = 2;
  config.warmup = sim::SimTime::seconds(5);
  config.think = sim::SimTime::millis(20);
  config.seed = 11;
  return config;
}

TEST(ExperimentRunner, AllFourSchemesRun) {
  for (const char* scheme : {"hash", "centralized", "home", "forwarding"}) {
    const ExperimentResult result = run_experiment(tiny(scheme));
    EXPECT_EQ(result.queries_found + result.queries_failed, 60u)
        << scheme;
    EXPECT_GT(result.queries_found, 55u) << scheme;
    EXPECT_GT(result.tagent_moves, 0u) << scheme;
    EXPECT_GT(result.events_executed, 500u) << scheme;
  }
}

TEST(ExperimentRunner, SamplerFiresAtRequestedPeriod) {
  ExperimentConfig config = tiny("hash");
  config.sample_period = sim::SimTime::seconds(1);
  std::vector<double> sample_times;
  config.sampler = [&](sim::SimTime t, core::LocationScheme& scheme) {
    sample_times.push_back(t.as_seconds());
    EXPECT_GE(scheme.tracker_count(), 1u);
  };
  run_experiment(config);
  ASSERT_GE(sample_times.size(), 5u);
  EXPECT_NEAR(sample_times[1] - sample_times[0], 1.0, 1e-9);
}

TEST(ExperimentRunner, OnFinishSeesFinalScheme) {
  ExperimentConfig config = tiny("hash");
  bool inspected = false;
  config.on_finish = [&](core::LocationScheme& scheme) {
    inspected = true;
    EXPECT_EQ(scheme.name(), "hash");
    auto& hash = static_cast<core::HashLocationScheme&>(scheme);
    hash.hagent().tree().validate();
  };
  run_experiment(config);
  EXPECT_TRUE(inspected);
}

TEST(ExperimentRunner, SequentialIdsReachTheWorkload) {
  ExperimentConfig config = tiny("hash");
  config.mixed_ids = false;
  config.on_finish = [](core::LocationScheme& scheme) {
    auto& hash = static_cast<core::HashLocationScheme&>(scheme);
    // Sequential ids share their high-order bits; any split must therefore
    // have pushed discriminators deep into the id.
    for (const auto leaf : hash.hagent().tree().leaves()) {
      for (const auto& [position, bit] :
           core::predicate_of(hash.hagent().tree(), leaf).valid_bits) {
        EXPECT_GT(position, 40u);
      }
    }
  };
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.queries_found, 55u);
}

TEST(ExperimentRunner, RepeatsAccumulateSamplesAndCounters) {
  ExperimentConfig config = tiny("centralized");
  const ExperimentResult once = run_experiment(config);
  const ExperimentResult thrice = run_repeated(config, 3);
  EXPECT_EQ(thrice.location_ms.count(), 3 * once.location_ms.count());
  EXPECT_GT(thrice.scheme_stats.updates, 2 * once.scheme_stats.updates);
  EXPECT_GT(thrice.sim_seconds, 2.9 * once.sim_seconds);
  // Different seeds per repeat: the merged mean is not just the single run.
  EXPECT_GT(thrice.network_stats.messages_sent,
            once.network_stats.messages_sent);
}

TEST(ExperimentRunner, ZeroQueriersStillRuns) {
  ExperimentConfig config = tiny("hash");
  config.queriers = 0;
  config.total_queries = 0;
  config.measure_deadline = sim::SimTime::seconds(2);
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.location_ms.count(), 0u);
  EXPECT_GT(result.tagent_moves, 0u);
}

TEST(ExperimentRunner, SkewedTargetsStillAllFound) {
  ExperimentConfig config = tiny("hash");
  config.target_skew = 1.5;
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.queries_failed, 0u);
}

TEST(ReplicationSeed, DependsOnlyOnBaseSeedAndIndex) {
  // The fix over the old compounding derivation: replication r's seed no
  // longer depends on how many replications ran before it.
  EXPECT_EQ(replication_seed(42, 3), replication_seed(42, 3));
  EXPECT_NE(replication_seed(42, 0), replication_seed(42, 1));
  EXPECT_NE(replication_seed(42, 1), replication_seed(43, 1));
  // Distinct over a whole sweep's worth of replications.
  std::set<std::uint64_t> seen;
  for (std::size_t r = 0; r < 1000; ++r) seen.insert(replication_seed(7, r));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(ExperimentRunner, SequentialAndParallelBitIdentical) {
  ExperimentConfig config = tiny("hash");
  const ExperimentResult seq = run_parallel(config, 4, 1);
  const ExperimentResult par = run_parallel(config, 4, 4);
  // Per-query samples merge in replication order, so the whole result —
  // not just aggregates — must match bit for bit.
  EXPECT_EQ(seq.location_ms.samples(), par.location_ms.samples());
  EXPECT_EQ(seq.attempts.samples(), par.attempts.samples());
  EXPECT_EQ(seq.queries_found, par.queries_found);
  EXPECT_EQ(seq.queries_failed, par.queries_failed);
  EXPECT_EQ(seq.wrong_location, par.wrong_location);
  EXPECT_EQ(seq.tagent_moves, par.tagent_moves);
  EXPECT_EQ(seq.trackers_at_end, par.trackers_at_end);
  EXPECT_EQ(seq.events_executed, par.events_executed);
  EXPECT_EQ(seq.scheme_stats.updates, par.scheme_stats.updates);
  EXPECT_EQ(seq.scheme_stats.locates, par.scheme_stats.locates);
  EXPECT_EQ(seq.network_stats.messages_sent, par.network_stats.messages_sent);
  EXPECT_EQ(seq.network_stats.bytes_sent, par.network_stats.bytes_sent);
  EXPECT_EQ(seq.platform_stats.messages_processed,
            par.platform_stats.messages_processed);
  EXPECT_DOUBLE_EQ(seq.sim_seconds, par.sim_seconds);
}

TEST(ExperimentRunner, RunRepeatedMatchesExplicitSequential) {
  ExperimentConfig config = tiny("centralized");
  const ExperimentResult repeated = run_repeated(config, 3);
  const ExperimentResult sequential = run_parallel(config, 3, 1);
  EXPECT_EQ(repeated.location_ms.samples(),
            sequential.location_ms.samples());
  EXPECT_EQ(repeated.events_executed, sequential.events_executed);
  EXPECT_EQ(repeated.queries_found, sequential.queries_found);
}

// --- Batch-first at scale (DESIGN.md §15) ---------------------------------
// Above `batch_auto_threshold` the harness turns update batching on and
// pre-sizes every table. The auto path must be bit-identical to asking for
// batching explicitly, and semantically equivalent to the legacy unbatched
// path (same answers, no wrong locations) — reserves and batching change
// footprint and message count, never meaning.

ExperimentConfig scale_cell(std::uint64_t seed) {
  ExperimentConfig config;
  config.scheme = "hash";
  config.nodes = 8;
  config.tagents = 96;
  config.total_queries = 120;
  config.queriers = 4;
  config.residence = sim::SimTime::millis(300);
  config.warmup = sim::SimTime::seconds(5);
  config.think = sim::SimTime::millis(15);
  config.seed = seed;
  return config;
}

TEST(BatchFirstAtScale, AutoThresholdMatchesExplicitBatchingBitwise) {
  // Auto arm: population at the (lowered) threshold, nothing else set.
  ExperimentConfig auto_arm = scale_cell(29);
  auto_arm.mechanism.batch_auto_threshold = 96;

  // Explicit arm: auto-scaling disabled, batching requested by hand — the
  // pre-tentpole opt-in spelling. Reserves only change allocation, so the
  // trajectories must agree bit for bit.
  ExperimentConfig explicit_arm = scale_cell(29);
  explicit_arm.mechanism.batch_auto_threshold = 0;
  explicit_arm.mechanism.update_batching = true;

  const ExperimentResult by_threshold = run_experiment(auto_arm);
  const ExperimentResult by_request = run_experiment(explicit_arm);
  EXPECT_GT(by_threshold.platform_stats.batch_flushes, 0u);
  EXPECT_EQ(by_threshold.location_ms.samples(),
            by_request.location_ms.samples());
  EXPECT_EQ(by_threshold.events_executed, by_request.events_executed);
  EXPECT_EQ(by_threshold.queries_found, by_request.queries_found);
  EXPECT_EQ(by_threshold.wrong_location, by_request.wrong_location);
  EXPECT_EQ(by_threshold.network_stats.messages_sent,
            by_request.network_stats.messages_sent);
  EXPECT_EQ(by_threshold.platform_stats.batch_flushes,
            by_request.platform_stats.batch_flushes);
  EXPECT_EQ(by_threshold.platform_stats.messages_coalesced,
            by_request.platform_stats.messages_coalesced);
}

TEST(BatchFirstAtScale, BatchedAndUnbatchedSemanticallyEquivalent) {
  ExperimentConfig batched = scale_cell(31);
  batched.mechanism.batch_auto_threshold = 96;

  ExperimentConfig unbatched = scale_cell(31);
  unbatched.mechanism.batch_auto_threshold = 0;

  const ExperimentResult with_batching = run_experiment(batched);
  const ExperimentResult legacy = run_experiment(unbatched);

  // Batching coalesces wire messages; it must not change what locates find.
  EXPECT_GT(with_batching.platform_stats.messages_coalesced, 0u);
  EXPECT_EQ(legacy.platform_stats.batch_flushes, 0u);
  EXPECT_EQ(with_batching.queries_found + with_batching.queries_failed,
            legacy.queries_found + legacy.queries_failed);
  EXPECT_EQ(with_batching.queries_found, legacy.queries_found);
  // `wrong_location` counts retried stale hits — timing-dependent under this
  // churn, so the arms may differ, but every query must still resolve.
  EXPECT_EQ(with_batching.queries_failed, 0u);
  EXPECT_EQ(legacy.queries_failed, 0u);
  EXPECT_LT(with_batching.scheme_stats.updates,
            legacy.scheme_stats.updates + 1);  // batching never adds updates
  EXPECT_LE(with_batching.network_stats.messages_sent,
            legacy.network_stats.messages_sent);
}

TEST(BatchFirstAtScale, BelowThresholdLeavesLegacyPathUntouched) {
  // One agent below the threshold: the auto arm must be the legacy run,
  // bit for bit — this is what keeps the committed baselines valid.
  ExperimentConfig below = scale_cell(37);
  below.mechanism.batch_auto_threshold = 97;
  ExperimentConfig legacy = scale_cell(37);
  legacy.mechanism.batch_auto_threshold = 0;

  const ExperimentResult a = run_experiment(below);
  const ExperimentResult b = run_experiment(legacy);
  EXPECT_EQ(a.platform_stats.batch_flushes, 0u);
  EXPECT_EQ(a.location_ms.samples(), b.location_ms.samples());
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.network_stats.messages_sent, b.network_stats.messages_sent);
}

TEST(MakeScheme, ConstructsEachKind) {
  sim::Simulator simulator;
  net::Network network(simulator, 4, net::make_default_lan_model(),
                       util::Rng(1));
  platform::AgentSystem system(simulator, network);
  core::MechanismConfig mechanism;
  EXPECT_EQ(make_scheme("hash", system, mechanism)->name(), "hash");
  EXPECT_EQ(make_scheme("centralized", system, mechanism)->name(),
            "centralized");
  EXPECT_EQ(make_scheme("home", system, mechanism)->name(), "home");
  EXPECT_EQ(make_scheme("forwarding", system, mechanism)->name(),
            "forwarding");
  EXPECT_THROW(make_scheme("bogus", system, mechanism),
               std::invalid_argument);
}

}  // namespace
}  // namespace agentloc::workload
