#include "workload/experiment.hpp"

#include <gtest/gtest.h>

#include "core/hash_scheme.hpp"

namespace agentloc::workload {
namespace {

ExperimentConfig tiny(const std::string& scheme) {
  ExperimentConfig config;
  config.scheme = scheme;
  config.nodes = 6;
  config.tagents = 8;
  config.total_queries = 60;
  config.queriers = 2;
  config.warmup = sim::SimTime::seconds(5);
  config.think = sim::SimTime::millis(20);
  config.seed = 11;
  return config;
}

TEST(ExperimentRunner, AllFourSchemesRun) {
  for (const char* scheme : {"hash", "centralized", "home", "forwarding"}) {
    const ExperimentResult result = run_experiment(tiny(scheme));
    EXPECT_EQ(result.queries_found + result.queries_failed, 60u)
        << scheme;
    EXPECT_GT(result.queries_found, 55u) << scheme;
    EXPECT_GT(result.tagent_moves, 0u) << scheme;
    EXPECT_GT(result.events_executed, 500u) << scheme;
  }
}

TEST(ExperimentRunner, SamplerFiresAtRequestedPeriod) {
  ExperimentConfig config = tiny("hash");
  config.sample_period = sim::SimTime::seconds(1);
  std::vector<double> sample_times;
  config.sampler = [&](sim::SimTime t, core::LocationScheme& scheme) {
    sample_times.push_back(t.as_seconds());
    EXPECT_GE(scheme.tracker_count(), 1u);
  };
  run_experiment(config);
  ASSERT_GE(sample_times.size(), 5u);
  EXPECT_NEAR(sample_times[1] - sample_times[0], 1.0, 1e-9);
}

TEST(ExperimentRunner, OnFinishSeesFinalScheme) {
  ExperimentConfig config = tiny("hash");
  bool inspected = false;
  config.on_finish = [&](core::LocationScheme& scheme) {
    inspected = true;
    EXPECT_EQ(scheme.name(), "hash");
    auto& hash = static_cast<core::HashLocationScheme&>(scheme);
    hash.hagent().tree().validate();
  };
  run_experiment(config);
  EXPECT_TRUE(inspected);
}

TEST(ExperimentRunner, SequentialIdsReachTheWorkload) {
  ExperimentConfig config = tiny("hash");
  config.mixed_ids = false;
  config.on_finish = [](core::LocationScheme& scheme) {
    auto& hash = static_cast<core::HashLocationScheme&>(scheme);
    // Sequential ids share their high-order bits; any split must therefore
    // have pushed discriminators deep into the id.
    for (const auto leaf : hash.hagent().tree().leaves()) {
      for (const auto& [position, bit] :
           core::predicate_of(hash.hagent().tree(), leaf).valid_bits) {
        EXPECT_GT(position, 40u);
      }
    }
  };
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.queries_found, 55u);
}

TEST(ExperimentRunner, RepeatsAccumulateSamplesAndCounters) {
  ExperimentConfig config = tiny("centralized");
  const ExperimentResult once = run_experiment(config);
  const ExperimentResult thrice = run_repeated(config, 3);
  EXPECT_EQ(thrice.location_ms.count(), 3 * once.location_ms.count());
  EXPECT_GT(thrice.scheme_stats.updates, 2 * once.scheme_stats.updates);
  EXPECT_GT(thrice.sim_seconds, 2.9 * once.sim_seconds);
  // Different seeds per repeat: the merged mean is not just the single run.
  EXPECT_GT(thrice.network_stats.messages_sent,
            once.network_stats.messages_sent);
}

TEST(ExperimentRunner, ZeroQueriersStillRuns) {
  ExperimentConfig config = tiny("hash");
  config.queriers = 0;
  config.total_queries = 0;
  config.measure_deadline = sim::SimTime::seconds(2);
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.location_ms.count(), 0u);
  EXPECT_GT(result.tagent_moves, 0u);
}

TEST(ExperimentRunner, SkewedTargetsStillAllFound) {
  ExperimentConfig config = tiny("hash");
  config.target_skew = 1.5;
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.queries_failed, 0u);
}

TEST(MakeScheme, ConstructsEachKind) {
  sim::Simulator simulator;
  net::Network network(simulator, 4, net::make_default_lan_model(),
                       util::Rng(1));
  platform::AgentSystem system(simulator, network);
  core::MechanismConfig mechanism;
  EXPECT_EQ(make_scheme("hash", system, mechanism)->name(), "hash");
  EXPECT_EQ(make_scheme("centralized", system, mechanism)->name(),
            "centralized");
  EXPECT_EQ(make_scheme("home", system, mechanism)->name(), "home");
  EXPECT_EQ(make_scheme("forwarding", system, mechanism)->name(),
            "forwarding");
  EXPECT_THROW(make_scheme("bogus", system, mechanism),
               std::invalid_argument);
}

}  // namespace
}  // namespace agentloc::workload
