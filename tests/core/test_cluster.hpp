#pragma once

// Shared fixture for core-protocol tests: a small deterministic cluster
// (fixed 1 ms links, 100 us service time) plus a scriptable agent that
// records everything it receives.

#include <vector>

#include "core/protocol.hpp"
#include "net/network.hpp"
#include "platform/agent_system.hpp"
#include "sim/simulator.hpp"

namespace agentloc::core::testing {

struct TestCluster {
  explicit TestCluster(std::size_t nodes = 4,
                       sim::SimTime service = sim::SimTime::micros(100))
      : network(simulator, nodes,
                std::make_unique<net::FixedLatencyModel>(sim::SimTime::millis(1)),
                util::Rng(7)),
        system(simulator, network, make_config(service)) {}

  static platform::AgentSystem::Config make_config(sim::SimTime service) {
    platform::AgentSystem::Config config;
    config.service_time = service;
    return config;
  }

  void run_for(sim::SimTime span) { simulator.run_until(simulator.now() + span); }

  sim::Simulator simulator;
  net::Network network;
  platform::AgentSystem system;
};

/// Records received messages and delivery failures; can send/reply.
class ScriptAgent : public platform::Agent {
 public:
  std::string kind() const override { return "script"; }

  void on_message(const platform::Message& message) override {
    received.push_back(message);
  }

  void on_delivery_failure(const platform::DeliveryFailure& failure) override {
    failures.push_back(failure);
  }

  /// Messages of payload type T, in arrival order.
  template <typename T>
  std::vector<T> bodies() const {
    std::vector<T> out;
    for (const auto& message : received) {
      if (const T* body = message.body_as<T>()) out.push_back(*body);
    }
    return out;
  }

  template <typename T>
  std::size_t count() const {
    std::size_t n = 0;
    for (const auto& message : received) {
      if (message.body_as<T>() != nullptr) ++n;
    }
    return n;
  }

  std::vector<platform::Message> received;
  std::vector<platform::DeliveryFailure> failures;
};

/// ScriptAgent that additionally acks HandoffTransfers like an IAgent would.
class AckingScriptAgent : public ScriptAgent {
 public:
  void on_message(const platform::Message& message) override {
    ScriptAgent::on_message(message);
    if (message.body_as<HandoffTransfer>() != nullptr) {
      system().reply(message, id(), HandoffAck{}, HandoffAck::kWireBytes);
    }
  }
};

}  // namespace agentloc::core::testing
