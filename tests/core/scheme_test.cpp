// End-to-end tests of the two location schemes through the LocationScheme
// interface, with stationary probe agents as the tracked population (mobility
// is driven explicitly so every staleness scenario is reproducible).

#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "core/centralized_scheme.hpp"
#include "core/forwarding_scheme.hpp"
#include "core/hash_scheme.hpp"
#include "core/home_scheme.hpp"
#include "test_cluster.hpp"

namespace agentloc::core {
namespace {

using testing::TestCluster;

/// A tracked agent whose moves the test controls.
class Trackee : public platform::Agent {
 public:
  explicit Trackee(LocationScheme& scheme) : scheme_(scheme) {}

  std::string kind() const override { return "trackee"; }

  void on_start() override {
    scheme_.register_agent(*this, [this](bool ok) { registered = ok; });
  }

  void on_arrival(net::NodeId) override {
    scheme_.update_location(*this, [this](bool ok) { updated = ok; });
  }

  void on_message(const platform::Message& message) override {
    scheme_.handle_agent_message(*this, message);
  }

  void on_delivery_failure(const platform::DeliveryFailure& failure) override {
    scheme_.handle_delivery_failure(*this, failure);
  }

  bool registered = false;
  bool updated = false;

 private:
  LocationScheme& scheme_;
};

class SchemeTest : public ::testing::Test {
 protected:
  SchemeTest() : cluster_(8) {
    config_.stats_window = sim::SimTime::millis(500);
    config_.rehash_cooldown = sim::SimTime::seconds(1);
    config_.t_max = 40.0;
    config_.t_min = 0.0;  // no auto-merges unless a test wants them
  }

  void make_hash_scheme() {
    scheme_ = std::make_unique<HashLocationScheme>(cluster_.system, config_);
  }

  void make_centralized_scheme() {
    scheme_ =
        std::make_unique<CentralizedLocationScheme>(cluster_.system, config_);
  }

  void make_scheme_by_name(const std::string& name) {
    if (name == "hash") {
      scheme_ = std::make_unique<HashLocationScheme>(cluster_.system, config_);
    } else if (name == "centralized") {
      make_centralized_scheme();
    } else if (name == "home") {
      scheme_ = std::make_unique<HomeRegistryLocationScheme>(cluster_.system,
                                                             config_);
    } else {
      scheme_ = std::make_unique<ForwardingLocationScheme>(cluster_.system,
                                                           config_);
    }
  }

  Trackee& spawn_trackee(net::NodeId node) {
    Trackee& agent = cluster_.system.create<Trackee>(node, *scheme_);
    cluster_.run_for(sim::SimTime::millis(20));
    return agent;
  }

  LocateOutcome locate_from(net::NodeId node, platform::AgentId target) {
    Trackee& requester = cluster_.system.create<Trackee>(node, *scheme_);
    cluster_.run_for(sim::SimTime::millis(20));
    std::optional<LocateOutcome> outcome;
    scheme_->locate(requester, target,
                    [&](const LocateOutcome& o) { outcome = o; });
    cluster_.run_for(sim::SimTime::seconds(15));
    EXPECT_TRUE(outcome.has_value());
    return outcome.value_or(LocateOutcome{});
  }

  void move(Trackee& agent, net::NodeId to) {
    cluster_.system.migrate(agent.id(), to);
    cluster_.run_for(sim::SimTime::millis(30));
  }

  HashLocationScheme& hash_scheme() {
    return static_cast<HashLocationScheme&>(*scheme_);
  }

  TestCluster cluster_;
  MechanismConfig config_;
  std::unique_ptr<LocationScheme> scheme_;
};

// --- shared behaviours, run against both schemes ---------------------------

class BothSchemesTest : public SchemeTest,
                        public ::testing::WithParamInterface<const char*> {
 protected:
  void SetUp() override { make_scheme_by_name(GetParam()); }
};

TEST_P(BothSchemesTest, RegisterThenLocate) {
  Trackee& target = spawn_trackee(3);
  EXPECT_TRUE(target.registered);
  const LocateOutcome outcome = locate_from(5, target.id());
  EXPECT_TRUE(outcome.found);
  EXPECT_EQ(outcome.node, 3u);
  // Forwarding needs two request/response cycles by construction (name
  // service + chase hop); everything else resolves in one.
  EXPECT_LE(outcome.attempts, 2);
}

TEST_P(BothSchemesTest, LocateTracksMoves) {
  Trackee& target = spawn_trackee(3);
  move(target, 6);
  EXPECT_TRUE(target.updated);
  EXPECT_EQ(locate_from(5, target.id()).node, 6u);
  move(target, 2);
  EXPECT_EQ(locate_from(5, target.id()).node, 2u);
}

TEST_P(BothSchemesTest, LocateUnknownAgentFails) {
  spawn_trackee(3);
  const LocateOutcome outcome = locate_from(5, 0xabadcafe12345678ull);
  EXPECT_FALSE(outcome.found);
  EXPECT_GE(outcome.attempts, 1);
  EXPECT_GE(scheme_->stats().locates_failed, 1u);
}

TEST_P(BothSchemesTest, DeregisteredAgentNotFound) {
  Trackee& target = spawn_trackee(3);
  const platform::AgentId id = target.id();
  EXPECT_TRUE(locate_from(5, id).found);
  scheme_->deregister_agent(target);
  cluster_.run_for(sim::SimTime::millis(50));
  cluster_.system.dispose(id);
  const LocateOutcome outcome = locate_from(5, id);
  EXPECT_FALSE(outcome.found);
}

TEST_P(BothSchemesTest, SelfLocateWorks) {
  Trackee& target = spawn_trackee(3);
  std::optional<LocateOutcome> outcome;
  scheme_->locate(target, target.id(),
                  [&](const LocateOutcome& o) { outcome = o; });
  cluster_.run_for(sim::SimTime::seconds(5));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->found);
  EXPECT_EQ(outcome->node, 3u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, BothSchemesTest,
                         ::testing::Values("hash", "centralized", "home",
                                           "forwarding"));

// --- hash-scheme-specific behaviours ---------------------------------------

class HashSchemeTest : public SchemeTest {
 protected:
  void SetUp() override { make_hash_scheme(); }

  /// Drive a split by hammering the responsible IAgent with locates.
  void force_split(platform::AgentId hot_target) {
    Trackee& driver = cluster_.system.create<Trackee>(0, *scheme_);
    cluster_.run_for(sim::SimTime::millis(20));
    for (int round = 0; round < 40; ++round) {
      for (int i = 0; i < 8; ++i) {
        scheme_->locate(driver, hot_target + static_cast<std::uint64_t>(i),
                        [](const LocateOutcome&) {});
      }
      cluster_.run_for(sim::SimTime::millis(100));
      if (hash_scheme().hagent().iagent_count() > 1) break;
    }
  }
};

TEST_F(HashSchemeTest, OverloadSplitsAndLocatesKeepWorking) {
  Trackee& target = spawn_trackee(3);
  force_split(0x4242424242424242ull);
  EXPECT_GT(hash_scheme().hagent().iagent_count(), 1u);
  const LocateOutcome outcome = locate_from(5, target.id());
  EXPECT_TRUE(outcome.found);
  EXPECT_EQ(outcome.node, 3u);
}

TEST_F(HashSchemeTest, StaleSecondaryCopySelfHealsOnLocate) {
  Trackee& target = spawn_trackee(3);
  force_split(0x4242424242424242ull);
  // Node 7's LHAgent never refreshed; its copy predates the split.
  LHAgent& stale_copy = hash_scheme().lhagent(7);
  ASSERT_LT(stale_copy.version(), hash_scheme().hagent().tree().version());

  // While the copy is still stale, find an id it routes differently from
  // the primary (the split must have moved some region).
  std::optional<platform::AgentId> probe;
  for (std::uint64_t v = 0; v < 256 && !probe; ++v) {
    const platform::AgentId id = v << 56;
    if (stale_copy.resolve(id).agent !=
        hash_scheme().hagent().tree().lookup_id(id).iagent) {
      probe = id;
    }
  }
  ASSERT_TRUE(probe.has_value()) << "split did not change any mapping?";

  // A locate from node 7 must still find the target even if the stale copy
  // routes it to the wrong IAgent.
  const LocateOutcome outcome = locate_from(7, target.id());
  EXPECT_TRUE(outcome.found);
  EXPECT_EQ(outcome.node, 3u);

  // Probing the moved region forces the wrong-IAgent bounce and the refresh
  // of node 7's copy (paper §4.3).
  locate_from(7, *probe);  // not registered: outcome is 'not found'
  EXPECT_EQ(stale_copy.version(), hash_scheme().hagent().tree().version());
}

TEST_F(HashSchemeTest, StaleUpdateTriggersNoticeAndResend) {
  Trackee& target = spawn_trackee(3);
  force_split(0x4242424242424242ull);
  const auto stale_before = scheme_->stats().stale_retries;
  // Move the target repeatedly; each arrival reports through its node's
  // (possibly stale) LHAgent. Any wrong-IAgent update must self-correct.
  for (net::NodeId node = 4; node < 8; ++node) move(target, node);
  cluster_.run_for(sim::SimTime::seconds(1));
  const LocateOutcome outcome = locate_from(2, target.id());
  EXPECT_TRUE(outcome.found);
  EXPECT_EQ(outcome.node, 7u);
  // At least one of those updates should have hit a stale mapping.
  EXPECT_GE(scheme_->stats().stale_retries + scheme_->stats().delivery_retries,
            stale_before);
}

TEST_F(HashSchemeTest, MergeShrinksBackWhenIdle) {
  config_.t_min = 5.0;
  config_.rehash_cooldown = sim::SimTime::millis(600);
  scheme_ = nullptr;
  make_hash_scheme();
  Trackee& target = spawn_trackee(3);
  force_split(0x4242424242424242ull);
  const auto peak = hash_scheme().hagent().iagent_count();
  ASSERT_GT(peak, 1u);
  // Go idle; underloaded IAgents ask to merge once their cooldown passes.
  cluster_.run_for(sim::SimTime::seconds(10));
  EXPECT_LT(hash_scheme().hagent().iagent_count(), peak);
  EXPECT_GE(hash_scheme().hagent().stats().simple_merges +
                hash_scheme().hagent().stats().complex_merges,
            1u);
  // Entries survived the merges.
  const LocateOutcome outcome = locate_from(5, target.id());
  EXPECT_TRUE(outcome.found);
  EXPECT_EQ(outcome.node, 3u);
}

TEST_F(HashSchemeTest, LocateSurvivesIAgentMigration) {
  config_.locality_migration = true;
  scheme_ = nullptr;
  make_hash_scheme();
  // Several trackees clustered on node 6 pull the (single) IAgent there.
  std::vector<Trackee*> population;
  for (int i = 0; i < 6; ++i) population.push_back(&spawn_trackee(6));
  cluster_.run_for(sim::SimTime::seconds(2));
  const auto iagent_id = hash_scheme().hagent().tree().leaves().front();
  EXPECT_EQ(cluster_.system.node_of(iagent_id), 6u);
  // Node 2's copy still records the IAgent's birth node; locating from there
  // exercises the delivery-failure → refresh → retry path.
  const LocateOutcome outcome = locate_from(2, population.front()->id());
  EXPECT_TRUE(outcome.found);
  EXPECT_EQ(outcome.node, 6u);
}

TEST_F(HashSchemeTest, TrackerCountFollowsTree) {
  EXPECT_EQ(scheme_->tracker_count(), 1u);
  force_split(0x4242424242424242ull);
  EXPECT_EQ(scheme_->tracker_count(),
            hash_scheme().hagent().iagent_count());
}

// --- home-registry-specific -------------------------------------------------

TEST_F(SchemeTest, HomeRegistrySpreadsEntriesByAgentId) {
  config_.rpc_timeout = sim::SimTime::seconds(2);
  make_scheme_by_name("home");
  auto& home = static_cast<HomeRegistryLocationScheme&>(*scheme_);
  std::vector<Trackee*> population;
  for (int i = 0; i < 16; ++i) population.push_back(&spawn_trackee(1));
  // Each agent's entry lives at its home registry, not a central one.
  std::set<net::NodeId> homes;
  for (Trackee* agent : population) {
    homes.insert(home.home_of(agent->id()).node);
  }
  EXPECT_GT(homes.size(), 3u);  // mixed ids spread over 8 nodes
  EXPECT_EQ(scheme_->tracker_count(), 8u);
}

TEST_F(SchemeTest, HomeRegistryLocateAfterManyMoves) {
  make_scheme_by_name("home");
  Trackee& target = spawn_trackee(3);
  for (net::NodeId node = 4; node < 8; ++node) move(target, node);
  EXPECT_EQ(locate_from(2, target.id()).node, 7u);
}

// --- forwarding-specific -----------------------------------------------------

TEST_F(SchemeTest, ForwardingChasesPointerChain) {
  make_scheme_by_name("forwarding");
  auto& forwarding = static_cast<ForwardingLocationScheme&>(*scheme_);
  Trackee& target = spawn_trackee(3);
  // Build a 4-hop chain without any intervening locate.
  for (net::NodeId node = 4; node < 8; ++node) move(target, node);
  const LocateOutcome outcome = locate_from(2, target.id());
  EXPECT_TRUE(outcome.found);
  EXPECT_EQ(outcome.node, 7u);
  EXPECT_GE(forwarding.chase_hops(), 4u);

  // The successful chase compressed the chain at the name service: a second
  // locate goes (nearly) straight there.
  const auto hops_before = forwarding.chase_hops();
  const LocateOutcome again = locate_from(5, target.id());
  EXPECT_TRUE(again.found);
  EXPECT_EQ(forwarding.chase_hops(), hops_before);
}

TEST_F(SchemeTest, ForwardingChainCostGrowsWithMobility) {
  make_scheme_by_name("forwarding");
  auto& forwarding = static_cast<ForwardingLocationScheme&>(*scheme_);
  Trackee& target = spawn_trackee(0);
  const LocateOutcome fresh = locate_from(2, target.id());
  ASSERT_TRUE(fresh.found);
  const auto hops_fresh = forwarding.chase_hops();
  for (int lap = 0; lap < 2; ++lap) {
    for (net::NodeId node = 1; node < 8; ++node) move(target, node);
  }
  const LocateOutcome after = locate_from(2, target.id());
  ASSERT_TRUE(after.found);
  EXPECT_GT(forwarding.chase_hops() - hops_fresh, 4u);
}

// --- guaranteed-discovery watch extension -----------------------------------

TEST_F(HashSchemeTest, WatchFiresOnNextMove) {
  Trackee& target = spawn_trackee(3);
  Trackee& watcher = spawn_trackee(5);

  std::optional<HashLocationScheme::WatchOutcome> outcome;
  hash_scheme().watch(watcher, target.id(),
                      [&](const HashLocationScheme::WatchOutcome& o) {
                        outcome = o;
                      });
  cluster_.run_for(sim::SimTime::millis(50));
  EXPECT_FALSE(outcome.has_value());  // armed, target has not moved

  move(target, 6);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->fired);
  EXPECT_EQ(outcome->entry.agent, target.id());
  EXPECT_EQ(outcome->entry.node, 6u);
}

TEST_F(HashSchemeTest, WatchTimesOutForSedentaryTarget) {
  config_.watch_timeout = sim::SimTime::seconds(1);
  scheme_ = nullptr;
  make_hash_scheme();
  Trackee& target = spawn_trackee(3);
  Trackee& watcher = spawn_trackee(5);
  std::optional<HashLocationScheme::WatchOutcome> outcome;
  hash_scheme().watch(watcher, target.id(),
                      [&](const HashLocationScheme::WatchOutcome& o) {
                        outcome = o;
                      });
  cluster_.run_for(sim::SimTime::seconds(2));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->fired);
}

TEST_F(HashSchemeTest, WatchBeatsAFastMover) {
  // A target that hops every 30 ms: plain locates often report a node the
  // target has already left, but the watch's answer is fresh on arrival.
  Trackee& target = spawn_trackee(0);
  Trackee& watcher = spawn_trackee(5);

  // Drive rapid movement.
  for (net::NodeId hop = 1; hop < 8; ++hop) {
    cluster_.simulator.schedule_after(
        sim::SimTime::millis(30 * hop), [this, &target, hop] {
          if (cluster_.system.node_of(target.id())) {
            cluster_.system.migrate(target.id(), hop);
          }
        });
  }

  std::optional<HashLocationScheme::WatchOutcome> outcome;
  std::optional<net::NodeId> truth_at_fire;
  hash_scheme().watch(watcher, target.id(),
                      [&](const HashLocationScheme::WatchOutcome& o) {
                        outcome = o;
                        truth_at_fire = cluster_.system.node_of(target.id());
                      });
  cluster_.run_for(sim::SimTime::millis(60));
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->fired);
  // At notification time the entry matched ground truth exactly: the target
  // had just landed and its dwell time lay ahead.
  ASSERT_TRUE(truth_at_fire.has_value());
  EXPECT_EQ(*truth_at_fire, outcome->entry.node);
}

TEST_F(HashSchemeTest, WatchSurvivesStaleCopy) {
  Trackee& target = spawn_trackee(3);
  force_split(0x4242424242424242ull);
  // A watcher on a never-refreshed node: the WatchRequest may hit the wrong
  // IAgent first and must self-correct.
  Trackee& watcher = spawn_trackee(7);
  std::optional<HashLocationScheme::WatchOutcome> outcome;
  hash_scheme().watch(watcher, target.id(),
                      [&](const HashLocationScheme::WatchOutcome& o) {
                        outcome = o;
                      });
  cluster_.run_for(sim::SimTime::millis(100));
  move(target, 2);
  cluster_.run_for(sim::SimTime::millis(100));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->fired);
  EXPECT_EQ(outcome->entry.node, 2u);
}

// --- centralized-specific ----------------------------------------------------

TEST_F(SchemeTest, CentralizedTrackerCountsRequests) {
  make_centralized_scheme();
  Trackee& target = spawn_trackee(3);
  locate_from(5, target.id());
  auto& centralized = static_cast<CentralizedLocationScheme&>(*scheme_);
  EXPECT_GE(centralized.tracker().requests_served(), 2u);  // register + locate
  EXPECT_EQ(centralized.tracker().entry_count(), 2u);  // target + requester
  EXPECT_EQ(scheme_->tracker_count(), 1u);
}

}  // namespace
}  // namespace agentloc::core
