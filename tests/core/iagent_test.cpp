#include "core/iagent.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "test_cluster.hpp"

namespace agentloc::core {
namespace {

using testing::AckingScriptAgent;
using testing::ScriptAgent;
using testing::TestCluster;

class IAgentTest : public ::testing::Test {
 protected:
  IAgentTest() : cluster_(6) {
    config_.stats_window = sim::SimTime::millis(200);
    config_.rehash_cooldown = sim::SimTime::millis(400);
    config_.t_max = 100.0;
    config_.t_min = 1.0;
    config_.transient_grace = sim::SimTime::millis(50);

    hagent_stub_ = &cluster_.system.create<ScriptAgent>(0);
    client_ = &cluster_.system.create<ScriptAgent>(2);
    cluster_.simulator.run_until(sim::SimTime::millis(1));
    iagent_ = &cluster_.system.create<IAgent>(
        1, config_, platform::AgentAddress{0, hagent_stub_->id()});
    cluster_.run_for(sim::SimTime::millis(1));
  }

  platform::AgentAddress iagent_address() const {
    return platform::AgentAddress{1, iagent_->id()};
  }

  /// RPC from the client to the IAgent; returns the result once settled.
  platform::RpcResult rpc(util::PayloadBox body, std::size_t bytes) {
    std::optional<platform::RpcResult> settled;
    cluster_.system.request(client_->id(), iagent_address(), std::move(body),
                            bytes,
                            [&](platform::RpcResult r) { settled = r; });
    cluster_.run_for(sim::SimTime::seconds(1));
    EXPECT_TRUE(settled.has_value());
    return settled.value_or(platform::RpcResult{});
  }

  LocateReply locate(platform::AgentId target) {
    const auto result = rpc(LocateRequest{target}, LocateRequest::kWireBytes);
    const auto* reply = result.reply.body_as<LocateReply>();
    EXPECT_NE(reply, nullptr);
    return reply != nullptr ? *reply : LocateReply{};
  }

  void send_update(platform::AgentId agent, net::NodeId node,
                   std::uint64_t seq) {
    cluster_.system.send(client_->id(), iagent_address(),
                         UpdateRequest{LocationEntry{agent, node, seq}},
                         UpdateRequest::kWireBytes);
    cluster_.run_for(sim::SimTime::millis(20));
  }

  void grant(Predicate predicate, std::uint64_t version,
             std::optional<platform::AgentAddress> transfer_to = std::nullopt,
             Predicate transfer_predicate = {}) {
    ResponsibilityUpdate update;
    update.version = version;
    update.predicate = std::move(predicate);
    if (transfer_to) {
      update.has_transfer = true;
      update.transfer_to = *transfer_to;
      update.transfer_predicate = std::move(transfer_predicate);
    }
    const std::size_t bytes = update.wire_bytes();
    cluster_.system.send(hagent_stub_->id(), iagent_address(),
                         std::move(update), bytes);
    cluster_.run_for(sim::SimTime::millis(20));
  }

  static Predicate top_bit(bool value) {
    Predicate predicate;
    predicate.valid_bits.emplace_back(0, value);
    predicate.compile();
    return predicate;
  }

  TestCluster cluster_;
  MechanismConfig config_;
  ScriptAgent* hagent_stub_ = nullptr;
  ScriptAgent* client_ = nullptr;
  IAgent* iagent_ = nullptr;
};

constexpr platform::AgentId kHighId = 0x8000000000000123ull;
constexpr platform::AgentId kLowId = 0x0000000000000456ull;

TEST_F(IAgentTest, RegisterThenLocate) {
  const auto result =
      rpc(RegisterRequest{LocationEntry{kHighId, 3, 1}},
          RegisterRequest::kWireBytes);
  ASSERT_TRUE(result.ok());
  const auto* ack = result.reply.body_as<UpdateAck>();
  ASSERT_NE(ack, nullptr);
  EXPECT_TRUE(ack->responsible);
  EXPECT_EQ(iagent_->entry_count(), 1u);

  const LocateReply reply = locate(kHighId);
  EXPECT_EQ(reply.status, LocateStatus::kFound);
  EXPECT_EQ(reply.node, 3u);
  EXPECT_EQ(iagent_->stats().locates, 1u);
}

TEST_F(IAgentTest, OneWayUpdateUpserts) {
  send_update(kHighId, 2, 1);
  EXPECT_EQ(locate(kHighId).node, 2u);
  send_update(kHighId, 4, 2);
  EXPECT_EQ(locate(kHighId).node, 4u);
  EXPECT_EQ(iagent_->stats().updates, 2u);
}

TEST_F(IAgentTest, ReorderedUpdatesKeepNewestLocation) {
  send_update(kHighId, 4, 2);
  send_update(kHighId, 2, 1);  // stale, must be ignored
  EXPECT_EQ(locate(kHighId).node, 4u);
}

TEST_F(IAgentTest, UnknownAgentIsUnknownAfterGrace) {
  // The bootstrap fixture never granted responsibility, so the IAgent's
  // transient grace from construction has passed after a run.
  cluster_.run_for(sim::SimTime::millis(200));
  EXPECT_EQ(locate(kHighId).status, LocateStatus::kUnknown);
  EXPECT_EQ(iagent_->stats().unknown_replies, 1u);
}

TEST_F(IAgentTest, NotResponsibleUpdateTriggersNotice) {
  grant(top_bit(true), 5);
  EXPECT_EQ(iagent_->hash_version(), 5u);
  send_update(kLowId, 2, 1);  // top bit 0: not ours
  ASSERT_EQ(client_->count<NotResponsibleNotice>(), 1u);
  const auto notice = client_->bodies<NotResponsibleNotice>().front();
  EXPECT_EQ(notice.agent, kLowId);
  EXPECT_EQ(notice.version_hint, 5u);
  EXPECT_EQ(iagent_->entry_count(), 0u);
}

TEST_F(IAgentTest, NotResponsibleLocateAndRegister) {
  grant(top_bit(true), 5);
  EXPECT_EQ(locate(kLowId).status, LocateStatus::kNotResponsible);
  const auto result = rpc(RegisterRequest{LocationEntry{kLowId, 2, 1}},
                          RegisterRequest::kWireBytes);
  const auto* ack = result.reply.body_as<UpdateAck>();
  ASSERT_NE(ack, nullptr);
  EXPECT_FALSE(ack->responsible);
  EXPECT_EQ(ack->version_hint, 5u);
}

TEST_F(IAgentTest, TransientGraceAfterResponsibilityChange) {
  grant(top_bit(true), 5);
  // Compatible but unknown, within the grace period: transient.
  EXPECT_EQ(locate(kHighId).status, LocateStatus::kTransient);
  cluster_.run_for(sim::SimTime::millis(100));  // grace is 50 ms
  EXPECT_EQ(locate(kHighId).status, LocateStatus::kUnknown);
}

TEST_F(IAgentTest, StaleGrantIgnored) {
  grant(top_bit(true), 5);
  grant(top_bit(false), 3);  // stale version: must not regress
  EXPECT_EQ(iagent_->hash_version(), 5u);
  EXPECT_EQ(locate(kLowId).status, LocateStatus::kNotResponsible);
}

TEST_F(IAgentTest, TransferHandsOffMatchingEntries) {
  send_update(kHighId, 2, 1);
  send_update(kLowId, 3, 1);
  ASSERT_EQ(iagent_->entry_count(), 2u);

  AckingScriptAgent& fresh = cluster_.system.create<AckingScriptAgent>(4);
  cluster_.run_for(sim::SimTime::millis(5));
  // Keep the top-bit=1 region; transfer top-bit=0 entries to `fresh`.
  grant(top_bit(true), 7,
        platform::AgentAddress{4, fresh.id()}, top_bit(false));
  cluster_.run_for(sim::SimTime::millis(50));

  ASSERT_EQ(fresh.count<HandoffTransfer>(), 1u);
  const auto transfer = fresh.bodies<HandoffTransfer>().front();
  ASSERT_EQ(transfer.entries.size(), 1u);
  EXPECT_EQ(transfer.entries.front().agent, kLowId);
  EXPECT_TRUE(transfer.final_batch);
  EXPECT_EQ(iagent_->entry_count(), 1u);
  // The coordinator hears a RehashDone.
  EXPECT_EQ(hagent_stub_->count<RehashDone>(), 1u);
  EXPECT_EQ(iagent_->stats().handoff_entries_out, 1u);
}

TEST_F(IAgentTest, LargeTransferShipsAsBatchChain) {
  config_.max_handoff_batch = 10;
  IAgent& big = cluster_.system.create<IAgent>(
      1, config_, platform::AgentAddress{0, hagent_stub_->id()});
  cluster_.run_for(sim::SimTime::millis(5));
  // 25 entries in the to-transfer region.
  for (std::uint64_t i = 0; i < 25; ++i) {
    cluster_.system.send(client_->id(),
                         platform::AgentAddress{1, big.id()},
                         UpdateRequest{LocationEntry{i + 1, 2, 1}},
                         UpdateRequest::kWireBytes);
  }
  cluster_.run_for(sim::SimTime::millis(100));
  ASSERT_EQ(big.entry_count(), 25u);

  AckingScriptAgent& fresh = cluster_.system.create<AckingScriptAgent>(4);
  cluster_.run_for(sim::SimTime::millis(5));
  ResponsibilityUpdate update;
  update.version = 7;
  update.predicate = top_bit(true);  // keep nothing (ids are small)
  update.has_transfer = true;
  update.transfer_to = platform::AgentAddress{4, fresh.id()};
  update.transfer_predicate = top_bit(false);
  const std::size_t bytes = update.wire_bytes();
  cluster_.system.send(hagent_stub_->id(),
                       platform::AgentAddress{1, big.id()}, update, bytes);
  cluster_.run_for(sim::SimTime::millis(200));

  // 25 entries in batches of 10: 10 + 10 + 5, only the last marked final.
  const auto batches = fresh.bodies<HandoffTransfer>();
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].entries.size(), 10u);
  EXPECT_FALSE(batches[0].final_batch);
  EXPECT_EQ(batches[1].entries.size(), 10u);
  EXPECT_FALSE(batches[1].final_batch);
  EXPECT_EQ(batches[2].entries.size(), 5u);
  EXPECT_TRUE(batches[2].final_batch);
  EXPECT_EQ(big.entry_count(), 0u);
  // RehashDone only after the whole chain was acked.
  EXPECT_EQ(hagent_stub_->count<RehashDone>(), 1u);
}

TEST_F(IAgentTest, WatchFiresOnceAndOnlyOnUpdate) {
  grant(Predicate{}, 2);
  hagent_stub_->received.clear();
  bool acked = false;
  cluster_.system.request(client_->id(), iagent_address(),
                          WatchRequest{kHighId}, WatchRequest::kWireBytes,
                          [&](platform::RpcResult result) {
                            acked = result.ok();
                          });
  cluster_.run_for(sim::SimTime::millis(20));
  EXPECT_TRUE(acked);
  EXPECT_EQ(iagent_->stats().watches_armed, 1u);

  send_update(kHighId, 3, 1);
  ASSERT_EQ(client_->count<WatchNotify>(), 1u);
  EXPECT_EQ(client_->bodies<WatchNotify>().front().entry.node, 3u);

  // One-shot: further updates do not notify again.
  send_update(kHighId, 4, 2);
  EXPECT_EQ(client_->count<WatchNotify>(), 1u);
  EXPECT_EQ(iagent_->stats().watches_fired, 1u);
}

TEST_F(IAgentTest, WatchRefusedBeyondCap) {
  config_.max_watchers_per_agent = 1;
  IAgent& capped = cluster_.system.create<IAgent>(
      1, config_, platform::AgentAddress{0, hagent_stub_->id()});
  cluster_.run_for(sim::SimTime::millis(5));
  LocateStatus second_status = LocateStatus::kFound;
  for (int i = 0; i < 2; ++i) {
    cluster_.system.request(client_->id(),
                            platform::AgentAddress{1, capped.id()},
                            WatchRequest{kHighId}, WatchRequest::kWireBytes,
                            [&, i](platform::RpcResult result) {
                              if (i == 1 && result.ok()) {
                                second_status =
                                    result.reply.body_as<LocateReply>()->status;
                              }
                            });
    cluster_.run_for(sim::SimTime::millis(20));
  }
  EXPECT_EQ(capped.stats().watches_armed, 1u);
  EXPECT_EQ(capped.stats().watches_refused, 1u);
  EXPECT_EQ(second_status, LocateStatus::kTransient);
}

TEST_F(IAgentTest, GrantWithoutTransferAcksImmediately) {
  grant(top_bit(true), 7);
  EXPECT_EQ(hagent_stub_->count<RehashDone>(), 1u);
  EXPECT_EQ(hagent_stub_->bodies<RehashDone>().front().version, 7u);
}

TEST_F(IAgentTest, HandoffTransferIncorporatesAndAcks) {
  HandoffTransfer transfer;
  transfer.entries.push_back(LocationEntry{kHighId, 5, 3});
  transfer.entries.push_back(LocationEntry{kLowId, 2, 1});
  bool acked = false;
  cluster_.system.request(client_->id(), iagent_address(), transfer,
                          transfer.wire_bytes(),
                          [&](platform::RpcResult result) {
                            acked = result.ok() &&
                                    result.reply.body_as<HandoffAck>();
                          });
  cluster_.run_for(sim::SimTime::millis(50));
  EXPECT_TRUE(acked);
  EXPECT_EQ(iagent_->entry_count(), 2u);
  EXPECT_EQ(locate(kHighId).node, 5u);
  EXPECT_EQ(iagent_->stats().handoff_entries_in, 2u);
}

TEST_F(IAgentTest, DuplicateHandoffIsIdempotent) {
  HandoffTransfer transfer;
  transfer.entries.push_back(LocationEntry{kHighId, 5, 3});
  for (int i = 0; i < 2; ++i) {
    cluster_.system.send(client_->id(), iagent_address(), transfer,
                         transfer.wire_bytes());
  }
  cluster_.run_for(sim::SimTime::millis(50));
  EXPECT_EQ(iagent_->entry_count(), 1u);
  EXPECT_EQ(iagent_->stats().handoff_entries_in, 1u);  // second is a dup
}

TEST_F(IAgentTest, RetireRoutesEntriesAndDisposes) {
  send_update(kHighId, 2, 1);
  send_update(kLowId, 3, 1);
  AckingScriptAgent& high_home = cluster_.system.create<AckingScriptAgent>(4);
  AckingScriptAgent& low_home = cluster_.system.create<AckingScriptAgent>(5);
  cluster_.run_for(sim::SimTime::millis(5));

  RetireOrder order;
  order.version = 9;
  order.routes.push_back(
      {top_bit(true), platform::AgentAddress{4, high_home.id()}});
  order.routes.push_back(
      {top_bit(false), platform::AgentAddress{5, low_home.id()}});
  const std::size_t bytes = order.wire_bytes();
  const platform::AgentId iagent_id = iagent_->id();
  cluster_.system.send(hagent_stub_->id(), iagent_address(), order, bytes);
  cluster_.run_for(sim::SimTime::millis(100));

  ASSERT_EQ(high_home.count<HandoffTransfer>(), 1u);
  EXPECT_EQ(high_home.bodies<HandoffTransfer>().front().entries.front().agent,
            kHighId);
  ASSERT_EQ(low_home.count<HandoffTransfer>(), 1u);
  EXPECT_EQ(low_home.bodies<HandoffTransfer>().front().entries.front().agent,
            kLowId);
  EXPECT_EQ(hagent_stub_->count<RehashDone>(), 1u);
  EXPECT_FALSE(cluster_.system.exists(iagent_id));
}

TEST_F(IAgentTest, RetireWithNoEntriesStillCompletes) {
  RetireOrder order;
  order.version = 9;
  const std::size_t bytes = order.wire_bytes();
  const platform::AgentId iagent_id = iagent_->id();
  cluster_.system.send(hagent_stub_->id(), iagent_address(), order, bytes);
  cluster_.run_for(sim::SimTime::millis(100));
  EXPECT_EQ(hagent_stub_->count<RehashDone>(), 1u);
  EXPECT_FALSE(cluster_.system.exists(iagent_id));
}

TEST_F(IAgentTest, RetiringAgentRejectsTraffic) {
  send_update(kHighId, 2, 1);
  AckingScriptAgent& home = cluster_.system.create<AckingScriptAgent>(4);
  cluster_.run_for(sim::SimTime::millis(5));
  RetireOrder order;
  order.version = 9;
  order.routes.push_back({Predicate{}, platform::AgentAddress{4, home.id()}});
  const std::size_t bytes = order.wire_bytes();
  cluster_.system.send(hagent_stub_->id(), iagent_address(), order, bytes);
  // Queue an update right behind the retire order; it must be refused.
  cluster_.system.send(client_->id(), iagent_address(),
                       UpdateRequest{LocationEntry{kHighId, 5, 2}},
                       UpdateRequest::kWireBytes);
  cluster_.run_for(sim::SimTime::millis(100));
  EXPECT_EQ(client_->count<NotResponsibleNotice>(), 1u);
}

TEST_F(IAgentTest, DeregisterRemovesEntry) {
  send_update(kHighId, 2, 5);
  cluster_.system.send(client_->id(), iagent_address(),
                       DeregisterRequest{kHighId, 6},
                       DeregisterRequest::kWireBytes);
  cluster_.run_for(sim::SimTime::millis(20));
  EXPECT_EQ(iagent_->entry_count(), 0u);
}

TEST_F(IAgentTest, OverloadSendsSplitRequestWithLoads) {
  // Default cooldown in the fixture is 400 ms from creation; hammer locates
  // past it. t_max = 100/s and the window is 200 ms => >20 requests/window.
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 30; ++i) {
      cluster_.system.send(client_->id(), iagent_address(),
                           LocateRequest{static_cast<platform::AgentId>(
                               0x4000000000000000ull + i)},
                           LocateRequest::kWireBytes);
    }
    cluster_.run_for(sim::SimTime::millis(100));
  }
  ASSERT_GE(hagent_stub_->count<SplitRequest>(), 1u);
  const auto request = hagent_stub_->bodies<SplitRequest>().front();
  EXPECT_GT(request.rate, config_.t_max);
  EXPECT_FALSE(request.loads.empty());
  EXPECT_GE(iagent_->stats().split_requests, 1u);
}

TEST_F(IAgentTest, IdleSendsMergeRequestAfterCooldown) {
  // t_min = 1/s; no traffic at all. After the creation cooldown (400 ms) the
  // next window roll reports rate 0 < t_min.
  cluster_.run_for(sim::SimTime::seconds(1));
  EXPECT_GE(hagent_stub_->count<MergeRequest>(), 1u);
  EXPECT_GE(iagent_->stats().merge_requests, 1u);
}

TEST_F(IAgentTest, CooldownLimitsRehashRequests) {
  cluster_.run_for(sim::SimTime::seconds(1));
  const auto early = hagent_stub_->count<MergeRequest>();
  cluster_.run_for(sim::SimTime::millis(200));  // one more window, in cooldown
  EXPECT_EQ(hagent_stub_->count<MergeRequest>(), early);
}

TEST_F(IAgentTest, MigrationCarriesTheLocationTable) {
  send_update(kHighId, 2, 1);
  send_update(kLowId, 3, 1);
  const auto size_before = iagent_->serialized_size();
  EXPECT_GT(size_before, 2048u);  // entries add to the migration image
  cluster_.system.migrate(iagent_->id(), 4);
  cluster_.run_for(sim::SimTime::millis(50));
  ASSERT_EQ(iagent_->node(), 4u);
  // The table survived the move; lookups work at the new node.
  EXPECT_EQ(iagent_->entry_count(), 2u);
  std::optional<platform::RpcResult> settled;
  cluster_.system.request(client_->id(),
                          platform::AgentAddress{4, iagent_->id()},
                          LocateRequest{kHighId}, LocateRequest::kWireBytes,
                          [&](platform::RpcResult r) { settled = r; });
  cluster_.run_for(sim::SimTime::millis(50));
  ASSERT_TRUE(settled.has_value() && settled->ok());
  EXPECT_EQ(settled->reply.body_as<LocateReply>()->node, 2u);
  // And the coordinator heard about the move.
  EXPECT_GE(hagent_stub_->count<IAgentMoved>(), 1u);
}

TEST_F(IAgentTest, LocalityMigrationFollowsEntries) {
  config_.locality_migration = true;
  IAgent& roamer = cluster_.system.create<IAgent>(
      1, config_, platform::AgentAddress{0, hagent_stub_->id()});
  cluster_.run_for(sim::SimTime::millis(5));
  // Most tracked agents sit at node 3.
  for (int i = 0; i < 8; ++i) {
    cluster_.system.send(client_->id(),
                         platform::AgentAddress{1, roamer.id()},
                         UpdateRequest{LocationEntry{
                             static_cast<platform::AgentId>(1000 + i), 3, 1}},
                         UpdateRequest::kWireBytes);
  }
  cluster_.run_for(sim::SimTime::seconds(1));
  EXPECT_EQ(roamer.node(), 3u);
  EXPECT_GE(roamer.stats().locality_migrations, 1u);
  // The coordinator was told about the move.
  ASSERT_GE(hagent_stub_->count<IAgentMoved>(), 1u);
  EXPECT_EQ(hagent_stub_->bodies<IAgentMoved>().back().node, 3u);
}

}  // namespace
}  // namespace agentloc::core
