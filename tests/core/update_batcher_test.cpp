// The opt-in update batcher (DESIGN.md §10): coalescing, threshold and timer
// flushes, newest-seq-wins semantics, and the nack → refresh → requeue cycle
// after a rehash moves responsibility away from the batch's target.

#include "core/update_batcher.hpp"

#include <gtest/gtest.h>

#include "core/hagent.hpp"
#include "core/iagent.hpp"
#include "core/lhagent.hpp"
#include "test_cluster.hpp"

namespace agentloc::core {
namespace {

using testing::TestCluster;

class UpdateBatcherTest : public ::testing::Test {
 protected:
  UpdateBatcherTest() : cluster_(4) {
    config_.stats_window = sim::SimTime::seconds(30);
    config_.rehash_cooldown = sim::SimTime::seconds(60);
    hagent_ = &cluster_.system.create<HAgent>(0, config_);
    first_iagent_ = hagent_->bootstrap(1);
    lhagent_ = &cluster_.system.create<LHAgent>(
        2, platform::AgentAddress{0, hagent_->id()}, hagent_->tree());
    cluster_.run_for(sim::SimTime::millis(10));
  }

  IAgent* iagent_of(platform::AgentId id) {
    const auto target = hagent_->tree().lookup_id(id);
    return dynamic_cast<IAgent*>(cluster_.system.find(target.iagent));
  }

  /// Split the primary copy so the id space is served by two IAgents.
  void split_primary() {
    SplitRequest request;
    request.rate = 1000;
    request.loads.push_back(AgentLoad{0x0ull, 50});
    request.loads.push_back(AgentLoad{0x8000000000000000ull, 50});
    cluster_.system.send(first_iagent_,
                         platform::AgentAddress{0, hagent_->id()}, request,
                         request.wire_bytes());
    cluster_.run_for(sim::SimTime::millis(100));
  }

  TestCluster cluster_;
  MechanismConfig config_;
  HAgent* hagent_ = nullptr;
  platform::AgentId first_iagent_ = 0;
  LHAgent* lhagent_ = nullptr;
};

TEST_F(UpdateBatcherTest, RepeatMoversCollapseToOneWireEntry) {
  lhagent_->enable_update_batching(sim::SimTime::millis(50), 32);
  const platform::AgentId mover = 0x1234ull;
  lhagent_->enqueue_update(LocationEntry{mover, 1, 1});
  lhagent_->enqueue_update(LocationEntry{mover, 2, 2});
  lhagent_->enqueue_update(LocationEntry{mover, 3, 3});
  EXPECT_EQ(lhagent_->batcher()->pending(), 1u);  // newest-wins pool

  cluster_.run_for(sim::SimTime::millis(60));  // past the flush timer
  const auto& stats = lhagent_->batcher()->stats();
  EXPECT_EQ(stats.enqueued, 3u);
  EXPECT_EQ(stats.replaced, 2u);
  EXPECT_EQ(stats.batches_sent, 1u);
  EXPECT_EQ(stats.entries_sent, 1u);

  IAgent* iagent = iagent_of(mover);
  ASSERT_NE(iagent, nullptr);
  EXPECT_EQ(iagent->entry_count(), 1u);
  EXPECT_EQ(iagent->stats().batched_updates, 1u);

  // Platform accounting: one flush, two reports that never paid for a
  // message of their own.
  EXPECT_EQ(cluster_.system.stats().batch_flushes, 1u);
  EXPECT_EQ(cluster_.system.stats().messages_coalesced, 2u);
}

TEST_F(UpdateBatcherTest, ReachingMaxEntriesFlushesImmediately) {
  lhagent_->enable_update_batching(sim::SimTime::seconds(10), 4);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    lhagent_->enqueue_update(LocationEntry{0x1000 + i, 1, 1});
  }
  // The fourth enqueue crossed the threshold: flushed without the timer.
  EXPECT_EQ(lhagent_->batcher()->pending(), 0u);
  EXPECT_EQ(lhagent_->batcher()->stats().batches_sent, 1u);

  cluster_.run_for(sim::SimTime::millis(20));
  IAgent* iagent = iagent_of(0x1001ull);
  ASSERT_NE(iagent, nullptr);
  EXPECT_EQ(iagent->entry_count(), 4u);
  // Four distinct movers in one message: three coalesced.
  EXPECT_EQ(cluster_.system.stats().messages_coalesced, 3u);
}

TEST_F(UpdateBatcherTest, TimerFlushesAPartialBatch) {
  lhagent_->enable_update_batching(sim::SimTime::millis(20), 32);
  lhagent_->enqueue_update(LocationEntry{0xaaull, 1, 1});
  lhagent_->enqueue_update(LocationEntry{0xbbull, 2, 1});
  EXPECT_EQ(lhagent_->batcher()->pending(), 2u);
  cluster_.run_for(sim::SimTime::millis(5));
  EXPECT_EQ(lhagent_->batcher()->pending(), 2u);  // timer not due yet
  cluster_.run_for(sim::SimTime::millis(30));
  EXPECT_EQ(lhagent_->batcher()->pending(), 0u);
  IAgent* iagent = iagent_of(0xaaull);
  ASSERT_NE(iagent, nullptr);
  EXPECT_EQ(iagent->entry_count(), 2u);
}

TEST_F(UpdateBatcherTest, StaleSequenceNeverOverwritesNewerPending) {
  lhagent_->enable_update_batching(sim::SimTime::millis(20), 32);
  const platform::AgentId mover = 0x77ull;
  lhagent_->enqueue_update(LocationEntry{mover, 3, 5});
  lhagent_->enqueue_update(LocationEntry{mover, 1, 3});  // reordered, stale
  cluster_.run_for(sim::SimTime::millis(30));
  // The IAgent saw exactly one entry carrying the newest sequence.
  EXPECT_EQ(lhagent_->batcher()->stats().entries_sent, 1u);
  IAgent* iagent = iagent_of(mover);
  ASSERT_NE(iagent, nullptr);
  EXPECT_EQ(iagent->entry_count(), 1u);
}

TEST_F(UpdateBatcherTest, NackRefreshesCopyAndRedeliversEntries) {
  lhagent_->enable_update_batching(sim::SimTime::millis(20), 32);
  split_primary();
  ASSERT_EQ(hagent_->iagent_count(), 2u);
  EXPECT_EQ(lhagent_->known_iagents(), 1u);  // secondary copy is stale

  // This id now belongs to the post-split IAgent, but the stale copy routes
  // its batch to the bootstrap one, which must refuse it.
  const platform::AgentId mover = 0x8000000000000001ull;
  lhagent_->enqueue_update(LocationEntry{mover, 3, 1});
  cluster_.run_for(sim::SimTime::millis(200));

  EXPECT_GE(lhagent_->stats().update_nacks, 1u);
  EXPECT_GE(lhagent_->batcher()->stats().requeued, 1u);
  EXPECT_EQ(lhagent_->known_iagents(), 2u);  // the nack forced a refresh

  // After the refresh the requeued entry reached the right IAgent.
  IAgent* owner = iagent_of(mover);
  ASSERT_NE(owner, nullptr);
  EXPECT_NE(owner->id(), first_iagent_);
  EXPECT_EQ(owner->entry_count(), 1u);
}

}  // namespace
}  // namespace agentloc::core
