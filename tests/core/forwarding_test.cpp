// Unit tests of the Voyager-style baseline's moving parts: the per-node
// ForwarderAgent's pointer/presence bookkeeping and the chase protocol's
// edge cases (the end-to-end behaviour is covered in scheme_test).

#include "core/forwarding_scheme.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "test_cluster.hpp"

namespace agentloc::core {
namespace {

using testing::ScriptAgent;
using testing::TestCluster;

class ForwarderTest : public ::testing::Test {
 protected:
  ForwarderTest() : cluster_(4) {
    forwarder_ = &cluster_.system.create<ForwarderAgent>(1);
    client_ = &cluster_.system.create<ScriptAgent>(0);
    cluster_.run_for(sim::SimTime::millis(5));
  }

  platform::AgentAddress forwarder_address() const {
    return platform::AgentAddress{1, forwarder_->id()};
  }

  ChaseReply chase(platform::AgentId target) {
    std::optional<platform::RpcResult> settled;
    cluster_.system.request(client_->id(), forwarder_address(),
                            ChaseRequest{target}, ChaseRequest::kWireBytes,
                            [&](platform::RpcResult r) { settled = r; });
    cluster_.run_for(sim::SimTime::millis(50));
    EXPECT_TRUE(settled.has_value() && settled->ok());
    const auto* reply =
        settled ? settled->reply.body_as<ChaseReply>() : nullptr;
    EXPECT_NE(reply, nullptr);
    return reply != nullptr ? *reply : ChaseReply{};
  }

  void send_presence(platform::AgentId agent, bool here, std::uint64_t seq) {
    cluster_.system.send(client_->id(), forwarder_address(),
                         PresenceNotice{agent, here, seq},
                         PresenceNotice::kWireBytes);
    cluster_.run_for(sim::SimTime::millis(10));
  }

  void send_forward(platform::AgentId agent, net::NodeId next,
                    std::uint64_t seq) {
    cluster_.system.send(client_->id(), forwarder_address(),
                         SetForward{agent, next, seq},
                         SetForward::kWireBytes);
    cluster_.run_for(sim::SimTime::millis(10));
  }

  TestCluster cluster_;
  ForwarderAgent* forwarder_ = nullptr;
  ScriptAgent* client_ = nullptr;
};

TEST_F(ForwarderTest, UnknownAgentIsUnknown) {
  EXPECT_EQ(chase(42).kind, ChaseReply::Kind::kUnknown);
  EXPECT_EQ(forwarder_->pointer_count(), 0u);
}

TEST_F(ForwarderTest, PresenceMakesAgentHere) {
  send_presence(42, true, 1);
  const ChaseReply reply = chase(42);
  EXPECT_EQ(reply.kind, ChaseReply::Kind::kHere);
  EXPECT_EQ(reply.next, 1u);  // the forwarder's own node
  EXPECT_EQ(forwarder_->pointer_count(), 1u);
}

TEST_F(ForwarderTest, ForwardPointsToNextHop) {
  send_presence(42, true, 1);
  send_forward(42, 3, 2);
  const ChaseReply reply = chase(42);
  EXPECT_EQ(reply.kind, ChaseReply::Kind::kForward);
  EXPECT_EQ(reply.next, 3u);
}

TEST_F(ForwarderTest, StaleMessagesIgnoredBySequence) {
  send_forward(42, 3, 5);
  // A reordered, older presence must not resurrect "here".
  send_presence(42, true, 4);
  EXPECT_EQ(chase(42).kind, ChaseReply::Kind::kForward);
  // But a newer presence wins.
  send_presence(42, true, 6);
  EXPECT_EQ(chase(42).kind, ChaseReply::Kind::kHere);
}

TEST_F(ForwarderTest, RetractedPresenceWithoutForwardIsUnknown) {
  send_presence(42, true, 1);
  send_presence(42, false, 2);  // deregistered, no forwarding pointer
  EXPECT_EQ(chase(42).kind, ChaseReply::Kind::kUnknown);
}

TEST_F(ForwarderTest, TracksManyAgentsIndependently) {
  send_presence(1, true, 1);
  send_forward(2, 0, 1);
  send_presence(3, true, 1);
  EXPECT_EQ(forwarder_->pointer_count(), 3u);
  EXPECT_EQ(chase(1).kind, ChaseReply::Kind::kHere);
  EXPECT_EQ(chase(2).kind, ChaseReply::Kind::kForward);
  EXPECT_EQ(chase(3).kind, ChaseReply::Kind::kHere);
}

// --- whole-scheme edge cases -------------------------------------------------

namespace {
class Probe : public platform::Agent {
 public:
  explicit Probe(LocationScheme& scheme) : scheme_(scheme) {}
  void on_start() override {
    scheme_.register_agent(*this, [](bool) {});
  }
  void on_arrival(net::NodeId) override {
    scheme_.update_location(*this, [](bool) {});
  }

 private:
  LocationScheme& scheme_;
};
}  // namespace

TEST(ForwardingScheme, DepartedAgentYieldsStaleAnswer) {
  // Documented baseline weakness: an agent that dies without deregistering
  // leaves its presence marker behind, so the chase reports its last node —
  // a stale "found". (The requester discovers the truth only on contact.)
  TestCluster cluster(4);
  MechanismConfig config;
  ForwardingLocationScheme scheme(cluster.system, config);
  cluster.run_for(sim::SimTime::millis(10));
  Probe& target = cluster.system.create<Probe>(1, scheme);
  Probe& requester = cluster.system.create<Probe>(0, scheme);
  cluster.run_for(sim::SimTime::millis(50));
  const auto target_id = target.id();  // target is destroyed by the dispose
  cluster.system.dispose(target_id);   // crash: no deregistration
  cluster.run_for(sim::SimTime::millis(20));

  std::optional<LocateOutcome> outcome;
  scheme.locate(requester, target_id,
                [&](const LocateOutcome& o) { outcome = o; });
  cluster.run_for(sim::SimTime::seconds(10));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->found);  // stale!
  EXPECT_EQ(outcome->node, 1u);
  EXPECT_FALSE(cluster.system.exists(target_id));
}

TEST(ForwardingScheme, CleanDeregistrationYieldsNotFound) {
  TestCluster cluster(4);
  MechanismConfig config;
  config.rpc_timeout = sim::SimTime::millis(200);
  config.transient_retry_delay = sim::SimTime::millis(5);
  ForwardingLocationScheme scheme(cluster.system, config);
  cluster.run_for(sim::SimTime::millis(10));
  Probe& target = cluster.system.create<Probe>(1, scheme);
  Probe& requester = cluster.system.create<Probe>(0, scheme);
  cluster.run_for(sim::SimTime::millis(50));
  scheme.deregister_agent(target);
  cluster.run_for(sim::SimTime::millis(50));
  cluster.system.dispose(target.id());

  std::optional<LocateOutcome> outcome;
  scheme.locate(requester, target.id(),
                [&](const LocateOutcome& o) { outcome = o; });
  cluster.run_for(sim::SimTime::seconds(10));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->found);
}

TEST(ForwardingScheme, ChaseHopsAccumulateAcrossMoves) {
  TestCluster cluster(4);
  MechanismConfig config;
  ForwardingLocationScheme scheme(cluster.system, config);
  cluster.run_for(sim::SimTime::millis(10));
  Probe& target = cluster.system.create<Probe>(1, scheme);
  Probe& requester = cluster.system.create<Probe>(0, scheme);
  cluster.run_for(sim::SimTime::millis(50));
  // Two moves without any locate in between: the chain is 1 -> 2 -> 3 and
  // the name service still records the birth node 1.
  for (const net::NodeId node : {2u, 3u}) {
    cluster.system.migrate(target.id(), node);
    cluster.run_for(sim::SimTime::millis(30));
  }
  std::optional<LocateOutcome> outcome;
  scheme.locate(requester, target.id(),
                [&](const LocateOutcome& o) { outcome = o; });
  cluster.run_for(sim::SimTime::seconds(10));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->found);
  EXPECT_EQ(outcome->node, 3u);
  EXPECT_EQ(scheme.chase_hops(), 2u);
}

}  // namespace
}  // namespace agentloc::core
