#include "core/protocol.hpp"

#include <gtest/gtest.h>

#include "core/tracker_table.hpp"
#include "util/rng.hpp"

namespace agentloc::core {
namespace {

// Wire sizes feed the network latency model; they must be plausible (no
// zero-byte messages, payload-bearing messages scale with their payload).

TEST(Protocol, FixedWireSizesArePlausible) {
  EXPECT_GE(RegisterRequest::kWireBytes, 24u);
  EXPECT_GE(UpdateRequest::kWireBytes, 24u);
  EXPECT_GE(UpdateAck::kWireBytes, 16u);
  EXPECT_GE(LocateRequest::kWireBytes, 16u);
  EXPECT_GE(LocateReply::kWireBytes, 16u);
  EXPECT_GE(NotResponsibleNotice::kWireBytes, 16u);
  EXPECT_GE(DeregisterRequest::kWireBytes, 16u);
  EXPECT_GE(WatchRequest::kWireBytes, 16u);
  EXPECT_GE(WatchNotify::kWireBytes, 24u);
  EXPECT_GE(HashPullRequest::kWireBytes, 16u);
  EXPECT_GE(RehashDone::kWireBytes, 16u);
  EXPECT_GE(IAgentMoved::kWireBytes, 16u);
  EXPECT_GE(PromoteRequest::kWireBytes, 8u);
}

TEST(Protocol, VariableWireSizesScaleWithContent) {
  SplitRequest small;
  small.loads.push_back(AgentLoad{1, 1});
  SplitRequest big = small;
  for (int i = 0; i < 100; ++i) big.loads.push_back(AgentLoad{2, 2});
  EXPECT_GT(big.wire_bytes(), small.wire_bytes() + 1000);

  HandoffTransfer empty;
  HandoffTransfer full;
  for (int i = 0; i < 50; ++i) full.entries.push_back(LocationEntry{});
  EXPECT_GT(full.wire_bytes(), empty.wire_bytes() + 900);

  HashPullReply reply;
  EXPECT_EQ(reply.wire_bytes(), 16u);
  reply.payload.assign(500, 0);
  EXPECT_EQ(reply.wire_bytes(), 516u);

  ResponsibilityUpdate update;
  const auto bare = update.wire_bytes();
  for (std::uint32_t i = 0; i < 20; ++i) {
    update.predicate.valid_bits.emplace_back(i, false);
  }
  EXPECT_GT(update.wire_bytes(), bare + 50);

  RetireOrder order;
  const auto no_routes = order.wire_bytes();
  order.routes.resize(5);
  EXPECT_GT(order.wire_bytes(), no_routes + 50);
}

// Predicate extraction must partition the id space for arbitrary trees, not
// just the paper's example (see also tracker_table_test for Figure 1).

class PredicatePartition : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PredicatePartition, RandomTreesPartitionIdSpace) {
  util::Rng rng(GetParam());
  hashtree::HashTree tree(1, 0);
  hashtree::IAgentId next = 2;
  for (int step = 0; step < 40; ++step) {
    const auto leaves = tree.leaves();
    const auto victim = leaves[rng.next_below(leaves.size())];
    if (rng.chance(0.7) || tree.leaf_count() == 1) {
      tree.simple_split(victim, 1 + rng.next_below(3), next++, 0);
    } else {
      tree.merge(victim);
    }
  }

  std::vector<std::pair<hashtree::IAgentId, Predicate>> predicates;
  for (const auto leaf : tree.leaves()) {
    predicates.emplace_back(leaf, predicate_of(tree, leaf));
  }
  for (int i = 0; i < 300; ++i) {
    const platform::AgentId id = rng.next();
    const auto owner = tree.lookup_id(id).iagent;
    std::size_t matches = 0;
    for (const auto& [leaf, predicate] : predicates) {
      if (predicate.matches(id)) {
        ++matches;
        ASSERT_EQ(leaf, owner);
      }
    }
    ASSERT_EQ(matches, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicatePartition,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace agentloc::core
