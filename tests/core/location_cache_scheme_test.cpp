// End-to-end tests of the location cache wired through HashLocationScheme
// (DESIGN.md §12): the optimistic jump, its stale-miss fallback, every
// deposit/invalidation source, singleflight coalescing, and — the contract
// the whole feature rests on — fixed-seed outcome equivalence between
// cache-on and cache-off runs.

#include <gtest/gtest.h>

#include <optional>
#include <tuple>
#include <vector>

#include "core/hash_scheme.hpp"
#include "test_cluster.hpp"

namespace agentloc::core {
namespace {

using testing::TestCluster;

/// A tracked agent whose moves the test controls (same shape as the
/// scheme_test one; each test TU keeps its own copy).
class Trackee : public platform::Agent {
 public:
  explicit Trackee(LocationScheme& scheme) : scheme_(scheme) {}

  std::string kind() const override { return "trackee"; }

  void on_start() override {
    scheme_.register_agent(*this, [this](bool ok) { registered = ok; });
  }

  void on_arrival(net::NodeId) override {
    scheme_.update_location(*this, [](bool) {});
  }

  void on_message(const platform::Message& message) override {
    scheme_.handle_agent_message(*this, message);
  }

  void on_delivery_failure(const platform::DeliveryFailure& failure) override {
    scheme_.handle_delivery_failure(*this, failure);
  }

  bool registered = false;

 private:
  LocationScheme& scheme_;
};

class CacheSchemeTest : public ::testing::Test {
 protected:
  CacheSchemeTest() : cluster_(8) {
    config_.stats_window = sim::SimTime::millis(500);
    config_.rehash_cooldown = sim::SimTime::seconds(1);
    config_.t_max = 40.0;
    config_.t_min = 0.0;
    config_.location_cache.enabled = true;
    // The locate() helper advances sim time 15 s per call; keep bindings
    // alive across calls unless a test explicitly shortens the TTL.
    config_.location_cache.ttl = sim::SimTime::seconds(60);
  }

  void make_scheme() {
    scheme_ = std::make_unique<HashLocationScheme>(cluster_.system, config_);
  }

  Trackee& spawn(net::NodeId node) {
    Trackee& agent = cluster_.system.create<Trackee>(node, *scheme_);
    cluster_.run_for(sim::SimTime::millis(20));
    return agent;
  }

  LocateOutcome locate(Trackee& requester, platform::AgentId target) {
    std::optional<LocateOutcome> outcome;
    scheme_->locate(requester, target,
                    [&](const LocateOutcome& o) { outcome = o; });
    cluster_.run_for(sim::SimTime::seconds(15));
    EXPECT_TRUE(outcome.has_value());
    return outcome.value_or(LocateOutcome{});
  }

  void move(Trackee& agent, net::NodeId to) {
    cluster_.system.migrate(agent.id(), to);
    cluster_.run_for(sim::SimTime::millis(30));
  }

  TestCluster cluster_;
  MechanismConfig config_;
  std::unique_ptr<HashLocationScheme> scheme_;
};

TEST_F(CacheSchemeTest, DisabledByDefault) {
  config_.location_cache.enabled = false;
  make_scheme();
  Trackee& target = spawn(3);
  Trackee& requester = spawn(5);
  EXPECT_TRUE(locate(requester, target.id()).found);
  EXPECT_TRUE(locate(requester, target.id()).found);
  const SchemeStats& stats = scheme_->stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 0u);
  EXPECT_EQ(stats.optimistic_locates, 0u);
  EXPECT_EQ(scheme_->lhagent(5).location_cache(), nullptr);
}

TEST_F(CacheSchemeTest, RepeatLocateSkipsTheIAgent) {
  make_scheme();
  Trackee& target = spawn(3);
  Trackee& requester = spawn(5);

  const LocateOutcome first = locate(requester, target.id());
  EXPECT_TRUE(first.found);
  EXPECT_EQ(first.node, 3u);
  const auto rpcs_after_first = scheme_->stats().locate_rpcs;

  // The reply deposited the binding at node 5; the repeat verifies at node 3
  // directly and never touches the IAgent.
  const LocateOutcome second = locate(requester, target.id());
  EXPECT_TRUE(second.found);
  EXPECT_EQ(second.node, 3u);
  const SchemeStats& stats = scheme_->stats();
  EXPECT_EQ(stats.locate_rpcs, rpcs_after_first);
  EXPECT_EQ(stats.optimistic_locates, 1u);
  EXPECT_GE(stats.cache_hits, 1u);
}

TEST_F(CacheSchemeTest, StaleBindingFallsBackToAuthority) {
  make_scheme();
  Trackee& target = spawn(3);
  Trackee& requester = spawn(5);
  ASSERT_TRUE(locate(requester, target.id()).found);

  // The cached binding now points at node 3; the move makes it stale.
  move(target, 6);
  const LocateOutcome outcome = locate(requester, target.id());
  EXPECT_TRUE(outcome.found);
  EXPECT_EQ(outcome.node, 6u);  // the fallback returned the fresh answer
  EXPECT_GE(scheme_->stats().cache_stale_hits, 1u);
}

TEST_F(CacheSchemeTest, MoverReportSeedsItsNodesCache) {
  make_scheme();
  Trackee& target = spawn(3);
  Trackee& requester = spawn(5);
  // The arrival report at node 5 deposits the binding there for free: the
  // co-located requester's *first* locate is already an optimistic hit.
  move(target, 5);
  const LocateOutcome outcome = locate(requester, target.id());
  EXPECT_TRUE(outcome.found);
  EXPECT_EQ(outcome.node, 5u);
  EXPECT_GE(scheme_->stats().optimistic_locates, 1u);
  EXPECT_EQ(scheme_->stats().locate_rpcs, 0u);
}

TEST_F(CacheSchemeTest, BatchedUpdatesSeedTheCacheToo) {
  config_.update_batching = true;
  make_scheme();
  Trackee& target = spawn(3);
  Trackee& requester = spawn(5);
  move(target, 5);
  cluster_.run_for(sim::SimTime::seconds(1));  // let the batch flush
  const LocateOutcome outcome = locate(requester, target.id());
  EXPECT_TRUE(outcome.found);
  EXPECT_EQ(outcome.node, 5u);
  EXPECT_GE(scheme_->stats().optimistic_locates, 1u);
}

TEST_F(CacheSchemeTest, WatchNotifyDepositsTheCarriedBinding) {
  make_scheme();
  Trackee& target = spawn(3);
  Trackee& watcher = spawn(5);
  std::optional<HashLocationScheme::WatchOutcome> fired;
  scheme_->watch(watcher, target.id(),
                 [&](const HashLocationScheme::WatchOutcome& o) { fired = o; });
  cluster_.run_for(sim::SimTime::millis(50));
  move(target, 6);
  ASSERT_TRUE(fired.has_value());
  ASSERT_TRUE(fired->fired);

  const auto rpcs_before = scheme_->stats().locate_rpcs;
  const LocateOutcome outcome = locate(watcher, target.id());
  EXPECT_TRUE(outcome.found);
  EXPECT_EQ(outcome.node, 6u);
  EXPECT_EQ(scheme_->stats().locate_rpcs, rpcs_before);
  EXPECT_GE(scheme_->stats().optimistic_locates, 1u);
}

TEST_F(CacheSchemeTest, DeregisteredTargetNotFoundDespiteCachedBinding) {
  make_scheme();
  Trackee& target = spawn(3);
  Trackee& requester = spawn(5);
  const platform::AgentId id = target.id();
  ASSERT_TRUE(locate(requester, id).found);  // binding cached at node 5

  scheme_->deregister_agent(target);
  cluster_.run_for(sim::SimTime::millis(50));
  cluster_.system.dispose(id);

  // The verify probe at node 3 refutes the stale binding; the authoritative
  // fallback answers unknown. Never a wrong answer from the cache.
  const LocateOutcome outcome = locate(requester, id);
  EXPECT_FALSE(outcome.found);
  EXPECT_GE(scheme_->stats().cache_stale_hits, 1u);
}

TEST_F(CacheSchemeTest, TtlExpiryForcesAuthoritativeRefetch) {
  config_.location_cache.ttl = sim::SimTime::millis(200);
  make_scheme();
  Trackee& target = spawn(3);
  Trackee& requester = spawn(5);
  ASSERT_TRUE(locate(requester, target.id()).found);
  const auto optimistic_before = scheme_->stats().optimistic_locates;

  // locate() already ran the clock far past the TTL; the binding is gone.
  const LocateOutcome outcome = locate(requester, target.id());
  EXPECT_TRUE(outcome.found);
  EXPECT_EQ(scheme_->stats().optimistic_locates, optimistic_before);
  EXPECT_GE(scheme_->stats().cache_misses, 1u);
}

TEST_F(CacheSchemeTest, NegativeEntryShortCircuitsRepeatMisses) {
  config_.location_cache.negative_entries = true;
  make_scheme();
  spawn(3);
  Trackee& requester = spawn(5);
  const platform::AgentId ghost = 0xabadcafe12345678ull;

  const LocateOutcome first = locate(requester, ghost);
  EXPECT_FALSE(first.found);
  const auto rpcs_after_first = scheme_->stats().locate_rpcs;

  const LocateOutcome second = locate(requester, ghost);
  EXPECT_FALSE(second.found);
  EXPECT_EQ(second.attempts, 0);  // answered from the negative entry
  EXPECT_EQ(scheme_->stats().locate_rpcs, rpcs_after_first);
}

TEST_F(CacheSchemeTest, UnverifiedModeServesCachedNodeWithinTtl) {
  // optimistic_jump off: bounded-staleness mode. Within the TTL the cache
  // answers directly — even a node the target already left.
  config_.location_cache.optimistic_jump = false;
  make_scheme();
  Trackee& target = spawn(3);
  Trackee& requester = spawn(5);
  ASSERT_TRUE(locate(requester, target.id()).found);
  move(target, 6);
  const LocateOutcome outcome = locate(requester, target.id());
  EXPECT_TRUE(outcome.found);
  EXPECT_EQ(outcome.node, 3u);  // stale by construction, within the TTL bound
  EXPECT_EQ(outcome.attempts, 0);
}

TEST_F(CacheSchemeTest, SingleflightCoalescesConcurrentLocates) {
  config_.location_cache.enabled = false;
  config_.locate_singleflight = true;
  make_scheme();
  Trackee& target = spawn(3);
  Trackee& requester_a = spawn(5);
  Trackee& requester_b = spawn(5);

  std::vector<LocateOutcome> outcomes;
  for (int i = 0; i < 2; ++i) {
    scheme_->locate(requester_a, target.id(),
                    [&](const LocateOutcome& o) { outcomes.push_back(o); });
    scheme_->locate(requester_b, target.id(),
                    [&](const LocateOutcome& o) { outcomes.push_back(o); });
  }
  cluster_.run_for(sim::SimTime::seconds(5));

  ASSERT_EQ(outcomes.size(), 4u);
  for (const LocateOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.found);
    EXPECT_EQ(outcome.node, 3u);
  }
  // One wire RPC served all four same-node waiters.
  EXPECT_EQ(scheme_->stats().locate_rpcs, 1u);
  EXPECT_EQ(scheme_->stats().locates_coalesced, 3u);
}

TEST_F(CacheSchemeTest, SingleflightKeysOnRequesterNode) {
  config_.location_cache.enabled = false;
  config_.locate_singleflight = true;
  make_scheme();
  Trackee& target = spawn(3);
  Trackee& requester_a = spawn(5);
  Trackee& requester_b = spawn(6);  // different node: no coalescing

  int completed = 0;
  scheme_->locate(requester_a, target.id(),
                  [&](const LocateOutcome&) { ++completed; });
  scheme_->locate(requester_b, target.id(),
                  [&](const LocateOutcome&) { ++completed; });
  cluster_.run_for(sim::SimTime::seconds(5));
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(scheme_->stats().locate_rpcs, 2u);
  EXPECT_EQ(scheme_->stats().locates_coalesced, 0u);
}

// --- fixed-seed equivalence -------------------------------------------------

using Triple = std::tuple<platform::AgentId, bool, net::NodeId>;

struct ScenarioResult {
  std::vector<Triple> outcomes;
  SchemeStats stats;
};

/// One deterministic churn-then-query scenario: targets move through a fixed
/// itinerary with locates interleaved, then hold still for a final query
/// sweep. The interleaved AND final (target, found, node) triples must not
/// depend on whether the cache is on — every optimistic answer is verified
/// at the node itself, and every refuted one falls back to the authority.
ScenarioResult run_scenario(MechanismConfig config) {
  TestCluster cluster(8);
  HashLocationScheme scheme(cluster.system, config);
  auto settle = [&](sim::SimTime span) {
    cluster.simulator.run_until(cluster.simulator.now() + span);
  };

  std::vector<Trackee*> targets;
  for (net::NodeId node = 1; node <= 3; ++node) {
    targets.push_back(&cluster.system.create<Trackee>(node, scheme));
  }
  std::vector<Trackee*> requesters;
  for (net::NodeId node = 4; node <= 5; ++node) {
    requesters.push_back(&cluster.system.create<Trackee>(node, scheme));
  }
  settle(sim::SimTime::millis(100));

  ScenarioResult result;
  auto locate_all = [&] {
    for (Trackee* requester : requesters) {
      for (Trackee* target : targets) {
        std::optional<LocateOutcome> outcome;
        scheme.locate(*requester, target->id(),
                      [&](const LocateOutcome& o) { outcome = o; });
        settle(sim::SimTime::seconds(10));
        EXPECT_TRUE(outcome.has_value());
        const LocateOutcome o = outcome.value_or(LocateOutcome{});
        result.outcomes.emplace_back(target->id(), o.found, o.node);
      }
    }
  };

  locate_all();  // cold caches
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const auto to = static_cast<net::NodeId>((2 * round + 3 * i + 1) % 8);
      cluster.system.migrate(targets[i]->id(), to);
      settle(sim::SimTime::millis(50));
    }
    locate_all();  // warm (and partially stale) caches
  }
  result.stats = scheme.stats();
  return result;
}

TEST(CacheEquivalenceTest, FixedSeedOutcomesMatchCacheOnAndOff) {
  MechanismConfig config;
  config.stats_window = sim::SimTime::millis(500);
  config.rehash_cooldown = sim::SimTime::seconds(1);
  config.t_max = 40.0;
  config.t_min = 0.0;

  MechanismConfig cached = config;
  cached.location_cache.enabled = true;
  cached.location_cache.ttl = sim::SimTime::seconds(600);  // outlives the run

  const ScenarioResult off = run_scenario(config);
  const ScenarioResult on = run_scenario(cached);

  // Same locate outcomes, element for element.
  ASSERT_EQ(off.outcomes.size(), on.outcomes.size());
  for (std::size_t i = 0; i < off.outcomes.size(); ++i) {
    EXPECT_EQ(off.outcomes[i], on.outcomes[i]) << "locate #" << i;
  }
  EXPECT_EQ(off.stats.locates_found, on.stats.locates_found);
  EXPECT_EQ(off.stats.locates_failed, on.stats.locates_failed);

  // ...and the cached run really did use the cache to get there.
  EXPECT_GT(on.stats.cache_hits, 0u);
  EXPECT_GT(on.stats.optimistic_locates, 0u);
  EXPECT_GT(on.stats.cache_stale_hits, 0u);  // the moves made some stale
  EXPECT_LT(on.stats.locate_rpcs, off.stats.locate_rpcs);
  EXPECT_EQ(off.stats.cache_hits, 0u);
  EXPECT_EQ(off.stats.optimistic_locates, 0u);
}

}  // namespace
}  // namespace agentloc::core
