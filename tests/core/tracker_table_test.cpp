#include "core/tracker_table.hpp"

#include <gtest/gtest.h>

#include "hashtree/paper_figures.hpp"
#include "util/rng.hpp"

namespace agentloc::core {
namespace {

TEST(LocationTable, ApplyAndFind) {
  LocationTable table;
  EXPECT_TRUE(table.apply(LocationEntry{1, 5, 1}));
  const auto entry = table.find(1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->node, 5u);
  EXPECT_EQ(entry->seq, 1u);
  EXPECT_FALSE(table.find(2).has_value());
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.contains(1));
}

TEST(LocationTable, MillionEntryGrowthReservedAndIncrementalAgree) {
  // Million-agent capacity path (DESIGN.md §15): a reserved table and one
  // growing through every rehash must answer identically, and the byte
  // accounting must track the allocation.
  constexpr std::uint64_t kEntries = 1'000'000;
  LocationTable reserved;
  reserved.reserve(kEntries);
  const std::size_t reserved_bytes = reserved.resident_bytes();
  EXPECT_GT(reserved_bytes, kEntries * sizeof(LocationEntry) / 2);

  LocationTable incremental;
  util::Rng rng(7);
  for (std::uint64_t i = 1; i <= kEntries; ++i) {
    const auto node = static_cast<net::NodeId>(rng.next_below(1024));
    const LocationEntry entry{i, node, /*seq=*/1};
    ASSERT_TRUE(reserved.apply(entry));
    ASSERT_TRUE(incremental.apply(entry));
  }
  EXPECT_EQ(reserved.size(), kEntries);
  EXPECT_EQ(incremental.size(), kEntries);
  EXPECT_EQ(reserved.resident_bytes(), reserved_bytes);  // reserve held
  EXPECT_GE(incremental.resident_bytes(), reserved_bytes);

  // Spot-check across the id range: both tables, same node, stale updates
  // still refused after every rehash.
  for (std::uint64_t i = 1; i <= kEntries; i += 99991) {
    const auto in_reserved = reserved.find(i);
    const auto in_incremental = incremental.find(i);
    ASSERT_TRUE(in_reserved.has_value());
    ASSERT_TRUE(in_incremental.has_value());
    EXPECT_EQ(in_reserved->node, in_incremental->node);
    EXPECT_FALSE(incremental.apply(LocationEntry{i, 0, 1}));  // duplicate seq
  }
}

TEST(LocationTable, StaleSequenceRejected) {
  LocationTable table;
  table.apply(LocationEntry{1, 5, 3});
  EXPECT_FALSE(table.apply(LocationEntry{1, 9, 2}));
  EXPECT_FALSE(table.apply(LocationEntry{1, 9, 3}));  // equal seq = duplicate
  EXPECT_EQ(table.find(1)->node, 5u);
  EXPECT_TRUE(table.apply(LocationEntry{1, 9, 4}));
  EXPECT_EQ(table.find(1)->node, 9u);
}

TEST(LocationTable, RemoveHonorsSequence) {
  LocationTable table;
  table.apply(LocationEntry{1, 5, 3});
  EXPECT_FALSE(table.remove(1, 2));  // stale deregister
  EXPECT_TRUE(table.contains(1));
  EXPECT_TRUE(table.remove(1, 3));
  EXPECT_FALSE(table.contains(1));
  EXPECT_FALSE(table.remove(1, 4));  // already gone
}

TEST(LocationTable, ExtractMatchingPartitions) {
  LocationTable table;
  // Predicate: bit 0 == 1 (ids with the top bit set).
  Predicate top_bit;
  top_bit.valid_bits.emplace_back(0, true);
  top_bit.compile();
  table.apply(LocationEntry{0x8000000000000001ull, 1, 1});
  table.apply(LocationEntry{0x0000000000000001ull, 2, 1});
  table.apply(LocationEntry{0xffffffffffffffffull, 3, 1});
  const auto moved = table.extract_matching(top_bit);
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.contains(0x0000000000000001ull));
}

TEST(LocationTable, ExtractMatchingEquivalentToPerEntryScan) {
  // The single-pass bulk extraction must move exactly the entries a
  // per-entry `matches` scan would, whatever the table's probe layout.
  util::Rng rng(31);
  for (int round = 0; round < 20; ++round) {
    LocationTable table;
    std::vector<LocationEntry> all;
    const std::size_t population = 1 + rng.next_below(200);
    for (std::size_t i = 0; i < population; ++i) {
      const LocationEntry entry{rng.next() | 1, // never kNoAgent
                                static_cast<net::NodeId>(rng.next_below(8)),
                                1};
      if (table.apply(entry)) all.push_back(entry);
    }
    Predicate predicate;
    predicate.valid_bits.emplace_back(rng.next_below(4), rng.chance(0.5));
    predicate.valid_bits.emplace_back(4 + rng.next_below(4), rng.chance(0.5));
    predicate.compile();

    std::size_t expected_moved = 0;
    for (const LocationEntry& entry : all) {
      expected_moved += predicate.matches(entry.agent);
    }
    const auto moved = table.extract_matching(predicate);
    EXPECT_EQ(moved.size(), expected_moved);
    EXPECT_EQ(table.size(), all.size() - expected_moved);
    for (const LocationEntry& entry : moved) {
      EXPECT_TRUE(predicate.matches(entry.agent));
      EXPECT_FALSE(table.contains(entry.agent));
    }
    for (const LocationEntry& entry : all) {
      if (!predicate.matches(entry.agent)) {
        EXPECT_EQ(table.find(entry.agent)->node, entry.node);
      }
    }
  }
}

TEST(LocationTable, DrainPartitionSplitsByFirstMatchingRoute) {
  LocationTable table;
  Predicate top_set;  // bit 0 == 1
  top_set.valid_bits.emplace_back(0, true);
  top_set.compile();
  Predicate all;  // matches everything (a root leaf's predicate)
  all.compile();

  table.apply(LocationEntry{0x8000000000000001ull, 1, 1});
  table.apply(LocationEntry{0x0000000000000001ull, 2, 1});
  table.apply(LocationEntry{0xffffffffffffffffull, 3, 1});

  const auto batches = table.drain_partition({top_set, all});
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].size(), 2u);  // first match wins: top-bit entries
  EXPECT_EQ(batches[1].size(), 1u);
  EXPECT_EQ(batches[1][0].agent, 0x0000000000000001ull);
  EXPECT_EQ(table.size(), 0u);
}

TEST(LocationTable, ExtractAllEmpties) {
  LocationTable table;
  table.apply(LocationEntry{1, 1, 1});
  table.apply(LocationEntry{2, 2, 1});
  const auto all = table.extract_all();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(LocationTable, SnapshotDoesNotMutate) {
  LocationTable table;
  table.apply(LocationEntry{1, 1, 1});
  EXPECT_EQ(table.snapshot().size(), 1u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(Predicate, EmptyMatchesEverything) {
  Predicate predicate;
  EXPECT_TRUE(predicate.matches(0));
  EXPECT_TRUE(predicate.matches(0xdeadbeefull));
}

TEST(Predicate, ChecksBitsAtPositions) {
  Predicate predicate;
  predicate.valid_bits.emplace_back(0, true);
  predicate.valid_bits.emplace_back(63, false);
  predicate.compile();
  EXPECT_TRUE(predicate.matches(0x8000000000000000ull));
  EXPECT_FALSE(predicate.matches(0x8000000000000001ull));  // bit 63 = 1
  EXPECT_FALSE(predicate.matches(0x0000000000000000ull));  // bit 0 = 0
}

TEST(Predicate, PositionsBeyond64ReadAsZero) {
  Predicate predicate;
  predicate.valid_bits.emplace_back(70, false);
  predicate.compile();
  EXPECT_TRUE(predicate.matches(0xffffffffffffffffull));
  predicate.valid_bits.back().second = true;
  predicate.compile();
  EXPECT_FALSE(predicate.matches(0xffffffffffffffffull));
}

TEST(Predicate, CompiledMatchesScanOnRandomPredicates) {
  // The compiled (mask, value) fast path must agree with the wire-form scan
  // on every predicate shape: in-range and out-of-range positions,
  // duplicates (agreeing and conflicting), and empty.
  util::Rng rng(2024);
  for (int round = 0; round < 200; ++round) {
    Predicate predicate;
    const std::size_t bits = rng.next_below(8);
    for (std::size_t i = 0; i < bits; ++i) {
      const auto position = static_cast<std::uint32_t>(rng.next_below(80));
      predicate.valid_bits.emplace_back(position, rng.chance(0.5));
    }
    predicate.compile();
    for (int probe = 0; probe < 64; ++probe) {
      const platform::AgentId id = rng.next();
      ASSERT_EQ(predicate.matches(id), predicate.matches_scan(id))
          << "round " << round << " id " << id;
    }
    // Also probe ids built to satisfy the in-range bits, where the scan
    // path is most likely to say yes.
    platform::AgentId crafted = rng.next();
    for (const auto& [position, bit] : predicate.valid_bits) {
      if (position >= 64) continue;
      const std::uint64_t bit_mask = 1ull << (63 - position);
      crafted = bit ? (crafted | bit_mask) : (crafted & ~bit_mask);
    }
    ASSERT_EQ(predicate.matches(crafted), predicate.matches_scan(crafted));
  }
}

TEST(Predicate, ConflictingDuplicatePositionsMatchNothing) {
  Predicate predicate;
  predicate.valid_bits.emplace_back(3, true);
  predicate.valid_bits.emplace_back(3, false);
  predicate.compile();
  EXPECT_TRUE(predicate.impossible);
  EXPECT_FALSE(predicate.matches(0));
  EXPECT_FALSE(predicate.matches(~0ull));
  // The scan agrees: no id carries both values at one position.
  EXPECT_FALSE(predicate.matches_scan(0));
  EXPECT_FALSE(predicate.matches_scan(~0ull));
}

TEST(PredicateOf, MatchesTreeLookupOnFigure1) {
  const hashtree::HashTree tree = hashtree::figure1_tree();
  // For every leaf, predicate_of must agree with tree.lookup over a sweep of
  // ids: id maps to leaf  <=>  predicate matches.
  for (const auto leaf : tree.leaves()) {
    const Predicate predicate = predicate_of(tree, leaf);
    for (std::uint64_t v = 0; v < 128; ++v) {
      const std::uint64_t id = v << 57;  // put the 7 sweep bits on top
      EXPECT_EQ(tree.lookup_id(id).iagent == leaf, predicate.matches(id))
          << "leaf " << leaf << " id " << v;
    }
  }
}

TEST(PredicateOf, RootLeafIsUnconstrained) {
  const hashtree::HashTree tree(9, 0);
  EXPECT_TRUE(predicate_of(tree, 9).valid_bits.empty());
}

TEST(LoadWindow, RatesComputedOverClosedWindow) {
  LoadWindow window(sim::SimTime::seconds(2));
  window.record(1);
  window.record(1);
  window.record(2);
  EXPECT_EQ(window.rate(), 0.0);  // nothing closed yet
  window.roll();
  EXPECT_DOUBLE_EQ(window.rate(), 1.5);  // 3 requests / 2 s
  EXPECT_EQ(window.total(), 3u);
  const auto loads = window.loads();
  EXPECT_EQ(loads.size(), 2u);
  window.roll();
  EXPECT_DOUBLE_EQ(window.rate(), 0.0);  // empty window closed
  EXPECT_EQ(window.rolls(), 2u);
}

TEST(LoadWindow, PerAgentCounts) {
  LoadWindow window(sim::SimTime::seconds(1));
  for (int i = 0; i < 5; ++i) window.record(7);
  window.record(8);
  window.roll();
  std::uint32_t seven = 0, eight = 0;
  for (const auto& load : window.loads()) {
    if (load.agent == 7) seven = load.requests;
    if (load.agent == 8) eight = load.requests;
  }
  EXPECT_EQ(seven, 5u);
  EXPECT_EQ(eight, 1u);
}

}  // namespace
}  // namespace agentloc::core
