// Unit and property tests for core::LocationCache: the fixed-capacity
// set-associative binding cache behind the optimistic locate path
// (DESIGN.md §12). The property test checks the one invariant the locate
// path relies on: a cache *hit* never contradicts what was stored — the
// cache may forget (eviction, expiry), it must never invent or roll back.

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/location_cache.hpp"
#include "util/rng.hpp"

namespace agentloc::core {
namespace {

using sim::SimTime;

constexpr SimTime kTtl = SimTime::seconds(2);

LocationEntry entry(platform::AgentId agent, net::NodeId node,
                    std::uint64_t seq) {
  return LocationEntry{agent, node, seq};
}

TEST(LocationCacheTest, StoreThenLookupHits) {
  LocationCache cache(16, kTtl, false);
  cache.store(entry(42, 3, 1), SimTime::zero());
  const auto hit = cache.lookup(42, SimTime::millis(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->node, 3u);
  EXPECT_EQ(hit->seq, 1u);
  EXPECT_FALSE(hit->negative);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LocationCacheTest, AbsentLookupMisses) {
  LocationCache cache(16, kTtl, false);
  EXPECT_FALSE(cache.lookup(42, SimTime::zero()).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(LocationCacheTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(LocationCache(1, kTtl, false).capacity(), 8u);
  EXPECT_EQ(LocationCache(100, kTtl, false).capacity(), 128u);
  EXPECT_EQ(LocationCache(256, kTtl, false).capacity(), 256u);
}

TEST(LocationCacheTest, EntryExpiresAfterTtl) {
  LocationCache cache(16, SimTime::millis(100), false);
  cache.store(entry(42, 3, 1), SimTime::zero());
  EXPECT_TRUE(cache.lookup(42, SimTime::millis(99)).has_value());
  EXPECT_FALSE(cache.lookup(42, SimTime::millis(100)).has_value());
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.size(), 0u);  // expiry freed the slot
}

TEST(LocationCacheTest, StoreRefreshesTtl) {
  LocationCache cache(16, SimTime::millis(100), false);
  cache.store(entry(42, 3, 1), SimTime::zero());
  cache.store(entry(42, 3, 2), SimTime::millis(80));
  EXPECT_TRUE(cache.lookup(42, SimTime::millis(150)).has_value());
}

TEST(LocationCacheTest, NewestSeqWins) {
  LocationCache cache(16, kTtl, false);
  cache.store(entry(42, 3, 5), SimTime::zero());
  // A reordered older report must not roll the binding back.
  cache.store(entry(42, 7, 4), SimTime::zero());
  auto hit = cache.lookup(42, SimTime::millis(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->node, 3u);
  EXPECT_EQ(cache.stats().stale_stores, 1u);
  // Equal seq refreshes, newer seq overwrites.
  cache.store(entry(42, 9, 5), SimTime::zero());
  cache.store(entry(42, 11, 6), SimTime::zero());
  hit = cache.lookup(42, SimTime::millis(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->node, 11u);
  EXPECT_EQ(hit->seq, 6u);
}

TEST(LocationCacheTest, ExpiredBindingDoesNotVetoLowerSeq) {
  // After a deregister + re-register the mover's seq restarts at 1; once the
  // old binding's TTL lapsed its (higher) seq must not block the fresh one.
  LocationCache cache(16, SimTime::millis(100), false);
  cache.store(entry(42, 3, 50), SimTime::zero());
  cache.store(entry(42, 6, 1), SimTime::millis(200));
  const auto hit = cache.lookup(42, SimTime::millis(201));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->node, 6u);
  EXPECT_EQ(hit->seq, 1u);
}

TEST(LocationCacheTest, InvalidateDropsBinding) {
  LocationCache cache(16, kTtl, false);
  cache.store(entry(42, 3, 1), SimTime::zero());
  EXPECT_TRUE(cache.invalidate(42));
  EXPECT_FALSE(cache.invalidate(42));  // already gone
  EXPECT_FALSE(cache.lookup(42, SimTime::millis(1)).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(LocationCacheTest, NoteStaleCountsAndInvalidates) {
  LocationCache cache(16, kTtl, false);
  cache.store(entry(42, 3, 1), SimTime::zero());
  cache.note_stale(42);
  EXPECT_EQ(cache.stats().stale_hits, 1u);
  EXPECT_FALSE(cache.lookup(42, SimTime::millis(1)).has_value());
}

TEST(LocationCacheTest, NegativeEntriesOnlyWhenEnabled) {
  LocationCache off(16, kTtl, false);
  off.store_negative(42, SimTime::zero());
  EXPECT_FALSE(off.lookup(42, SimTime::millis(1)).has_value());

  LocationCache on(16, kTtl, true);
  on.store_negative(42, SimTime::zero());
  const auto hit = on.lookup(42, SimTime::millis(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->negative);
  EXPECT_EQ(on.stats().negative_hits, 1u);
  // Any positive binding overrides a negative one (the agent exists now).
  on.store(entry(42, 5, 1), SimTime::millis(1));
  const auto positive = on.lookup(42, SimTime::millis(2));
  ASSERT_TRUE(positive.has_value());
  EXPECT_FALSE(positive->negative);
  EXPECT_EQ(positive->node, 5u);
}

TEST(LocationCacheTest, SizeNeverExceedsCapacityUnderPressure) {
  LocationCache cache(32, kTtl, false);
  for (std::uint64_t id = 1; id <= 1000; ++id) {
    cache.store(entry(id, static_cast<net::NodeId>(id % 8), 1),
                SimTime::zero());
    ASSERT_LE(cache.size(), cache.capacity());
  }
  EXPECT_GE(cache.stats().evictions, 1000 - cache.capacity());
}

TEST(LocationCacheTest, ClockGivesRecentlyHitBindingsASecondChance) {
  // Deterministic second-chance trace on one 4-way set of a capacity-8
  // cache. Set selection mirrors the implementation: mix64(agent) & 1.
  LocationCache cache(8, kTtl, false);
  std::vector<platform::AgentId> ids;
  for (std::uint64_t id = 1; ids.size() < 6; ++id) {
    if ((util::mix64(id) & 1) == 0) ids.push_back(id);
  }
  const auto a = ids[0], b = ids[1], c = ids[2], d = ids[3], e = ids[4],
             f = ids[5];
  const SimTime now = SimTime::zero();
  for (const auto id : {a, b, c, d}) {
    cache.store(entry(id, 1, 1), now);  // set full, every bit referenced
  }
  // E's insertion sweeps the whole set (clearing all bits) and recycles the
  // hand slot, which holds A.
  cache.store(entry(e, 1, 1), now);
  // A lookup re-arms B; the next insertion must pass over it and take the
  // first never-rereferenced slot instead (C).
  ASSERT_TRUE(cache.lookup(b, now).has_value());
  cache.store(entry(f, 1, 1), now);

  EXPECT_FALSE(cache.lookup(a, now).has_value());
  EXPECT_FALSE(cache.lookup(c, now).has_value());
  EXPECT_TRUE(cache.lookup(b, now).has_value());
  EXPECT_TRUE(cache.lookup(d, now).has_value());
  EXPECT_TRUE(cache.lookup(e, now).has_value());
  EXPECT_TRUE(cache.lookup(f, now).has_value());
  EXPECT_EQ(cache.stats().evictions, 2u);
}

// --- property test vs a deposit ledger --------------------------------------

TEST(LocationCachePropertyTest, HitsNeverInventBindingsOrOutliveTheTtl) {
  // 200 agents churning through 64 slots: constant eviction pressure. The
  // cache is free to forget any binding (eviction, expiry, invalidation) and
  // free to re-learn a reordered older one after it forgot — what it must
  // NEVER do is serve a (node, seq) pair nobody deposited, serve across an
  // invalidation without a re-deposit, or serve a deposit older than the
  // TTL. The ledger records every deposit since the last invalidation; a hit
  // must match one, fresh enough.
  util::Rng rng(0xcafef00d);
  const SimTime ttl = SimTime::millis(500);
  LocationCache cache(64, ttl, true);
  struct Deposit {
    net::NodeId node = net::kNoNode;
    SimTime last_store = SimTime::zero();
  };
  // agent → seq → last deposit of that seq
  std::unordered_map<platform::AgentId, std::unordered_map<std::uint64_t, Deposit>>
      ledger;
  std::unordered_map<platform::AgentId, SimTime> negative_ledger;
  std::unordered_map<platform::AgentId, std::uint64_t> seqs;

  SimTime now = SimTime::zero();
  for (int iteration = 0; iteration < 50000; ++iteration) {
    const platform::AgentId agent = 1 + rng.next_below(200);
    const auto op = rng.next_below(100);
    if (op < 40) {
      // Mostly fresh seqs, some deliberately stale reorders.
      std::uint64_t seq = ++seqs[agent];
      if (rng.chance(0.2) && seq > 2) seq = rng.next_below(seq);
      const auto node = static_cast<net::NodeId>(rng.next_below(16));
      cache.store(entry(agent, node, seq), now);
      ledger[agent][seq] = Deposit{node, now};
    } else if (op < 75) {
      const auto hit = cache.lookup(agent, now);
      if (hit.has_value() && hit->negative) {
        const auto it = negative_ledger.find(agent);
        ASSERT_NE(it, negative_ledger.end());
        ASSERT_LT(now, it->second + ttl);
      } else if (hit.has_value()) {
        const auto by_agent = ledger.find(agent);
        ASSERT_NE(by_agent, ledger.end());
        const auto deposit = by_agent->second.find(hit->seq);
        ASSERT_NE(deposit, by_agent->second.end())
            << "hit served a seq never deposited";
        ASSERT_EQ(hit->node, deposit->second.node);
        ASSERT_LT(now, deposit->second.last_store + ttl)
            << "hit served a deposit past its TTL";
      }
    } else if (op < 85) {
      cache.invalidate(agent);
      ledger.erase(agent);
      negative_ledger.erase(agent);
    } else if (op < 92) {
      cache.store_negative(agent, now);
      negative_ledger[agent] = now;
    } else {
      now = now + SimTime::millis(rng.next_below(80));
    }
    ASSERT_LE(cache.size(), cache.capacity());
  }
  // The workload must actually have exercised the interesting paths.
  const LocationCacheStats& stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.negative_hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.expirations, 0u);
  EXPECT_GT(stats.stale_stores, 0u);
  EXPECT_GT(stats.invalidations, 0u);
}

}  // namespace
}  // namespace agentloc::core
