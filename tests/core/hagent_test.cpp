#include "core/hagent.hpp"

#include <gtest/gtest.h>

#include "core/iagent.hpp"
#include "test_cluster.hpp"
#include "util/bytebuffer.hpp"

namespace agentloc::core {
namespace {

using testing::ScriptAgent;
using testing::TestCluster;

// ---------------------------------------------------------------------------
// plan_split: pure planning logic (paper §4.1)
// ---------------------------------------------------------------------------

class PlanSplitTest : public ::testing::Test {
 protected:
  PlanSplitTest() : tree_(1, 0) {}

  static AgentLoad load_with_bits(std::uint64_t top_bits, int width,
                                  std::uint32_t requests) {
    return AgentLoad{top_bits << (64 - width), requests};
  }

  hashtree::HashTree tree_;
  MechanismConfig config_;
};

TEST_F(PlanSplitTest, EvenFirstBitGivesSimpleM1) {
  std::vector<AgentLoad> loads{load_with_bits(0b0, 1, 50),
                               load_with_bits(0b1, 1, 50)};
  const auto plan = HAgent::plan_split(tree_, 1, loads, config_);
  EXPECT_FALSE(plan.complex_point.has_value());
  EXPECT_EQ(plan.simple_m, 1u);
  EXPECT_DOUBLE_EQ(plan.moved_fraction, 0.5);
}

TEST_F(PlanSplitTest, SkewedFirstBitIncreasesM) {
  // All load has bit 0 == 0, so m=1 moves nothing; bit 1 divides it evenly.
  std::vector<AgentLoad> loads{load_with_bits(0b00, 2, 50),
                               load_with_bits(0b01, 2, 50)};
  const auto plan = HAgent::plan_split(tree_, 1, loads, config_);
  EXPECT_FALSE(plan.complex_point.has_value());
  EXPECT_EQ(plan.simple_m, 2u);
}

TEST_F(PlanSplitTest, HopelessSkewSkipsDeadBitsAggressively) {
  // A single hot agent: no bit divides the load. All m are equally bad, so
  // the plan prefers the largest m — skipping the most dead bits per split.
  std::vector<AgentLoad> loads{load_with_bits(0b0, 1, 100)};
  const auto plan = HAgent::plan_split(tree_, 1, loads, config_);
  EXPECT_FALSE(plan.complex_point.has_value());
  EXPECT_EQ(plan.simple_m, config_.max_split_bits);
}

TEST_F(PlanSplitTest, SharedPrefixJumpsToDiscriminatingBit) {
  // Every id shares a 3-bit prefix 000; bit 3 divides the load evenly. The
  // plan must land exactly on m = 4.
  std::vector<AgentLoad> loads{load_with_bits(0b0000, 4, 50),
                               load_with_bits(0b0001, 4, 50)};
  const auto plan = HAgent::plan_split(tree_, 1, loads, config_);
  EXPECT_FALSE(plan.complex_point.has_value());
  EXPECT_EQ(plan.simple_m, 4u);
  EXPECT_DOUBLE_EQ(plan.moved_fraction, 0.5);
}

TEST_F(PlanSplitTest, EmptyLoadsDefaultToM1) {
  const auto plan = HAgent::plan_split(tree_, 1, {}, config_);
  EXPECT_FALSE(plan.complex_point.has_value());
  EXPECT_EQ(plan.simple_m, 1u);
}

TEST_F(PlanSplitTest, ComplexCandidatePreferredWhenEven) {
  // Build padding: split on the 2nd bit (m=2) leaves one padding bit at
  // position 0 is root padding... rather: simple_split(m=2) extends the root
  // padding, making SplitPoint{0,0} available on both leaves.
  tree_.simple_split(1, 2, 2, 1);
  ASSERT_FALSE(tree_.complex_split_candidates(1).empty());
  // Load under leaf 1 (bit1 = 0) divides evenly on bit 0 — the padding bit.
  std::vector<AgentLoad> loads{load_with_bits(0b00, 2, 50),
                               load_with_bits(0b10, 2, 50)};
  const auto plan = HAgent::plan_split(tree_, 1, loads, config_);
  ASSERT_TRUE(plan.complex_point.has_value());
  EXPECT_EQ(*plan.complex_point, (hashtree::SplitPoint{0, 0}));
}

TEST_F(PlanSplitTest, UnevenComplexCandidateSkipped) {
  tree_.simple_split(1, 2, 2, 1);
  // All of leaf 1's load has bit 0 == 0: reclaiming the padding bit moves
  // nothing, so the plan must fall back to a simple split on bit 2.
  std::vector<AgentLoad> loads{load_with_bits(0b000, 3, 50),
                               load_with_bits(0b001, 3, 50)};
  const auto plan = HAgent::plan_split(tree_, 1, loads, config_);
  EXPECT_FALSE(plan.complex_point.has_value());
  EXPECT_EQ(plan.simple_m, 1u);
}

// ---------------------------------------------------------------------------
// HAgent as a protocol participant
// ---------------------------------------------------------------------------

class HAgentTest : public ::testing::Test {
 protected:
  HAgentTest() : cluster_(6) {
    config_.stats_window = sim::SimTime::seconds(30);  // quiet IAgents
    config_.rehash_cooldown = sim::SimTime::seconds(60);
    hagent_ = &cluster_.system.create<HAgent>(0, config_);
    first_iagent_ = hagent_->bootstrap(1);
    client_ = &cluster_.system.create<ScriptAgent>(2);
    cluster_.run_for(sim::SimTime::millis(10));
  }

  platform::AgentAddress hagent_address() const {
    return platform::AgentAddress{0, hagent_->id()};
  }

  IAgent& iagent(platform::AgentId id) {
    auto* agent = dynamic_cast<IAgent*>(cluster_.system.find(id));
    EXPECT_NE(agent, nullptr);
    return *agent;
  }

  /// Impersonate an IAgent: deliver `body` to the HAgent as if sent by it.
  /// (The HAgent identifies rehash requesters by sender id.)
  template <typename T>
  void send_as(platform::AgentId from, T body, std::size_t bytes) {
    cluster_.system.send(from, hagent_address(), std::move(body), bytes);
    cluster_.run_for(sim::SimTime::millis(50));
  }

  SplitRequest even_split_request() {
    SplitRequest request;
    request.rate = 1000.0;
    request.loads.push_back(AgentLoad{0x0000000000000001ull, 50});
    request.loads.push_back(AgentLoad{0x8000000000000001ull, 50});
    return request;
  }

  TestCluster cluster_;
  MechanismConfig config_;
  HAgent* hagent_ = nullptr;
  platform::AgentId first_iagent_ = 0;
  ScriptAgent* client_ = nullptr;
};

TEST_F(HAgentTest, BootstrapCreatesPrimaryCopy) {
  EXPECT_EQ(hagent_->iagent_count(), 1u);
  EXPECT_EQ(hagent_->tree().leaves().front(), first_iagent_);
  EXPECT_EQ(hagent_->tree().location_of(first_iagent_), 1u);
  // The initial IAgent received its grant.
  EXPECT_EQ(iagent(first_iagent_).hash_version(), hagent_->tree().version());
}

TEST_F(HAgentTest, ServesHashPulls) {
  bool checked = false;
  cluster_.system.request(
      client_->id(), hagent_address(), HashPullRequest{0},
      HashPullRequest::kWireBytes, [&](platform::RpcResult result) {
        ASSERT_TRUE(result.ok());
        const auto* reply = result.reply.body_as<HashPullReply>();
        ASSERT_NE(reply, nullptr);
        EXPECT_FALSE(reply->is_delta);  // a fresh requester gets a snapshot
        util::ByteReader reader(reply->payload);
        const auto tree = hashtree::HashTree::deserialize(reader);
        EXPECT_EQ(tree, hagent_->tree());
        checked = true;
      });
  cluster_.run_for(sim::SimTime::millis(50));
  EXPECT_TRUE(checked);
  EXPECT_EQ(hagent_->stats().pulls_served, 1u);
}

TEST_F(HAgentTest, SplitRequestGrowsTheTree) {
  send_as(first_iagent_, even_split_request(),
          even_split_request().wire_bytes());
  cluster_.run_for(sim::SimTime::millis(100));
  EXPECT_EQ(hagent_->iagent_count(), 2u);
  EXPECT_EQ(hagent_->stats().simple_splits, 1u);
  EXPECT_FALSE(hagent_->rehash_in_progress());  // both IAgents acked

  // Both leaves carry complementary predicates.
  const auto leaves = hagent_->tree().leaves();
  ASSERT_EQ(leaves.size(), 2u);
  EXPECT_EQ(hagent_->tree().hyper_label(leaves[0]), "0");
  EXPECT_EQ(hagent_->tree().hyper_label(leaves[1]), "1");
  // The fresh IAgent exists as a live platform agent with its predicate.
  const auto fresh_id =
      leaves[0] == first_iagent_ ? leaves[1] : leaves[0];
  EXPECT_EQ(iagent(fresh_id).predicate().valid_bits.size(), 1u);
}

TEST_F(HAgentTest, JournalStatsTrackRecordedOps) {
  EXPECT_EQ(hagent_->stats().journal_bytes, 0u);
  send_as(first_iagent_, even_split_request(),
          even_split_request().wire_bytes());
  cluster_.run_for(sim::SimTime::millis(100));
  ASSERT_EQ(hagent_->stats().simple_splits, 1u);
  // One op journaled; its encoded width is a handful of bytes, no
  // truncation anywhere near the 64 KiB default bound.
  EXPECT_GT(hagent_->stats().journal_bytes, 0u);
  EXPECT_LT(hagent_->stats().journal_bytes, 64u);
  EXPECT_EQ(hagent_->stats().journal_compactions, 0u);
}

TEST_F(HAgentTest, SplitFromUnknownSenderRejected) {
  send_as(client_->id(), even_split_request(),
          even_split_request().wire_bytes());
  EXPECT_EQ(hagent_->iagent_count(), 1u);
  EXPECT_GE(hagent_->stats().rehashes_rejected, 1u);
}

TEST_F(HAgentTest, ConcurrentRehashesSerialized) {
  // First split leaves the coordinator busy until Done messages arrive
  // (~4 ms round trips). A merge request racing in behind it is rejected.
  cluster_.system.send(first_iagent_, hagent_address(), even_split_request(),
                       even_split_request().wire_bytes());
  cluster_.run_for(sim::SimTime::millis(3));  // split applied, not yet acked
  EXPECT_TRUE(hagent_->rehash_in_progress());
  const auto rejected_before = hagent_->stats().rehashes_rejected;
  cluster_.system.send(first_iagent_, hagent_address(), MergeRequest{0.1, 0},
                       MergeRequest::kWireBytes);
  cluster_.run_for(sim::SimTime::millis(100));
  EXPECT_GT(hagent_->stats().rehashes_rejected, rejected_before);
  EXPECT_EQ(hagent_->iagent_count(), 2u);  // merge did not happen
}

TEST_F(HAgentTest, MergeShrinksTheTreeAndRetiresVictim) {
  send_as(first_iagent_, even_split_request(),
          even_split_request().wire_bytes());
  cluster_.run_for(sim::SimTime::millis(100));
  ASSERT_EQ(hagent_->iagent_count(), 2u);
  const auto leaves = hagent_->tree().leaves();
  const auto victim = leaves[0] == first_iagent_ ? leaves[1] : leaves[0];

  send_as(victim, MergeRequest{0.1, 0}, MergeRequest::kWireBytes);
  cluster_.run_for(sim::SimTime::millis(200));
  EXPECT_EQ(hagent_->iagent_count(), 1u);
  EXPECT_EQ(hagent_->stats().simple_merges, 1u);
  EXPECT_FALSE(cluster_.system.exists(victim));
  EXPECT_FALSE(hagent_->rehash_in_progress());
  // The survivor's predicate relaxed back to match-everything.
  EXPECT_TRUE(iagent(first_iagent_).predicate().valid_bits.empty());
}

TEST_F(HAgentTest, MergeOfLastLeafRejected) {
  send_as(first_iagent_, MergeRequest{0.0, 0}, MergeRequest::kWireBytes);
  EXPECT_EQ(hagent_->iagent_count(), 1u);
  EXPECT_GE(hagent_->stats().rehashes_rejected, 1u);
}

TEST_F(HAgentTest, IAgentMovedUpdatesLocation) {
  const auto version = hagent_->tree().version();
  send_as(first_iagent_, IAgentMoved{first_iagent_, 4},
          IAgentMoved::kWireBytes);
  EXPECT_EQ(hagent_->tree().location_of(first_iagent_), 4u);
  EXPECT_GT(hagent_->tree().version(), version);
  EXPECT_EQ(hagent_->stats().iagent_moves, 1u);
}

TEST_F(HAgentTest, MovedNoticeForUnknownIAgentIgnored) {
  send_as(client_->id(), IAgentMoved{client_->id(), 4},
          IAgentMoved::kWireBytes);
  EXPECT_EQ(hagent_->stats().iagent_moves, 0u);
}

TEST_F(HAgentTest, EntriesFollowTheSplit) {
  // Register two entries with the initial IAgent, then split: the entry in
  // the new IAgent's region must be handed off.
  cluster_.system.send(client_->id(),
                       platform::AgentAddress{1, first_iagent_},
                       UpdateRequest{LocationEntry{0x0000000000000001ull, 2, 1}},
                       UpdateRequest::kWireBytes);
  cluster_.system.send(client_->id(),
                       platform::AgentAddress{1, first_iagent_},
                       UpdateRequest{LocationEntry{0x8000000000000001ull, 3, 1}},
                       UpdateRequest::kWireBytes);
  cluster_.run_for(sim::SimTime::millis(20));
  send_as(first_iagent_, even_split_request(),
          even_split_request().wire_bytes());
  cluster_.run_for(sim::SimTime::millis(200));

  const auto leaves = hagent_->tree().leaves();
  const auto fresh = leaves[0] == first_iagent_ ? leaves[1] : leaves[0];
  EXPECT_EQ(iagent(first_iagent_).entry_count(), 1u);
  EXPECT_EQ(iagent(fresh).entry_count(), 1u);
}

}  // namespace
}  // namespace agentloc::core
