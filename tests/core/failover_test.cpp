// The §7 fault-tolerance extension: a standby HAgent replicates the primary
// copy op-by-op and is promoted when the primary dies — removing the paper's
// acknowledged "vulnerability point".

#include <gtest/gtest.h>

#include <optional>

#include "core/hash_scheme.hpp"
#include "test_cluster.hpp"

namespace agentloc::core {
namespace {

using testing::TestCluster;

class Client : public platform::Agent {
 public:
  explicit Client(LocationScheme& scheme) : scheme_(scheme) {}
  void on_start() override {
    scheme_.register_agent(*this, [](bool) {});
  }
  void on_arrival(net::NodeId) override {
    scheme_.update_location(*this, [](bool) {});
  }
  void on_message(const platform::Message& message) override {
    scheme_.handle_agent_message(*this, message);
  }
  void on_delivery_failure(const platform::DeliveryFailure& failure) override {
    scheme_.handle_delivery_failure(*this, failure);
  }

 private:
  LocationScheme& scheme_;
};

class FailoverTest : public ::testing::Test {
 protected:
  FailoverTest() : cluster_(8) {
    config_.hagent_replication = true;
    config_.stats_window = sim::SimTime::millis(400);
    config_.rehash_cooldown = sim::SimTime::millis(800);
    config_.t_max = 30.0;
    config_.t_min = 0.0;
    scheme_ = std::make_unique<HashLocationScheme>(cluster_.system, config_);
    cluster_.run_for(sim::SimTime::millis(10));
  }

  Client& spawn(net::NodeId node) {
    Client& client = cluster_.system.create<Client>(node, *scheme_);
    cluster_.run_for(sim::SimTime::millis(20));
    return client;
  }

  LocateOutcome locate(net::NodeId from, platform::AgentId target) {
    Client& requester = spawn(from);
    std::optional<LocateOutcome> outcome;
    scheme_->locate(requester, target,
                    [&](const LocateOutcome& o) { outcome = o; });
    cluster_.run_for(sim::SimTime::seconds(15));
    EXPECT_TRUE(outcome.has_value());
    return outcome.value_or(LocateOutcome{});
  }

  /// Overload the mechanism until at least one rehash happened.
  void drive_load(int rounds = 30) {
    Client& driver = spawn(0);
    const auto splits_before = current_coordinator().stats().simple_splits +
                               current_coordinator().stats().complex_splits;
    for (int round = 0; round < rounds; ++round) {
      for (int i = 0; i < 8; ++i) {
        scheme_->locate(driver, 0x1111111111111111ull * (i + 1),
                        [](const LocateOutcome&) {});
      }
      cluster_.run_for(sim::SimTime::millis(100));
      const auto splits_now = current_coordinator().stats().simple_splits +
                              current_coordinator().stats().complex_splits;
      if (splits_now > splits_before) break;
    }
  }

  HAgent& current_coordinator() { return scheme_->hagent(); }

  TestCluster cluster_;
  MechanismConfig config_;
  std::unique_ptr<HashLocationScheme> scheme_;
};

TEST_F(FailoverTest, BackupStartsAsFollowerWithTheTree) {
  ASSERT_NE(scheme_->backup_hagent(), nullptr);
  EXPECT_EQ(scheme_->backup_hagent()->role(), HAgent::Role::kFollower);
  EXPECT_EQ(scheme_->backup_hagent()->tree(), scheme_->hagent().tree());
}

TEST_F(FailoverTest, OpsStreamToTheBackup) {
  drive_load();
  const auto& primary = scheme_->hagent();
  ASSERT_GT(primary.iagent_count(), 1u);
  cluster_.run_for(sim::SimTime::millis(100));  // let the stream land
  HAgent& backup = *scheme_->backup_hagent();
  EXPECT_EQ(backup.tree().version(), primary.tree().version());
  EXPECT_EQ(backup.tree(), primary.tree());
  EXPECT_GT(primary.stats().ops_replicated, 0u);
  EXPECT_GT(backup.stats().ops_applied_as_follower, 0u);
}

TEST_F(FailoverTest, FollowerRefusesRehashes) {
  HAgent& backup = *scheme_->backup_hagent();
  const auto rejected_before = backup.stats().rehashes_rejected;
  // Impersonate the (real) initial IAgent toward the backup.
  const auto iagent = backup.tree().leaves().front();
  SplitRequest request;
  request.rate = 999;
  request.loads.push_back(AgentLoad{0x1ull, 50});
  request.loads.push_back(AgentLoad{0x8000000000000000ull, 50});
  cluster_.system.send(iagent,
                       platform::AgentAddress{backup.node(), backup.id()},
                       request, request.wire_bytes());
  cluster_.run_for(sim::SimTime::millis(50));
  EXPECT_GT(backup.stats().rehashes_rejected, rejected_before);
  EXPECT_EQ(backup.iagent_count(), 1u);
}

TEST_F(FailoverTest, GapTriggersResync) {
  // Partition the backup away from the primary so a replication op is lost,
  // then heal and cause another op: the version gap forces a full resync.
  HAgent& backup = *scheme_->backup_hagent();
  cluster_.network.faults().set_partitioned(backup.node(),
                                            scheme_->hagent().node(), true);
  drive_load();
  cluster_.network.faults().set_partitioned(backup.node(),
                                            scheme_->hagent().node(), false);
  drive_load();  // another rehash: its op arrives with a version gap
  cluster_.run_for(sim::SimTime::seconds(1));
  EXPECT_GT(backup.stats().resyncs, 0u);
  EXPECT_EQ(backup.tree(), scheme_->hagent().tree());
}

TEST_F(FailoverTest, SystemSurvivesPrimaryDeath) {
  Client& target = spawn(3);
  drive_load();
  const auto trackers_before = scheme_->hagent().iagent_count();
  ASSERT_GT(trackers_before, 1u);
  cluster_.run_for(sim::SimTime::millis(100));

  // The primary dies.
  HAgent* primary = &scheme_->hagent();
  HAgent* backup = scheme_->backup_hagent();
  cluster_.system.dispose(primary->id());

  // Locates keep working immediately: IAgents answer them without the
  // coordinator.
  EXPECT_TRUE(locate(5, target.id()).found);

  // Further overload: the IAgents' split requests bounce off the dead
  // primary, they fail over, the backup is promoted, and rehashing resumes.
  for (int round = 0; round < 60 && backup->role() != HAgent::Role::kPrimary;
       ++round) {
    Client& driver = spawn(1);
    for (int i = 0; i < 8; ++i) {
      scheme_->locate(driver, 0x2222222222222222ull * (i + 1),
                      [](const LocateOutcome&) {});
    }
    cluster_.run_for(sim::SimTime::millis(200));
  }
  EXPECT_EQ(backup->role(), HAgent::Role::kPrimary);
  EXPECT_GT(backup->stats().promotions, 0u);

  // And the mechanism is fully operational again: more splits can happen
  // through the promoted coordinator, and lookups still resolve.
  EXPECT_TRUE(locate(6, target.id()).found);
  EXPECT_GE(scheme_->tracker_count(), trackers_before);
}

TEST_F(FailoverTest, PromotionIsIdempotent) {
  HAgent& backup = *scheme_->backup_hagent();
  for (int i = 0; i < 3; ++i) {
    cluster_.system.send(backup.tree().leaves().front(),
                         platform::AgentAddress{backup.node(), backup.id()},
                         PromoteRequest{}, PromoteRequest::kWireBytes);
    cluster_.run_for(sim::SimTime::millis(20));
  }
  EXPECT_EQ(backup.role(), HAgent::Role::kPrimary);
  EXPECT_EQ(backup.stats().promotions, 1u);
}

TEST_F(FailoverTest, ReplicationOffMeansNoBackup) {
  MechanismConfig plain;
  HashLocationScheme scheme(cluster_.system, plain, 4);
  EXPECT_EQ(scheme.backup_hagent(), nullptr);
}

}  // namespace
}  // namespace agentloc::core
