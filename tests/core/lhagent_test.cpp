#include "core/lhagent.hpp"

#include <gtest/gtest.h>

#include "core/hagent.hpp"
#include "core/iagent.hpp"
#include "test_cluster.hpp"

namespace agentloc::core {
namespace {

using testing::ScriptAgent;
using testing::TestCluster;

class LHAgentTest : public ::testing::Test {
 protected:
  LHAgentTest() : cluster_(4) {
    config_.stats_window = sim::SimTime::seconds(30);
    config_.rehash_cooldown = sim::SimTime::seconds(60);
    hagent_ = &cluster_.system.create<HAgent>(0, config_);
    first_iagent_ = hagent_->bootstrap(1);
    lhagent_ = &cluster_.system.create<LHAgent>(
        2, platform::AgentAddress{0, hagent_->id()}, hagent_->tree());
    cluster_.run_for(sim::SimTime::millis(10));
  }

  /// Make the primary copy move ahead of the secondary.
  void advance_primary() {
    SplitRequest request;
    request.rate = 1000;
    request.loads.push_back(AgentLoad{0x0ull, 50});
    request.loads.push_back(AgentLoad{0x8000000000000000ull, 50});
    cluster_.system.send(first_iagent_, platform::AgentAddress{0, hagent_->id()},
                         request, request.wire_bytes());
    cluster_.run_for(sim::SimTime::millis(100));
  }

  TestCluster cluster_;
  MechanismConfig config_;
  HAgent* hagent_ = nullptr;
  platform::AgentId first_iagent_ = 0;
  LHAgent* lhagent_ = nullptr;
};

TEST_F(LHAgentTest, RegistersAsNodeService) {
  EXPECT_EQ(cluster_.system.lookup_service(2, "lhagent"), lhagent_->id());
}

TEST_F(LHAgentTest, ResolveUsesLocalCopy) {
  const auto address = lhagent_->resolve(0xdeadbeefull);
  EXPECT_EQ(address.agent, first_iagent_);
  EXPECT_EQ(address.node, 1u);
  EXPECT_EQ(lhagent_->stats().resolves, 1u);
}

TEST_F(LHAgentTest, SecondaryCopyIsStaleUntilRefreshed) {
  advance_primary();
  ASSERT_EQ(hagent_->iagent_count(), 2u);
  EXPECT_EQ(lhagent_->known_iagents(), 1u);  // still the old copy
  EXPECT_LT(lhagent_->version(), hagent_->tree().version());

  bool refreshed = false;
  lhagent_->refresh([&] { refreshed = true; });
  cluster_.run_for(sim::SimTime::millis(50));
  EXPECT_TRUE(refreshed);
  EXPECT_EQ(lhagent_->known_iagents(), 2u);
  EXPECT_EQ(lhagent_->version(), hagent_->tree().version());
  EXPECT_EQ(lhagent_->stats().refreshes_completed, 1u);
}

TEST_F(LHAgentTest, ResolveReflectsRefreshedMapping) {
  advance_primary();
  lhagent_->refresh([] {});
  cluster_.run_for(sim::SimTime::millis(50));
  const auto low = lhagent_->resolve(0x1ull);
  const auto high = lhagent_->resolve(0x8000000000000001ull);
  EXPECT_NE(low.agent, high.agent);
}

TEST_F(LHAgentTest, ConcurrentRefreshesCoalesce) {
  advance_primary();
  int callbacks = 0;
  lhagent_->refresh([&] { ++callbacks; });
  lhagent_->refresh([&] { ++callbacks; });
  lhagent_->refresh([&] { ++callbacks; });
  cluster_.run_for(sim::SimTime::millis(50));
  EXPECT_EQ(callbacks, 3);
  EXPECT_EQ(lhagent_->stats().refreshes_requested, 1u);
  EXPECT_EQ(lhagent_->stats().refreshes_coalesced, 2u);
  EXPECT_EQ(hagent_->stats().pulls_served, 1u);
}

TEST_F(LHAgentTest, RefreshFailureStillRunsCallbacks) {
  cluster_.network.faults().set_partitioned(0, 2, true);
  bool ran = false;
  lhagent_->refresh([&] { ran = true; });
  // The pull is dropped; the RPC times out (platform default 250 ms).
  cluster_.run_for(sim::SimTime::seconds(1));
  EXPECT_TRUE(ran);
  EXPECT_EQ(lhagent_->stats().refresh_failures, 1u);
  EXPECT_EQ(lhagent_->known_iagents(), 1u);  // unchanged
}

TEST_F(LHAgentTest, RefreshUsesDeltasWhenJournalCovers) {
  advance_primary();
  ASSERT_LT(lhagent_->version(), hagent_->tree().version());
  lhagent_->refresh([] {});
  cluster_.run_for(sim::SimTime::millis(50));
  EXPECT_EQ(lhagent_->version(), hagent_->tree().version());
  EXPECT_EQ(lhagent_->stats().delta_refreshes, 1u);
  EXPECT_EQ(hagent_->stats().delta_pulls_served, 1u);
  EXPECT_EQ(lhagent_->tree(), hagent_->tree());
}

TEST_F(LHAgentTest, FullSnapshotWhenDeltaDisabled) {
  config_.delta_refresh = false;
  HAgent& plain_hagent = cluster_.system.create<HAgent>(3, config_);
  plain_hagent.bootstrap(1);
  LHAgent& plain_lh = cluster_.system.create<LHAgent>(
      2, platform::AgentAddress{3, plain_hagent.id()}, plain_hagent.tree());
  cluster_.run_for(sim::SimTime::millis(10));
  plain_lh.refresh([] {});
  cluster_.run_for(sim::SimTime::millis(50));
  EXPECT_EQ(plain_lh.stats().delta_refreshes, 0u);
  EXPECT_EQ(plain_lh.stats().refreshes_completed, 1u);
}

TEST_F(LHAgentTest, RefreshNeverRegresses) {
  // Force a refresh that returns the same version; the copy stays intact.
  bool ran = false;
  lhagent_->refresh([&] { ran = true; });
  cluster_.run_for(sim::SimTime::millis(50));
  EXPECT_TRUE(ran);
  EXPECT_EQ(lhagent_->version(), hagent_->tree().version());
  EXPECT_EQ(lhagent_->known_iagents(), 1u);
}

}  // namespace
}  // namespace agentloc::core
