#include "util/bench_report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/summary.hpp"

namespace agentloc::util {
namespace {

TEST(BenchReport, EmptyReportIsValidJson) {
  BenchReport report("nothing");
  EXPECT_EQ(report.row_count(), 0u);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"bench\": \"nothing\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\": []"), std::string::npos);
}

TEST(BenchReport, MetaFieldsSpliceIntoTopLevel) {
  BenchReport report("micro");
  report.meta().set("events_per_sec", 5.0e6).set("threads", std::uint64_t{4});
  const std::string json = report.json();
  EXPECT_NE(json.find("\"events_per_sec\": 5000000"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
}

TEST(BenchReport, RowsKeepInsertionOrderAndTypes) {
  BenchReport report("sweep");
  report.add_row()
      .set("scheme", "hash")
      .set("tagents", std::int64_t{50})
      .set("mean_ms", 9.25);
  report.add_row().set("scheme", "centralized");
  ASSERT_EQ(report.row_count(), 2u);
  const std::string json = report.json();
  const auto hash_pos = json.find("\"scheme\": \"hash\"");
  const auto central_pos = json.find("\"scheme\": \"centralized\"");
  ASSERT_NE(hash_pos, std::string::npos);
  ASSERT_NE(central_pos, std::string::npos);
  EXPECT_LT(hash_pos, central_pos);
  EXPECT_NE(json.find("\"tagents\": 50"), std::string::npos);
  EXPECT_NE(json.find("\"mean_ms\": 9.25"), std::string::npos);
}

TEST(BenchReport, SummarySpreadsIntoPrefixedFields) {
  Summary summary;
  for (int i = 1; i <= 100; ++i) summary.add(i);
  BenchReport report("s");
  report.add_row().add_summary("location_ms", summary);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"location_ms_count\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"location_ms_mean\": 50.5"), std::string::npos);
  EXPECT_NE(json.find("\"location_ms_p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"location_ms_max\": 100"), std::string::npos);
}

TEST(BenchReport, EmptySummaryOnlyWritesCount) {
  BenchReport report("s");
  report.add_row().add_summary("lat", Summary{});
  const std::string json = report.json();
  EXPECT_NE(json.find("\"lat_count\": 0"), std::string::npos);
  EXPECT_EQ(json.find("\"lat_mean\""), std::string::npos);
}

TEST(BenchReport, EscapesStringsAndRejectsNonFiniteNumbers) {
  BenchReport report("esc");
  report.add_row()
      .set("label", "a\"b\\c\nd")
      .set("nan", std::nan(""))
      .set("inf", std::numeric_limits<double>::infinity());
  const std::string json = report.json();
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos);
  EXPECT_NE(json.find("\"nan\": null"), std::string::npos);
  EXPECT_NE(json.find("\"inf\": null"), std::string::npos);
}

TEST(BenchReport, DefaultPathUsesBenchName) {
  EXPECT_EQ(BenchReport("experiment1").default_path(),
            "BENCH_experiment1.json");
}

TEST(BenchReport, WriteRoundTripsToDisk) {
  BenchReport report("writer");
  report.meta().set("k", std::int64_t{1});
  report.add_row().set("v", 2.5);
  const std::string path =
      testing::TempDir() + "/bench_report_test_output.json";
  ASSERT_EQ(report.write(path), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), report.json());
  std::remove(path.c_str());
}

TEST(BenchReport, WriteToUnwritablePathReturnsEmpty) {
  BenchReport report("broken");
  EXPECT_EQ(report.write("/nonexistent-dir/nope/out.json"), "");
}

}  // namespace
}  // namespace agentloc::util
