#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace agentloc::util {
namespace {

TEST(Mix64, IsDeterministicAndDispersive) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  // Consecutive inputs should differ in roughly half their bits.
  int differing = __builtin_popcountll(mix64(41) ^ mix64(42));
  EXPECT_GT(differing, 16);
  EXPECT_LT(differing, 48);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, UniformRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(5.0, 9.0);
    ASSERT_GE(v, 5.0);
    ASSERT_LT(v, 9.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(4.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(23);
  (void)parent_copy.next();  // consumed by fork
  int equal = 0;
  for (int i = 0; i < 50; ++i) equal += child.next() == parent_copy.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(29);
  std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto original = items;
  rng.shuffle(items);
  EXPECT_NE(items, original);  // astronomically unlikely to be identity
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

TEST(Rng, ZipfUniformWhenSkewZero) {
  Rng rng(31);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(10, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 350);
}

TEST(Rng, ZipfSkewFavorsLowRanks) {
  Rng rng(37);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto r = rng.zipf(100, 1.0);
    ASSERT_LT(r, 100u);
    ++counts[r];
  }
  EXPECT_GT(counts[0], counts[50] * 3);
}

TEST(Rng, ZipfDegenerateCases) {
  Rng rng(41);
  EXPECT_EQ(rng.zipf(0, 1.0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.zipf(1, 1.0), 0u);
}

TEST(Rng, ZipfHigherSkewConcentratesHeadHarder) {
  // Head mass (rank 0) must grow monotonically with the skew parameter —
  // this is what the cache ablation sweeps over.
  std::size_t previous_head = 0;
  for (const double skew : {0.0, 0.5, 0.9, 1.2}) {
    Rng rng(43);
    std::size_t head = 0;
    for (int i = 0; i < 30000; ++i) head += rng.zipf(50, skew) == 0;
    EXPECT_GT(head, previous_head) << "skew " << skew;
    previous_head = head;
  }
  // At skew 1.2 the head should dominate outright.
  EXPECT_GT(previous_head, 30000u / 5);
}

TEST(Rng, ZipfStaysInBoundsAcrossSkews) {
  Rng rng(47);
  for (const double skew : {0.0, 0.3, 0.7, 1.0, 1.5, 3.0}) {
    for (const std::size_t n : {1u, 2u, 7u, 100u}) {
      for (int i = 0; i < 2000; ++i) {
        ASSERT_LT(rng.zipf(n, skew), n) << "n=" << n << " skew=" << skew;
      }
    }
  }
}

}  // namespace
}  // namespace agentloc::util
