#include "util/payload_box.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace agentloc::util {
namespace {

struct Small {
  std::uint64_t a = 0;
  std::uint32_t b = 0;
};

struct Large {
  // Deliberately wider than the 48-byte inline capacity.
  std::uint64_t words[9] = {};
};

static_assert(PayloadBox::stored_inline<Small>());
static_assert(!PayloadBox::stored_inline<Large>());

TEST(PayloadBox, EmptyBoxHoldsNothing) {
  PayloadBox box;
  EXPECT_FALSE(box.has_value());
  EXPECT_EQ(box.get_if<Small>(), nullptr);
  EXPECT_FALSE(box.holds<Small>());
}

TEST(PayloadBox, RoundTripsInlineValue) {
  PayloadBox box(Small{7, 9});
  ASSERT_TRUE(box.holds<Small>());
  const Small* small = box.get_if<Small>();
  ASSERT_NE(small, nullptr);
  EXPECT_EQ(small->a, 7u);
  EXPECT_EQ(small->b, 9u);
  EXPECT_EQ(box.get_if<Large>(), nullptr);  // type mismatch, not a crash
}

TEST(PayloadBox, RoundTripsHeapValue) {
  Large large;
  large.words[8] = 42;
  PayloadBox box(large);
  ASSERT_TRUE(box.holds<Large>());
  EXPECT_EQ(box.get_if<Large>()->words[8], 42u);
}

TEST(PayloadBox, CopyIsDeep) {
  PayloadBox original(std::vector<int>{1, 2, 3});
  PayloadBox copy(original);
  ASSERT_NE(copy.get_if<std::vector<int>>(), nullptr);
  copy.get_if<std::vector<int>>()->push_back(4);
  EXPECT_EQ(original.get_if<std::vector<int>>()->size(), 3u);
  EXPECT_EQ(copy.get_if<std::vector<int>>()->size(), 4u);
}

TEST(PayloadBox, MoveEmptiesTheSource) {
  PayloadBox source(Small{1, 2});
  PayloadBox target(std::move(source));
  EXPECT_FALSE(source.has_value());
  ASSERT_TRUE(target.holds<Small>());
  EXPECT_EQ(target.get_if<Small>()->a, 1u);
}

TEST(PayloadBox, AssignmentReplacesValueAndType) {
  PayloadBox box(Small{1, 2});
  box = PayloadBox(std::string("hello"));
  EXPECT_FALSE(box.holds<Small>());
  ASSERT_TRUE(box.holds<std::string>());
  EXPECT_EQ(*box.get_if<std::string>(), "hello");
}

TEST(PayloadBox, ResetDestroysHeldValue) {
  auto witness = std::make_shared<int>(5);
  std::weak_ptr<int> alive = witness;
  PayloadBox box(std::move(witness));
  EXPECT_FALSE(alive.expired());
  box.reset();
  EXPECT_TRUE(alive.expired());
  EXPECT_FALSE(box.has_value());
}

TEST(PayloadBox, HeapValueSurvivesManyMoves) {
  Large large;
  large.words[0] = 11;
  PayloadBox box(large);
  for (int i = 0; i < 8; ++i) {
    PayloadBox next(std::move(box));
    box = std::move(next);
  }
  ASSERT_TRUE(box.holds<Large>());
  EXPECT_EQ(box.get_if<Large>()->words[0], 11u);
}

TEST(PayloadBox, DistinctTypesGetDistinctIdentity) {
  struct A {
    int x = 0;
  };
  struct B {
    int x = 0;
  };
  PayloadBox box(A{3});
  EXPECT_TRUE(box.holds<A>());
  EXPECT_FALSE(box.holds<B>());  // same layout, different type
}

}  // namespace
}  // namespace agentloc::util
