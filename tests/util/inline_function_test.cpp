#include "util/inline_function.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>

namespace agentloc::util {
namespace {

using Fn = InlineFunction<void(), 48>;

TEST(InlineFunction, DefaultIsEmpty) {
  Fn fn;
  EXPECT_FALSE(fn);
  Fn null_fn(nullptr);
  EXPECT_FALSE(null_fn);
}

TEST(InlineFunction, CallsSmallCallableInline) {
  int count = 0;
  Fn fn([&count] { ++count; });
  EXPECT_TRUE(fn);
  fn();
  fn();
  EXPECT_EQ(count, 2);
  EXPECT_TRUE((Fn::stored_inline<decltype([&count] { ++count; })>()));
}

TEST(InlineFunction, LargeCallableFallsBackToHeapAndStillWorks) {
  std::array<std::uint64_t, 16> payload{};
  payload[3] = 17;
  std::uint64_t seen = 0;
  auto lambda = [payload, &seen] { seen = payload[3]; };
  EXPECT_FALSE((Fn::stored_inline<decltype(lambda)>()));
  Fn fn(lambda);
  fn();
  EXPECT_EQ(seen, 17u);
}

TEST(InlineFunction, ReturnValuesAndArguments) {
  InlineFunction<int(int, int)> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFunction, MutableStatePersistsAcrossCalls) {
  InlineFunction<int()> counter([n = 0]() mutable { return ++n; });
  EXPECT_EQ(counter(), 1);
  EXPECT_EQ(counter(), 2);
  EXPECT_EQ(counter(), 3);
}

TEST(InlineFunction, MoveTransfersOwnership) {
  int count = 0;
  Fn a([&count] { ++count; });
  Fn b(std::move(a));
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_TRUE(b);
  b();
  EXPECT_EQ(count, 1);

  Fn c;
  c = std::move(b);
  EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(count, 2);
}

TEST(InlineFunction, MoveOnlyCaptures) {
  auto owned = std::make_unique<std::string>("hello");
  InlineFunction<std::size_t()> fn(
      [owned = std::move(owned)] { return owned->size(); });
  EXPECT_EQ(fn(), 5u);
}

TEST(InlineFunction, ResetDestroysCapturedResources) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  Fn fn([token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());
  fn.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(fn);
}

TEST(InlineFunction, DestructorReleasesHeapCallable) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    std::array<std::uint64_t, 16> payload{};
    Fn fn([payload, token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunction, MovingHeapCallableStealsThePointer) {
  auto token = std::make_shared<int>(9);
  std::weak_ptr<int> watch = token;
  std::array<std::uint64_t, 16> payload{};
  payload[0] = 9;
  InlineFunction<std::uint64_t()> a(
      [payload, token] { return payload[0] + static_cast<std::uint64_t>(*token); });
  token.reset();
  InlineFunction<std::uint64_t()> b(std::move(a));
  EXPECT_EQ(watch.use_count(), 1);  // no copy was made
  EXPECT_EQ(b(), 18u);
}

TEST(InlineFunction, OverwritingDestroysPreviousCallable) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  Fn fn([token] { (void)*token; });
  token.reset();
  fn = Fn([] {});
  EXPECT_TRUE(watch.expired());
  fn();  // the replacement is callable
}

}  // namespace
}  // namespace agentloc::util
