#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace agentloc::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), 4,
               [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, SequentialWhenSingleThreaded) {
  // threads <= 1 must run inline, in index order, on the calling thread.
  std::vector<std::size_t> order;
  const auto caller = std::this_thread::get_id();
  parallel_for(8, 1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<std::size_t> expected(8);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ParallelFor, ZeroCountIsANoop) {
  parallel_for(0, 4, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, MoreThreadsThanItems) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(hits.size(), 16, [&hits](std::size_t i) { ++hits[i]; });
  for (auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelFor, PropagatesTheFirstException) {
  std::atomic<int> completed{0};
  try {
    parallel_for(16, 4, [&completed](std::size_t i) {
      if (i == 5) throw std::runtime_error("boom");
      ++completed;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "boom");
  }
  // Every other index still ran: one failure doesn't strand the pool.
  EXPECT_EQ(completed.load(), 15);
}

TEST(ParallelFor, InlinePathPropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(4, 1,
                   [](std::size_t i) {
                     if (i == 2) throw std::logic_error("inline");
                   }),
      std::logic_error);
}

}  // namespace
}  // namespace agentloc::util
