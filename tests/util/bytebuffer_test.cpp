#include "util/bytebuffer.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace agentloc::util {
namespace {

TEST(ByteBuffer, FixedWidthRoundTrip) {
  ByteWriter writer;
  writer.write_u8(0xab);
  writer.write_u32(0xdeadbeef);
  writer.write_u64(0x0123456789abcdefull);
  writer.write_bool(true);
  writer.write_bool(false);
  writer.write_double(3.25);

  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_u8(), 0xab);
  EXPECT_EQ(reader.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.read_u64(), 0x0123456789abcdefull);
  EXPECT_TRUE(reader.read_bool());
  EXPECT_FALSE(reader.read_bool());
  EXPECT_EQ(reader.read_double(), 3.25);
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteBuffer, VarintBoundaries) {
  ByteWriter writer;
  const std::uint64_t values[] = {0,    1,    127,  128,
                                  300,  16383, 16384,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (auto v : values) writer.write_varint(v);
  ByteReader reader(writer.bytes());
  for (auto v : values) EXPECT_EQ(reader.read_varint(), v);
}

TEST(ByteBuffer, VarintCompactness) {
  ByteWriter writer;
  writer.write_varint(5);
  EXPECT_EQ(writer.size(), 1u);
  writer.write_varint(300);
  EXPECT_EQ(writer.size(), 3u);
}

TEST(ByteBuffer, StringRoundTrip) {
  ByteWriter writer;
  writer.write_string("");
  writer.write_string("hello agent");
  writer.write_string(std::string(1000, 'x'));
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_string(), "");
  EXPECT_EQ(reader.read_string(), "hello agent");
  EXPECT_EQ(reader.read_string(), std::string(1000, 'x'));
}

TEST(ByteBuffer, BitsRoundTrip) {
  ByteWriter writer;
  writer.write_bits(BitString());
  writer.write_bits(BitString::parse("1"));
  writer.write_bits(BitString::parse("10110011101"));
  writer.write_bits(BitString(77, true));
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.read_bits(), BitString());
  EXPECT_EQ(reader.read_bits(), BitString::parse("1"));
  EXPECT_EQ(reader.read_bits(), BitString::parse("10110011101"));
  EXPECT_EQ(reader.read_bits(), BitString(77, true));
}

TEST(ByteBuffer, TruncatedInputThrows) {
  ByteWriter writer;
  writer.write_u32(42);
  ByteReader reader(writer.bytes());
  reader.read_u8();
  reader.read_u8();
  EXPECT_THROW(reader.read_u32(), std::out_of_range);
}

TEST(ByteBuffer, TruncatedStringThrows) {
  ByteWriter writer;
  writer.write_varint(100);  // claims 100 bytes follow; none do
  ByteReader reader(writer.bytes());
  EXPECT_THROW(reader.read_string(), std::out_of_range);
}

TEST(ByteBuffer, MalformedVarintThrows) {
  // Eleven continuation bytes exceed the 64-bit range.
  std::vector<std::uint8_t> bytes(11, 0xff);
  ByteReader reader(bytes);
  EXPECT_THROW(reader.read_varint(), std::invalid_argument);
}

TEST(ByteBuffer, EmptyReaderThrows) {
  std::vector<std::uint8_t> empty;
  ByteReader reader(empty);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_THROW(reader.read_u8(), std::out_of_range);
}

class ByteBufferProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ByteBufferProperty, MixedRoundTrip) {
  Rng rng(GetParam());
  ByteWriter writer;

  struct Op {
    int kind;
    std::uint64_t value;
    BitString bits;
  };
  std::vector<Op> ops;
  const auto count = 1 + rng.next_below(60);
  for (std::uint64_t i = 0; i < count; ++i) {
    Op op;
    op.kind = static_cast<int>(rng.next_below(3));
    switch (op.kind) {
      case 0:
        op.value = rng.next();
        writer.write_varint(op.value);
        break;
      case 1:
        op.value = rng.next();
        writer.write_u64(op.value);
        break;
      default: {
        const auto bit_count = rng.next_below(100);
        for (std::uint64_t b = 0; b < bit_count; ++b) {
          op.bits.push_back(rng.chance(0.5));
        }
        writer.write_bits(op.bits);
      }
    }
    ops.push_back(op);
  }

  ByteReader reader(writer.bytes());
  for (const Op& op : ops) {
    switch (op.kind) {
      case 0:
        EXPECT_EQ(reader.read_varint(), op.value);
        break;
      case 1:
        EXPECT_EQ(reader.read_u64(), op.value);
        break;
      default:
        EXPECT_EQ(reader.read_bits(), op.bits);
    }
  }
  EXPECT_TRUE(reader.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteBufferProperty,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace agentloc::util
