#include "util/flat_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace agentloc::util {
namespace {

using Map = FlatMap<std::uint64_t, int, 0>;

TEST(FlatMap, EmptyBehaviour) {
  Map map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(7), nullptr);
  EXPECT_FALSE(map.contains(7));
  EXPECT_FALSE(map.erase(7));
  EXPECT_THROW(map.at(7), std::out_of_range);
}

TEST(FlatMap, EmplaceFindErase) {
  Map map;
  EXPECT_TRUE(map.emplace(5, 50));
  EXPECT_FALSE(map.emplace(5, 99));  // second emplace loses
  EXPECT_EQ(map.at(5), 50);
  ASSERT_NE(map.find(5), nullptr);
  EXPECT_EQ(*map.find(5), 50);
  EXPECT_EQ(map.size(), 1u);

  EXPECT_TRUE(map.erase(5));
  EXPECT_FALSE(map.contains(5));
  EXPECT_EQ(map.size(), 0u);
}

TEST(FlatMap, SubscriptInsertsAndOverwrites) {
  Map map;
  map[3] = 30;
  EXPECT_EQ(map.at(3), 30);
  map[3] = 31;
  EXPECT_EQ(map.at(3), 31);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map[8], 0);  // default-constructed on first touch
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMap, ClearKeepsCapacityDropsEntries) {
  Map map;
  for (std::uint64_t k = 1; k <= 100; ++k) map.emplace(k, static_cast<int>(k));
  map.clear();
  EXPECT_TRUE(map.empty());
  for (std::uint64_t k = 1; k <= 100; ++k) EXPECT_FALSE(map.contains(k));
  map.emplace(42, 1);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, ReserveThenBulkInsert) {
  Map map;
  map.reserve(1000);
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    EXPECT_TRUE(map.emplace(k, static_cast<int>(k * 2)));
  }
  EXPECT_EQ(map.size(), 1000u);
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    EXPECT_EQ(map.at(k), static_cast<int>(k * 2));
  }
}

/// Backward-shift deletion is the subtle part of linear probing; fuzz it
/// against std::unordered_map with adversarially colliding small keys.
TEST(FlatMap, RandomOpsAgreeWithUnorderedMap) {
  Rng rng(1234);
  Map map;
  std::unordered_map<std::uint64_t, int> reference;
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = 1 + rng.next_below(64);  // heavy collisions
    const auto roll = rng.next_below(10);
    if (roll < 4) {
      const int value = static_cast<int>(rng.next_below(1000));
      EXPECT_EQ(map.emplace(key, value),
                reference.emplace(key, value).second);
    } else if (roll < 6) {
      const int value = static_cast<int>(rng.next_below(1000));
      map[key] = value;
      reference[key] = value;
    } else if (roll < 9) {
      EXPECT_EQ(map.erase(key), reference.erase(key) > 0);
    } else {
      map.clear();
      reference.clear();
    }
    ASSERT_EQ(map.size(), reference.size());
    const std::uint64_t probe = 1 + rng.next_below(64);
    const auto it = reference.find(probe);
    const int* found = map.find(probe);
    ASSERT_EQ(found != nullptr, it != reference.end());
    if (found != nullptr) {
      ASSERT_EQ(*found, it->second);
    }
  }
}

TEST(FlatMap, ForEachVisitsEveryEntryOnce) {
  Map map;
  for (std::uint64_t k = 1; k <= 50; ++k) map.emplace(k, static_cast<int>(k));
  std::unordered_map<std::uint64_t, int> seen;
  map.for_each([&](std::uint64_t key, int value) {
    EXPECT_TRUE(seen.emplace(key, value).second) << "visited twice: " << key;
  });
  EXPECT_EQ(seen.size(), 50u);
  for (std::uint64_t k = 1; k <= 50; ++k) {
    EXPECT_EQ(seen.at(k), static_cast<int>(k));
  }
}

TEST(FlatMap, ForEachMutableCanRewriteValues) {
  Map map;
  for (std::uint64_t k = 1; k <= 10; ++k) map.emplace(k, 1);
  map.for_each([](std::uint64_t, int& value) { value *= 3; });
  for (std::uint64_t k = 1; k <= 10; ++k) EXPECT_EQ(map.at(k), 3);
}

TEST(FlatMap, ExtractIfMovesMatchesAndKeepsSurvivorsReachable) {
  Map map;
  for (std::uint64_t k = 1; k <= 99; ++k) map.emplace(k, static_cast<int>(k));
  std::unordered_map<std::uint64_t, int> out;
  const std::size_t removed = map.extract_if(
      [](std::uint64_t key, int) { return key % 3 == 0; },
      [&](std::uint64_t key, int&& value) {
        EXPECT_TRUE(out.emplace(key, value).second);
      });
  EXPECT_EQ(removed, 33u);
  EXPECT_EQ(out.size(), 33u);
  EXPECT_EQ(map.size(), 66u);
  for (std::uint64_t k = 1; k <= 99; ++k) {
    if (k % 3 == 0) {
      EXPECT_FALSE(map.contains(k));
      EXPECT_EQ(out.at(k), static_cast<int>(k));
    } else {
      EXPECT_EQ(map.at(k), static_cast<int>(k));
    }
  }
}

/// The recompaction after a bulk extraction must leave every survivor
/// reachable from its home slot; fuzz against std::unordered_map with
/// adversarially colliding small keys, as for backward-shift deletion.
TEST(FlatMap, ExtractIfFuzzAgainstUnorderedMap) {
  Rng rng(77);
  Map map;
  std::unordered_map<std::uint64_t, int> reference;
  for (int round = 0; round < 400; ++round) {
    for (int i = 0; i < 24; ++i) {
      const std::uint64_t key = 1 + rng.next_below(96);
      const int value = static_cast<int>(rng.next_below(1000));
      map[key] = value;
      reference[key] = value;
    }
    const std::uint64_t modulus = 2 + rng.next_below(5);
    std::unordered_map<std::uint64_t, int> extracted;
    map.extract_if(
        [&](std::uint64_t key, int) { return key % modulus == 0; },
        [&](std::uint64_t key, int&& value) {
          ASSERT_TRUE(extracted.emplace(key, value).second)
              << "extracted twice: " << key;
        });
    for (auto it = reference.begin(); it != reference.end();) {
      if (it->first % modulus == 0) {
        ASSERT_EQ(extracted.at(it->first), it->second);
        it = reference.erase(it);
      } else {
        ++it;
      }
    }
    ASSERT_EQ(map.size(), reference.size());
    for (const auto& [key, value] : reference) {
      const int* found = map.find(key);
      ASSERT_NE(found, nullptr) << "survivor lost: " << key;
      ASSERT_EQ(*found, value);
    }
  }
}

TEST(FlatMap, MillionKeyGrowthReservedAndIncrementalAgree) {
  // Capacity-path coverage for the million-agent tables (DESIGN.md §15):
  // one map pre-sized for the population, one growing through every rehash
  // doubling. Same keys, same answers, and the reserved map must never
  // rehash after its reserve.
  constexpr std::uint64_t kKeys = 1'000'000;
  Map reserved;
  reserved.reserve(kKeys);
  const std::size_t reserved_capacity = reserved.capacity();
  ASSERT_GT(reserved_capacity, kKeys);

  Map incremental;
  util::Rng rng(2026);
  std::vector<std::uint64_t> keys;
  keys.reserve(kKeys);
  while (keys.size() < kKeys) {
    const std::uint64_t key = rng.next();
    if (key == 0) continue;  // the empty-slot marker
    keys.push_back(key);
    // Duplicate draws are vanishingly rare and harmless: emplace refuses
    // them identically in both maps.
    reserved.emplace(key, static_cast<int>(key & 0x7fffffff));
    incremental.emplace(key, static_cast<int>(key & 0x7fffffff));
  }
  EXPECT_EQ(reserved.capacity(), reserved_capacity);  // reserve held
  EXPECT_EQ(reserved.size(), incremental.size());

  // Every key survived the incremental map's rehashes with its value.
  for (const std::uint64_t key : keys) {
    const int* grown = incremental.find(key);
    ASSERT_NE(grown, nullptr) << "lost across rehash: " << key;
    const int* flat = reserved.find(key);
    ASSERT_NE(flat, nullptr);
    ASSERT_EQ(*grown, *flat);
  }

  // Erase a deterministic quarter from both; survivors and absences agree.
  std::size_t erased = 0;
  for (std::size_t i = 0; i < keys.size(); i += 4) {
    ASSERT_EQ(reserved.erase(keys[i]), incremental.erase(keys[i]));
    ++erased;
  }
  EXPECT_EQ(reserved.size(), incremental.size());
  for (std::size_t i = 0; i < keys.size(); i += 1013) {
    const bool in_reserved = reserved.contains(keys[i]);
    EXPECT_EQ(in_reserved, incremental.contains(keys[i]));
    EXPECT_EQ(in_reserved, i % 4 != 0);
  }
  (void)erased;
}

TEST(FlatMap, CollectThenEraseMatchesForEachContract) {
  // The documented erase-while-iterating pattern: collect keys during
  // for_each, erase afterwards (the callback itself must not mutate).
  Map map;
  for (std::uint64_t k = 1; k <= 40; ++k) map.emplace(k, static_cast<int>(k));
  std::vector<std::uint64_t> evens;
  map.for_each([&](std::uint64_t key, int) {
    if (key % 2 == 0) evens.push_back(key);
  });
  for (const auto key : evens) {
    EXPECT_TRUE(map.erase(key));
  }
  EXPECT_EQ(map.size(), 20u);
  map.for_each([](std::uint64_t key, int) { EXPECT_EQ(key % 2, 1u); });
}

}  // namespace
}  // namespace agentloc::util
