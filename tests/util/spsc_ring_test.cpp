// SpscRing: the wait-free single-producer/single-consumer channel under the
// parallel LP engine's cross-LP outboxes. The suite name carries "Parallel"
// so the tsan CI preset picks it up.

#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace agentloc::util {
namespace {

TEST(SpscRingParallelTest, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 8u);   // kMinCapacity
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(9).capacity(), 16u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRingParallelTest, FifoSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) {
    int value = i;
    EXPECT_TRUE(ring.try_push(value));
  }
  int overflow = 99;
  EXPECT_FALSE(ring.try_push(overflow)) << "full ring must reject";
  EXPECT_EQ(overflow, 99) << "rejected value must be left intact";

  for (int i = 0; i < 8; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRingParallelTest, WrapsAroundManyTimes) {
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  for (int round = 0; round < 1000; ++round) {
    for (int burst = 0; burst < 5; ++burst) {
      std::uint64_t value = pushed;
      if (ring.try_push(value)) ++pushed;
    }
    std::uint64_t out;
    while (ring.try_pop(out)) {
      EXPECT_EQ(out, popped);
      ++popped;
    }
  }
  EXPECT_EQ(pushed, popped);
}

TEST(SpscRingParallelTest, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(4);
  auto value = std::make_unique<int>(42);
  ASSERT_TRUE(ring.try_push(value));
  EXPECT_EQ(value, nullptr) << "push must move the payload out";
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

// Two-thread FIFO stress: every value pushed by the producer arrives at the
// consumer exactly once, in order, across many wrap-arounds of a small ring.
// Run under tsan this also proves the acquire/release pairing is sufficient.
TEST(SpscRingParallelTest, TwoThreadStressPreservesOrder) {
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring(64);

  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kCount;) {
      std::uint64_t value = i;
      if (ring.try_push(value)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });

  std::uint64_t expected = 0;
  while (expected < kCount) {
    std::uint64_t out;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty_approx());
}

}  // namespace
}  // namespace agentloc::util
