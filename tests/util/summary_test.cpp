#include "util/summary.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace agentloc::util {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, BasicStatistics) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

TEST(Summary, PercentilesNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
  EXPECT_THROW(s.percentile(-1), std::invalid_argument);
}

TEST(Summary, PercentileAfterLaterAdds) {
  Summary s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.percentile(50), 10.0);
  s.add(1);  // must invalidate the cached sort
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Summary, TrimmedMeanDropsOutliers) {
  Summary s;
  for (int i = 0; i < 98; ++i) s.add(10.0);
  s.add(1000.0);
  s.add(-1000.0);
  EXPECT_DOUBLE_EQ(s.trimmed_mean(0.02), 10.0);
  EXPECT_THROW(s.trimmed_mean(0.5), std::invalid_argument);
}

TEST(Summary, MergeCombines) {
  Summary a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  b.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

TEST(Summary, StrMentionsCount) {
  Summary s;
  s.add(1.0);
  EXPECT_NE(s.str().find("n=1"), std::string::npos);
}

TEST(Histogram, BucketsValues) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(0.0);
  h.add(1.9);
  h.add(2.0);
  h.add(9.999);
  h.add(10.0);
  h.add(50.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string text = h.render(10);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find("[0, 1)"), std::string::npos);
}

}  // namespace
}  // namespace agentloc::util
