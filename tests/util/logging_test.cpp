#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace agentloc::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_level(LogLevel::kTrace);
    Logger::instance().set_sink(
        [this](LogLevel level, std::string_view text) {
          lines_.emplace_back(level, std::string(text));
        });
  }

  void TearDown() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_time_source(nullptr);
    Logger::instance().set_level(LogLevel::kWarn);
  }

  std::vector<std::pair<LogLevel, std::string>> lines_;
};

TEST_F(LoggingTest, EmitsFormattedLine) {
  AGENTLOC_LOG(kInfo, "hagent") << "split " << 42;
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].first, LogLevel::kInfo);
  EXPECT_NE(lines_[0].second.find("INFO hagent: split 42"),
            std::string::npos);
}

TEST_F(LoggingTest, LevelThresholdSuppresses) {
  Logger::instance().set_level(LogLevel::kError);
  AGENTLOC_LOG(kWarn, "x") << "hidden";
  AGENTLOC_LOG(kError, "x") << "visible";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].second.find("visible"), std::string::npos);
}

TEST_F(LoggingTest, TimeSourcePrefixesSimulatedMillis) {
  Logger::instance().set_time_source([] { return 12.5; });
  AGENTLOC_LOG(kInfo, "net") << "tick";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].second.find("12.500ms"), std::string::npos);
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
}

TEST_F(LoggingTest, EnabledReflectsThreshold) {
  Logger::instance().set_level(LogLevel::kInfo);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kDebug));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kError));
}

}  // namespace
}  // namespace agentloc::util
