#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace agentloc::util {
namespace {

TEST(Flags, EqualsSyntax) {
  Flags flags({"--agents=100", "--rate=2.5", "--verbose=true"});
  EXPECT_EQ(flags.get_int("agents", 0), 100);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 2.5);
  EXPECT_TRUE(flags.get_bool("verbose", false));
}

TEST(Flags, SpaceSyntax) {
  Flags flags({"--agents", "42", "--name", "exp1"});
  EXPECT_EQ(flags.get_int("agents", 0), 42);
  EXPECT_EQ(flags.get_string("name", ""), "exp1");
}

TEST(Flags, BareBooleanFlag) {
  Flags flags({"--fast", "--slow", "--x=1"});
  EXPECT_TRUE(flags.get_bool("fast", false));
  EXPECT_TRUE(flags.get_bool("slow", false));
}

TEST(Flags, FallbacksWhenAbsent) {
  Flags flags({});
  EXPECT_EQ(flags.get_int("missing", 7), 7);
  EXPECT_EQ(flags.get_string("missing", "d"), "d");
  EXPECT_FALSE(flags.get_bool("missing", false));
  EXPECT_FALSE(flags.has("missing"));
}

TEST(Flags, PositionalArguments) {
  Flags flags({"first", "--k=v", "second"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "first");
  EXPECT_EQ(flags.positional()[1], "second");
}

TEST(Flags, IntList) {
  Flags flags({"--sweep=100,200,300"});
  const auto list = flags.get_int_list("sweep", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], 100);
  EXPECT_EQ(list[2], 300);
  const auto fallback = flags.get_int_list("other", {1, 2});
  EXPECT_EQ(fallback.size(), 2u);
}

TEST(Flags, BoolSpellings) {
  Flags flags({"--a=yes", "--b=off", "--c=1", "--d=false"});
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_FALSE(flags.get_bool("b", true));
  EXPECT_TRUE(flags.get_bool("c", false));
  EXPECT_FALSE(flags.get_bool("d", true));
  Flags bad({"--e=maybe"});
  EXPECT_THROW(bad.get_bool("e", false), std::invalid_argument);
}

TEST(Flags, FailOnUnknown) {
  Flags flags({"--known=1", "--mystery=2"});
  flags.get_int("known", 0);
  EXPECT_THROW(flags.fail_on_unknown(), std::invalid_argument);
  flags.declare("mystery");
  EXPECT_NO_THROW(flags.fail_on_unknown());
}

TEST(Flags, ArgcArgvConstructorSkipsProgramName) {
  const char* argv[] = {"prog", "--x=5"};
  Flags flags(2, argv);
  EXPECT_EQ(flags.get_int("x", 0), 5);
  EXPECT_TRUE(flags.positional().empty());
}

}  // namespace
}  // namespace agentloc::util
