#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace agentloc::util {
namespace {

TEST(RingBuffer, StartsEmptyWithNoCapacity) {
  RingBuffer<int> ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), 0u);  // no slab until the first push
}

TEST(RingBuffer, FifoOrderPreserved) {
  RingBuffer<int> ring;
  for (int i = 0; i < 5; ++i) ring.push_back(i);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ring.front(), i);
    EXPECT_EQ(ring.pop_front(), i);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, WrapsAroundWithoutGrowing) {
  RingBuffer<int> ring;
  for (int i = 0; i < 8; ++i) ring.push_back(i);
  const std::size_t capacity = ring.capacity();
  // Drain half, refill: head wraps past the end of the slab.
  for (int i = 0; i < 4; ++i) ring.pop_front();
  for (int i = 8; i < 12; ++i) ring.push_back(i);
  EXPECT_EQ(ring.capacity(), capacity);
  for (int i = 4; i < 12; ++i) EXPECT_EQ(ring.pop_front(), i);
}

TEST(RingBuffer, GrowPreservesOrderAcrossWrap) {
  RingBuffer<int> ring;
  for (int i = 0; i < 8; ++i) ring.push_back(i);
  for (int i = 0; i < 5; ++i) ring.pop_front();
  for (int i = 8; i < 13; ++i) ring.push_back(i);  // wrapped layout
  // Next pushes force a grow while head != 0.
  for (int i = 13; i < 20; ++i) ring.push_back(i);
  EXPECT_GT(ring.capacity(), 8u);
  for (int i = 5; i < 20; ++i) EXPECT_EQ(ring.pop_front(), i);
}

TEST(RingBuffer, DrainingRetainsCapacity) {
  RingBuffer<int> ring;
  for (int i = 0; i < 100; ++i) ring.push_back(i);
  const std::size_t capacity = ring.capacity();
  while (!ring.empty()) ring.pop_front();
  EXPECT_EQ(ring.capacity(), capacity);  // the slab is kept for reuse
}

TEST(RingBuffer, ClearReleasesHeldValues) {
  RingBuffer<std::shared_ptr<int>> ring;
  auto witness = std::make_shared<int>(1);
  std::weak_ptr<int> alive = witness;
  ring.push_back(std::move(witness));
  ring.clear();
  EXPECT_TRUE(alive.expired());
  EXPECT_TRUE(ring.empty());
  EXPECT_GT(ring.capacity(), 0u);
}

TEST(RingBuffer, MoveTransfersSlabAndEmptiesSource) {
  RingBuffer<std::string> ring;
  ring.push_back("a");
  ring.push_back("b");
  RingBuffer<std::string> taken(std::move(ring));
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 0u);
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken.pop_front(), "a");
  EXPECT_EQ(taken.pop_front(), "b");
}

TEST(RingBuffer, MoveOnlyValuesFlowThrough) {
  RingBuffer<std::unique_ptr<int>> ring;
  ring.push_back(std::make_unique<int>(9));
  auto out = ring.pop_front();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 9);
}

}  // namespace
}  // namespace agentloc::util
