#include "util/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace agentloc::util {
namespace {

TEST(BufferPool, AcquireFreshReservesCapacity) {
  BufferPool pool;
  auto buffer = pool.acquire(1024);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_GE(buffer.capacity(), 1024u);
  EXPECT_EQ(pool.stats().acquires, 1u);
  EXPECT_EQ(pool.stats().reuses, 0u);
}

TEST(BufferPool, ReleaseThenAcquireReusesWarmBuffer) {
  BufferPool pool;
  auto buffer = pool.acquire(512);
  buffer.assign(300, 0xab);
  const std::uint8_t* data = buffer.data();
  pool.release(std::move(buffer));
  EXPECT_EQ(pool.pooled_count(), 1u);

  auto again = pool.acquire(100);
  EXPECT_EQ(again.size(), 0u) << "pooled buffers come back cleared";
  EXPECT_EQ(again.data(), data) << "same heap allocation, no realloc";
  EXPECT_EQ(pool.stats().reuses, 1u);
  EXPECT_EQ(pool.pooled_count(), 0u);
}

TEST(BufferPool, LifoOrder) {
  BufferPool pool;
  auto a = pool.acquire(64);
  auto b = pool.acquire(64);
  const std::uint8_t* pa = a.data();
  const std::uint8_t* pb = b.data();
  ASSERT_NE(pa, pb);
  pool.release(std::move(a));
  pool.release(std::move(b));
  // Most recently released (b) comes back first: it is the cache-warm one.
  EXPECT_EQ(pool.acquire().data(), pb);
  EXPECT_EQ(pool.acquire().data(), pa);
}

TEST(BufferPool, AcquireGrowsUndersizedPooledBuffer) {
  BufferPool pool;
  auto small = pool.acquire(16);
  small.push_back(1);
  pool.release(std::move(small));
  auto big = pool.acquire(4096);
  EXPECT_GE(big.capacity(), 4096u);
  EXPECT_EQ(pool.stats().reuses, 1u);
}

TEST(BufferPool, MaxBuffersBoundDiscards) {
  BufferPool pool(BufferPool::Config{/*max_buffers=*/2,
                                     /*max_retained_bytes=*/1u << 20});
  for (int i = 0; i < 4; ++i) {
    auto buffer = pool.acquire(64);
    buffer.push_back(1);  // ensure nonzero capacity
    pool.release(std::move(buffer));
  }
  // Releases 3 and 4 found the pool momentarily empty again (each acquire
  // popped one), so count discards by forcing 4 concurrent buffers instead.
  std::vector<std::vector<std::uint8_t>> live;
  for (int i = 0; i < 4; ++i) {
    live.push_back(pool.acquire(64));
    live.back().push_back(1);
  }
  const std::uint64_t discards_before = pool.stats().discards;
  for (auto& buffer : live) pool.release(std::move(buffer));
  EXPECT_EQ(pool.pooled_count(), 2u);
  EXPECT_EQ(pool.stats().discards, discards_before + 2);
}

TEST(BufferPool, MaxRetainedBytesBoundDiscards) {
  BufferPool pool(BufferPool::Config{/*max_buffers=*/64,
                                     /*max_retained_bytes=*/4096});
  auto a = pool.acquire(4096);
  auto b = pool.acquire(4096);
  a.push_back(1);
  b.push_back(1);
  pool.release(std::move(a));
  EXPECT_EQ(pool.pooled_count(), 1u);
  const std::uint64_t discards_before = pool.stats().discards;
  pool.release(std::move(b));  // would exceed the byte bound
  EXPECT_EQ(pool.pooled_count(), 1u);
  EXPECT_EQ(pool.stats().discards, discards_before + 1);
}

TEST(BufferPool, ZeroCapacityReleaseIsDiscarded) {
  BufferPool pool;
  pool.release(std::vector<std::uint8_t>{});
  EXPECT_EQ(pool.pooled_count(), 0u);
  EXPECT_EQ(pool.stats().discards, 1u);
}

TEST(BufferPool, RetainedBytesTracksCapacities) {
  BufferPool pool;
  auto a = pool.acquire(100);
  a.push_back(1);
  const std::size_t cap = a.capacity();
  pool.release(std::move(a));
  EXPECT_EQ(pool.retained_bytes(), cap);
  (void)pool.acquire();
  EXPECT_EQ(pool.retained_bytes(), 0u);
}

}  // namespace
}  // namespace agentloc::util
