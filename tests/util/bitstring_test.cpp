#include "util/bitstring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace agentloc::util {
namespace {

TEST(BitString, DefaultIsEmpty) {
  BitString bits;
  EXPECT_TRUE(bits.empty());
  EXPECT_EQ(bits.size(), 0u);
  EXPECT_EQ(bits.to_string(), "");
}

TEST(BitString, FilledConstructor) {
  BitString zeros(5, false);
  EXPECT_EQ(zeros.to_string(), "00000");
  BitString ones(70, true);
  EXPECT_EQ(ones.size(), 70u);
  for (std::size_t i = 0; i < 70; ++i) EXPECT_TRUE(ones[i]) << i;
}

TEST(BitString, InitializerList) {
  BitString bits{true, false, true, true};
  EXPECT_EQ(bits.to_string(), "1011");
  EXPECT_TRUE(bits.front());
  EXPECT_TRUE(bits.back());
}

TEST(BitString, ParseRoundTrip) {
  const std::string text = "0110100111000101";
  EXPECT_EQ(BitString::parse(text).to_string(), text);
}

TEST(BitString, ParseRejectsJunk) {
  EXPECT_THROW(BitString::parse("01x0"), std::invalid_argument);
  EXPECT_THROW(BitString::parse(" 01"), std::invalid_argument);
}

TEST(BitString, FromUintPadsToWidth) {
  EXPECT_EQ(BitString::from_uint(5, 8).to_string(), "00000101");
  EXPECT_EQ(BitString::from_uint(1, 1).to_string(), "1");
  EXPECT_EQ(BitString::from_uint(0, 4).to_string(), "0000");
}

TEST(BitString, FromUintFullWidth) {
  const std::uint64_t value = 0x8000000000000001ull;
  const BitString bits = BitString::from_uint(value, 64);
  EXPECT_TRUE(bits[0]);
  EXPECT_TRUE(bits[63]);
  for (std::size_t i = 1; i < 63; ++i) EXPECT_FALSE(bits[i]);
  EXPECT_EQ(bits.to_uint(), value);
}

TEST(BitString, FromUintRejectsWideWidth) {
  EXPECT_THROW(BitString::from_uint(1, 65), std::invalid_argument);
}

TEST(BitString, AtThrowsOutOfRange) {
  BitString bits{true};
  EXPECT_THROW(bits.at(1), std::out_of_range);
  EXPECT_THROW(BitString().front(), std::out_of_range);
}

TEST(BitString, PushPopAcrossWordBoundary) {
  BitString bits;
  for (int i = 0; i < 130; ++i) bits.push_back(i % 3 == 0);
  EXPECT_EQ(bits.size(), 130u);
  for (int i = 129; i >= 0; --i) {
    EXPECT_EQ(bits.back(), i % 3 == 0) << i;
    bits.pop_back();
  }
  EXPECT_TRUE(bits.empty());
  EXPECT_THROW(bits.pop_back(), std::logic_error);
}

TEST(BitString, SetFlipsBits) {
  BitString bits(8, false);
  bits.set(3, true);
  EXPECT_EQ(bits.to_string(), "00010000");
  bits.set(3, false);
  EXPECT_EQ(bits.to_string(), "00000000");
  EXPECT_THROW(bits.set(8, true), std::out_of_range);
}

TEST(BitString, AppendConcatenates) {
  BitString a = BitString::parse("10");
  BitString b = BitString::parse("011");
  a.append(b);
  EXPECT_EQ(a.to_string(), "10011");
}

TEST(BitString, SelfAppendIsSafe) {
  BitString a = BitString::parse("101");
  a.append(a);
  EXPECT_EQ(a.to_string(), "101101");
}

TEST(BitString, PrefixSubstrSuffix) {
  const BitString bits = BitString::parse("1100101");
  EXPECT_EQ(bits.prefix(0).to_string(), "");
  EXPECT_EQ(bits.prefix(4).to_string(), "1100");
  EXPECT_EQ(bits.substr(2, 3).to_string(), "001");
  EXPECT_EQ(bits.suffix_from(5).to_string(), "01");
  EXPECT_EQ(bits.suffix_from(7).to_string(), "");
  EXPECT_THROW(bits.prefix(8), std::out_of_range);
  EXPECT_THROW(bits.substr(5, 3), std::out_of_range);
  EXPECT_THROW(bits.suffix_from(8), std::out_of_range);
}

TEST(BitString, PrefixClearsDroppedBits) {
  // Equality compares packed words; prefix must zero the dropped tail bits.
  const BitString bits = BitString::parse("1111");
  EXPECT_EQ(bits.prefix(2), BitString::parse("11"));
  EXPECT_EQ(bits.prefix(2).hash(), BitString::parse("11").hash());
}

TEST(BitString, IsPrefixOf) {
  const BitString whole = BitString::parse("10110");
  EXPECT_TRUE(BitString().is_prefix_of(whole));
  EXPECT_TRUE(BitString::parse("101").is_prefix_of(whole));
  EXPECT_TRUE(whole.is_prefix_of(whole));
  EXPECT_FALSE(BitString::parse("100").is_prefix_of(whole));
  EXPECT_FALSE(BitString::parse("101101").is_prefix_of(whole));
}

TEST(BitString, CommonPrefixLength) {
  EXPECT_EQ(BitString::parse("1010").common_prefix_length(
                BitString::parse("1001")),
            2u);
  EXPECT_EQ(BitString().common_prefix_length(BitString::parse("1")), 0u);
  // Exercise the word-at-a-time fast path.
  BitString a(200, true);
  BitString b(200, true);
  b.set(130, false);
  EXPECT_EQ(a.common_prefix_length(b), 130u);
}

TEST(BitString, ToUintMsbFirst) {
  EXPECT_EQ(BitString::parse("101").to_uint(), 5u);
  EXPECT_EQ(BitString().to_uint(), 0u);
  EXPECT_EQ(BitString::parse("0001").to_uint(), 1u);
}

TEST(BitString, ComparisonIsLexicographic) {
  EXPECT_LT(BitString::parse("0"), BitString::parse("1"));
  EXPECT_LT(BitString::parse("01"), BitString::parse("1"));
  EXPECT_LT(BitString::parse("1"), BitString::parse("10"));
  EXPECT_EQ(BitString::parse("10") <=> BitString::parse("10"),
            std::strong_ordering::equal);
}

TEST(BitString, EqualityIncludesLength) {
  EXPECT_NE(BitString::parse("10"), BitString::parse("100"));
  EXPECT_EQ(BitString::parse("10"), BitString::parse("10"));
}

TEST(BitString, HashDistinguishesLengths) {
  EXPECT_NE(BitString::parse("0").hash(), BitString::parse("00").hash());
  EXPECT_NE(BitString().hash(), BitString::parse("0").hash());
}

TEST(BitString, ClearResets) {
  BitString bits = BitString::parse("111");
  bits.clear();
  EXPECT_TRUE(bits.empty());
  bits.push_back(true);
  EXPECT_EQ(bits.to_string(), "1");
}

// Property sweep: random round trips between representations.
class BitStringProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitStringProperty, StringRoundTrip) {
  Rng rng(GetParam());
  std::string text;
  const auto length = static_cast<std::size_t>(rng.next_below(300));
  for (std::size_t i = 0; i < length; ++i) {
    text.push_back(rng.chance(0.5) ? '1' : '0');
  }
  const BitString bits = BitString::parse(text);
  EXPECT_EQ(bits.to_string(), text);
  EXPECT_EQ(bits.size(), text.size());
}

TEST_P(BitStringProperty, SubstrRecombines) {
  Rng rng(GetParam() ^ 0xabcdef);
  BitString bits;
  const auto length = 1 + static_cast<std::size_t>(rng.next_below(200));
  for (std::size_t i = 0; i < length; ++i) bits.push_back(rng.chance(0.5));
  const auto cut = static_cast<std::size_t>(rng.next_below(length + 1));
  BitString head = bits.prefix(cut);
  const BitString tail = bits.suffix_from(cut);
  head.append(tail);
  EXPECT_EQ(head, bits);
}

TEST_P(BitStringProperty, UintRoundTrip) {
  Rng rng(GetParam() ^ 0x5eed);
  const std::uint64_t value = rng.next();
  EXPECT_EQ(BitString::from_uint(value, 64).to_uint(), value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitStringProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

// --- Word-boundary cases for the word-at-a-time kernels -------------------
// The interesting sizes straddle the 64-bit word seams and the inline-buffer
// boundary (kInlineBits = 128): 63/64/65 exercise the first seam, 127/128/129
// the transition from the small-buffer representation to the heap.

class BitStringBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitStringBoundary, PushPopReadBack) {
  const std::size_t n = GetParam();
  Rng rng(n * 977 + 1);
  std::vector<bool> expect;
  BitString bits;
  for (std::size_t i = 0; i < n; ++i) {
    const bool bit = rng.chance(0.5);
    expect.push_back(bit);
    bits.push_back(bit);
  }
  ASSERT_EQ(bits.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(bits[i], expect[i]) << i;
  for (std::size_t i = n; i-- > 0;) {
    bits.pop_back();
    ASSERT_EQ(bits.size(), i);
  }
}

TEST_P(BitStringBoundary, CopyAndEqualityAcrossRepresentations) {
  const std::size_t n = GetParam();
  Rng rng(n * 31 + 7);
  BitString bits;
  for (std::size_t i = 0; i < n; ++i) bits.push_back(rng.chance(0.5));

  const BitString copy = bits;
  EXPECT_EQ(copy, bits);
  EXPECT_EQ(copy.hash(), bits.hash());

  BitString assigned;
  assigned = bits;
  EXPECT_EQ(assigned, bits);

  BitString moved = std::move(assigned);
  EXPECT_EQ(moved, bits);

  if (n > 0) {
    BitString flipped = bits;
    flipped.set(n - 1, !bits[n - 1]);
    EXPECT_NE(flipped, bits);
  }
}

TEST_P(BitStringBoundary, PackedRoundTripAtSeams) {
  const std::size_t n = GetParam();
  Rng rng(n * 131 + 3);
  BitString bits;
  for (std::size_t i = 0; i < n; ++i) bits.push_back(rng.chance(0.5));

  std::vector<std::uint8_t> packed((n + 7) / 8);
  bits.pack_msb(packed.data());
  EXPECT_EQ(BitString::from_packed_msb(packed.data(), n), bits);
}

TEST_P(BitStringBoundary, SubstrStraddlingWordSeams) {
  const std::size_t n = GetParam();
  Rng rng(n * 53 + 11);
  std::string text;
  BitString bits;
  for (std::size_t i = 0; i < n; ++i) {
    const bool bit = rng.chance(0.5);
    bits.push_back(bit);
    text.push_back(bit ? '1' : '0');
  }
  // Every cut around word multiples, plus full-width and empty cuts.
  for (const std::size_t start :
       {std::size_t{0}, std::size_t{1}, n / 2, n > 0 ? n - 1 : 0, n}) {
    for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{63},
                            std::size_t{64}, std::size_t{65}, n}) {
      if (start > n) continue;
      len = std::min(len, n - start);
      EXPECT_EQ(bits.substr(start, len).to_string(),
                text.substr(start, len))
          << "start=" << start << " len=" << len;
    }
  }
}

TEST_P(BitStringBoundary, AppendUnalignedAcrossSeams) {
  const std::size_t n = GetParam();
  Rng rng(n * 17 + 29);
  for (const std::size_t head_len : {std::size_t{0}, std::size_t{1},
                                     std::size_t{63}, std::size_t{64},
                                     std::size_t{65}}) {
    std::string text;
    BitString head;
    for (std::size_t i = 0; i < head_len; ++i) {
      const bool bit = rng.chance(0.5);
      head.push_back(bit);
      text.push_back(bit ? '1' : '0');
    }
    BitString tail;
    for (std::size_t i = 0; i < n; ++i) {
      const bool bit = rng.chance(0.5);
      tail.push_back(bit);
      text.push_back(bit ? '1' : '0');
    }
    head.append(tail);
    EXPECT_EQ(head.to_string(), text) << "head_len=" << head_len;
  }
}

INSTANTIATE_TEST_SUITE_P(WordSeams, BitStringBoundary,
                         ::testing::Values(0, 1, 63, 64, 65, 127, 128, 129,
                                           191, 192, 193));

TEST(BitStringBoundary, SelfAppendCrossesInlineToHeap) {
  // kInlineBits = 128: self-append at 65 bits lands on 130 > 128, forcing
  // the small-buffer -> heap transition while `other` aliases `this`.
  for (const std::size_t n : {1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    Rng rng(n);
    std::string text;
    BitString bits;
    for (std::size_t i = 0; i < n; ++i) {
      const bool bit = rng.chance(0.5);
      bits.push_back(bit);
      text.push_back(bit ? '1' : '0');
    }
    bits.append(bits);
    EXPECT_EQ(bits.size(), 2 * n);
    EXPECT_EQ(bits.to_string(), text + text) << "n=" << n;
  }
}

TEST(BitStringBoundary, CommonPrefixAroundWordSeams) {
  for (const std::size_t n : {63u, 64u, 65u, 127u, 128u, 129u}) {
    const BitString ones(n, true);
    BitString other = ones;
    EXPECT_EQ(ones.common_prefix_length(other), n);
    other.set(n - 1, false);
    EXPECT_EQ(ones.common_prefix_length(other), n - 1);
    other = ones;
    other.push_back(true);
    EXPECT_EQ(ones.common_prefix_length(other), n);
    EXPECT_TRUE(ones.is_prefix_of(other));
    EXPECT_FALSE(other.is_prefix_of(ones));
  }
}

}  // namespace
}  // namespace agentloc::util
