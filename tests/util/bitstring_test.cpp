#include "util/bitstring.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace agentloc::util {
namespace {

TEST(BitString, DefaultIsEmpty) {
  BitString bits;
  EXPECT_TRUE(bits.empty());
  EXPECT_EQ(bits.size(), 0u);
  EXPECT_EQ(bits.to_string(), "");
}

TEST(BitString, FilledConstructor) {
  BitString zeros(5, false);
  EXPECT_EQ(zeros.to_string(), "00000");
  BitString ones(70, true);
  EXPECT_EQ(ones.size(), 70u);
  for (std::size_t i = 0; i < 70; ++i) EXPECT_TRUE(ones[i]) << i;
}

TEST(BitString, InitializerList) {
  BitString bits{true, false, true, true};
  EXPECT_EQ(bits.to_string(), "1011");
  EXPECT_TRUE(bits.front());
  EXPECT_TRUE(bits.back());
}

TEST(BitString, ParseRoundTrip) {
  const std::string text = "0110100111000101";
  EXPECT_EQ(BitString::parse(text).to_string(), text);
}

TEST(BitString, ParseRejectsJunk) {
  EXPECT_THROW(BitString::parse("01x0"), std::invalid_argument);
  EXPECT_THROW(BitString::parse(" 01"), std::invalid_argument);
}

TEST(BitString, FromUintPadsToWidth) {
  EXPECT_EQ(BitString::from_uint(5, 8).to_string(), "00000101");
  EXPECT_EQ(BitString::from_uint(1, 1).to_string(), "1");
  EXPECT_EQ(BitString::from_uint(0, 4).to_string(), "0000");
}

TEST(BitString, FromUintFullWidth) {
  const std::uint64_t value = 0x8000000000000001ull;
  const BitString bits = BitString::from_uint(value, 64);
  EXPECT_TRUE(bits[0]);
  EXPECT_TRUE(bits[63]);
  for (std::size_t i = 1; i < 63; ++i) EXPECT_FALSE(bits[i]);
  EXPECT_EQ(bits.to_uint(), value);
}

TEST(BitString, FromUintRejectsWideWidth) {
  EXPECT_THROW(BitString::from_uint(1, 65), std::invalid_argument);
}

TEST(BitString, AtThrowsOutOfRange) {
  BitString bits{true};
  EXPECT_THROW(bits.at(1), std::out_of_range);
  EXPECT_THROW(BitString().front(), std::out_of_range);
}

TEST(BitString, PushPopAcrossWordBoundary) {
  BitString bits;
  for (int i = 0; i < 130; ++i) bits.push_back(i % 3 == 0);
  EXPECT_EQ(bits.size(), 130u);
  for (int i = 129; i >= 0; --i) {
    EXPECT_EQ(bits.back(), i % 3 == 0) << i;
    bits.pop_back();
  }
  EXPECT_TRUE(bits.empty());
  EXPECT_THROW(bits.pop_back(), std::logic_error);
}

TEST(BitString, SetFlipsBits) {
  BitString bits(8, false);
  bits.set(3, true);
  EXPECT_EQ(bits.to_string(), "00010000");
  bits.set(3, false);
  EXPECT_EQ(bits.to_string(), "00000000");
  EXPECT_THROW(bits.set(8, true), std::out_of_range);
}

TEST(BitString, AppendConcatenates) {
  BitString a = BitString::parse("10");
  BitString b = BitString::parse("011");
  a.append(b);
  EXPECT_EQ(a.to_string(), "10011");
}

TEST(BitString, SelfAppendIsSafe) {
  BitString a = BitString::parse("101");
  a.append(a);
  EXPECT_EQ(a.to_string(), "101101");
}

TEST(BitString, PrefixSubstrSuffix) {
  const BitString bits = BitString::parse("1100101");
  EXPECT_EQ(bits.prefix(0).to_string(), "");
  EXPECT_EQ(bits.prefix(4).to_string(), "1100");
  EXPECT_EQ(bits.substr(2, 3).to_string(), "001");
  EXPECT_EQ(bits.suffix_from(5).to_string(), "01");
  EXPECT_EQ(bits.suffix_from(7).to_string(), "");
  EXPECT_THROW(bits.prefix(8), std::out_of_range);
  EXPECT_THROW(bits.substr(5, 3), std::out_of_range);
  EXPECT_THROW(bits.suffix_from(8), std::out_of_range);
}

TEST(BitString, PrefixClearsDroppedBits) {
  // Equality compares packed words; prefix must zero the dropped tail bits.
  const BitString bits = BitString::parse("1111");
  EXPECT_EQ(bits.prefix(2), BitString::parse("11"));
  EXPECT_EQ(bits.prefix(2).hash(), BitString::parse("11").hash());
}

TEST(BitString, IsPrefixOf) {
  const BitString whole = BitString::parse("10110");
  EXPECT_TRUE(BitString().is_prefix_of(whole));
  EXPECT_TRUE(BitString::parse("101").is_prefix_of(whole));
  EXPECT_TRUE(whole.is_prefix_of(whole));
  EXPECT_FALSE(BitString::parse("100").is_prefix_of(whole));
  EXPECT_FALSE(BitString::parse("101101").is_prefix_of(whole));
}

TEST(BitString, CommonPrefixLength) {
  EXPECT_EQ(BitString::parse("1010").common_prefix_length(
                BitString::parse("1001")),
            2u);
  EXPECT_EQ(BitString().common_prefix_length(BitString::parse("1")), 0u);
  // Exercise the word-at-a-time fast path.
  BitString a(200, true);
  BitString b(200, true);
  b.set(130, false);
  EXPECT_EQ(a.common_prefix_length(b), 130u);
}

TEST(BitString, ToUintMsbFirst) {
  EXPECT_EQ(BitString::parse("101").to_uint(), 5u);
  EXPECT_EQ(BitString().to_uint(), 0u);
  EXPECT_EQ(BitString::parse("0001").to_uint(), 1u);
}

TEST(BitString, ComparisonIsLexicographic) {
  EXPECT_LT(BitString::parse("0"), BitString::parse("1"));
  EXPECT_LT(BitString::parse("01"), BitString::parse("1"));
  EXPECT_LT(BitString::parse("1"), BitString::parse("10"));
  EXPECT_EQ(BitString::parse("10") <=> BitString::parse("10"),
            std::strong_ordering::equal);
}

TEST(BitString, EqualityIncludesLength) {
  EXPECT_NE(BitString::parse("10"), BitString::parse("100"));
  EXPECT_EQ(BitString::parse("10"), BitString::parse("10"));
}

TEST(BitString, HashDistinguishesLengths) {
  EXPECT_NE(BitString::parse("0").hash(), BitString::parse("00").hash());
  EXPECT_NE(BitString().hash(), BitString::parse("0").hash());
}

TEST(BitString, ClearResets) {
  BitString bits = BitString::parse("111");
  bits.clear();
  EXPECT_TRUE(bits.empty());
  bits.push_back(true);
  EXPECT_EQ(bits.to_string(), "1");
}

// Property sweep: random round trips between representations.
class BitStringProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitStringProperty, StringRoundTrip) {
  Rng rng(GetParam());
  std::string text;
  const auto length = static_cast<std::size_t>(rng.next_below(300));
  for (std::size_t i = 0; i < length; ++i) {
    text.push_back(rng.chance(0.5) ? '1' : '0');
  }
  const BitString bits = BitString::parse(text);
  EXPECT_EQ(bits.to_string(), text);
  EXPECT_EQ(bits.size(), text.size());
}

TEST_P(BitStringProperty, SubstrRecombines) {
  Rng rng(GetParam() ^ 0xabcdef);
  BitString bits;
  const auto length = 1 + static_cast<std::size_t>(rng.next_below(200));
  for (std::size_t i = 0; i < length; ++i) bits.push_back(rng.chance(0.5));
  const auto cut = static_cast<std::size_t>(rng.next_below(length + 1));
  BitString head = bits.prefix(cut);
  const BitString tail = bits.suffix_from(cut);
  head.append(tail);
  EXPECT_EQ(head, bits);
}

TEST_P(BitStringProperty, UintRoundTrip) {
  Rng rng(GetParam() ^ 0x5eed);
  const std::uint64_t value = rng.next();
  EXPECT_EQ(BitString::from_uint(value, 64).to_uint(), value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitStringProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace agentloc::util
