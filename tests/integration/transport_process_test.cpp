// End-to-end transport check with REAL process isolation: fork an
// `agentlocd`-shaped server (LocateService over a unix socket), drive it
// from this process with a LocateClient, and verify locate answers against
// ground truth. This is the tier-1 guarantee that the wire format, the
// socket event loop, and the protocol survive an actual kernel boundary —
// not just in-process socketpairs. Skips cleanly where the sandbox forbids
// sockets.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "net/locate_service.hpp"
#include "net/socket_transport.hpp"
#include "util/rng.hpp"

namespace agentloc::net {
namespace {

class TransportProcessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!SocketTransport::sockets_available()) {
      GTEST_SKIP() << "sandbox cannot create sockets";
    }
    path_ = "/tmp/agentloc-proc-" + std::to_string(::getpid()) + ".sock";
    address_.kind = SocketAddress::Kind::kUnix;
    address_.path = path_;

    child_ = ::fork();
    ASSERT_GE(child_, 0) << "fork failed";
    if (child_ == 0) {
      // Server process: serve until killed. _exit (not exit) everywhere so
      // gtest machinery inherited from the parent never runs twice.
      SocketTransport transport;
      std::string error;
      if (!transport.listen(address_, &error)) _exit(1);
      LocateService service(transport, /*partitions=*/8);
      for (;;) transport.poll_once(200);
    }
  }

  void TearDown() override {
    if (child_ > 0) {
      ::kill(child_, SIGKILL);
      int status = 0;
      ::waitpid(child_, &status, 0);
    }
    if (!path_.empty()) ::unlink(path_.c_str());
  }

  /// Connect with retries: the child may not have bound the socket yet.
  bool connect_client(LocateClient& client, std::string* error) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      if (client.connect(address_, error)) return true;
      ::usleep(20 * 1000);
    }
    return false;
  }

  std::string path_;
  SocketAddress address_;
  pid_t child_ = -1;
};

TEST_F(TransportProcessTest, LocateRoundTripsAcrossProcessBoundary) {
  LocateClient client;
  std::string error;
  ASSERT_TRUE(connect_client(client, &error)) << error;
  EXPECT_EQ(client.server_partitions(), 8u);

  // Register a population one-way, fence with a ping, then verify every
  // binding with pipelined locates.
  constexpr std::uint64_t kAgents = 500;
  std::unordered_map<std::uint64_t, NodeId> truth;
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < kAgents; ++i) {
    const std::uint64_t id = util::mix64(i + 1);
    const NodeId node = static_cast<NodeId>(i % 97 + 1);
    ASSERT_TRUE(client.send_update(id, node, /*seq=*/1));
    truth[id] = node;
    ids.push_back(id);
  }
  ASSERT_TRUE(client.ping()) << "ping fence after updates";

  for (std::uint64_t i = 0; i < ids.size(); ++i) {
    client.send_locate(ids[i], /*correlation=*/i + 1);
  }
  const auto replies = client.drain(ids.size(), /*timeout_ms=*/10000);
  ASSERT_EQ(replies.size(), ids.size());
  std::size_t mismatches = 0;
  for (const auto& entry : replies) {
    ASSERT_GE(entry.correlation, 1u);
    ASSERT_LE(entry.correlation, ids.size());
    const std::uint64_t id = ids[entry.correlation - 1];
    if (entry.reply.status != core::LocateStatus::kFound ||
        entry.reply.node != truth.at(id)) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

TEST_F(TransportProcessTest, MovesAndDeregistersAreOrdered) {
  LocateClient client;
  std::string error;
  ASSERT_TRUE(connect_client(client, &error)) << error;

  const std::uint64_t id = util::mix64(4242);
  // A whole lifetime pipelined on one connection, fenced once at the end:
  // register, move thrice, deregister, re-register newer.
  ASSERT_TRUE(client.send_update(id, 1, 1));
  ASSERT_TRUE(client.send_update(id, 2, 2));
  ASSERT_TRUE(client.send_update(id, 3, 3));
  ASSERT_TRUE(client.send_update(id, 4, 4));
  ASSERT_TRUE(client.send_deregister(id, 5));
  ASSERT_TRUE(client.send_update(id, 9, 6));
  ASSERT_TRUE(client.ping());

  const auto reply = client.locate(id);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, core::LocateStatus::kFound);
  EXPECT_EQ(reply->node, 9u);
  EXPECT_EQ(reply->seq, 6u);

  // And a deregister that is NOT followed by a newer update really hides.
  const auto applied = client.update(id, 9, 7);
  ASSERT_TRUE(applied.has_value() && *applied);
  ASSERT_TRUE(client.send_deregister(id, 8));
  ASSERT_TRUE(client.ping());
  const auto gone = client.locate(id);
  ASSERT_TRUE(gone.has_value());
  EXPECT_EQ(gone->status, core::LocateStatus::kUnknown);
}

TEST_F(TransportProcessTest, TwoClientsShareOneDirectory) {
  LocateClient writer;
  LocateClient reader;
  std::string error;
  ASSERT_TRUE(connect_client(writer, &error)) << error;
  ASSERT_TRUE(connect_client(reader, &error)) << error;

  const std::uint64_t id = util::mix64(777);
  const auto applied = writer.update(id, 33, 1);
  ASSERT_TRUE(applied.has_value() && *applied);
  const auto reply = reader.locate(id);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, core::LocateStatus::kFound);
  EXPECT_EQ(reply->node, 33u);
}

}  // namespace
}  // namespace agentloc::net
