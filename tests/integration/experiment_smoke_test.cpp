// End-to-end smoke tests: run small experiments through the public workload
// API and check the system behaves like the paper's — queries succeed, the
// hash mechanism splits under load, and the centralized tracker funnels
// everything through one agent.

#include <gtest/gtest.h>

#include "workload/experiment.hpp"

namespace agentloc::workload {
namespace {

ExperimentConfig small_config(const std::string& scheme) {
  ExperimentConfig config;
  config.scheme = scheme;
  config.nodes = 8;
  config.tagents = 20;
  config.residence = sim::SimTime::millis(500);
  config.total_queries = 200;
  config.queriers = 2;
  config.think = sim::SimTime::millis(50);
  config.warmup = sim::SimTime::seconds(20);
  config.seed = 42;
  return config;
}

TEST(ExperimentSmoke, HashSchemeAnswersQueries) {
  const ExperimentResult result = run_experiment(small_config("hash"));
  EXPECT_EQ(result.queries_found + result.queries_failed, 200u);
  EXPECT_GT(result.queries_found, 190u);  // failures should be rare
  EXPECT_GT(result.location_ms.count(), 0u);
  EXPECT_GT(result.location_ms.mean(), 0.1);
  EXPECT_LT(result.location_ms.mean(), 100.0);
  EXPECT_GT(result.tagent_moves, 100u);
}

TEST(ExperimentSmoke, HashSchemeSplitsUnderLoad) {
  ExperimentConfig config = small_config("hash");
  config.tagents = 50;
  config.residence = sim::SimTime::millis(200);  // 250 updates/s >> Tmax
  config.warmup = sim::SimTime::seconds(40);
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.trackers_at_end, 3u)
      << "expected the mechanism to deploy more IAgents under load";
  EXPECT_GT(result.queries_found, 190u);
}

TEST(ExperimentSmoke, CentralizedSchemeAnswersQueries) {
  const ExperimentResult result = run_experiment(small_config("centralized"));
  EXPECT_EQ(result.trackers_at_end, 1u);
  EXPECT_GT(result.queries_found, 190u);
  EXPECT_LT(result.location_ms.mean(), 200.0);
}

TEST(ExperimentSmoke, DeterministicAcrossRuns) {
  const ExperimentConfig config = small_config("hash");
  const ExperimentResult a = run_experiment(config);
  const ExperimentResult b = run_experiment(config);
  ASSERT_EQ(a.location_ms.count(), b.location_ms.count());
  EXPECT_EQ(a.location_ms.mean(), b.location_ms.mean());
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.tagent_moves, b.tagent_moves);
}

TEST(ExperimentSmoke, UnknownSchemeThrows) {
  ExperimentConfig config = small_config("nonsense");
  EXPECT_THROW(run_experiment(config), std::invalid_argument);
}

}  // namespace
}  // namespace agentloc::workload
