// Churn: agents are created and destroyed while the system runs ("highly
// dynamic open systems in which the number of agents varies considerably
// over time" — paper §1). The mechanism must keep answering for the living
// and fail cleanly for the departed, while its IAgent population follows
// the load both ways.

#include <gtest/gtest.h>

#include "core/hash_scheme.hpp"
#include "platform/agent_system.hpp"
#include "workload/querier.hpp"
#include "workload/tagent.hpp"

namespace agentloc::workload {
namespace {

class ChurnTest : public ::testing::Test {
 protected:
  ChurnTest()
      : network_(simulator_, 12, net::make_default_lan_model(),
                 util::Rng(21)),
        system_(simulator_, network_, platform_config()),
        scheme_(system_, mechanism_config()) {}

  static platform::AgentSystem::Config platform_config() {
    platform::AgentSystem::Config config;
    config.service_time = sim::SimTime::micros(500);
    return config;
  }

  static core::MechanismConfig mechanism_config() {
    core::MechanismConfig config;
    config.stats_window = sim::SimTime::millis(500);
    config.rehash_cooldown = sim::SimTime::seconds(1);
    config.t_max = 30.0;
    config.t_min = 3.0;
    return config;
  }

  TAgent& spawn(net::NodeId node, sim::SimTime residence) {
    TAgent::Config config;
    config.residence = residence;
    config.seed = seeds_.next();
    return system_.create<TAgent>(node, scheme_, config);
  }

  sim::Simulator simulator_;
  net::Network network_;
  platform::AgentSystem system_;
  core::MechanismConfig mechanism_;
  core::HashLocationScheme scheme_;
  util::Rng seeds_{404};
};

TEST_F(ChurnTest, PopulationWaveGrowsAndShrinksIAgents) {
  // Wave 1: a small population.
  std::vector<TAgent*> wave;
  for (int i = 0; i < 10; ++i) {
    wave.push_back(&spawn(static_cast<net::NodeId>(i % 12),
                          sim::SimTime::millis(300)));
  }
  simulator_.run_until(sim::SimTime::seconds(10));
  const std::size_t small = scheme_.tracker_count();

  // Wave 2: five times more agents arrive.
  std::vector<TAgent*> surge;
  for (int i = 0; i < 50; ++i) {
    surge.push_back(&spawn(static_cast<net::NodeId>(i % 12),
                           sim::SimTime::millis(300)));
  }
  simulator_.run_until(sim::SimTime::seconds(40));
  const std::size_t big = scheme_.tracker_count();
  EXPECT_GT(big, small);

  // The surge departs (dispose deregisters through TAgent::on_dispose).
  for (TAgent* agent : surge) {
    if (system_.node_of(agent->id())) system_.dispose(agent->id());
  }
  simulator_.run_until(sim::SimTime::seconds(90));
  EXPECT_LT(scheme_.tracker_count(), big);

  // The original population is still fully locatable.
  std::vector<platform::AgentId> targets;
  for (TAgent* agent : wave) targets.push_back(agent->id());
  QuerierAgent::Config qconfig;
  qconfig.quota = 50;
  qconfig.seed = seeds_.next();
  auto& querier = system_.create<QuerierAgent>(
      3, scheme_, qconfig, targets, [&] { simulator_.request_stop(); });
  simulator_.run_until(sim::SimTime::seconds(300));
  EXPECT_EQ(querier.found(), 50u);
}

TEST_F(ChurnTest, DisposedMidFlightAgentsDontWedgeTheSystem) {
  // Dispose agents at random moments, including while in transit.
  std::vector<platform::AgentId> ids;
  for (int i = 0; i < 30; ++i) {
    ids.push_back(
        spawn(static_cast<net::NodeId>(i % 12), sim::SimTime::millis(150))
            .id());
  }
  simulator_.run_until(sim::SimTime::seconds(5));
  for (const platform::AgentId id : ids) {
    simulator_.schedule_after(sim::SimTime::millis(seeds_.next_below(2000)),
                              [this, id] { system_.dispose(id); });
  }
  simulator_.run_until(sim::SimTime::seconds(30));
  // All 30 TAgents are gone (retired IAgents dispose themselves too, so the
  // platform counter may read higher).
  EXPECT_GE(system_.stats().agents_disposed, 30u);
  for (const platform::AgentId id : ids) EXPECT_FALSE(system_.exists(id));

  // The mechanism is still healthy: a fresh agent registers and is found.
  TAgent& fresh = spawn(2, sim::SimTime::seconds(10));
  simulator_.run_until(sim::SimTime::seconds(31));
  QuerierAgent::Config qconfig;
  qconfig.quota = 3;
  qconfig.seed = 5;
  auto& querier = system_.create<QuerierAgent>(
      7, scheme_, qconfig, std::vector<platform::AgentId>{fresh.id()},
      [&] { simulator_.request_stop(); });
  simulator_.run_until(sim::SimTime::seconds(120));
  EXPECT_EQ(querier.found(), 3u);
}

TEST_F(ChurnTest, RehashDuringConstantQueryStreamLosesNothing) {
  std::vector<platform::AgentId> targets;
  for (int i = 0; i < 20; ++i) {
    targets.push_back(
        spawn(static_cast<net::NodeId>(i % 12), sim::SimTime::millis(200))
            .id());
  }
  // Query continuously from t=1s — right through the initial splits.
  simulator_.run_until(sim::SimTime::seconds(1));
  QuerierAgent::Config qconfig;
  qconfig.quota = 400;
  qconfig.think = sim::SimTime::millis(20);
  qconfig.seed = 6;
  auto& querier = system_.create<QuerierAgent>(
      1, scheme_, qconfig, targets, [&] { simulator_.request_stop(); });
  simulator_.run_until(sim::SimTime::seconds(300));

  EXPECT_EQ(querier.found() + querier.failed(), 400u);
  EXPECT_EQ(querier.failed(), 0u);
  // Splits really happened while we were querying.
  EXPECT_GT(scheme_.hagent().stats().simple_splits +
                scheme_.hagent().stats().complex_splits,
            0u);
}

}  // namespace
}  // namespace agentloc::workload
