// Robustness: the location protocol must converge despite lossy links,
// duplicated messages, and temporary partitions. Losses surface as RPC
// timeouts (bounded end-to-end retries), duplicates are defused by
// sequence-checked upserts, and partitions heal through the lazy-refresh
// path once connectivity returns.

#include <gtest/gtest.h>

#include "core/hash_scheme.hpp"
#include "workload/experiment.hpp"
#include "workload/querier.hpp"
#include "workload/tagent.hpp"

namespace agentloc::workload {
namespace {

ExperimentConfig lossy_config(const std::string& scheme, double drop) {
  ExperimentConfig config;
  config.scheme = scheme;
  config.nodes = 8;
  config.tagents = 25;
  config.residence = sim::SimTime::millis(400);
  config.total_queries = 300;
  config.queriers = 2;
  config.warmup = sim::SimTime::seconds(25);
  config.drop_probability = drop;
  config.seed = 77;
  return config;
}

TEST(FaultInjection, HashSchemeSurvivesTwoPercentLoss) {
  const ExperimentResult result = run_experiment(lossy_config("hash", 0.02));
  EXPECT_EQ(result.queries_found + result.queries_failed, 300u);
  // Losses cost retries, not answers.
  EXPECT_GT(result.queries_found, 290u);
  EXPECT_GT(result.network_stats.messages_dropped, 0u);
  EXPECT_LT(result.location_ms.mean(), 100.0);
}

TEST(FaultInjection, CentralizedSurvivesTwoPercentLoss) {
  const ExperimentResult result =
      run_experiment(lossy_config("centralized", 0.02));
  EXPECT_GT(result.queries_found, 290u);
}

TEST(FaultInjection, HashSchemeSurvivesHeavyLoss) {
  // 10% loss: rehash coordination messages get lost too. The coordinator's
  // timeout unlocks it; updates self-heal entries. Most queries still land.
  const ExperimentResult result = run_experiment(lossy_config("hash", 0.10));
  EXPECT_GT(result.queries_found, 250u);
  EXPECT_GT(result.scheme_stats.timeout_retries, 0u);
}

TEST(FaultInjection, DuplicatedMessagesAreHarmless) {
  // Duplicate every 10th message: sequence checks make updates and handoffs
  // idempotent, and duplicate replies complete an RPC at most once.
  sim::Simulator simulator;
  net::Network network(simulator, 8, net::make_default_lan_model(),
                       util::Rng(5));
  network.faults().duplicate_probability = 0.1;
  platform::AgentSystem::Config platform_config;
  platform_config.service_time = sim::SimTime::micros(500);
  platform::AgentSystem system(simulator, network, platform_config);

  core::MechanismConfig mechanism;
  core::HashLocationScheme scheme(system, mechanism);

  util::Rng seeds(9);
  std::vector<platform::AgentId> targets;
  for (int i = 0; i < 15; ++i) {
    TAgent::Config config;
    config.residence = sim::SimTime::millis(300);
    config.seed = seeds.next();
    auto& agent = system.create<TAgent>(static_cast<net::NodeId>(i % 8),
                                        scheme, config);
    targets.push_back(agent.id());
  }
  simulator.run_until(sim::SimTime::seconds(10));

  QuerierAgent::Config qconfig;
  qconfig.quota = 100;
  qconfig.seed = seeds.next();
  auto& querier = system.create<QuerierAgent>(
      2, scheme, qconfig, targets, [&] { simulator.request_stop(); });
  simulator.run_until(sim::SimTime::seconds(120));

  EXPECT_EQ(querier.found(), 100u);
  EXPECT_GT(network.stats().messages_duplicated, 0u);
}

TEST(FaultInjection, PartitionHealsThroughRefresh) {
  sim::Simulator simulator;
  net::Network network(simulator, 6, net::make_default_lan_model(),
                       util::Rng(3));
  platform::AgentSystem system(simulator, network);
  core::MechanismConfig mechanism;
  core::HashLocationScheme scheme(system, mechanism);

  // A tracked agent at node 4, a querier at node 5.
  TAgent::Config tconfig;
  tconfig.mobile = false;
  tconfig.seed = 11;
  auto& target = system.create<TAgent>(4, scheme, tconfig);
  simulator.run_until(sim::SimTime::millis(100));

  // Partition the querier's node from the initial IAgent's node (node 1).
  network.faults().set_partitioned(5, 1, true);

  QuerierAgent::Config qconfig;
  qconfig.quota = 5;
  qconfig.think = sim::SimTime::millis(50);
  qconfig.seed = 13;
  bool first_batch_done = false;
  auto& blocked = system.create<QuerierAgent>(
      5, scheme, qconfig, std::vector<platform::AgentId>{target.id()},
      [&] { first_batch_done = true; });
  simulator.run_until(sim::SimTime::seconds(120));
  ASSERT_TRUE(first_batch_done);
  EXPECT_GT(blocked.failed(), 0u);  // partitioned: queries could not land

  // Heal and query again: everything works without manual intervention.
  network.faults().set_partitioned(5, 1, false);
  auto& healed = system.create<QuerierAgent>(
      5, scheme, qconfig, std::vector<platform::AgentId>{target.id()},
      [&] { simulator.request_stop(); });
  simulator.run_until(sim::SimTime::seconds(240));
  EXPECT_EQ(healed.found(), 5u);
}

TEST(FaultInjection, LossyRunsAreStillDeterministic) {
  const ExperimentConfig config = lossy_config("hash", 0.05);
  const ExperimentResult a = run_experiment(config);
  const ExperimentResult b = run_experiment(config);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.queries_found, b.queries_found);
  EXPECT_EQ(a.location_ms.mean(), b.location_ms.mean());
}

}  // namespace
}  // namespace agentloc::workload
