// System-wide invariants, checked repeatedly while a live workload runs:
//
//  I1. The leaf predicates of the primary hash copy partition the id space:
//      every id matches exactly one leaf predicate, and that leaf is the one
//      lookup returns.
//  I2. Every registered, settled mobile agent is locatable, and the answer
//      matches platform ground truth once updates quiesce.
//  I3. Entry conservation: with mobility paused and handoffs drained, the
//      IAgents' tables together hold exactly one entry per live TAgent.
//  I4. Secondary copies are always *some* historical version of the primary
//      (their version never exceeds the primary's).
//  I5. Message accounting balances: the platform never loses a message
//      silently — everything sent is processed, bounced, or still in flight,
//      so `sent >= processed + bounced` at every instant.

#include <gtest/gtest.h>

#include <cstring>

#include "core/hash_scheme.hpp"
#include "core/iagent.hpp"
#include "platform/agent_system.hpp"
#include "workload/querier.hpp"
#include "workload/tagent.hpp"

namespace agentloc::workload {
namespace {

class InvariantsTest : public ::testing::Test {
 protected:
  InvariantsTest()
      : network_(simulator_, 10, net::make_default_lan_model(),
                 util::Rng(33)),
        system_(simulator_, network_, platform_config()),
        scheme_(system_, mechanism_config()) {}

  static platform::AgentSystem::Config platform_config() {
    platform::AgentSystem::Config config;
    config.service_time = sim::SimTime::micros(400);
    return config;
  }

  static core::MechanismConfig mechanism_config() {
    core::MechanismConfig config;
    config.stats_window = sim::SimTime::millis(400);
    config.rehash_cooldown = sim::SimTime::millis(800);
    config.t_max = 25.0;
    config.t_min = 2.0;
    return config;
  }

  void check_predicates_partition_id_space() {
    const auto& tree = scheme_.hagent().tree();
    util::Rng probe(99);
    for (int i = 0; i < 200; ++i) {
      const platform::AgentId id = probe.next();
      const auto owner = tree.lookup_id(id).iagent;
      std::size_t matches = 0;
      for (const auto leaf : tree.leaves()) {
        const auto predicate = core::predicate_of(tree, leaf);
        if (predicate.matches(id)) {
          ++matches;
          EXPECT_EQ(leaf, owner);
        }
      }
      ASSERT_EQ(matches, 1u) << "id " << id;
    }
  }

  std::size_t total_iagent_entries() {
    std::size_t total = 0;
    for (const auto leaf : scheme_.hagent().tree().leaves()) {
      auto* iagent = dynamic_cast<core::IAgent*>(system_.find(leaf));
      EXPECT_NE(iagent, nullptr);
      if (iagent != nullptr) total += iagent->entry_count();
    }
    return total;
  }

  sim::Simulator simulator_;
  net::Network network_;
  platform::AgentSystem system_;
  core::HashLocationScheme scheme_;
};

TEST_F(InvariantsTest, HoldThroughoutAChurnyRun) {
  util::Rng seeds(7);
  std::vector<TAgent*> population;
  for (int i = 0; i < 40; ++i) {
    TAgent::Config config;
    config.residence = sim::SimTime::millis(200);
    config.seed = seeds.next();
    population.push_back(&system_.create<TAgent>(
        static_cast<net::NodeId>(i % 10), scheme_, config));
  }

  // I1 + I4, sampled across the whole run while rehashes happen.
  for (int epoch = 0; epoch < 12; ++epoch) {
    simulator_.run_until(simulator_.now() + sim::SimTime::seconds(2));
    check_predicates_partition_id_space();
    const auto primary_version = scheme_.hagent().tree().version();
    for (net::NodeId node = 0; node < 10; ++node) {
      EXPECT_LE(scheme_.lhagent(node).version(), primary_version);
    }
  }
  EXPECT_GT(scheme_.hagent().iagent_count(), 1u);

  // Pause mobility and drain in-flight updates/handoffs.
  for (auto* agent : population) agent->set_mobile(false);
  simulator_.run_until(simulator_.now() + sim::SimTime::seconds(5));

  // I3: exactly one entry per live TAgent, spread over the IAgents.
  EXPECT_EQ(total_iagent_entries(), population.size());

  // I2: every agent locatable at its true node.
  std::vector<platform::AgentId> targets;
  for (auto* agent : population) targets.push_back(agent->id());
  QuerierAgent::Config qconfig;
  qconfig.quota = 120;
  qconfig.think = sim::SimTime::millis(10);
  qconfig.seed = seeds.next();
  auto& querier = system_.create<QuerierAgent>(
      2, scheme_, qconfig, targets, [&] { simulator_.request_stop(); });
  simulator_.run_until(simulator_.now() + sim::SimTime::seconds(120));
  EXPECT_EQ(querier.found(), 120u);
  EXPECT_EQ(querier.wrong_location(), 0u);  // population is stationary now
}

TEST_F(InvariantsTest, MessageAccountingBalancesThroughoutARun) {
  util::Rng seeds(23);
  std::vector<TAgent*> population;
  for (int i = 0; i < 30; ++i) {
    TAgent::Config config;
    config.residence = sim::SimTime::millis(200);
    config.seed = seeds.next();
    population.push_back(&system_.create<TAgent>(
        static_cast<net::NodeId>(i % 10), scheme_, config));
  }

  // I5, sampled while registrations, updates, rehashes, and handoffs churn.
  for (int epoch = 0; epoch < 10; ++epoch) {
    simulator_.run_until(simulator_.now() + sim::SimTime::seconds(1));
    const auto& stats = system_.stats();
    ASSERT_GE(stats.messages_sent,
              stats.messages_processed + stats.messages_bounced)
        << "epoch " << epoch;
  }

  // Quiesce; on this loss-free network the residue is only what was still
  // in flight or queued at the sampling instant, so the bound stays tight.
  for (auto* agent : population) agent->set_mobile(false);
  simulator_.run_until(simulator_.now() + sim::SimTime::seconds(5));
  const auto& stats = system_.stats();
  EXPECT_GT(stats.messages_sent, 0u);
  EXPECT_GE(stats.messages_sent,
            stats.messages_processed + stats.messages_bounced);
  // Nearly everything has drained: allow only a handful of messages still
  // riding timers (idle-merge probes and the like).
  EXPECT_LE(stats.messages_sent -
                (stats.messages_processed + stats.messages_bounced),
            8u);
}

// A fixed-seed run with update batching enabled must be self-reproducible:
// the batcher's timers and flush-time target resolution ride the same
// deterministic event order as everything else.
struct RunFingerprint {
  std::uint64_t sent = 0;
  std::uint64_t processed = 0;
  std::uint64_t flushes = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t found = 0;
  std::uint64_t wrong = 0;
  std::uint64_t latency_mean_bits = 0;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint run_batched_once(std::uint64_t seed) {
  util::Rng master(seed);
  sim::Simulator simulator;
  net::Network network(simulator, 6, net::make_default_lan_model(),
                       master.fork());
  platform::AgentSystem system(simulator, network);

  core::MechanismConfig mechanism;
  mechanism.update_batching = true;
  mechanism.batch_flush_interval = sim::SimTime::millis(40);
  core::HashLocationScheme scheme(system, mechanism);

  std::vector<platform::AgentId> targets;
  for (int i = 0; i < 24; ++i) {
    TAgent::Config config;
    config.residence = sim::SimTime::millis(150);
    config.seed = master.next();
    targets.push_back(
        system.create<TAgent>(static_cast<net::NodeId>(i % 6), scheme, config)
            .id());
  }
  QuerierAgent::Config qconfig;
  qconfig.quota = 0;
  qconfig.think = sim::SimTime::millis(25);
  qconfig.seed = master.next();
  auto& querier =
      system.create<QuerierAgent>(1, scheme, qconfig, targets);
  simulator.run_until(sim::SimTime::seconds(8));

  RunFingerprint fingerprint;
  fingerprint.sent = system.stats().messages_sent;
  fingerprint.processed = system.stats().messages_processed;
  fingerprint.flushes = system.stats().batch_flushes;
  fingerprint.coalesced = system.stats().messages_coalesced;
  fingerprint.found = querier.found();
  fingerprint.wrong = querier.wrong_location();
  const double mean = querier.latencies_ms().mean();
  std::memcpy(&fingerprint.latency_mean_bits, &mean, sizeof(mean));
  return fingerprint;
}

TEST(BatchedDeterminism, FixedSeedBatchedRunIsSelfReproducible) {
  const RunFingerprint first = run_batched_once(91);
  const RunFingerprint second = run_batched_once(91);
  EXPECT_GT(first.flushes, 0u);
  EXPECT_GT(first.coalesced, 0u);
  EXPECT_GT(first.found, 0u);
  EXPECT_EQ(first, second);
}

TEST_F(InvariantsTest, EntryConservationAcrossForcedMergeCycle) {
  util::Rng seeds(17);
  std::vector<TAgent*> population;
  for (int i = 0; i < 30; ++i) {
    TAgent::Config config;
    config.residence = sim::SimTime::millis(150);
    config.seed = seeds.next();
    population.push_back(&system_.create<TAgent>(
        static_cast<net::NodeId>(i % 10), scheme_, config));
  }
  // Grow under load…
  simulator_.run_until(sim::SimTime::seconds(15));
  const auto peak = scheme_.hagent().iagent_count();
  EXPECT_GT(peak, 1u);

  // …then go idle so merges shrink the population back.
  for (auto* agent : population) agent->set_mobile(false);
  simulator_.run_until(simulator_.now() + sim::SimTime::seconds(20));
  EXPECT_LT(scheme_.hagent().iagent_count(), peak);

  // Every entry survived every handoff and retirement.
  EXPECT_EQ(total_iagent_entries(), population.size());
  check_predicates_partition_id_space();
}

}  // namespace
}  // namespace agentloc::workload
