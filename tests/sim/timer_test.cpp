#include "sim/timer.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace agentloc::sim {
namespace {

TEST(PeriodicTimer, FiresEveryPeriod) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, SimTime::millis(10), [&] { ++ticks; });
  timer.start();
  sim.run_until(SimTime::millis(55));
  EXPECT_EQ(ticks, 5);
}

TEST(PeriodicTimer, DoesNotFireUntilStarted) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, SimTime::millis(10), [&] { ++ticks; });
  sim.run_until(SimTime::millis(100));
  EXPECT_EQ(ticks, 0);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, StopHaltsFiring) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, SimTime::millis(10), [&] { ++ticks; });
  timer.start();
  sim.run_until(SimTime::millis(25));
  timer.stop();
  EXPECT_FALSE(timer.running());
  sim.run_until(SimTime::millis(100));
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTimer, CallbackMayStopItself) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, SimTime::millis(10), [&] {
    if (++ticks == 3) timer.stop();
  });
  timer.start();
  sim.run_until(SimTime::seconds(1));
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTimer, DestructionCancelsPendingTick) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTimer timer(sim, SimTime::millis(10), [&] { ++ticks; });
    timer.start();
    sim.run_until(SimTime::millis(15));
  }
  sim.run_until(SimTime::millis(100));
  EXPECT_EQ(ticks, 1);
}

TEST(PeriodicTimer, RestartResetsPhase) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, SimTime::millis(10), [&] { ++ticks; });
  timer.start();
  sim.run_until(SimTime::millis(5));
  timer.start();  // re-arm: next tick at t=15
  sim.run_until(SimTime::millis(12));
  EXPECT_EQ(ticks, 0);
  sim.run_until(SimTime::millis(16));
  EXPECT_EQ(ticks, 1);
}

TEST(PeriodicTimer, SetPeriodAppliesFromNextArm) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, SimTime::millis(10), [&] { ++ticks; });
  timer.start();
  timer.set_period(SimTime::millis(50));
  sim.run_until(SimTime::millis(10));
  EXPECT_EQ(ticks, 1);  // first tick still on the old schedule
  sim.run_until(SimTime::millis(59));
  EXPECT_EQ(ticks, 1);
  sim.run_until(SimTime::millis(60));
  EXPECT_EQ(ticks, 2);
}

TEST(Timeout, FiresOnce) {
  Simulator sim;
  int fired = 0;
  Timeout timeout(sim);
  timeout.arm(SimTime::millis(5), [&] { ++fired; });
  EXPECT_TRUE(timeout.pending());
  sim.run_until(SimTime::millis(100));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timeout.pending());
}

TEST(Timeout, ReArmReplacesPrevious) {
  Simulator sim;
  int first = 0, second = 0;
  Timeout timeout(sim);
  timeout.arm(SimTime::millis(5), [&] { ++first; });
  timeout.arm(SimTime::millis(10), [&] { ++second; });
  sim.run_until(SimTime::millis(100));
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(Timeout, CancelPreventsFiring) {
  Simulator sim;
  int fired = 0;
  Timeout timeout(sim);
  timeout.arm(SimTime::millis(5), [&] { ++fired; });
  timeout.cancel();
  sim.run_until(SimTime::millis(100));
  EXPECT_EQ(fired, 0);
}

TEST(Timeout, DestructionCancels) {
  Simulator sim;
  int fired = 0;
  {
    Timeout timeout(sim);
    timeout.arm(SimTime::millis(5), [&] { ++fired; });
  }
  sim.run_until(SimTime::millis(100));
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace agentloc::sim
