#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

namespace agentloc::sim {
namespace {

TEST(SimTime, ConversionsAndArithmetic) {
  EXPECT_EQ(SimTime::millis(1.5).as_nanos(), 1'500'000);
  EXPECT_DOUBLE_EQ(SimTime::seconds(2).as_millis(), 2000.0);
  EXPECT_DOUBLE_EQ(SimTime::micros(5).as_micros(), 5.0);
  EXPECT_EQ(SimTime::millis(1) + SimTime::millis(2), SimTime::millis(3));
  EXPECT_EQ(SimTime::millis(3) - SimTime::millis(2), SimTime::millis(1));
  EXPECT_EQ(SimTime::millis(2) * 3, SimTime::millis(6));
  EXPECT_EQ(SimTime::millis(6) / 3, SimTime::millis(2));
  EXPECT_LT(SimTime::zero(), SimTime::millis(1));
  EXPECT_LT(SimTime::seconds(100000), SimTime::infinity());
}

TEST(SimTime, Rendering) {
  EXPECT_EQ(SimTime::millis(12.5).str(), "12.500ms");
}

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::millis(3), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::millis(1), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::millis(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::millis(3));
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::millis(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime observed = SimTime::zero();
  sim.schedule_at(SimTime::millis(5), [&] {
    sim.schedule_after(SimTime::millis(2),
                       [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, SimTime::millis(7));
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  SimTime observed = SimTime::millis(-1);
  sim.schedule_at(SimTime::millis(5), [&] {
    sim.schedule_at(SimTime::millis(1), [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, SimTime::millis(5));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(SimTime::millis(1), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(Simulator, CancelUnknownIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(9999));
}

TEST(Simulator, RunUntilStopsAtDeadlineInclusive) {
  Simulator sim;
  std::vector<int> ran;
  sim.schedule_at(SimTime::millis(1), [&] { ran.push_back(1); });
  sim.schedule_at(SimTime::millis(2), [&] { ran.push_back(2); });
  sim.schedule_at(SimTime::millis(3), [&] { ran.push_back(3); });
  const auto count = sim.run_until(SimTime::millis(2));
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), SimTime::millis(2));
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockOverIdleStretch) {
  Simulator sim;
  sim.run_until(SimTime::millis(10));
  EXPECT_EQ(sim.now(), SimTime::millis(10));
}

TEST(Simulator, StepExecutesSingleEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime::millis(1), [&] { ++count; });
  sim.schedule_at(SimTime::millis(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RequestStopBreaksRun) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime::millis(1), [&] {
    ++count;
    sim.request_stop();
  });
  sim.schedule_at(SimTime::millis(2), [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsCanScheduleChains) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(SimTime::micros(10), chain);
  };
  sim.schedule_after(SimTime::micros(10), chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), SimTime::micros(1000));
  EXPECT_EQ(sim.executed(), 100u);
}

TEST(Simulator, CancellationStress) {
  // Schedule many events, cancel a random subset, and check that exactly
  // the survivors run, in timestamp order.
  Simulator sim;
  std::vector<EventId> ids;
  std::vector<int> ran;
  for (int i = 0; i < 500; ++i) {
    // Deliberately colliding timestamps to stress tie-breaking.
    ids.push_back(sim.schedule_at(SimTime::micros((i * 37) % 100),
                                  [&ran, i] { ran.push_back(i); }));
  }
  std::vector<bool> cancelled(500, false);
  for (int i = 0; i < 500; i += 3) {
    cancelled[static_cast<std::size_t>(i)] = true;
    EXPECT_TRUE(sim.cancel(ids[static_cast<std::size_t>(i)]));
  }
  sim.run();
  EXPECT_EQ(ran.size(), 500u - 167u);
  for (const int i : ran) {
    EXPECT_FALSE(cancelled[static_cast<std::size_t>(i)]) << i;
  }
  // Timestamp order: (i*37)%100 must be non-decreasing over `ran`.
  for (std::size_t k = 1; k < ran.size(); ++k) {
    EXPECT_LE((ran[k - 1] * 37) % 100, (ran[k] * 37) % 100);
  }
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, CancelInsideHandlerOfSameTimestamp) {
  Simulator sim;
  bool second_ran = false;
  EventId second = kInvalidEvent;
  sim.schedule_at(SimTime::millis(1), [&] { sim.cancel(second); });
  second = sim.schedule_at(SimTime::millis(1), [&] { second_ran = true; });
  sim.run();
  EXPECT_FALSE(second_ran);
}

TEST(Simulator, PendingCountsExcludeCancelled) {
  Simulator sim;
  const EventId a = sim.schedule_at(SimTime::millis(1), [] {});
  sim.schedule_at(SimTime::millis(2), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.empty());
}

TEST(Simulator, CancelAfterExecutionReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(SimTime::millis(1), [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 1u);
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, SlotReuseInvalidatesOldIds) {
  // The pool reuses the cancelled event's slot, but the generation tag in
  // the id must keep the old handle dead and the ids distinct.
  Simulator sim;
  const EventId first = sim.schedule_at(SimTime::millis(1), [] {});
  ASSERT_TRUE(sim.cancel(first));
  const EventId second = sim.schedule_at(SimTime::millis(2), [] {});
  EXPECT_NE(first, second);
  EXPECT_FALSE(sim.cancel(first));
  EXPECT_TRUE(sim.cancel(second));
  EXPECT_FALSE(sim.cancel(second));
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, IdsStayUniqueAcrossHeavySlotReuse) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int cycle = 0; cycle < 1000; ++cycle) {
    const EventId id = sim.schedule_at(SimTime::millis(1), [] {});
    for (const EventId old : ids) EXPECT_NE(id, old);
    if (ids.size() > 8) ids.erase(ids.begin());
    ids.push_back(id);
    if (cycle % 2 == 0) sim.cancel(id);
  }
  sim.run();
  EXPECT_EQ(sim.executed(), 500u);
}

TEST(Simulator, CancelReleasesCapturedResourcesImmediately) {
  Simulator sim;
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  const EventId id =
      sim.schedule_at(SimTime::millis(1), [token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());  // handler still owns the capture
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_TRUE(watch.expired());  // released on cancel, not at drain time
}

TEST(Simulator, ExecutionReleasesCapturedResources) {
  Simulator sim;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  sim.schedule_at(SimTime::millis(1), [token] { (void)*token; });
  token.reset();
  sim.run();
  EXPECT_TRUE(watch.expired());
}

TEST(Simulator, OversizedHandlersFallBackToTheHeap) {
  // Captures past the inline buffer take the heap path; behaviour is
  // unchanged, including immediate release on cancel.
  Simulator sim;
  std::array<std::uint64_t, 16> payload{};
  payload[7] = 99;
  std::uint64_t seen = 0;
  sim.schedule_at(SimTime::millis(1), [payload, &seen] { seen = payload[7]; });
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  const EventId cancelled = sim.schedule_at(
      SimTime::millis(2), [payload, token] { (void)*token; });
  token.reset();
  EXPECT_TRUE(sim.cancel(cancelled));
  EXPECT_TRUE(watch.expired());
  sim.run();
  EXPECT_EQ(seen, 99u);
}

TEST(Simulator, MoveOnlyCapturesSupported) {
  // InlineFunction is move-only, so handlers may own move-only resources —
  // something the previous std::function-based storage rejected.
  Simulator sim;
  auto value = std::make_unique<int>(31);
  int seen = 0;
  sim.schedule_at(SimTime::millis(1),
                  [value = std::move(value), &seen] { seen = *value; });
  sim.run();
  EXPECT_EQ(seen, 31);
}

TEST(Simulator, CancellationBacklogStaysBounded) {
  // Armed-then-cancelled timeouts are the dominant event pattern of RPC
  // traffic. The pool must recycle their slots and the heap must compact
  // the corpses instead of accumulating 100k dead entries.
  Simulator sim;
  for (int i = 0; i < 100'000; ++i) {
    const EventId id = sim.schedule_at(SimTime::seconds(3600), [] {});
    ASSERT_TRUE(sim.cancel(id));
  }
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_TRUE(sim.empty());
  EXPECT_LE(sim.pool_size(), 64u);
  sim.run();
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(Simulator, ReservePreservesSemantics) {
  Simulator sim;
  sim.reserve(4096);
  EXPECT_TRUE(sim.empty());
  int count = 0;
  for (int i = 0; i < 32; ++i) {
    sim.schedule_at(SimTime::millis(i), [&count] { ++count; });
  }
  sim.run();
  EXPECT_EQ(count, 32);
}

}  // namespace
}  // namespace agentloc::sim
