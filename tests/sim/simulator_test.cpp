#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace agentloc::sim {
namespace {

TEST(SimTime, ConversionsAndArithmetic) {
  EXPECT_EQ(SimTime::millis(1.5).as_nanos(), 1'500'000);
  EXPECT_DOUBLE_EQ(SimTime::seconds(2).as_millis(), 2000.0);
  EXPECT_DOUBLE_EQ(SimTime::micros(5).as_micros(), 5.0);
  EXPECT_EQ(SimTime::millis(1) + SimTime::millis(2), SimTime::millis(3));
  EXPECT_EQ(SimTime::millis(3) - SimTime::millis(2), SimTime::millis(1));
  EXPECT_EQ(SimTime::millis(2) * 3, SimTime::millis(6));
  EXPECT_EQ(SimTime::millis(6) / 3, SimTime::millis(2));
  EXPECT_LT(SimTime::zero(), SimTime::millis(1));
  EXPECT_LT(SimTime::seconds(100000), SimTime::infinity());
}

TEST(SimTime, Rendering) {
  EXPECT_EQ(SimTime::millis(12.5).str(), "12.500ms");
}

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::millis(3), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::millis(1), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::millis(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::millis(3));
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::millis(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime observed = SimTime::zero();
  sim.schedule_at(SimTime::millis(5), [&] {
    sim.schedule_after(SimTime::millis(2),
                       [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, SimTime::millis(7));
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  SimTime observed = SimTime::millis(-1);
  sim.schedule_at(SimTime::millis(5), [&] {
    sim.schedule_at(SimTime::millis(1), [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, SimTime::millis(5));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(SimTime::millis(1), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(Simulator, CancelUnknownIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(9999));
}

TEST(Simulator, RunUntilStopsAtDeadlineInclusive) {
  Simulator sim;
  std::vector<int> ran;
  sim.schedule_at(SimTime::millis(1), [&] { ran.push_back(1); });
  sim.schedule_at(SimTime::millis(2), [&] { ran.push_back(2); });
  sim.schedule_at(SimTime::millis(3), [&] { ran.push_back(3); });
  const auto count = sim.run_until(SimTime::millis(2));
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), SimTime::millis(2));
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockOverIdleStretch) {
  Simulator sim;
  sim.run_until(SimTime::millis(10));
  EXPECT_EQ(sim.now(), SimTime::millis(10));
}

TEST(Simulator, StepExecutesSingleEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime::millis(1), [&] { ++count; });
  sim.schedule_at(SimTime::millis(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RequestStopBreaksRun) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime::millis(1), [&] {
    ++count;
    sim.request_stop();
  });
  sim.schedule_at(SimTime::millis(2), [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsCanScheduleChains) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(SimTime::micros(10), chain);
  };
  sim.schedule_after(SimTime::micros(10), chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), SimTime::micros(1000));
  EXPECT_EQ(sim.executed(), 100u);
}

TEST(Simulator, CancellationStress) {
  // Schedule many events, cancel a random subset, and check that exactly
  // the survivors run, in timestamp order.
  Simulator sim;
  std::vector<EventId> ids;
  std::vector<int> ran;
  for (int i = 0; i < 500; ++i) {
    // Deliberately colliding timestamps to stress tie-breaking.
    ids.push_back(sim.schedule_at(SimTime::micros((i * 37) % 100),
                                  [&ran, i] { ran.push_back(i); }));
  }
  std::vector<bool> cancelled(500, false);
  for (int i = 0; i < 500; i += 3) {
    cancelled[static_cast<std::size_t>(i)] = true;
    EXPECT_TRUE(sim.cancel(ids[static_cast<std::size_t>(i)]));
  }
  sim.run();
  EXPECT_EQ(ran.size(), 500u - 167u);
  for (const int i : ran) {
    EXPECT_FALSE(cancelled[static_cast<std::size_t>(i)]) << i;
  }
  // Timestamp order: (i*37)%100 must be non-decreasing over `ran`.
  for (std::size_t k = 1; k < ran.size(); ++k) {
    EXPECT_LE((ran[k - 1] * 37) % 100, (ran[k] * 37) % 100);
  }
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, CancelInsideHandlerOfSameTimestamp) {
  Simulator sim;
  bool second_ran = false;
  EventId second = kInvalidEvent;
  sim.schedule_at(SimTime::millis(1), [&] { sim.cancel(second); });
  second = sim.schedule_at(SimTime::millis(1), [&] { second_ran = true; });
  sim.run();
  EXPECT_FALSE(second_ran);
}

TEST(Simulator, PendingCountsExcludeCancelled) {
  Simulator sim;
  const EventId a = sim.schedule_at(SimTime::millis(1), [] {});
  sim.schedule_at(SimTime::millis(2), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.empty());
}

}  // namespace
}  // namespace agentloc::sim
