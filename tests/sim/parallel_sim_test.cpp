// ParallelSimulator: conservative safe-window LP engine (DESIGN.md §13).
// Suite names carry "Parallel" so the tsan CI preset runs them under
// ThreadSanitizer.

#include "sim/parallel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace agentloc::sim {
namespace {

ParallelSimulator::Config make_config(std::size_t lps, std::size_t threads,
                                      SimTime lookahead) {
  ParallelSimulator::Config config;
  config.lps = lps;
  config.threads = threads;
  config.lookahead = lookahead;
  return config;
}

TEST(ParallelSimTest, LocalEventsRunInTimeOrder) {
  ParallelSimulator engine(make_config(2, 1, SimTime::micros(100)));
  std::vector<int> order;
  engine.lp(0).schedule_at(SimTime::micros(30), [&] { order.push_back(3); });
  engine.lp(0).schedule_at(SimTime::micros(10), [&] { order.push_back(1); });
  engine.lp(0).schedule_at(SimTime::micros(20), [&] { order.push_back(2); });
  engine.run_until(SimTime::millis(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.executed(), 3u);
}

TEST(ParallelSimTest, CrossLpMessageArrivesAtItsTimestamp) {
  ParallelSimulator engine(make_config(2, 1, SimTime::micros(100)));
  SimTime arrival = SimTime::zero();
  engine.lp(0).schedule_at(SimTime::micros(50), [&] {
    engine.post(0, 1, engine.lp(0).now() + SimTime::micros(200),
                [&] { arrival = engine.lp(1).now(); });
  });
  engine.run_until(SimTime::millis(5));
  EXPECT_EQ(arrival, SimTime::micros(250));
  EXPECT_EQ(engine.cross_lp_messages(), 1u);
}

TEST(ParallelSimTest, SameTimeArrivalsOrderedBySrcThenSeq) {
  // Three senders post arrivals carrying identical timestamps at LP 3; the
  // deterministic (time, src, seq) key must order them src 0 < 1 < 2, and
  // within one sender in send order, regardless of posting order.
  ParallelSimulator engine(make_config(4, 1, SimTime::micros(100)));
  std::vector<std::string> order;
  const SimTime when = SimTime::millis(2);
  // Sender 2 posts first in wall time — must still run last.
  engine.lp(2).schedule_at(SimTime::micros(10), [&] {
    engine.post(2, 3, when, [&] { order.push_back("src2#0"); });
  });
  engine.lp(0).schedule_at(SimTime::micros(20), [&] {
    engine.post(0, 3, when, [&] { order.push_back("src0#0"); });
    engine.post(0, 3, when, [&] { order.push_back("src0#1"); });
  });
  engine.lp(1).schedule_at(SimTime::micros(30), [&] {
    engine.post(1, 3, when, [&] { order.push_back("src1#0"); });
  });
  engine.run_until(SimTime::millis(5));
  EXPECT_EQ(order, (std::vector<std::string>{"src0#0", "src0#1", "src1#0",
                                             "src2#0"}));
}

TEST(ParallelSimTest, ZeroLookaheadFallsBackToSequential) {
  ParallelSimulator engine(make_config(4, 8, SimTime::zero()));
  EXPECT_FALSE(engine.threaded());
  EXPECT_EQ(engine.threads(), 1u);

  // Zero-latency messaging still works: each hop lands in a later
  // one-nanosecond window at an unchanged timestamp.
  int hops = 0;
  SimTime last = SimTime::zero();
  engine.lp(0).schedule_at(SimTime::micros(1), [&] {
    engine.post(0, 1, engine.lp(0).now(), [&] {
      ++hops;
      engine.post(1, 2, engine.lp(1).now(), [&] {
        ++hops;
        last = engine.lp(2).now();
      });
    });
  });
  engine.run_until(SimTime::millis(1));
  EXPECT_EQ(hops, 2);
  EXPECT_EQ(last, SimTime::micros(1));
}

TEST(ParallelSimTest, ThreadsClampedToLpCount) {
  ParallelSimulator engine(make_config(2, 16, SimTime::micros(10)));
  EXPECT_EQ(engine.threads(), 2u);
  EXPECT_TRUE(engine.threaded());
}

TEST(ParallelSimTest, RunUntilDeadlineIsInclusiveAndClocksAdvance) {
  ParallelSimulator engine(make_config(2, 1, SimTime::micros(100)));
  bool at_deadline = false;
  engine.lp(0).schedule_at(SimTime::millis(3), [&] { at_deadline = true; });
  engine.run_until(SimTime::millis(3));
  EXPECT_TRUE(at_deadline);
  // Idle LP 1 never executed anything but its clock reached the deadline.
  EXPECT_EQ(engine.lp(1).now(), SimTime::millis(3));
}

TEST(ParallelSimTest, RequestStopHaltsAtWindowBoundary) {
  ParallelSimulator engine(make_config(2, 1, SimTime::micros(100)));
  int ran = 0;
  engine.lp(0).schedule_at(SimTime::micros(10), [&] {
    ++ran;
    engine.request_stop();
  });
  // Far-future event on the other LP must not run after the stop.
  engine.lp(1).schedule_at(SimTime::seconds(1), [&] { ++ran; });
  engine.run_until(SimTime::seconds(2));
  EXPECT_EQ(ran, 1);
}

/// Deterministic message storm: `kLps` LPs ping-pong timestamped messages
/// with per-LP RNG streams; the full execution trace (LP, time, payload) is
/// recorded through a mutex and compared across worker counts after sorting
/// is *not* applied — the trace is keyed per-LP so it is identical no
/// matter which thread ran which LP.
struct StormTrace {
  std::mutex mutex;
  std::vector<std::vector<std::uint64_t>> per_lp;
};

void run_storm(std::size_t threads, std::vector<std::vector<std::uint64_t>>& out) {
  constexpr std::size_t kLps = 8;
  constexpr int kFanout = 3;
  ParallelSimulator engine(
      make_config(kLps, threads, SimTime::micros(50)));
  auto trace = std::make_shared<StormTrace>();
  trace->per_lp.resize(kLps);
  auto rngs = std::make_shared<std::vector<util::Rng>>();
  for (std::size_t i = 0; i < kLps; ++i) {
    rngs->emplace_back(0xabcd0000 + i);
  }

  // Each LP seeds one initial event; every event records itself and, while
  // the budget lasts, fans out messages to RNG-chosen LPs at RNG-chosen
  // future times. ~kLps * 2^depth events in total.
  struct Node {
    ParallelSimulator* engine;
    std::shared_ptr<StormTrace> trace;
    std::shared_ptr<std::vector<util::Rng>> rngs;

    void fire(std::uint32_t lp, std::uint64_t tag, int depth) const {
      {
        // The mutex serializes only the push; the per-LP vector keyed by
        // `lp` is what must come out identical across thread counts.
        std::lock_guard<std::mutex> lock(trace->mutex);
        trace->per_lp[lp].push_back(
            tag ^ static_cast<std::uint64_t>(
                      engine->lp(lp).now().as_nanos()));
      }
      if (depth <= 0) return;
      util::Rng& rng = (*rngs)[lp];
      for (int m = 0; m < kFanout; ++m) {
        const auto dst =
            static_cast<std::uint32_t>(rng.next_below(trace->per_lp.size()));
        const SimTime when =
            engine->lp(lp).now() +
            SimTime::micros(static_cast<std::int64_t>(
                50 + rng.next_below(500)));
        const std::uint64_t next_tag = rng.next();
        Node child = *this;
        auto handler = [child, dst, next_tag, depth] {
          child.fire(dst, next_tag, depth - 1);
        };
        if (dst == lp) {
          engine->lp(lp).schedule_at(when, std::move(handler));
        } else {
          engine->post(lp, dst, when, std::move(handler));
        }
      }
    }
  };

  Node root{&engine, trace, rngs};
  for (std::size_t i = 0; i < kLps; ++i) {
    const auto lp = static_cast<std::uint32_t>(i);
    engine.post(lp, lp, SimTime::micros(10 + i), [root, lp] {
      root.fire(lp, 0x1111 * (lp + 1), 5);
    });
  }
  engine.run_until(SimTime::seconds(1));
  out = trace->per_lp;
}

TEST(ParallelSimTest, StormIsBitIdenticalAcrossThreadCounts) {
  std::vector<std::vector<std::uint64_t>> reference;
  run_storm(1, reference);
  std::size_t total = 0;
  for (const auto& lp : reference) total += lp.size();
  ASSERT_GT(total, 1000u) << "storm too small to be meaningful";

  for (const std::size_t threads : {2u, 4u, 8u}) {
    std::vector<std::vector<std::uint64_t>> trace;
    run_storm(threads, trace);
    EXPECT_EQ(trace, reference) << "threads=" << threads;
  }
}

TEST(ParallelSimTest, SetupPostsDeliverBeforeFirstWindow) {
  ParallelSimulator engine(make_config(3, 2, SimTime::micros(100)));
  std::vector<int> hits(3, 0);
  for (std::uint32_t lp = 0; lp < 3; ++lp) {
    engine.post(lp, lp, SimTime::micros(5), [&hits, lp] { ++hits[lp]; });
  }
  engine.run_until(SimTime::millis(1));
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelSimTest, ChannelOverflowSpillsLosslessly) {
  // Capacity-8 channels, hundreds of same-window sends: everything must
  // arrive exactly once (the spill vector absorbs the overflow).
  ParallelSimulator::Config config = make_config(2, 2, SimTime::micros(100));
  config.channel_capacity = 8;
  ParallelSimulator engine(config);
  constexpr int kSends = 300;
  int received = 0;
  engine.lp(0).schedule_at(SimTime::micros(1), [&] {
    for (int i = 0; i < kSends; ++i) {
      engine.post(0, 1, SimTime::millis(1), [&received] { ++received; });
    }
  });
  engine.run_until(SimTime::millis(2));
  EXPECT_EQ(received, kSends);
  EXPECT_GT(engine.channel_spills(), 0u);
}

}  // namespace
}  // namespace agentloc::sim
