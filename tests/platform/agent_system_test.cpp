#include "platform/agent_system.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace agentloc::platform {
namespace {

struct TextPayload {
  std::string text;
};

/// Records everything that happens to it.
class Probe : public Agent {
 public:
  std::string kind() const override { return "probe"; }

  void on_start() override { events.push_back("start"); }

  void on_arrival(net::NodeId from) override {
    events.push_back("arrive_from_" + std::to_string(from));
  }

  void on_message(const Message& message) override {
    if (const auto* payload = message.body_as<TextPayload>()) {
      events.push_back("msg:" + payload->text);
      last_message = message;
      if (reply_with_echo) {
        system().reply(message, id(), TextPayload{"echo:" + payload->text},
                       64);
      }
    }
  }

  void on_delivery_failure(const DeliveryFailure& failure) override {
    events.push_back("bounce");
    last_failure = failure;
  }

  void on_dispose() override { events.push_back("dispose"); }

  std::vector<std::string> events;
  Message last_message;
  DeliveryFailure last_failure;
  bool reply_with_echo = false;
};

class AgentSystemTest : public ::testing::Test {
 protected:
  AgentSystemTest()
      : network_(sim_, 4,
                 std::make_unique<net::FixedLatencyModel>(
                     sim::SimTime::millis(1)),
                 util::Rng(7)),
        system_(sim_, network_, make_config()) {}

  static AgentSystem::Config make_config() {
    AgentSystem::Config config;
    config.service_time = sim::SimTime::micros(100);
    return config;
  }

  sim::Simulator sim_;
  net::Network network_;
  AgentSystem system_;
};

TEST_F(AgentSystemTest, CreateRunsOnStartAtNode) {
  Probe& probe = system_.create<Probe>(2);
  EXPECT_EQ(probe.node(), 2u);
  EXPECT_NE(probe.id(), kNoAgent);
  sim_.run();
  ASSERT_EQ(probe.events.size(), 1u);
  EXPECT_EQ(probe.events[0], "start");
  EXPECT_EQ(system_.node_of(probe.id()), 2u);
  EXPECT_EQ(system_.stats().agents_created, 1u);
}

TEST_F(AgentSystemTest, MixedIdsAreUniqueAndWellSpread) {
  std::vector<AgentId> ids;
  for (int i = 0; i < 64; ++i) ids.push_back(system_.create<Probe>(0).id());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  // Mixed ids should not be tiny consecutive integers.
  EXPECT_GT(ids.back(), 1ull << 32);
}

TEST_F(AgentSystemTest, SendDeliversWithLatencyAndServiceTime) {
  Probe& a = system_.create<Probe>(0);
  Probe& b = system_.create<Probe>(1);
  sim_.run();
  system_.send(a.id(), AgentAddress{1, b.id()}, TextPayload{"hi"}, 128);
  sim_.run();
  ASSERT_EQ(b.events.size(), 2u);
  EXPECT_EQ(b.events[1], "msg:hi");
  // 1ms network + 100us service.
  EXPECT_EQ(sim_.now(), sim::SimTime::micros(1100));
  EXPECT_EQ(b.last_message.from, a.id());
  EXPECT_EQ(b.last_message.from_node, 0u);
}

TEST_F(AgentSystemTest, InboxIsFifoWithPerMessageService) {
  Probe& a = system_.create<Probe>(0);
  Probe& b = system_.create<Probe>(1);
  sim_.run();
  for (int i = 0; i < 5; ++i) {
    system_.send(a.id(), AgentAddress{1, b.id()},
                 TextPayload{std::to_string(i)}, 64);
  }
  sim_.run();
  ASSERT_EQ(b.events.size(), 6u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(b.events[static_cast<std::size_t>(i) + 1],
              "msg:" + std::to_string(i));
  }
  // All five arrive at t=1ms, then drain one per 100us: last at 1.5ms.
  EXPECT_EQ(sim_.now(), sim::SimTime::micros(1500));
}

TEST_F(AgentSystemTest, QueueDepthVisibleWhileDraining) {
  Probe& a = system_.create<Probe>(0);
  Probe& b = system_.create<Probe>(1);
  sim_.run();
  for (int i = 0; i < 5; ++i) {
    system_.send(a.id(), AgentAddress{1, b.id()}, TextPayload{"x"}, 64);
  }
  // All five land at t=1ms; the first completes service at 1.1ms.
  sim_.run_until(sim::SimTime::micros(1150));
  EXPECT_EQ(system_.inbox_depth(b.id()), 4u);
}

TEST_F(AgentSystemTest, MigrationMovesAgentAndFiresArrival) {
  Probe& probe = system_.create<Probe>(0);
  sim_.run();
  system_.migrate(probe.id(), 3);
  EXPECT_TRUE(system_.in_transit(probe.id()));
  EXPECT_EQ(system_.node_of(probe.id()), std::nullopt);
  sim_.run();
  EXPECT_EQ(probe.node(), 3u);
  ASSERT_EQ(probe.events.size(), 2u);
  EXPECT_EQ(probe.events[1], "arrive_from_0");
  EXPECT_EQ(system_.stats().migrations_completed, 1u);
}

TEST_F(AgentSystemTest, MigrateWhileInTransitThrows) {
  Probe& probe = system_.create<Probe>(0);
  sim_.run();
  system_.migrate(probe.id(), 1);
  EXPECT_THROW(system_.migrate(probe.id(), 2), std::logic_error);
  EXPECT_THROW(system_.migrate(kNoAgent, 1), std::logic_error);
  EXPECT_THROW(system_.migrate(probe.id(), 99), std::out_of_range);
}

TEST_F(AgentSystemTest, MessageToDepartedAgentBouncesToSender) {
  Probe& a = system_.create<Probe>(0);
  Probe& b = system_.create<Probe>(1);
  sim_.run();
  system_.migrate(b.id(), 2);
  sim_.run();
  // a still believes b is at node 1.
  system_.send(a.id(), AgentAddress{1, b.id()}, TextPayload{"stale"}, 64);
  sim_.run();
  ASSERT_FALSE(a.events.empty());
  EXPECT_EQ(a.events.back(), "bounce");
  EXPECT_EQ(a.last_failure.attempted.agent, b.id());
  EXPECT_EQ(system_.stats().messages_bounced, 1u);
}

TEST_F(AgentSystemTest, MigrationSurvivesFaultyLink) {
  Probe& probe = system_.create<Probe>(0);
  sim_.run();
  network_.faults().set_partitioned(0, 1, true);
  system_.migrate(probe.id(), 1);
  sim_.run_until(sim::SimTime::millis(20));
  EXPECT_TRUE(system_.in_transit(probe.id()));
  network_.faults().set_partitioned(0, 1, false);
  sim_.run();
  EXPECT_EQ(probe.node(), 1u);
}

TEST_F(AgentSystemTest, RequestReplyRoundTrip) {
  Probe& a = system_.create<Probe>(0);
  Probe& b = system_.create<Probe>(1);
  b.reply_with_echo = true;
  sim_.run();
  RpcResult got;
  bool done = false;
  system_.request(a.id(), AgentAddress{1, b.id()}, TextPayload{"ping"}, 64,
                  [&](RpcResult result) {
                    got = std::move(result);
                    done = true;
                  });
  sim_.run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(got.ok());
  const auto* echoed = got.reply.body_as<TextPayload>();
  ASSERT_NE(echoed, nullptr);
  EXPECT_EQ(echoed->text, "echo:ping");
  EXPECT_EQ(got.reply.from, b.id());
}

TEST_F(AgentSystemTest, RequestToMissingAgentFailsFast) {
  Probe& a = system_.create<Probe>(0);
  sim_.run();
  RpcResult got;
  bool done = false;
  system_.request(a.id(), AgentAddress{1, 0xdeadbeef}, TextPayload{"?"}, 64,
                  [&](RpcResult result) {
                    got = std::move(result);
                    done = true;
                  });
  sim_.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(got.status, RpcResult::Status::kDeliveryFailure);
}

TEST_F(AgentSystemTest, RequestTimesOutWhenNoReply) {
  Probe& a = system_.create<Probe>(0);
  Probe& b = system_.create<Probe>(1);  // does not echo
  sim_.run();
  RpcResult got;
  bool done = false;
  system_.request(a.id(), AgentAddress{1, b.id()}, TextPayload{"ping"}, 64,
                  [&](RpcResult result) {
                    got = std::move(result);
                    done = true;
                  },
                  sim::SimTime::millis(10));
  sim_.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(got.status, RpcResult::Status::kTimeout);
  EXPECT_EQ(system_.stats().rpc_timeouts, 1u);
}

TEST_F(AgentSystemTest, LateReplyAfterTimeoutIsIgnored) {
  Probe& a = system_.create<Probe>(0);
  Probe& b = system_.create<Probe>(1);
  b.reply_with_echo = true;
  sim_.run();
  int callbacks = 0;
  // Timeout shorter than the 1ms network latency: reply arrives late.
  system_.request(a.id(), AgentAddress{1, b.id()}, TextPayload{"ping"}, 64,
                  [&](RpcResult) { ++callbacks; },
                  sim::SimTime::micros(500));
  sim_.run();
  EXPECT_EQ(callbacks, 1);
}

TEST_F(AgentSystemTest, DisposeBouncesQueuedMessages) {
  Probe& a = system_.create<Probe>(0);
  Probe& b = system_.create<Probe>(1);
  sim_.run();
  system_.send(a.id(), AgentAddress{1, b.id()}, TextPayload{"one"}, 64);
  system_.send(a.id(), AgentAddress{1, b.id()}, TextPayload{"two"}, 64);
  // Dispose b after the first message is served but before the second.
  sim_.run_until(sim::SimTime::micros(1150));
  ASSERT_EQ(b.events.size(), 2u);  // start + first message
  const AgentId b_id = b.id();  // b is destroyed once the sim drains
  system_.dispose(b_id);
  sim_.run();
  EXPECT_FALSE(system_.exists(b_id));
  EXPECT_EQ(a.events.back(), "bounce");
}

TEST_F(AgentSystemTest, AgentCanDisposeItselfInCallback) {
  class SelfDisposer : public Agent {
   public:
    void on_message(const Message&) override { system().dispose(id()); }
  };
  SelfDisposer& victim = system_.create<SelfDisposer>(1);
  const AgentId victim_id = victim.id();  // victim is destroyed mid-run
  Probe& a = system_.create<Probe>(0);
  sim_.run();
  system_.send(a.id(), AgentAddress{1, victim_id}, TextPayload{"die"}, 64);
  sim_.run();
  EXPECT_FALSE(system_.exists(victim_id));
  EXPECT_EQ(system_.stats().agents_disposed, 1u);
}

TEST_F(AgentSystemTest, ServiceRegistryIsPerNode) {
  Probe& lh0 = system_.create<Probe>(0);
  Probe& lh1 = system_.create<Probe>(1);
  system_.register_service(0, "lhagent", lh0.id());
  system_.register_service(1, "lhagent", lh1.id());
  EXPECT_EQ(system_.lookup_service(0, "lhagent"), lh0.id());
  EXPECT_EQ(system_.lookup_service(1, "lhagent"), lh1.id());
  EXPECT_EQ(system_.lookup_service(2, "lhagent"), std::nullopt);
  system_.unregister_service(0, "lhagent");
  EXPECT_EQ(system_.lookup_service(0, "lhagent"), std::nullopt);
}

TEST_F(AgentSystemTest, MigrationDropsServiceRegistration) {
  Probe& probe = system_.create<Probe>(0);
  system_.register_service(0, "svc", probe.id());
  sim_.run();
  system_.migrate(probe.id(), 1);
  EXPECT_EQ(system_.lookup_service(0, "svc"), std::nullopt);
}

TEST_F(AgentSystemTest, DisposeDropsServiceRegistration) {
  Probe& probe = system_.create<Probe>(0);
  system_.register_service(0, "svc", probe.id());
  sim_.run();
  system_.dispose(probe.id());
  EXPECT_EQ(system_.lookup_service(0, "svc"), std::nullopt);
}

TEST_F(AgentSystemTest, SequentialIdsWhenMixedDisabled) {
  AgentSystem::Config config;
  config.mixed_ids = false;
  AgentSystem plain(sim_, network_, config);
  EXPECT_EQ(plain.create<Probe>(0).id(), 1u);
  EXPECT_EQ(plain.create<Probe>(0).id(), 2u);
}

TEST_F(AgentSystemTest, MessagesInFlightDuringMigrationBounce) {
  Probe& a = system_.create<Probe>(0);
  Probe& b = system_.create<Probe>(1);
  sim_.run();
  // Send, then migrate b before the message lands.
  system_.send(a.id(), AgentAddress{1, b.id()}, TextPayload{"race"}, 64);
  system_.migrate(b.id(), 2);
  sim_.run();
  EXPECT_TRUE(std::find(b.events.begin(), b.events.end(), "msg:race") ==
              b.events.end());
  EXPECT_EQ(a.events.back(), "bounce");
}

TEST_F(AgentSystemTest, SlotReuseAfterDisposeKeepsIdentitiesDistinct) {
  // Slab storage recycles the dense slot, never the AgentId: traffic for
  // the old tenant must bounce, not reach whoever inherits the slot.
  Probe& first = system_.create<Probe>(0);
  const AgentId old_id = first.id();
  sim_.run();
  system_.dispose(old_id);
  sim_.run();

  Probe& second = system_.create<Probe>(0);  // reuses the freed slot
  Probe& sender = system_.create<Probe>(1);
  sim_.run();
  ASSERT_NE(second.id(), old_id);
  system_.send(sender.id(), AgentAddress{0, old_id}, TextPayload{"ghost"},
               64);
  sim_.run();
  EXPECT_EQ(sender.events.back(), "bounce");
  EXPECT_TRUE(std::find(second.events.begin(), second.events.end(),
                        "msg:ghost") == second.events.end());

  // The new tenant is fully live.
  system_.send(sender.id(), AgentAddress{0, second.id()},
               TextPayload{"real"}, 64);
  sim_.run();
  EXPECT_EQ(second.events.back(), "msg:real");
}

TEST_F(AgentSystemTest, MemoryBreakdownSumsToEstimateAndTracksPeak) {
  const MemoryBreakdown before = system_.memory_breakdown();
  EXPECT_EQ(before.total(), system_.estimated_resident_bytes());

  std::vector<AgentId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(system_.create<Probe>(static_cast<net::NodeId>(i % 4)).id());
  }
  sim_.run();
  const MemoryBreakdown grown = system_.memory_breakdown();
  EXPECT_EQ(grown.total(), system_.estimated_resident_bytes());
  EXPECT_GT(grown.agent_records, before.agent_records);

  // Inbox slabs are lazy: only a queued burst makes a ring allocate, and the
  // pooled capacity survives the drain.
  for (int i = 0; i < 8; ++i) {
    system_.send(ids[1], AgentAddress{0, ids[0]}, TextPayload{"fill"}, 64);
  }
  sim_.run();
  EXPECT_GT(system_.memory_breakdown().inboxes, before.inboxes);
  // The high-water mark saw the growth and never reads below the present.
  EXPECT_GE(system_.stats().peak_resident_bytes,
            system_.memory_breakdown().total());

  // Disposal releases records but the watermark holds.
  const std::size_t peak = system_.stats().peak_resident_bytes;
  for (const AgentId id : ids) system_.dispose(id);
  sim_.run();
  EXPECT_EQ(system_.stats().peak_resident_bytes, peak);
  EXPECT_EQ(system_.live_agent_count(), 0u);
}

TEST_F(AgentSystemTest, ReserveHoldsCapacityThroughPopulation) {
  system_.reserve(512);
  const std::size_t reserved = system_.memory_breakdown().agent_records;
  for (int i = 0; i < 500; ++i) {
    system_.create<Probe>(static_cast<net::NodeId>(i % 4));
  }
  sim_.run();
  // No record-storage regrowth: the reserve covered the whole population.
  EXPECT_EQ(system_.memory_breakdown().agent_records, reserved);
  EXPECT_EQ(system_.live_agent_count(), 500u);
}

}  // namespace
}  // namespace agentloc::platform
