// Sharded-platform plumbing (DESIGN.md §16): two AgentSystems attached to a
// ParallelSimulator through a ShardHost, exercising the cross-shard message
// path, RPC bounce semantics, and the migration handoff protocol
// (extract → ship → adopt → notify). Suite names carry "Parallel" so the
// tsan CI preset runs them under ThreadSanitizer.

#include "platform/shard.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/latency.hpp"
#include "net/network.hpp"
#include "platform/agent_system.hpp"
#include "sim/parallel.hpp"
#include "util/rng.hpp"

namespace agentloc::platform {
namespace {

struct Ping {
  int value = 0;
  static constexpr std::size_t kWireBytes = 24;
};
struct Pong {
  int value = 0;
  static constexpr std::size_t kWireBytes = 24;
};
struct Note {
  int value = 0;
  static constexpr std::size_t kWireBytes = 24;
};

/// Identity node → shard map over a ParallelSimulator, mirroring the
/// experiment driver's host (one shard per node).
class TestShardHost final : public ShardHost {
 public:
  TestShardHost(sim::ParallelSimulator& engine,
                std::vector<std::unique_ptr<AgentSystem>>& systems)
      : engine_(engine), systems_(systems) {}

  std::uint32_t shard_of(net::NodeId node) const noexcept override {
    return node;
  }

  void post_message(std::uint32_t from_shard, net::NodeId to_node,
                    sim::SimTime when, Message message) override {
    engine_.post(from_shard, to_node, when,
                 [system = systems_[to_node].get(), to_node,
                  message = std::move(message)]() mutable {
                   system->deliver_remote(to_node, std::move(message));
                 });
  }

  void post_migration(std::uint32_t from_shard, std::unique_ptr<Agent> agent,
                      AgentId id, net::NodeId from_node, net::NodeId to_node,
                      sim::SimTime when) override {
    engine_.post(from_shard, to_node, when,
                 [this, agent = std::move(agent), id, from_node,
                  to_node]() mutable {
                   systems_[to_node]->adopt_migrated(std::move(agent), id,
                                                     to_node);
                   systems_[to_node]->notify_arrival(id, from_node);
                 });
  }

 private:
  sim::ParallelSimulator& engine_;
  std::vector<std::unique_ptr<AgentSystem>>& systems_;
};

/// Two-node, two-shard fixture: each node gets its own simulator, network
/// stream, and agent system, glued by a TestShardHost.
class ShardedClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto latency = net::make_default_lan_model();
    sim::ParallelSimulator::Config config;
    config.lps = 2;
    config.threads = 1;
    config.lookahead = latency->min_latency();
    engine_ = std::make_unique<sim::ParallelSimulator>(config);

    util::Rng master(42);
    for (std::size_t s = 0; s < 2; ++s) {
      networks_.push_back(std::make_unique<net::Network>(
          engine_->lp(static_cast<sim::ParallelSimulator::LpId>(s)), 2,
          net::make_default_lan_model(), master.fork()));
      AgentSystem::Config system_config;
      system_config.mixed_ids = false;
      system_config.id_stride = 2;
      system_config.id_salt = s;
      systems_.push_back(std::make_unique<AgentSystem>(
          engine_->lp(static_cast<sim::ParallelSimulator::LpId>(s)),
          *networks_.back(), system_config));
    }
    host_ = std::make_unique<TestShardHost>(*engine_, systems_);
    for (std::size_t s = 0; s < 2; ++s) {
      systems_[s]->attach_shard_host(*host_, static_cast<std::uint32_t>(s));
    }
  }

  std::unique_ptr<sim::ParallelSimulator> engine_;
  std::vector<std::unique_ptr<net::Network>> networks_;
  std::vector<std::unique_ptr<AgentSystem>> systems_;
  std::unique_ptr<TestShardHost> host_;
};

class Responder : public Agent {
 public:
  void on_message(const Message& message) override {
    ++received;
    if (const auto* ping = message.body_as<Ping>()) {
      last_value = ping->value;
      if (message.correlation != 0) {
        system().reply(message, id(), Pong{ping->value + 1}, Pong::kWireBytes);
      }
    } else if (const auto* note = message.body_as<Note>()) {
      last_value = note->value;
    }
  }

  void on_arrival(net::NodeId from_node) override { arrived_from = from_node; }
  void on_shard_transfer() override { ++shard_transfers; }

  int received = 0;
  int last_value = -1;
  int shard_transfers = 0;
  net::NodeId arrived_from = net::kNoNode;
};

class Caller : public Agent {
 public:
  void call(const AgentAddress& to, int value) {
    system().request(
        id(), to, Ping{value}, Ping::kWireBytes,
        [this](RpcResult result) {
          last_status = result.status;
          if (const auto* pong = result.reply.body_as<Pong>()) {
            last_reply = pong->value;
          }
          ++completions;
        },
        sim::SimTime::seconds(1));
  }

  int completions = 0;
  int last_reply = -1;
  RpcResult::Status last_status = RpcResult::Status::kTimeout;
};

TEST_F(ShardedClusterTest, ParallelCrossShardRpcRoundTrips) {
  Responder& responder = systems_[1]->create<Responder>(1);
  Caller& caller = systems_[0]->create<Caller>(0);
  const AgentAddress responder_address{1, responder.id()};

  engine_->lp(0).schedule_after(sim::SimTime::millis(10),
                                [&] { caller.call(responder_address, 7); });
  engine_->run_until(sim::SimTime::seconds(2));

  EXPECT_EQ(responder.received, 1);
  EXPECT_EQ(responder.last_value, 7);
  EXPECT_EQ(caller.completions, 1);
  EXPECT_EQ(caller.last_status, RpcResult::Status::kOk);
  EXPECT_EQ(caller.last_reply, 8);
  EXPECT_GT(engine_->cross_lp_messages(), 0u)
      << "request and reply must both cross the shard boundary";
}

TEST_F(ShardedClusterTest, ParallelMigrationHandoffMidRpcBouncesAndRecovers) {
  Responder& responder = systems_[1]->create<Responder>(1);
  Caller& caller = systems_[0]->create<Caller>(0);
  const AgentId responder_id = responder.id();

  // The request leaves node 0 at t=10ms; the responder departs node 1 at
  // t=10.05ms, before the request can arrive (cross-node latency is at
  // least the model's ~hundreds-of-microseconds floor). The in-flight
  // request must bounce as a delivery failure, not vanish.
  engine_->lp(0).schedule_after(
      sim::SimTime::millis(10),
      [&] { caller.call(AgentAddress{1, responder_id}, 3); });
  engine_->lp(1).schedule_after(sim::SimTime::micros(10050), [&] {
    systems_[1]->migrate(responder_id, 0);
  });
  // After the dust settles, a fresh message to the responder's new home on
  // shard 0 must be delivered locally.
  engine_->lp(0).schedule_after(sim::SimTime::seconds(1), [&] {
    systems_[0]->send(caller.id(), AgentAddress{0, responder_id}, Note{99},
                      Note::kWireBytes);
  });
  engine_->run_until(sim::SimTime::seconds(2));

  EXPECT_EQ(caller.completions, 1);
  EXPECT_EQ(caller.last_status, RpcResult::Status::kDeliveryFailure)
      << "the in-flight request raced the handoff and must bounce";
  // The handoff itself completed: shard 1 shipped the object, shard 0 owns
  // it, lifecycle hooks ran in order.
  EXPECT_FALSE(systems_[1]->exists(responder_id));
  ASSERT_TRUE(systems_[0]->exists(responder_id));
  EXPECT_EQ(systems_[0]->node_of(responder_id), net::NodeId{0});
  Responder* moved =
      dynamic_cast<Responder*>(systems_[0]->find(responder_id));
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->shard_transfers, 1);
  EXPECT_EQ(moved->arrived_from, net::NodeId{1});
  EXPECT_EQ(moved->last_value, 99) << "post-arrival delivery on the new shard";
  EXPECT_EQ(systems_[0]->stats().migrations_completed, 1u)
      << "the adopting shard counts the completion";
  EXPECT_EQ(systems_[1]->stats().migrations_started, 1u);
}

TEST_F(ShardedClusterTest, ParallelDepartingCallerFailsItsPendingRpcs) {
  Responder& responder = systems_[1]->create<Responder>(1);
  Caller& caller = systems_[0]->create<Caller>(0);
  const AgentId caller_id = caller.id();

  // The caller issues a cross-shard request and immediately departs its own
  // shard. Its pending RPC cannot follow the object (the callback captures
  // source-shard state), so it must fail synchronously at extraction.
  engine_->lp(0).schedule_after(sim::SimTime::millis(10), [&] {
    caller.call(AgentAddress{1, responder.id()}, 5);
    systems_[0]->migrate(caller_id, 1);
  });
  engine_->run_until(sim::SimTime::seconds(2));

  Caller* moved = dynamic_cast<Caller*>(systems_[1]->find(caller_id));
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->completions, 1);
  EXPECT_EQ(moved->last_status, RpcResult::Status::kDeliveryFailure);
  EXPECT_EQ(systems_[1]->node_of(caller_id), net::NodeId{1});
}

TEST_F(ShardedClusterTest, ParallelCrossShardIdsNeverCollide) {
  // Stride/salt partitioning: ids minted by different shards come from
  // disjoint residue classes, including ids minted for remote installs.
  std::vector<AgentId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(systems_[0]->create<Responder>(0).id());
    ids.push_back(systems_[1]->create<Responder>(1).id());
    ids.push_back(systems_[0]->mint_id());
    ids.push_back(systems_[1]->mint_id());
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      EXPECT_NE(ids[i], ids[j]);
    }
  }
}

TEST_F(ShardedClusterTest, ParallelMintedIdInstallsOnRemoteShard) {
  // The cross-shard spawn protocol: shard 0 mints, shard 1 installs, and
  // the agent is reachable at its node afterwards.
  const AgentId id = systems_[0]->mint_id();
  systems_[1]->install_spawned(std::make_unique<Responder>(), id, 1);
  Caller& caller = systems_[0]->create<Caller>(0);

  engine_->lp(0).schedule_after(sim::SimTime::millis(5),
                                [&] { caller.call(AgentAddress{1, id}, 11); });
  engine_->run_until(sim::SimTime::seconds(1));

  EXPECT_EQ(caller.completions, 1);
  EXPECT_EQ(caller.last_status, RpcResult::Status::kOk);
  EXPECT_EQ(caller.last_reply, 12);
}

}  // namespace
}  // namespace agentloc::platform
