// Randomized stress of the agent platform: arbitrary interleavings of
// creates, migrations, sends, RPCs, and disposals must preserve the
// platform's invariants — every RPC completes exactly once, no callback
// runs for a disposed agent, ground truth stays consistent, and the
// simulation always drains.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "platform/agent_system.hpp"
#include "sim/simulator.hpp"

namespace agentloc::platform {
namespace {

struct Ping {
  int tag = 0;
  static constexpr std::size_t kWireBytes = 24;
};

/// Echoes Pings; counts everything that happens to it.
class FuzzAgent : public Agent {
 public:
  void on_message(const Message& message) override {
    ++messages;
    if (message.body_as<Ping>() != nullptr && message.correlation != 0) {
      system().reply(message, id(), Ping{}, Ping::kWireBytes);
    }
  }
  void on_arrival(net::NodeId) override { ++arrivals; }
  void on_dispose() override { disposed = true; }

  int messages = 0;
  int arrivals = 0;
  bool disposed = false;
};

class PlatformFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlatformFuzz, RandomOpsKeepInvariants) {
  util::Rng rng(GetParam());
  sim::Simulator simulator;
  net::Network network(simulator, 6,
                       std::make_unique<net::UniformLatencyModel>(
                           sim::SimTime::micros(200), sim::SimTime::millis(4)),
                       rng.fork());
  network.faults().drop_probability = 0.05;
  network.faults().duplicate_probability = 0.05;
  AgentSystem::Config config;
  config.service_time = sim::SimTime::micros(100);
  config.default_rpc_timeout = sim::SimTime::millis(50);
  AgentSystem system(simulator, network, config);

  std::vector<AgentId> live;
  std::set<AgentId> ever;
  int rpcs_started = 0;
  int rpcs_completed = 0;

  const auto random_live = [&]() -> AgentId {
    return live[rng.next_below(live.size())];
  };

  for (int i = 0; i < 5; ++i) {
    const AgentId id = system.create<FuzzAgent>(
        static_cast<net::NodeId>(rng.next_below(6))).id();
    live.push_back(id);
    ever.insert(id);
  }

  for (int step = 0; step < 400; ++step) {
    simulator.run_until(simulator.now() + sim::SimTime::millis(2));
    const auto roll = rng.next_below(100);
    if (roll < 10 && live.size() < 30) {
      const AgentId id = system.create<FuzzAgent>(
          static_cast<net::NodeId>(rng.next_below(6))).id();
      live.push_back(id);
      ever.insert(id);
    } else if (roll < 20 && live.size() > 2) {
      const auto victim = rng.next_below(live.size());
      system.dispose(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else if (roll < 40) {
      const AgentId mover = random_live();
      if (system.node_of(mover)) {
        system.migrate(mover,
                       static_cast<net::NodeId>(rng.next_below(6)));
      }
    } else if (roll < 70) {
      const AgentId from = random_live();
      const AgentId to = random_live();
      const auto to_node = system.node_of(to);
      if (system.node_of(from) && to_node) {
        system.send(from, AgentAddress{*to_node, to}, Ping{step},
                    Ping::kWireBytes);
      }
    } else {
      const AgentId from = random_live();
      const AgentId to = random_live();
      const auto to_node = system.node_of(to);
      if (system.node_of(from) && to_node) {
        ++rpcs_started;
        system.request(from, AgentAddress{*to_node, to}, Ping{step},
                       Ping::kWireBytes,
                       [&rpcs_completed](RpcResult) { ++rpcs_completed; });
      }
    }
  }

  // Drain: every in-flight message, migration, and timeout resolves.
  simulator.run_until(simulator.now() + sim::SimTime::seconds(2));
  EXPECT_EQ(rpcs_completed, rpcs_started)
      << "every RPC must complete exactly once";

  // Ground truth consistent: every live agent is at a valid node or gone.
  for (const AgentId id : live) {
    if (!system.exists(id)) continue;  // self-disposal not possible here
    const auto node = system.node_of(id);
    ASSERT_TRUE(node.has_value());
    EXPECT_LT(*node, 6u);
    auto* agent = dynamic_cast<FuzzAgent*>(system.find(id));
    ASSERT_NE(agent, nullptr);
    EXPECT_FALSE(agent->disposed);
    EXPECT_EQ(agent->node(), *node);
  }

  // Conservation: created == live + disposed.
  EXPECT_EQ(system.stats().agents_created,
            live.size() + system.stats().agents_disposed);
  // Migrations of agents disposed mid-transit legitimately never complete;
  // all other migrations must have, and no live agent is still in transit.
  EXPECT_LE(system.stats().migrations_completed,
            system.stats().migrations_started);
  EXPECT_GE(system.stats().migrations_completed +
                system.stats().agents_disposed,
            system.stats().migrations_started);
  for (const AgentId id : live) {
    EXPECT_FALSE(system.in_transit(id));
  }
}

TEST_P(PlatformFuzz, DrainedSimulatorHasNoAgentEvents) {
  // After a drain with no timers armed, the only way the queue refills is a
  // new external stimulus — nothing in the platform self-schedules forever.
  util::Rng rng(GetParam() ^ 0xfade);
  sim::Simulator simulator;
  net::Network network(simulator, 3,
                       std::make_unique<net::FixedLatencyModel>(
                           sim::SimTime::millis(1)),
                       rng.fork());
  AgentSystem system(simulator, network);
  auto& a = system.create<FuzzAgent>(0);
  auto& b = system.create<FuzzAgent>(1);
  simulator.run();
  system.send(a.id(), AgentAddress{1, b.id()}, Ping{1}, Ping::kWireBytes);
  simulator.run();
  EXPECT_TRUE(simulator.empty());
  EXPECT_EQ(b.messages, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlatformFuzz,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace agentloc::platform
