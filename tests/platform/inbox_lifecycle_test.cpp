// Edge cases of the pooled ring-buffer inbox lifecycle: agents that vanish
// (dispose, migrate) while messages are queued or being served, and RPCs
// whose callee moves away mid-call. These paths recycle inboxes through the
// system free list and re-find records after dispatch, so they run under the
// sanitizer presets as well (CI labels every test `sanitize` there).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "platform/agent_system.hpp"

namespace agentloc::platform {
namespace {

struct Note {
  int value = 0;
};

class Recorder : public Agent {
 public:
  std::string kind() const override { return "recorder"; }

  void on_message(const Message& message) override {
    if (const auto* note = message.body_as<Note>()) {
      served.push_back(note->value);
      if (dispose_on_value == note->value) system().dispose(id());
    }
  }

  void on_delivery_failure(const DeliveryFailure&) override { ++bounces; }

  std::vector<int> served;
  int dispose_on_value = -1;
  int bounces = 0;
};

class InboxLifecycleTest : public ::testing::Test {
 protected:
  explicit InboxLifecycleTest(bool bounce_undeliverable = true)
      : network_(sim_, 4,
                 std::make_unique<net::FixedLatencyModel>(
                     sim::SimTime::millis(1)),
                 util::Rng(11)),
        system_(sim_, network_, make_config(bounce_undeliverable)) {}

  static AgentSystem::Config make_config(bool bounce_undeliverable) {
    AgentSystem::Config config;
    config.service_time = sim::SimTime::micros(100);
    config.bounce_undeliverable = bounce_undeliverable;
    return config;
  }

  sim::Simulator sim_;
  net::Network network_;
  AgentSystem system_;
};

TEST_F(InboxLifecycleTest, DisposeWhileServingBouncesTheQueueRemainder) {
  Recorder& a = system_.create<Recorder>(0);
  Recorder& b = system_.create<Recorder>(1);
  b.dispose_on_value = 1;  // b kills itself while serving the first message
  sim_.run();
  const AgentId b_id = b.id();
  for (int i = 1; i <= 4; ++i) {
    system_.send(a.id(), AgentAddress{1, b_id}, Note{i}, 64);
  }
  sim_.run();
  EXPECT_FALSE(system_.exists(b_id));
  // Only the first message was served; the three still queued bounced back.
  EXPECT_EQ(a.bounces, 3);
  EXPECT_EQ(system_.stats().messages_bounced, 3u);
  EXPECT_EQ(system_.stats().messages_processed,
            system_.stats().messages_sent - 3u);
}

TEST_F(InboxLifecycleTest, MigrateWithQueuedMessagesBouncesThem) {
  Recorder& a = system_.create<Recorder>(0);
  Recorder& b = system_.create<Recorder>(1);
  sim_.run();
  for (int i = 1; i <= 5; ++i) {
    system_.send(a.id(), AgentAddress{1, b.id()}, Note{i}, 64);
  }
  // All five land at t=1ms; stop after the first completes service, with
  // four still in the ring inbox, and yank b away.
  sim_.run_until(sim::SimTime::micros(1150));
  ASSERT_EQ(b.served.size(), 1u);
  system_.migrate(b.id(), 2);
  sim_.run();
  EXPECT_EQ(b.node(), 2u);
  EXPECT_EQ(b.served.size(), 1u);  // the queued four were never served
  EXPECT_EQ(a.bounces, 4);
  // The recycled inbox still works at the new home.
  system_.send(a.id(), AgentAddress{2, b.id()}, Note{99}, 64);
  sim_.run();
  ASSERT_EQ(b.served.size(), 2u);
  EXPECT_EQ(b.served.back(), 99);
}

TEST_F(InboxLifecycleTest, RpcCompletesWithFailureWhenCalleeMigrates) {
  Recorder& a = system_.create<Recorder>(0);
  Recorder& b = system_.create<Recorder>(1);
  sim_.run();
  RpcResult got;
  bool done = false;
  system_.request(a.id(), AgentAddress{1, b.id()}, Note{1}, 64,
                  [&](RpcResult result) {
                    got = std::move(result);
                    done = true;
                  });
  // The request is in flight; the callee departs before it lands.
  system_.migrate(b.id(), 2);
  sim_.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(got.status, RpcResult::Status::kDeliveryFailure);
  EXPECT_EQ(system_.stats().rpc_delivery_failures, 1u);
  EXPECT_EQ(system_.stats().rpc_timeouts, 0u);
}

class SilentBounceTest : public InboxLifecycleTest {
 protected:
  SilentBounceTest() : InboxLifecycleTest(/*bounce_undeliverable=*/false) {}
};

TEST_F(SilentBounceTest, RpcTimesOutWhenCalleeMigratesAndBouncesAreOff) {
  // With bounce notices disabled the caller never learns the request died;
  // the RPC must still complete — via its timeout.
  Recorder& a = system_.create<Recorder>(0);
  Recorder& b = system_.create<Recorder>(1);
  sim_.run();
  RpcResult got;
  bool done = false;
  system_.request(a.id(), AgentAddress{1, b.id()}, Note{1}, 64,
                  [&](RpcResult result) {
                    got = std::move(result);
                    done = true;
                  },
                  sim::SimTime::millis(10));
  system_.migrate(b.id(), 2);
  sim_.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(got.status, RpcResult::Status::kTimeout);
  EXPECT_EQ(system_.stats().rpc_timeouts, 1u);
  EXPECT_EQ(system_.stats().rpc_delivery_failures, 0u);
  EXPECT_EQ(a.bounces, 0);
}

}  // namespace
}  // namespace agentloc::platform
