// The messaging fast path must be allocation-free in steady state: once the
// event pool, in-flight slots, and ring inboxes are warm, sending and
// dispatching fixed-size payloads may not touch the heap. This binary
// replaces the global allocation functions with counting versions and
// asserts a zero delta across a measured burst.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

#include "platform/agent_system.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size)) return ptr;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

namespace agentloc::platform {
namespace {

struct Fixed {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class Sink : public Agent {
 public:
  std::string kind() const override { return "sink"; }
  void on_message(const Message& message) override {
    if (const auto* fixed = message.body_as<Fixed>()) consumed += fixed->a;
  }
  std::uint64_t consumed = 0;
};

TEST(ZeroAlloc, SteadyStateSendAndDispatchDoNotAllocate) {
  sim::Simulator sim;
  net::Network network(
      sim, 2, std::make_unique<net::FixedLatencyModel>(sim::SimTime::millis(1)),
      util::Rng(5));
  AgentSystem::Config config;
  config.service_time = sim::SimTime::micros(50);
  AgentSystem system(sim, network, config);

  Sink& sender = system.create<Sink>(0);
  Sink& sink = system.create<Sink>(1);
  sim.run();

  static_assert(util::PayloadBox::stored_inline<Fixed>());
  const auto burst = [&] {
    for (std::uint64_t i = 0; i < 64; ++i) {
      system.send(sender.id(), AgentAddress{1, sink.id()}, Fixed{i, i}, 64);
    }
    sim.run();
  };

  // Warm the event pool, the in-flight slots, and the ring inbox to the
  // burst's high-water mark.
  burst();
  burst();

  const std::uint64_t processed_before = system.stats().messages_processed;
  const std::uint64_t allocations_before =
      g_allocations.load(std::memory_order_relaxed);
  burst();
  burst();
  const std::uint64_t allocation_delta =
      g_allocations.load(std::memory_order_relaxed) - allocations_before;
  const std::uint64_t processed_delta =
      system.stats().messages_processed - processed_before;

  EXPECT_EQ(processed_delta, 128u);  // the measured traffic really flowed
  EXPECT_EQ(allocation_delta, 0u);
}

}  // namespace
}  // namespace agentloc::platform
