// agentloc_loadgen — load generator + correctness checker for agentlocd.
//
// Registers --agents mobile agents at synthetic nodes, then runs --ops
// pipelined locate queries against the daemon and verifies every reply
// against its own ground truth (--verify, on by default). Exits nonzero on
// any mismatch, which is what the CI transport smoke keys off.
//
//   agentlocd --listen unix:/tmp/agentloc.sock &
//   agentloc_loadgen --connect unix:/tmp/agentloc.sock --agents 1000 --ops 20000
//
// Output is one summary line: ops, wall time, ops/s, mismatches.

#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/locate_service.hpp"
#include "net/socket_transport.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace agentloc;

  util::Flags flags(argc, argv);
  flags.declare("connect");
  flags.declare("cluster");
  flags.declare("agents");
  flags.declare("ops");
  flags.declare("window");
  flags.declare("seed");
  flags.declare("verify");
  flags.declare("moves");
  flags.declare("help");
  try {
    flags.fail_on_unknown();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "agentloc_loadgen: %s\n", error.what());
    return 2;
  }

  if (flags.get_bool("help", false)) {
    std::printf(
        "usage: agentloc_loadgen --connect ADDR [--agents N] [--ops N]\n"
        "  --connect ADDR  unix:/path or tcp:host:port of agentlocd\n"
        "  --cluster BOOL  fetch the partition map and route ops to the\n"
        "                  owning worker shard (default false)\n"
        "  --agents N      registered population (default 1000)\n"
        "  --ops N         locate queries to issue (default 20000)\n"
        "  --moves N       re-updates between query phases (default agents/4)\n"
        "  --window N      pipelined requests in flight (default 64)\n"
        "  --seed S        query-stream RNG seed (default 1)\n"
        "  --verify BOOL   check replies against ground truth (default true)\n");
    return 0;
  }

  if (!net::SocketTransport::sockets_available()) {
    std::fprintf(stderr,
                 "agentloc_loadgen: sockets unavailable in this sandbox\n");
    return 77;
  }

  const std::string connect_text = flags.get_string("connect", "");
  if (connect_text.empty()) {
    std::fprintf(stderr, "agentloc_loadgen: --connect is required\n");
    return 2;
  }
  const auto agents = static_cast<std::uint64_t>(flags.get_int("agents", 1000));
  const auto ops = static_cast<std::uint64_t>(flags.get_int("ops", 20000));
  const auto moves = static_cast<std::uint64_t>(
      flags.get_int("moves", static_cast<std::int64_t>(agents / 4)));
  const auto window =
      static_cast<std::size_t>(flags.get_int("window", 64));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const bool verify = flags.get_bool("verify", true);
  const bool cluster = flags.get_bool("cluster", false);

  net::SocketAddress address;
  std::string error;
  if (!net::SocketAddress::parse(connect_text, address, &error)) {
    std::fprintf(stderr, "agentloc_loadgen: bad --connect: %s\n",
                 error.c_str());
    return 2;
  }

  net::LocateClient client;
  const bool ok = cluster ? client.connect_cluster(address, &error)
                          : client.connect(address, &error);
  if (!ok) {
    std::fprintf(stderr, "agentloc_loadgen: connect failed: %s\n",
                 error.c_str());
    return 1;
  }

  // Ground truth: agent id -> (node, seq), maintained in lockstep with the
  // updates we send. Agent ids are spread by mix64 so they exercise every
  // hash-tree partition, like real 64-bit agent ids would.
  std::unordered_map<std::uint64_t, std::pair<std::uint32_t, std::uint64_t>>
      truth;
  truth.reserve(agents);
  std::vector<std::uint64_t> ids;
  ids.reserve(agents);

  for (std::uint64_t i = 1; i <= agents; ++i) {
    const std::uint64_t id = util::mix64(i);
    const auto node = static_cast<std::uint32_t>(i % 97 + 1);
    client.send_update(id, node, 1);
    truth[id] = {node, 1};
    ids.push_back(id);
  }
  client.flush();
  // Updates are one-way; a ping round-trip fences them (frames are ordered
  // per connection) so the query phase reads a fully applied table.
  if (!client.ping()) {
    std::fprintf(stderr, "agentloc_loadgen: daemon lost during setup\n");
    return 1;
  }

  util::Rng rng(seed);
  // A burst of re-updates so seq>1 paths and newest-seq-wins get exercised.
  for (std::uint64_t m = 0; m < moves; ++m) {
    const std::uint64_t id = ids[rng.next_below(ids.size())];
    auto& entry = truth[id];
    entry.first = static_cast<std::uint32_t>(rng.next_below(97) + 1);
    entry.second += 1;
    client.send_update(id, entry.first, entry.second);
  }
  client.flush();
  if (!client.ping()) {
    std::fprintf(stderr, "agentloc_loadgen: daemon lost during moves\n");
    return 1;
  }

  std::uint64_t mismatches = 0;
  std::uint64_t completed = 0;
  std::vector<std::uint64_t> in_flight_agent(window + ops, 0);

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t issued = 0;
  while (completed < ops) {
    const std::uint64_t batch =
        std::min<std::uint64_t>(window, ops - issued);
    for (std::uint64_t b = 0; b < batch; ++b) {
      const std::uint64_t id = ids[rng.next_below(ids.size())];
      ++issued;
      in_flight_agent[issued] = id;
      client.send_locate(id, issued);
    }
    const auto replies =
        client.drain(issued - completed, /*timeout_ms=*/10000);
    if (replies.empty() && issued > completed) {
      std::fprintf(stderr, "agentloc_loadgen: timed out waiting for replies "
                           "(%llu of %llu done)\n",
                   static_cast<unsigned long long>(completed),
                   static_cast<unsigned long long>(ops));
      return 1;
    }
    for (const auto& item : replies) {
      ++completed;
      if (!verify) continue;
      const std::uint64_t id = in_flight_agent[item.correlation];
      const auto& expect = truth[id];
      const bool ok =
          item.reply.status == core::LocateStatus::kFound &&
          item.reply.node == expect.first && item.reply.seq == expect.second;
      if (!ok) {
        ++mismatches;
        if (mismatches <= 5) {
          std::fprintf(stderr,
                       "mismatch: agent %llx expected node %u seq %llu, got "
                       "status %u node %u seq %llu\n",
                       static_cast<unsigned long long>(id), expect.first,
                       static_cast<unsigned long long>(expect.second),
                       static_cast<unsigned>(item.reply.status),
                       item.reply.node,
                       static_cast<unsigned long long>(item.reply.seq));
        }
      }
    }
  }
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const double ops_per_s = elapsed > 0 ? static_cast<double>(completed) / elapsed
                                       : 0.0;
  std::printf(
      "agentloc_loadgen: %llu locates in %.3fs (%.0f ops/s), window %zu, "
      "%llu mismatches\n",
      static_cast<unsigned long long>(completed), elapsed, ops_per_s, window,
      static_cast<unsigned long long>(mismatches));
  if (cluster) {
    std::printf("agentloc_loadgen: %zu worker connection(s), ops per worker:",
                client.worker_count());
    for (const std::uint64_t count : client.per_worker_ops()) {
      std::printf(" %llu", static_cast<unsigned long long>(count));
    }
    std::printf("\n");
  }
  return mismatches == 0 ? 0 : 1;
}
