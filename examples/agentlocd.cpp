// agentlocd — a real agent-location daemon built from the repo's hash scheme.
//
// Serves the locate protocol (src/net/locate_service.hpp) over a Unix-domain
// or TCP-loopback socket: clients register/update mobile-agent locations and
// issue locate queries; agent ids route through a hashtree::HashTree split
// into --partitions IAgent shards, exactly the paper's extendible hash — but
// answering RPCs between real processes instead of simulated messages.
//
// With --workers N the daemon shards into N serving threads (LocateServer):
// worker 0 listens on --listen itself, worker k on the derived address
// (unix path + ".w<k>" / tcp port + k), and every worker advertises the
// leaf → worker ownership map via kPartitionMap so routing clients
// (agentloc_loadgen --cluster) spread load without any shared lock.
//
//   agentlocd --listen unix:/tmp/agentloc.sock --partitions 8
//   agentlocd --listen tcp:127.0.0.1:7421 --workers 4
//   agentlocd --probe            # exit 0: sockets work here; 77: they don't
//
// Pair it with agentloc_loadgen (examples/agentloc_loadgen.cpp); the two
// form the end-to-end row of bench_transport and the CI transport smoke.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "net/locate_server.hpp"
#include "net/socket_transport.hpp"
#include "util/flags.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace agentloc;

  util::Flags flags(argc, argv);
  flags.declare("listen");
  flags.declare("partitions");
  flags.declare("workers");
  flags.declare("backend");
  flags.declare("probe");
  flags.declare("max-requests");
  flags.declare("quiet");
  flags.declare("help");
  try {
    flags.fail_on_unknown();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "agentlocd: %s\n", error.what());
    return 2;
  }

  if (flags.get_bool("help", false)) {
    std::printf(
        "usage: agentlocd [--listen ADDR] [--partitions N] [--probe]\n"
        "  --listen ADDR    unix:/path or tcp:host:port "
        "(default unix:/tmp/agentloc.sock)\n"
        "  --partitions N   IAgent shards in the hash tree (default 8)\n"
        "  --workers N      serving threads; worker k>0 listens on the\n"
        "                   derived address (unix +\".w<k>\" / tcp port+k)\n"
        "  --backend B      readiness backend: auto|poll|epoll (default "
        "auto)\n"
        "  --probe          exit 0 if this sandbox can create sockets, 77 "
        "otherwise\n"
        "  --max-requests N stop after N locate requests (0 = run forever)\n"
        "  --quiet          suppress the startup/shutdown lines\n");
    return 0;
  }

  // CI smoke + tests call this first; exit 77 is the standard "skipped"
  // convention (automake/ctest) and keeps sandboxes without sockets green.
  if (flags.get_bool("probe", false)) {
    return net::SocketTransport::sockets_available() ? 0 : 77;
  }

  if (!net::SocketTransport::sockets_available()) {
    std::fprintf(stderr, "agentlocd: sockets unavailable in this sandbox\n");
    return 77;
  }

  const std::string listen_text =
      flags.get_string("listen", "unix:/tmp/agentloc.sock");
  const std::string backend_text = flags.get_string("backend", "auto");

  net::LocateServer::Config config;
  config.partitions =
      static_cast<std::size_t>(flags.get_int("partitions", 8));
  config.workers = static_cast<std::size_t>(flags.get_int("workers", 1));
  config.max_locates =
      static_cast<std::uint64_t>(flags.get_int("max-requests", 0));
  if (backend_text == "poll") {
    config.backend = net::EventLoop::Backend::kPoll;
  } else if (backend_text == "epoll") {
    config.backend = net::EventLoop::Backend::kEpoll;
  } else if (backend_text != "auto") {
    std::fprintf(stderr, "agentlocd: bad --backend (auto|poll|epoll)\n");
    return 2;
  }
  const bool quiet = flags.get_bool("quiet", false);

  net::SocketAddress address;
  std::string error;
  if (!net::SocketAddress::parse(listen_text, address, &error)) {
    std::fprintf(stderr, "agentlocd: bad --listen: %s\n", error.c_str());
    return 2;
  }

  net::LocateServer server(config);
  if (!server.start(address, &error)) {
    std::fprintf(stderr, "agentlocd: %s\n", error.c_str());
    return 1;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  if (!quiet) {
    std::printf("agentlocd: serving %s, %zu partitions, %zu worker(s)\n",
                address.to_string().c_str(), config.partitions,
                server.worker_count());
    std::fflush(stdout);
  }

  // Workers serve on their own threads; this thread just waits for a signal
  // or for a --max-requests server to retire itself.
  while (g_stop == 0 && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();

  if (!quiet) {
    std::uint64_t updates = 0, applied = 0, locates = 0, found = 0,
                  bindings = 0;
    for (const net::LocateServer::WorkerStats& w : server.stats()) {
      updates += w.counters.updates;
      applied += w.counters.updates_applied;
      locates += w.counters.locates;
      found += w.counters.locates_found;
      bindings += w.bindings;
    }
    std::printf(
        "agentlocd: served %llu updates (%llu applied), %llu locates "
        "(%llu found), %llu bindings held\n",
        static_cast<unsigned long long>(updates),
        static_cast<unsigned long long>(applied),
        static_cast<unsigned long long>(locates),
        static_cast<unsigned long long>(found),
        static_cast<unsigned long long>(bindings));
    if (server.worker_count() > 1) {
      for (std::size_t k = 0; k < server.stats().size(); ++k) {
        const net::LocateServer::WorkerStats& w = server.stats()[k];
        std::printf(
            "agentlocd:   worker %zu (%s, %s): %llu locates, %llu updates\n",
            k, w.address.c_str(), w.backend.c_str(),
            static_cast<unsigned long long>(w.counters.locates),
            static_cast<unsigned long long>(w.counters.updates));
      }
    }
  }
  return 0;
}
