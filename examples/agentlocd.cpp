// agentlocd — a real agent-location daemon built from the repo's hash scheme.
//
// Serves the locate protocol (src/net/locate_service.hpp) over a Unix-domain
// or TCP-loopback socket: clients register/update mobile-agent locations and
// issue locate queries; agent ids route through a hashtree::HashTree split
// into --partitions IAgent shards, exactly the paper's extendible hash — but
// answering RPCs between real processes instead of simulated messages.
//
//   agentlocd --listen unix:/tmp/agentloc.sock --partitions 8
//   agentlocd --listen tcp:127.0.0.1:7421
//   agentlocd --probe            # exit 0: sockets work here; 77: they don't
//
// Pair it with agentloc_loadgen (examples/agentloc_loadgen.cpp); the two
// form the end-to-end row of bench_transport and the CI transport smoke.

#include <csignal>
#include <cstdio>
#include <string>

#include "net/locate_service.hpp"
#include "net/socket_transport.hpp"
#include "util/flags.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace agentloc;

  util::Flags flags(argc, argv);
  flags.declare("listen");
  flags.declare("partitions");
  flags.declare("probe");
  flags.declare("max-requests");
  flags.declare("quiet");
  flags.declare("help");
  try {
    flags.fail_on_unknown();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "agentlocd: %s\n", error.what());
    return 2;
  }

  if (flags.get_bool("help", false)) {
    std::printf(
        "usage: agentlocd [--listen ADDR] [--partitions N] [--probe]\n"
        "  --listen ADDR    unix:/path or tcp:host:port "
        "(default unix:/tmp/agentloc.sock)\n"
        "  --partitions N   IAgent shards in the hash tree (default 8)\n"
        "  --probe          exit 0 if this sandbox can create sockets, 77 "
        "otherwise\n"
        "  --max-requests N stop after N locate requests (0 = run forever)\n"
        "  --quiet          suppress the startup/shutdown lines\n");
    return 0;
  }

  // CI smoke + tests call this first; exit 77 is the standard "skipped"
  // convention (automake/ctest) and keeps sandboxes without sockets green.
  if (flags.get_bool("probe", false)) {
    return net::SocketTransport::sockets_available() ? 0 : 77;
  }

  if (!net::SocketTransport::sockets_available()) {
    std::fprintf(stderr, "agentlocd: sockets unavailable in this sandbox\n");
    return 77;
  }

  const std::string listen_text =
      flags.get_string("listen", "unix:/tmp/agentloc.sock");
  const auto partitions =
      static_cast<std::size_t>(flags.get_int("partitions", 8));
  const auto max_requests =
      static_cast<std::uint64_t>(flags.get_int("max-requests", 0));
  const bool quiet = flags.get_bool("quiet", false);

  net::SocketAddress address;
  std::string error;
  if (!net::SocketAddress::parse(listen_text, address, &error)) {
    std::fprintf(stderr, "agentlocd: bad --listen: %s\n", error.c_str());
    return 2;
  }

  net::SocketTransport transport;
  net::LocateService service(transport, partitions);
  if (!transport.listen(address, &error)) {
    std::fprintf(stderr, "agentlocd: %s\n", error.c_str());
    return 1;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  if (!quiet) {
    std::printf("agentlocd: serving %s, %zu partitions (tree height %zu)\n",
                address.to_string().c_str(),
                service.directory().partition_count(),
                service.directory().tree().height());
    std::fflush(stdout);
  }

  while (g_stop == 0) {
    transport.poll_once(200);
    if (max_requests != 0 &&
        service.counters().locates >= max_requests) {
      break;
    }
  }

  const auto& counters = service.counters();
  if (!quiet) {
    std::printf(
        "agentlocd: served %llu updates (%llu applied), %llu locates "
        "(%llu found), %llu bindings held\n",
        static_cast<unsigned long long>(counters.updates),
        static_cast<unsigned long long>(counters.updates_applied),
        static_cast<unsigned long long>(counters.locates),
        static_cast<unsigned long long>(counters.locates_found),
        static_cast<unsigned long long>(service.directory().size()));
  }
  return 0;
}
