// Netmonitor: roaming information-gathering agents (the paper's second
// motivating use: agents that support "searching for information … in
// rapidly evolving networks" over intermittent, light-weight nodes).
//
// A fleet of monitor agents sweeps the network measuring per-node load. An
// operator console periodically locates a monitor and pulls its latest
// readings. Halfway through, the fleet triples — demonstrating how the
// location mechanism adds IAgents as the population (and update rate) grows.
//
// Run: ./build/examples/netmonitor [--nodes=24 --monitors=4 --seed=1]

#include <cstdio>
#include <map>
#include <vector>

#include "core/hash_scheme.hpp"
#include "platform/agent_system.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

using namespace agentloc;

namespace {

struct PullReadings {
  static constexpr std::size_t kWireBytes = 24;
};

struct Readings {
  std::map<net::NodeId, double> load_by_node;
  std::size_t wire_bytes() const { return 24 + 12 * load_by_node.size(); }
};

/// Sweeps the network round-robin, sampling a synthetic load metric.
class MonitorAgent : public platform::Agent {
 public:
  MonitorAgent(core::LocationScheme& scheme, std::uint64_t seed)
      : scheme_(scheme), rng_(seed) {}

  std::string kind() const override { return "monitor"; }

  std::size_t serialized_size() const override {
    return 2048 + 12 * readings_.size();
  }

  void on_start() override {
    scheme_.register_agent(*this, [](bool) {});
    sample_and_move();
  }

  void on_arrival(net::NodeId) override {
    scheme_.update_location(*this, [](bool) {});
    sample_and_move();
  }

  void on_message(const platform::Message& message) override {
    if (scheme_.handle_agent_message(*this, message)) return;
    if (message.body_as<PullReadings>() != nullptr) {
      Readings readings{readings_};
      const std::size_t bytes = readings.wire_bytes();
      system().reply(message, id(), std::move(readings), bytes);
    }
  }

  void on_delivery_failure(const platform::DeliveryFailure& failure) override {
    scheme_.handle_delivery_failure(*this, failure);
  }

  std::size_t nodes_sampled() const { return readings_.size(); }

 private:
  void sample_and_move() {
    readings_[node()] = rng_.uniform() * 100.0;  // synthetic load metric
    system().simulator().schedule_after(
        sim::SimTime::millis(120 + rng_.uniform() * 60), [this] {
          if (!system().node_of(id())) return;
          const auto nodes = static_cast<net::NodeId>(system().node_count());
          auto next = static_cast<net::NodeId>(rng_.next_below(nodes - 1));
          if (next >= node()) ++next;
          system().migrate(id(), next);
        });
  }

  core::LocationScheme& scheme_;
  util::Rng rng_;
  std::map<net::NodeId, double> readings_;
};

/// Stationary console: locates monitors and aggregates their readings.
class OperatorConsole : public platform::Agent {
 public:
  explicit OperatorConsole(core::LocationScheme& scheme) : scheme_(scheme) {}

  std::string kind() const override { return "operator"; }

  void on_start() override { poll(); }

  void track(platform::AgentId monitor) { monitors_.push_back(monitor); }

  std::size_t reports_received = 0;
  std::size_t locate_failures = 0;
  std::map<net::NodeId, double> dashboard;

 private:
  void poll() {
    if (!monitors_.empty()) {
      const platform::AgentId monitor = monitors_[cursor_++ % monitors_.size()];
      scheme_.locate(*this, monitor,
                     [this, monitor](const core::LocateOutcome& outcome) {
                       if (!outcome.found) {
                         ++locate_failures;
                         return;
                       }
                       pull_from(monitor, outcome.node);
                     });
    }
    system().simulator().schedule_after(sim::SimTime::millis(80),
                                        [this] { poll(); });
  }

  void pull_from(platform::AgentId monitor, net::NodeId at) {
    system().request(id(), platform::AgentAddress{at, monitor}, PullReadings{},
                     PullReadings::kWireBytes,
                     [this](platform::RpcResult result) {
                       if (!result.ok()) return;  // moved on; next poll
                       if (const auto* readings =
                               result.reply.body_as<Readings>()) {
                         ++reports_received;
                         for (const auto& [node, load] :
                              readings->load_by_node) {
                           dashboard[node] = load;
                         }
                       }
                     });
  }

  core::LocationScheme& scheme_;
  std::vector<platform::AgentId> monitors_;
  std::size_t cursor_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 24));
  const auto monitors = static_cast<std::size_t>(flags.get_int("monitors", 4));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  util::Rng rng(seed);
  sim::Simulator simulator;
  net::Network network(simulator, nodes, net::make_default_lan_model(),
                       rng.fork());
  platform::AgentSystem system(simulator, network);
  core::MechanismConfig mechanism;
  core::HashLocationScheme scheme(system, mechanism);

  auto& console = system.create<OperatorConsole>(0, scheme);
  std::vector<MonitorAgent*> fleet;
  const auto launch = [&](std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      auto& monitor = system.create<MonitorAgent>(
          static_cast<net::NodeId>((i + 1) % nodes), scheme, rng.next());
      fleet.push_back(&monitor);
      console.track(monitor.id());
    }
  };

  launch(monitors);
  simulator.run_until(sim::SimTime::seconds(10));
  const std::size_t trackers_small = scheme.tracker_count();

  // The operation scales up: the fleet triples, update traffic with it.
  launch(monitors * 2);
  simulator.run_until(sim::SimTime::seconds(40));

  std::printf("netmonitor after %.0fs (fleet of %zu monitors):\n",
              simulator.now().as_seconds(), fleet.size());
  std::size_t total_samples = 0;
  for (const MonitorAgent* monitor : fleet) {
    total_samples += monitor->nodes_sampled();
  }
  std::printf("  node coverage on the dashboard: %zu/%zu\n",
              console.dashboard.size(), nodes);
  std::printf("  reports pulled: %zu (locate failures: %zu)\n",
              console.reports_received, console.locate_failures);
  std::printf("  samples held by the fleet: %zu\n", total_samples);
  std::printf("  IAgents: %zu before scale-up, %zu after "
              "(%llu splits, %llu merges)\n",
              trackers_small, scheme.tracker_count(),
              static_cast<unsigned long long>(
                  scheme.hagent().stats().simple_splits +
                  scheme.hagent().stats().complex_splits),
              static_cast<unsigned long long>(
                  scheme.hagent().stats().simple_merges +
                  scheme.hagent().stats().complex_merges));
  return 0;
}
