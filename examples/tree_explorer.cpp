// Tree explorer: a command-driven walkthrough of the extendible hash
// function. Feed it a script of operations and it renders the hash tree,
// hyper-labels, and mapping after every step — handy for understanding how
// splits and merges reshape the agent→IAgent mapping.
//
// Usage:
//   ./build/examples/tree_explorer                 # runs the default script
//   ./build/examples/tree_explorer --ops="split 1 1; merge 2; lookup 0110"
//
// Commands (ids are IAgent ids; the tree starts with a single IAgent 1):
//   split <victim> <m>            simple split on the m-th unused bit
//   csplit <victim> <seg> <bit>   complex split reclaiming a padding bit
//   merge <victim>                merge an IAgent away
//   lookup <bits>                 map an id prefix to its IAgent
//   loc <iagent> <node>           record an IAgent migration

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "hashtree/tree.hpp"
#include "util/flags.hpp"

using namespace agentloc;
using hashtree::HashTree;

namespace {

constexpr const char* kDefaultScript =
    "split 1 1; split 2 1; split 1 2; merge 2; lookup 00; lookup 0110;"
    " csplit 4 1 1; lookup 0110; merge 3; lookup 111";

std::vector<std::vector<std::string>> parse_script(const std::string& text) {
  std::vector<std::vector<std::string>> commands;
  std::stringstream lines(text);
  std::string statement;
  while (std::getline(lines, statement, ';')) {
    std::stringstream words(statement);
    std::vector<std::string> tokens;
    std::string token;
    while (words >> token) tokens.push_back(token);
    if (!tokens.empty()) commands.push_back(std::move(tokens));
  }
  return commands;
}

void show(const HashTree& tree) {
  std::printf("%s", tree.render_ascii().c_str());
  std::printf("  leaves:");
  for (const auto leaf : tree.leaves()) {
    std::printf(" IA%llu=%s", static_cast<unsigned long long>(leaf),
                tree.hyper_label(leaf).c_str());
  }
  std::printf("   (version %llu)\n\n",
              static_cast<unsigned long long>(tree.version()));
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string script = flags.get_string("ops", kDefaultScript);

  HashTree tree(1, 0);
  hashtree::IAgentId next_id = 2;

  std::printf("initial tree: one IAgent serving every agent id\n");
  show(tree);

  for (const auto& command : parse_script(script)) {
    try {
      const std::string& op = command.at(0);
      if (op == "split") {
        const auto victim = std::stoull(command.at(1));
        const auto m = static_cast<std::size_t>(std::stoul(command.at(2)));
        const auto fresh = next_id++;
        tree.simple_split(victim, m, fresh, 0);
        std::printf("> simple split of IA%llu on bit m=%zu -> new IA%llu\n",
                    static_cast<unsigned long long>(victim), m,
                    static_cast<unsigned long long>(fresh));
      } else if (op == "csplit") {
        const auto victim = std::stoull(command.at(1));
        const hashtree::SplitPoint point{
            static_cast<std::size_t>(std::stoul(command.at(2))),
            static_cast<std::size_t>(std::stoul(command.at(3)))};
        const auto fresh = next_id++;
        const auto position = tree.split_point_bit_position(victim, point);
        tree.complex_split(victim, point, fresh, 0);
        std::printf(
            "> complex split of IA%llu reclaiming padding bit at global "
            "position %zu -> new IA%llu\n",
            static_cast<unsigned long long>(victim), position,
            static_cast<unsigned long long>(fresh));
      } else if (op == "merge") {
        const auto victim = std::stoull(command.at(1));
        const auto result = tree.merge(victim);
        std::printf("> %s merge of IA%llu%s\n",
                    result.kind == hashtree::MergeResult::Kind::kSimple
                        ? "simple"
                        : "complex",
                    static_cast<unsigned long long>(victim),
                    result.kind == hashtree::MergeResult::Kind::kSimple
                        ? (" into IA" + std::to_string(result.into_iagent))
                              .c_str()
                        : " (load redistributes over the sibling subtree)");
      } else if (op == "lookup") {
        const auto bits = util::BitString::parse(command.at(1));
        const auto target = tree.lookup(bits);
        std::printf("> lookup(%s) -> IA%llu at node %u\n",
                    command.at(1).c_str(),
                    static_cast<unsigned long long>(target.iagent),
                    target.location);
        continue;  // lookups don't change the tree; skip the render
      } else if (op == "loc") {
        const auto leaf = std::stoull(command.at(1));
        const auto node =
            static_cast<hashtree::NodeLocation>(std::stoul(command.at(2)));
        tree.set_location(leaf, node);
        std::printf("> IA%llu migrated to node %u\n",
                    static_cast<unsigned long long>(leaf), node);
      } else {
        std::printf("> unknown command '%s' (skipped)\n", op.c_str());
        continue;
      }
      tree.validate();
      show(tree);
    } catch (const std::exception& error) {
      std::printf("> error: %s (command skipped)\n", error.what());
    }
  }

  std::printf("final candidates for complex splits:\n");
  for (const auto leaf : tree.leaves()) {
    const auto candidates = tree.complex_split_candidates(leaf);
    std::printf("  IA%llu (%s): %zu reclaimable padding bit(s)\n",
                static_cast<unsigned long long>(leaf),
                tree.hyper_label(leaf).c_str(), candidates.size());
  }
  return 0;
}
