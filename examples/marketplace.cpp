// Marketplace: the mobile-agent e-commerce scenario that motivated systems
// like Aglets (and the paper's introduction — agents "launched into the
// network to roam around and gather information").
//
// A buyer dispatches *shopping agents* that tour seller nodes collecting
// price quotes for an item. While they are out shopping, the buyer console
// uses the location mechanism to find each of its agents and pull an interim
// status report — exactly the "communicate with agents in real time as they
// move" capability the paper builds.
//
// Run: ./build/examples/marketplace [--shoppers=6 --sellers=10 --seed=1]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/hash_scheme.hpp"
#include "platform/agent_system.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

using namespace agentloc;

namespace {

/// Ask a shopping agent for its status.
struct StatusRequest {
  static constexpr std::size_t kWireBytes = 24;
};

struct StatusReport {
  std::size_t quotes_collected = 0;
  double best_price = 0.0;
  bool done = false;
  static constexpr std::size_t kWireBytes = 40;
};

/// A mobile agent touring seller nodes and collecting quotes.
class ShoppingAgent : public platform::Agent {
 public:
  ShoppingAgent(core::LocationScheme& scheme, std::vector<net::NodeId> tour,
                std::uint64_t seed)
      : scheme_(scheme), tour_(std::move(tour)), rng_(seed) {}

  std::string kind() const override { return "shopper"; }

  /// Carries its collected quotes when migrating.
  std::size_t serialized_size() const override {
    return 2048 + 16 * quotes_.size();
  }

  void on_start() override {
    scheme_.register_agent(*this, [](bool) {});
    shop_here();
  }

  void on_arrival(net::NodeId) override {
    scheme_.update_location(*this, [](bool) {});
    shop_here();
  }

  void on_message(const platform::Message& message) override {
    if (scheme_.handle_agent_message(*this, message)) return;
    if (message.body_as<StatusRequest>() != nullptr) {
      StatusReport report;
      report.quotes_collected = quotes_.size();
      report.best_price = best_price();
      report.done = next_stop_ >= tour_.size();
      system().reply(message, id(), report, StatusReport::kWireBytes);
    }
  }

  void on_delivery_failure(const platform::DeliveryFailure& failure) override {
    scheme_.handle_delivery_failure(*this, failure);
  }

  double best_price() const {
    return quotes_.empty() ? 0.0
                           : *std::min_element(quotes_.begin(), quotes_.end());
  }
  std::size_t quote_count() const { return quotes_.size(); }
  bool tour_finished() const {
    return lap_ + 1 >= kLaps && next_stop_ >= tour_.size();
  }

 private:
  void shop_here() {
    // Haggling takes a while — that's why the buyer wants status mid-tour.
    quotes_.push_back(50.0 + rng_.uniform() * 50.0);
    if (next_stop_ >= tour_.size() && lap_ + 1 < kLaps) {
      // Prices move; tour the market again.
      ++lap_;
      next_stop_ = 0;
    }
    if (next_stop_ < tour_.size()) {
      const net::NodeId destination = tour_[next_stop_++];
      system().simulator().schedule_after(
          sim::SimTime::millis(60 + rng_.uniform() * 60),
          [this, destination] {
            if (system().node_of(id())) system().migrate(id(), destination);
          });
    }
  }

  static constexpr int kLaps = 4;

  core::LocationScheme& scheme_;
  std::vector<net::NodeId> tour_;
  std::size_t next_stop_ = 0;
  int lap_ = 0;
  util::Rng rng_;
  std::vector<double> quotes_;
};

/// The stationary buyer console: locates its shoppers and polls them. When
/// a shopper slips away between the locate answer and the contact (it is a
/// *mobile* agent, after all), the console falls back to the scheme's watch
/// extension: the IAgent pushes the shopper's next landing point, which is
/// fresh by construction, and the retry contact succeeds.
class BuyerConsole : public platform::Agent {
 public:
  BuyerConsole(core::HashLocationScheme& scheme,
               std::vector<platform::AgentId> shoppers)
      : scheme_(scheme), shoppers_(std::move(shoppers)) {}

  std::string kind() const override { return "buyer"; }

  void on_start() override { poll_next(); }

  void on_message(const platform::Message& message) override {
    // Routes WatchNotify (and any other scheme traffic) to the scheme.
    scheme_.handle_agent_message(*this, message);
  }

  std::size_t polls_answered = 0;
  std::size_t polls_failed = 0;
  std::size_t watch_rescues = 0;
  double last_best_price = 0.0;

 private:
  void poll_next() {
    const platform::AgentId shopper = shoppers_[cursor_++ % shoppers_.size()];
    // Step 1: locate the shopper through the hash mechanism.
    scheme_.locate(*this, shopper, [this, shopper](
                                       const core::LocateOutcome& outcome) {
      if (!outcome.found) {
        ++polls_failed;
        schedule_next_poll();
        return;
      }
      // Step 2: talk to it at the reported node.
      system().request(
          id(), platform::AgentAddress{outcome.node, shopper},
          StatusRequest{}, StatusRequest::kWireBytes,
          [this, shopper](platform::RpcResult result) {
            if (result.ok()) {
              if (const auto* report =
                      result.reply.body_as<StatusReport>()) {
                ++polls_answered;
                if (report->best_price > 0) {
                  last_best_price = report->best_price;
                }
              }
              schedule_next_poll();
              return;
            }
            // It migrated between the answer and our call. Watch for its
            // next landing and contact it there.
            scheme_.watch(
                *this, shopper,
                [this, shopper](
                    const core::HashLocationScheme::WatchOutcome& outcome) {
                  if (!outcome.fired) {
                    ++polls_failed;
                    schedule_next_poll();
                    return;
                  }
                  system().request(
                      id(),
                      platform::AgentAddress{outcome.entry.node, shopper},
                      StatusRequest{}, StatusRequest::kWireBytes,
                      [this](platform::RpcResult retry) {
                        if (retry.ok()) {
                          ++polls_answered;
                          ++watch_rescues;
                        } else {
                          ++polls_failed;
                        }
                        schedule_next_poll();
                      });
                });
          });
    });
  }

  void schedule_next_poll() {
    system().simulator().schedule_after(sim::SimTime::millis(120),
                                        [this] { poll_next(); });
  }

  core::HashLocationScheme& scheme_;
  std::vector<platform::AgentId> shoppers_;
  std::size_t cursor_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto shoppers_count =
      static_cast<std::size_t>(flags.get_int("shoppers", 6));
  const auto sellers = static_cast<std::size_t>(flags.get_int("sellers", 10));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  util::Rng rng(seed);
  sim::Simulator simulator;
  net::Network network(simulator, sellers + 1, net::make_default_lan_model(),
                       rng.fork());
  platform::AgentSystem system(simulator, network);
  core::MechanismConfig mechanism;
  core::HashLocationScheme scheme(system, mechanism);

  // Dispatch the shopping fleet from the buyer's node (node 0); each agent
  // tours the seller nodes in its own random order.
  std::vector<platform::AgentId> fleet;
  std::vector<ShoppingAgent*> shoppers;
  for (std::size_t i = 0; i < shoppers_count; ++i) {
    std::vector<net::NodeId> tour;
    for (net::NodeId node = 1; node <= sellers; ++node) tour.push_back(node);
    rng.shuffle(tour);
    auto& shopper =
        system.create<ShoppingAgent>(0, scheme, tour, rng.next());
    fleet.push_back(shopper.id());
    shoppers.push_back(&shopper);
  }
  auto& buyer = system.create<BuyerConsole>(0, scheme, fleet);

  simulator.run_until(sim::SimTime::seconds(8));

  std::printf("marketplace results after %.0fs simulated:\n",
              simulator.now().as_seconds());
  std::size_t finished = 0;
  double best = 1e9;
  for (const ShoppingAgent* shopper : shoppers) {
    finished += shopper->tour_finished();
    if (shopper->quote_count() > 0) best = std::min(best, shopper->best_price());
  }
  std::printf("  shoppers: %zu dispatched, %zu finished their tour\n",
              shoppers.size(), finished);
  std::printf("  best quote seen by any shopper: %.2f\n", best);
  std::printf("  buyer polls: %zu answered (%zu rescued by watch), %zu "
              "missed\n",
              buyer.polls_answered, buyer.watch_rescues, buyer.polls_failed);
  std::printf("  location mechanism: %zu IAgent(s), %llu locates, "
              "%llu stale-copy retries\n",
              scheme.tracker_count(),
              static_cast<unsigned long long>(scheme.stats().locates),
              static_cast<unsigned long long>(scheme.stats().stale_retries));
  return 0;
}
