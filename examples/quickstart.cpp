// Quickstart: the smallest complete use of the agentloc library.
//
// Builds a simulated 8-node network, deploys the paper's hash-based location
// mechanism, lets a handful of mobile agents roam, and locates one of them —
// printing what happens at each step.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "core/hash_scheme.hpp"
#include "platform/agent_system.hpp"
#include "workload/querier.hpp"
#include "workload/tagent.hpp"

using namespace agentloc;

int main() {
  // 1. The substrate: a deterministic simulator, a LAN model, and the
  //    mobile-agent platform (our stand-in for Aglets).
  sim::Simulator simulator;
  net::Network network(simulator, /*node_count=*/8,
                       net::make_default_lan_model(), util::Rng(2024));
  platform::AgentSystem system(simulator, network);

  // 2. The paper's mechanism: one HAgent (primary copy of the hash
  //    function), an LHAgent per node (secondary copies), one initial IAgent.
  core::MechanismConfig mechanism;  // Tmax=50, Tmin=5 — the paper's setting
  core::HashLocationScheme scheme(system, mechanism);
  std::printf("deployed: %zu IAgent(s), hash version %llu\n",
              scheme.tracker_count(),
              static_cast<unsigned long long>(scheme.hagent().tree().version()));

  // 3. Mobile agents that register and then roam, reporting each move.
  std::vector<platform::AgentId> roamers;
  for (int i = 0; i < 5; ++i) {
    workload::TAgent::Config config;
    config.residence = sim::SimTime::millis(400);
    config.seed = 100 + static_cast<std::uint64_t>(i);
    auto& agent = system.create<workload::TAgent>(
        static_cast<net::NodeId>(i), scheme, config);
    roamers.push_back(agent.id());
  }

  // 4. Let the system run for two simulated seconds of roaming.
  simulator.run_until(sim::SimTime::seconds(2));
  std::printf("after 2s of roaming:\n");
  for (const platform::AgentId id : roamers) {
    const auto node = system.node_of(id);
    std::printf("  agent %016llx is %s\n",
                static_cast<unsigned long long>(id),
                node ? ("at node " + std::to_string(*node)).c_str()
                     : "in transit");
  }

  // 5. Locate one of them the way any agent would: through the scheme.
  //    (A QuerierAgent wraps this pattern; here we do it by hand.)
  workload::QuerierAgent::Config querier_config;
  querier_config.quota = 3;
  querier_config.seed = 7;
  auto& querier = system.create<workload::QuerierAgent>(
      6, scheme, querier_config, roamers,
      [&] { simulator.request_stop(); });
  simulator.run_until(sim::SimTime::seconds(10));

  std::printf("issued %zu location queries: %llu found, mean %.2f ms\n",
              querier.latencies_ms().count(),
              static_cast<unsigned long long>(querier.found()),
              querier.latencies_ms().mean());

  // 6. Peek at the hash function the mechanism maintains.
  std::printf("\ncurrent hash tree (primary copy):\n%s",
              scheme.hagent().tree().render_ascii().c_str());
  return 0;
}
