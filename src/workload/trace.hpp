#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/latency.hpp"
#include "platform/message.hpp"
#include "sim/time.hpp"

namespace agentloc::workload {

/// One completed location query, as recorded by a tracing querier.
struct QueryTrace {
  sim::SimTime issued_at;
  sim::SimTime completed_at;
  platform::AgentId target = platform::kNoAgent;
  bool found = false;
  net::NodeId reported_node = net::kNoNode;
  int attempts = 0;

  double latency_ms() const {
    return (completed_at - issued_at).as_millis();
  }
};

/// Collects per-query traces and renders them as CSV — the raw data behind
/// every figure, for offline analysis/plotting.
class TraceLog {
 public:
  void add(QueryTrace trace) { traces_.push_back(trace); }

  std::size_t size() const noexcept { return traces_.size(); }
  bool empty() const noexcept { return traces_.empty(); }
  const std::vector<QueryTrace>& traces() const noexcept { return traces_; }

  /// CSV with header: t_issued_ms,t_completed_ms,latency_ms,target,found,
  /// node,attempts
  std::string to_csv() const;

  /// Write to a file; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<QueryTrace> traces_;
};

}  // namespace agentloc::workload
