#include "workload/tagent.hpp"

namespace agentloc::workload {

TAgent::TAgent(core::LocationScheme& scheme, const Config& config)
    : scheme_(&scheme), config_(config), rng_(config.seed) {}

void TAgent::on_start() {
  move_timer_ = std::make_unique<sim::Timeout>(system().simulator());
  if (config_.start_stagger > sim::SimTime::zero()) {
    // Admission spread: draw the delay from this agent's own stream so the
    // schedule is fixed by (seed, id), not by population size.
    const sim::SimTime delay = sim::SimTime::millis(
        rng_.uniform(0.0, config_.start_stagger.as_millis()));
    move_timer_->arm(delay, [this] {
      scheme_->register_agent(*this, [this](bool ok) { registered_ = ok; });
      if (config_.mobile) schedule_move();
    });
    return;
  }
  scheme_->register_agent(*this, [this](bool ok) { registered_ = ok; });
  if (config_.mobile) schedule_move();
}

void TAgent::on_extract() {
  // The one-shot move timer holds a reference to the source shard's
  // simulator; its pending arm (if any) dies with it. A cross-shard move is
  // always initiated from the timer's own firing (do_move), so nothing is
  // normally pending — but benches can migrate a paused agent too.
  move_timer_.reset();
}

void TAgent::on_shard_transfer() {
  move_timer_ = std::make_unique<sim::Timeout>(system().simulator());
}

void TAgent::on_dispose() {
  // Deregistering requires an active agent; on_dispose runs before removal.
  scheme_->deregister_agent(*this);
}

void TAgent::set_mobile(bool mobile) {
  if (config_.mobile == mobile) return;
  config_.mobile = mobile;
  if (mobile) {
    schedule_move();
  } else if (move_timer_) {
    move_timer_->cancel();
  }
}

void TAgent::schedule_move() {
  const sim::SimTime dwell =
      config_.exponential_residence
          ? sim::SimTime::millis(
                rng_.exponential(config_.residence.as_millis()))
          : config_.residence;
  move_timer_->arm(dwell, [this] { do_move(); });
}

void TAgent::do_move() {
  net::NodeId destination = node();
  if (!config_.node_pool.empty()) {
    // Cluster mobility: uniform over the pool minus the current node.
    std::vector<net::NodeId> options;
    for (const net::NodeId candidate : config_.node_pool) {
      if (candidate != node()) options.push_back(candidate);
    }
    if (options.empty()) {
      schedule_move();
      return;
    }
    destination = options[rng_.next_below(options.size())];
  } else {
    const auto nodes = static_cast<net::NodeId>(system().node_count());
    if (nodes < 2) {
      schedule_move();
      return;
    }
    // Uniform choice among the *other* nodes.
    destination = static_cast<net::NodeId>(rng_.next_below(nodes - 1));
    if (destination >= node()) ++destination;
  }
  system().migrate(id(), destination);
}

void TAgent::on_message(const platform::Message& message) {
  // Location-mechanism control traffic (e.g. a wrong-IAgent notice) goes to
  // the scheme; a TAgent has no other inbound protocol.
  scheme_->handle_agent_message(*this, message);
}

void TAgent::on_delivery_failure(const platform::DeliveryFailure& failure) {
  scheme_->handle_delivery_failure(*this, failure);
}

void TAgent::on_arrival(net::NodeId from_node) {
  (void)from_node;
  ++moves_;
  // Paper §2.3 ("Agent Movement"): each time the agent moves, it informs its
  // IAgent about its new location.
  scheme_->update_location(*this, [](bool) {});
  if (config_.mobile) schedule_move();
}

}  // namespace agentloc::workload
