#pragma once

#include <string>
#include <vector>

namespace agentloc::workload {

/// Fixed-width text table used by every bench binary to print the rows a
/// paper figure/table reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns and a header separator.
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `precision` decimals.
std::string fmt(double value, int precision = 2);

/// Format an integer count.
std::string fmt_count(std::uint64_t value);

/// A crude ASCII line for a numeric series ("#" bars), used to sketch the
/// figure shape right in the terminal.
std::string ascii_series(const std::vector<std::pair<std::string, double>>& points,
                         std::size_t width = 50);

}  // namespace agentloc::workload
