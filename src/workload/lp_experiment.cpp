#include "workload/lp_experiment.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "net/latency.hpp"
#include "sim/parallel.hpp"
#include "util/rng.hpp"
#include "util/summary.hpp"

namespace agentloc::workload {

namespace {

// Serialized sizes of the LP model's message types, sized like the legacy
// stack's payloads (a locate request is an id + reply address; a tracker
// update adds the version; a migration carries the agent's state).
constexpr std::size_t kQueryBytes = 64;
constexpr std::size_t kReplyBytes = 96;
constexpr std::size_t kUpdateBytes = 128;
constexpr std::size_t kVerifyBytes = 64;
constexpr std::size_t kMigrationBytes = 2048;

/// Probe/verify rounds before a query gives up, mirroring the legacy
/// scheme's bounded retry loop.
constexpr int kMaxAttempts = 8;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p *= 2;
  return p;
}

/// One mobile (tracked) agent. The struct is only ever touched from the LP
/// the mover currently executes on: its life is a single causal chain of
/// events (reside → depart → migrate → arrive → …), each handing off to the
/// next via a cross-LP message, so the engine's window barriers order every
/// access.
struct Mover {
  util::Rng rng;
  net::NodeId node = 0;
  std::uint64_t version = 0;  ///< bumped per departure; orders updates
  std::uint64_t moves = 0;
};

/// One closed-loop measurement client, pinned to `node`. Like `Mover`, the
/// query in flight is a single causal chain (querier → tracker → target →
/// querier), so remote LPs may read/advance this state race-free; the RNG
/// travels with the chain, which keeps its draw order thread-count
/// invariant.
struct Querier {
  util::Rng rng;
  net::NodeId node = 0;
  std::size_t quota = 0;  ///< 0 = unlimited (runs to the deadline)
  std::size_t issued = 0;
  std::size_t target = 0;
  sim::SimTime start;
  int attempts = 0;

  util::Summary latencies_ms;
  util::Summary attempts_summary;
  std::uint64_t found = 0;
  std::uint64_t failed = 0;
  std::uint64_t wrong_location = 0;
};

/// One hash-partitioned location tracker (the mechanism's IAgent analogue),
/// hosted on `node`. `busy_until` models its FIFO service queue: requests
/// are served back-to-back, `service_time` apiece. Only the hosting LP
/// touches it.
struct Tracker {
  net::NodeId node = 0;
  sim::SimTime busy_until;
  std::uint64_t served = 0;
};

/// Tracker-side view of one mover's location. Owned by the LP hosting the
/// mover's tracker.
struct Record {
  net::NodeId node = 0;
  std::uint64_t version = 0;
};

/// Per-node message counters, written only by events on that node's LP and
/// summed serially after the run. Padded so neighbouring nodes' counters do
/// not share a cache line.
struct alignas(64) NodeCounters {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t probes_served = 0;
};

class LpWorld {
 public:
  explicit LpWorld(const ExperimentConfig& config)
      : config_(config),
        model_(net::make_default_lan_model()),
        engine_({/*lps=*/config.nodes,
                 /*threads=*/std::max<std::size_t>(config.lp_threads, 1),
                 /*lookahead=*/model_->min_latency(),
                 /*channel_capacity=*/1024}),
        tracker_count_(round_up_pow2(
            config.lp_trackers != 0 ? config.lp_trackers : config.nodes)),
        movers_(config.tagents),
        queriers_(config.queriers),
        trackers_(tracker_count_),
        records_(config.tagents),
        resident_(config.nodes,
                  std::vector<std::uint8_t>(config.tagents, 0)),
        node_busy_(config.nodes),
        counters_(config.nodes) {
    // Serial setup: every seed is drawn here, in a fixed order, from one
    // master stream — the only draws not bound to an LP chain.
    util::Rng master(config.seed);
    for (std::size_t k = 0; k < tracker_count_; ++k) {
      trackers_[k].node = static_cast<net::NodeId>(k % config.nodes);
    }
    for (std::size_t i = 0; i < movers_.size(); ++i) {
      Mover& mover = movers_[i];
      mover.rng = util::Rng(master.next());
      mover.node = static_cast<net::NodeId>(i % config.nodes);
      resident_[mover.node][i] = 1;
      records_[i] = Record{mover.node, 0};
      if (config.nodes > 1) {
        engine_.post(mover.node, mover.node, residence_draw(mover),
                     [this, i] { mover_depart(i); });
      }
    }
    const std::size_t per_querier =
        config.queriers == 0 ? 0 : config.total_queries / config.queriers;
    for (std::size_t q = 0; q < queriers_.size(); ++q) {
      Querier& querier = queriers_[q];
      querier.rng = util::Rng(master.next());
      querier.node = static_cast<net::NodeId>((q * 3 + 1) % config.nodes);
      querier.quota = per_querier;
      if (querier.quota != 0) {
        remaining_.fetch_add(1, std::memory_order_relaxed);
      }
      engine_.post(querier.node, querier.node, config.warmup,
                   [this, q] { querier_issue(q); });
    }
  }

  ExperimentResult run() {
    engine_.run_until(config_.warmup + config_.measure_deadline);

    ExperimentResult result;
    for (const Querier& querier : queriers_) {
      result.location_ms.merge(querier.latencies_ms);
      result.attempts.merge(querier.attempts_summary);
      result.queries_found += querier.found;
      result.queries_failed += querier.failed;
      result.wrong_location += querier.wrong_location;
    }
    for (const Mover& mover : movers_) {
      result.tagent_moves += mover.moves;
      result.platform_stats.migrations_started += mover.version;
      result.platform_stats.migrations_completed += mover.moves;
    }
    result.platform_stats.agents_created =
        movers_.size() + queriers_.size();
    for (const NodeCounters& counters : counters_) {
      result.network_stats.messages_sent += counters.messages;
      result.network_stats.bytes_sent += counters.bytes;
      result.scheme_stats.updates += counters.updates_applied;
      result.scheme_stats.locate_rpcs += counters.probes_served;
    }
    // The LP model has no faults, so everything sent is delivered.
    result.network_stats.messages_delivered =
        result.network_stats.messages_sent;
    result.scheme_stats.registers = movers_.size();
    result.scheme_stats.locates = result.queries_found +
                                  result.queries_failed;
    result.scheme_stats.locates_found = result.queries_found;
    result.scheme_stats.locates_failed = result.queries_failed;
    result.scheme_stats.stale_retries = result.wrong_location;
    result.trackers_at_end = tracker_count_;

    sim::SimTime end = sim::SimTime::zero();
    for (std::size_t n = 0; n < config_.nodes; ++n) {
      end = std::max(end, engine_.lp(static_cast<std::uint32_t>(n)).now());
    }
    result.sim_seconds = end.as_seconds();
    result.events_executed = engine_.executed();
    result.lp_windows = engine_.windows();
    result.lp_cross_messages = engine_.cross_lp_messages();
    result.lp_threads_used = engine_.threads();
    return result;
  }

 private:
  using LpId = sim::ParallelSimulator::LpId;

  std::size_t tracker_of(std::size_t mover) const {
    // Hash-partitioned by mixed id bits, like the mechanism's extendible
    // hash over uniformly distributed platform ids.
    return util::mix64(mover + 1) & (tracker_count_ - 1);
  }

  sim::SimTime residence_draw(Mover& mover) {
    if (!config_.exponential_residence) return config_.residence;
    return sim::SimTime::millis(
        mover.rng.exponential(config_.residence.as_millis()));
  }

  void count_send(net::NodeId from, std::size_t bytes) {
    NodeCounters& counters = counters_[from];
    ++counters.messages;
    counters.bytes += bytes;
  }

  /// Deliver `handler` on node `to` at absolute time `when`, from code
  /// executing on node `from`. Same-node hops are plain local events (no
  /// lookahead constraint — loopback latency may undercut the cross-node
  /// floor); cross-node hops go through the engine's conservative channel.
  void send(net::NodeId from, net::NodeId to, sim::SimTime when,
            sim::ParallelSimulator::Handler handler) {
    if (from == to) {
      engine_.lp(from).schedule_at(when, std::move(handler));
    } else {
      engine_.post(from, to, when, std::move(handler));
    }
  }

  // ---- mover chain ----

  void mover_depart(std::size_t i) {
    Mover& mover = movers_[i];
    const net::NodeId from = mover.node;
    sim::Simulator& sim = engine_.lp(from);
    resident_[from][i] = 0;
    ++mover.version;
    net::NodeId to =
        static_cast<net::NodeId>(mover.rng.next_below(config_.nodes - 1));
    if (to >= from) ++to;
    const sim::SimTime latency =
        net::checked_latency(*model_, from, to, kMigrationBytes, mover.rng);
    count_send(from, kMigrationBytes);
    engine_.post(from, to, sim.now() + latency,
                 [this, i, to] { mover_arrive(i, to); });
  }

  void mover_arrive(std::size_t i, net::NodeId to) {
    Mover& mover = movers_[i];
    mover.node = to;
    ++mover.moves;
    resident_[to][i] = 1;
    sim::Simulator& sim = engine_.lp(to);

    // Register the new location with the mover's tracker (versioned, so a
    // reordered older update can never clobber a newer one).
    const std::size_t k = tracker_of(i);
    const net::NodeId tracker_node = trackers_[k].node;
    const sim::SimTime latency = net::checked_latency(
        *model_, to, tracker_node, kUpdateBytes, mover.rng);
    count_send(to, kUpdateBytes);
    const std::uint64_t version = mover.version;
    send(to, tracker_node, sim.now() + latency, [this, k, i, to, version] {
      tracker_update(k, i, to, version);
    });

    engine_.lp(to).schedule_after(residence_draw(mover),
                                  [this, i] { mover_depart(i); });
  }

  void tracker_update(std::size_t k, std::size_t i, net::NodeId node,
                      std::uint64_t version) {
    Tracker& tracker = trackers_[k];
    sim::Simulator& sim = engine_.lp(tracker.node);
    const sim::SimTime start = std::max(sim.now(), tracker.busy_until);
    tracker.busy_until = start + config_.service_time;
    ++tracker.served;
    sim.schedule_at(tracker.busy_until, [this, k, i, node, version] {
      Record& record = records_[i];
      if (version > record.version) {
        record.node = node;
        record.version = version;
      }
      ++counters_[trackers_[k].node].updates_applied;
    });
  }

  // ---- query chain ----

  void querier_issue(std::size_t q) {
    Querier& querier = queriers_[q];
    querier.start = engine_.lp(querier.node).now();
    querier.attempts = 0;
    querier.target =
        querier.rng.zipf(movers_.size(), config_.target_skew);
    probe(q);
  }

  void probe(std::size_t q) {
    Querier& querier = queriers_[q];
    ++querier.attempts;
    const std::size_t k = tracker_of(querier.target);
    const net::NodeId tracker_node = trackers_[k].node;
    sim::Simulator& sim = engine_.lp(querier.node);
    const sim::SimTime latency = net::checked_latency(
        *model_, querier.node, tracker_node, kQueryBytes, querier.rng);
    count_send(querier.node, kQueryBytes);
    send(querier.node, tracker_node, sim.now() + latency,
         [this, q, k] { tracker_serve(q, k); });
  }

  void tracker_serve(std::size_t q, std::size_t k) {
    Tracker& tracker = trackers_[k];
    sim::Simulator& sim = engine_.lp(tracker.node);
    const sim::SimTime start = std::max(sim.now(), tracker.busy_until);
    tracker.busy_until = start + config_.service_time;
    ++tracker.served;
    ++counters_[tracker.node].probes_served;
    sim.schedule_at(tracker.busy_until,
                    [this, q, k] { tracker_reply(q, k); });
  }

  void tracker_reply(std::size_t q, std::size_t k) {
    Querier& querier = queriers_[q];
    const Tracker& tracker = trackers_[k];
    // Read the record at service time, not arrival time: a just-applied
    // update is visible, like the legacy tracker's inbox ordering.
    const net::NodeId reported = records_[querier.target].node;
    sim::Simulator& sim = engine_.lp(tracker.node);
    const sim::SimTime latency = net::checked_latency(
        *model_, tracker.node, querier.node, kReplyBytes, querier.rng);
    count_send(tracker.node, kReplyBytes);
    send(tracker.node, querier.node, sim.now() + latency,
         [this, q, reported] { verify_hop(q, reported); });
  }

  void verify_hop(std::size_t q, net::NodeId reported) {
    Querier& querier = queriers_[q];
    sim::Simulator& sim = engine_.lp(querier.node);
    const sim::SimTime latency = net::checked_latency(
        *model_, querier.node, reported, kVerifyBytes, querier.rng);
    count_send(querier.node, kVerifyBytes);
    send(querier.node, reported, sim.now() + latency,
         [this, q, reported] { verify_serve(q, reported); });
  }

  void verify_serve(std::size_t q, net::NodeId node) {
    sim::Simulator& sim = engine_.lp(node);
    const sim::SimTime start = std::max(sim.now(), node_busy_[node]);
    node_busy_[node] = start + config_.service_time;
    sim.schedule_at(node_busy_[node],
                    [this, q, node] { verify_reply(q, node); });
  }

  void verify_reply(std::size_t q, net::NodeId node) {
    Querier& querier = queriers_[q];
    const bool hit = resident_[node][querier.target] != 0;
    sim::Simulator& sim = engine_.lp(node);
    const sim::SimTime latency = net::checked_latency(
        *model_, node, querier.node, kReplyBytes, querier.rng);
    count_send(node, kReplyBytes);
    send(node, querier.node, sim.now() + latency,
         [this, q, hit] { query_result(q, hit); });
  }

  void query_result(std::size_t q, bool hit) {
    Querier& querier = queriers_[q];
    sim::Simulator& sim = engine_.lp(querier.node);
    if (hit) {
      querier.latencies_ms.add((sim.now() - querier.start).as_millis());
      querier.attempts_summary.add(static_cast<double>(querier.attempts));
      ++querier.found;
      next_query(q);
      return;
    }
    ++querier.wrong_location;
    if (querier.attempts >= kMaxAttempts) {
      querier.attempts_summary.add(static_cast<double>(querier.attempts));
      ++querier.failed;
      next_query(q);
      return;
    }
    probe(q);  // the tracker will have a fresher record by the next probe
  }

  void next_query(std::size_t q) {
    Querier& querier = queriers_[q];
    ++querier.issued;
    if (querier.quota != 0 && querier.issued >= querier.quota) {
      // Last querier to finish stops the run at the next window boundary
      // (deterministic: the set of completions per window is fixed by the
      // event schedule, not by thread timing).
      if (remaining_.fetch_sub(1, std::memory_order_relaxed) == 1) {
        engine_.request_stop();
      }
      return;
    }
    sim::SimTime pause = sim::SimTime::zero();
    if (config_.think > sim::SimTime::zero()) {
      pause = sim::SimTime::millis(
          querier.rng.exponential(config_.think.as_millis()));
    }
    engine_.lp(querier.node).schedule_after(
        pause, [this, q] { querier_issue(q); });
  }

  const ExperimentConfig& config_;
  std::unique_ptr<net::LatencyModel> model_;
  sim::ParallelSimulator engine_;
  std::size_t tracker_count_;
  std::vector<Mover> movers_;
  std::vector<Querier> queriers_;
  std::vector<Tracker> trackers_;
  std::vector<Record> records_;
  std::vector<std::vector<std::uint8_t>> resident_;
  std::vector<sim::SimTime> node_busy_;
  std::vector<NodeCounters> counters_;
  std::atomic<std::size_t> remaining_{0};
};

}  // namespace

ExperimentResult run_experiment_lp(const ExperimentConfig& config) {
  if (config.nodes == 0) {
    throw std::invalid_argument("run_experiment_lp: nodes must be > 0");
  }
  if (config.tagents == 0 && config.queriers != 0) {
    throw std::invalid_argument(
        "run_experiment_lp: queriers need a nonempty tracked population");
  }
  if (config.drop_probability != 0.0) {
    throw std::invalid_argument(
        "run_experiment_lp: fault injection is not supported by the LP "
        "engine");
  }
  if (config.sampler || config.on_finish || !config.trace_csv_path.empty()) {
    throw std::invalid_argument(
        "run_experiment_lp: host hooks (sampler/on_finish/trace) are not "
        "supported by the LP engine");
  }
  LpWorld world(config);
  return world.run();
}

}  // namespace agentloc::workload
