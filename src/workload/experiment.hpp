#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/scheme.hpp"
#include "net/network.hpp"
#include "util/summary.hpp"

namespace agentloc::workload {

/// Everything that defines one experiment run. Defaults reproduce the
/// paper's setup as reconstructed in DESIGN.md §5.
struct ExperimentConfig {
  /// "hash", "centralized", "home", or "forwarding".
  std::string scheme = "hash";

  std::size_t nodes = 16;
  std::size_t tagents = 20;
  sim::SimTime residence = sim::SimTime::millis(500);
  bool exponential_residence = true;

  /// Admission spread for the tracked population: each TAgent registers
  /// after a per-agent uniform delay in [0, start_stagger] rather than at
  /// t = 0 (see TAgent::Config::start_stagger). Keep it well inside
  /// `warmup` so measurement starts with the whole population registered.
  sim::SimTime start_stagger = sim::SimTime::zero();

  std::size_t total_queries = 2000;
  std::size_t queriers = 4;
  sim::SimTime think = sim::SimTime::millis(100);
  double target_skew = 0.0;

  /// Simulated time before measurement starts (lets mobility, registration
  /// and rehashing reach steady state).
  sim::SimTime warmup = sim::SimTime::seconds(60);

  /// Hard stop for the measured phase.
  sim::SimTime measure_deadline = sim::SimTime::seconds(600);

  std::uint64_t seed = 1;

  /// Engine selection. 0 (the default) runs the single-simulator engine —
  /// every existing baseline and test is untouched. >= 1 shards the full
  /// platform stack across the parallel LP engine
  /// (`run_experiment_sharded`, DESIGN.md §16) with that many worker
  /// threads; 1 is the sequential sharded driver, and any higher count
  /// produces bit-identical results (the LP determinism contract). The
  /// engine falls back to one thread when the latency model cannot promise
  /// a positive cross-node floor (zero lookahead). The message-level toy
  /// driver (`run_experiment_lp`) remains directly callable.
  std::size_t lp_threads = 0;

  /// Location-tracker count for the message-level LP driver
  /// (`run_experiment_lp`; rounded up to a power of two; 0 = one per
  /// node). Ignored by the other engines.
  std::size_t lp_trackers = 0;

  /// Per-message CPU time at every agent, calibrated to Aglets-era Java
  /// messaging (DESIGN.md §5). At this value the centralized tracker nears
  /// saturation at the top of Experiment I's sweep — the regime whose
  /// queueing delay the paper's Figures 7-8 plot.
  sim::SimTime service_time = sim::SimTime::micros(4000);

  core::MechanismConfig mechanism;

  /// Message drop probability (robustness experiments; 0 in the paper's).
  double drop_probability = 0.0;

  /// Platform id policy: mixed (uniform bits — the default, and what the
  /// mechanism's extendible hashing assumes) or sequential (adversarially
  /// skewed prefixes; see the id-distribution ablation).
  bool mixed_ids = true;

  /// Optional periodic probe during the whole run (e.g. sample the IAgent
  /// count for the adaptation bench).
  sim::SimTime sample_period = sim::SimTime::zero();
  std::function<void(sim::SimTime, core::LocationScheme&)> sampler;

  /// Optional inspection hook invoked right before teardown.
  std::function<void(core::LocationScheme&)> on_finish;

  /// When non-empty, write every measured query as CSV to this path.
  std::string trace_csv_path;
};

/// What one run produced.
struct ExperimentResult {
  /// Per-query location time in milliseconds — the paper's metric.
  util::Summary location_ms;
  util::Summary attempts;

  std::uint64_t queries_found = 0;
  std::uint64_t queries_failed = 0;
  std::uint64_t wrong_location = 0;

  std::size_t trackers_at_end = 0;
  core::SchemeStats scheme_stats;
  net::NetworkStats network_stats;
  platform::PlatformStats platform_stats;

  std::uint64_t tagent_moves = 0;
  double sim_seconds = 0.0;
  std::uint64_t events_executed = 0;

  /// Parallel LP engine diagnostics; all zero when the single-simulator
  /// engine ran (`ExperimentConfig::lp_threads == 0`).
  std::uint64_t lp_windows = 0;
  std::uint64_t lp_cross_messages = 0;
  std::size_t lp_threads_used = 0;
};

/// Build a scheme by name (throws on unknown names).
std::unique_ptr<core::LocationScheme> make_scheme(
    const std::string& name, platform::AgentSystem& system,
    const core::MechanismConfig& mechanism);

/// Run one experiment to completion and collect the result.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Seed for replication `r` of a sweep with base seed `base_seed`. Each
/// replication's seed depends only on (base_seed, r) — never on how many
/// replications ran before it — so any subset of replications can be
/// re-run, reordered, or farmed out to threads and still replay
/// bit-identically.
std::uint64_t replication_seed(std::uint64_t base_seed, std::size_t r);

/// Run `repeats` seeds and merge the per-query samples in replication
/// order. Replications run on a thread pool sized to the hardware (each one
/// owns its private Simulator/Network/AgentSystem); the merged result is
/// bit-identical to the sequential path. Falls back to sequential when the
/// config carries host callbacks (sampler/on_finish) or a trace path, which
/// the harness does not promise to invoke thread-safely.
ExperimentResult run_repeated(const ExperimentConfig& config,
                              std::size_t repeats);

/// Same as `run_repeated` but with an explicit worker count; `threads <= 1`
/// runs strictly sequentially on the calling thread.
ExperimentResult run_parallel(const ExperimentConfig& config,
                              std::size_t repeats, std::size_t threads);

}  // namespace agentloc::workload
