#pragma once

#include "workload/experiment.hpp"

namespace agentloc::workload {

/// Run one experiment on the node-partitioned parallel LP engine
/// (`sim::ParallelSimulator`, DESIGN.md §13) instead of the single-simulator
/// stack. Selected by `run_experiment` when `ExperimentConfig::lp_threads`
/// is nonzero.
///
/// The LP model replays the mechanism's steady-state message economy —
/// movers with residence timers and migration latency, hash-partitioned
/// location trackers with FIFO service queues, closed-loop queriers doing
/// probe → verify → retry — with every piece of mutable state owned by
/// exactly one node's LP and every cross-node hop carrying the LAN model's
/// latency floor as lookahead. It deliberately does not thread the legacy
/// `platform::AgentSystem`/scheme stack (whose maps, stats and RPC tables
/// are shared across nodes by design); it is a parallel reimplementation of
/// the workload at the message level, so its numbers are comparable across
/// thread counts but not bitwise against the `lp_threads == 0` engine.
///
/// Determinism contract: for a fixed config and seed the returned
/// `ExperimentResult` is bit-for-bit identical for every `lp_threads >= 1`
/// (per-entity RNG streams are split serially from the run seed; all
/// cross-LP ordering is fixed by the engine's (time, src, seq) key).
///
/// Host hooks (`sampler`, `on_finish`, `trace_csv_path`) and fault
/// injection (`drop_probability`) are not supported here and throw
/// `std::invalid_argument`.
ExperimentResult run_experiment_lp(const ExperimentConfig& config);

}  // namespace agentloc::workload
