#pragma once

#include "workload/experiment.hpp"

namespace agentloc::workload {

/// Run one paper-faithful experiment with the platform sharded across the
/// parallel LP engine (`sim::ParallelSimulator`, DESIGN.md §16). Selected by
/// `run_experiment` when `ExperimentConfig::lp_threads >= 1`.
///
/// Unlike the message-level LP driver (`run_experiment_lp`), this path runs
/// the real stack — `platform::AgentSystem`, the location schemes, TAgents
/// and queriers — partitioned one shard per node: each shard owns a private
/// simulator, network stream, agent system, and scheme instance, and every
/// cross-node transmit, RPC reply, and migration handoff crosses shards as
/// an engine envelope ordered by the deterministic (time, src LP, send seq)
/// key.
///
/// Determinism contract: for a fixed config and seed the returned
/// `ExperimentResult` is bit-for-bit identical for every `lp_threads >= 1`.
/// Results are *not* bitwise comparable against the `lp_threads == 0`
/// engine: the legacy stack draws all network randomness from one global
/// stream in global event order, which sharding necessarily splits into
/// per-shard streams (DESIGN.md §16 spells out the contract).
///
/// Host hooks (`sampler`, `on_finish`, `trace_csv_path`) and fault
/// injection (`drop_probability`) are not supported here and throw
/// `std::invalid_argument`.
ExperimentResult run_experiment_sharded(const ExperimentConfig& config);

}  // namespace agentloc::workload
