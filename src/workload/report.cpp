#include "workload/report.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace agentloc::workload {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << cells[c]
         << std::string(widths[c] - cells[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string fmt_count(std::uint64_t value) { return std::to_string(value); }

std::string ascii_series(
    const std::vector<std::pair<std::string, double>>& points,
    std::size_t width) {
  double peak = 1e-12;
  std::size_t label_width = 0;
  for (const auto& [label, value] : points) {
    peak = std::max(peak, value);
    label_width = std::max(label_width, label.size());
  }
  std::ostringstream os;
  for (const auto& [label, value] : points) {
    const auto bar =
        static_cast<std::size_t>(value / peak * static_cast<double>(width));
    os << label << std::string(label_width - label.size(), ' ') << " |"
       << std::string(bar, '#') << " " << fmt(value) << "\n";
  }
  return os.str();
}

}  // namespace agentloc::workload
