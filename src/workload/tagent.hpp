#pragma once

#include <memory>
#include <vector>

#include "core/scheme.hpp"
#include "sim/timer.hpp"
#include "util/rng.hpp"

namespace agentloc::workload {

/// A TAgent — the paper's name for the tracked mobile agents of the
/// evaluation (§5): it registers with the location mechanism at creation,
/// roams the network staying `residence` at each node, and reports its new
/// location after every migration.
class TAgent : public platform::Agent {
 public:
  struct Config {
    /// Dwell time at each node (paper: 0.5 s in Experiment I; the sweep
    /// variable of Experiment II).
    sim::SimTime residence = sim::SimTime::millis(500);

    /// Draw dwell times from an exponential distribution with mean
    /// `residence` instead of a constant — desynchronizes the population.
    bool exponential_residence = true;

    /// Per-agent RNG stream seed.
    std::uint64_t seed = 1;

    /// Whether the agent starts moving immediately.
    bool mobile = true;

    /// Admission spread: register (and start roaming) after a uniform
    /// random delay in [0, start_stagger] instead of at creation time.
    /// Zero (the default) keeps the everything-at-t0 burst. At million-agent
    /// populations the harness staggers admission across the warmup so the
    /// platform's RPC/in-flight/inbox tables size for steady state, not for
    /// one synchronized registration spike no real deployment produces.
    sim::SimTime start_stagger = sim::SimTime::zero();

    /// When non-empty, the agent roams only within these nodes (cluster
    /// mobility — used by the locality ablation). Must contain at least two
    /// nodes for movement to happen.
    std::vector<net::NodeId> node_pool;
  };

  TAgent(core::LocationScheme& scheme, const Config& config);

  std::string kind() const override { return "tagent"; }

  void on_start() override;
  void on_arrival(net::NodeId from_node) override;
  void on_message(const platform::Message& message) override;
  void on_delivery_failure(const platform::DeliveryFailure& failure) override;
  void on_dispose() override;
  void on_extract() override;
  void on_shard_transfer() override;

  /// Sharded deployments (DESIGN.md §16): point the agent at the scheme
  /// instance of the shard it just landed on. The host calls this between
  /// `adopt_migrated` and `notify_arrival` — before the arrival-time
  /// `update_location` runs.
  void rebind_scheme(core::LocationScheme& scheme) { scheme_ = &scheme; }

  /// Pause/resume roaming (used by adaptation benches to create load steps).
  void set_mobile(bool mobile);

  /// Change the dwell time; takes effect from the next scheduled move
  /// (used by adaptation benches to create mobility steps).
  void set_residence(sim::SimTime residence) {
    config_.residence = residence;
  }

  std::uint64_t moves_completed() const noexcept { return moves_; }
  bool registered() const noexcept { return registered_; }

 private:
  void schedule_move();
  void do_move();

  core::LocationScheme* scheme_;  ///< never null; rebound on shard transfer
  Config config_;
  util::Rng rng_;
  std::unique_ptr<sim::Timeout> move_timer_;
  bool registered_ = false;
  std::uint64_t moves_ = 0;
};

}  // namespace agentloc::workload
