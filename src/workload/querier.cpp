#include "workload/querier.hpp"

#include <utility>

namespace agentloc::workload {

QuerierAgent::QuerierAgent(core::LocationScheme& scheme, const Config& config,
                           std::vector<platform::AgentId> targets,
                           std::function<void()> on_complete)
    : scheme_(scheme),
      config_(config),
      targets_(std::move(targets)),
      on_complete_(std::move(on_complete)),
      rng_(config.seed) {}

void QuerierAgent::on_start() {
  think_timer_ = std::make_unique<sim::Timeout>(system().simulator());
  issue();
}

void QuerierAgent::issue() {
  if (targets_.empty() ||
      (config_.quota != 0 && issued_ >= config_.quota)) {
    complete();
    return;
  }
  ++issued_;
  const platform::AgentId target =
      targets_[rng_.zipf(targets_.size(), config_.target_skew)];
  const sim::SimTime started = system().now();
  scheme_.locate(*this, target, [this, started, target](
                                    const core::LocateOutcome& outcome) {
    latencies_.add((system().now() - started).as_millis());
    attempts_.add(static_cast<double>(outcome.attempts));
    if (config_.trace_log != nullptr) {
      QueryTrace trace;
      trace.issued_at = started;
      trace.completed_at = system().now();
      trace.target = target;
      trace.found = outcome.found;
      trace.reported_node = outcome.node;
      trace.attempts = outcome.attempts;
      config_.trace_log->add(trace);
    }
    if (outcome.found) {
      ++found_;
      // Staleness check against platform ground truth. The target may have
      // moved since the IAgent answered (node_of is nullopt mid-flight);
      // `wrong_location` therefore measures how often an answer is already
      // outdated on arrival, not a protocol error.
      const auto truth = system().node_of(target);
      if (truth && *truth != outcome.node) ++wrong_location_;
    } else {
      ++failed_;
    }
    const sim::SimTime think =
        config_.exponential_think
            ? sim::SimTime::millis(rng_.exponential(config_.think.as_millis()))
            : config_.think;
    think_timer_->arm(think, [this] { issue(); });
  });
}

void QuerierAgent::complete() {
  if (done_) return;
  done_ = true;
  if (on_complete_) on_complete_();
}

}  // namespace agentloc::workload
