#include "workload/experiment.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/centralized_scheme.hpp"
#include "core/forwarding_scheme.hpp"
#include "core/hash_scheme.hpp"
#include "core/home_scheme.hpp"
#include "platform/agent_system.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/querier.hpp"
#include "workload/sharded_experiment.hpp"
#include "workload/tagent.hpp"

namespace agentloc::workload {

std::unique_ptr<core::LocationScheme> make_scheme(
    const std::string& name, platform::AgentSystem& system,
    const core::MechanismConfig& mechanism) {
  if (name == "hash") {
    return std::make_unique<core::HashLocationScheme>(system, mechanism);
  }
  if (name == "centralized") {
    return std::make_unique<core::CentralizedLocationScheme>(system,
                                                             mechanism);
  }
  if (name == "home") {
    return std::make_unique<core::HomeRegistryLocationScheme>(system,
                                                              mechanism);
  }
  if (name == "forwarding") {
    return std::make_unique<core::ForwardingLocationScheme>(system,
                                                            mechanism);
  }
  throw std::invalid_argument("unknown location scheme: " + name);
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  if (config.lp_threads >= 1) return run_experiment_sharded(config);
  util::Rng master(config.seed);

  // Batch-first at scale (DESIGN.md §15): at or above the auto threshold,
  // turn on update batching and pre-size every population-proportional
  // table. Below it nothing changes, so small fixed-seed baselines stay
  // bit-identical.
  core::MechanismConfig mechanism = config.mechanism;
  const bool at_scale = mechanism.batch_auto_threshold > 0 &&
                        config.tagents >= mechanism.batch_auto_threshold;
  if (at_scale) mechanism.update_batching = true;

  sim::Simulator simulator;
  // Pool-size hint: the peak number of *concurrent* pending events is set by
  // in-flight messages and per-agent timers, all proportional to the
  // population; pre-sizing keeps the steady-state sweep from regrowing the
  // event pool or heap mid-run. (A hint only — ×4 covers the steady state
  // without dominating setup memory at million-agent populations.)
  simulator.reserve(config.tagents * 4 + config.queriers * 16 +
                    config.nodes * 8 + 256);
  net::Network network(simulator, config.nodes, net::make_default_lan_model(),
                       master.fork());
  network.faults().drop_probability = config.drop_probability;

  platform::AgentSystem::Config platform_config;
  platform_config.service_time = config.service_time;
  platform_config.mixed_ids = config.mixed_ids;
  if (at_scale) {
    platform_config.reserve_agents =
        config.tagents + config.queriers + config.nodes + 16;
  }
  platform::AgentSystem system(simulator, network, platform_config);

  auto scheme = make_scheme(config.scheme, system, mechanism);
  if (at_scale) scheme->reserve(config.tagents);

  // The tracked population, spread round-robin across nodes.
  std::vector<TAgent*> tagents;
  std::vector<platform::AgentId> targets;
  tagents.reserve(config.tagents);
  for (std::size_t i = 0; i < config.tagents; ++i) {
    TAgent::Config tconfig;
    tconfig.residence = config.residence;
    tconfig.exponential_residence = config.exponential_residence;
    tconfig.start_stagger = config.start_stagger;
    tconfig.seed = master.next();
    auto& agent = system.create<TAgent>(
        static_cast<net::NodeId>(i % config.nodes), *scheme, tconfig);
    tagents.push_back(&agent);
    targets.push_back(agent.id());
  }

  // Optional periodic probe over the whole run.
  std::unique_ptr<sim::PeriodicTimer> sampler;
  if (config.sampler && config.sample_period > sim::SimTime::zero()) {
    sampler = std::make_unique<sim::PeriodicTimer>(
        simulator, config.sample_period,
        [&] { config.sampler(simulator.now(), *scheme); });
    sampler->start();
  }

  simulator.run_until(config.warmup);

  // Measurement phase: closed-loop queriers, quota split evenly.
  TraceLog trace_log;
  std::size_t remaining = config.queriers;
  std::vector<QuerierAgent*> queriers;
  const std::size_t per_querier =
      config.queriers == 0 ? 0 : config.total_queries / config.queriers;
  for (std::size_t q = 0; q < config.queriers; ++q) {
    QuerierAgent::Config qconfig;
    qconfig.quota = per_querier;
    qconfig.think = config.think;
    qconfig.target_skew = config.target_skew;
    qconfig.seed = master.next();
    if (!config.trace_csv_path.empty()) qconfig.trace_log = &trace_log;
    auto& agent = system.create<QuerierAgent>(
        static_cast<net::NodeId>((q * 3 + 1) % config.nodes), *scheme,
        qconfig, targets, [&remaining, &simulator] {
          if (--remaining == 0) simulator.request_stop();
        });
    queriers.push_back(&agent);
  }

  simulator.run_until(config.warmup + config.measure_deadline);

  ExperimentResult result;
  for (const QuerierAgent* querier : queriers) {
    result.location_ms.merge(querier->latencies_ms());
    result.attempts.merge(querier->attempts());
    result.queries_found += querier->found();
    result.queries_failed += querier->failed();
    result.wrong_location += querier->wrong_location();
  }
  for (const TAgent* agent : tagents) {
    result.tagent_moves += agent->moves_completed();
  }
  if (!config.trace_csv_path.empty()) {
    trace_log.write_csv(config.trace_csv_path);
  }
  if (config.on_finish) config.on_finish(*scheme);
  result.trackers_at_end = scheme->tracker_count();
  result.scheme_stats = scheme->stats();
  result.network_stats = network.stats();
  result.platform_stats = system.stats();
  if (system.live_agent_count() > 0) {
    // Whole-mechanism footprint: platform records and inboxes plus the
    // scheme-side tables the platform cannot see into.
    result.platform_stats.bytes_per_agent =
        static_cast<double>(system.estimated_resident_bytes() +
                            scheme->estimated_resident_bytes()) /
        static_cast<double>(system.live_agent_count());
  }
  result.sim_seconds = simulator.now().as_seconds();
  result.events_executed = simulator.executed();
  return result;
}

std::uint64_t replication_seed(std::uint64_t base_seed, std::size_t r) {
  // Derive from the caller's base seed only — not from a compounding chain —
  // so replication r's stream is the same no matter which other replications
  // ran (or on which thread). The odd constant keeps distinct r values far
  // apart before mixing.
  return util::mix64(base_seed + r * 0x9e3779b97f4a7c15ull);
}

namespace {

/// Merge one replication into the accumulated result. Counters accumulate
/// across repeats so rates computed against the accumulated sim_seconds
/// stay correct.
void merge_replication(ExperimentResult& merged, const ExperimentResult& one) {
  merged.location_ms.merge(one.location_ms);
  merged.attempts.merge(one.attempts);
  merged.queries_found += one.queries_found;
  merged.queries_failed += one.queries_failed;
  merged.wrong_location += one.wrong_location;
  merged.tagent_moves += one.tagent_moves;
  merged.trackers_at_end = one.trackers_at_end;

  core::SchemeStats& scheme = merged.scheme_stats;
  const core::SchemeStats& inc = one.scheme_stats;
  scheme.registers += inc.registers;
  scheme.updates += inc.updates;
  scheme.deregisters += inc.deregisters;
  scheme.locates += inc.locates;
  scheme.locates_found += inc.locates_found;
  scheme.locates_failed += inc.locates_failed;
  scheme.stale_retries += inc.stale_retries;
  scheme.transient_retries += inc.transient_retries;
  scheme.delivery_retries += inc.delivery_retries;
  scheme.timeout_retries += inc.timeout_retries;
  scheme.refreshes_triggered += inc.refreshes_triggered;
  scheme.locate_rpcs += inc.locate_rpcs;
  scheme.optimistic_locates += inc.optimistic_locates;
  scheme.locates_coalesced += inc.locates_coalesced;
  scheme.cache_hits += inc.cache_hits;
  scheme.cache_misses += inc.cache_misses;
  scheme.cache_stale_hits += inc.cache_stale_hits;
  scheme.cache_evictions += inc.cache_evictions;
  scheme.cache_invalidations += inc.cache_invalidations;

  merged.network_stats.messages_sent += one.network_stats.messages_sent;
  merged.network_stats.messages_delivered +=
      one.network_stats.messages_delivered;
  merged.network_stats.messages_dropped += one.network_stats.messages_dropped;
  merged.network_stats.messages_duplicated +=
      one.network_stats.messages_duplicated;
  merged.network_stats.bytes_sent += one.network_stats.bytes_sent;

  merged.platform_stats.agents_created += one.platform_stats.agents_created;
  merged.platform_stats.agents_disposed += one.platform_stats.agents_disposed;
  merged.platform_stats.migrations_started +=
      one.platform_stats.migrations_started;
  merged.platform_stats.migrations_completed +=
      one.platform_stats.migrations_completed;
  merged.platform_stats.messages_sent += one.platform_stats.messages_sent;
  merged.platform_stats.messages_processed +=
      one.platform_stats.messages_processed;
  merged.platform_stats.messages_bounced +=
      one.platform_stats.messages_bounced;
  merged.platform_stats.rpc_timeouts += one.platform_stats.rpc_timeouts;
  merged.platform_stats.rpc_delivery_failures +=
      one.platform_stats.rpc_delivery_failures;
  merged.platform_stats.batch_flushes += one.platform_stats.batch_flushes;
  merged.platform_stats.messages_coalesced +=
      one.platform_stats.messages_coalesced;
  // Memory figures are per-replication watermarks, not flows: report the
  // worst replication rather than a meaningless sum.
  merged.platform_stats.peak_inbox_depth =
      std::max(merged.platform_stats.peak_inbox_depth,
               one.platform_stats.peak_inbox_depth);
  merged.platform_stats.bytes_per_agent =
      std::max(merged.platform_stats.bytes_per_agent,
               one.platform_stats.bytes_per_agent);
  merged.platform_stats.peak_resident_bytes =
      std::max(merged.platform_stats.peak_resident_bytes,
               one.platform_stats.peak_resident_bytes);

  merged.sim_seconds += one.sim_seconds;
  merged.events_executed += one.events_executed;
  merged.lp_windows += one.lp_windows;
  merged.lp_cross_messages += one.lp_cross_messages;
  merged.lp_threads_used =
      std::max(merged.lp_threads_used, one.lp_threads_used);
}

}  // namespace

ExperimentResult run_parallel(const ExperimentConfig& config,
                              std::size_t repeats, std::size_t threads) {
  // Each replication is fully independent: its own seed, its own private
  // Simulator/Network/AgentSystem built inside run_experiment.
  std::vector<ExperimentResult> results(repeats);
  util::parallel_for(repeats, threads, [&](std::size_t r) {
    ExperimentConfig replica = config;
    replica.seed = replication_seed(config.seed, r);
    results[r] = run_experiment(replica);
  });

  // Merge strictly in replication order so the output is bit-identical to
  // the sequential path regardless of completion order.
  ExperimentResult merged;
  for (const ExperimentResult& one : results) merge_replication(merged, one);
  return merged;
}

ExperimentResult run_repeated(const ExperimentConfig& config,
                              std::size_t repeats) {
  // Host callbacks and trace files are not promised thread-safe; run those
  // configs sequentially. Results are identical either way.
  const bool host_hooks = static_cast<bool>(config.sampler) ||
                          static_cast<bool>(config.on_finish) ||
                          !config.trace_csv_path.empty();
  const std::size_t threads =
      host_hooks ? 1 : util::ThreadPool::default_threads();
  return run_parallel(config, repeats, threads);
}

}  // namespace agentloc::workload
