#include "workload/experiment.hpp"

#include <stdexcept>

#include "core/centralized_scheme.hpp"
#include "core/forwarding_scheme.hpp"
#include "core/hash_scheme.hpp"
#include "core/home_scheme.hpp"
#include "platform/agent_system.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "workload/querier.hpp"
#include "workload/tagent.hpp"

namespace agentloc::workload {

std::unique_ptr<core::LocationScheme> make_scheme(
    const std::string& name, platform::AgentSystem& system,
    const core::MechanismConfig& mechanism) {
  if (name == "hash") {
    return std::make_unique<core::HashLocationScheme>(system, mechanism);
  }
  if (name == "centralized") {
    return std::make_unique<core::CentralizedLocationScheme>(system,
                                                             mechanism);
  }
  if (name == "home") {
    return std::make_unique<core::HomeRegistryLocationScheme>(system,
                                                              mechanism);
  }
  if (name == "forwarding") {
    return std::make_unique<core::ForwardingLocationScheme>(system,
                                                            mechanism);
  }
  throw std::invalid_argument("unknown location scheme: " + name);
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  util::Rng master(config.seed);

  sim::Simulator simulator;
  net::Network network(simulator, config.nodes, net::make_default_lan_model(),
                       master.fork());
  network.faults().drop_probability = config.drop_probability;

  platform::AgentSystem::Config platform_config;
  platform_config.service_time = config.service_time;
  platform_config.mixed_ids = config.mixed_ids;
  platform::AgentSystem system(simulator, network, platform_config);

  auto scheme = make_scheme(config.scheme, system, config.mechanism);

  // The tracked population, spread round-robin across nodes.
  std::vector<TAgent*> tagents;
  std::vector<platform::AgentId> targets;
  tagents.reserve(config.tagents);
  for (std::size_t i = 0; i < config.tagents; ++i) {
    TAgent::Config tconfig;
    tconfig.residence = config.residence;
    tconfig.exponential_residence = config.exponential_residence;
    tconfig.seed = master.next();
    auto& agent = system.create<TAgent>(
        static_cast<net::NodeId>(i % config.nodes), *scheme, tconfig);
    tagents.push_back(&agent);
    targets.push_back(agent.id());
  }

  // Optional periodic probe over the whole run.
  std::unique_ptr<sim::PeriodicTimer> sampler;
  if (config.sampler && config.sample_period > sim::SimTime::zero()) {
    sampler = std::make_unique<sim::PeriodicTimer>(
        simulator, config.sample_period,
        [&] { config.sampler(simulator.now(), *scheme); });
    sampler->start();
  }

  simulator.run_until(config.warmup);

  // Measurement phase: closed-loop queriers, quota split evenly.
  TraceLog trace_log;
  std::size_t remaining = config.queriers;
  std::vector<QuerierAgent*> queriers;
  const std::size_t per_querier =
      config.queriers == 0 ? 0 : config.total_queries / config.queriers;
  for (std::size_t q = 0; q < config.queriers; ++q) {
    QuerierAgent::Config qconfig;
    qconfig.quota = per_querier;
    qconfig.think = config.think;
    qconfig.target_skew = config.target_skew;
    qconfig.seed = master.next();
    if (!config.trace_csv_path.empty()) qconfig.trace_log = &trace_log;
    auto& agent = system.create<QuerierAgent>(
        static_cast<net::NodeId>((q * 3 + 1) % config.nodes), *scheme,
        qconfig, targets, [&remaining, &simulator] {
          if (--remaining == 0) simulator.request_stop();
        });
    queriers.push_back(&agent);
  }

  simulator.run_until(config.warmup + config.measure_deadline);

  ExperimentResult result;
  for (const QuerierAgent* querier : queriers) {
    result.location_ms.merge(querier->latencies_ms());
    result.attempts.merge(querier->attempts());
    result.queries_found += querier->found();
    result.queries_failed += querier->failed();
    result.wrong_location += querier->wrong_location();
  }
  for (const TAgent* agent : tagents) {
    result.tagent_moves += agent->moves_completed();
  }
  if (!config.trace_csv_path.empty()) {
    trace_log.write_csv(config.trace_csv_path);
  }
  if (config.on_finish) config.on_finish(*scheme);
  result.trackers_at_end = scheme->tracker_count();
  result.scheme_stats = scheme->stats();
  result.network_stats = network.stats();
  result.platform_stats = system.stats();
  result.sim_seconds = simulator.now().as_seconds();
  result.events_executed = simulator.executed();
  return result;
}

ExperimentResult run_repeated(ExperimentConfig config, std::size_t repeats) {
  ExperimentResult merged;
  for (std::size_t r = 0; r < repeats; ++r) {
    config.seed = util::mix64(config.seed + r * 0x9e37);
    ExperimentResult one = run_experiment(config);
    merged.location_ms.merge(one.location_ms);
    merged.attempts.merge(one.attempts);
    merged.queries_found += one.queries_found;
    merged.queries_failed += one.queries_failed;
    merged.wrong_location += one.wrong_location;
    merged.tagent_moves += one.tagent_moves;
    merged.trackers_at_end = one.trackers_at_end;

    // Counters accumulate across repeats so rates computed against the
    // accumulated sim_seconds stay correct.
    const auto add_scheme = [](core::SchemeStats& acc,
                               const core::SchemeStats& inc) {
      acc.registers += inc.registers;
      acc.updates += inc.updates;
      acc.deregisters += inc.deregisters;
      acc.locates += inc.locates;
      acc.locates_found += inc.locates_found;
      acc.locates_failed += inc.locates_failed;
      acc.stale_retries += inc.stale_retries;
      acc.transient_retries += inc.transient_retries;
      acc.delivery_retries += inc.delivery_retries;
      acc.timeout_retries += inc.timeout_retries;
      acc.refreshes_triggered += inc.refreshes_triggered;
    };
    add_scheme(merged.scheme_stats, one.scheme_stats);

    merged.network_stats.messages_sent += one.network_stats.messages_sent;
    merged.network_stats.messages_delivered +=
        one.network_stats.messages_delivered;
    merged.network_stats.messages_dropped +=
        one.network_stats.messages_dropped;
    merged.network_stats.messages_duplicated +=
        one.network_stats.messages_duplicated;
    merged.network_stats.bytes_sent += one.network_stats.bytes_sent;

    merged.platform_stats.agents_created += one.platform_stats.agents_created;
    merged.platform_stats.agents_disposed +=
        one.platform_stats.agents_disposed;
    merged.platform_stats.migrations_started +=
        one.platform_stats.migrations_started;
    merged.platform_stats.migrations_completed +=
        one.platform_stats.migrations_completed;
    merged.platform_stats.messages_sent += one.platform_stats.messages_sent;
    merged.platform_stats.messages_processed +=
        one.platform_stats.messages_processed;
    merged.platform_stats.messages_bounced +=
        one.platform_stats.messages_bounced;
    merged.platform_stats.rpc_timeouts += one.platform_stats.rpc_timeouts;

    merged.sim_seconds += one.sim_seconds;
    merged.events_executed += one.events_executed;
  }
  return merged;
}

}  // namespace agentloc::workload
