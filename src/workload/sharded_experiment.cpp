#include "workload/sharded_experiment.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/centralized_scheme.hpp"
#include "core/forwarding_scheme.hpp"
#include "core/hash_scheme.hpp"
#include "core/home_scheme.hpp"
#include "core/iagent.hpp"
#include "net/network.hpp"
#include "platform/agent_system.hpp"
#include "platform/shard.hpp"
#include "sim/parallel.hpp"
#include "util/rng.hpp"
#include "workload/querier.hpp"
#include "workload/tagent.hpp"

namespace agentloc::workload {

namespace {

/// Shard-index convention for the whole driver: one shard per node, shard
/// index == node id. Thread count never changes the partition, which is what
/// makes the lp_threads >= 1 results thread-count-invariant.
class EngineShardHost final : public platform::ShardHost {
 public:
  EngineShardHost(sim::ParallelSimulator& engine,
                  std::vector<std::unique_ptr<platform::AgentSystem>>& systems,
                  std::vector<std::unique_ptr<core::LocationScheme>>& schemes)
      : engine_(engine), systems_(systems), schemes_(schemes) {}

  std::uint32_t shard_of(net::NodeId node) const noexcept override {
    return node;
  }

  void post_message(std::uint32_t from_shard, net::NodeId to_node,
                    sim::SimTime when, platform::Message message) override {
    engine_.post(from_shard, to_node, when,
                 [system = systems_[to_node].get(), to_node,
                  message = std::move(message)]() mutable {
                   system->deliver_remote(to_node, std::move(message));
                 });
  }

  void post_migration(std::uint32_t from_shard,
                      std::unique_ptr<platform::Agent> agent,
                      platform::AgentId id, net::NodeId from_node,
                      net::NodeId to_node, sim::SimTime when) override {
    // Export the scheme-side client state while still on the source shard
    // (single-writer); it rides the envelope and is imported between adopt
    // and the arrival notification, so the arrival-time update_location
    // already continues the agent's seq stream.
    const core::LocationScheme::ClientState state =
        schemes_[from_shard]->export_client_state(id);
    engine_.post(
        from_shard, to_node, when,
        [this, agent = std::move(agent), id, from_node, to_node,
         state]() mutable {
          platform::Agent* raw = agent.get();
          systems_[to_node]->adopt_migrated(std::move(agent), id, to_node);
          if (auto* tagent = dynamic_cast<TAgent*>(raw)) {
            tagent->rebind_scheme(*schemes_[to_node]);
          } else if (dynamic_cast<core::IAgent*>(raw) != nullptr) {
            if (auto* hash = dynamic_cast<core::HashLocationScheme*>(
                    schemes_[to_node].get())) {
              hash->note_local_iagent(id);
            }
          }
          schemes_[to_node]->import_client_state(id, state);
          systems_[to_node]->notify_arrival(id, from_node);
        });
  }

 private:
  sim::ParallelSimulator& engine_;
  std::vector<std::unique_ptr<platform::AgentSystem>>& systems_;
  std::vector<std::unique_ptr<core::LocationScheme>>& schemes_;
};

/// Runtime IAgent spawner for the sharded hash scheme: the coordinator on
/// `coordinator_shard` mints the id from its own shard (globally unique via
/// the id stride/salt partition, available synchronously for the tree op)
/// and the object is installed on the shard owning the target node — via a
/// cross-LP envelope at exactly now + lookahead, which lands strictly before
/// any responsibility grant the coordinator sends afterwards (grants carry
/// at least the same latency floor and a later send seq).
core::HAgent::IAgentSpawner make_runtime_spawner(
    sim::ParallelSimulator& engine,
    std::vector<std::unique_ptr<platform::AgentSystem>>& systems,
    std::vector<std::unique_ptr<core::LocationScheme>>& schemes,
    std::uint32_t coordinator_shard) {
  return [&engine, &systems, &schemes, coordinator_shard](
             net::NodeId node, const core::MechanismConfig& config,
             std::vector<platform::AgentAddress> coordinators) {
    platform::AgentSystem& minter = *systems[coordinator_shard];
    const platform::AgentId id = minter.mint_id();
    auto agent =
        std::make_unique<core::IAgent>(config, std::move(coordinators));
    auto install = [system = systems[node].get(),
                    scheme = schemes[node].get(), id,
                    node, agent = std::move(agent)]() mutable {
      system->install_spawned(std::move(agent), id, node);
      if (auto* hash = dynamic_cast<core::HashLocationScheme*>(scheme)) {
        hash->note_local_iagent(id);
      }
    };
    if (node == static_cast<net::NodeId>(coordinator_shard)) {
      install();  // same shard: plain local create semantics
    } else {
      engine.post(coordinator_shard, node,
                  minter.now() + engine.lookahead(), std::move(install));
    }
    return id;
  };
}

std::vector<std::unique_ptr<core::LocationScheme>> build_sharded_schemes(
    const std::string& name,
    const std::vector<platform::AgentSystem*>& systems,
    const core::MechanismConfig& mechanism) {
  std::vector<std::unique_ptr<core::LocationScheme>> schemes;
  const auto take = [&schemes](auto built) {
    for (auto& scheme : built) schemes.push_back(std::move(scheme));
  };
  if (name == "hash") {
    take(core::HashLocationScheme::build_sharded(systems, mechanism));
  } else if (name == "centralized") {
    take(core::CentralizedLocationScheme::build_sharded(systems, mechanism));
  } else if (name == "home") {
    take(core::HomeRegistryLocationScheme::build_sharded(systems, mechanism));
  } else if (name == "forwarding") {
    take(core::ForwardingLocationScheme::build_sharded(systems, mechanism));
  } else {
    throw std::invalid_argument("unknown location scheme: " + name);
  }
  return schemes;
}

void accumulate_scheme_stats(core::SchemeStats& into,
                             const core::SchemeStats& inc) {
  into.registers += inc.registers;
  into.updates += inc.updates;
  into.deregisters += inc.deregisters;
  into.locates += inc.locates;
  into.locates_found += inc.locates_found;
  into.locates_failed += inc.locates_failed;
  into.stale_retries += inc.stale_retries;
  into.transient_retries += inc.transient_retries;
  into.delivery_retries += inc.delivery_retries;
  into.timeout_retries += inc.timeout_retries;
  into.refreshes_triggered += inc.refreshes_triggered;
  into.locate_rpcs += inc.locate_rpcs;
  into.optimistic_locates += inc.optimistic_locates;
  into.locates_coalesced += inc.locates_coalesced;
  into.cache_hits += inc.cache_hits;
  into.cache_misses += inc.cache_misses;
  into.cache_stale_hits += inc.cache_stale_hits;
  into.cache_evictions += inc.cache_evictions;
  into.cache_invalidations += inc.cache_invalidations;
}

void accumulate_platform_stats(platform::PlatformStats& into,
                               const platform::PlatformStats& inc) {
  into.agents_created += inc.agents_created;
  into.agents_disposed += inc.agents_disposed;
  into.migrations_started += inc.migrations_started;
  into.migrations_completed += inc.migrations_completed;
  into.messages_sent += inc.messages_sent;
  into.messages_processed += inc.messages_processed;
  into.messages_bounced += inc.messages_bounced;
  into.rpc_timeouts += inc.rpc_timeouts;
  into.rpc_delivery_failures += inc.rpc_delivery_failures;
  into.batch_flushes += inc.batch_flushes;
  into.messages_coalesced += inc.messages_coalesced;
  // Inbox depth is a per-shard watermark (the worst single inbox anywhere);
  // resident bytes are disjoint per-shard footprints, so the deployment-wide
  // watermark is their sum (each shard's peak is sampled at its own growth
  // points — the sum is a tight upper bound and deterministic).
  into.peak_inbox_depth =
      std::max(into.peak_inbox_depth, inc.peak_inbox_depth);
  into.peak_resident_bytes += inc.peak_resident_bytes;
}

}  // namespace

ExperimentResult run_experiment_sharded(const ExperimentConfig& config) {
  if (config.sampler || config.on_finish || !config.trace_csv_path.empty()) {
    throw std::invalid_argument(
        "run_experiment_sharded: host hooks (sampler/on_finish/trace) are "
        "not supported on the sharded engine");
  }
  if (config.drop_probability != 0.0) {
    throw std::invalid_argument(
        "run_experiment_sharded: fault injection is not supported on the "
        "sharded engine");
  }
  if (config.nodes == 0) {
    throw std::invalid_argument("run_experiment_sharded: nodes must be >= 1");
  }

  util::Rng master(config.seed);

  // Batch-first at scale, mirroring the legacy driver (DESIGN.md §15).
  core::MechanismConfig mechanism = config.mechanism;
  const bool at_scale = mechanism.batch_auto_threshold > 0 &&
                        config.tagents >= mechanism.batch_auto_threshold;
  if (at_scale) mechanism.update_batching = true;

  const std::size_t nodes = config.nodes;
  auto latency_model = net::make_default_lan_model();
  sim::ParallelSimulator::Config engine_config;
  engine_config.lps = nodes;
  engine_config.threads = std::max<std::size_t>(1, config.lp_threads);
  engine_config.lookahead = latency_model->min_latency();
  sim::ParallelSimulator engine(engine_config);

  // Per-shard stacks. Master RNG draw order is fixed and documented: network
  // forks in node order, then TAgent seeds in creation order, then querier
  // seeds in creation order — so results depend only on (config, seed).
  std::vector<std::unique_ptr<net::Network>> networks;
  std::vector<std::unique_ptr<platform::AgentSystem>> systems;
  networks.reserve(nodes);
  systems.reserve(nodes);
  const std::size_t per_shard_hint =
      (config.tagents * 4 + config.queriers * 16 + config.nodes * 8) / nodes +
      256;
  for (std::size_t s = 0; s < nodes; ++s) {
    engine.lp(static_cast<sim::ParallelSimulator::LpId>(s))
        .reserve(per_shard_hint);
    networks.push_back(std::make_unique<net::Network>(
        engine.lp(static_cast<sim::ParallelSimulator::LpId>(s)), nodes,
        net::make_default_lan_model(), master.fork()));

    platform::AgentSystem::Config platform_config;
    platform_config.service_time = config.service_time;
    platform_config.mixed_ids = config.mixed_ids;
    // Globally unique ids across shards: shard s draws from the residue
    // class `counter * nodes + s`.
    platform_config.id_stride = nodes;
    platform_config.id_salt = s;
    if (at_scale) {
      platform_config.reserve_agents =
          (config.tagents + config.queriers) / nodes + config.nodes / nodes +
          16;
    }
    systems.push_back(std::make_unique<platform::AgentSystem>(
        engine.lp(static_cast<sim::ParallelSimulator::LpId>(s)),
        *networks.back(), platform_config));
  }

  std::vector<platform::AgentSystem*> system_ptrs;
  system_ptrs.reserve(nodes);
  for (auto& system : systems) system_ptrs.push_back(system.get());

  // Scheme tier (serial setup), then the shard host and the runtime IAgent
  // spawner, then attach — after this point every cross-node byte goes
  // through engine envelopes.
  std::vector<std::unique_ptr<core::LocationScheme>> schemes =
      build_sharded_schemes(config.scheme, system_ptrs, mechanism);
  EngineShardHost host(engine, systems, schemes);
  for (std::size_t s = 0; s < nodes; ++s) {
    systems[s]->attach_shard_host(host, static_cast<std::uint32_t>(s));
  }
  if (config.scheme == "hash") {
    const net::NodeId hagent_node = 0;  // build_sharded's default placement
    auto* owner_scheme =
        static_cast<core::HashLocationScheme*>(schemes[hagent_node].get());
    owner_scheme->hagent().set_iagent_spawner(
        make_runtime_spawner(engine, systems, schemes, hagent_node));
    if (mechanism.hagent_replication) {
      const auto backup_shard =
          static_cast<std::uint32_t>((hagent_node + nodes / 2) % nodes);
      auto* backup_scheme =
          static_cast<core::HashLocationScheme*>(schemes[backup_shard].get());
      if (core::HAgent* backup = backup_scheme->backup_hagent()) {
        backup->set_iagent_spawner(
            make_runtime_spawner(engine, systems, schemes, backup_shard));
      }
    }
  }
  if (at_scale) {
    for (auto& scheme : schemes) scheme->reserve(config.tagents);
  }

  // The tracked population, spread round-robin across nodes (and so across
  // shards), seeds drawn in population order.
  std::vector<TAgent*> tagents;
  std::vector<platform::AgentId> targets;
  tagents.reserve(config.tagents);
  targets.reserve(config.tagents);
  for (std::size_t i = 0; i < config.tagents; ++i) {
    TAgent::Config tconfig;
    tconfig.residence = config.residence;
    tconfig.exponential_residence = config.exponential_residence;
    tconfig.start_stagger = config.start_stagger;
    tconfig.seed = master.next();
    const auto node = static_cast<net::NodeId>(i % nodes);
    auto& agent =
        systems[node]->create<TAgent>(node, *schemes[node], tconfig);
    tagents.push_back(&agent);
    targets.push_back(agent.id());
  }

  engine.run_until(config.warmup);

  // Measurement phase: closed-loop queriers (stationary — created serially
  // between windows), quota split evenly. The completion count is the only
  // cross-shard mutable shared state, and it is an atomic whose only effect
  // is the stop request the engine applies at a window boundary.
  std::atomic<std::size_t> remaining{config.queriers};
  std::vector<QuerierAgent*> queriers;
  queriers.reserve(config.queriers);
  const std::size_t per_querier =
      config.queriers == 0 ? 0 : config.total_queries / config.queriers;
  for (std::size_t q = 0; q < config.queriers; ++q) {
    QuerierAgent::Config qconfig;
    qconfig.quota = per_querier;
    qconfig.think = config.think;
    qconfig.target_skew = config.target_skew;
    qconfig.seed = master.next();
    const auto node = static_cast<net::NodeId>((q * 3 + 1) % nodes);
    auto& agent = systems[node]->create<QuerierAgent>(
        node, *schemes[node], qconfig, targets, [&remaining, &engine] {
          if (remaining.fetch_sub(1, std::memory_order_relaxed) == 1) {
            engine.request_stop();
          }
        });
    queriers.push_back(&agent);
  }

  engine.run_until(config.warmup + config.measure_deadline);

  ExperimentResult result;
  for (const QuerierAgent* querier : queriers) {
    result.location_ms.merge(querier->latencies_ms());
    result.attempts.merge(querier->attempts());
    result.queries_found += querier->found();
    result.queries_failed += querier->failed();
    // Under sharding the ground-truth oracle only sees targets co-resident
    // with the querier's shard (node_of is shard-local), so wrong_location
    // is a deterministic undercount — DESIGN.md §16.
    result.wrong_location += querier->wrong_location();
  }
  for (const TAgent* agent : tagents) {
    result.tagent_moves += agent->moves_completed();
  }

  std::size_t live_agents = 0;
  std::size_t resident_bytes = 0;
  double max_now_seconds = 0.0;
  for (std::size_t s = 0; s < nodes; ++s) {
    result.trackers_at_end += schemes[s]->tracker_count();
    accumulate_scheme_stats(result.scheme_stats, schemes[s]->stats());

    const net::NetworkStats& net_stats = networks[s]->stats();
    result.network_stats.messages_sent += net_stats.messages_sent;
    result.network_stats.messages_delivered += net_stats.messages_delivered;
    result.network_stats.messages_dropped += net_stats.messages_dropped;
    result.network_stats.messages_duplicated += net_stats.messages_duplicated;
    result.network_stats.bytes_sent += net_stats.bytes_sent;

    accumulate_platform_stats(result.platform_stats, systems[s]->stats());
    const platform::MemoryBreakdown memory = systems[s]->memory_breakdown();
    result.platform_stats.memory.agent_records += memory.agent_records;
    result.platform_stats.memory.inboxes += memory.inboxes;
    result.platform_stats.memory.rpc_table += memory.rpc_table;
    result.platform_stats.memory.in_flight += memory.in_flight;
    result.platform_stats.memory.services += memory.services;
    live_agents += systems[s]->live_agent_count();
    resident_bytes += systems[s]->estimated_resident_bytes() +
                      schemes[s]->estimated_resident_bytes();
    max_now_seconds =
        std::max(max_now_seconds,
                 engine.lp(static_cast<sim::ParallelSimulator::LpId>(s))
                     .now()
                     .as_seconds());
  }
  if (live_agents > 0) {
    result.platform_stats.bytes_per_agent =
        static_cast<double>(resident_bytes) /
        static_cast<double>(live_agents);
  }
  result.sim_seconds = max_now_seconds;
  result.events_executed = engine.executed();
  result.lp_windows = engine.windows();
  result.lp_cross_messages = engine.cross_lp_messages();
  result.lp_threads_used = engine.threads();
  return result;
}

}  // namespace agentloc::workload
