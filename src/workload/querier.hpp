#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/scheme.hpp"
#include "sim/timer.hpp"
#include "util/rng.hpp"
#include "util/summary.hpp"
#include "workload/trace.hpp"

namespace agentloc::workload {

/// A stationary agent issuing location queries in closed loop: pick a random
/// TAgent, measure the time until the mechanism reports its location, think,
/// repeat. This is the paper's measurement client — "the average response
/// time of a query for the location of a TAgent selected randomly" (§5).
class QuerierAgent : public platform::Agent {
 public:
  struct Config {
    /// Queries to issue before completing (0 = unlimited).
    std::size_t quota = 500;

    /// Mean pause between a completed query and the next one.
    sim::SimTime think = sim::SimTime::millis(100);
    bool exponential_think = true;

    /// Zipf skew over the target population (0 = uniform, the paper's
    /// "selected randomly").
    double target_skew = 0.0;

    std::uint64_t seed = 1;

    /// When set, every completed query is appended here (not owned).
    TraceLog* trace_log = nullptr;
  };

  QuerierAgent(core::LocationScheme& scheme, const Config& config,
               std::vector<platform::AgentId> targets,
               std::function<void()> on_complete = nullptr);

  std::string kind() const override { return "querier"; }

  void on_start() override;

  /// Latency of each completed query, in milliseconds.
  const util::Summary& latencies_ms() const noexcept { return latencies_; }

  /// Request/response cycles per query.
  const util::Summary& attempts() const noexcept { return attempts_; }

  std::uint64_t found() const noexcept { return found_; }
  std::uint64_t failed() const noexcept { return failed_; }
  std::uint64_t wrong_location() const noexcept { return wrong_location_; }
  bool done() const noexcept { return done_; }

 private:
  void issue();
  void complete();

  core::LocationScheme& scheme_;
  Config config_;
  std::vector<platform::AgentId> targets_;
  std::function<void()> on_complete_;
  util::Rng rng_;
  std::unique_ptr<sim::Timeout> think_timer_;

  util::Summary latencies_;
  util::Summary attempts_;
  std::uint64_t found_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t wrong_location_ = 0;
  std::uint64_t issued_ = 0;
  bool done_ = false;
};

}  // namespace agentloc::workload
