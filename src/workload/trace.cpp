#include "workload/trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace agentloc::workload {

std::string TraceLog::to_csv() const {
  std::ostringstream os;
  os << "t_issued_ms,t_completed_ms,latency_ms,target,found,node,attempts\n";
  for (const QueryTrace& trace : traces_) {
    os << trace.issued_at.as_millis() << ','
       << trace.completed_at.as_millis() << ',' << trace.latency_ms() << ','
       << trace.target << ',' << (trace.found ? 1 : 0) << ',';
    if (trace.reported_node == net::kNoNode) {
      os << "-";
    } else {
      os << trace.reported_node;
    }
    os << ',' << trace.attempts << '\n';
  }
  return os.str();
}

void TraceLog::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("TraceLog: cannot open " + path);
  }
  out << to_csv();
  if (!out) {
    throw std::runtime_error("TraceLog: write failed for " + path);
  }
}

}  // namespace agentloc::workload
