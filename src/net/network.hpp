#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "net/latency.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace agentloc::net {

/// Fault-injection plan applied to every transmission.
///
/// Used by the robustness test suites: the location protocol must converge
/// despite dropped or duplicated messages (requests are retried end-to-end)
/// and must keep node-local operations working across partitions.
struct FaultPlan {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;

  /// Unordered node pairs that currently cannot exchange messages.
  std::set<std::pair<NodeId, NodeId>> partitions;

  bool partitioned(NodeId a, NodeId b) const {
    if (a > b) std::swap(a, b);
    return partitions.contains({a, b});
  }
  void set_partitioned(NodeId a, NodeId b, bool value) {
    if (a > b) std::swap(a, b);
    if (value) {
      partitions.insert({a, b});
    } else {
      partitions.erase({a, b});
    }
  }
};

/// Aggregate transmission counters, exposed to benches that report message
/// overhead alongside location time.
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t bytes_sent = 0;
};

/// Outcome of planning one transmission: how many copies the fault plan let
/// through (0 = swallowed, 2 = duplicated) and the sampled latency of each.
struct TransmitPlan {
  int copies = 0;
  sim::SimTime delay[2] = {sim::SimTime::zero(), sim::SimTime::zero()};
};

/// Simulated datagram network.
///
/// `send` charges the latency model for the serialized size and schedules the
/// delivery thunk on the simulator; the caller (the agent platform) captures
/// its typed message inside the thunk, so this layer stays payload-agnostic.
/// Delivery is unordered (jitter may reorder) and, under a fault plan,
/// unreliable — exactly the properties the location protocol must tolerate.
///
/// Hot-path callers that cannot afford a `std::function` capture (the agent
/// platform's message plane) use `plan_transmission` + `note_delivered`
/// instead: the network samples faults and latency in exactly the same RNG
/// order as `send`, but the caller schedules its own (small, allocation-free)
/// delivery events.
class Network {
 public:
  Network(sim::Simulator& simulator, std::size_t node_count,
          std::unique_ptr<LatencyModel> latency, util::Rng rng);

  std::size_t node_count() const noexcept { return node_count_; }
  sim::Simulator& simulator() noexcept { return simulator_; }

  /// Transmit `bytes` from `from` to `to`; on (each) delivery run `deliver`.
  /// Returns false when the fault plan swallowed the message entirely.
  bool send(NodeId from, NodeId to, std::size_t bytes,
            std::function<void()> deliver);

  /// Sample the fault plan and latency model for one transmission, counting
  /// it in the stats, without scheduling anything. The caller must schedule
  /// `plan.copies` deliveries at the given delays and call `note_delivered`
  /// as each one fires.
  TransmitPlan plan_transmission(NodeId from, NodeId to, std::size_t bytes);

  /// Record one delivery planned via `plan_transmission`.
  void note_delivered(NodeId to) noexcept {
    ++stats_.messages_delivered;
    ++per_node_delivered_[to];
  }

  FaultPlan& faults() noexcept { return faults_; }
  const NetworkStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = NetworkStats{}; }

  /// Per-node delivered-message counters (index = node id).
  const std::vector<std::uint64_t>& per_node_delivered() const noexcept {
    return per_node_delivered_;
  }

 private:
  sim::Simulator& simulator_;
  std::size_t node_count_;
  std::unique_ptr<LatencyModel> latency_;
  util::Rng rng_;
  FaultPlan faults_;
  NetworkStats stats_;
  std::vector<std::uint64_t> per_node_delivered_;
};

}  // namespace agentloc::net
