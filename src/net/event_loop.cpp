#include "net/event_loop.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define AGENTLOC_HAVE_EPOLL 1
#else
#define AGENTLOC_HAVE_EPOLL 0
#endif

namespace agentloc::net {
namespace {

/// poll(2) backend: the interest set lives in a flat vector and the pollfd
/// array is rebuilt per wait — exactly the pre-seam SocketTransport loop,
/// kept as the portable fallback and the cross-check for epoll.
class PollEventLoop final : public EventLoop {
 public:
  const char* name() const noexcept override { return "poll"; }

  bool add(int fd, bool want_read, bool want_write) override {
    if (fd < 0 || find(fd) >= 0) return false;
    entries_.push_back({fd, want_read, want_write});
    return true;
  }

  bool modify(int fd, bool want_read, bool want_write) override {
    const int at = find(fd);
    if (at < 0) return false;
    entries_[static_cast<std::size_t>(at)].want_read = want_read;
    entries_[static_cast<std::size_t>(at)].want_write = want_write;
    return true;
  }

  void remove(int fd) override {
    const int at = find(fd);
    if (at < 0) return;
    entries_[static_cast<std::size_t>(at)] = entries_.back();
    entries_.pop_back();
  }

  int wait(int timeout_ms, std::vector<Event>& out) override {
    out.clear();
    if (entries_.empty()) return 0;
    fds_.clear();
    for (const Entry& entry : entries_) {
      short events = 0;
      if (entry.want_read) events |= POLLIN;
      if (entry.want_write) events |= POLLOUT;
      fds_.push_back({entry.fd, events, 0});
    }
    int ready;
    do {
      ready = ::poll(fds_.data(), static_cast<nfds_t>(fds_.size()),
                     timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready <= 0) return ready;
    for (const pollfd& pfd : fds_) {
      if (pfd.revents == 0) continue;
      Event event;
      event.fd = pfd.fd;
      event.readable = (pfd.revents & POLLIN) != 0;
      event.writable = (pfd.revents & POLLOUT) != 0;
      event.hangup = (pfd.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
      out.push_back(event);
    }
    return ready;
  }

  std::size_t watched() const noexcept override { return entries_.size(); }

 private:
  struct Entry {
    int fd;
    bool want_read;
    bool want_write;
  };

  int find(int fd) const noexcept {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].fd == fd) return static_cast<int>(i);
    }
    return -1;
  }

  std::vector<Entry> entries_;
  std::vector<pollfd> fds_;  ///< scratch, rebuilt each wait
};

#if AGENTLOC_HAVE_EPOLL

/// epoll(7) backend, level-triggered so readiness semantics match poll
/// bit for bit (no EPOLLET: a partially drained fd re-reports next wait).
class EpollEventLoop final : public EventLoop {
 public:
  EpollEventLoop() : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)) {}

  ~EpollEventLoop() override {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  bool valid() const noexcept { return epoll_fd_ >= 0; }

  const char* name() const noexcept override { return "epoll"; }

  bool add(int fd, bool want_read, bool want_write) override {
    if (fd < 0) return false;
    epoll_event event = make_event(fd, want_read, want_write);
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) return false;
    ++watched_;
    return true;
  }

  bool modify(int fd, bool want_read, bool want_write) override {
    epoll_event event = make_event(fd, want_read, want_write);
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) == 0;
  }

  void remove(int fd) override {
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) == 0) {
      if (watched_ > 0) --watched_;
    }
  }

  int wait(int timeout_ms, std::vector<Event>& out) override {
    out.clear();
    if (watched_ == 0) return 0;
    events_.resize(watched_);
    int ready;
    do {
      ready = ::epoll_wait(epoll_fd_, events_.data(),
                           static_cast<int>(events_.size()), timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready <= 0) return ready;
    for (int i = 0; i < ready; ++i) {
      const epoll_event& raw = events_[static_cast<std::size_t>(i)];
      Event event;
      event.fd = raw.data.fd;
      event.readable = (raw.events & EPOLLIN) != 0;
      event.writable = (raw.events & EPOLLOUT) != 0;
      event.hangup = (raw.events & (EPOLLHUP | EPOLLERR)) != 0;
      out.push_back(event);
    }
    return ready;
  }

  std::size_t watched() const noexcept override { return watched_; }

 private:
  static epoll_event make_event(int fd, bool want_read, bool want_write) {
    epoll_event event{};
    if (want_read) event.events |= EPOLLIN;
    if (want_write) event.events |= EPOLLOUT;
    event.data.fd = fd;
    return event;
  }

  int epoll_fd_ = -1;
  std::size_t watched_ = 0;
  std::vector<epoll_event> events_;  ///< scratch, sized to the interest set
};

#endif  // AGENTLOC_HAVE_EPOLL

}  // namespace

bool EventLoop::epoll_supported() {
#if AGENTLOC_HAVE_EPOLL
  const int fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) return false;
  ::close(fd);
  return true;
#else
  return false;
#endif
}

EventLoop::Backend EventLoop::env_backend() {
  const char* text = std::getenv("AGENTLOC_EVENT_BACKEND");
  if (text == nullptr) return Backend::kAuto;
  if (std::strcmp(text, "poll") == 0) return Backend::kPoll;
  if (std::strcmp(text, "epoll") == 0) return Backend::kEpoll;
  return Backend::kAuto;
}

std::unique_ptr<EventLoop> EventLoop::create(Backend preference) {
  if (preference == Backend::kAuto) {
    const Backend forced = env_backend();
    preference = forced != Backend::kAuto
                     ? forced
                     : (epoll_supported() ? Backend::kEpoll : Backend::kPoll);
  }
#if AGENTLOC_HAVE_EPOLL
  if (preference == Backend::kEpoll) {
    auto loop = std::make_unique<EpollEventLoop>();
    if (loop->valid()) return loop;
  }
#endif
  return std::make_unique<PollEventLoop>();
}

}  // namespace agentloc::net
