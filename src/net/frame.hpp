#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/buffer_pool.hpp"
#include "util/bytebuffer.hpp"

namespace agentloc::net {

/// --- Wire frame layout (DESIGN.md §17, docs/PROTOCOL.md §11) ---------------
///
///   offset 0  magic        0xA6 (1 byte)
///          1  type         FrameType (1 byte)
///          2  flags        reserved, 0 for now (1 byte)
///          3  correlation  LEB128 varint (1..10 bytes)
///          .  length       padded 4-byte varint (see ByteWriter::
///                          write_varint4) — payload byte count
///          .  payload      `length` bytes, ByteWriter/ByteReader encoded
///
/// The length slot is a *padded* varint so a frame can be encoded in one
/// forward pass straight into a pooled buffer: the header goes down with a
/// zeroed slot, the payload is appended in place, and the slot is patched —
/// no second buffer, no memmove. Any standard LEB128 decoder reads the
/// padded form; `FrameDecoder` additionally accepts canonical encodings.
///
/// Framing carries the existing `util::ByteWriter` serialization (varints,
/// BitStrings) unchanged — the payload format is the one the simulator's
/// wire-size accounting already pins down (`core/protocol.hpp`).

/// Message types of the agentloc wire protocol (the daemon's RPC surface;
/// DESIGN.md §17). Values are wire-stable: append, never renumber.
enum class FrameType : std::uint8_t {
  kHello = 1,      ///< client → server: protocol version handshake
  kHelloAck = 2,   ///< server → client: version + partition/tree info
  kUpdate = 3,     ///< register/move: LocationEntry (agent, node, seq)
  kUpdateAck = 4,  ///< ack when the update carried a correlation
  kLocate = 5,     ///< locate request: agent id
  kLocateReply = 6,  ///< status, node, seq, version
  kDeregister = 7,   ///< agent leaving: agent id, seq
  kPing = 8,
  kPong = 9,
  kError = 10,  ///< string diagnostic; the peer should close
  /// Worker-shard advertisement (DESIGN.md §17). Client → server with an
  /// empty payload asks for the map; server → client carries worker count,
  /// partition count, tree version, per-worker addresses, and the
  /// leaf → worker ownership table.
  kPartitionMap = 11,
};

inline constexpr std::uint8_t kFrameMagic = 0xA6;

/// Header bytes before the payload, at the widest correlation varint.
inline constexpr std::size_t kFrameHeaderMax = 3 + 10 + 4;

/// Default per-frame payload cap. Anything larger is a protocol error — it
/// bounds decoder buffering against corrupt or hostile length fields.
inline constexpr std::size_t kDefaultMaxFramePayload = 1u << 20;

/// A decoded frame. `payload` points into the decoder's buffer and stays
/// valid until the next `FrameDecoder` call (`next`, `feed`, `writable`,
/// `commit`) — consume it before pulling the next frame.
struct FrameView {
  FrameType type = FrameType::kError;
  std::uint8_t flags = 0;
  std::uint64_t correlation = 0;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_size = 0;

  util::ByteReader payload_reader() const noexcept {
    return {payload, payload_size};
  }
};

/// An in-progress frame inside a `ByteWriter` (which typically adopted a
/// pooled buffer and may already hold earlier frames of the same batch).
struct OpenFrame {
  std::size_t frame_start = 0;    ///< offset of the magic byte
  std::size_t length_slot = 0;    ///< offset of the padded length varint
  std::size_t payload_start = 0;  ///< offset where the payload begins
};

/// Append a frame header with a zeroed length slot; the caller then encodes
/// the payload through the same writer and closes with `end_frame`.
OpenFrame begin_frame(util::ByteWriter& writer, FrameType type,
                      std::uint64_t correlation, std::uint8_t flags = 0);

/// Patch the frame's length slot to cover everything appended since
/// `begin_frame`. Returns the total encoded frame size in bytes.
std::size_t end_frame(util::ByteWriter& writer, const OpenFrame& open);

/// Incremental frame parser over a byte stream (one per peer connection).
///
/// Bytes arrive either zero-copy — `recv` straight into `writable()` /
/// `commit()` — or by copy via `feed()` (tests, codec benches). `next()`
/// yields complete frames as views into the internal (pooled) buffer.
/// Malformed input — wrong magic, malformed varints, a length above the
/// cap — is a clean, sticky `kError` with a diagnostic; nothing throws and
/// nothing is read out of bounds, so corrupt peers cost a connection, not
/// the process.
class FrameDecoder {
 public:
  struct Config {
    std::size_t max_payload = kDefaultMaxFramePayload;
  };

  enum class Status : std::uint8_t {
    kFrame,     ///< `out` holds the next frame
    kNeedMore,  ///< the buffered bytes end mid-frame; feed more
    kError,     ///< protocol violation; `error()` describes it
  };

  explicit FrameDecoder(util::BufferPool& pool);
  FrameDecoder(util::BufferPool& pool, Config config);
  ~FrameDecoder();
  FrameDecoder(FrameDecoder&& other) noexcept;
  FrameDecoder& operator=(FrameDecoder&& other) noexcept;
  FrameDecoder(const FrameDecoder&) = delete;
  FrameDecoder& operator=(const FrameDecoder&) = delete;

  /// Space for at least `min_bytes` more input; write into the returned
  /// pointer, then `commit` what actually arrived.
  std::uint8_t* writable(std::size_t min_bytes);
  void commit(std::size_t bytes) noexcept;

  /// Copying convenience over writable/commit.
  void feed(const std::uint8_t* data, std::size_t size);

  Status next(FrameView& out);

  bool failed() const noexcept { return failed_; }
  const std::string& error() const noexcept { return error_; }

  /// Bytes buffered but not yet consumed by `next` (0 between frames).
  std::size_t buffered() const noexcept { return len_ - pos_; }

 private:
  Status fail(const char* message);
  void compact() noexcept;
  void release_buffer() noexcept;

  util::BufferPool* pool_;
  Config config_;
  std::vector<std::uint8_t> buffer_;
  std::size_t len_ = 0;  ///< committed input bytes in `buffer_`
  std::size_t pos_ = 0;  ///< parse cursor: [pos_, len_) is unparsed
  bool failed_ = false;
  std::string error_;
};

}  // namespace agentloc::net
