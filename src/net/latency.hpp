#pragma once

#include <cassert>
#include <cstdint>
#include <memory>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace agentloc::net {

/// Dense node index. Node 0 conventionally hosts the HAgent (the paper's
/// static hash-function holder); everything else is symmetric.
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Strategy for the one-way latency of a message.
///
/// Implementations receive the endpoints, the serialized size, and the
/// network's RNG stream (for jitter); they must not retain the RNG.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  virtual sim::SimTime latency(NodeId from, NodeId to, std::size_t bytes,
                               util::Rng& rng) = 0;

  /// Lower bound on the latency of any *cross-node* (`from != to`) message,
  /// over all endpoint pairs and sizes. This is the conservative lookahead
  /// of the parallel LP engine (DESIGN.md §13): an LP may safely run
  /// `min_latency()` ahead of its peers because nothing they send now can
  /// arrive sooner. Same-node (loopback) latency is deliberately excluded —
  /// a loopback message never crosses an LP boundary. A model that cannot
  /// promise a positive bound returns zero, which disables threaded LP
  /// execution (the runner falls back to the sequential driver).
  virtual sim::SimTime min_latency() const noexcept {
    return sim::SimTime::zero();
  }
};

/// Switched-LAN model calibrated to the paper's testbed (Sun Blades on a
/// 100 Mb/s LAN): fixed per-message cost, linear per-byte cost, and uniform
/// jitter. Same-node messages (agent → co-located LHAgent) pay only a small
/// loopback cost.
class LanLatencyModel final : public LatencyModel {
 public:
  struct Config {
    sim::SimTime base = sim::SimTime::micros(350);
    double per_byte_ns = 80.0;  // ~100 Mb/s
    sim::SimTime jitter = sim::SimTime::micros(100);
    sim::SimTime loopback = sim::SimTime::micros(20);
  };

  LanLatencyModel() : LanLatencyModel(Config{}) {}
  explicit LanLatencyModel(const Config& config) : config_(config) {}

  sim::SimTime latency(NodeId from, NodeId to, std::size_t bytes,
                       util::Rng& rng) override;

  /// Cross-node floor: the fixed per-message cost (zero bytes, zero jitter).
  sim::SimTime min_latency() const noexcept override { return config_.base; }

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

/// Uniform random latency in [lo, hi]; handy for tests that need heavy
/// reordering.
class UniformLatencyModel final : public LatencyModel {
 public:
  UniformLatencyModel(sim::SimTime lo, sim::SimTime hi) : lo_(lo), hi_(hi) {}

  sim::SimTime latency(NodeId from, NodeId to, std::size_t bytes,
                       util::Rng& rng) override;

  sim::SimTime min_latency() const noexcept override { return lo_; }

 private:
  sim::SimTime lo_;
  sim::SimTime hi_;
};

/// Two-tier topology: nodes are grouped into clusters of `cluster_size`
/// consecutive ids; intra-cluster messages ride the LAN model, inter-cluster
/// messages additionally pay a WAN hop. Makes placement decisions (the
/// paper's §7 locality extension) matter.
class ClusterLatencyModel final : public LatencyModel {
 public:
  struct Config {
    std::size_t cluster_size = 4;
    LanLatencyModel::Config lan;
    /// Extra one-way cost between clusters.
    sim::SimTime wan_hop = sim::SimTime::millis(8);
    sim::SimTime wan_jitter = sim::SimTime::millis(1);
  };

  explicit ClusterLatencyModel(const Config& config)
      : config_(config), lan_(config.lan) {}

  sim::SimTime latency(NodeId from, NodeId to, std::size_t bytes,
                       util::Rng& rng) override;

  /// Intra-cluster messages pay only the LAN leg, so the cross-node floor is
  /// the LAN model's (the WAN hop only raises inter-cluster latencies).
  sim::SimTime min_latency() const noexcept override {
    return lan_.min_latency();
  }

  bool same_cluster(NodeId a, NodeId b) const noexcept {
    return a / config_.cluster_size == b / config_.cluster_size;
  }

 private:
  Config config_;
  LanLatencyModel lan_;
};

/// Fixed latency regardless of endpoints or size; the default in unit tests
/// where timing must be predictable to the nanosecond.
class FixedLatencyModel final : public LatencyModel {
 public:
  explicit FixedLatencyModel(sim::SimTime value) : value_(value) {}

  sim::SimTime latency(NodeId, NodeId, std::size_t, util::Rng&) override {
    return value_;
  }

  sim::SimTime min_latency() const noexcept override { return value_; }

 private:
  sim::SimTime value_;
};

std::unique_ptr<LatencyModel> make_default_lan_model();

/// Sample `model` and, in debug builds, verify that the draw respects the
/// model's declared `min_latency()` lower bound. The parallel LP engine
/// trusts that bound as its lookahead, so a model undercutting it would
/// silently corrupt the conservative synchronization — every sampling site
/// (the Network, the LP runner) funnels through this check.
inline sim::SimTime checked_latency(LatencyModel& model, NodeId from,
                                    NodeId to, std::size_t bytes,
                                    util::Rng& rng) {
  const sim::SimTime value = model.latency(from, to, bytes, rng);
  assert((from == to || value >= model.min_latency()) &&
         "latency model returned a cross-node latency below min_latency()");
  return value;
}

}  // namespace agentloc::net
