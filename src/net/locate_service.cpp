#include "net/locate_service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace agentloc::net {
namespace {

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void PartitionMap::encode(util::ByteWriter& writer) const {
  writer.write_varint(workers);
  writer.write_varint(partitions);
  writer.write_varint(tree_version);
  for (const std::string& address : addresses) writer.write_string(address);
  for (const std::uint32_t worker : owner) writer.write_varint(worker);
}

PartitionMap PartitionMap::decode(util::ByteReader& reader) {
  PartitionMap map;
  map.workers = reader.read_varint();
  map.partitions = reader.read_varint();
  map.tree_version = reader.read_varint();
  // Sanity bounds before the length-driven loops: a corrupt count must not
  // turn into a multi-gigabyte allocation.
  if (map.workers == 0 || map.workers > 4096) {
    throw std::runtime_error("partition map: bad worker count");
  }
  if (map.partitions == 0 || map.partitions > (1u << 20)) {
    throw std::runtime_error("partition map: bad partition count");
  }
  map.addresses.reserve(map.workers);
  for (std::uint64_t k = 0; k < map.workers; ++k) {
    map.addresses.push_back(reader.read_string());
  }
  map.owner.reserve(map.partitions);
  for (std::uint64_t leaf = 0; leaf < map.partitions; ++leaf) {
    const std::uint64_t worker = reader.read_varint();
    if (worker >= map.workers) {
      throw std::runtime_error("partition map: owner out of range");
    }
    map.owner.push_back(static_cast<std::uint32_t>(worker));
  }
  return map;
}

hashtree::HashTree LocateDirectory::make_tree(std::size_t partitions) {
  // Breadth-first simple splits: IAgent ids 1..P, so `iagent - 1` is the
  // table index. Every leaf sits at location 0 — within one agentlocd
  // process "location" is vestigial; the tree is used purely as the
  // id → partition hash (paper §3).
  if (partitions == 0) partitions = 1;
  hashtree::HashTree tree(1, 0);
  hashtree::IAgentId next = 2;
  while (tree.leaf_count() < partitions) {
    for (hashtree::IAgentId victim : tree.leaves()) {
      if (tree.leaf_count() >= partitions) break;
      tree.simple_split(victim, 1, next++, 0);
    }
  }
  return tree;
}

LocateDirectory::LocateDirectory(std::size_t partitions)
    : tree_(make_tree(partitions)), tables_(tree_.leaf_count()) {}

std::size_t LocateDirectory::partition_of(platform::AgentId agent) const {
  const hashtree::HashTree::Target target = tree_.lookup_id(agent);
  return static_cast<std::size_t>(target.iagent - 1);
}

bool LocateDirectory::apply_update(platform::AgentId agent, NodeId node,
                                   std::uint64_t seq) {
  if (agent == platform::kNoAgent) return false;
  Binding& binding = tables_[partition_of(agent)][agent];
  // Newest-seq-wins, exactly as the simulated IAgent tables: the network
  // may reorder an agent's consecutive updates (they leave from different
  // nodes), so an older seq must never roll the binding back.
  if (binding.present || binding.seq != 0) {
    if (seq <= binding.seq) return false;
  }
  binding.node = node;
  binding.seq = seq;
  binding.present = true;
  return true;
}

bool LocateDirectory::deregister_agent(platform::AgentId agent,
                                       std::uint64_t seq) {
  if (agent == platform::kNoAgent) return false;
  auto& table = tables_[partition_of(agent)];
  Binding* binding = table.find(agent);
  if (binding == nullptr) return false;
  if (seq < binding->seq) return false;  // a newer update already landed
  // Keep a tombstone carrying the seq so a reordered older update cannot
  // resurrect the binding.
  binding->present = false;
  binding->seq = seq;
  binding->node = kNoNode;
  return true;
}

core::LocateReply LocateDirectory::locate(platform::AgentId agent) const {
  core::LocateReply reply;
  reply.version_hint = tree_.version();
  if (agent == platform::kNoAgent) {
    reply.status = core::LocateStatus::kUnknown;
    return reply;
  }
  const Binding* binding = tables_[partition_of(agent)].find(agent);
  if (binding == nullptr || !binding->present) {
    reply.status = core::LocateStatus::kUnknown;
    return reply;
  }
  reply.status = core::LocateStatus::kFound;
  reply.node = binding->node;
  reply.seq = binding->seq;
  return reply;
}

std::size_t LocateDirectory::size() const noexcept {
  std::size_t total = 0;
  for (const auto& table : tables_) {
    table.for_each([&](platform::AgentId, const Binding& binding) {
      if (binding.present) ++total;
    });
  }
  return total;
}

LocateService::LocateService(SocketTransport& transport,
                             std::size_t partitions, const PartitionMap* map)
    : transport_(transport), directory_(partitions), map_(map) {
  transport_.on_frame([this](SocketTransport::PeerId peer,
                             const FrameView& frame) {
    handle_frame(peer, frame);
  });
}

void LocateService::send_error(SocketTransport::PeerId peer,
                               std::uint64_t correlation,
                               const std::string& message) {
  ++counters_.protocol_errors;
  transport_.send(peer, FrameType::kError, correlation,
                  [&](util::ByteWriter& w) { w.write_string(message); });
  transport_.flush(peer);
}

void LocateService::handle_frame(SocketTransport::PeerId peer,
                                 const FrameView& frame) {
  util::ByteReader reader = frame.payload_reader();
  // Payload decode errors (truncated/garbled fields) answer kError instead
  // of killing the server; the transport already rejected malformed frames.
  try {
    switch (frame.type) {
      case FrameType::kHello: {
        ++counters_.hellos;
        const std::uint64_t version = reader.read_varint();
        if (version != kLocateProtocolVersion) {
          send_error(peer, frame.correlation, "protocol version mismatch");
          return;
        }
        transport_.send(peer, FrameType::kHelloAck, frame.correlation,
                        [&](util::ByteWriter& w) {
                          w.write_varint(kLocateProtocolVersion);
                          w.write_varint(directory_.partition_count());
                          w.write_varint(directory_.tree_version());
                        });
        transport_.flush(peer);
        return;
      }
      case FrameType::kUpdate: {
        ++counters_.updates;
        const platform::AgentId agent = reader.read_varint();
        const NodeId node = static_cast<NodeId>(reader.read_varint());
        const std::uint64_t seq = reader.read_varint();
        const bool applied = directory_.apply_update(agent, node, seq);
        if (applied) ++counters_.updates_applied;
        if ((frame.flags & kFlagWantAck) != 0) {
          transport_.send(peer, FrameType::kUpdateAck, frame.correlation,
                          [&](util::ByteWriter& w) {
                            w.write_bool(applied);
                            w.write_varint(directory_.tree_version());
                          });
        }
        return;
      }
      case FrameType::kLocate: {
        ++counters_.locates;
        const platform::AgentId agent = reader.read_varint();
        const core::LocateReply reply = directory_.locate(agent);
        if (reply.status == core::LocateStatus::kFound) {
          ++counters_.locates_found;
        }
        transport_.send(peer, FrameType::kLocateReply, frame.correlation,
                        [&](util::ByteWriter& w) {
                          w.write_u8(static_cast<std::uint8_t>(reply.status));
                          w.write_varint(reply.node);
                          w.write_varint(reply.seq);
                          w.write_varint(reply.version_hint);
                        });
        return;
      }
      case FrameType::kDeregister: {
        ++counters_.deregisters;
        const platform::AgentId agent = reader.read_varint();
        const std::uint64_t seq = reader.read_varint();
        const bool applied = directory_.deregister_agent(agent, seq);
        if ((frame.flags & kFlagWantAck) != 0) {
          transport_.send(peer, FrameType::kUpdateAck, frame.correlation,
                          [&](util::ByteWriter& w) {
                            w.write_bool(applied);
                            w.write_varint(directory_.tree_version());
                          });
        }
        return;
      }
      case FrameType::kPing: {
        ++counters_.pings;
        transport_.send(peer, FrameType::kPong, frame.correlation, nullptr);
        transport_.flush(peer);
        return;
      }
      case FrameType::kPartitionMap: {
        ++counters_.partition_map_requests;
        transport_.send(peer, FrameType::kPartitionMap, frame.correlation,
                        [&](util::ByteWriter& w) {
                          if (map_ != nullptr) {
                            map_->encode(w);
                            return;
                          }
                          // Standalone: degenerate single-worker map, empty
                          // address = "the connection you already hold".
                          PartitionMap self;
                          self.workers = 1;
                          self.partitions = directory_.partition_count();
                          self.tree_version = directory_.tree_version();
                          self.addresses.assign(1, std::string());
                          self.owner.assign(directory_.partition_count(), 0);
                          self.encode(w);
                        });
        transport_.flush(peer);
        return;
      }
      default:
        send_error(peer, frame.correlation, "unexpected frame type");
        return;
    }
  } catch (const std::exception& error) {
    send_error(peer, frame.correlation,
               std::string("bad payload: ") + error.what());
  }
}

LocateClient::LocateClient() : transport_(SocketTransport::Config{}) {
  transport_.on_frame([this](SocketTransport::PeerId peer,
                             const FrameView& frame) {
    handle_frame(peer, frame);
  });
  transport_.on_disconnect([this](SocketTransport::PeerId peer) {
    // Losing any worker connection poisons the client: pipelined frames may
    // be half-delivered, so further ops must fail fast, not silently route
    // around the dead shard.
    if (peer == server_ ||
        std::find(workers_.begin(), workers_.end(), peer) != workers_.end()) {
      disconnected_ = true;
      if (last_error_.empty()) last_error_ = "server disconnected";
    }
  });
}

bool LocateClient::connected() const noexcept {
  if (disconnected_) return false;
  if (!transport_.peer_open(server_)) return false;
  for (const SocketTransport::PeerId peer : workers_) {
    if (!transport_.peer_open(peer)) return false;
  }
  return true;
}

SocketTransport::PeerId LocateClient::peer_for(platform::AgentId agent) {
  if (!route_tree_) {
    if (!per_worker_ops_.empty()) ++per_worker_ops_[0];
    return server_;
  }
  const hashtree::HashTree::Target target = route_tree_->lookup_id(agent);
  const std::size_t leaf = static_cast<std::size_t>(target.iagent - 1);
  const std::uint32_t worker = leaf < map_.owner.size() ? map_.owner[leaf] : 0;
  ++per_worker_ops_[worker];
  return workers_[worker];
}

void LocateClient::handle_frame(SocketTransport::PeerId,
                                const FrameView& frame) {
  if (frame.type == FrameType::kLocateReply &&
      frame.correlation != sync_correlation_) {
    // Pipelined locate reply.
    try {
      util::ByteReader reader = frame.payload_reader();
      PipelinedReply entry;
      entry.correlation = frame.correlation;
      entry.reply.status =
          static_cast<core::LocateStatus>(reader.read_u8());
      entry.reply.node = static_cast<NodeId>(reader.read_varint());
      entry.reply.seq = reader.read_varint();
      entry.reply.version_hint = reader.read_varint();
      pipelined_.push_back(entry);
    } catch (const std::exception&) {
      // drop the malformed reply; the waiter times out
    }
    return;
  }
  if (frame.correlation != sync_correlation_) return;
  sync_waiter_.done = true;
  sync_waiter_.type = frame.type;
  try {
    util::ByteReader reader = frame.payload_reader();
    switch (frame.type) {
      case FrameType::kHelloAck: {
        const std::uint64_t version = reader.read_varint();
        partitions_ = reader.read_varint();
        sync_waiter_.ack_applied = version == kLocateProtocolVersion;
        break;
      }
      case FrameType::kUpdateAck:
        sync_waiter_.ack_applied = reader.read_bool();
        break;
      case FrameType::kLocateReply:
        sync_waiter_.reply.status =
            static_cast<core::LocateStatus>(reader.read_u8());
        sync_waiter_.reply.node = static_cast<NodeId>(reader.read_varint());
        sync_waiter_.reply.seq = reader.read_varint();
        sync_waiter_.reply.version_hint = reader.read_varint();
        break;
      case FrameType::kPong:
        break;
      case FrameType::kPartitionMap:
        map_ = PartitionMap::decode(reader);
        has_map_ = true;
        break;
      default:  // kError or unexpected
        sync_waiter_.type = FrameType::kError;
        break;
    }
  } catch (const std::exception&) {
    sync_waiter_.type = FrameType::kError;
  }
}

bool LocateClient::wait_for(std::uint64_t correlation, int timeout_ms) {
  sync_correlation_ = correlation;
  sync_waiter_ = Waiter{};
  transport_.flush_all();
  const std::int64_t deadline = now_ms() + timeout_ms;
  while (!sync_waiter_.done) {
    if (!connected()) break;
    const std::int64_t left = deadline - now_ms();
    if (left <= 0) break;
    transport_.poll_once(static_cast<int>(left));
  }
  sync_correlation_ = 0;
  return sync_waiter_.done;
}

bool LocateClient::handshake(SocketTransport::PeerId peer, std::string* error,
                             int timeout_ms) {
  const std::uint64_t correlation = next_correlation_++;
  transport_.send(peer, FrameType::kHello, correlation,
                  [](util::ByteWriter& w) {
                    w.write_varint(kLocateProtocolVersion);
                  });
  if (!wait_for(correlation, timeout_ms) ||
      sync_waiter_.type != FrameType::kHelloAck ||
      !sync_waiter_.ack_applied) {
    if (error) *error = "handshake failed";
    return false;
  }
  return true;
}

bool LocateClient::connect(const SocketAddress& address, std::string* error,
                           int timeout_ms) {
  disconnected_ = false;
  last_error_.clear();
  has_map_ = false;
  route_tree_.reset();
  workers_.clear();
  per_worker_ops_.assign(1, 0);
  server_ = transport_.connect(address, error);
  if (server_ == SocketTransport::kInvalidPeer) {
    last_error_ = error != nullptr && !error->empty() ? *error
                                                      : "connect failed";
    return false;
  }
  if (!handshake(server_, error, timeout_ms)) {
    last_error_ = error != nullptr ? *error : "handshake failed";
    transport_.close_peer(server_);
    server_ = SocketTransport::kInvalidPeer;
    disconnected_ = false;  // deliberate close, not a peer failure
    return false;
  }
  workers_.push_back(server_);
  return true;
}

bool LocateClient::connect_cluster(const SocketAddress& address,
                                   std::string* error, int timeout_ms) {
  if (!connect(address, error, timeout_ms)) return false;
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    last_error_ = message;
    for (const SocketTransport::PeerId peer : workers_) {
      transport_.close_peer(peer);
    }
    workers_.clear();
    server_ = SocketTransport::kInvalidPeer;
    disconnected_ = false;  // deliberate close, not a peer failure
    route_tree_.reset();
    has_map_ = false;
    return false;
  };
  const std::uint64_t correlation = next_correlation_++;
  transport_.send(server_, FrameType::kPartitionMap, correlation, nullptr);
  if (!wait_for(correlation, timeout_ms) ||
      sync_waiter_.type != FrameType::kPartitionMap || !has_map_) {
    return fail("partition map fetch failed");
  }
  if (map_.workers <= 1) return true;  // degenerate: single connection
  if (map_.addresses.size() != map_.workers ||
      map_.owner.size() != map_.partitions) {
    return fail("partition map inconsistent");
  }
  per_worker_ops_.assign(static_cast<std::size_t>(map_.workers), 0);
  for (std::size_t k = 1; k < map_.workers; ++k) {
    SocketAddress worker_address;
    std::string worker_error;
    if (!SocketAddress::parse(map_.addresses[k], worker_address,
                              &worker_error)) {
      return fail("bad worker address: " + worker_error);
    }
    const SocketTransport::PeerId peer =
        transport_.connect(worker_address, &worker_error);
    if (peer == SocketTransport::kInvalidPeer) {
      return fail("worker dial failed: " + worker_error);
    }
    if (!handshake(peer, &worker_error, timeout_ms)) {
      transport_.close_peer(peer);
      return fail("worker handshake failed");
    }
    workers_.push_back(peer);
  }
  // Rebuild the server's deterministic pre-split tree: the id → leaf map is
  // a pure function of the partition count, so routing needs no tree bytes
  // on the wire.
  route_tree_.emplace(LocateDirectory::make_tree(
      static_cast<std::size_t>(map_.partitions)));
  return true;
}

bool LocateClient::send_update(platform::AgentId agent, NodeId node,
                               std::uint64_t seq) {
  return transport_.send(peer_for(agent), FrameType::kUpdate, 0,
                         [&](util::ByteWriter& w) {
                           w.write_varint(agent);
                           w.write_varint(node);
                           w.write_varint(seq);
                         });
}

std::optional<bool> LocateClient::update(platform::AgentId agent, NodeId node,
                                         std::uint64_t seq, int timeout_ms) {
  const std::uint64_t correlation = next_correlation_++;
  if (!connected()) return std::nullopt;
  transport_.send(
      peer_for(agent), FrameType::kUpdate, correlation,
      [&](util::ByteWriter& w) {
        w.write_varint(agent);
        w.write_varint(node);
        w.write_varint(seq);
      },
      kFlagWantAck);
  if (!wait_for(correlation, timeout_ms) ||
      sync_waiter_.type != FrameType::kUpdateAck) {
    return std::nullopt;
  }
  return sync_waiter_.ack_applied;
}

std::optional<core::LocateReply> LocateClient::locate(platform::AgentId agent,
                                                      int timeout_ms) {
  if (!connected()) return std::nullopt;
  const std::uint64_t correlation = next_correlation_++;
  transport_.send(peer_for(agent), FrameType::kLocate, correlation,
                  [&](util::ByteWriter& w) { w.write_varint(agent); });
  if (!wait_for(correlation, timeout_ms) ||
      sync_waiter_.type != FrameType::kLocateReply) {
    return std::nullopt;
  }
  return sync_waiter_.reply;
}

bool LocateClient::send_deregister(platform::AgentId agent,
                                   std::uint64_t seq) {
  return transport_.send(peer_for(agent), FrameType::kDeregister, 0,
                         [&](util::ByteWriter& w) {
                           w.write_varint(agent);
                           w.write_varint(seq);
                         });
}

bool LocateClient::ping(int timeout_ms) {
  // Round-trip every worker connection: a ping is the client's write fence,
  // so it must drain the pipeline on all shards, not just worker 0.
  if (!connected()) return false;
  for (const SocketTransport::PeerId peer : workers_) {
    const std::uint64_t correlation = next_correlation_++;
    transport_.send(peer, FrameType::kPing, correlation, nullptr);
    if (!wait_for(correlation, timeout_ms) ||
        sync_waiter_.type != FrameType::kPong) {
      return false;
    }
  }
  return true;
}

void LocateClient::send_locate(platform::AgentId agent,
                               std::uint64_t correlation) {
  transport_.send(peer_for(agent), FrameType::kLocate, correlation,
                  [&](util::ByteWriter& w) { w.write_varint(agent); });
}

std::vector<LocateClient::PipelinedReply> LocateClient::drain(
    std::size_t count, int timeout_ms) {
  transport_.flush_all();
  const std::int64_t deadline = now_ms() + timeout_ms;
  while (pipelined_.size() < count && connected()) {
    const std::int64_t left = deadline - now_ms();
    if (left <= 0) break;
    transport_.poll_once(static_cast<int>(left));
  }
  std::vector<PipelinedReply> out = std::move(pipelined_);
  pipelined_.clear();
  return out;
}

void LocateClient::flush() { transport_.flush_all(); }

}  // namespace agentloc::net
