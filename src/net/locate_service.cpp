#include "net/locate_service.hpp"

#include <chrono>
#include <stdexcept>

namespace agentloc::net {
namespace {

/// Build a tree with `partitions` leaves by breadth-first simple splits:
/// IAgent ids 1..P, so `iagent - 1` is the table index. Every leaf sits at
/// location 0 — within one agentlocd process "location" is vestigial; the
/// tree is used purely as the id → partition hash (paper §3).
hashtree::HashTree make_partition_tree(std::size_t partitions) {
  hashtree::HashTree tree(1, 0);
  hashtree::IAgentId next = 2;
  while (tree.leaf_count() < partitions) {
    for (hashtree::IAgentId victim : tree.leaves()) {
      if (tree.leaf_count() >= partitions) break;
      tree.simple_split(victim, 1, next++, 0);
    }
  }
  return tree;
}

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LocateDirectory::LocateDirectory(std::size_t partitions)
    : tree_(make_partition_tree(partitions == 0 ? 1 : partitions)),
      tables_(tree_.leaf_count()) {}

std::size_t LocateDirectory::partition_of(platform::AgentId agent) const {
  const hashtree::HashTree::Target target = tree_.lookup_id(agent);
  return static_cast<std::size_t>(target.iagent - 1);
}

bool LocateDirectory::apply_update(platform::AgentId agent, NodeId node,
                                   std::uint64_t seq) {
  if (agent == platform::kNoAgent) return false;
  Binding& binding = tables_[partition_of(agent)][agent];
  // Newest-seq-wins, exactly as the simulated IAgent tables: the network
  // may reorder an agent's consecutive updates (they leave from different
  // nodes), so an older seq must never roll the binding back.
  if (binding.present || binding.seq != 0) {
    if (seq <= binding.seq) return false;
  }
  binding.node = node;
  binding.seq = seq;
  binding.present = true;
  return true;
}

bool LocateDirectory::deregister_agent(platform::AgentId agent,
                                       std::uint64_t seq) {
  if (agent == platform::kNoAgent) return false;
  auto& table = tables_[partition_of(agent)];
  Binding* binding = table.find(agent);
  if (binding == nullptr) return false;
  if (seq < binding->seq) return false;  // a newer update already landed
  // Keep a tombstone carrying the seq so a reordered older update cannot
  // resurrect the binding.
  binding->present = false;
  binding->seq = seq;
  binding->node = kNoNode;
  return true;
}

core::LocateReply LocateDirectory::locate(platform::AgentId agent) const {
  core::LocateReply reply;
  reply.version_hint = tree_.version();
  if (agent == platform::kNoAgent) {
    reply.status = core::LocateStatus::kUnknown;
    return reply;
  }
  const Binding* binding = tables_[partition_of(agent)].find(agent);
  if (binding == nullptr || !binding->present) {
    reply.status = core::LocateStatus::kUnknown;
    return reply;
  }
  reply.status = core::LocateStatus::kFound;
  reply.node = binding->node;
  reply.seq = binding->seq;
  return reply;
}

std::size_t LocateDirectory::size() const noexcept {
  std::size_t total = 0;
  for (const auto& table : tables_) {
    table.for_each([&](platform::AgentId, const Binding& binding) {
      if (binding.present) ++total;
    });
  }
  return total;
}

LocateService::LocateService(SocketTransport& transport,
                             std::size_t partitions)
    : transport_(transport), directory_(partitions) {
  transport_.on_frame([this](SocketTransport::PeerId peer,
                             const FrameView& frame) {
    handle_frame(peer, frame);
  });
}

void LocateService::send_error(SocketTransport::PeerId peer,
                               std::uint64_t correlation,
                               const std::string& message) {
  ++counters_.protocol_errors;
  transport_.send(peer, FrameType::kError, correlation,
                  [&](util::ByteWriter& w) { w.write_string(message); });
  transport_.flush(peer);
}

void LocateService::handle_frame(SocketTransport::PeerId peer,
                                 const FrameView& frame) {
  util::ByteReader reader = frame.payload_reader();
  // Payload decode errors (truncated/garbled fields) answer kError instead
  // of killing the server; the transport already rejected malformed frames.
  try {
    switch (frame.type) {
      case FrameType::kHello: {
        ++counters_.hellos;
        const std::uint64_t version = reader.read_varint();
        if (version != kLocateProtocolVersion) {
          send_error(peer, frame.correlation, "protocol version mismatch");
          return;
        }
        transport_.send(peer, FrameType::kHelloAck, frame.correlation,
                        [&](util::ByteWriter& w) {
                          w.write_varint(kLocateProtocolVersion);
                          w.write_varint(directory_.partition_count());
                          w.write_varint(directory_.tree_version());
                        });
        transport_.flush(peer);
        return;
      }
      case FrameType::kUpdate: {
        ++counters_.updates;
        const platform::AgentId agent = reader.read_varint();
        const NodeId node = static_cast<NodeId>(reader.read_varint());
        const std::uint64_t seq = reader.read_varint();
        const bool applied = directory_.apply_update(agent, node, seq);
        if (applied) ++counters_.updates_applied;
        if ((frame.flags & kFlagWantAck) != 0) {
          transport_.send(peer, FrameType::kUpdateAck, frame.correlation,
                          [&](util::ByteWriter& w) {
                            w.write_bool(applied);
                            w.write_varint(directory_.tree_version());
                          });
        }
        return;
      }
      case FrameType::kLocate: {
        ++counters_.locates;
        const platform::AgentId agent = reader.read_varint();
        const core::LocateReply reply = directory_.locate(agent);
        if (reply.status == core::LocateStatus::kFound) {
          ++counters_.locates_found;
        }
        transport_.send(peer, FrameType::kLocateReply, frame.correlation,
                        [&](util::ByteWriter& w) {
                          w.write_u8(static_cast<std::uint8_t>(reply.status));
                          w.write_varint(reply.node);
                          w.write_varint(reply.seq);
                          w.write_varint(reply.version_hint);
                        });
        return;
      }
      case FrameType::kDeregister: {
        ++counters_.deregisters;
        const platform::AgentId agent = reader.read_varint();
        const std::uint64_t seq = reader.read_varint();
        const bool applied = directory_.deregister_agent(agent, seq);
        if ((frame.flags & kFlagWantAck) != 0) {
          transport_.send(peer, FrameType::kUpdateAck, frame.correlation,
                          [&](util::ByteWriter& w) {
                            w.write_bool(applied);
                            w.write_varint(directory_.tree_version());
                          });
        }
        return;
      }
      case FrameType::kPing: {
        ++counters_.pings;
        transport_.send(peer, FrameType::kPong, frame.correlation, nullptr);
        transport_.flush(peer);
        return;
      }
      default:
        send_error(peer, frame.correlation, "unexpected frame type");
        return;
    }
  } catch (const std::exception& error) {
    send_error(peer, frame.correlation,
               std::string("bad payload: ") + error.what());
  }
}

LocateClient::LocateClient() : transport_(SocketTransport::Config{}) {
  transport_.on_frame([this](SocketTransport::PeerId peer,
                             const FrameView& frame) {
    handle_frame(peer, frame);
  });
}

bool LocateClient::connected() const noexcept {
  return transport_.peer_open(server_);
}

void LocateClient::handle_frame(SocketTransport::PeerId,
                                const FrameView& frame) {
  if (frame.type == FrameType::kLocateReply &&
      frame.correlation != sync_correlation_) {
    // Pipelined locate reply.
    try {
      util::ByteReader reader = frame.payload_reader();
      PipelinedReply entry;
      entry.correlation = frame.correlation;
      entry.reply.status =
          static_cast<core::LocateStatus>(reader.read_u8());
      entry.reply.node = static_cast<NodeId>(reader.read_varint());
      entry.reply.seq = reader.read_varint();
      entry.reply.version_hint = reader.read_varint();
      pipelined_.push_back(entry);
    } catch (const std::exception&) {
      // drop the malformed reply; the waiter times out
    }
    return;
  }
  if (frame.correlation != sync_correlation_) return;
  sync_waiter_.done = true;
  sync_waiter_.type = frame.type;
  try {
    util::ByteReader reader = frame.payload_reader();
    switch (frame.type) {
      case FrameType::kHelloAck: {
        const std::uint64_t version = reader.read_varint();
        partitions_ = reader.read_varint();
        sync_waiter_.ack_applied = version == kLocateProtocolVersion;
        break;
      }
      case FrameType::kUpdateAck:
        sync_waiter_.ack_applied = reader.read_bool();
        break;
      case FrameType::kLocateReply:
        sync_waiter_.reply.status =
            static_cast<core::LocateStatus>(reader.read_u8());
        sync_waiter_.reply.node = static_cast<NodeId>(reader.read_varint());
        sync_waiter_.reply.seq = reader.read_varint();
        sync_waiter_.reply.version_hint = reader.read_varint();
        break;
      case FrameType::kPong:
        break;
      default:  // kError or unexpected
        sync_waiter_.type = FrameType::kError;
        break;
    }
  } catch (const std::exception&) {
    sync_waiter_.type = FrameType::kError;
  }
}

bool LocateClient::wait_for(std::uint64_t correlation, int timeout_ms) {
  sync_correlation_ = correlation;
  sync_waiter_ = Waiter{};
  transport_.flush_all();
  const std::int64_t deadline = now_ms() + timeout_ms;
  while (!sync_waiter_.done) {
    if (!connected()) break;
    const std::int64_t left = deadline - now_ms();
    if (left <= 0) break;
    transport_.poll_once(static_cast<int>(left));
  }
  sync_correlation_ = 0;
  return sync_waiter_.done;
}

bool LocateClient::connect(const SocketAddress& address, std::string* error,
                           int timeout_ms) {
  server_ = transport_.connect(address, error);
  if (server_ == SocketTransport::kInvalidPeer) return false;
  const std::uint64_t correlation = next_correlation_++;
  transport_.send(server_, FrameType::kHello, correlation,
                  [](util::ByteWriter& w) {
                    w.write_varint(kLocateProtocolVersion);
                  });
  if (!wait_for(correlation, timeout_ms) ||
      sync_waiter_.type != FrameType::kHelloAck ||
      !sync_waiter_.ack_applied) {
    if (error) *error = "handshake failed";
    transport_.close_peer(server_);
    server_ = SocketTransport::kInvalidPeer;
    return false;
  }
  return true;
}

bool LocateClient::send_update(platform::AgentId agent, NodeId node,
                               std::uint64_t seq) {
  return transport_.send(server_, FrameType::kUpdate, 0,
                         [&](util::ByteWriter& w) {
                           w.write_varint(agent);
                           w.write_varint(node);
                           w.write_varint(seq);
                         });
}

std::optional<bool> LocateClient::update(platform::AgentId agent, NodeId node,
                                         std::uint64_t seq, int timeout_ms) {
  const std::uint64_t correlation = next_correlation_++;
  if (!connected()) return std::nullopt;
  transport_.send(
      server_, FrameType::kUpdate, correlation,
      [&](util::ByteWriter& w) {
        w.write_varint(agent);
        w.write_varint(node);
        w.write_varint(seq);
      },
      kFlagWantAck);
  if (!wait_for(correlation, timeout_ms) ||
      sync_waiter_.type != FrameType::kUpdateAck) {
    return std::nullopt;
  }
  return sync_waiter_.ack_applied;
}

std::optional<core::LocateReply> LocateClient::locate(platform::AgentId agent,
                                                      int timeout_ms) {
  if (!connected()) return std::nullopt;
  const std::uint64_t correlation = next_correlation_++;
  transport_.send(server_, FrameType::kLocate, correlation,
                  [&](util::ByteWriter& w) { w.write_varint(agent); });
  if (!wait_for(correlation, timeout_ms) ||
      sync_waiter_.type != FrameType::kLocateReply) {
    return std::nullopt;
  }
  return sync_waiter_.reply;
}

bool LocateClient::send_deregister(platform::AgentId agent,
                                   std::uint64_t seq) {
  return transport_.send(server_, FrameType::kDeregister, 0,
                         [&](util::ByteWriter& w) {
                           w.write_varint(agent);
                           w.write_varint(seq);
                         });
}

bool LocateClient::ping(int timeout_ms) {
  if (!connected()) return false;
  const std::uint64_t correlation = next_correlation_++;
  transport_.send(server_, FrameType::kPing, correlation, nullptr);
  return wait_for(correlation, timeout_ms) &&
         sync_waiter_.type == FrameType::kPong;
}

void LocateClient::send_locate(platform::AgentId agent,
                               std::uint64_t correlation) {
  transport_.send(server_, FrameType::kLocate, correlation,
                  [&](util::ByteWriter& w) { w.write_varint(agent); });
}

std::vector<LocateClient::PipelinedReply> LocateClient::drain(
    std::size_t count, int timeout_ms) {
  transport_.flush_all();
  const std::int64_t deadline = now_ms() + timeout_ms;
  while (pipelined_.size() < count && connected()) {
    const std::int64_t left = deadline - now_ms();
    if (left <= 0) break;
    transport_.poll_once(static_cast<int>(left));
  }
  std::vector<PipelinedReply> out = std::move(pipelined_);
  pipelined_.clear();
  return out;
}

void LocateClient::flush() { transport_.flush_all(); }

}  // namespace agentloc::net
