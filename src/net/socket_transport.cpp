#include "net/socket_transport.hpp"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

namespace agentloc::net {
namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

bool SocketAddress::parse(const std::string& text, SocketAddress& out,
                          std::string* error) {
  if (text.rfind("unix:", 0) == 0) {
    out.kind = Kind::kUnix;
    out.path = text.substr(5);
    if (out.path.empty()) {
      if (error) *error = "unix address needs a path: unix:/some/path";
      return false;
    }
    // sun_path is a fixed-size array; reject what bind() would truncate.
    if (out.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      if (error) *error = "unix socket path too long";
      return false;
    }
    return true;
  }
  if (text.rfind("tcp:", 0) == 0) {
    const std::string rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      if (error) *error = "tcp address needs host:port, e.g. tcp:127.0.0.1:7421";
      return false;
    }
    out.kind = Kind::kTcp;
    out.host = rest.substr(0, colon);
    unsigned long port = 0;
    const std::string port_text = rest.substr(colon + 1);
    for (char c : port_text) {
      if (c < '0' || c > '9') {
        if (error) *error = "tcp port must be numeric";
        return false;
      }
      port = port * 10 + static_cast<unsigned long>(c - '0');
      if (port > 65535) break;
    }
    if (port == 0 || port > 65535) {
      if (error) *error = "tcp port out of range";
      return false;
    }
    out.port = static_cast<std::uint16_t>(port);
    in_addr probe{};
    if (inet_pton(AF_INET, out.host.c_str(), &probe) != 1) {
      if (error) *error = "tcp host must be an IPv4 literal";
      return false;
    }
    return true;
  }
  if (error) *error = "address must start with unix: or tcp:";
  return false;
}

std::string SocketAddress::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

SocketTransport::SocketTransport() : SocketTransport(Config{}) {}

SocketTransport::SocketTransport(Config config)
    : config_(config), loop_(EventLoop::create(config.backend)) {}

SocketTransport::~SocketTransport() { close_all(); }

const char* SocketTransport::backend_name() const noexcept {
  return loop_->name();
}

bool SocketTransport::sockets_available() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return false;
  ::close(fds[0]);
  ::close(fds[1]);
  return true;
}

bool SocketTransport::set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

SocketTransport::PeerId SocketTransport::register_fd(int fd) {
  set_nonblocking(fd);
  loop_->add(fd, /*want_read=*/true, /*want_write=*/false);
  FrameDecoder decoder(pool_, FrameDecoder::Config{config_.max_payload});
  // Reuse a closed slot if one exists so long-lived servers don't grow the
  // peer table monotonically under connection churn.
  PeerId id = kInvalidPeer;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i].fd < 0) {
      peers_[i] = Peer(std::move(decoder));
      peers_[i].fd = fd;
      id = static_cast<PeerId>(i);
      break;
    }
  }
  if (id == kInvalidPeer) {
    peers_.emplace_back(std::move(decoder));
    peers_.back().fd = fd;
    id = static_cast<PeerId>(peers_.size() - 1);
  }
  if (static_cast<std::size_t>(fd) >= fd_owner_.size()) {
    fd_owner_.resize(static_cast<std::size_t>(fd) + 1, kInvalidPeer);
  }
  fd_owner_[static_cast<std::size_t>(fd)] = id;
  return id;
}

SocketTransport::PeerId SocketTransport::owner_of(int fd) const noexcept {
  if (fd < 0 || static_cast<std::size_t>(fd) >= fd_owner_.size()) {
    return kInvalidPeer;
  }
  return fd_owner_[static_cast<std::size_t>(fd)];
}

bool SocketTransport::listen(const SocketAddress& address,
                             std::string* error) {
  if (listen_fd_ >= 0) {
    if (error) *error = "transport already listening";
    return false;
  }
  int fd = -1;
  if (address.kind == SocketAddress::Kind::kUnix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error) *error = errno_text("socket(AF_UNIX)");
      return false;
    }
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    std::strncpy(sun.sun_path, address.path.c_str(),
                 sizeof(sun.sun_path) - 1);
    ::unlink(address.path.c_str());  // stale socket from a previous run
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) != 0) {
      if (error) *error = errno_text("bind(unix)");
      ::close(fd);
      return false;
    }
    listen_unix_path_ = address.path;
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error) *error = errno_text("socket(AF_INET)");
      return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (config_.reuse_port) {
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
    }
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(address.port);
    if (inet_pton(AF_INET, address.host.c_str(), &sin.sin_addr) != 1) {
      if (error) *error = "tcp host must be an IPv4 literal";
      ::close(fd);
      return false;
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
      if (error) *error = errno_text("bind(tcp)");
      ::close(fd);
      return false;
    }
  }
  if (::listen(fd, config_.listen_backlog) != 0) {
    if (error) *error = errno_text("listen");
    ::close(fd);
    if (!listen_unix_path_.empty()) {
      ::unlink(listen_unix_path_.c_str());
      listen_unix_path_.clear();
    }
    return false;
  }
  set_nonblocking(fd);
  loop_->add(fd, /*want_read=*/true, /*want_write=*/false);
  listen_fd_ = fd;
  return true;
}

SocketTransport::PeerId SocketTransport::connect(const SocketAddress& address,
                                                 std::string* error) {
  int fd = -1;
  int rc = -1;
  if (address.kind == SocketAddress::Kind::kUnix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error) *error = errno_text("socket(AF_UNIX)");
      return kInvalidPeer;
    }
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    std::strncpy(sun.sun_path, address.path.c_str(),
                 sizeof(sun.sun_path) - 1);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun));
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error) *error = errno_text("socket(AF_INET)");
      return kInvalidPeer;
    }
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(address.port);
    if (inet_pton(AF_INET, address.host.c_str(), &sin.sin_addr) != 1) {
      if (error) *error = "tcp host must be an IPv4 literal";
      ::close(fd);
      return kInvalidPeer;
    }
    // Loopback connects complete synchronously; blocking here keeps the
    // API simple (no half-open connecting state to track in the loop).
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin));
  }
  if (rc != 0) {
    if (error) *error = errno_text("connect");
    ::close(fd);
    return kInvalidPeer;
  }
  ++stats_.connects;
  return register_fd(fd);
}

SocketTransport::PeerId SocketTransport::adopt(int fd) {
  return register_fd(fd);
}

bool SocketTransport::send(
    PeerId peer, FrameType type, std::uint64_t correlation,
    const std::function<void(util::ByteWriter&)>& encode_payload,
    std::uint8_t flags) {
  if (!peer_open(peer)) return false;
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (!p.batch_open) {
    p.batch = util::ByteWriter(pool_.acquire(config_.send_buffer_cap));
    p.batch_open = true;
  }
  const OpenFrame open = begin_frame(p.batch, type, correlation, flags);
  if (encode_payload) encode_payload(p.batch);
  end_frame(p.batch, open);
  ++stats_.frames_sent;
  if (!config_.coalesce || p.batch.size() >= config_.send_buffer_cap) {
    seal_batch(p);
  }
  return true;
}

void SocketTransport::seal_batch(Peer& peer) {
  if (!peer.batch_open || peer.batch.size() == 0) {
    peer.batch_open = false;
    return;
  }
  PendingBuffer pending;
  pending.bytes = std::move(peer.batch).take();
  peer.batch = util::ByteWriter();
  peer.batch_open = false;
  peer.sendq.push_back(std::move(pending));
  ++stats_.batches_sealed;
}

void SocketTransport::flush(PeerId peer) {
  if (!peer_open(peer)) return;
  seal_batch(peers_[static_cast<std::size_t>(peer)]);
  flush_pending(peer);
}

void SocketTransport::flush_all() {
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i].fd >= 0) flush(static_cast<PeerId>(i));
  }
}

void SocketTransport::flush_pending(PeerId id) {
  Peer& peer = peers_[static_cast<std::size_t>(id)];
  // Coalesced mode gathers up to max_batch_iov sealed buffers per writev;
  // the uncoalesced baseline pushes exactly one buffer per syscall.
  const std::size_t max_iov = config_.coalesce ? config_.max_batch_iov : 1;
  while (!peer.sendq.empty()) {
    iovec iov[64];
    const std::size_t count =
        std::min({peer.sendq.size(), max_iov, sizeof(iov) / sizeof(iov[0])});
    for (std::size_t i = 0; i < count; ++i) {
      PendingBuffer& buf = peer.sendq[i];
      iov[i].iov_base = buf.bytes.data() + buf.offset;
      iov[i].iov_len = buf.bytes.size() - buf.offset;
    }
    // sendmsg(MSG_NOSIGNAL) rather than writev: writing into a connection
    // the peer already closed must surface as EPIPE (→ drop_peer), not
    // SIGPIPE — a sharded client flushing to a dead worker would otherwise
    // kill the process.
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = count;
    const ssize_t wrote = ::sendmsg(peer.fd, &msg, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // wait for POLLOUT
      drop_peer(id, true);
      return;
    }
    ++stats_.flush_syscalls;
    stats_.bytes_sent += static_cast<std::uint64_t>(wrote);
    std::size_t left = static_cast<std::size_t>(wrote);
    while (left > 0 && !peer.sendq.empty()) {
      PendingBuffer& buf = peer.sendq.front();
      const std::size_t buf_left = buf.bytes.size() - buf.offset;
      if (left >= buf_left) {
        left -= buf_left;
        pool_.release(std::move(buf.bytes));
        peer.sendq.pop_front();
      } else {
        buf.offset += left;
        left = 0;
      }
    }
  }
}

void SocketTransport::read_ready(PeerId id) {
  // The frame handler may adopt/connect new peers, which can reallocate
  // peers_ — re-index after every callback instead of caching a reference.
  const std::size_t slot = static_cast<std::size_t>(id);
  for (;;) {
    std::uint8_t* dst = peers_[slot].decoder.writable(config_.read_chunk);
    const ssize_t got = ::recv(peers_[slot].fd, dst, config_.read_chunk, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      drop_peer(id, true);
      return;
    }
    if (got == 0) {  // orderly EOF
      drop_peer(id, true);
      return;
    }
    ++stats_.read_syscalls;
    stats_.bytes_received += static_cast<std::uint64_t>(got);
    peers_[slot].decoder.commit(static_cast<std::size_t>(got));
    FrameView view;
    for (;;) {
      const FrameDecoder::Status status = peers_[slot].decoder.next(view);
      if (status == FrameDecoder::Status::kFrame) {
        ++stats_.frames_received;
        if (on_frame_) on_frame_(id, view);
        if (peers_[slot].fd < 0) return;  // handler closed this peer
        continue;
      }
      if (status == FrameDecoder::Status::kError) {
        ++stats_.decode_errors;
        drop_peer(id, true);
        return;
      }
      break;  // kNeedMore
    }
    if (static_cast<std::size_t>(got) < config_.read_chunk) return;
  }
}

int SocketTransport::poll_once(int timeout_ms) {
  // Sync write interest with queue state: a peer subscribes to writability
  // only while sealed bytes are waiting on the kernel, so an idle peer
  // never spins the loop with a perpetually-writable fd.
  for (Peer& peer : peers_) {
    if (peer.fd < 0) continue;
    const bool want_write = !peer.sendq.empty();
    if (want_write != peer.want_write) {
      loop_->modify(peer.fd, /*want_read=*/true, want_write);
      peer.want_write = want_write;
    }
  }
  if (loop_->watched() == 0) return 0;
  const int ready = loop_->wait(timeout_ms, events_);
  if (ready <= 0) return ready;
  for (const EventLoop::Event& event : events_) {
    if (event.fd == listen_fd_ && listen_fd_ >= 0) {
      for (;;) {  // drain the accept queue
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        ++stats_.accepts;
        const PeerId id = register_fd(fd);
        if (on_accept_) on_accept_(id);
      }
      continue;
    }
    // Resolve through the fd→peer map instead of a snapshot: the peer may
    // have been dropped (and its slot reused) by an earlier event or a
    // frame handler this same turn.
    const PeerId id = owner_of(event.fd);
    if (id == kInvalidPeer) continue;
    if (event.writable && peer_open(id)) flush_pending(id);
    if ((event.readable || event.hangup) && peer_open(id)) read_ready(id);
  }
  // End-of-turn flush: every reply queued while dispatching this turn's
  // frames leaves now, coalesced per peer.
  flush_all();
  return ready;
}

bool SocketTransport::peer_open(PeerId peer) const noexcept {
  return peer >= 0 && static_cast<std::size_t>(peer) < peers_.size() &&
         peers_[static_cast<std::size_t>(peer)].fd >= 0;
}

std::size_t SocketTransport::pending_bytes(PeerId peer) const noexcept {
  if (!peer_open(peer)) return 0;
  const Peer& p = peers_[static_cast<std::size_t>(peer)];
  std::size_t total = p.batch_open ? p.batch.size() : 0;
  for (const PendingBuffer& buf : p.sendq) {
    total += buf.bytes.size() - buf.offset;
  }
  return total;
}

void SocketTransport::drop_peer(PeerId id, bool count_disconnect) {
  Peer& peer = peers_[static_cast<std::size_t>(id)];
  if (peer.fd < 0) return;
  loop_->remove(peer.fd);
  if (static_cast<std::size_t>(peer.fd) < fd_owner_.size()) {
    fd_owner_[static_cast<std::size_t>(peer.fd)] = kInvalidPeer;
  }
  ::close(peer.fd);
  peer.fd = -1;
  peer.want_write = false;
  while (!peer.sendq.empty()) {
    pool_.release(std::move(peer.sendq.front().bytes));
    peer.sendq.pop_front();
  }
  // The open batch and the decode buffer go back to the pool too, so a
  // disconnect leaves no pooled bytes stranded on the dead slot (the slot
  // keeps one fresh decoder buffer for reuse, like a never-used slot).
  if (peer.batch_open) pool_.release(std::move(peer.batch).take());
  peer.batch = util::ByteWriter();
  peer.batch_open = false;
  peer.decoder = FrameDecoder(pool_, FrameDecoder::Config{config_.max_payload});
  if (count_disconnect) {
    ++stats_.disconnects;
    if (on_disconnect_) on_disconnect_(id);
  }
}

void SocketTransport::close_peer(PeerId peer) {
  if (!peer_open(peer)) return;
  flush(peer);  // best effort on whatever the kernel takes right now
  drop_peer(peer, false);
}

void SocketTransport::close_all() {
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i].fd >= 0) close_peer(static_cast<PeerId>(i));
  }
  if (listen_fd_ >= 0) {
    loop_->remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!listen_unix_path_.empty()) {
    ::unlink(listen_unix_path_.c_str());
    listen_unix_path_.clear();
  }
}

std::size_t SocketTransport::peer_count() const noexcept {
  std::size_t open = 0;
  for (const Peer& peer : peers_) {
    if (peer.fd >= 0) ++open;
  }
  return open;
}

}  // namespace agentloc::net
