#include "net/network.hpp"

#include <stdexcept>
#include <utility>

namespace agentloc::net {

Network::Network(sim::Simulator& simulator, std::size_t node_count,
                 std::unique_ptr<LatencyModel> latency, util::Rng rng)
    : simulator_(simulator),
      node_count_(node_count),
      latency_(std::move(latency)),
      rng_(rng),
      per_node_delivered_(node_count, 0) {
  if (node_count_ == 0) {
    throw std::invalid_argument("Network: node_count must be > 0");
  }
  if (!latency_) {
    throw std::invalid_argument("Network: latency model required");
  }
}

bool Network::send(NodeId from, NodeId to, std::size_t bytes,
                   std::function<void()> deliver) {
  const TransmitPlan plan = plan_transmission(from, to, bytes);
  for (int copy = 0; copy < plan.copies; ++copy) {
    simulator_.schedule_after(plan.delay[copy], [this, to, deliver] {
      note_delivered(to);
      deliver();
    });
  }
  return plan.copies > 0;
}

TransmitPlan Network::plan_transmission(NodeId from, NodeId to,
                                        std::size_t bytes) {
  if (from >= node_count_ || to >= node_count_) {
    throw std::out_of_range("Network::send: node id out of range");
  }
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;

  TransmitPlan plan;
  if (from != to && faults_.partitioned(from, to)) {
    ++stats_.messages_dropped;
    return plan;
  }
  // RNG draw order (drop, latency, duplicate, latency) is part of the
  // determinism contract — seeded runs must replay identically whether the
  // caller goes through `send` or schedules its own deliveries.
  if (from != to && rng_.chance(faults_.drop_probability)) {
    ++stats_.messages_dropped;
    return plan;
  }
  plan.delay[0] = checked_latency(*latency_, from, to, bytes, rng_);
  plan.copies = 1;
  if (from != to && rng_.chance(faults_.duplicate_probability)) {
    ++stats_.messages_duplicated;
    plan.delay[1] = checked_latency(*latency_, from, to, bytes, rng_);
    plan.copies = 2;
  }
  return plan;
}

}  // namespace agentloc::net
