#include "net/network.hpp"

#include <stdexcept>
#include <utility>

namespace agentloc::net {

Network::Network(sim::Simulator& simulator, std::size_t node_count,
                 std::unique_ptr<LatencyModel> latency, util::Rng rng)
    : simulator_(simulator),
      node_count_(node_count),
      latency_(std::move(latency)),
      rng_(rng),
      per_node_delivered_(node_count, 0) {
  if (node_count_ == 0) {
    throw std::invalid_argument("Network: node_count must be > 0");
  }
  if (!latency_) {
    throw std::invalid_argument("Network: latency model required");
  }
}

bool Network::send(NodeId from, NodeId to, std::size_t bytes,
                   std::function<void()> deliver) {
  if (from >= node_count_ || to >= node_count_) {
    throw std::out_of_range("Network::send: node id out of range");
  }
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;

  if (from != to && faults_.partitioned(from, to)) {
    ++stats_.messages_dropped;
    return false;
  }
  if (from != to && rng_.chance(faults_.drop_probability)) {
    ++stats_.messages_dropped;
    return false;
  }
  schedule_delivery(from, to, bytes, deliver);
  if (from != to && rng_.chance(faults_.duplicate_probability)) {
    ++stats_.messages_duplicated;
    schedule_delivery(from, to, bytes, deliver);
  }
  return true;
}

void Network::schedule_delivery(NodeId from, NodeId to, std::size_t bytes,
                                const std::function<void()>& deliver) {
  const sim::SimTime delay = latency_->latency(from, to, bytes, rng_);
  simulator_.schedule_after(delay, [this, to, deliver] {
    ++stats_.messages_delivered;
    ++per_node_delivered_[to];
    deliver();
  });
}

}  // namespace agentloc::net
