#include "net/frame.hpp"

#include <cstring>

namespace agentloc::net {

OpenFrame begin_frame(util::ByteWriter& writer, FrameType type,
                      std::uint64_t correlation, std::uint8_t flags) {
  OpenFrame open;
  open.frame_start = writer.size();
  writer.write_u8(kFrameMagic);
  writer.write_u8(static_cast<std::uint8_t>(type));
  writer.write_u8(flags);
  writer.write_varint(correlation);
  open.length_slot = writer.size();
  writer.write_varint4(0);  // patched by end_frame once the payload is down
  open.payload_start = writer.size();
  return open;
}

std::size_t end_frame(util::ByteWriter& writer, const OpenFrame& open) {
  const std::size_t payload = writer.size() - open.payload_start;
  writer.patch_varint4(open.length_slot,
                       static_cast<std::uint32_t>(payload));
  return writer.size() - open.frame_start;
}

FrameDecoder::FrameDecoder(util::BufferPool& pool)
    : FrameDecoder(pool, Config{}) {}

FrameDecoder::FrameDecoder(util::BufferPool& pool, Config config)
    : pool_(&pool), config_(config), buffer_(pool.acquire()) {}

FrameDecoder::~FrameDecoder() { release_buffer(); }

FrameDecoder::FrameDecoder(FrameDecoder&& other) noexcept
    : pool_(other.pool_),
      config_(other.config_),
      buffer_(std::move(other.buffer_)),
      len_(other.len_),
      pos_(other.pos_),
      failed_(other.failed_),
      error_(std::move(other.error_)) {
  other.pool_ = nullptr;
  other.len_ = 0;
  other.pos_ = 0;
}

FrameDecoder& FrameDecoder::operator=(FrameDecoder&& other) noexcept {
  if (this != &other) {
    release_buffer();
    pool_ = other.pool_;
    config_ = other.config_;
    buffer_ = std::move(other.buffer_);
    len_ = other.len_;
    pos_ = other.pos_;
    failed_ = other.failed_;
    error_ = std::move(other.error_);
    other.pool_ = nullptr;
    other.len_ = 0;
    other.pos_ = 0;
  }
  return *this;
}

void FrameDecoder::release_buffer() noexcept {
  if (pool_ != nullptr && buffer_.capacity() > 0) {
    pool_->release(std::move(buffer_));
  }
  len_ = 0;
  pos_ = 0;
}

void FrameDecoder::compact() noexcept {
  if (pos_ == 0) return;
  const std::size_t unparsed = len_ - pos_;
  if (unparsed > 0) {
    std::memmove(buffer_.data(), buffer_.data() + pos_, unparsed);
  }
  len_ = unparsed;
  pos_ = 0;
}

std::uint8_t* FrameDecoder::writable(std::size_t min_bytes) {
  compact();
  if (buffer_.size() < len_ + min_bytes) {
    buffer_.resize(len_ + min_bytes);
  }
  return buffer_.data() + len_;
}

void FrameDecoder::commit(std::size_t bytes) noexcept {
  len_ += bytes;
  if (len_ > buffer_.size()) len_ = buffer_.size();  // defensive clamp
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return;
  std::memcpy(writable(size), data, size);
  commit(size);
}

FrameDecoder::Status FrameDecoder::fail(const char* message) {
  failed_ = true;
  error_ = message;
  return Status::kError;
}

FrameDecoder::Status FrameDecoder::next(FrameView& out) {
  if (failed_) return Status::kError;
  const std::uint8_t* data = buffer_.data();
  std::size_t at = pos_;

  // Magic is checked the moment the first byte arrives: a desynchronized
  // stream fails at the frame boundary, not after more bytes trickle in.
  if (len_ == at) return Status::kNeedMore;
  if (data[at] != kFrameMagic) {
    return fail("frame: bad magic byte (stream desynchronized or not ours)");
  }
  if (len_ - at < 3) return Status::kNeedMore;
  const std::uint8_t raw_type = data[at + 1];
  const std::uint8_t flags = data[at + 2];
  at += 3;

  // Correlation varint: LEB128, at most 10 bytes for a 64-bit value.
  std::uint64_t correlation = 0;
  int shift = 0;
  for (;;) {
    if (at == len_) return Status::kNeedMore;
    const std::uint8_t byte = data[at++];
    if (shift >= 64 || (shift == 63 && (byte & 0x7e) != 0)) {
      return fail("frame: correlation varint overflows 64 bits");
    }
    correlation |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }

  // Payload length varint. The encoder always writes the padded 4-byte
  // form, but any LEB128 encoding of a value below the cap is accepted.
  std::uint64_t length = 0;
  shift = 0;
  for (;;) {
    if (at == len_) return Status::kNeedMore;
    const std::uint8_t byte = data[at++];
    if (shift >= 35) {
      return fail("frame: payload length varint overflows 32 bits");
    }
    length |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  if (length > config_.max_payload) {
    return fail("frame: payload length exceeds the frame cap");
  }

  if (len_ - at < length) return Status::kNeedMore;

  out.type = static_cast<FrameType>(raw_type);
  out.flags = flags;
  out.correlation = correlation;
  out.payload = data + at;
  out.payload_size = static_cast<std::size_t>(length);
  pos_ = at + static_cast<std::size_t>(length);
  if (pos_ == len_) {  // fully drained: rewind so the buffer never creeps
    pos_ = 0;
    len_ = 0;
  }
  return Status::kFrame;
}

}  // namespace agentloc::net
