#include "net/locate_server.hpp"

#include <utility>

namespace agentloc::net {

/// One worker's whole serving stack, heap-pinned so the thread can hold a
/// stable pointer while the vector that owns the workers never reallocates
/// after start(). Everything here is touched only by the owning thread once
/// the thread spawns — except the live_* atomics, which the control thread
/// reads with relaxed loads.
struct LocateServer::Worker {
  SocketAddress address;
  SocketTransport transport;
  LocateService service;
  std::atomic<std::uint64_t> live_locates{0};
  std::atomic<std::uint64_t> live_ops{0};

  Worker(SocketTransport::Config transport_config, std::size_t partitions,
         const PartitionMap* map)
      : transport(transport_config), service(transport, partitions, map) {}
};

SocketAddress LocateServer::worker_address(const SocketAddress& base,
                                           std::size_t k) {
  SocketAddress address = base;
  if (k == 0) return address;
  if (address.kind == SocketAddress::Kind::kUnix) {
    address.path += ".w" + std::to_string(k);
  } else {
    address.port = static_cast<std::uint16_t>(address.port + k);
  }
  return address;
}

LocateServer::LocateServer(Config config) : config_(config) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.partitions == 0) config_.partitions = 1;
  // More workers than leaves would leave some workers owning nothing; clamp
  // so the advertised map never names an idle shard.
  if (config_.workers > config_.partitions) {
    config_.workers = config_.partitions;
  }
}

LocateServer::~LocateServer() { stop(); }

bool LocateServer::start(const SocketAddress& base, std::string* error) {
  if (running_.load(std::memory_order_acquire) || !threads_.empty()) {
    if (error != nullptr) *error = "server already started";
    return false;
  }
  stop_.store(false, std::memory_order_release);

  // The map every worker advertises: round-robin leaf ownership, worker 0
  // on the base address. Built (and frozen) before any thread exists.
  map_ = PartitionMap{};
  map_.workers = config_.workers;
  map_.partitions = config_.partitions;
  map_.addresses.clear();
  map_.owner.clear();
  for (std::size_t k = 0; k < config_.workers; ++k) {
    map_.addresses.push_back(worker_address(base, k).to_string());
  }
  for (std::size_t leaf = 0; leaf < config_.partitions; ++leaf) {
    map_.owner.push_back(static_cast<std::uint32_t>(leaf % config_.workers));
  }

  SocketTransport::Config transport_config;
  transport_config.backend = config_.backend;
  transport_config.reuse_port = true;

  workers_.clear();
  workers_.reserve(config_.workers);
  for (std::size_t k = 0; k < config_.workers; ++k) {
    workers_.push_back(std::make_unique<Worker>(transport_config,
                                                config_.partitions, &map_));
    workers_.back()->address = worker_address(base, k);
  }
  map_.tree_version = workers_.front()->service.directory().tree_version();

  // Bind every listener before spawning anything: a conflict on worker 3
  // must fail the whole start, with workers 0..2 cleanly unwound.
  for (std::size_t k = 0; k < config_.workers; ++k) {
    std::string bind_error;
    if (!workers_[k]->transport.listen(workers_[k]->address, &bind_error)) {
      if (error != nullptr) {
        *error = "worker " + std::to_string(k) + ": " + bind_error;
      }
      workers_.clear();  // closes the already-bound listeners
      return false;
    }
  }

  stats_.assign(config_.workers, WorkerStats{});
  running_.store(true, std::memory_order_release);
  threads_.reserve(config_.workers);
  for (std::size_t k = 0; k < config_.workers; ++k) {
    threads_.emplace_back([this, k] { run_worker(k); });
  }
  return true;
}

void LocateServer::run_worker(std::size_t index) {
  Worker& worker = *workers_[index];
  while (!stop_.load(std::memory_order_acquire)) {
    worker.transport.poll_once(config_.poll_timeout_ms);
    const LocateService::Counters& counters = worker.service.counters();
    worker.live_locates.store(counters.locates, std::memory_order_relaxed);
    worker.live_ops.store(
        counters.updates + counters.locates + counters.deregisters,
        std::memory_order_relaxed);
    if (config_.max_locates != 0 && live_locates_total() >= config_.max_locates) {
      // Quota served across the fleet: ask every worker to wind down. The
      // others notice within one poll tick.
      stop_.store(true, std::memory_order_release);
    }
  }
  // Snapshot into the control thread's slot; published by thread join.
  WorkerStats& out = stats_[index];
  out.address = worker.address.to_string();
  out.transport = worker.transport.stats();
  out.counters = worker.service.counters();
  out.bindings = worker.service.directory().size();
  out.backend = worker.transport.backend_name();
  worker.transport.close_all();
}

void LocateServer::stop() {
  stop_.store(true, std::memory_order_release);
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  running_.store(false, std::memory_order_release);
}

bool LocateServer::running() const noexcept {
  return running_.load(std::memory_order_acquire) &&
         !stop_.load(std::memory_order_acquire);
}

std::uint64_t LocateServer::live_locates_total() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->live_locates.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> LocateServer::live_locates() const {
  std::vector<std::uint64_t> out;
  out.reserve(workers_.size());
  for (const auto& worker : workers_) {
    out.push_back(worker->live_locates.load(std::memory_order_relaxed));
  }
  return out;
}

std::uint64_t LocateServer::live_ops() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->live_ops.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace agentloc::net
