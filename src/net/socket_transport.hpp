#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "util/buffer_pool.hpp"
#include "util/bytebuffer.hpp"

namespace agentloc::net {

/// A parsed transport endpoint address.
///
///   "unix:/tmp/agentloc.sock"  — Unix-domain stream socket
///   "tcp:127.0.0.1:7421"       — TCP loopback (any v4 literal accepted)
struct SocketAddress {
  enum class Kind : std::uint8_t { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  std::string path;  ///< kUnix: filesystem path
  std::string host;  ///< kTcp: v4 address literal
  std::uint16_t port = 0;

  /// Parse the "unix:…" / "tcp:host:port" syntax. Returns false and fills
  /// `error` on malformed input.
  static bool parse(const std::string& text, SocketAddress& out,
                    std::string* error);

  std::string to_string() const;
};

/// Real-wire backend of the message plane (DESIGN.md §17).
///
/// Where `net::Transport` is the *planning* seam — simulated physics the
/// platform consults for delay/copies — `SocketTransport` binds one layer
/// down, at the frame boundary: it moves encoded `net::Frame` bytes between
/// real processes over Unix-domain or TCP-loopback stream sockets. The
/// simulator path and the socket path therefore share everything above the
/// wire (payload serialization, frame codec, protocol types) and differ only
/// in who carries the bytes.
///
/// Mechanics:
///  - one `net::EventLoop` per transport, all fds nonblocking. The loop
///    backend is runtime-selected (epoll where the kernel has it, poll
///    elsewhere; `AGENTLOC_EVENT_BACKEND` forces one for tests) and the
///    transport only consumes readiness bits, so both backends are
///    semantically identical — level-triggered, partial drains re-report.
///    Write interest is subscribed only while a peer has sealed bytes
///    queued, synced at the top of each `poll_once` turn.
///  - per-peer send queues: frames are encoded back-to-back into pooled
///    buffers (`coalesce` mode) and flushed with a single `writev(2)`
///    gathering up to `max_batch_iov` buffers — the syscalls-per-frame
///    lever measured by bench_transport. With `coalesce=false` every frame
///    gets its own buffer and its own `write` syscall (the baseline).
///  - receives land directly in each peer's `FrameDecoder` pooled buffer
///    (`writable`/`commit`, no intermediate copy) and complete frames are
///    handed to the frame handler as views.
///
/// Single-threaded like the rest of the codebase: one transport per event
/// loop thread. Sandboxes without socket support are first-class: probe with
/// `sockets_available()` and skip (tests GTEST_SKIP, benches emit codec-only
/// rows, the smoke script exits 77).
class SocketTransport {
 public:
  using PeerId = int;
  static constexpr PeerId kInvalidPeer = -1;

  struct Config {
    bool coalesce = true;  ///< pack frames per buffer + writev batches
    std::size_t max_batch_iov = 16;      ///< buffers gathered per writev
    std::size_t send_buffer_cap = 16u << 10;  ///< seal batch beyond this
    std::size_t read_chunk = 64u << 10;       ///< recv() request size
    std::size_t max_payload = kDefaultMaxFramePayload;
    int listen_backlog = 16;
    /// Readiness backend: kAuto resolves AGENTLOC_EVENT_BACKEND, then
    /// prefers epoll where supported (poll elsewhere).
    EventLoop::Backend backend = EventLoop::Backend::kAuto;
    /// Set SO_REUSEPORT on TCP listen sockets so sharded workers can bind
    /// the same address family side by side (LocateServer sets this).
    bool reuse_port = false;
  };

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t flush_syscalls = 0;  ///< writev/write calls that sent >0
    std::uint64_t read_syscalls = 0;   ///< recv calls that returned >0
    std::uint64_t batches_sealed = 0;
    std::uint64_t accepts = 0;
    std::uint64_t connects = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t decode_errors = 0;
  };

  /// Complete inbound frame. The view is only valid for the duration of the
  /// callback (it aliases the peer's decode buffer).
  using FrameHandler = std::function<void(PeerId, const FrameView&)>;
  /// Peer closed: EOF, error, or protocol violation (`decode_errors`).
  using DisconnectHandler = std::function<void(PeerId)>;
  using AcceptHandler = std::function<void(PeerId)>;

  SocketTransport();
  explicit SocketTransport(Config config);
  ~SocketTransport();
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Whether this process may create sockets at all (sandboxes differ).
  /// Probes with a socketpair; cheap enough to call once at startup.
  static bool sockets_available();

  void on_frame(FrameHandler handler) { on_frame_ = std::move(handler); }
  void on_disconnect(DisconnectHandler handler) {
    on_disconnect_ = std::move(handler);
  }
  void on_accept(AcceptHandler handler) { on_accept_ = std::move(handler); }

  /// Bind + listen. One listener per transport. False + `error` on failure.
  bool listen(const SocketAddress& address, std::string* error);

  /// Connect to a listening transport. Returns the new peer id, or
  /// kInvalidPeer with `error` set.
  PeerId connect(const SocketAddress& address, std::string* error);

  /// Adopt an already-connected stream fd (e.g. one end of a socketpair).
  /// The transport takes ownership and sets it nonblocking.
  PeerId adopt(int fd);

  /// Encode one frame into `peer`'s pending batch; `encode_payload` writes
  /// the payload through the supplied writer (which points into a pooled
  /// buffer — this is the zero-copy path). Nothing hits the wire until the
  /// batch seals and a flush or POLLOUT drains it. Returns false if the
  /// peer is closed.
  bool send(PeerId peer, FrameType type, std::uint64_t correlation,
            const std::function<void(util::ByteWriter&)>& encode_payload,
            std::uint8_t flags = 0);

  /// Seal the open batch and write as much pending data as the kernel
  /// accepts right now. Remaining bytes stay queued for POLLOUT.
  void flush(PeerId peer);
  void flush_all();

  /// One event-loop turn: wait on the backend, accept, read/dispatch,
  /// drain writable send queues, then flush everything queued during the
  /// turn — so replies to all requests processed this turn coalesce into
  /// one writev per peer. Returns the backend's ready count (0 on
  /// timeout). Not reentrant: frame handlers must not call poll_once.
  int poll_once(int timeout_ms);

  /// Name of the readiness backend actually running: "poll" or "epoll".
  const char* backend_name() const noexcept;

  /// True while `peer` has an open fd.
  bool peer_open(PeerId peer) const noexcept;
  /// Bytes queued (sealed + open batch) for `peer`.
  std::size_t pending_bytes(PeerId peer) const noexcept;

  void close_peer(PeerId peer);
  void close_all();

  std::size_t peer_count() const noexcept;  ///< open peers
  const Stats& stats() const noexcept { return stats_; }
  util::BufferPool& pool() noexcept { return pool_; }
  const Config& config() const noexcept { return config_; }

 private:
  struct PendingBuffer {
    std::vector<std::uint8_t> bytes;
    std::size_t offset = 0;  ///< already written to the kernel
  };

  struct Peer {
    int fd = -1;
    FrameDecoder decoder;
    std::deque<PendingBuffer> sendq;
    util::ByteWriter batch;  ///< open (unsealed) coalescing batch
    bool batch_open = false;
    bool want_write = false;  ///< current write subscription at the loop

    explicit Peer(FrameDecoder decoder_in) : decoder(std::move(decoder_in)) {}
  };

  PeerId register_fd(int fd);
  PeerId owner_of(int fd) const noexcept;
  void seal_batch(Peer& peer);
  void flush_pending(PeerId id);
  void read_ready(PeerId id);
  void drop_peer(PeerId id, bool count_disconnect);
  static bool set_nonblocking(int fd);

  Config config_;
  Stats stats_;
  util::BufferPool pool_;
  std::unique_ptr<EventLoop> loop_;
  std::vector<Peer> peers_;
  std::vector<PeerId> fd_owner_;  ///< fd → open peer id (kInvalidPeer: none)
  std::vector<EventLoop::Event> events_;  ///< scratch for poll_once
  int listen_fd_ = -1;
  std::string listen_unix_path_;  ///< unlinked on close
  FrameHandler on_frame_;
  DisconnectHandler on_disconnect_;
  AcceptHandler on_accept_;
};

}  // namespace agentloc::net
