#include "net/latency.hpp"

namespace agentloc::net {

sim::SimTime LanLatencyModel::latency(NodeId from, NodeId to,
                                      std::size_t bytes, util::Rng& rng) {
  if (from == to) return config_.loopback;
  sim::SimTime value =
      config_.base +
      sim::SimTime::nanos(static_cast<std::int64_t>(
          config_.per_byte_ns * static_cast<double>(bytes)));
  if (config_.jitter > sim::SimTime::zero()) {
    value += sim::SimTime::nanos(static_cast<std::int64_t>(
        rng.uniform() * static_cast<double>(config_.jitter.as_nanos())));
  }
  return value;
}

sim::SimTime UniformLatencyModel::latency(NodeId, NodeId, std::size_t,
                                          util::Rng& rng) {
  const double span =
      static_cast<double>((hi_ - lo_).as_nanos());
  return lo_ + sim::SimTime::nanos(
                   static_cast<std::int64_t>(rng.uniform() * span));
}

sim::SimTime ClusterLatencyModel::latency(NodeId from, NodeId to,
                                          std::size_t bytes,
                                          util::Rng& rng) {
  sim::SimTime value = lan_.latency(from, to, bytes, rng);
  if (from != to && !same_cluster(from, to)) {
    value += config_.wan_hop;
    if (config_.wan_jitter > sim::SimTime::zero()) {
      value += sim::SimTime::nanos(static_cast<std::int64_t>(
          rng.uniform() *
          static_cast<double>(config_.wan_jitter.as_nanos())));
    }
  }
  return value;
}

std::unique_ptr<LatencyModel> make_default_lan_model() {
  return std::make_unique<LanLatencyModel>();
}

}  // namespace agentloc::net
