#pragma once

#include <functional>

#include "net/network.hpp"

namespace agentloc::net {

/// The message-plane seam (DESIGN.md §17): everything the agent platform
/// asks of "the network" when it moves one payload between two nodes.
///
/// The platform owns scheduling and delivery (inboxes, burst coalescing,
/// bounce semantics); the transport owns the physics underneath — fault
/// injection, latency sampling, and delivery accounting. Factoring that
/// boundary into an interface lets the same platform code run over
///
///   * `SimTransport` (the default): the simulated datagram `Network`,
///     bit-identical to the pre-seam code path — every call forwards to the
///     same `Network` method in the same order, so fixed-seed runs replay
///     exactly (test-enforced, see `transport_seam_test.cpp`), and
///   * decorators (tracing, counting, fault-plan shims) wrapped around any
///     backend, which is how the seam tests prove nothing bypasses it.
///
/// The *real* POSIX socket backend (`SocketTransport`) lives one layer
/// below this interface: it moves encoded `net::Frame`s between processes
/// where there is no simulator to schedule into, so it binds at the wire
/// (frame/fd) boundary instead of the planning boundary — see the backend
/// matrix in DESIGN.md §17.
///
/// Contract notes:
///  * `plan_transmission` must count the message and sample faults/latency
///    exactly once per call; the caller schedules `copies` deliveries at the
///    returned delays and reports each with `note_delivered`.
///  * `faults()` is THE fault-injection surface. Backends must apply it to
///    every transmission (`plan_transmission` and `send` alike); a backend
///    that silently bypassed it would break the failover/robustness suites,
///    which configure drops and partitions through this seam.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::size_t node_count() const noexcept = 0;

  /// Sample the fault plan and latency model for one transmission, counting
  /// it in the stats, without scheduling anything.
  virtual TransmitPlan plan_transmission(NodeId from, NodeId to,
                                         std::size_t bytes) = 0;

  /// Record one delivery planned via `plan_transmission`.
  virtual void note_delivered(NodeId to) noexcept = 0;

  /// Transmit `bytes` from `from` to `to`; on (each) delivery run `deliver`.
  /// Returns false when the fault plan swallowed the message entirely.
  virtual bool send(NodeId from, NodeId to, std::size_t bytes,
                    std::function<void()> deliver) = 0;

  virtual FaultPlan& faults() noexcept = 0;
  virtual const NetworkStats& stats() const noexcept = 0;
};

/// Default backend: the simulated `Network`, unchanged. Pure forwarding —
/// no extra state, no extra RNG draws — so a platform running over this
/// backend is bit-identical to one calling the `Network` directly.
class SimTransport final : public Transport {
 public:
  explicit SimTransport(Network& network) noexcept : network_(network) {}

  std::size_t node_count() const noexcept override {
    return network_.node_count();
  }

  TransmitPlan plan_transmission(NodeId from, NodeId to,
                                 std::size_t bytes) override {
    return network_.plan_transmission(from, to, bytes);
  }

  void note_delivered(NodeId to) noexcept override {
    network_.note_delivered(to);
  }

  bool send(NodeId from, NodeId to, std::size_t bytes,
            std::function<void()> deliver) override {
    return network_.send(from, to, bytes, std::move(deliver));
  }

  FaultPlan& faults() noexcept override { return network_.faults(); }

  const NetworkStats& stats() const noexcept override {
    return network_.stats();
  }

  Network& network() noexcept { return network_; }

 private:
  Network& network_;
};

/// Pass-through decorator base for seam tests and tracing shims: forwards
/// every call to `inner` verbatim. Subclasses override what they observe;
/// a run with an unmodified `ForwardingTransport` installed must be
/// bit-identical to a run without it (test-enforced).
class ForwardingTransport : public Transport {
 public:
  explicit ForwardingTransport(Transport& inner) noexcept : inner_(inner) {}

  std::size_t node_count() const noexcept override {
    return inner_.node_count();
  }
  TransmitPlan plan_transmission(NodeId from, NodeId to,
                                 std::size_t bytes) override {
    return inner_.plan_transmission(from, to, bytes);
  }
  void note_delivered(NodeId to) noexcept override {
    inner_.note_delivered(to);
  }
  bool send(NodeId from, NodeId to, std::size_t bytes,
            std::function<void()> deliver) override {
    return inner_.send(from, to, bytes, std::move(deliver));
  }
  FaultPlan& faults() noexcept override { return inner_.faults(); }
  const NetworkStats& stats() const noexcept override {
    return inner_.stats();
  }

  Transport& inner() noexcept { return inner_; }

 private:
  Transport& inner_;
};

}  // namespace agentloc::net
