#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "hashtree/tree.hpp"
#include "net/socket_transport.hpp"
#include "util/flat_map.hpp"

namespace agentloc::net {

/// Worker-shard advertisement (the kPartitionMap frame, DESIGN.md §17):
/// how many workers serve a directory, which address each one listens on,
/// and which worker owns each hash-tree leaf. Single-worker servers answer
/// a degenerate map (workers=1, empty address = "the connection you
/// already hold"), so clients can probe unconditionally.
struct PartitionMap {
  std::uint64_t workers = 1;
  std::uint64_t partitions = 1;
  std::uint64_t tree_version = 0;
  /// One address string per worker ("unix:…"/"tcp:…"). addresses[0] may be
  /// empty: the advertising connection itself is worker 0.
  std::vector<std::string> addresses;
  /// Leaf index (iagent-1 in the pre-split tree) → owning worker.
  std::vector<std::uint32_t> owner;

  void encode(util::ByteWriter& writer) const;
  /// Throws std::runtime_error on malformed payloads (like the ByteReader
  /// primitives it is built from); validates owner indices < workers.
  static PartitionMap decode(util::ByteReader& reader);
};

}  // namespace agentloc::net

namespace agentloc::net {

/// Version carried in kHello/kHelloAck; bumped on incompatible changes.
inline constexpr std::uint64_t kLocateProtocolVersion = 1;

/// The authoritative location directory one `agentlocd` process serves: the
/// paper's hash scheme answering real RPCs. Agent ids route through a
/// `hashtree::HashTree` pre-split into `partitions` leaves (each leaf is an
/// in-process IAgent shard with its own table), and bindings apply under the
/// same newest-seq-wins rule as the simulated IAgents — a reordered older
/// update or deregister can never clobber a newer binding.
class LocateDirectory {
 public:
  explicit LocateDirectory(std::size_t partitions);

  /// The deterministic pre-split tree every directory of `partitions`
  /// leaves uses (breadth-first simple splits, IAgent ids 1..P). Exposed so
  /// routing clients and worker shards reconstruct the identical id → leaf
  /// map from the partition count alone.
  static hashtree::HashTree make_tree(std::size_t partitions);

  std::size_t partition_count() const noexcept { return tables_.size(); }
  std::size_t partition_of(platform::AgentId agent) const;

  /// Returns true when the entry was applied (no newer seq already held).
  bool apply_update(platform::AgentId agent, NodeId node, std::uint64_t seq);

  /// Remove the binding unless a strictly newer update already landed.
  bool deregister_agent(platform::AgentId agent, std::uint64_t seq);

  core::LocateReply locate(platform::AgentId agent) const;

  std::size_t size() const noexcept;  ///< bindings across all partitions
  std::uint64_t tree_version() const noexcept { return tree_.version(); }
  const hashtree::HashTree& tree() const noexcept { return tree_; }

 private:
  struct Binding {
    NodeId node = kNoNode;
    std::uint64_t seq = 0;
    bool present = false;  ///< false after deregister (seq tombstone)
  };

  hashtree::HashTree tree_;
  std::vector<util::FlatMap<platform::AgentId, Binding, platform::kNoAgent>>
      tables_;
};

/// Frame flag on kUpdate/kDeregister: the sender wants a kUpdateAck.
inline constexpr std::uint8_t kFlagWantAck = 0x01;

/// Server side of the locate protocol: plugs a `LocateDirectory` into a
/// `SocketTransport`'s frame handler. One instance per `agentlocd` process.
///
/// Payload encodings (all varint unless noted; framing per frame.hpp):
///   kHello       → protocol version
///   kHelloAck    → protocol version, partition count, tree version
///   kUpdate      → agent, node, seq            (flags bit0: want ack)
///   kUpdateAck   → applied (bool), tree version
///   kLocate      → agent
///   kLocateReply → status (u8), node, seq, tree version
///   kDeregister  → agent, seq                  (flags bit0: want ack)
///   kPing/kPong  → empty (correlation echoed)
///   kPartitionMap→ request: empty; reply: PartitionMap::encode
///   kError       → string diagnostic
class LocateService {
 public:
  struct Counters {
    std::uint64_t hellos = 0;
    std::uint64_t updates = 0;
    std::uint64_t updates_applied = 0;
    std::uint64_t locates = 0;
    std::uint64_t locates_found = 0;
    std::uint64_t deregisters = 0;
    std::uint64_t pings = 0;
    std::uint64_t partition_map_requests = 0;
    std::uint64_t protocol_errors = 0;
  };

  /// Installs itself as `transport`'s frame handler. The transport must
  /// outlive the service. `map` (optional, non-owning) is the worker-shard
  /// advertisement answered to kPartitionMap requests; without one the
  /// service advertises itself as a single worker.
  LocateService(SocketTransport& transport, std::size_t partitions,
                const PartitionMap* map = nullptr);

  LocateDirectory& directory() noexcept { return directory_; }
  const LocateDirectory& directory() const noexcept { return directory_; }
  const Counters& counters() const noexcept { return counters_; }

  void handle_frame(SocketTransport::PeerId peer, const FrameView& frame);

 private:
  void send_error(SocketTransport::PeerId peer, std::uint64_t correlation,
                  const std::string& message);

  SocketTransport& transport_;
  LocateDirectory directory_;
  const PartitionMap* map_ = nullptr;  ///< non-owning; nullptr = standalone
  Counters counters_;
};

/// Client side: owns its transport, speaks the handshake, and offers both
/// synchronous round-trips (connect-and-verify paths) and a pipelined
/// fire-many/collect-many mode (the loadgen's throughput path).
///
/// Two connection modes:
///  - `connect` — one connection, every op on it (the PR-9 behaviour, and
///    still fully consistent against a sharded server: each worker's
///    directory covers all leaves, so a single-connection client is its
///    own single writer).
///  - `connect_cluster` — fetch the server's kPartitionMap, dial every
///    worker, and route each op to the worker owning the agent's hash-tree
///    leaf (the client rebuilds the identical pre-split tree from the
///    partition count). All connections share one transport/event loop, so
///    pipelining stays per-connection and `drain` collects across workers.
class LocateClient {
 public:
  LocateClient();

  /// Connect + kHello/kHelloAck handshake. False + `error` on failure or
  /// version mismatch.
  bool connect(const SocketAddress& address, std::string* error,
               int timeout_ms = 5000);

  /// `connect`, then fetch the partition map and dial every advertised
  /// worker. Against a single-worker server this degrades to `connect`.
  bool connect_cluster(const SocketAddress& address, std::string* error,
                       int timeout_ms = 5000);

  /// True while every dialed worker connection is open.
  bool connected() const noexcept;
  /// Partition count the server announced in its kHelloAck.
  std::uint64_t server_partitions() const noexcept { return partitions_; }

  /// Worker connections held (1 unless connect_cluster found more).
  std::size_t worker_count() const noexcept {
    return workers_.empty() ? 1 : workers_.size();
  }
  /// The map fetched by connect_cluster (nullptr before/without one).
  const PartitionMap* partition_map() const noexcept {
    return has_map_ ? &map_ : nullptr;
  }
  /// Ops routed per worker connection (updates + locates + deregisters);
  /// index-aligned with the partition map's worker list. The bench's
  /// balance evidence.
  const std::vector<std::uint64_t>& per_worker_ops() const noexcept {
    return per_worker_ops_;
  }
  /// Sticky diagnostic: set on handshake failure or when any worker
  /// connection drops; cleared by the next successful connect.
  const std::string& last_error() const noexcept { return last_error_; }

  /// One-way update (no ack requested); pipelined, flushed by `flush` or a
  /// later sync call.
  bool send_update(platform::AgentId agent, NodeId node, std::uint64_t seq);

  /// Synchronous update: requests an ack and waits for it. Returns the
  /// applied flag, or nullopt on timeout/disconnect.
  std::optional<bool> update(platform::AgentId agent, NodeId node,
                             std::uint64_t seq, int timeout_ms = 5000);

  std::optional<core::LocateReply> locate(platform::AgentId agent,
                                          int timeout_ms = 5000);

  bool send_deregister(platform::AgentId agent, std::uint64_t seq);

  bool ping(int timeout_ms = 5000);

  /// Pipelined locate: send without waiting. Replies are collected by
  /// `drain` in arrival order.
  void send_locate(platform::AgentId agent, std::uint64_t correlation);

  struct PipelinedReply {
    std::uint64_t correlation = 0;
    core::LocateReply reply;
  };

  /// Flush pending frames and run the event loop until `count` pipelined
  /// locate replies arrived or `timeout_ms` elapsed. Returns the replies.
  std::vector<PipelinedReply> drain(std::size_t count, int timeout_ms);

  void flush();
  SocketTransport& transport() noexcept { return transport_; }

 private:
  struct Waiter {
    bool done = false;
    FrameType type = FrameType::kError;
    bool ack_applied = false;
    core::LocateReply reply;
  };

  void handle_frame(SocketTransport::PeerId peer, const FrameView& frame);
  /// Run the loop until the sync waiter for `correlation` completes.
  bool wait_for(std::uint64_t correlation, int timeout_ms);
  /// Handshake an already-connected peer (kHello round-trip).
  bool handshake(SocketTransport::PeerId peer, std::string* error,
                 int timeout_ms);
  /// The worker connection owning `agent`'s leaf (server_ without a map);
  /// bumps the per-worker op counter.
  SocketTransport::PeerId peer_for(platform::AgentId agent);

  SocketTransport transport_;
  SocketTransport::PeerId server_ = SocketTransport::kInvalidPeer;
  std::vector<SocketTransport::PeerId> workers_;  ///< [0] == server_
  std::vector<std::uint64_t> per_worker_ops_;
  bool has_map_ = false;
  PartitionMap map_;
  /// Client-side rebuild of the server's pre-split tree — the routing
  /// function. Engaged only when the map advertises >1 worker.
  std::optional<hashtree::HashTree> route_tree_;
  std::string last_error_;
  bool disconnected_ = false;
  std::uint64_t next_correlation_ = 1;
  std::uint64_t partitions_ = 0;

  std::uint64_t sync_correlation_ = 0;  ///< 0: no sync wait in flight
  Waiter sync_waiter_;
  std::vector<PipelinedReply> pipelined_;
};

}  // namespace agentloc::net
