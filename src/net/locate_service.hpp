#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "hashtree/tree.hpp"
#include "net/socket_transport.hpp"
#include "util/flat_map.hpp"

namespace agentloc::net {

/// Version carried in kHello/kHelloAck; bumped on incompatible changes.
inline constexpr std::uint64_t kLocateProtocolVersion = 1;

/// The authoritative location directory one `agentlocd` process serves: the
/// paper's hash scheme answering real RPCs. Agent ids route through a
/// `hashtree::HashTree` pre-split into `partitions` leaves (each leaf is an
/// in-process IAgent shard with its own table), and bindings apply under the
/// same newest-seq-wins rule as the simulated IAgents — a reordered older
/// update or deregister can never clobber a newer binding.
class LocateDirectory {
 public:
  explicit LocateDirectory(std::size_t partitions);

  std::size_t partition_count() const noexcept { return tables_.size(); }
  std::size_t partition_of(platform::AgentId agent) const;

  /// Returns true when the entry was applied (no newer seq already held).
  bool apply_update(platform::AgentId agent, NodeId node, std::uint64_t seq);

  /// Remove the binding unless a strictly newer update already landed.
  bool deregister_agent(platform::AgentId agent, std::uint64_t seq);

  core::LocateReply locate(platform::AgentId agent) const;

  std::size_t size() const noexcept;  ///< bindings across all partitions
  std::uint64_t tree_version() const noexcept { return tree_.version(); }
  const hashtree::HashTree& tree() const noexcept { return tree_; }

 private:
  struct Binding {
    NodeId node = kNoNode;
    std::uint64_t seq = 0;
    bool present = false;  ///< false after deregister (seq tombstone)
  };

  hashtree::HashTree tree_;
  std::vector<util::FlatMap<platform::AgentId, Binding, platform::kNoAgent>>
      tables_;
};

/// Frame flag on kUpdate/kDeregister: the sender wants a kUpdateAck.
inline constexpr std::uint8_t kFlagWantAck = 0x01;

/// Server side of the locate protocol: plugs a `LocateDirectory` into a
/// `SocketTransport`'s frame handler. One instance per `agentlocd` process.
///
/// Payload encodings (all varint unless noted; framing per frame.hpp):
///   kHello       → protocol version
///   kHelloAck    → protocol version, partition count, tree version
///   kUpdate      → agent, node, seq            (flags bit0: want ack)
///   kUpdateAck   → applied (bool), tree version
///   kLocate      → agent
///   kLocateReply → status (u8), node, seq, tree version
///   kDeregister  → agent, seq                  (flags bit0: want ack)
///   kPing/kPong  → empty (correlation echoed)
///   kError       → string diagnostic
class LocateService {
 public:
  struct Counters {
    std::uint64_t hellos = 0;
    std::uint64_t updates = 0;
    std::uint64_t updates_applied = 0;
    std::uint64_t locates = 0;
    std::uint64_t locates_found = 0;
    std::uint64_t deregisters = 0;
    std::uint64_t pings = 0;
    std::uint64_t protocol_errors = 0;
  };

  /// Installs itself as `transport`'s frame handler. The transport must
  /// outlive the service.
  LocateService(SocketTransport& transport, std::size_t partitions);

  LocateDirectory& directory() noexcept { return directory_; }
  const LocateDirectory& directory() const noexcept { return directory_; }
  const Counters& counters() const noexcept { return counters_; }

  void handle_frame(SocketTransport::PeerId peer, const FrameView& frame);

 private:
  void send_error(SocketTransport::PeerId peer, std::uint64_t correlation,
                  const std::string& message);

  SocketTransport& transport_;
  LocateDirectory directory_;
  Counters counters_;
};

/// Client side: owns its transport, speaks the handshake, and offers both
/// synchronous round-trips (connect-and-verify paths) and a pipelined
/// fire-many/collect-many mode (the loadgen's throughput path).
class LocateClient {
 public:
  LocateClient();

  /// Connect + kHello/kHelloAck handshake. False + `error` on failure or
  /// version mismatch.
  bool connect(const SocketAddress& address, std::string* error,
               int timeout_ms = 5000);

  bool connected() const noexcept;
  /// Partition count the server announced in its kHelloAck.
  std::uint64_t server_partitions() const noexcept { return partitions_; }

  /// One-way update (no ack requested); pipelined, flushed by `flush` or a
  /// later sync call.
  bool send_update(platform::AgentId agent, NodeId node, std::uint64_t seq);

  /// Synchronous update: requests an ack and waits for it. Returns the
  /// applied flag, or nullopt on timeout/disconnect.
  std::optional<bool> update(platform::AgentId agent, NodeId node,
                             std::uint64_t seq, int timeout_ms = 5000);

  std::optional<core::LocateReply> locate(platform::AgentId agent,
                                          int timeout_ms = 5000);

  bool send_deregister(platform::AgentId agent, std::uint64_t seq);

  bool ping(int timeout_ms = 5000);

  /// Pipelined locate: send without waiting. Replies are collected by
  /// `drain` in arrival order.
  void send_locate(platform::AgentId agent, std::uint64_t correlation);

  struct PipelinedReply {
    std::uint64_t correlation = 0;
    core::LocateReply reply;
  };

  /// Flush pending frames and run the event loop until `count` pipelined
  /// locate replies arrived or `timeout_ms` elapsed. Returns the replies.
  std::vector<PipelinedReply> drain(std::size_t count, int timeout_ms);

  void flush();
  SocketTransport& transport() noexcept { return transport_; }

 private:
  struct Waiter {
    bool done = false;
    FrameType type = FrameType::kError;
    bool ack_applied = false;
    core::LocateReply reply;
  };

  void handle_frame(SocketTransport::PeerId peer, const FrameView& frame);
  /// Run the loop until the sync waiter for `correlation` completes.
  bool wait_for(std::uint64_t correlation, int timeout_ms);

  SocketTransport transport_;
  SocketTransport::PeerId server_ = SocketTransport::kInvalidPeer;
  std::uint64_t next_correlation_ = 1;
  std::uint64_t partitions_ = 0;

  std::uint64_t sync_correlation_ = 0;  ///< 0: no sync wait in flight
  Waiter sync_waiter_;
  std::vector<PipelinedReply> pipelined_;
};

}  // namespace agentloc::net
