#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/locate_service.hpp"
#include "net/socket_transport.hpp"

namespace agentloc::net {

/// Sharded `agentlocd`: N worker threads, each owning one complete serving
/// stack — its own `SocketTransport` (event loop, buffer pool, listen
/// socket) plus a `LocateService` with a full `LocateDirectory`. Nothing
/// mutable is shared between workers: the only cross-thread state is the
/// immutable `PartitionMap` built before the threads spawn and a handful of
/// monotonic per-worker atomics for live observability (DESIGN.md §17).
///
/// Sharding contract:
///  - worker k listens on `worker_address(base, k)` — worker 0 on the base
///    address itself (so legacy single-connection clients keep working),
///    worker k>0 on `path + ".w<k>"` (unix) / `port + k` (tcp). TCP
///    listeners set SO_REUSEPORT so restarts and side-by-side shards bind
///    cleanly.
///  - the advertised map assigns leaf → worker round-robin
///    (`leaf % workers`), and every worker answers kPartitionMap with the
///    same map, so a client can bootstrap from any shard.
///  - each worker's directory covers *all* partitions: a client that ignores
///    the map and funnels everything down one connection stays fully
///    consistent (it is its own single writer). Routing exists to keep each
///    leaf single-writer across a *population* of routing clients — they all
///    derive the same owner for an agent, so a leaf's bindings are only ever
///    written through one worker's thread.
class LocateServer {
 public:
  struct Config {
    std::size_t workers = 1;      ///< clamped to [1, partitions]
    std::size_t partitions = 8;   ///< hash-tree leaves per directory
    EventLoop::Backend backend = EventLoop::Backend::kAuto;
    int poll_timeout_ms = 50;     ///< worker loop tick (stop-flag latency)
    /// Stop serving once the workers' summed locate count reaches this
    /// (0 = run until `stop`). Mirrors agentlocd --max-requests.
    std::uint64_t max_locates = 0;
  };

  /// Post-join snapshot of one worker's serving stack.
  struct WorkerStats {
    std::string address;
    SocketTransport::Stats transport;
    LocateService::Counters counters;
    std::size_t bindings = 0;
    std::string backend;  ///< readiness backend the worker actually ran
  };

  explicit LocateServer(Config config);
  ~LocateServer();  ///< stop() + join
  LocateServer(const LocateServer&) = delete;
  LocateServer& operator=(const LocateServer&) = delete;

  /// Listen address of worker `k` for a given base address: k == 0 is the
  /// base itself; unix gets ".w<k>" appended to the path, tcp gets port+k.
  static SocketAddress worker_address(const SocketAddress& base,
                                      std::size_t k);

  /// Bind every worker's listener (so address conflicts fail fast, before
  /// any thread exists), then spawn the worker threads. False + `error` on
  /// any bind failure (already-bound listeners are closed).
  bool start(const SocketAddress& base, std::string* error);

  /// Signal every worker to finish its current turn and join them. Safe to
  /// call twice; the destructor calls it.
  void stop();

  /// True from a successful start() until stop() completes. A max_locates
  /// server flips to false on its own once the quota is served.
  bool running() const noexcept;

  std::size_t worker_count() const noexcept { return config_.workers; }
  const Config& config() const noexcept { return config_; }
  const PartitionMap& partition_map() const noexcept { return map_; }

  /// Live per-worker locate counts (relaxed atomics — approximate while
  /// serving, exact after stop()). Index = worker.
  std::vector<std::uint64_t> live_locates() const;
  /// Live total ops (updates + locates + deregisters) across workers.
  std::uint64_t live_ops() const;

  /// Per-worker detail; meaningful after stop() (workers write their
  /// snapshot as they exit).
  const std::vector<WorkerStats>& stats() const noexcept { return stats_; }

 private:
  struct Worker;

  void run_worker(std::size_t index);
  std::uint64_t live_locates_total() const;

  Config config_;
  PartitionMap map_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::vector<WorkerStats> stats_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
};

}  // namespace agentloc::net
