#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace agentloc::net {

/// Readiness-notification seam under `SocketTransport` (DESIGN.md §17).
///
/// The transport's turn loop only ever asks one question — "which of my fds
/// are readable / writable right now?" — so the seam is exactly that: an
/// interest set (`add`/`modify`/`remove`) plus one blocking `wait` that
/// fills a caller-owned event vector. Both backends implement *level*
/// semantics (an fd stays ready until the condition is drained), which is
/// what the existing transport code assumes: `read_ready` may leave bytes
/// buffered in the kernel and must be called again on the next turn.
///
///  - `PollEventLoop`  — portable `poll(2)`; rebuilds its pollfd array from
///    the interest set each wait (the pre-seam behaviour, bit for bit).
///  - `EpollEventLoop` — Linux `epoll(7)`, level-triggered (no EPOLLET);
///    interest changes are O(1) `epoll_ctl` calls instead of a per-wait
///    array rebuild, which is what makes many-peer servers cheap.
///
/// Selection is runtime: `create(kAuto)` picks epoll where the kernel
/// supports it and falls back to poll elsewhere (macOS/CI parity), and the
/// `AGENTLOC_EVENT_BACKEND=poll|epoll` environment variable forces a
/// backend so the same test suite can pin each one.
class EventLoop {
 public:
  enum class Backend : std::uint8_t { kAuto, kPoll, kEpoll };

  /// One ready fd. `hangup` folds POLLHUP/POLLERR (EPOLLHUP/EPOLLERR):
  /// the consumer treats it like readability so the next read observes
  /// EOF/ECONNRESET and disconnects cleanly.
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool hangup = false;
  };

  virtual ~EventLoop() = default;

  /// Backend tag for banners/tests: "poll" or "epoll".
  virtual const char* name() const noexcept = 0;

  /// Start watching `fd`. False if the fd cannot be registered (epoll_ctl
  /// failure); callers treat that as a dead fd.
  virtual bool add(int fd, bool want_read, bool want_write) = 0;

  /// Change the interest set of a watched fd.
  virtual bool modify(int fd, bool want_read, bool want_write) = 0;

  /// Stop watching `fd`. Safe to call for fds that were never added.
  virtual void remove(int fd) = 0;

  /// Block up to `timeout_ms` (-1 = forever) and append ready fds to
  /// `out` (cleared first). Returns the ready count, 0 on timeout, -1 on
  /// error (errno preserved; EINTR is retried internally).
  virtual int wait(int timeout_ms, std::vector<Event>& out) = 0;

  /// Watched fd count.
  virtual std::size_t watched() const noexcept = 0;

  /// Whether this kernel offers epoll (compile-time *and* runtime probe).
  static bool epoll_supported();

  /// Backend forced via AGENTLOC_EVENT_BACKEND ("poll"/"epoll"), or kAuto
  /// when unset/unrecognized.
  static Backend env_backend();

  /// Build a backend. kAuto resolves env_backend() first, then prefers
  /// epoll where supported. Asking for kEpoll where unsupported falls back
  /// to poll rather than failing — callers can check `name()`.
  static std::unique_ptr<EventLoop> create(Backend preference = Backend::kAuto);
};

}  // namespace agentloc::net
