#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace agentloc::sim {

/// Handle to a scheduled event; lets the owner cancel it.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Single-threaded discrete-event simulator.
///
/// Every component of the simulated system — the network, agent platforms,
/// workload generators — schedules closures here. Events at the same
/// timestamp run in scheduling order (a monotone sequence number breaks
/// ties), which is what makes whole experiments deterministic for a given
/// seed.
///
/// The simulator is deliberately minimal: no threads, no real time. A full
/// Experiment-I sweep executes millions of events in well under a second.
class Simulator {
 public:
  using Handler = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const noexcept { return now_; }

  /// Schedule `handler` to run at absolute time `when` (>= now, else it is
  /// clamped to now: events never run in the past).
  EventId schedule_at(SimTime when, Handler handler);

  /// Schedule `handler` to run `delay` from now.
  EventId schedule_after(SimTime delay, Handler handler);

  /// Cancel a pending event. Returns false when the event already ran,
  /// was cancelled before, or never existed.
  bool cancel(EventId id);

  /// Run until the queue drains or `deadline` passes. Events scheduled
  /// exactly at the deadline still run. Returns the number of events
  /// executed.
  std::size_t run_until(SimTime deadline);

  /// Run until the queue drains.
  std::size_t run() { return run_until(SimTime::infinity()); }

  /// Execute exactly one event if any is pending. Returns whether one ran.
  bool step();

  /// Ask `run_until`/`run` to return after the current event completes.
  void request_stop() noexcept { stop_requested_ = true; }

  bool empty() const noexcept { return queue_.size() == cancelled_.size(); }
  std::size_t pending() const noexcept {
    return queue_.size() - cancelled_.size();
  }
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Entry {
    SimTime when;
    EventId id;
    // Ordered min-first by (when, id): later-scheduled same-time events run
    // after earlier ones.
    bool operator>(const Entry& other) const noexcept {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  SimTime now_ = SimTime::zero();
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  // Handlers are kept out of the heap entries so cancellation can release
  // captured resources immediately.
  std::unordered_map<EventId, Handler> handlers_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace agentloc::sim
