#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/inline_function.hpp"

namespace agentloc::sim {

/// Handle to a scheduled event; lets the owner cancel it.
///
/// Packs a slab slot index (low 32 bits) and that slot's generation at
/// scheduling time (high 32 bits). Generations start at 1, so a valid id is
/// never 0 and `kInvalidEvent` can stay the all-zero sentinel.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Single-threaded discrete-event simulator.
///
/// Every component of the simulated system — the network, agent platforms,
/// workload generators — schedules closures here. Events at the same
/// timestamp run in scheduling order (a monotone sequence number breaks
/// ties), which is what makes whole experiments deterministic for a given
/// seed.
///
/// Internally events live in a slab of pooled records: scheduling reuses a
/// free slot (no per-event allocation once the pool is warm — handlers small
/// enough for the inline buffer never touch the heap at all), and `cancel`
/// is an O(1) generation bump that invalidates the heap entry lazily. Run
/// many simulators on different threads for parallel sweeps; a single
/// instance is strictly single-threaded.
class Simulator {
 public:
  /// Handler storage is small-buffer-optimized: captures up to 48 bytes
  /// (e.g. the network's delivery closure) are stored inline in the event
  /// record; larger ones fall back to one heap allocation.
  using Handler = util::InlineFunction<void(), 48>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const noexcept { return now_; }

  /// Schedule `handler` to run at absolute time `when` (>= now, else it is
  /// clamped to now: events never run in the past).
  EventId schedule_at(SimTime when, Handler handler);

  /// Schedule `handler` to run `delay` from now.
  EventId schedule_after(SimTime delay, Handler handler);

  /// Cancel a pending event, destroying its handler (and therefore releasing
  /// any captured resources) immediately. Returns false when the event
  /// already ran, was cancelled before, or never existed.
  bool cancel(EventId id);

  /// Run until the queue drains or `deadline` passes. Events scheduled
  /// exactly at the deadline still run. Returns the number of events
  /// executed.
  std::size_t run_until(SimTime deadline);

  /// Run until the queue drains.
  std::size_t run() { return run_until(SimTime::infinity()); }

  /// Execute exactly one event if any is pending. Returns whether one ran.
  bool step();

  /// Timestamp of the next live event, or `SimTime::infinity()` on an empty
  /// queue. Used by the parallel LP scheduler to compute the global safe
  /// window; sweeps cancelled corpses off the heap top as a side effect
  /// (which is why it is not const).
  SimTime next_event_time();

  /// Ask `run_until`/`run` to return after the current event completes.
  void request_stop() noexcept { stop_requested_ = true; }

  /// Capacity hint: pre-size the event pool and heap for `events` concurrent
  /// pending events so a steady-state run never regrows them mid-flight.
  void reserve(std::size_t events);

  bool empty() const noexcept { return live_ == 0; }
  std::size_t pending() const noexcept { return live_; }
  std::uint64_t executed() const noexcept { return executed_; }

  /// True while `id` is scheduled and has neither run nor been cancelled
  /// (execution releases the slot before invoking the handler, so an event
  /// is no longer pending while its own handler runs).
  bool pending(EventId id) const noexcept {
    const auto slot = static_cast<std::uint32_t>(id);
    const auto generation = static_cast<std::uint32_t>(id >> 32);
    return slot < records_.size() && records_[slot].armed &&
           records_[slot].generation == generation;
  }

  /// Monotone stamp that advances exactly when an event is scheduled.
  /// Callers use it to prove "nothing was scheduled since": the agent
  /// platform coalesces same-instant deliveries only when the stamp is
  /// unchanged, which keeps merged events order-identical to unmerged ones.
  std::uint64_t schedule_stamp() const noexcept { return next_seq_; }

  /// High-water mark of the event pool (diagnostics; pairs with `reserve`).
  std::size_t pool_size() const noexcept { return records_.size(); }

 private:
  static constexpr std::uint32_t kNoFreeSlot = UINT32_MAX;

  /// One pooled event. A slot's generation is bumped whenever the event it
  /// held is cancelled or executed, so stale `EventId`s and stale heap
  /// entries referring to an earlier occupant are detected in O(1).
  struct Record {
    Handler handler;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNoFreeSlot;
    bool armed = false;
  };

  /// Heap entries are plain 24-byte values ordered min-first by
  /// (when, seq): later-scheduled same-time events run after earlier ones.
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct EntryAfter {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  /// Return the slot to the free list and invalidate outstanding ids.
  void release_slot(std::uint32_t slot, Record& record) noexcept;

  /// Pop heap entries whose slot was cancelled/reused since they were
  /// pushed, leaving a live event (or an empty heap) on top.
  void drop_stale_top();

  /// When cancelled entries outnumber live ones, sweep them out and
  /// re-heapify. Amortized O(1) per cancel; keeps the heap depth set by the
  /// *live* event count even when cancelled timeouts vastly outnumber it.
  void maybe_compact();

  void pop_top();

  /// Pop and run the heap top; the caller guarantees it is live.
  void execute_top();

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  bool stop_requested_ = false;
  std::vector<Record> records_;
  std::uint32_t free_head_ = kNoFreeSlot;
  std::vector<HeapEntry> heap_;
  // Exact count of heap entries orphaned by cancel() (execution pops its
  // entry eagerly, so cancellation is the only source of stale entries).
  std::size_t stale_in_heap_ = 0;
};

}  // namespace agentloc::sim
