#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "util/ring_buffer.hpp"

namespace agentloc::util {
class ThreadPool;
}

namespace agentloc::sim {

/// Conservatively synchronized parallel discrete-event engine: one logical
/// process (LP) per simulated node, each owning a private slab `Simulator`,
/// advanced in *safe windows* derived from the network's minimum cross-node
/// latency (DESIGN.md §13).
///
/// The protocol is the windowed variant of conservative synchronization:
/// with every cross-LP message delayed by at least `lookahead`, all events
/// in the half-open window `[S, S + lookahead)` — where `S` is the global
/// minimum pending-event time — are causally independent across LPs and can
/// execute concurrently. Each window runs three steps:
///
///   1. **exchange** (serial): envelopes sent during the previous window are
///      moved from per-LP SPSC outboxes into the destination LPs' staged
///      heaps, ordered by the deterministic key `(time, src LP, send seq)`.
///   2. **inject + execute** (parallel): every LP with work below the window
///      end injects its safe staged arrivals in key order into its local
///      simulator — which then interleaves them with local events under the
///      engine's (time, sequence) contract — and runs to the window end.
///   3. **advance**: the next window start is the new global minimum; since
///      every event below the old window end has executed and every send
///      carries at least `lookahead` of delay, the start strictly increases.
///
/// **Determinism.** Nothing in the schedule depends on thread timing: window
/// boundaries are pure functions of event timestamps, staged arrivals are
/// injected in a deterministic total order, and each LP's simulator is
/// single-threaded within a window. A run with any worker count is therefore
/// bit-for-bit identical to the sequential driver (`threads = 1`) — the same
/// contract `workload::run_parallel` asserts for seed sweeps, applied inside
/// one run. Per-LP randomness must come from per-LP streams (split from the
/// run seed by the caller) so draw order is also thread-count-invariant.
///
/// **Zero lookahead.** A model that cannot promise a positive cross-node
/// floor degenerates the window to a single nanosecond tick and forces the
/// sequential driver (`threaded()` returns false); every cross-LP message
/// then costs one delivery round at an unchanged timestamp. Callers that
/// want the legacy single-simulator engine instead should select it
/// themselves (see `workload::run_experiment`).
class ParallelSimulator {
 public:
  using LpId = std::uint32_t;
  using Handler = Simulator::Handler;

  struct Config {
    /// Number of logical processes (one per simulated node).
    std::size_t lps = 1;

    /// Worker threads executing LP windows (clamped to `lps`; forced to 1
    /// when `lookahead` is zero). 1 = sequential driver, same results.
    std::size_t threads = 1;

    /// Conservative lower bound on every cross-LP message delay, normally
    /// `net::LatencyModel::min_latency()`.
    SimTime lookahead = SimTime::zero();

    /// Slots per LP outbox ring before sends spill to a side vector.
    std::size_t channel_capacity = 1024;
  };

  explicit ParallelSimulator(Config config);
  ~ParallelSimulator();
  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  std::size_t lp_count() const noexcept { return lps_.size(); }

  /// Effective worker count after clamping (1 when lookahead is zero).
  std::size_t threads() const noexcept { return workers_; }
  bool threaded() const noexcept { return workers_ > 1; }
  SimTime lookahead() const noexcept { return config_.lookahead; }

  /// The LP's private simulator, for local (same-node) scheduling. During a
  /// run, LP `id` may only be touched from its own execution context.
  Simulator& lp(LpId id) { return lps_[id].sim; }

  /// Send a cross-LP message: run `handler` on `dst` at absolute time
  /// `when`. Must be called either before `run_until` (setup) or from code
  /// executing on LP `src`; with nonzero lookahead, `when` must lie at or
  /// beyond the current window end — which any delay >= lookahead
  /// guarantees. `seq` tie-breaking makes same-timestamp arrivals replay in
  /// (time, src, send-order) order, independent of thread interleaving.
  void post(LpId src, LpId dst, SimTime when, Handler handler);

  /// Run every LP until `deadline` (inclusive, like `Simulator::run_until`)
  /// or until the queues drain or `request_stop` is observed at a window
  /// boundary. Returns the number of events executed across all LPs during
  /// this call.
  std::uint64_t run_until(SimTime deadline);

  /// Ask the scheduler to stop after the current window. Safe to call from
  /// any LP handler (it is an atomic flag read at window boundaries, so the
  /// stopping window is deterministic).
  void request_stop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
  }

  /// Total events executed across all LPs since construction. Like the other
  /// counters, only meaningful between `run_until` calls (per-LP state is
  /// owned by worker threads during a window).
  std::uint64_t executed() const noexcept;

  /// Synchronization rounds completed (diagnostics: events per window is
  /// the available parallelism).
  std::uint64_t windows() const noexcept { return windows_; }

  /// Envelopes that crossed an LP boundary.
  std::uint64_t cross_lp_messages() const noexcept;

  /// Envelopes that overflowed an outbox ring into its spill vector
  /// (diagnostics: a persistently nonzero rate means `channel_capacity` is
  /// undersized for the traffic).
  std::uint64_t channel_spills() const noexcept;

 private:
  /// One cross-LP message. Ordering key is (when, src, seq); `seq` is the
  /// sender's monotone send counter, so the key is unique and identical on
  /// every run.
  struct Envelope {
    SimTime when;
    LpId src = 0;
    LpId dst = 0;
    std::uint64_t seq = 0;
    Handler handler;
  };

  /// `std::push_heap`-style min-heap order (greater-than comparator).
  struct EnvelopeAfter {
    bool operator()(const Envelope& a, const Envelope& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      if (a.src != b.src) return a.src > b.src;
      return a.seq > b.seq;
    }
  };

  struct Lp {
    Simulator sim;

    /// Outbox: filled by this LP's worker during a window, drained by the
    /// serial exchange step between windows (the barrier provides the
    /// happens-before; the ring keeps the common path allocation-free).
    std::unique_ptr<util::SpscRing<Envelope>> outbox;
    std::vector<Envelope> spill;
    std::uint64_t send_seq = 0;

    /// Single-writer counters (this LP's execution context), summed by the
    /// engine-level accessors between windows.
    std::uint64_t sent = 0;
    std::uint64_t spilled = 0;

    /// Arrivals waiting for their timestamp to become safe, min-heap by
    /// (when, src, seq).
    std::vector<Envelope> staged;

    /// min(local next event, staged top), refreshed each window.
    SimTime next_time = SimTime::infinity();
  };

  void stage(Envelope&& envelope);
  void exchange();
  void refresh_next_times();
  SimTime global_min_next() const;
  void run_lp(Lp& lp, SimTime end_exclusive);
  void run_window(SimTime end_exclusive);

  Config config_;
  std::size_t workers_ = 1;
  std::vector<Lp> lps_;
  std::vector<std::uint32_t> active_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::atomic<bool> stop_{false};
  bool in_window_ = false;
  SimTime window_start_ = SimTime::zero();
  SimTime window_end_ = SimTime::zero();
  std::uint64_t windows_ = 0;
};

}  // namespace agentloc::sim
