#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace agentloc::sim {

/// A point (or span) on the simulated clock.
///
/// Stored as integer nanoseconds so event ordering is exact and runs replay
/// bit-identically; helpers convert to the milliseconds in which the paper
/// reports location times. Arithmetic is closed over the type — a difference
/// of two times is again a `SimTime` used as a duration, which matches how
/// the experiment code consumes it.
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime nanos(std::int64_t n) { return SimTime(n); }
  static constexpr SimTime micros(std::int64_t us) {
    return SimTime(us * 1000);
  }
  static constexpr SimTime millis(double ms) {
    return SimTime(static_cast<std::int64_t>(ms * 1e6));
  }
  static constexpr SimTime seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr SimTime zero() { return SimTime(0); }

  /// Largest representable time; used as "no deadline".
  static constexpr SimTime infinity() {
    return SimTime(INT64_MAX);
  }

  constexpr std::int64_t as_nanos() const { return nanos_; }
  constexpr double as_micros() const { return static_cast<double>(nanos_) / 1e3; }
  constexpr double as_millis() const { return static_cast<double>(nanos_) / 1e6; }
  constexpr double as_seconds() const { return static_cast<double>(nanos_) / 1e9; }

  constexpr SimTime operator+(SimTime other) const {
    return SimTime(nanos_ + other.nanos_);
  }
  constexpr SimTime operator-(SimTime other) const {
    return SimTime(nanos_ - other.nanos_);
  }
  constexpr SimTime operator*(std::int64_t k) const {
    return SimTime(nanos_ * k);
  }
  constexpr SimTime operator/(std::int64_t k) const {
    return SimTime(nanos_ / k);
  }
  SimTime& operator+=(SimTime other) {
    nanos_ += other.nanos_;
    return *this;
  }
  SimTime& operator-=(SimTime other) {
    nanos_ -= other.nanos_;
    return *this;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  /// "12.345ms" rendering for logs.
  std::string str() const;

 private:
  explicit constexpr SimTime(std::int64_t nanos) : nanos_(nanos) {}
  std::int64_t nanos_ = 0;
};

std::ostream& operator<<(std::ostream& os, SimTime t);

}  // namespace agentloc::sim
