#pragma once

#include <functional>

#include "sim/simulator.hpp"

namespace agentloc::sim {

/// Re-arming periodic callback.
///
/// Wraps the schedule/cancel dance components otherwise repeat: IAgents use
/// one to roll their load-rate windows, workload drivers use one to emit
/// queries at a fixed rate. The timer stops cleanly when destroyed, so it can
/// be a plain member of the owning object.
class PeriodicTimer {
 public:
  using Tick = std::function<void()>;

  PeriodicTimer(Simulator& simulator, SimTime period, Tick tick);
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;
  ~PeriodicTimer();

  /// Arm (or re-arm) the timer; first tick fires one period from now.
  void start();

  /// Stop without destroying; `start` re-arms.
  void stop();

  bool running() const noexcept { return event_ != kInvalidEvent; }

  SimTime period() const noexcept { return period_; }

  /// Change the period; takes effect from the next arming.
  void set_period(SimTime period) noexcept { period_ = period; }

 private:
  void arm();

  Simulator& simulator_;
  SimTime period_;
  Tick tick_;
  EventId event_ = kInvalidEvent;
};

/// One-shot cancellable timeout with the same ownership story.
class Timeout {
 public:
  explicit Timeout(Simulator& simulator) : simulator_(simulator) {}
  Timeout(const Timeout&) = delete;
  Timeout& operator=(const Timeout&) = delete;
  ~Timeout() { cancel(); }

  /// Schedule `fn` after `delay`, cancelling any previously pending arm.
  void arm(SimTime delay, std::function<void()> fn);

  void cancel();

  bool pending() const noexcept { return event_ != kInvalidEvent; }

 private:
  Simulator& simulator_;
  EventId event_ = kInvalidEvent;
};

}  // namespace agentloc::sim
