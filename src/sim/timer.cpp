#include "sim/timer.hpp"

#include <utility>

namespace agentloc::sim {

PeriodicTimer::PeriodicTimer(Simulator& simulator, SimTime period, Tick tick)
    : simulator_(simulator), period_(period), tick_(std::move(tick)) {}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::start() {
  stop();
  arm();
}

void PeriodicTimer::stop() {
  if (event_ != kInvalidEvent) {
    simulator_.cancel(event_);
    event_ = kInvalidEvent;
  }
}

void PeriodicTimer::arm() {
  event_ = simulator_.schedule_after(period_, [this] {
    event_ = kInvalidEvent;
    // Re-arm before the tick so the callback may call stop() to cancel the
    // next firing.
    arm();
    tick_();
  });
}

void Timeout::arm(SimTime delay, std::function<void()> fn) {
  cancel();
  event_ = simulator_.schedule_after(
      delay, [this, fn = std::move(fn)] {
        event_ = kInvalidEvent;
        fn();
      });
}

void Timeout::cancel() {
  if (event_ != kInvalidEvent) {
    simulator_.cancel(event_);
    event_ = kInvalidEvent;
  }
}

}  // namespace agentloc::sim
