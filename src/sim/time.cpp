#include "sim/time.hpp"

#include <cstdio>
#include <ostream>

namespace agentloc::sim {

std::string SimTime::str() const {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3fms", as_millis());
  return buf;
}

std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.str();
}

}  // namespace agentloc::sim
