#include "sim/simulator.hpp"

#include <utility>

namespace agentloc::sim {

EventId Simulator::schedule_at(SimTime when, Handler handler) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{when, id});
  handlers_.emplace(id, std::move(handler));
  return id;
}

EventId Simulator::schedule_after(SimTime delay, Handler handler) {
  return schedule_at(now_ + delay, std::move(handler));
}

bool Simulator::cancel(EventId id) {
  const auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    if (const auto cancelled = cancelled_.find(entry.id);
        cancelled != cancelled_.end()) {
      cancelled_.erase(cancelled);
      continue;
    }
    const auto it = handlers_.find(entry.id);
    // Invariant: a queued, non-cancelled id always has a handler.
    Handler handler = std::move(it->second);
    handlers_.erase(it);
    now_ = entry.when;
    ++executed_;
    handler();
    return true;
  }
  return false;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t count = 0;
  stop_requested_ = false;
  for (;;) {
    // Skip cancelled entries without advancing time.
    while (!queue_.empty() && cancelled_.contains(queue_.top().id)) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().when > deadline || stop_requested_) {
      // Advance the clock to the deadline so back-to-back run_until calls
      // observe monotone time even across idle stretches.
      if (deadline != SimTime::infinity() && deadline > now_ &&
          !stop_requested_) {
        now_ = deadline;
      }
      return count;
    }
    step();
    ++count;
  }
}

}  // namespace agentloc::sim
