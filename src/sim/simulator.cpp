#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace agentloc::sim {

EventId Simulator::schedule_at(SimTime when, Handler handler) {
  if (when < now_) when = now_;

  std::uint32_t slot;
  if (free_head_ != kNoFreeSlot) {
    slot = free_head_;
    free_head_ = records_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(records_.size());
    records_.emplace_back();
  }
  Record& record = records_[slot];
  record.handler = std::move(handler);
  record.armed = true;

  heap_.push_back(HeapEntry{when, next_seq_++, slot, record.generation});
  std::push_heap(heap_.begin(), heap_.end(), EntryAfter{});
  ++live_;
  return make_id(slot, record.generation);
}

EventId Simulator::schedule_after(SimTime delay, Handler handler) {
  return schedule_at(now_ + delay, std::move(handler));
}

bool Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= records_.size()) return false;
  Record& record = records_[slot];
  if (!record.armed || record.generation != generation) return false;
  record.handler.reset();  // release captured resources immediately
  release_slot(slot, record);
  --live_;
  ++stale_in_heap_;
  maybe_compact();
  return true;
}

void Simulator::maybe_compact() {
  if (heap_.size() < 64 || stale_in_heap_ * 2 <= heap_.size()) return;
  const auto stale = [this](const HeapEntry& entry) {
    const Record& record = records_[entry.slot];
    return !record.armed || record.generation != entry.generation;
  };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), stale), heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), EntryAfter{});
  stale_in_heap_ = 0;
}

void Simulator::release_slot(std::uint32_t slot, Record& record) noexcept {
  record.armed = false;
  // Bumping the generation orphans the heap entry (lazily discarded) and
  // every EventId handed out for this occupancy. Skip 0 on wrap so a live
  // id can never equal kInvalidEvent.
  if (++record.generation == 0) record.generation = 1;
  record.next_free = free_head_;
  free_head_ = slot;
}

void Simulator::drop_stale_top() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const Record& record = records_[top.slot];
    if (record.armed && record.generation == top.generation) return;
    pop_top();
    --stale_in_heap_;
  }
}

void Simulator::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
  heap_.pop_back();
}

bool Simulator::step() {
  drop_stale_top();
  if (heap_.empty()) return false;
  execute_top();
  return true;
}

SimTime Simulator::next_event_time() {
  drop_stale_top();
  return heap_.empty() ? SimTime::infinity() : heap_.front().when;
}

void Simulator::execute_top() {
  const HeapEntry top = heap_.front();
  pop_top();

  Record& record = records_[top.slot];
  // Move the handler out before running it: the handler may schedule new
  // events, which can reuse this very slot or grow the pool.
  Handler handler = std::move(record.handler);
  release_slot(top.slot, record);
  --live_;

  now_ = top.when;
  ++executed_;
  handler();
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t count = 0;
  stop_requested_ = false;
  for (;;) {
    // Skip cancelled entries without advancing time.
    drop_stale_top();
    if (heap_.empty() || heap_.front().when > deadline || stop_requested_) {
      // Advance the clock to the deadline so back-to-back run_until calls
      // observe monotone time even across idle stretches.
      if (deadline != SimTime::infinity() && deadline > now_ &&
          !stop_requested_) {
        now_ = deadline;
      }
      return count;
    }
    execute_top();  // top is live: drop_stale_top just ran
    ++count;
  }
}

void Simulator::reserve(std::size_t events) {
  records_.reserve(events);
  heap_.reserve(events);
}

}  // namespace agentloc::sim
