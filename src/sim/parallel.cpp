#include "sim/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <exception>

#include "util/thread_pool.hpp"

namespace agentloc::sim {

namespace {

ParallelSimulator::Config sanitized(ParallelSimulator::Config config) {
  if (config.lps == 0) config.lps = 1;
  if (config.threads == 0) config.threads = 1;
  if (config.channel_capacity == 0) config.channel_capacity = 1;
  return config;
}

}  // namespace

ParallelSimulator::ParallelSimulator(Config config)
    : config_(sanitized(config)), lps_(config_.lps) {
  workers_ = std::min(config_.threads, lps_.size());
  // Zero lookahead gives one-nanosecond windows: correct, but every window
  // is a synchronization round, so threading would be all barrier and no
  // work. Fall back to the sequential driver (same results by the
  // determinism contract).
  if (config_.lookahead <= SimTime::zero()) workers_ = 1;
  for (Lp& lp : lps_) {
    lp.outbox =
        std::make_unique<util::SpscRing<Envelope>>(config_.channel_capacity);
  }
  active_.reserve(lps_.size());
}

ParallelSimulator::~ParallelSimulator() = default;

void ParallelSimulator::post(LpId src, LpId dst, SimTime when,
                             Handler handler) {
  assert(src < lps_.size() && dst < lps_.size());
  Lp& sender = lps_[src];
  Envelope envelope;
  envelope.when = when;
  envelope.src = src;
  envelope.dst = dst;
  envelope.seq = sender.send_seq++;
  envelope.handler = std::move(handler);
  ++sender.sent;

  if (!in_window_) {
    // Setup-time post from the driver thread: no window is executing, so
    // the staged heap can be reached directly.
    stage(std::move(envelope));
    return;
  }
  assert(when >= window_start_ &&
         "cross-LP message posted into the executing window's past");
  assert((config_.lookahead <= SimTime::zero() || when >= window_end_) &&
         "cross-LP message undercuts the lookahead bound");
  if (!sender.outbox->try_push(envelope)) {
    sender.spill.push_back(std::move(envelope));
    ++sender.spilled;
  }
}

void ParallelSimulator::stage(Envelope&& envelope) {
  std::vector<Envelope>& staged = lps_[envelope.dst].staged;
  staged.push_back(std::move(envelope));
  std::push_heap(staged.begin(), staged.end(), EnvelopeAfter{});
}

void ParallelSimulator::exchange() {
  // Serial, between windows: the dispatch barrier ordered every producer's
  // ring/spill writes before this read. Draining ring first, then spill,
  // replays each sender's envelopes in send order; the (when, src, seq) key
  // makes the destination order independent of drain order anyway.
  for (Lp& lp : lps_) {
    Envelope envelope;
    while (lp.outbox->try_pop(envelope)) stage(std::move(envelope));
    for (Envelope& spilled : lp.spill) stage(std::move(spilled));
    lp.spill.clear();
  }
}

void ParallelSimulator::refresh_next_times() {
  for (Lp& lp : lps_) {
    SimTime next = lp.sim.next_event_time();
    if (!lp.staged.empty() && lp.staged.front().when < next) {
      next = lp.staged.front().when;
    }
    lp.next_time = next;
  }
}

SimTime ParallelSimulator::global_min_next() const {
  SimTime min = SimTime::infinity();
  for (const Lp& lp : lps_) min = std::min(min, lp.next_time);
  return min;
}

void ParallelSimulator::run_lp(Lp& lp, SimTime end_exclusive) {
  // Inject safe arrivals in (when, src, seq) order before any of them can
  // run: the local simulator's (time, scheduling-seq) contract then fixes
  // one total order over arrivals and local events that no thread
  // interleaving can perturb.
  while (!lp.staged.empty() && lp.staged.front().when < end_exclusive) {
    std::pop_heap(lp.staged.begin(), lp.staged.end(), EnvelopeAfter{});
    Envelope envelope = std::move(lp.staged.back());
    lp.staged.pop_back();
    assert(envelope.when >= window_start_ &&
           "staged arrival in the window's past despite lookahead");
    lp.sim.schedule_at(envelope.when, std::move(envelope.handler));
  }
  lp.sim.run_until(end_exclusive - SimTime::nanos(1));
}

void ParallelSimulator::run_window(SimTime end_exclusive) {
  if (workers_ > 1 && active_.size() > 1 && !pool_) {
    pool_ = std::make_unique<util::ThreadPool>(workers_);
  }
  if (workers_ > 1 && active_.size() > 1) {
    const std::size_t chunks = std::min(workers_, active_.size());
    std::vector<std::exception_ptr> errors(chunks);
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      pool_->submit([this, chunk, chunks, end_exclusive, &errors] {
        try {
          for (std::size_t i = chunk; i < active_.size(); i += chunks) {
            run_lp(lps_[active_[i]], end_exclusive);
          }
        } catch (...) {
          errors[chunk] = std::current_exception();
        }
      });
    }
    pool_->wait_idle();
    for (std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  } else {
    for (std::uint32_t id : active_) run_lp(lps_[id], end_exclusive);
  }
}

std::uint64_t ParallelSimulator::run_until(SimTime deadline) {
  const std::uint64_t before = executed();
  stop_.store(false, std::memory_order_relaxed);
  const SimTime step = std::max(config_.lookahead, SimTime::nanos(1));
  // `deadline` is inclusive (an event exactly at the deadline runs), and
  // windows are half-open, so the last window may end one past it.
  const SimTime limit = deadline == SimTime::infinity()
                            ? SimTime::infinity()
                            : deadline + SimTime::nanos(1);

  for (;;) {
    if (stop_.load(std::memory_order_relaxed)) break;
    exchange();
    refresh_next_times();
    const SimTime start = global_min_next();
    if (start == SimTime::infinity() || start > deadline) break;

    window_start_ = start;
    window_end_ = std::min(start + step, limit);
    assert(window_end_ > window_start_);
    active_.clear();
    for (std::uint32_t id = 0; id < lps_.size(); ++id) {
      if (lps_[id].next_time < window_end_) active_.push_back(id);
    }

    in_window_ = true;
    run_window(window_end_);
    in_window_ = false;
    ++windows_;
  }

  // Idle LPs never saw a window reaching the deadline; advance their clocks
  // so `lp(i).now()` is monotone across back-to-back calls, matching
  // `Simulator::run_until` semantics. (Nothing executes: every pending
  // event, staged arrivals included, is beyond the deadline.)
  if (deadline != SimTime::infinity() &&
      !stop_.load(std::memory_order_relaxed)) {
    for (Lp& lp : lps_) lp.sim.run_until(deadline);
  }
  return executed() - before;
}

std::uint64_t ParallelSimulator::executed() const noexcept {
  std::uint64_t total = 0;
  for (const Lp& lp : lps_) total += lp.sim.executed();
  return total;
}

std::uint64_t ParallelSimulator::cross_lp_messages() const noexcept {
  std::uint64_t total = 0;
  for (const Lp& lp : lps_) total += lp.sent;
  return total;
}

std::uint64_t ParallelSimulator::channel_spills() const noexcept {
  std::uint64_t total = 0;
  for (const Lp& lp : lps_) total += lp.spilled;
  return total;
}

}  // namespace agentloc::sim
