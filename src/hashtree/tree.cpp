#include "hashtree/tree.hpp"

#include <algorithm>
#include <tuple>
#include <stdexcept>

#include "hashtree/router.hpp"

// The node pool below recycles fixed-size blocks through free lists and never
// returns chunks to the OS; under sanitizers that would mask use-after-free
// on nodes, so the pool compiles down to plain new/delete there.
#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(AGENTLOC_SANITIZE) || defined(__SANITIZE_ADDRESS__) || \
    defined(__SANITIZE_THREAD__) || __has_feature(address_sanitizer) || \
    __has_feature(thread_sanitizer)
#define AGENTLOC_NODE_POOL 0
#else
#define AGENTLOC_NODE_POOL 1
#endif

#if AGENTLOC_NODE_POOL
#include <mutex>
#endif

namespace agentloc::hashtree {

#if AGENTLOC_NODE_POOL
namespace {

struct FreeBlock {
  FreeBlock* next;
};

/// Blocks from threads that exited; any thread may adopt them. Leaked on
/// purpose (never destroyed) so no destruction-order hazard exists between
/// this list and the thread-local pools that push into it.
struct OrphanList {
  std::mutex mu;
  FreeBlock* head = nullptr;
};

OrphanList& orphans() {
  static OrphanList* list = new OrphanList;
  return *list;
}

constexpr std::size_t kChunkBlocks = 256;

/// Per-thread free list plus a bump cursor over the current chunk. Chunks are
/// deliberately never freed, so a block may safely migrate between threads'
/// free lists (allocate on A, free on B). On thread exit the remaining blocks
/// are spliced into the orphan list for other threads to reuse.
struct NodePool {
  FreeBlock* free = nullptr;
  std::byte* cursor = nullptr;
  std::size_t left = 0;
  std::size_t block_size = 0;

  ~NodePool() {
    while (left > 0) {
      auto* block = reinterpret_cast<FreeBlock*>(cursor);
      cursor += block_size;
      --left;
      block->next = free;
      free = block;
    }
    if (free == nullptr) return;
    FreeBlock* tail = free;
    while (tail->next != nullptr) tail = tail->next;
    std::lock_guard<std::mutex> lock(orphans().mu);
    tail->next = orphans().head;
    orphans().head = free;
  }
};

NodePool& node_pool() {
  thread_local NodePool pool;
  return pool;
}

}  // namespace

void* HashTree::Node::operator new(std::size_t size) {
  NodePool& pool = node_pool();
  if (pool.free == nullptr && pool.left == 0) {
    {
      std::lock_guard<std::mutex> lock(orphans().mu);
      pool.free = orphans().head;
      orphans().head = nullptr;
    }
    if (pool.free == nullptr) {
      pool.cursor = static_cast<std::byte*>(::operator new(kChunkBlocks * size));
      pool.left = kChunkBlocks;
      pool.block_size = size;
    }
  }
  if (pool.free != nullptr) {
    FreeBlock* block = pool.free;
    pool.free = block->next;
    return block;
  }
  void* out = pool.cursor;
  pool.cursor += size;
  --pool.left;
  return out;
}

void HashTree::Node::operator delete(void* ptr) noexcept {
  if (ptr == nullptr) return;
  auto* block = static_cast<FreeBlock*>(ptr);
  NodePool& pool = node_pool();
  block->next = pool.free;
  pool.free = block;
}
#else
void* HashTree::Node::operator new(std::size_t size) {
  return ::operator new(size);
}

void HashTree::Node::operator delete(void* ptr) noexcept {
  ::operator delete(ptr);
}
#endif  // AGENTLOC_NODE_POOL

HashTree::HashTree(HashTree&&) noexcept = default;
HashTree& HashTree::operator=(HashTree&&) noexcept = default;
HashTree::~HashTree() = default;

HashTree::HashTree(IAgentId initial, NodeLocation location) {
  if (initial == kNoIAgent) {
    throw std::invalid_argument("HashTree: initial IAgent id must be nonzero");
  }
  root_ = std::make_unique<Node>();
  root_->iagent = initial;
  root_->location = location;
  leaf_index_.emplace(initial, root_.get());
}

HashTree::HashTree(const HashTree& other) : version_(other.version_) {
  leaf_index_.reserve(other.leaf_index_.size());
  root_ = clone_subtree(*other.root_, nullptr);
}

HashTree& HashTree::operator=(const HashTree& other) {
  if (this == &other) return *this;
  version_ = other.version_;
  leaf_index_.clear();
  leaf_index_.reserve(other.leaf_index_.size());
  root_ = clone_subtree(*other.root_, nullptr);
  // The structure changed wholesale; a router compiled for the previous
  // structure may share the new version number, so drop it outright.
  router_.reset();
  return *this;
}

std::unique_ptr<HashTree::Node> HashTree::clone_subtree(const Node& node,
                                                        Node* parent) {
  // Preorder with an explicit stack of (source, destination) pairs: the
  // destination node is allocated when its parent is visited, so each visit
  // only fills fields and links children. Cloned leaves are registered in
  // `leaf_index_` on the spot — one walk builds both tree and index.
  auto copy = std::make_unique<Node>();
  copy->parent = parent;
  std::vector<std::pair<const Node*, Node*>> stack{{&node, copy.get()}};
  while (!stack.empty()) {
    const auto [src, dst] = stack.back();
    stack.pop_back();
    dst->label = src->label;
    dst->iagent = src->iagent;
    dst->location = src->location;
    if (src->is_leaf()) {
      leaf_index_.emplace(dst->iagent, dst);
    } else {
      dst->child[0] = std::make_unique<Node>();
      dst->child[1] = std::make_unique<Node>();
      dst->child[0]->parent = dst;
      dst->child[1]->parent = dst;
      stack.emplace_back(src->child[1].get(), dst->child[1].get());
      stack.emplace_back(src->child[0].get(), dst->child[0].get());
    }
  }
  return copy;
}

HashTree::Node* HashTree::leaf_for(IAgentId id) {
  Node* const* found = leaf_index_.find(id);
  if (found == nullptr) {
    throw std::out_of_range("HashTree: unknown IAgent id");
  }
  return *found;
}

const HashTree::Node* HashTree::leaf_for(IAgentId id) const {
  Node* const* found = leaf_index_.find(id);
  if (found == nullptr) {
    throw std::out_of_range("HashTree: unknown IAgent id");
  }
  return *found;
}

const HashTree::Node* HashTree::descend(
    const util::BitString& id_bits) const {
  const Node* node = root_.get();
  // Bits consumed so far; the root padding is skipped outright.
  std::size_t pos = root_->label.size();
  while (!node->is_leaf()) {
    // Missing bits (id shorter than the path) read as zero.
    const bool bit = pos < id_bits.size() && id_bits[pos];
    const Node* next = node->child[bit ? 1 : 0].get();
    pos += next->label.size();  // valid bit + padding of the taken edge
    node = next;
  }
  return node;
}

const CompiledRouter& HashTree::router() const {
  if (router_ == nullptr) router_ = std::make_unique<CompiledRouter>();
  if (!router_->fresh(*this)) router_->rebuild(*this);
  return *router_;
}

CompiledRouter* HashTree::patchable_router() noexcept {
  return incremental_router_ && router_ != nullptr && router_->fresh(*this)
             ? router_.get()
             : nullptr;
}

std::uint32_t HashTree::consumed_bits(const Node* leaf) noexcept {
  std::uint32_t bits = 0;
  for (const Node* node = leaf; node != nullptr; node = node->parent) {
    bits += static_cast<std::uint32_t>(node->label.size());
  }
  return bits;
}

HashTree::Target HashTree::lookup(const util::BitString& id_bits) const {
  return router().route(id_bits);
}

HashTree::Target HashTree::lookup_id(std::uint64_t id) const {
  return router().route_id(id);
}

HashTree::Target HashTree::lookup_walk(const util::BitString& id_bits) const {
  const Node* leaf = descend(id_bits);
  return Target{leaf->iagent, leaf->location};
}

bool HashTree::compatible(const util::BitString& id_bits,
                          IAgentId leaf) const {
  // Paper §3: a prefix is compatible with a hyper-label iff the valid bit of
  // each label equals the id bit at the label's position within the
  // hyper-label. The root padding contributes no valid bit. Implemented over
  // the node path directly (no label copies) and independently of both
  // lookup paths; property tests assert all three agree.
  const auto path = path_to(leaf_for(leaf));
  std::size_t pos = 0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) {
      const bool id_bit = pos < id_bits.size() && id_bits[pos];
      if (path[i]->label[0] != id_bit) return false;
    }
    pos += path[i]->label.size();
  }
  return true;
}

NodeLocation HashTree::location_of(IAgentId leaf) const {
  return leaf_for(leaf)->location;
}

void HashTree::set_location(IAgentId leaf, NodeLocation location) {
  CompiledRouter* router = patchable_router();
  leaf_for(leaf)->location = location;
  bump_version();
  if (router != nullptr) router->patch_set_location(leaf, location, version_);
}

std::vector<const HashTree::Node*> HashTree::path_to(const Node* leaf) const {
  std::vector<const Node*> path;
  for (const Node* node = leaf; node != nullptr; node = node->parent) {
    path.push_back(node);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<util::BitString> HashTree::hyper_label_segments(
    IAgentId leaf) const {
  const auto path = path_to(leaf_for(leaf));
  std::vector<util::BitString> segments;
  segments.reserve(path.size());
  for (const Node* node : path) segments.push_back(node->label);
  return segments;
}

std::vector<std::pair<std::uint32_t, bool>> HashTree::valid_bits(
    IAgentId leaf) const {
  const auto path = path_to(leaf_for(leaf));
  std::vector<std::pair<std::uint32_t, bool>> out;
  out.reserve(path.size() - 1);
  std::uint32_t pos = 0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out.emplace_back(pos, path[i]->label[0]);
    pos += static_cast<std::uint32_t>(path[i]->label.size());
  }
  return out;
}

bool HashTree::label_bit(IAgentId leaf, const SplitPoint& point) const {
  const auto path = path_to(leaf_for(leaf));
  if (point.segment >= path.size()) {
    throw std::out_of_range("HashTree::label_bit: segment");
  }
  const util::BitString& label = path[point.segment]->label;
  if (point.bit >= label.size()) {
    throw std::out_of_range("HashTree::label_bit: bit");
  }
  return label[point.bit];
}

std::string HashTree::hyper_label(IAgentId leaf) const {
  const auto segments = hyper_label_segments(leaf);
  std::string out;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (i == 0) {
      if (segments[0].empty()) continue;
      out += "(pad " + segments[0].to_string() + ")";
      continue;
    }
    if (!out.empty()) out += '.';
    out += segments[i].to_string();
  }
  return out;
}

std::size_t HashTree::depth_bits(IAgentId leaf) const {
  std::size_t bits = 0;
  for (const auto& segment : hyper_label_segments(leaf)) {
    bits += segment.size();
  }
  return bits;
}

std::size_t HashTree::height() const {
  std::size_t best = 0;
  std::vector<std::pair<const Node*, std::size_t>> stack{{root_.get(), 0}};
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    if (node->is_leaf()) {
      best = std::max(best, depth);
    } else {
      stack.emplace_back(node->child[0].get(), depth + 1);
      stack.emplace_back(node->child[1].get(), depth + 1);
    }
  }
  return best;
}

std::vector<IAgentId> HashTree::leaves() const {
  std::vector<IAgentId> out;
  out.reserve(leaf_index_.size());
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->is_leaf()) {
      out.push_back(node->iagent);
    } else {
      stack.push_back(node->child[1].get());
      stack.push_back(node->child[0].get());
    }
  }
  return out;
}

void HashTree::for_each_leaf(
    const std::function<void(IAgentId, NodeLocation)>& fn) const {
  for (IAgentId id : leaves()) {
    fn(id, leaf_index_.at(id)->location);
  }
}

HashTree::Stats HashTree::stats() const {
  Stats out;
  std::size_t depth_sum = 0;
  std::vector<std::tuple<const Node*, std::size_t, std::size_t>> stack{
      {root_.get(), 0, 0}};
  while (!stack.empty()) {
    const auto [node, depth_edges, depth_bits] = stack.back();
    stack.pop_back();
    const std::size_t bits_here = depth_bits + node->label.size();
    out.total_label_bits += node->label.size();
    // Only the valid (first) bit of a non-root edge label discriminates.
    out.padding_bits += node == root_.get()
                            ? node->label.size()
                            : node->label.size() - 1;
    if (node->is_leaf()) {
      ++out.leaves;
      depth_sum += bits_here;
      if (out.leaves == 1) {
        out.min_depth_bits = out.max_depth_bits = bits_here;
      } else {
        out.min_depth_bits = std::min(out.min_depth_bits, bits_here);
        out.max_depth_bits = std::max(out.max_depth_bits, bits_here);
      }
      out.height = std::max(out.height, depth_edges);
    } else {
      ++out.internal_nodes;
      stack.emplace_back(node->child[0].get(), depth_edges + 1, bits_here);
      stack.emplace_back(node->child[1].get(), depth_edges + 1, bits_here);
    }
  }
  out.mean_depth_bits =
      out.leaves > 0 ? static_cast<double>(depth_sum) /
                           static_cast<double>(out.leaves)
                     : 0.0;
  return out;
}

void HashTree::validate() const {
  std::size_t leaf_seen = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    const bool has0 = node->child[0] != nullptr;
    const bool has1 = node->child[1] != nullptr;
    if (has0 != has1) {
      throw std::logic_error("HashTree: node with exactly one child");
    }
    if (node != root_.get()) {
      if (node->label.empty()) {
        throw std::logic_error("HashTree: non-root node with empty label");
      }
      const bool side = node->parent->child[1].get() == node;
      if (node->label.front() != side) {
        throw std::logic_error(
            "HashTree: valid bit disagrees with child position");
      }
    }
    if (node->is_leaf()) {
      ++leaf_seen;
      if (node->iagent == kNoIAgent) {
        throw std::logic_error("HashTree: leaf without IAgent id");
      }
      Node* const* found = leaf_index_.find(node->iagent);
      if (found == nullptr || *found != node) {
        throw std::logic_error("HashTree: leaf index inconsistent");
      }
    } else {
      if (node->iagent != kNoIAgent) {
        throw std::logic_error("HashTree: internal node carries IAgent id");
      }
      if (node->child[0]->parent != node || node->child[1]->parent != node) {
        throw std::logic_error("HashTree: broken parent pointer");
      }
      stack.push_back(node->child[0].get());
      stack.push_back(node->child[1].get());
    }
  }
  if (leaf_seen != leaf_index_.size()) {
    throw std::logic_error("HashTree: index size mismatch");
  }
}

bool operator==(const HashTree& a, const HashTree& b) {
  if (a.version_ != b.version_) return false;
  std::vector<std::pair<const HashTree::Node*, const HashTree::Node*>> stack{
      {a.root_.get(), b.root_.get()}};
  while (!stack.empty()) {
    const auto [na, nb] = stack.back();
    stack.pop_back();
    if (na->label != nb->label || na->iagent != nb->iagent ||
        na->location != nb->location || na->is_leaf() != nb->is_leaf()) {
      return false;
    }
    if (!na->is_leaf()) {
      stack.emplace_back(na->child[0].get(), nb->child[0].get());
      stack.emplace_back(na->child[1].get(), nb->child[1].get());
    }
  }
  return true;
}

}  // namespace agentloc::hashtree
