#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/bitstring.hpp"
#include "util/bytebuffer.hpp"
#include "util/flat_map.hpp"

namespace agentloc::hashtree {

/// Identifier of the IAgent an entry of the hash function points at.
/// The hash tree treats it as opaque; the location layer uses platform
/// agent ids.
using IAgentId = std::uint64_t;
inline constexpr IAgentId kNoIAgent = 0;

/// Node id (location) recorded next to each leaf so a secondary copy of the
/// hash function resolves an agent id to *both* the responsible IAgent and
/// where to reach it — exactly what the paper's LHAgent hands back.
using NodeLocation = std::uint32_t;

/// Where in a leaf's hyper-label a padding bit can be reclaimed by a complex
/// split. `segment` indexes the hyper-label segments as returned by
/// `HashTree::hyper_label_segments` (segment 0 is the root padding, possibly
/// empty; segment i>0 is the label of the i-th edge on the root→leaf path).
/// `bit` is the index within the segment: for the root padding any bit, for
/// edge labels a padding bit (index ≥ 1; index 0 is the valid bit).
struct SplitPoint {
  std::size_t segment = 0;
  std::size_t bit = 0;

  friend bool operator==(const SplitPoint&, const SplitPoint&) = default;
};

/// Outcome of `HashTree::merge`.
struct MergeResult {
  enum class Kind {
    kSimple,  ///< leaf sibling absorbed the merged IAgent's load
    kComplex  ///< load redistributes over the sibling subtree (re-lookup)
  };

  Kind kind = Kind::kSimple;

  /// For a simple merge: the surviving IAgent that absorbed the load.
  IAgentId into_iagent = kNoIAgent;
};

class CompiledRouter;

/// The extendible hash function of the paper, represented as a binary *hash
/// tree* (paper §3–§4).
///
/// * Each leaf corresponds to an IAgent; each edge carries a non-empty bit
///   *label* whose first bit (the *valid bit*) is the only one used by the
///   agent→IAgent mapping. The remaining bits are padding left behind by
///   merges (and by multi-bit simple splits), and may later be reclaimed by
///   complex splits.
/// * An agent id maps to a leaf by walking from the root: consume the next id
///   bit to pick the child whose valid bit matches, then skip one id bit for
///   every remaining label bit of that edge. Ids shorter than the consumed
///   path are extended with zero bits (64-bit ids make this an edge case
///   only tests reach).
/// * The *root padding* generalizes the same idea to the root: bits skipped
///   before the first discrimination (needed so merges at the root preserve
///   the bit positions of the surviving subtree — see DESIGN.md §6).
///
/// The class is a value type: LHAgents hold deep copies of the HAgent's
/// primary instance. Every mutation bumps `version()`, which is the staleness
/// token the paper's update-propagation protocol compares. A mutation whose
/// tree holds a fresh compiled router additionally patches the router in
/// place (O(path), DESIGN.md §11), so the read path survives rehash storms
/// without going cold.
class HashTree {
 public:
  /// A tree with a single leaf: one IAgent responsible for every agent.
  HashTree(IAgentId initial, NodeLocation location);

  HashTree(const HashTree& other);
  HashTree& operator=(const HashTree& other);
  HashTree(HashTree&&) noexcept;
  HashTree& operator=(HashTree&&) noexcept;
  ~HashTree();

  /// --- Lookup ------------------------------------------------------------

  struct Target {
    IAgentId iagent = kNoIAgent;
    NodeLocation location = 0;
  };

  /// Map an agent id (given as bits, most significant first) to the
  /// responsible IAgent. Served by the compiled router (recompiled lazily
  /// after mutations — see `router()`).
  Target lookup(const util::BitString& id_bits) const;

  /// 64-bit ids, allocation-free: the id is routed directly by the compiled
  /// router without materializing a `BitString`.
  Target lookup_id(std::uint64_t id) const;

  /// Reference implementation of `lookup`: walk the node structure. Kept
  /// independent of the compiled router; property tests assert both agree
  /// bit-for-bit with `compatible`.
  Target lookup_walk(const util::BitString& id_bits) const;

  /// The compiled read path. While the router is fresh every mutation keeps
  /// it fresh by patching (see class comment); this call recompiles only
  /// when the router is cold (first lookup, copies, deserialized trees,
  /// fragmentation-triggered compaction). Note this lazily mutates internal
  /// state: concurrent first-lookups on a shared stale tree would race
  /// (each sim instance is single-threaded; parallel sweeps clone per
  /// worker).
  const CompiledRouter& router() const;

  /// Disable (or re-enable) in-place router patching. With patching off,
  /// every mutation leaves the router stale and the next lookup pays a full
  /// O(tree) recompile — the pre-incremental behaviour, kept reachable so
  /// benches and equivalence tests can compare the two write paths.
  void set_incremental_router(bool enabled) noexcept {
    incremental_router_ = enabled;
  }
  bool incremental_router() const noexcept { return incremental_router_; }

  /// The paper's compatibility predicate (§3, Figure 2): true when the valid
  /// bit of every label in the leaf's hyper-label equals the id bit at that
  /// label position. Implemented independently of `lookup`; property tests
  /// assert both agree.
  bool compatible(const util::BitString& id_bits, IAgentId leaf) const;

  /// --- Structure inspection ------------------------------------------------

  std::size_t leaf_count() const noexcept { return leaf_index_.size(); }
  std::uint64_t version() const noexcept { return version_; }

  bool contains(IAgentId leaf) const noexcept {
    return leaf_index_.contains(leaf);
  }

  /// Pre-size the leaf index for an expected population — delta replays
  /// know their net split count up front and would otherwise rehash the
  /// index repeatedly while growing.
  void reserve_leaves(std::size_t leaves) { leaf_index_.reserve(leaves); }

  /// Node currently hosting the given IAgent. Throws if unknown.
  NodeLocation location_of(IAgentId leaf) const;

  /// Record that an IAgent moved (bumps version).
  void set_location(IAgentId leaf, NodeLocation location);

  /// Hyper-label segments of a leaf: segment 0 is the root padding (may be
  /// empty), the rest are the edge labels down to the leaf. Throws if
  /// unknown.
  std::vector<util::BitString> hyper_label_segments(IAgentId leaf) const;

  /// The (position, value) pairs of the valid bits on a leaf's root→leaf
  /// path — the leaf's responsibility predicate, extracted without copying
  /// any label. Throws if unknown.
  std::vector<std::pair<std::uint32_t, bool>> valid_bits(IAgentId leaf) const;

  /// Bit `point.bit` of segment `point.segment` of the leaf's hyper-label
  /// (segment 0 = root padding), without materializing the segments.
  /// Throws `std::out_of_range` when the point does not exist.
  bool label_bit(IAgentId leaf, const SplitPoint& point) const;

  /// Dotted rendering, e.g. "1.0" or "0.011.0"; root padding, when present,
  /// is shown as a leading "(pad)" segment. Matches the paper's notation.
  std::string hyper_label(IAgentId leaf) const;

  /// Total id bits consumed to reach the leaf.
  std::size_t depth_bits(IAgentId leaf) const;

  /// Height in edges.
  std::size_t height() const;

  /// All IAgent ids at leaves, in left-to-right order.
  std::vector<IAgentId> leaves() const;

  /// Visit every leaf with its target info.
  void for_each_leaf(
      const std::function<void(IAgentId, NodeLocation)>& fn) const;

  /// --- Rehashing (paper §4) -----------------------------------------------

  /// Simple split (§4.1): split leaf `victim` on the m-th not-yet-used bit.
  /// The victim keeps the 0-side; `new_iagent` (hosted at `new_location`)
  /// takes the 1-side. Requires m >= 1. Only the victim's agents are
  /// remapped. Throws if `victim` is unknown or `new_iagent` already exists.
  void simple_split(IAgentId victim, std::size_t m, IAgentId new_iagent,
                    NodeLocation new_location);

  /// All positions where a complex split of `victim` could reclaim a padding
  /// bit, in the paper's preference order: left-most label first, and within
  /// a label the first bit after the valid bit first.
  std::vector<SplitPoint> complex_split_candidates(IAgentId victim) const;

  /// Global id-bit position a split at `point` would discriminate on.
  /// The caller projects per-agent load over this bit to judge evenness.
  std::size_t split_point_bit_position(IAgentId victim,
                                       const SplitPoint& point) const;

  /// Complex split (§4.1): reclaim the padding bit at `point` on `victim`'s
  /// path. The new IAgent takes the agents whose id bit at the reclaimed
  /// position is the complement of the recorded padding bit. When the
  /// reclaimed bit lies on an interior edge, those agents may come from every
  /// leaf of that subtree (see DESIGN.md §6.3).
  void complex_split(IAgentId victim, const SplitPoint& point,
                     IAgentId new_iagent, NodeLocation new_location);

  /// Merge (§4.2): remove leaf `victim`. Simple merge when its sibling is a
  /// leaf (the sibling absorbs the load; the tree shrinks); complex merge
  /// when the sibling is internal (the sibling's subtree is spliced into the
  /// parent position and the removed leaf's agents redistribute by
  /// re-lookup). Merging the last leaf is an error.
  MergeResult merge(IAgentId victim);

  /// Aggregate shape statistics — the balance story behind the benches.
  struct Stats {
    std::size_t leaves = 0;
    std::size_t internal_nodes = 0;
    std::size_t height = 0;            ///< edges on the longest path
    std::size_t min_depth_bits = 0;    ///< id bits consumed, shallowest leaf
    std::size_t max_depth_bits = 0;    ///< id bits consumed, deepest leaf
    double mean_depth_bits = 0.0;
    std::size_t padding_bits = 0;      ///< label bits that do not discriminate
    std::size_t total_label_bits = 0;  ///< all label bits incl. root padding
  };
  Stats stats() const;

  /// --- Integrity / serialization ------------------------------------------

  /// Verify every structural invariant (two children or leaf, complementary
  /// valid bits, non-empty labels, index consistency, unique IAgent ids).
  /// Throws `std::logic_error` describing the first violation.
  void validate() const;

  void serialize(util::ByteWriter& writer) const;
  static HashTree deserialize(util::ByteReader& reader);

  /// Serialized size in bytes — what the HAgent ships to a refreshing
  /// LHAgent. Computed analytically (one allocation-free node walk, no
  /// actual serialization), so callers can compare delta vs. snapshot cost
  /// before encoding either.
  std::size_t serialized_bytes() const;

  /// Structural equality (labels, leaves, locations; version included).
  friend bool operator==(const HashTree& a, const HashTree& b);

  /// How a leaf is captioned in renderings; defaults to "IA<id>".
  using LeafNamer = std::function<std::string(IAgentId)>;

  /// Multi-line ASCII art of the tree (used by the figure benches).
  std::string render_ascii(const LeafNamer& namer = nullptr) const;

  /// GraphViz dot output.
  std::string render_dot(const LeafNamer& namer = nullptr) const;

 private:
  struct Node {
    /// Edge label from the parent; for the root this is the root padding
    /// (possibly empty, no valid bit).
    util::BitString label;
    Node* parent = nullptr;
    /// Children by valid bit; both set (internal) or both null (leaf).
    std::unique_ptr<Node> child[2];

    IAgentId iagent = kNoIAgent;
    NodeLocation location = 0;

    bool is_leaf() const noexcept { return child[0] == nullptr; }

    /// Nodes churn hard — every copy, deserialize, and split/merge cycle
    /// allocates and frees them in bulk — so they come from a thread-local
    /// free-list pool instead of the general-purpose heap. Disabled under
    /// the sanitizer build so ASan still sees every node individually.
    static void* operator new(std::size_t size);
    static void operator delete(void* ptr) noexcept;
  };

  /// Clone `node`'s subtree and register every cloned leaf in this tree's
  /// `leaf_index_` during the same walk (one traversal, not two).
  std::unique_ptr<Node> clone_subtree(const Node& node, Node* parent);
  Node* leaf_for(IAgentId id);
  const Node* leaf_for(IAgentId id) const;
  const Node* descend(const util::BitString& id_bits) const;
  std::vector<const Node*> path_to(const Node* leaf) const;
  void bump_version() noexcept { ++version_; }

  /// The router, iff it exists and is compiled for the *current* version —
  /// i.e. a mutation performed now may patch it and advance it in lockstep.
  /// Null when patching is disabled, the router is cold, stale, or flagged
  /// for compaction (then the mutation leaves it stale and the next lookup
  /// recompiles).
  CompiledRouter* patchable_router() noexcept;

  /// Id bits consumed to reach `leaf` (its depth), as a patch-time helper:
  /// sums label widths up the parent chain without materializing segments.
  static std::uint32_t consumed_bits(const Node* leaf) noexcept;

  void validate_node(const Node* node, const Node* parent,
                     std::size_t depth) const;

  friend class CompiledRouter;

  std::unique_ptr<Node> root_;
  /// Leaf id → node. Open-addressing map: clones and deserializes insert one
  /// entry per leaf, and `std::unordered_map`'s per-entry heap nodes made
  /// that bookkeeping the dominant cost of both paths.
  util::FlatMap<IAgentId, Node*, kNoIAgent> leaf_index_;
  std::uint64_t version_ = 1;
  /// Lazily compiled, then *patched* read path; never copied (copies start
  /// cold), moved along with the structure it was compiled from.
  mutable std::unique_ptr<CompiledRouter> router_;
  bool incremental_router_ = true;
};

}  // namespace agentloc::hashtree
