#pragma once

#include "hashtree/tree.hpp"

namespace agentloc::hashtree {

/// IAgent ids of the paper's running example (Figure 1). The paper labels
/// its leaves IA0…IA6; id 0 is reserved, so IAk gets id k+1. `paper_name`
/// converts back for rendering.
inline constexpr IAgentId kIA0 = 1;
inline constexpr IAgentId kIA1 = 2;
inline constexpr IAgentId kIA2 = 3;
inline constexpr IAgentId kIA3 = 4;
inline constexpr IAgentId kIA4 = 5;
inline constexpr IAgentId kIA5 = 6;
inline constexpr IAgentId kIA6 = 7;
inline constexpr IAgentId kIA7 = 8;

/// "IA3" for the id of kIA3.
std::string paper_name(IAgentId id);

/// The hash tree of the paper's Figure 1 (digits reconstructed; see
/// DESIGN.md §5). Hyper-labels:
///
///   IA0 = 0.011.1.0   IA1 = 0.10     IA2 = 0.011.0
///   IA3 = 1.0         IA4 = 0.011.1.1
///   IA5 = 1.1.0       IA6 = 1.1.1
///
/// This reproduces every worked example in §3–§4:
///  * IA2's hyper-label is compatible with prefix 00110… (Figure 2);
///  * IA3 ("1.0", all labels one bit) is the simple-split example (Figure 3);
///  * IA1 ("0.10", multi-bit label) is the complex-split example (Figure 4);
///  * IA6's sibling IA5 is a leaf — the simple-merge example (Figure 5);
///  * IA1's sibling is internal — the complex-merge example (Figure 6).
///
/// Every IAgent is placed at node k (IAk at node k) for illustration.
HashTree figure1_tree();

}  // namespace agentloc::hashtree
