// Wire format of the hash tree: what the HAgent ships to LHAgents when a
// secondary copy refreshes. Preorder encoding, one flag byte per node.

#include <stdexcept>

#include "hashtree/tree.hpp"

namespace agentloc::hashtree {

namespace {
constexpr std::uint8_t kLeafFlag = 1;
constexpr std::uint8_t kInternalFlag = 0;
constexpr std::uint32_t kMagic = 0x48545245;  // "HTRE"
}  // namespace

void HashTree::serialize(util::ByteWriter& writer) const {
  writer.write_u32(kMagic);
  writer.write_varint(version_);
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    writer.write_u8(node->is_leaf() ? kLeafFlag : kInternalFlag);
    writer.write_bits(node->label);
    if (node->is_leaf()) {
      writer.write_varint(node->iagent);
      writer.write_u32(node->location);
    } else {
      stack.push_back(node->child[1].get());
      stack.push_back(node->child[0].get());
    }
  }
}

HashTree HashTree::deserialize(util::ByteReader& reader) {
  if (reader.read_u32() != kMagic) {
    throw std::invalid_argument("HashTree::deserialize: bad magic");
  }
  const std::uint64_t version = reader.read_varint();

  // Read the preorder stream recursively, then adopt the result.
  struct Builder {
    static std::unique_ptr<Node> read(util::ByteReader& reader,
                                      std::size_t depth) {
      if (depth > 512) {
        throw std::invalid_argument("HashTree::deserialize: tree too deep");
      }
      const std::uint8_t flag = reader.read_u8();
      auto node = std::make_unique<Node>();
      node->label = reader.read_bits();
      if (flag == kLeafFlag) {
        node->iagent = reader.read_varint();
        node->location = static_cast<NodeLocation>(reader.read_u32());
        if (node->iagent == kNoIAgent) {
          throw std::invalid_argument(
              "HashTree::deserialize: leaf without IAgent");
        }
      } else if (flag == kInternalFlag) {
        node->child[0] = read(reader, depth + 1);
        node->child[1] = read(reader, depth + 1);
        node->child[0]->parent = node.get();
        node->child[1]->parent = node.get();
      } else {
        throw std::invalid_argument("HashTree::deserialize: bad node flag");
      }
      return node;
    }
  };

  HashTree tree(kNoIAgent + 1, 0);  // placeholder root, replaced below
  tree.root_ = Builder::read(reader, 0);
  tree.version_ = version;
  tree.rebuild_index();
  tree.validate();
  return tree;
}

std::size_t HashTree::serialized_bytes() const {
  util::ByteWriter writer;
  serialize(writer);
  return writer.size();
}

}  // namespace agentloc::hashtree
