// Wire format of the hash tree: what the HAgent ships to LHAgents when a
// secondary copy refreshes. Preorder encoding, one flag byte per node.

#include <stdexcept>

#include "hashtree/tree.hpp"

namespace agentloc::hashtree {

namespace {
constexpr std::uint8_t kLeafFlag = 1;
constexpr std::uint8_t kInternalFlag = 0;
constexpr std::uint32_t kMagic = 0x48545245;  // "HTRE"
}  // namespace

void HashTree::serialize(util::ByteWriter& writer) const {
  // 2L-1 nodes at a handful of bytes each; one up-front growth.
  writer.reserve(16 + 24 * leaf_index_.size());
  writer.write_u32(kMagic);
  writer.write_varint(version_);
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    writer.write_u8(node->is_leaf() ? kLeafFlag : kInternalFlag);
    writer.write_bits(node->label);
    if (node->is_leaf()) {
      writer.write_varint(node->iagent);
      writer.write_u32(node->location);
    } else {
      stack.push_back(node->child[1].get());
      stack.push_back(node->child[0].get());
    }
  }
}

HashTree HashTree::deserialize(util::ByteReader& reader) {
  if (reader.read_u32() != kMagic) {
    throw std::invalid_argument("HashTree::deserialize: bad magic");
  }
  const std::uint64_t version = reader.read_varint();

  // Decode the preorder stream with an explicit stack: each pending slot
  // names where the next decoded node attaches. Preorder means child 0's
  // whole subtree precedes child 1, so slot 1 is pushed first.
  //
  // Every tree invariant is checked inline as nodes decode — edge labels
  // non-empty with the valid bit matching the child slot, leaves carrying
  // unique nonzero IAgent ids — and the rest (two-or-zero children, parent
  // links, index consistency) holds by construction, so no separate
  // `validate()` pass over the finished tree is needed.
  HashTree tree(kNoIAgent + 1, 0);  // placeholder root, replaced below
  tree.leaf_index_.clear();
  auto root = std::make_unique<Node>();
  struct Pending {
    Node* parent;
    int slot;
    std::size_t depth;
  };
  std::vector<Pending> stack{{nullptr, 0, 0}};
  while (!stack.empty()) {
    const Pending at = stack.back();
    stack.pop_back();
    if (at.depth > 512) {
      throw std::invalid_argument("HashTree::deserialize: tree too deep");
    }
    Node* node;
    if (at.parent == nullptr) {
      node = root.get();
    } else {
      at.parent->child[at.slot] = std::make_unique<Node>();
      node = at.parent->child[at.slot].get();
      node->parent = at.parent;
    }
    const std::uint8_t flag = reader.read_u8();
    node->label = reader.read_bits();
    if (at.parent != nullptr) {
      if (node->label.empty()) {
        throw std::invalid_argument(
            "HashTree::deserialize: non-root node with empty label");
      }
      if (node->label.front() != (at.slot == 1)) {
        throw std::invalid_argument(
            "HashTree::deserialize: valid bit disagrees with child position");
      }
    }
    if (flag == kLeafFlag) {
      node->iagent = reader.read_varint();
      node->location = static_cast<NodeLocation>(reader.read_u32());
      if (node->iagent == kNoIAgent) {
        throw std::invalid_argument(
            "HashTree::deserialize: leaf without IAgent");
      }
      if (!tree.leaf_index_.emplace(node->iagent, node)) {
        throw std::invalid_argument(
            "HashTree::deserialize: duplicate IAgent id");
      }
    } else if (flag == kInternalFlag) {
      stack.push_back({node, 1, at.depth + 1});
      stack.push_back({node, 0, at.depth + 1});
    } else {
      throw std::invalid_argument("HashTree::deserialize: bad node flag");
    }
  }

  tree.root_ = std::move(root);
  tree.version_ = version;
  return tree;
}

std::size_t HashTree::serialized_bytes() const {
  // Mirror of `serialize` that only sums encoded widths: one flag byte and a
  // length-prefixed packed label per node, plus {varint iagent, u32 location}
  // per leaf. No buffer is materialized, so the HAgent can weigh a delta
  // against a snapshot on every pull without serializing either first.
  std::size_t bytes = 4 + util::varint_size(version_);
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    bytes += 1 + util::varint_size(node->label.size()) +
             (node->label.size() + 7) / 8;
    if (node->is_leaf()) {
      bytes += util::varint_size(node->iagent) + 4;
    } else {
      stack.push_back(node->child[1].get());
      stack.push_back(node->child[0].get());
    }
  }
  return bytes;
}

}  // namespace agentloc::hashtree
