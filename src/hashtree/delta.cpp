#include "hashtree/delta.hpp"

#include <stdexcept>

namespace agentloc::hashtree {

void apply_op(HashTree& tree, const TreeOp& op) {
  switch (op.kind) {
    case TreeOp::Kind::kSimpleSplit:
      tree.simple_split(op.victim, op.m, op.new_iagent, op.location);
      return;
    case TreeOp::Kind::kComplexSplit:
      tree.complex_split(op.victim, op.point, op.new_iagent, op.location);
      return;
    case TreeOp::Kind::kMerge:
      tree.merge(op.victim);
      return;
    case TreeOp::Kind::kSetLocation:
      tree.set_location(op.victim, op.location);
      return;
  }
  throw std::invalid_argument("apply_op: unknown op kind");
}

void serialize_op(util::ByteWriter& writer, const TreeOp& op) {
  writer.write_u8(static_cast<std::uint8_t>(op.kind));
  writer.write_varint(op.victim);
  writer.write_varint(op.m);
  writer.write_varint(op.point.segment);
  writer.write_varint(op.point.bit);
  writer.write_varint(op.new_iagent);
  writer.write_u32(op.location);
}

std::size_t serialized_op_bytes(const TreeOp& op) {
  // Mirror of `serialize_op`: flag byte, five varints, u32 location.
  return 1 + util::varint_size(op.victim) + util::varint_size(op.m) +
         util::varint_size(op.point.segment) +
         util::varint_size(op.point.bit) +
         util::varint_size(op.new_iagent) + 4;
}

TreeOp deserialize_op(util::ByteReader& reader) {
  TreeOp op;
  const std::uint8_t kind = reader.read_u8();
  if (kind > static_cast<std::uint8_t>(TreeOp::Kind::kSetLocation)) {
    throw std::invalid_argument("deserialize_op: bad op kind");
  }
  op.kind = static_cast<TreeOp::Kind>(kind);
  op.victim = reader.read_varint();
  op.m = static_cast<std::uint32_t>(reader.read_varint());
  op.point.segment = reader.read_varint();
  op.point.bit = reader.read_varint();
  op.new_iagent = reader.read_varint();
  op.location = static_cast<NodeLocation>(reader.read_u32());
  return op;
}

void TreeDelta::serialize(util::ByteWriter& writer) const {
  writer.write_u32(0x48544456);  // "HTDV"
  writer.write_varint(base_version);
  writer.write_varint(target_version);
  writer.write_varint(ops.size());
  for (const TreeOp& op : ops) serialize_op(writer, op);
}

TreeDelta TreeDelta::deserialize(util::ByteReader& reader) {
  if (reader.read_u32() != 0x48544456) {
    throw std::invalid_argument("TreeDelta::deserialize: bad magic");
  }
  TreeDelta delta;
  delta.base_version = reader.read_varint();
  delta.target_version = reader.read_varint();
  const std::uint64_t count = reader.read_varint();
  if (count > 1'000'000) {
    throw std::invalid_argument("TreeDelta::deserialize: absurd op count");
  }
  delta.ops.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    delta.ops.push_back(deserialize_op(reader));
  }
  return delta;
}

std::size_t TreeDelta::serialized_bytes() const {
  std::size_t bytes = 4 + util::varint_size(base_version) +
                      util::varint_size(target_version) +
                      util::varint_size(ops.size());
  for (const TreeOp& op : ops) bytes += serialized_op_bytes(op);
  return bytes;
}

void TreeDelta::apply_to(HashTree& tree) const {
  if (tree.version() != base_version) {
    throw std::logic_error("TreeDelta: tree is not at the base version");
  }
  // Pre-size the leaf index for the replay's net growth, then replay in one
  // pass. Each mutation maintains the leaf index and patches a fresh
  // compiled router inline, so nothing is rebuilt afterwards.
  std::size_t splits = 0;
  for (const TreeOp& op : ops) {
    splits += op.kind == TreeOp::Kind::kSimpleSplit ||
              op.kind == TreeOp::Kind::kComplexSplit;
  }
  tree.reserve_leaves(tree.leaf_count() + splits);
  for (const TreeOp& op : ops) apply_op(tree, op);
  if (tree.version() != target_version) {
    throw std::logic_error("TreeDelta: replay did not reach target version");
  }
}

void TreeJournal::record(std::uint64_t version_after, TreeOp op) {
  if (head_version_ != 0 && version_after != head_version_ + 1) {
    // A gap (e.g. an unrecorded mutation): the journal can no longer prove
    // continuity, so restart from here.
    ops_.clear();
    bytes_ = 0;
  }
  head_version_ = version_after;
  bytes_ += serialized_op_bytes(op);
  ops_.push_back(std::move(op));

  // Enforce both bounds by truncating from the oldest end; one batched
  // erase per crossing, counted once however many ops it drops. At least
  // the newest op is always retained.
  std::size_t drop = ops_.size() > capacity_ ? ops_.size() - capacity_ : 0;
  std::size_t kept_bytes = bytes_;
  for (std::size_t i = 0; i < drop; ++i) {
    kept_bytes -= serialized_op_bytes(ops_[i]);
  }
  if (max_bytes_ > 0) {
    while (drop + 1 < ops_.size() && kept_bytes > max_bytes_) {
      kept_bytes -= serialized_op_bytes(ops_[drop]);
      ++drop;
    }
  }
  if (drop > 0) {
    ops_.erase(ops_.begin(), ops_.begin() + static_cast<std::ptrdiff_t>(drop));
    bytes_ = kept_bytes;
    ++truncations_;
  }
}

std::optional<TreeDelta> TreeJournal::since(std::uint64_t version) const {
  if (version > head_version_ || head_version_ == 0) return std::nullopt;
  const std::uint64_t needed = head_version_ - version;
  if (needed > ops_.size()) return std::nullopt;
  TreeDelta delta;
  delta.base_version = version;
  delta.target_version = head_version_;
  delta.ops.assign(ops_.end() - static_cast<std::ptrdiff_t>(needed),
                   ops_.end());
  return delta;
}

}  // namespace agentloc::hashtree
