// Human-readable renderings of the hash tree: ASCII art for the figure
// benches (reproducing the paper's Figures 1 and 3–6) and GraphViz dot.

#include <sstream>

#include "hashtree/tree.hpp"

namespace agentloc::hashtree {

namespace {
std::string default_name(hashtree::IAgentId id) {
  return "IA" + std::to_string(id);
}
}  // namespace

std::string HashTree::render_ascii(const LeafNamer& namer) const {
  std::ostringstream os;
  const LeafNamer& name = namer ? namer : LeafNamer(default_name);

  struct Walker {
    std::ostringstream& os;
    const LeafNamer& name;

    void walk(const Node& node, const std::string& prefix, bool is_last,
              bool is_root) {
      std::string line;
      if (!is_root) {
        line = prefix + (is_last ? "`-- " : "|-- ") + node.label.to_string();
      } else {
        line = "(root";
        if (!node.label.empty()) line += " pad=" + node.label.to_string();
        line += ")";
      }
      if (node.is_leaf()) {
        line += " -> " + name(node.iagent) + " @node" +
                std::to_string(node.location);
      }
      os << line << "\n";
      if (!node.is_leaf()) {
        const std::string child_prefix =
            is_root ? std::string{} : prefix + (is_last ? "    " : "|   ");
        walk(*node.child[0], child_prefix, false, false);
        walk(*node.child[1], child_prefix, true, false);
      }
    }
  };

  Walker{os, name}.walk(*root_, "", true, true);
  return os.str();
}

std::string HashTree::render_dot(const LeafNamer& namer) const {
  std::ostringstream os;
  const LeafNamer& name = namer ? namer : LeafNamer(default_name);
  os << "digraph hashtree {\n  node [shape=circle];\n";

  struct Walker {
    std::ostringstream& os;
    const LeafNamer& name;
    int counter = 0;

    int walk(const Node& node) {
      const int id = counter++;
      if (node.is_leaf()) {
        os << "  n" << id << " [shape=box,label=\"" << name(node.iagent)
           << "\\nnode " << node.location << "\"];\n";
      } else {
        os << "  n" << id << " [label=\"\"];\n";
      }
      if (!node.is_leaf()) {
        const int left = walk(*node.child[0]);
        const int right = walk(*node.child[1]);
        os << "  n" << id << " -> n" << left << " [label=\""
           << node.child[0]->label.to_string() << "\"];\n";
        os << "  n" << id << " -> n" << right << " [label=\""
           << node.child[1]->label.to_string() << "\"];\n";
      }
      return id;
    }
  };

  Walker walker{os, name};
  if (!root_->label.empty()) {
    os << "  pad [shape=plaintext,label=\"pad " << root_->label.to_string()
       << "\"];\n";
  }
  walker.walk(*root_);
  os << "}\n";
  return os.str();
}

}  // namespace agentloc::hashtree
