#include "hashtree/router.hpp"

#include <stdexcept>

namespace agentloc::hashtree {

void CompiledRouter::rebuild(const HashTree& tree) {
  entries_.clear();
  leaf_index_.clear();
  free_.clear();
  root_ = 0;
  // A tree with L leaves has exactly 2L - 1 nodes.
  entries_.reserve(2 * tree.leaf_count());
  leaf_index_.reserve(tree.leaf_count());

  struct Item {
    const HashTree::Node* node;
    std::uint32_t consumed;  ///< id bits consumed through this node's label
    std::uint32_t parent;    ///< entry index to patch, kLeafSentinel for root
    std::uint8_t slot;
  };
  std::vector<Item> stack;
  stack.push_back({tree.root_.get(),
                   static_cast<std::uint32_t>(tree.root_->label.size()),
                   kLeafSentinel, 0});
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    const auto idx = static_cast<std::uint32_t>(entries_.size());
    entries_.emplace_back();
    if (item.parent != kLeafSentinel) {
      entries_[item.parent].child[item.slot] = idx;
    }
    Entry& entry = entries_.back();
    entry.parent = item.parent;
    if (item.node->is_leaf()) {
      entry.iagent = item.node->iagent;
      entry.location = item.node->location;
      leaf_index_.emplace(entry.iagent, idx);
    } else {
      entry.bit_pos = item.consumed;
      const HashTree::Node* c0 = item.node->child[0].get();
      const HashTree::Node* c1 = item.node->child[1].get();
      // Push child 1 first so child 0 (and with it the whole left subtree)
      // lands immediately after its parent — preorder layout.
      stack.push_back({c1,
                       item.consumed +
                           static_cast<std::uint32_t>(c1->label.size()),
                       idx, 1});
      stack.push_back({c0,
                       item.consumed +
                           static_cast<std::uint32_t>(c0->label.size()),
                       idx, 0});
    }
  }
  if (wants_compaction_) ++compactions_;
  wants_compaction_ = false;
  compiled_version_ = tree.version();
  ++rebuilds_;
}

HashTree::Target CompiledRouter::route_id(std::uint64_t id) const noexcept {
  const Entry* entries = entries_.data();
  const Entry* e = entries + root_;
  while (e->child[0] != kLeafSentinel) {
    const std::uint32_t pos = e->bit_pos;
    // Bits past the id's 64 read as zero (ids shorter than the consumed
    // path are zero-extended).
    const std::uint64_t bit = pos < 64 ? (id >> (63 - pos)) & 1u : 0u;
    e = entries + e->child[bit];
  }
  return HashTree::Target{e->iagent, e->location};
}

HashTree::Target CompiledRouter::route(
    const util::BitString& id_bits) const noexcept {
  const Entry* entries = entries_.data();
  const Entry* e = entries + root_;
  const std::size_t n = id_bits.size();
  while (e->child[0] != kLeafSentinel) {
    const std::size_t pos = e->bit_pos;
    const std::size_t bit = pos < n && id_bits[pos] ? 1 : 0;
    e = entries + e->child[bit];
  }
  return HashTree::Target{e->iagent, e->location};
}

std::uint32_t CompiledRouter::alloc_entry() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    entries_[idx] = Entry{};
    return idx;
  }
  const auto idx = static_cast<std::uint32_t>(entries_.size());
  entries_.emplace_back();
  return idx;
}

void CompiledRouter::free_entry(std::uint32_t idx) {
  // Leave the slot's contents benign (a detached leaf) so a stray read can
  // not walk into live structure; reachability is already gone.
  entries_[idx] = Entry{};
  free_.push_back(idx);
  // Compaction threshold: once dead slots outnumber live entries the array
  // has lost its cache density; flag it so the next router() call recompiles
  // compactly. Patching remains correct either way — this is purely about
  // locality, so the threshold only needs to bound the waste.
  if (entries_.size() >= 64 && free_.size() > live_entries()) {
    wants_compaction_ = true;
  }
}

std::uint32_t CompiledRouter::leaf_entry(IAgentId leaf) const {
  const std::uint32_t* idx = leaf_index_.find(leaf);
  if (idx == nullptr) {
    throw std::logic_error("CompiledRouter: patch names an unknown leaf");
  }
  return *idx;
}

void CompiledRouter::patch_set_location(IAgentId leaf, NodeLocation location,
                                        std::uint64_t new_version) {
  entries_[leaf_entry(leaf)].location = location;
  compiled_version_ = new_version;
  ++patches_;
}

void CompiledRouter::patch_simple_split(IAgentId victim,
                                        std::uint32_t split_bit_pos,
                                        IAgentId new_iagent,
                                        NodeLocation new_location,
                                        std::uint64_t new_version) {
  const std::uint32_t v = leaf_entry(victim);
  const std::uint32_t zero = alloc_entry();
  const std::uint32_t one = alloc_entry();

  Entry& z = entries_[zero];
  z.parent = v;
  z.iagent = victim;
  z.location = entries_[v].location;

  Entry& o = entries_[one];
  o.parent = v;
  o.iagent = new_iagent;
  o.location = new_location;

  Entry& split = entries_[v];
  split.bit_pos = split_bit_pos;
  split.child[0] = zero;
  split.child[1] = one;
  split.iagent = kNoIAgent;
  split.location = 0;

  leaf_index_[victim] = zero;
  leaf_index_.emplace(new_iagent, one);
  compiled_version_ = new_version;
  ++patches_;
}

void CompiledRouter::patch_complex_split(IAgentId victim,
                                         std::uint32_t steps_up,
                                         bool reclaimed,
                                         std::uint32_t reclaimed_pos,
                                         IAgentId new_iagent,
                                         NodeLocation new_location,
                                         std::uint64_t new_version) {
  // The edge being split sits `steps_up` parent hops above the victim's
  // leaf; everything below it keeps its absolute bit positions (the label
  // merely splits into an upper and a lower part of unchanged total width),
  // so only one new internal entry and one new leaf splice in.
  std::uint32_t v = leaf_entry(victim);
  for (std::uint32_t i = 0; i < steps_up; ++i) v = entries_[v].parent;

  const std::uint32_t w = alloc_entry();
  const std::uint32_t fresh = alloc_entry();

  Entry& leaf = entries_[fresh];
  leaf.parent = w;
  leaf.iagent = new_iagent;
  leaf.location = new_location;

  const std::uint32_t up = entries_[v].parent;
  Entry& mid = entries_[w];
  mid.bit_pos = reclaimed_pos;
  mid.parent = up;
  mid.child[reclaimed ? 1 : 0] = v;
  mid.child[reclaimed ? 0 : 1] = fresh;
  entries_[v].parent = w;

  if (up == kLeafSentinel) {
    root_ = w;
  } else {
    Entry& parent = entries_[up];
    parent.child[parent.child[1] == v ? 1 : 0] = w;
  }

  leaf_index_.emplace(new_iagent, fresh);
  compiled_version_ = new_version;
  ++patches_;
}

void CompiledRouter::patch_merge(IAgentId victim, std::uint64_t new_version) {
  const std::uint32_t v = leaf_entry(victim);
  const std::uint32_t p = entries_[v].parent;
  Entry& parent = entries_[p];
  const std::uint32_t s = parent.child[parent.child[1] == v ? 0 : 1];
  Entry& sibling = entries_[s];

  leaf_index_.erase(victim);
  if (sibling.child[0] == kLeafSentinel) {
    // Simple merge: the sibling leaf moves up into the parent slot.
    parent.child[0] = kLeafSentinel;
    parent.child[1] = kLeafSentinel;
    parent.iagent = sibling.iagent;
    parent.location = sibling.location;
    leaf_index_[parent.iagent] = p;
  } else {
    // Complex merge: the sibling's children splice into the parent. Their
    // absolute bit positions are unchanged — the tree concatenates the
    // parent and sibling labels, so the bits consumed to reach each child
    // stay identical — which makes this a pure pointer splice.
    parent.bit_pos = sibling.bit_pos;
    parent.child[0] = sibling.child[0];
    parent.child[1] = sibling.child[1];
    entries_[parent.child[0]].parent = p;
    entries_[parent.child[1]].parent = p;
  }
  free_entry(s);
  free_entry(v);
  compiled_version_ = new_version;
  ++patches_;
}

}  // namespace agentloc::hashtree
