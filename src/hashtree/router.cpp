#include "hashtree/router.hpp"

namespace agentloc::hashtree {

void CompiledRouter::rebuild(const HashTree& tree) {
  entries_.clear();
  // A tree with L leaves has exactly 2L - 1 nodes.
  entries_.reserve(2 * tree.leaf_count());

  struct Item {
    const HashTree::Node* node;
    std::uint32_t consumed;  ///< id bits consumed through this node's label
    std::uint32_t parent;    ///< entry index to patch, kLeafSentinel for root
    std::uint8_t slot;
  };
  std::vector<Item> stack;
  stack.push_back({tree.root_.get(),
                   static_cast<std::uint32_t>(tree.root_->label.size()),
                   kLeafSentinel, 0});
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    const auto idx = static_cast<std::uint32_t>(entries_.size());
    entries_.emplace_back();
    if (item.parent != kLeafSentinel) {
      entries_[item.parent].child[item.slot] = idx;
    }
    Entry& entry = entries_.back();
    if (item.node->is_leaf()) {
      entry.iagent = item.node->iagent;
      entry.location = item.node->location;
    } else {
      entry.bit_pos = item.consumed;
      const HashTree::Node* c0 = item.node->child[0].get();
      const HashTree::Node* c1 = item.node->child[1].get();
      // Push child 1 first so child 0 (and with it the whole left subtree)
      // lands immediately after its parent — preorder layout.
      stack.push_back({c1,
                       item.consumed +
                           static_cast<std::uint32_t>(c1->label.size()),
                       idx, 1});
      stack.push_back({c0,
                       item.consumed +
                           static_cast<std::uint32_t>(c0->label.size()),
                       idx, 0});
    }
  }
  compiled_version_ = tree.version();
}

HashTree::Target CompiledRouter::route_id(std::uint64_t id) const noexcept {
  const Entry* entries = entries_.data();
  const Entry* e = entries;
  while (e->child[0] != kLeafSentinel) {
    const std::uint32_t pos = e->bit_pos;
    // Bits past the id's 64 read as zero (ids shorter than the consumed
    // path are zero-extended).
    const std::uint64_t bit = pos < 64 ? (id >> (63 - pos)) & 1u : 0u;
    e = entries + e->child[bit];
  }
  return HashTree::Target{e->iagent, e->location};
}

HashTree::Target CompiledRouter::route(
    const util::BitString& id_bits) const noexcept {
  const Entry* entries = entries_.data();
  const Entry* e = entries;
  const std::size_t n = id_bits.size();
  while (e->child[0] != kLeafSentinel) {
    const std::size_t pos = e->bit_pos;
    const std::size_t bit = pos < n && id_bits[pos] ? 1 : 0;
    e = entries + e->child[bit];
  }
  return HashTree::Target{e->iagent, e->location};
}

}  // namespace agentloc::hashtree
