// Rehashing operations of the hash tree (paper §4): simple/complex split and
// simple/complex merge. See DESIGN.md §6 for the label bookkeeping rules.

#include <stdexcept>
#include <utility>

#include "hashtree/router.hpp"
#include "hashtree/tree.hpp"

namespace agentloc::hashtree {

void HashTree::simple_split(IAgentId victim, std::size_t m,
                            IAgentId new_iagent, NodeLocation new_location) {
  if (m == 0) {
    throw std::invalid_argument("simple_split: m must be >= 1");
  }
  if (new_iagent == kNoIAgent || leaf_index_.contains(new_iagent)) {
    throw std::invalid_argument("simple_split: bad new IAgent id");
  }
  Node* leaf = leaf_for(victim);
  CompiledRouter* router = patchable_router();
  // The new internal node discriminates on the m-th not-yet-used bit: the
  // victim's pre-split depth plus the m-1 padding bits recorded below.
  const std::uint32_t split_bit_pos =
      router != nullptr
          ? consumed_bits(leaf) + static_cast<std::uint32_t>(m) - 1
          : 0;

  // Splitting "on the m-th bit": the m-1 bits before it stop discriminating
  // and are recorded as padding on the incoming edge (root padding when the
  // leaf is the root).
  for (std::size_t i = 1; i < m; ++i) leaf->label.push_back(false);

  auto zero = std::make_unique<Node>();
  zero->label = util::BitString{false};
  zero->parent = leaf;
  zero->iagent = victim;
  zero->location = leaf->location;

  auto one = std::make_unique<Node>();
  one->label = util::BitString{true};
  one->parent = leaf;
  one->iagent = new_iagent;
  one->location = new_location;

  leaf_index_[victim] = zero.get();
  leaf_index_.emplace(new_iagent, one.get());

  leaf->iagent = kNoIAgent;
  leaf->location = 0;
  leaf->child[0] = std::move(zero);
  leaf->child[1] = std::move(one);
  bump_version();
  if (router != nullptr) {
    router->patch_simple_split(victim, split_bit_pos, new_iagent,
                               new_location, version_);
  }
}

std::vector<SplitPoint> HashTree::complex_split_candidates(
    IAgentId victim) const {
  const auto segments = hyper_label_segments(victim);
  std::vector<SplitPoint> candidates;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    // Segment 0 is the root padding: every bit is reclaimable. For edge
    // labels the first bit is the valid bit; only the rest are padding.
    const std::size_t first = s == 0 ? 0 : 1;
    for (std::size_t b = first; b < segments[s].size(); ++b) {
      candidates.push_back(SplitPoint{s, b});
    }
  }
  return candidates;
}

std::size_t HashTree::split_point_bit_position(IAgentId victim,
                                               const SplitPoint& point) const {
  const auto segments = hyper_label_segments(victim);
  if (point.segment >= segments.size()) {
    throw std::out_of_range("split_point_bit_position: segment");
  }
  std::size_t position = 0;
  for (std::size_t s = 0; s < point.segment; ++s) {
    position += segments[s].size();
  }
  if (point.bit >= segments[point.segment].size()) {
    throw std::out_of_range("split_point_bit_position: bit");
  }
  return position + point.bit;
}

void HashTree::complex_split(IAgentId victim, const SplitPoint& point,
                             IAgentId new_iagent, NodeLocation new_location) {
  if (new_iagent == kNoIAgent || leaf_index_.contains(new_iagent)) {
    throw std::invalid_argument("complex_split: bad new IAgent id");
  }
  // Locate the node whose (incoming) label carries the padding bit.
  auto path_nodes = path_to(leaf_for(victim));
  if (point.segment >= path_nodes.size()) {
    throw std::out_of_range("complex_split: segment");
  }
  Node* v = const_cast<Node*>(path_nodes[point.segment]);
  const util::BitString label = v->label;
  const std::size_t j = point.bit;
  const std::size_t k = label.size();
  const std::size_t first_padding = point.segment == 0 ? 0 : 1;
  if (j < first_padding || j >= k) {
    throw std::out_of_range("complex_split: bit is not a padding bit");
  }

  // Patch parameters, captured before the structure moves: how far above the
  // victim's leaf the split edge sits, and the absolute id-bit position the
  // reclaimed padding bit discriminates on.
  CompiledRouter* router = patchable_router();
  const auto steps_up =
      static_cast<std::uint32_t>(path_nodes.size() - 1 - point.segment);
  std::uint32_t reclaimed_pos = static_cast<std::uint32_t>(j);
  for (std::size_t s = 0; s < point.segment; ++s) {
    reclaimed_pos += static_cast<std::uint32_t>(path_nodes[s]->label.size());
  }

  // The reclaimed bit becomes the valid bit of the relocated subtree's edge;
  // the new leaf sits on the complementary side with identical trailing
  // padding (the trailing bits are wildcards either way).
  const bool reclaimed = label[j];
  util::BitString upper = label.prefix(j);
  util::BitString lower = label.suffix_from(j);
  util::BitString fresh;
  fresh.push_back(!reclaimed);
  fresh.append(label.suffix_from(j + 1));

  auto new_leaf = std::make_unique<Node>();
  new_leaf->label = std::move(fresh);
  new_leaf->iagent = new_iagent;
  new_leaf->location = new_location;

  if (point.segment == 0) {
    // Reclaiming root padding: a new root keeps the unreclaimed prefix; the
    // old root descends on the side of the reclaimed bit's recorded value.
    auto new_root = std::make_unique<Node>();
    new_root->label = std::move(upper);
    std::unique_ptr<Node> old_root = std::move(root_);
    old_root->label = std::move(lower);
    old_root->parent = new_root.get();
    new_leaf->parent = new_root.get();
    new_root->child[reclaimed ? 1 : 0] = std::move(old_root);
    new_root->child[reclaimed ? 0 : 1] = std::move(new_leaf);
    leaf_index_.emplace(new_iagent,
                        new_root->child[reclaimed ? 0 : 1].get());
    root_ = std::move(new_root);
  } else {
    Node* u = v->parent;
    const bool side = label.front();
    auto w = std::make_unique<Node>();
    w->label = std::move(upper);
    w->parent = u;
    std::unique_ptr<Node> v_owned = std::move(u->child[side ? 1 : 0]);
    v_owned->label = std::move(lower);
    v_owned->parent = w.get();
    new_leaf->parent = w.get();
    w->child[reclaimed ? 1 : 0] = std::move(v_owned);
    w->child[reclaimed ? 0 : 1] = std::move(new_leaf);
    leaf_index_.emplace(new_iagent, w->child[reclaimed ? 0 : 1].get());
    u->child[side ? 1 : 0] = std::move(w);
  }
  bump_version();
  if (router != nullptr) {
    router->patch_complex_split(victim, steps_up, reclaimed, reclaimed_pos,
                                new_iagent, new_location, version_);
  }
}

MergeResult HashTree::merge(IAgentId victim) {
  Node* leaf = leaf_for(victim);
  if (leaf == root_.get()) {
    throw std::logic_error("merge: cannot merge the last IAgent");
  }
  CompiledRouter* router = patchable_router();
  Node* parent = leaf->parent;
  const bool side = leaf->label.front();
  Node* sibling = parent->child[side ? 0 : 1].get();

  leaf_index_.erase(victim);
  MergeResult result;

  if (sibling->is_leaf()) {
    // Simple merge (paper Figure 5): the sibling absorbs the load and moves
    // up to the parent position; the tree height may shrink.
    result.kind = MergeResult::Kind::kSimple;
    result.into_iagent = sibling->iagent;
    parent->iagent = sibling->iagent;
    parent->location = sibling->location;
    leaf_index_[parent->iagent] = parent;
    parent->child[0].reset();
    parent->child[1].reset();
  } else {
    // Complex merge (paper Figure 6): splice the sibling subtree into the
    // parent position. Concatenating the labels turns the sibling's valid
    // bit into padding, so every surviving leaf keeps its exact agent set
    // and bit positions — only the victim's agents remap (by re-lookup).
    result.kind = MergeResult::Kind::kComplex;
    parent->label.append(sibling->label);
    std::unique_ptr<Node> c0 = std::move(sibling->child[0]);
    std::unique_ptr<Node> c1 = std::move(sibling->child[1]);
    c0->parent = parent;
    c1->parent = parent;
    parent->child[side ? 0 : 1].reset();  // destroys the sibling shell
    parent->child[side ? 1 : 0].reset();  // destroys the merged leaf
    parent->child[0] = std::move(c0);
    parent->child[1] = std::move(c1);
  }
  bump_version();
  // The router resolves simple vs. complex from its own structure (its
  // sibling entry mirrors the node sibling checked above).
  if (router != nullptr) router->patch_merge(victim, version_);
  return result;
}

}  // namespace agentloc::hashtree
